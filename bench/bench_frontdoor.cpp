// Cluster front-door benchmark: shard scaling, result-cache effectiveness,
// and shard-loss survival (see docs/frontdoor.md).
//
// Three sections:
//
//  1. Shard scaling: closed-loop saturated throughput of a 1-shard cluster
//     vs a 4-shard cluster (one worker per shard) on a skewed stream —
//     distinct inputs drawn zipf-ish from a small pool, so some ring keys
//     are much hotter than others and the consistent-hash spread (not a
//     uniform stream) is what is measured. The printed ratio is the
//     horizontal-scaling figure of merit; it approaches the shard count
//     only when the host has at least as many cores as shards (on a
//     single-core CI box the shards time-slice one core and the ratio is
//     honestly ~1x — the JSON records whatever this host produced).
//
//  2. Cache-hot workload: a small set of distinct inputs replayed many
//     times against a cache-enabled cluster. Reports the hit rate (>= 90%
//     for this replay ratio by construction) and verifies every response —
//     cached or computed — is bit-identical to Session::run.
//
//  3. Shard loss mid-run: open-loop submissions against 4 shards
//     (kFailover) while one shard is stopped partway through. Every
//     accepted future must resolve with logits — the "no accepted request
//     lost" guarantee — and the failover counter shows the rescued hops.
//
// Emits BENCH_frontdoor.json (bench::JsonWriter) for scripts/
// bench_compare.sh. Numbers under smoke mode (BSWP_BENCH_SMOKE=1, CI) are
// meaningless — only the code paths matter.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "common.h"

namespace bswp::bench {
namespace {

using Clock = std::chrono::steady_clock;

runtime::FrontDoorOptions cluster_options(int shards) {
  runtime::FrontDoorOptions fo;
  fo.shards = shards;
  fo.server.workers = 1;  // scaling comes from shards, not in-shard pools
  fo.server.batching.max_batch = 8;
  fo.server.batching.max_delay = std::chrono::microseconds{500};
  fo.server.queue.capacity = 1024;
  fo.server.queue.policy = runtime::QueuePolicy::kBlock;
  return fo;
}

/// Closed-loop saturated throughput: fire all requests, drain, wall-clock.
double saturated_throughput(bswp::Cluster& cluster, const std::string& model,
                            std::span<const Tensor> images, int n) {
  // Warm-up so every shard has built its executor before timing.
  for (std::size_t i = 0; i < images.size(); ++i) {
    cluster.submit(model, images[i]);
  }
  cluster.drain();
  cluster.reset_stats();
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < n; ++i) {
    cluster.submit(model, images[static_cast<std::size_t>(i) % images.size()]);
  }
  cluster.drain();
  const double s = std::chrono::duration<double>(Clock::now() - t0).count();
  return s > 0.0 ? n / s : 0.0;
}

bool same_bits(const QTensor& a, const QTensor& b) {
  return a.shape == b.shape && a.bits == b.bits && a.is_signed == b.is_signed &&
         a.zero_point == b.zero_point && a.scale == b.scale &&
         a.data.size() == b.data.size() &&
         std::memcmp(a.data.data(), b.data.data(),
                     a.data.size() * sizeof(int16_t)) == 0;
}

int run_bench() {
  // One untrained TinyConv (BN stats seeded) — front-door behaviour depends
  // only on network geometry, so training would be wasted bench time.
  BenchDataset d = cifar_like();
  d.model_opts.width = 0.5f;
  quant::CalibrateOptions qo;
  qo.num_samples = smoke_scaled(32, 8);
  nn::Graph g = models::build_tinyconv(d.model_opts);
  Rng rng(9);
  g.init_weights(rng);
  Session session =
      Deployment::from(g).seed_batchnorm(16).calibrate(*d.train, qo).compile();

  // Skewed image pool: image i is drawn with weight ~ 1/(i+1), so a few
  // ring keys carry most of the traffic.
  std::vector<Tensor> pool;
  for (int i = 0; i < 16; ++i) {
    Tensor x({1, 3, d.model_opts.image_size, d.model_opts.image_size});
    d.train->sample(i % d.train->size(), x.data());
    pool.push_back(std::move(x));
  }
  Rng zrng(17);
  std::vector<Tensor> skewed;
  double harm = 0.0;
  for (std::size_t i = 0; i < pool.size(); ++i) harm += 1.0 / static_cast<double>(i + 1);
  for (int i = 0; i < 64; ++i) {
    double u = zrng.uniform() * harm;
    std::size_t pick = 0;
    for (; pick + 1 < pool.size(); ++pick) {
      u -= 1.0 / static_cast<double>(pick + 1);
      if (u <= 0.0) break;
    }
    skewed.push_back(pool[pick]);
  }

  JsonWriter jw;
  jw.add("smoke_mode", smoke_mode());
  const int n = smoke_scaled(600, 32);

  // --- Section 1: shard scaling --------------------------------------------
  print_header("bench_frontdoor: shard scaling (closed loop, skewed stream)");
  double tput1, tput4;
  {
    bswp::Cluster c1(cluster_options(1));
    c1.add("tiny", session);
    tput1 = saturated_throughput(c1, "tiny", skewed, n);
  }
  {
    bswp::Cluster c4(cluster_options(4));
    c4.add("tiny", session);
    tput4 = saturated_throughput(c4, "tiny", skewed, n);
  }
  const double ratio = tput1 > 0.0 ? tput4 / tput1 : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("1 shard: %8.0f img/s\n4 shards: %7.0f img/s\nscaling: %5.2fx "
              "(%u hardware threads — expect ~1x below 4)\n",
              tput1, tput4, ratio, cores);
  jw.add("shard1_throughput_per_s", tput1);
  jw.add("shard4_throughput_per_s", tput4);
  jw.add("shard_scaling_ratio", ratio);
  jw.add("hardware_threads", static_cast<int>(cores));

  // --- Section 2: cache-hot workload ---------------------------------------
  print_header("bench_frontdoor: idempotent result cache (hot replay)");
  {
    runtime::FrontDoorOptions fo = cluster_options(2);
    fo.cache_capacity = 256;
    bswp::Cluster c(fo);
    c.add("tiny", session);
    // Reference logits straight from the session — the bit-identity oracle.
    std::vector<QTensor> expect;
    for (const Tensor& img : pool) expect.push_back(session.run(img));

    // Cold pass: each distinct input once, then drain — the misses fill the
    // cache before the measured replay (a firehose of repeats submitted
    // before the first result lands would all miss: the cache stores
    // results, not in-flight promises). reset_stats() zeroes the counters
    // but keeps the entries warm.
    for (const Tensor& img : pool) c.submit("tiny", img);
    c.drain();
    c.reset_stats();

    std::vector<std::future<QTensor>> futures;
    const int hot_n = smoke_scaled(400, 32);
    const Clock::time_point t0 = Clock::now();
    for (int i = 0; i < hot_n; ++i) {
      futures.push_back(
          c.submit("tiny", pool[static_cast<std::size_t>(i) % pool.size()]));
    }
    bool identical = true;
    for (int i = 0; i < hot_n; ++i) {
      identical = identical &&
                  same_bits(futures[static_cast<std::size_t>(i)].get(),
                            expect[static_cast<std::size_t>(i) % pool.size()]);
    }
    const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    const runtime::ClusterStats s = c.stats();
    std::printf("%d requests over %zu distinct inputs: hit rate %.1f%% "
                "(hits %llu, misses %llu), %.0f req/s, bit-identical: %s\n",
                hot_n, pool.size(), 100.0 * s.cache.hit_rate,
                static_cast<unsigned long long>(s.cache.hits),
                static_cast<unsigned long long>(s.cache.misses),
                wall > 0.0 ? hot_n / wall : 0.0, identical ? "yes" : "NO");
    jw.add("cache_hit_rate", s.cache.hit_rate);
    jw.add("cache_hot_throughput_per_s", wall > 0.0 ? hot_n / wall : 0.0);
    jw.add("cache_bit_identical", identical);
  }

  // --- Section 3: shard loss mid-run ---------------------------------------
  print_header("bench_frontdoor: shard loss mid-run (kFailover)");
  {
    bswp::Cluster c(cluster_options(4));
    c.add("tiny", session);
    for (const Tensor& img : pool) c.submit("tiny", img);
    c.drain();
    c.reset_stats();

    const int kill_n = smoke_scaled(300, 32);
    std::vector<std::future<QTensor>> futures;
    futures.reserve(static_cast<std::size_t>(kill_n));
    for (int i = 0; i < kill_n; ++i) {
      futures.push_back(c.submit(
          "tiny", skewed[static_cast<std::size_t>(i) % skewed.size()]));
      if (i == kill_n / 3) c.stop_shard(1);  // mid-stream shard loss
    }
    std::uint64_t fulfilled = 0, errored = 0;
    for (auto& f : futures) {
      try {
        f.get();
        ++fulfilled;
      } catch (...) {
        ++errored;
      }
    }
    const runtime::ClusterStats s = c.stats();
    std::printf("accepted %d, fulfilled %llu, errored %llu, failover hops "
                "%llu, healthy shards %d/%d\n",
                kill_n, static_cast<unsigned long long>(fulfilled),
                static_cast<unsigned long long>(errored),
                static_cast<unsigned long long>(s.failovers), s.healthy_shards,
                s.shards);
    jw.add("kill_accepted", static_cast<std::uint64_t>(kill_n));
    jw.add("kill_fulfilled", fulfilled);
    jw.add("kill_lost", errored);
    jw.add("kill_failover_hops", s.failovers);
  }

  jw.write("BENCH_frontdoor.json");
  return 0;
}

}  // namespace
}  // namespace bswp::bench

int main() { return bswp::bench::run_bench(); }
