// Host-side microbenchmarks (google-benchmark): raw throughput of the
// kernels and pipeline stages on the build machine. These complement the
// cost-model benches — they measure this library's host implementation, not
// the simulated MCU.
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "kernels/baseline_conv.h"
#include "kernels/bit_unpack.h"
#include "kernels/bitserial_conv.h"
#include "pool/kmeans.h"
#include "pool/lut.h"

namespace {

using namespace bswp;

struct LayerFixture {
  nn::ConvSpec spec;
  kernels::PackedIndices indices;
  pool::DotLut lut;
  QTensor input;
  QTensor qweights;
  kernels::Requant rq;

  LayerFixture(int channels, int filters, int act_bits) {
    Rng rng(1);
    spec = nn::ConvSpec{channels, filters, 3, 3, 1, 1, 1};
    pool::WeightPool wp;
    wp.group_size = 8;
    wp.vectors = Tensor({64, 8});
    rng.fill_normal(wp.vectors, 0.3f);
    lut = pool::build_lut(wp, pool::LutOptions{});
    pool::PooledLayer pl;
    pl.out_ch = filters;
    pl.channel_groups = channels / 8;
    pl.kh = pl.kw = 3;
    pl.indices.resize(static_cast<std::size_t>(filters) * pl.channel_groups * 9);
    for (auto& idx : pl.indices) idx = static_cast<uint16_t>(rng.uniform_int(64));
    indices = kernels::PackedIndices::pack(pl);
    input = QTensor({1, channels, 16, 16}, act_bits, false);
    input.scale = 0.05f;
    for (auto& v : input.data) v = static_cast<int16_t>(rng.uniform_int(1u << act_bits));
    qweights = QTensor(spec.weight_shape(), 8, true);
    qweights.scale = 0.01f;
    for (auto& v : qweights.data)
      v = static_cast<int16_t>(-127 + static_cast<int>(rng.uniform_int(255)));
    rq = kernels::Requant::uniform(filters, 1e-4f, {}, 0.01f, 8, false, true);
  }
};

void BM_BaselineConv(benchmark::State& state) {
  LayerFixture f(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::baseline_conv2d(f.input, f.qweights, f.spec, f.rq, nullptr));
  }
}
BENCHMARK(BM_BaselineConv)->Arg(32)->Arg(64)->Arg(128);

void BM_BitSerialConv(benchmark::State& state) {
  LayerFixture f(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1)));
  const auto variant = static_cast<kernels::BitSerialVariant>(state.range(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::bitserial_conv2d(f.input, f.indices, f.lut, f.spec, f.rq, variant, nullptr));
  }
}
BENCHMARK(BM_BitSerialConv)
    ->Args({64, 8, static_cast<long>(kernels::BitSerialVariant::kCached)})
    ->Args({64, 4, static_cast<long>(kernels::BitSerialVariant::kCached)})
    ->Args({128, 8, static_cast<long>(kernels::BitSerialVariant::kCachedPrecompute)})
    ->Args({128, 4, static_cast<long>(kernels::BitSerialVariant::kCachedPrecompute)});

void BM_BitUnpack(benchmark::State& state) {
  Rng rng(2);
  int16_t vals[8];
  for (auto& v : vals) v = static_cast<int16_t>(rng.uniform_int(256));
  uint32_t planes[8];
  for (auto _ : state) {
    kernels::unpack_bits(vals, 8, static_cast<int>(state.range(0)), planes, nullptr);
    benchmark::DoNotOptimize(planes);
  }
}
BENCHMARK(BM_BitUnpack)->Arg(8)->Arg(4)->Arg(1);

void BM_LutBuild(benchmark::State& state) {
  Rng rng(3);
  pool::WeightPool wp;
  wp.group_size = 8;
  wp.vectors = Tensor({static_cast<int>(state.range(0)), 8});
  rng.fill_normal(wp.vectors, 0.3f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool::build_lut(wp, pool::LutOptions{}));
  }
}
BENCHMARK(BM_LutBuild)->Arg(32)->Arg(64)->Arg(128);

void BM_KMeans(benchmark::State& state) {
  Rng rng(4);
  Tensor data({static_cast<int>(state.range(0)), 8});
  rng.fill_normal(data, 0.3f);
  pool::KMeansOptions opt;
  opt.clusters = 64;
  opt.max_iters = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool::kmeans(data, opt));
  }
}
BENCHMARK(BM_KMeans)->Arg(2000)->Arg(8000);

}  // namespace
