// Host-kernel benchmark: wall-clock of the scalar reference kernels versus
// the SIMD family (src/kernels/simd/) on the same inputs, then end-to-end
// through Session::run-style execution and the InferenceServer on the
// Table 7 model families.
//
// Three sections:
//   1. kernel micro-benchmarks — the int8 conv/linear cores, the bit-serial
//      LUT accumulate and the XNOR popcount core, scalar vs SIMD on
//      identical buffers (outputs are asserted byte-identical);
//   2. end-to-end — each network compiled twice, HostLaneSelect::kScalar vs
//      the default cost-model lane selection, timed through a warm arena
//      Executor (the engine under Session::run);
//   3. serving — the InferenceServer fed the same request stream with both
//      builds.
//
// Emits BENCH_kernels.json (bench::JsonWriter) for scripts/bench_compare.sh:
// `*_us` keys are lower-is-better, `*_speedup` / `*_ips` higher-is-better.
#include <chrono>
#include <cstdio>
#include <functional>

#include "common.h"
#include "core/arena.h"
#include "binary/binarized.h"
#include "kernels/baseline_conv.h"
#include "kernels/bitserial_conv.h"
#include "kernels/simd/simd_dispatch.h"
#include "kernels/simd/simd_kernels.h"
#include "runtime/executor.h"
#include "runtime/server/inference_server.h"

namespace bswp::bench {
namespace {

using Clock = std::chrono::steady_clock;
using kernels::QView;

/// Microseconds per call of `fn` over `iters` timed calls (plus 2 warm-ups).
double time_us(int iters, const std::function<void()>& fn) {
  fn();
  fn();
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count() / iters;
}

void add_pair(JsonWriter& jw, const std::string& base, double scalar_us, double simd_us) {
  jw.add(base + "_scalar_us", scalar_us);
  jw.add(base + "_simd_us", simd_us);
  jw.add(base + "_speedup", scalar_us / simd_us);
  std::printf("%-28s scalar %10.1f us   simd %10.1f us   %5.2fx\n", base.c_str(), scalar_us,
              simd_us, scalar_us / simd_us);
}

/// Random pooled conv layer at bench geometry (16x16 input, 3x3 kernel) —
/// the recurring hot-path shape of the Table 7 ResNet bodies.
struct LayerFixture {
  nn::ConvSpec spec;
  kernels::PackedIndices indices;
  pool::DotLut lut;
  QTensor input;
  QTensor qweights;
  kernels::Requant rq;

  LayerFixture(int channels, int filters, int act_bits) {
    Rng rng(1);
    spec = nn::ConvSpec{channels, filters, 3, 3, 1, 1, 1};
    pool::WeightPool wp;
    wp.group_size = 8;
    wp.vectors = Tensor({64, 8});
    rng.fill_normal(wp.vectors, 0.3f);
    lut = pool::build_lut(wp, pool::LutOptions{});
    pool::PooledLayer pl;
    pl.out_ch = filters;
    pl.channel_groups = channels / 8;
    pl.kh = pl.kw = 3;
    pl.indices.resize(static_cast<std::size_t>(filters) * pl.channel_groups * 9);
    for (auto& idx : pl.indices) idx = static_cast<uint16_t>(rng.uniform_int(64));
    indices = kernels::PackedIndices::pack(pl);
    input = QTensor({1, channels, 16, 16}, act_bits, false);
    input.scale = 0.05f;
    for (auto& v : input.data) v = static_cast<int16_t>(rng.uniform_int(1u << act_bits));
    qweights = QTensor(spec.weight_shape(), 8, true);
    qweights.scale = 0.01f;
    for (auto& v : qweights.data)
      v = static_cast<int16_t>(-127 + static_cast<int>(rng.uniform_int(255)));
    rq = kernels::Requant::uniform(filters, 1e-4f, {}, 0.01f, 8, false, true);
  }
};

void check_identical(const QTensor& a, const QTensor& b, const char* what) {
  if (a.data != b.data) {
    std::fprintf(stderr, "FATAL: %s scalar/simd outputs differ\n", what);
    std::exit(1);
  }
}

void micro_benchmarks(JsonWriter& jw) {
  print_header("1. kernel micro-benchmarks (scalar vs SIMD, identical buffers)");
  const int iters = smoke_scaled(30, 3);

  // int8 conv core at the ResNet body widths.
  for (int c : {32, 64, 128}) {
    LayerFixture f(c, c, 8);
    const int oh = f.spec.out_h(16), ow = f.spec.out_w(16);
    QTensor out_s({1, c, oh, ow}, 8, false), out_v = out_s;
    QView in = QView::of(f.input), vs = QView::of(out_s), vv = QView::of(out_v);
    ScratchArena scratch(kernels::simd::simd_conv_scratch_bytes(f.spec));
    const double scalar_us = time_us(
        iters, [&] { kernels::baseline_conv2d(in, f.qweights, f.spec, f.rq, vs, nullptr); });
    const double simd_us = time_us(iters, [&] {
      scratch.reset();
      kernels::simd::simd_conv2d(in, f.qweights, f.spec, f.rq, vv, scratch, nullptr);
    });
    check_identical(out_s, out_v, "conv");
    add_pair(jw, "conv_c" + std::to_string(c), scalar_us, simd_us);
  }

  // int8 fully-connected core.
  {
    Rng rng(2);
    const int fin = 256, fout = 128;
    QTensor input({1, fin}, 8, false);
    for (auto& v : input.data) v = static_cast<int16_t>(rng.uniform_int(256));
    QTensor w({fout, fin}, 8, true);
    for (auto& v : w.data) v = static_cast<int16_t>(-127 + static_cast<int>(rng.uniform_int(255)));
    kernels::Requant rq = kernels::Requant::uniform(fout, 1e-4f, {}, 0.01f, 8, false, true);
    QTensor out_s({1, fout}, 8, false), out_v = out_s;
    QView in = QView::of(input), vs = QView::of(out_s), vv = QView::of(out_v);
    ScratchArena scratch(kernels::simd::simd_linear_scratch_bytes(fin));
    const int lin_iters = smoke_scaled(300, 20);
    const double scalar_us =
        time_us(lin_iters, [&] { kernels::baseline_linear(in, w, rq, vs, nullptr); });
    const double simd_us = time_us(lin_iters, [&] {
      scratch.reset();
      kernels::simd::simd_linear(in, w, rq, vv, scratch, nullptr);
    });
    check_identical(out_s, out_v, "linear");
    add_pair(jw, "linear_f" + std::to_string(fin), scalar_us, simd_us);
  }

  // Bit-serial LUT accumulate (widened: 8 output channels per gather step).
  for (int act_bits : {8, 4}) {
    LayerFixture f(64, 64, act_bits);
    const int oh = f.spec.out_h(16), ow = f.spec.out_w(16);
    QTensor out_s({1, 64, oh, ow}, 8, false), out_v = out_s;
    QView in = QView::of(f.input), vs = QView::of(out_s), vv = QView::of(out_v);
    ScratchArena ss(kernels::bitserial_host_scratch_bytes(64, f.lut.pool_size, f.lut.group_size));
    ScratchArena sv(
        kernels::simd::simd_bitserial_scratch_bytes(64, f.lut.pool_size, f.lut.group_size));
    const auto variant = kernels::BitSerialVariant::kCached;
    const double scalar_us = time_us(iters, [&] {
      ss.reset();
      kernels::bitserial_conv2d(in, f.indices, f.lut, f.spec, f.rq, variant, vs, ss, nullptr);
    });
    const double simd_us = time_us(iters, [&] {
      sv.reset();
      kernels::simd::simd_bitserial_conv2d(in, f.indices, f.lut, f.spec, f.rq, variant, vv, sv,
                                           nullptr);
    });
    check_identical(out_s, out_v, "bitserial");
    add_pair(jw, "bitserial_c64_b" + std::to_string(act_bits), scalar_us, simd_us);
  }

  // XNOR popcount core, 32-bit vs 64-bit words, on identical packed buffers.
  {
    Rng rng(3);
    const nn::ConvSpec spec{64, 64, 3, 3, 1, 1, 1};
    const int h = 16, w = 16;
    const int words = (spec.in_ch + 31) / 32;
    std::vector<uint32_t> in_bits(static_cast<std::size_t>(h) * w * words);
    std::vector<uint32_t> w_bits(static_cast<std::size_t>(spec.out_ch) * spec.kh * spec.kw *
                                 words);
    for (auto& v : in_bits) v = rng.uniform_int(0xffffffffu);
    for (auto& v : w_bits) v = rng.uniform_int(0xffffffffu);
    // Mask tail lanes the packers would leave clear (in_ch % 32 == 0 here,
    // but keep the bench honest if the geometry changes).
    const int tail = spec.in_ch % 32;
    if (tail != 0) {
      const uint32_t mask = (1u << tail) - 1;
      for (std::size_t i = words - 1; i < in_bits.size(); i += words) in_bits[i] &= mask;
      for (std::size_t i = words - 1; i < w_bits.size(); i += words) w_bits[i] &= mask;
    }
    const int oh = spec.out_h(h), ow = spec.out_w(w);
    std::vector<int32_t> counts_s(static_cast<std::size_t>(spec.out_ch) * oh * ow);
    std::vector<int32_t> counts_v(counts_s.size());
    const int xnor_iters = smoke_scaled(50, 5);
    const double scalar_us = time_us(xnor_iters, [&] {
      binary::xnor_conv2d_counts(in_bits.data(), spec.in_ch, h, w, w_bits.data(), spec,
                                 counts_s.data(), nullptr);
    });
    const double simd_us = time_us(xnor_iters, [&] {
      kernels::simd::simd_xnor_conv2d_counts(in_bits.data(), spec.in_ch, h, w, w_bits.data(),
                                             spec, counts_v.data(), nullptr);
    });
    if (counts_s != counts_v) {
      std::fprintf(stderr, "FATAL: xnor scalar/simd counts differ\n");
      std::exit(1);
    }
    add_pair(jw, "xnor_c64", scalar_us, simd_us);
  }
}

struct NetUnderTest {
  std::string key;
  Session scalar;   // HostLaneSelect::kScalar
  Session fast;     // default cost-model lane selection
  int simd_lanes;   // layers the cost model put on the SIMD lane
  std::vector<Tensor> images;
};

NetUnderTest build_net(const std::string& key, nn::Graph (*build)(const models::ModelOptions&),
                       bool on_cifar) {
  BenchDataset d = on_cifar ? cifar_like() : quickdraw_like();
  d.model_opts.width = 0.5f;
  nn::Graph graph = build(d.model_opts);
  Rng rng(7);
  graph.init_weights(rng);

  pool::CodecOptions co;
  co.pool_size = 64;
  co.kmeans_iters = smoke_scaled(5, 2);
  co.max_cluster_vectors = smoke_scaled(4000, 1000);
  quant::CalibrateOptions qo;
  qo.num_samples = smoke_scaled(32, 8);
  Deployment dep = Deployment::from(graph)
                       .with_pool(co)
                       .seed_batchnorm(16)
                       .calibrate(*d.train, qo);

  Session scalar = dep.host_lanes(runtime::HostLaneSelect::kScalar).compile();
  Session fast = dep.host_lanes(runtime::HostLaneSelect::kCostModel).compile();
  int simd_lanes = 0;
  for (const runtime::LaneChoice& l : dep.compile_report().lane_choices) {
    if (l.lane == runtime::HostLane::kSimd) ++simd_lanes;
  }

  std::vector<Tensor> images;
  const int n = smoke_scaled(24, 6);
  for (int i = 0; i < n; ++i) {
    Tensor x({1, d.model_opts.in_channels, d.model_opts.image_size, d.model_opts.image_size});
    d.train->sample(i % d.train->size(), x.data());
    images.push_back(std::move(x));
  }
  return {key, std::move(scalar), std::move(fast), simd_lanes, std::move(images)};
}

void end_to_end(JsonWriter& jw, std::vector<NetUnderTest>& nets) {
  print_header("2. end-to-end: Session execution, scalar vs cost-model lanes");
  for (NetUnderTest& n : nets) {
    // Bit-identity across lanes is the contract the tests pin; assert it
    // here too so the bench can never report a speedup of a wrong answer.
    check_identical(n.scalar.run(n.images[0]), n.fast.run(n.images[0]), n.key.c_str());

    runtime::Executor ex_s(n.scalar.network()), ex_f(n.fast.network());
    const int reps = smoke_scaled(3, 1);
    const double scalar_us = time_us(reps, [&] {
      for (const Tensor& x : n.images) ex_s.run_view(x);
    });
    const double simd_us = time_us(reps, [&] {
      for (const Tensor& x : n.images) ex_f.run_view(x);
    });
    const auto imgs = static_cast<double>(n.images.size());
    add_pair(jw, "e2e_" + n.key, scalar_us / imgs, simd_us / imgs);
    jw.add("e2e_" + n.key + "_simd_lanes", n.simd_lanes);
    std::printf("%-28s %d layer(s) on the simd lane\n", "", n.simd_lanes);
  }
}

double serve(Session& session, std::span<const Tensor> images, int n) {
  runtime::ServerOptions so;
  so.workers = 2;
  so.batching.max_batch = 4;
  Server server(so);
  server.add("net", session);
  for (int i = 0; i < 2 * so.workers * so.batching.max_batch; ++i) {
    server.submit("net", images[0]);  // warm every worker's executor
  }
  server.drain();
  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < n; ++i) {
    server.submit("net", images[static_cast<std::size_t>(i) % images.size()]);
  }
  server.drain();
  return n / std::chrono::duration<double>(Clock::now() - t0).count();
}

void serving(JsonWriter& jw, NetUnderTest& n) {
  print_header("3. serving: InferenceServer throughput, scalar vs cost-model lanes");
  const int reqs = smoke_scaled(96, 16);
  const double scalar_ips = serve(n.scalar, n.images, reqs);
  const double fast_ips = serve(n.fast, n.images, reqs);
  jw.add("server_scalar_ips", scalar_ips);
  jw.add("server_costmodel_ips", fast_ips);
  std::printf("%-28s scalar %8.0f img/s   cost-model %8.0f img/s   %5.2fx\n",
              ("server_" + n.key).c_str(), scalar_ips, fast_ips, fast_ips / scalar_ips);
}

int run_bench() {
  JsonWriter jw;
  jw.add("smoke_mode", smoke_mode());
  jw.add("simd_compiled", kernels::simd::compiled());
  jw.add("simd_isa", std::string(kernels::simd::isa_name()));
  std::printf("bench_kernels: simd %s (isa: %s)\n",
              kernels::simd::compiled() ? "compiled" : "compiled OUT",
              kernels::simd::isa_name());

  if (kernels::simd::compiled()) {
    micro_benchmarks(jw);
  } else {
    std::printf("SIMD backends compiled out (BSWP_SIMD=OFF): micro section skipped\n");
  }

  std::vector<NetUnderTest> nets;
  nets.push_back(build_net("tinyconv", models::build_tinyconv, false));
  nets.push_back(build_net("resnet_s", models::build_resnet_s, true));
  if (!smoke_mode()) nets.push_back(build_net("resnet_10", models::build_resnet10, true));
  end_to_end(jw, nets);
  serving(jw, nets[1]);

  jw.write("BENCH_kernels.json");
  return 0;
}

}  // namespace
}  // namespace bswp::bench

int main() { return bswp::bench::run_bench(); }
