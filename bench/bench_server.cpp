// Async inference-server benchmark: open-loop Poisson arrivals against the
// InferenceServer.
//
// Five sections:
//
//  1. Offered load x batching deadline x worker count (two models,
//     alternating requests):
//       columns: workers offered/s deadline done shed achieved/s batch p50/p99
//     Open-loop means arrivals are scheduled ahead of time from an
//     exponential interarrival distribution and submitted at their scheduled
//     instant regardless of completions — the generator does not slow down
//     when the server does, so past saturation the bounded queue
//     (kShedOldest here) is what absorbs the excess and the shed column
//     shows it. Below saturation, achieved tracks offered and a longer
//     batching deadline trades p50/p99 latency for bigger batches; above
//     saturation, achieved plateaus at capacity, queues fill, latency is
//     dominated by queueing and shedding begins.
//
//  2. Skewed load, scheduling-policy sweep: one hot model (weight 8, 50% of
//     the traffic) and three cold registrations of the same ResNet-s
//     (weight 1 — identical batch cost isolates the scheduling policy) at
//     1.15x the pool's *measured* saturated throughput (two workers share
//     memory bandwidth, so capacity is probed with a closed-loop run, not
//     extrapolated from one executor), under plain round-robin and under
//     weighted deficit round-robin. The overload backlog has to land on
//     *some* queue. Round-robin serves the cold models promptly (their
//     demand is far below an equal share), so the hot model absorbs the
//     entire backlog: its queue pins at capacity, it sheds, and its p99 is
//     queueing-dominated. The weighted scheduler grants the hot model
//     8/11 ≈ 73% of slots — comfortably above its ~58% share of demand —
//     so the hot queue stays short (p99 drops severalfold) and the overload
//     lands on the cold queues instead, which is the declared priority
//     tradeoff: cold models run slower and shed some, but — one guaranteed
//     batch credit per cycle — never starve. Latency/counter columns are a
//     steady-state snapshot taken when arrivals end, so the final drain
//     does not smear the percentiles.
//
//  3. Batched vs per-image dispatch: a closed-loop saturated flood (full
//     max_batch batches) on one worker, run once with
//     ServerOptions::batched_execution (one Executor::run_batch_view call
//     per formed batch) and once with the per-request loop. Logits are
//     bit-identical; the achieved/s ratio is the batched-execution payoff
//     and lands in BENCH_server.json as dispatch_batched_speedup.
//
//  4. Autoscaler load step: a burst at ~2.5x one worker's capacity against
//     an autoscaling pool (min 1, max 4). The row shows the scale-up events
//     climbing to a stable peak during the burst, and the pool shrinking
//     back to min after it drains — grow/shrink counts equal means no
//     oscillation.
//
//  5. Overload SLO attainment: the same open-loop overload run twice, once
//     with queue-only deadline shedding and once with execution-aware
//     shedding (refuse-to-dispatch on the compiled plan's execution
//     estimate + layer-boundary cancellation). Execution-aware shedding
//     stops the worker from finishing doomed requests late, so the
//     attainment column rises and the met-request p99 falls — the payoff
//     docs/serving.md § execution-aware deadlines describes.
//
// Numbers under smoke mode (BSWP_BENCH_SMOKE=1, CI) are meaningless — only
// the code paths matter.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common.h"
#include "runtime/executor.h"
#include "runtime/server/inference_server.h"

namespace bswp::bench {
namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::microseconds;

struct LoadResult {
  runtime::ServerStats stats;
  double wall_seconds = 0.0;
};

/// Fire `n` requests at the server with Exp(offered_ips) interarrival times,
/// alternating between the registered models, then drain.
LoadResult run_open_loop(bswp::Session& resnet, bswp::Session& tiny, int workers,
                         microseconds deadline, double offered_ips, int n,
                         std::span<const Tensor> images) {
  runtime::ServerOptions so;
  so.workers = workers;
  so.batching.max_batch = 8;
  so.batching.max_delay = deadline;
  so.queue.capacity = 64;
  so.queue.policy = runtime::QueuePolicy::kShedOldest;

  bswp::Server server(so);
  server.add("resnet-s", resnet).add("tinyconv", tiny);
  // Warm-up: flood a full batch per worker per model (twice) so every
  // worker almost certainly builds both of its executors before timing —
  // a burst of k*max_batch requests forms k concurrent batches, which
  // spread across all free workers. reset_stats() then zeroes whatever the
  // warm-up recorded so the row reflects only the timed run.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 2 * workers * so.batching.max_batch; ++i) {
      server.submit(i % 2 == 0 ? "resnet-s" : "tinyconv", images[0]);
    }
    server.drain();
  }
  server.reset_stats();

  Rng rng(123);
  std::vector<std::future<QTensor>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  const Clock::time_point t0 = Clock::now();
  Clock::time_point next = t0;
  for (int i = 0; i < n; ++i) {
    // Exponential interarrival: -ln(1-u) / lambda.
    const double gap_s = -std::log(1.0 - rng.uniform()) / offered_ips;
    next += std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next);
    futures.push_back(server.submit(i % 2 == 0 ? "resnet-s" : "tinyconv",
                                    images[static_cast<std::size_t>(i) % images.size()]));
  }
  server.drain();

  LoadResult r;
  r.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  // Consume every future (shed requests surface ServerRejected here; the
  // admission counters are the ground truth the table reports).
  for (std::future<QTensor>& f : futures) {
    try {
      f.get();
    } catch (const runtime::ServerRejected&) {
    }
  }
  r.stats = server.stats();
  return r;
}

void print_row(int workers, double offered_ips, microseconds deadline, const LoadResult& r) {
  const auto& s = r.stats;
  std::printf("%7d %10.0f %8lld %6llu %6llu %11.0f %6.2f %8.0f %8.0f\n", workers, offered_ips,
              static_cast<long long>(deadline.count()),
              static_cast<unsigned long long>(s.admission.completed),
              static_cast<unsigned long long>(s.admission.shed),
              r.wall_seconds > 0.0 ? static_cast<double>(s.admission.completed) / r.wall_seconds
                                   : 0.0,
              s.mean_batch_size, s.latency.p50_us, s.latency.p99_us);
}

/// Section 2: skewed load under one scheduling policy. One hot model at
/// `hot_frac` of the offered stream plus `n_cold` cold models evenly
/// splitting the rest, all on one 2-worker server with kShedOldest queues.
LoadResult run_skewed(bswp::Session& hot, bswp::Session& cold, int n_cold,
                      runtime::SchedulePolicy policy, int hot_weight, double offered_ips,
                      double hot_frac, int n, std::span<const Tensor> images) {
  runtime::ServerOptions so;
  so.workers = 2;
  so.schedule = policy;
  so.batching.max_batch = 8;
  so.batching.max_delay = microseconds{1000};
  so.queue.capacity = 64;
  so.queue.policy = runtime::QueuePolicy::kShedOldest;

  bswp::Server server(so);
  runtime::ModelConfig hot_cfg{so.batching, so.queue, hot_weight};
  server.add("hot", hot, hot_cfg);
  std::vector<std::string> cold_ids;
  for (int i = 0; i < n_cold; ++i) {
    cold_ids.push_back("cold" + std::to_string(i));
    server.add(cold_ids.back(), cold);  // weight 1 (default)
  }

  // Warm-up: a full batch per worker per model so every executor is built
  // before timing; reset_stats() zeroes what the warm-up recorded.
  for (int round = 0; round < 2; ++round) {
    for (int w = 0; w < so.workers; ++w) {
      for (int b = 0; b < so.batching.max_batch; ++b) {
        server.submit("hot", images[0]);
        for (const std::string& id : cold_ids) server.submit(id, images[0]);
      }
    }
    server.drain();
  }
  server.reset_stats();

  Rng rng(321);
  const std::string hot_id = "hot";
  std::vector<std::future<QTensor>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  const Clock::time_point t0 = Clock::now();
  Clock::time_point next = t0;
  for (int i = 0; i < n; ++i) {
    const double gap_s = -std::log(1.0 - rng.uniform()) / offered_ips;
    next += std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next);
    const double pick = rng.uniform();
    const std::string& id =
        pick < hot_frac
            ? hot_id
            : cold_ids[std::min<std::size_t>(
                  cold_ids.size() - 1,
                  static_cast<std::size_t>((pick - hot_frac) / (1.0 - hot_frac) *
                                           static_cast<double>(cold_ids.size())))];
    futures.push_back(server.submit(id, images[static_cast<std::size_t>(i) % images.size()]));
  }
  // Steady-state snapshot at the end of arrivals: the flush-everything
  // drain below would otherwise dominate the tail percentiles. Wall time is
  // stamped at the same instant so both describe the arrival window.
  LoadResult r;
  r.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.stats = server.stats();
  server.drain();
  for (std::future<QTensor>& f : futures) {
    try {
      f.get();
    } catch (const runtime::ServerRejected&) {
    }
  }
  return r;
}

void print_skewed_row(const char* policy, const LoadResult& r) {
  const auto& models = r.stats.models;
  const runtime::ModelStats& hot = models[0];
  std::uint64_t cold_done = 0, cold_shed = 0;
  double cold_p99 = 0.0;
  for (std::size_t i = 1; i < models.size(); ++i) {
    cold_done += models[i].admission.completed;
    cold_shed += models[i].admission.shed;
    cold_p99 = std::max(cold_p99, models[i].latency.p99_us);
  }
  std::printf("%-12s %8llu %8llu %5.2f %9.0f %9.0f | %9llu %9llu %11.0f\n", policy,
              static_cast<unsigned long long>(hot.admission.completed),
              static_cast<unsigned long long>(hot.admission.shed), hot.dispatch_share,
              hot.latency.p50_us, hot.latency.p99_us,
              static_cast<unsigned long long>(cold_done),
              static_cast<unsigned long long>(cold_shed), cold_p99);
}

struct SloResult {
  double attainment = 0.0;    // met-SLO completions / offered requests
  double met_p99_us = 0.0;    // client-observed p99 of the met requests
  std::uint64_t shed = 0;     // purged + refused + layer-boundary sheds
  std::uint64_t completed = 0;
};

/// Section 5: overload SLO sweep under one shedding mode. Open-loop Poisson
/// arrivals past capacity, every request carrying the same deadline. With
/// queue-only shedding (execution_aware_deadlines=false) a request is purged
/// only once its deadline has already passed in the queue — one that expires
/// a hair after dispatch occupies the worker to completion and finishes
/// late, wasting capacity that feasible requests behind it needed. The
/// execution-aware mode refuses to dispatch work whose remaining slack is
/// below the compiled plan's execution estimate and sheds in-flight batches
/// at the next layer boundary, so worker time concentrates on requests that
/// can still meet their deadline: attainment rises and the met-request tail
/// shortens. Latencies are measured client-side (submit to future-ready,
/// consumed in submit order) because ServerStats percentiles cover all
/// completions, late ones included.
SloResult run_slo_overload(bswp::Session& model, bool exec_aware, double offered_ips,
                           microseconds slo, int n, std::span<const Tensor> images) {
  runtime::ServerOptions so;
  so.workers = 1;
  so.execution_aware_deadlines = exec_aware;
  so.batching.max_batch = 4;
  so.batching.max_delay = microseconds{200};
  so.queue.capacity = 1024;
  so.queue.policy = runtime::QueuePolicy::kBlock;
  runtime::InferenceServer server(so);
  server.register_model("m", model.network(),
                        runtime::ModelConfig{so.batching, so.queue, 1});

  for (int i = 0; i < 2 * so.batching.max_batch; ++i) {
    server.submit("m", images[0]);
  }
  server.drain();  // executor warm
  server.reset_stats();

  // The consumer walks futures in submit order concurrently with arrivals,
  // stamping each completion as its get() returns — within consumer lag of
  // the true completion instant (requests finish near-FIFO here, so the lag
  // is the time to pop already-ready futures).
  struct Timed {
    std::future<QTensor> fut;
    Clock::time_point submitted;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Timed> inbox;
  bool arrivals_done = false;
  SloResult r;
  std::vector<double> met_us;
  std::thread consumer([&] {
    for (;;) {
      Timed item;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !inbox.empty() || arrivals_done; });
        if (inbox.empty()) return;
        item = std::move(inbox.front());
        inbox.pop_front();
      }
      try {
        item.fut.get();
        ++r.completed;
        const double e2e_us =
            std::chrono::duration<double, std::micro>(Clock::now() - item.submitted).count();
        if (e2e_us <= static_cast<double>(slo.count())) met_us.push_back(e2e_us);
      } catch (const runtime::ServerRejected&) {
        ++r.shed;
      }
    }
  });

  Rng rng(99);
  Clock::time_point next = Clock::now();
  for (int i = 0; i < n; ++i) {
    const double gap_s = -std::log(1.0 - rng.uniform()) / offered_ips;
    next += std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next);
    runtime::SubmitOptions opt;
    opt.deadline = slo;
    const Clock::time_point t = Clock::now();
    std::future<QTensor> fut =
        server.submit("m", images[static_cast<std::size_t>(i) % images.size()], opt);
    {
      std::lock_guard<std::mutex> lock(mu);
      inbox.push_back(Timed{std::move(fut), t});
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    arrivals_done = true;
  }
  cv.notify_one();
  consumer.join();
  server.drain();

  r.attainment = static_cast<double>(met_us.size()) / static_cast<double>(n);
  if (!met_us.empty()) {
    std::sort(met_us.begin(), met_us.end());
    const std::size_t rank =
        std::min(met_us.size() - 1,
                 static_cast<std::size_t>(std::ceil(0.99 * static_cast<double>(met_us.size()))));
    r.met_p99_us = met_us[rank];
  }
  return r;
}

struct AutoscaleResult {
  runtime::ServerStats settled;
  double burst_p99_us = 0.0;
};

/// Section 3: load step against an autoscaling pool. Returns once the pool
/// has shrunk back to min_workers (or a timeout passes).
AutoscaleResult run_autoscaler_step(bswp::Session& hot, double capacity_1w,
                                    std::span<const Tensor> images) {
  runtime::ServerOptions so;
  so.workers = 1;
  so.batching.max_batch = 8;
  so.batching.max_delay = microseconds{1000};
  so.queue.capacity = 1024;
  so.queue.policy = runtime::QueuePolicy::kBlock;
  so.autoscaler.enabled = true;
  so.autoscaler.min_workers = 1;
  so.autoscaler.max_workers = 4;
  so.autoscaler.interval = std::chrono::microseconds{2000};
  so.autoscaler.up_queue_per_worker = 4.0;
  so.autoscaler.up_consecutive = 2;
  so.autoscaler.down_consecutive = 4;
  so.autoscaler.cooldown = std::chrono::microseconds{10000};

  bswp::Server server(so);
  server.add("hot", hot);
  server.submit("hot", images[0]).get();  // build the first executor
  server.reset_stats();

  // Step: a Poisson burst at ~2.5x one worker's capacity.
  const double offered = 2.5 * capacity_1w;
  const int n = smoke_scaled(300, 24);
  Rng rng(55);
  std::vector<std::future<QTensor>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  Clock::time_point next = Clock::now();
  for (int i = 0; i < n; ++i) {
    const double gap_s = -std::log(1.0 - rng.uniform()) / offered;
    next += std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next);
    futures.push_back(server.submit("hot", images[static_cast<std::size_t>(i) % images.size()]));
  }
  server.drain();
  for (std::future<QTensor>& f : futures) f.get();
  const runtime::ServerStats under_load = server.stats();

  // Idle: wait (bounded) for the relief streak to walk the pool back down.
  const Clock::time_point give_up = Clock::now() + std::chrono::seconds(10);
  while (server.worker_count() > so.autoscaler.min_workers && Clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const runtime::ServerStats settled = server.stats();
  std::printf("autoscaler: min=%d max=%d  peak=%d  ups=%llu downs=%llu  settled=%d  "
              "burst p99=%.0f us\n",
              so.autoscaler.min_workers, so.autoscaler.max_workers, settled.peak_workers,
              static_cast<unsigned long long>(settled.scale_up_events),
              static_cast<unsigned long long>(settled.scale_down_events),
              settled.current_workers, under_load.latency.p99_us);
  return AutoscaleResult{settled, under_load.latency.p99_us};
}

int run_bench() {
  // Two untrained networks (BN stats seeded): a pooled bit-serial ResNet-s
  // and a baseline-kernel TinyConv — server throughput depends only on
  // geometry, so training would be wasted bench time.
  BenchDataset d = cifar_like();
  d.model_opts.width = 0.5f;
  quant::CalibrateOptions qo;
  qo.num_samples = smoke_scaled(32, 8);

  nn::Graph rg = models::build_resnet_s(d.model_opts);
  Rng rng(7);
  rg.init_weights(rng);
  pool::CodecOptions co;
  co.pool_size = 64;
  co.kmeans_iters = smoke_scaled(5, 2);
  co.max_cluster_vectors = smoke_scaled(4000, 1000);
  Session resnet = Deployment::from(rg)
                       .with_pool(co)
                       .seed_batchnorm(16)
                       .calibrate(*d.train, qo)
                       .compile();

  nn::Graph tg = models::build_tinyconv(d.model_opts);
  Rng rng2(8);
  tg.init_weights(rng2);
  Session tiny =
      Deployment::from(tg).seed_batchnorm(16).calibrate(*d.train, qo).compile();

  std::vector<Tensor> images;
  for (int i = 0; i < 16; ++i) {
    Tensor x({1, 3, d.model_opts.image_size, d.model_opts.image_size});
    d.train->sample(i % d.train->size(), x.data());
    images.push_back(std::move(x));
  }

  // Calibrate offered load to this host: single-executor ResNet-s latency
  // bounds one worker's capacity (TinyConv is cheaper, so the blend runs a
  // little faster — the sweep factors stay meaningful either way).
  runtime::Executor exec(resnet.network());
  exec.run_view(images[0]);
  const Clock::time_point t0 = Clock::now();
  const int kCal = smoke_scaled(24, 6);
  for (int i = 0; i < kCal; ++i) exec.run_view(images[static_cast<std::size_t>(i) % images.size()]);
  const double img_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count() / kCal;
  const double capacity_1w = 1e6 / img_us;

  std::printf("bench_server: ResNet-s (pooled) + TinyConv (baseline), "
              "ResNet-s %.0f us/img => ~%.0f img/s per worker\n",
              img_us, capacity_1w);
  std::printf("%7s %10s %8s %6s %6s %11s %6s %8s %8s\n", "workers", "offered/s", "ddl us",
              "done", "shed", "achieved/s", "batch", "p50 us", "p99 us");

  const int n = smoke_scaled(240, 24);

  // Offered load x batching deadline at a fixed worker count.
  {
    const int workers = 2;
    const double cap = capacity_1w * workers;
    for (double load : smoke_mode() ? std::vector<double>{0.8}
                                    : std::vector<double>{0.5, 0.9, 1.5}) {
      for (microseconds ddl :
           smoke_mode() ? std::vector<microseconds>{microseconds{1000}}
                        : std::vector<microseconds>{microseconds{0}, microseconds{1000},
                                                    microseconds{5000}}) {
        const double offered = load * cap;
        print_row(workers, offered, ddl,
                  run_open_loop(resnet, tiny, workers, ddl, offered, n, images));
      }
    }
  }

  // Worker scaling at fixed relative load and deadline. The per-worker-count
  // rows feed BENCH_server.json so bench_compare.sh can diff runs.
  JsonWriter jw;
  jw.add("smoke_mode", smoke_mode());
  jw.add("capacity_1w_per_s", capacity_1w);
  for (int workers : smoke_mode() ? std::vector<int>{2} : std::vector<int>{1, 2, 4}) {
    const double offered = 0.9 * capacity_1w * workers;
    const LoadResult r =
        run_open_loop(resnet, tiny, workers, microseconds{1000}, offered, n, images);
    print_row(workers, offered, microseconds{1000}, r);
    const std::string prefix = "w" + std::to_string(workers) + "_";
    jw.add(prefix + "achieved_per_s",
           r.wall_seconds > 0.0
               ? static_cast<double>(r.stats.admission.completed) / r.wall_seconds
               : 0.0);
    jw.add(prefix + "p50_us", r.stats.latency.p50_us);
    jw.add(prefix + "p99_us", r.stats.latency.p99_us);
    jw.add(prefix + "mean_batch", r.stats.mean_batch_size);
  }

  // --- Section 2: skewed load, scheduling-policy sweep ----------------------
  // One hot registration (50% of requests, weight 8) + three cold
  // registrations (weight 1) of the same ResNet-s, offered at 1.15x the
  // pool's measured saturated throughput so every comparison runs with a
  // genuine overload backlog (identical per-batch cost across models
  // isolates scheduling). Single-executor img/s does not double with a
  // second worker (shared memory bandwidth), so capacity is probed with a
  // short closed-loop saturated run on a real 2-worker server.
  double cap_2w;
  {
    runtime::ServerOptions co2;
    co2.workers = 2;
    co2.batching.max_batch = 8;
    co2.batching.max_delay = microseconds{0};
    co2.queue.capacity = 1024;
    bswp::Server cserver(co2);
    cserver.add("m", resnet);
    for (int i = 0; i < 2 * co2.batching.max_batch; ++i) cserver.submit("m", images[0]);
    cserver.drain();  // both workers warm
    const int kSat = smoke_scaled(240, 24);
    const Clock::time_point c0 = Clock::now();
    for (int i = 0; i < kSat; ++i) {
      cserver.submit("m", images[static_cast<std::size_t>(i) % images.size()]);
    }
    cserver.drain();
    cap_2w = kSat / std::chrono::duration<double>(Clock::now() - c0).count();
  }

  const double hot_frac = 0.5;
  const int n_cold = 3;
  const double skew_offered = 1.15 * cap_2w;
  const int n_skew = smoke_scaled(900, 32);

  std::printf("\nbench_server: skewed load — 1 hot (%.0f%% of traffic, weight 8) + "
              "%d cold (weight 1), all ResNet-s, 2 workers, measured capacity %.0f/s, "
              "offered %.0f/s (1.15x)\n",
              100.0 * hot_frac, n_cold, cap_2w, skew_offered);
  std::printf("%-12s %8s %8s %5s %9s %9s | %9s %9s %11s\n", "policy", "hot done", "hot shed",
              "share", "hot p50", "hot p99", "cold done", "cold shed", "cold p99max");
  const LoadResult rr =
      run_skewed(resnet, resnet, n_cold, runtime::SchedulePolicy::kRoundRobin,
                 /*hot_weight=*/8, skew_offered, hot_frac, n_skew, images);
  print_skewed_row("round-robin", rr);
  const LoadResult wd =
      run_skewed(resnet, resnet, n_cold, runtime::SchedulePolicy::kWeightedDeficit,
                 /*hot_weight=*/8, skew_offered, hot_frac, n_skew, images);
  print_skewed_row("weighted", wd);
  jw.add("capacity_2w_per_s", cap_2w);
  jw.add("skew_rr_hot_p99_us", rr.stats.models[0].latency.p99_us);
  jw.add("skew_wd_hot_p99_us", wd.stats.models[0].latency.p99_us);
  jw.add("skew_rr_hot_completed", rr.stats.models[0].admission.completed);
  jw.add("skew_wd_hot_completed", wd.stats.models[0].admission.completed);

  // --- Section 3: batched vs per-image dispatch -----------------------------
  // Closed-loop saturated flood on one worker, max_batch 8: the queue stays
  // full so every batch forms at max_batch, isolating the dispatch style.
  // batched_execution=true runs each formed batch as ONE run_batch_view
  // call (stationary operands amortized); =false is the per-request loop.
  // Logits are bit-identical either way; the speedup is the whole point of
  // batched execution. Measured on a 2-bit pooled deployment — the paper's
  // low-precision regime, where the batch-transposed unpack in the SIMD
  // bit-serial cores amortizes the most per-image work.
  {
    Session resnet_a2 = Deployment::from(rg)
                            .with_pool(co)
                            .seed_batchnorm(16)
                            .calibrate(*d.train, qo)
                            .act_bits(2)
                            .compile();
    std::printf("\nbench_server: batched vs per-image dispatch (1 worker, "
                "max_batch 8, act_bits 2, saturated)\n");
    std::printf("%-12s %10s %6s %12s %12s\n", "dispatch", "achieved/s", "batch", "exec p50 us",
                "e2e p50 us");
    double ips[2] = {0.0, 0.0};
    for (int mode = 0; mode < 2; ++mode) {
      const bool batched = mode == 1;
      runtime::ServerOptions bo;
      bo.workers = 1;
      bo.batched_execution = batched;
      bo.batching.max_batch = 8;
      bo.batching.max_delay = microseconds{1000};
      bo.queue.capacity = 1024;
      bo.queue.policy = runtime::QueuePolicy::kBlock;
      bswp::Server server(bo);
      server.add("m", resnet_a2);
      for (int i = 0; i < 2 * bo.batching.max_batch; ++i) server.submit("m", images[0]);
      server.drain();  // worker + executor warm
      server.reset_stats();
      const int kSat = smoke_scaled(240, 24);
      const Clock::time_point b0 = Clock::now();
      for (int i = 0; i < kSat; ++i) {
        server.submit("m", images[static_cast<std::size_t>(i) % images.size()]);
      }
      server.drain();
      ips[mode] = kSat / std::chrono::duration<double>(Clock::now() - b0).count();
      const runtime::ServerStats s = server.stats();
      std::printf("%-12s %10.0f %6.2f %12.0f %12.0f\n", batched ? "batched" : "per-image",
                  ips[mode], s.mean_batch_size, s.exec_latency.p50_us, s.latency.p50_us);
      const std::string prefix = batched ? "dispatch_batched_" : "dispatch_perimg_";
      jw.add(prefix + "per_s", ips[mode]);
      jw.add(prefix + "mean_batch", s.mean_batch_size);
      jw.add(prefix + "exec_p50_us", s.exec_latency.p50_us);
    }
    if (ips[0] > 0.0) {
      std::printf("batched dispatch speedup: %.2fx\n", ips[1] / ips[0]);
      jw.add("dispatch_batched_speedup", ips[1] / ips[0]);
    }
  }

  // --- Section 4: autoscaler load step --------------------------------------
  std::printf("\n");
  const AutoscaleResult as = run_autoscaler_step(resnet, capacity_1w, images);
  jw.add("autoscale_peak_workers", as.settled.peak_workers);
  jw.add("autoscale_scale_ups", as.settled.scale_up_events);
  jw.add("autoscale_scale_downs", as.settled.scale_down_events);
  jw.add("autoscale_burst_p99_us", as.burst_p99_us);

  // --- Section 5: overload SLO attainment -----------------------------------
  // 2x one worker's capacity, SLO at 3x the single-image execution time:
  // roughly half the offered load is doomed no matter what — the question is
  // whether the worker wastes time finishing it late (queue-only) or sheds
  // it and spends the reclaimed time meeting deadlines (execution-aware).
  {
    const double slo_offered = 2.0 * capacity_1w;
    const microseconds slo{static_cast<long long>(3.0 * img_us)};
    // Smoke keeps enough requests that the met-request percentile has a
    // real sample behind it (attainment ~10-40% of n).
    const int n_slo = smoke_scaled(400, 96);
    std::printf("\nbench_server: overload SLO attainment (1 worker, offered %.0f/s = 2.0x "
                "capacity, SLO %lld us)\n",
                slo_offered, static_cast<long long>(slo.count()));
    std::printf("%-16s %10s %10s %8s %8s\n", "shedding", "attainment", "met p99", "done",
                "shed");
    const SloResult qo_r =
        run_slo_overload(resnet, /*exec_aware=*/false, slo_offered, slo, n_slo, images);
    std::printf("%-16s %9.1f%% %9.0f %8llu %8llu\n", "queue-only", 100.0 * qo_r.attainment,
                qo_r.met_p99_us, static_cast<unsigned long long>(qo_r.completed),
                static_cast<unsigned long long>(qo_r.shed));
    const SloResult ea_r =
        run_slo_overload(resnet, /*exec_aware=*/true, slo_offered, slo, n_slo, images);
    std::printf("%-16s %9.1f%% %9.0f %8llu %8llu\n", "execution-aware", 100.0 * ea_r.attainment,
                ea_r.met_p99_us, static_cast<unsigned long long>(ea_r.completed),
                static_cast<unsigned long long>(ea_r.shed));
    jw.add("slo_queueonly_attainment", qo_r.attainment);
    jw.add("slo_execaware_attainment", ea_r.attainment);
    jw.add("slo_queueonly_met_p99_us", qo_r.met_p99_us);
    jw.add("slo_execaware_met_p99_us", ea_r.met_p99_us);
  }
  jw.write("BENCH_server.json");
  return 0;
}

}  // namespace
}  // namespace bswp::bench

int main() { return bswp::bench::run_bench(); }
