// Async inference-server benchmark: open-loop Poisson arrivals against the
// InferenceServer, sweeping offered load x batching deadline x worker count.
//
//   columns: workers  offered/s  deadline  done  shed  achieved/s  batch  p50/p99 us
//
// Open-loop means arrivals are scheduled ahead of time from an exponential
// interarrival distribution and submitted at their scheduled instant
// regardless of completions — the generator does not slow down when the
// server does, so past saturation the bounded queue (kShedOldest here) is
// what absorbs the excess and the shed column shows it. Two networks (a
// pooled ResNet-s and a baseline TinyConv) are registered on one server and
// requests alternate between them, so every row also exercises round-robin
// cross-model batching.
//
// Reading the table: below saturation, achieved tracks offered and a longer
// batching deadline trades p50/p99 latency for bigger batches; above
// saturation, achieved plateaus at capacity, queues fill, latency is
// dominated by queueing and shedding begins. Numbers under smoke mode
// (BSWP_BENCH_SMOKE=1, CI) are meaningless — only the code path matters.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "common.h"
#include "runtime/executor.h"
#include "runtime/server/inference_server.h"

namespace bswp::bench {
namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::microseconds;

struct LoadResult {
  runtime::ServerStats stats;
  double wall_seconds = 0.0;
};

/// Fire `n` requests at the server with Exp(offered_ips) interarrival times,
/// alternating between the registered models, then drain.
LoadResult run_open_loop(bswp::Session& resnet, bswp::Session& tiny, int workers,
                         microseconds deadline, double offered_ips, int n,
                         std::span<const Tensor> images) {
  runtime::ServerOptions so;
  so.workers = workers;
  so.batching.max_batch = 8;
  so.batching.max_delay = deadline;
  so.queue.capacity = 64;
  so.queue.policy = runtime::QueuePolicy::kShedOldest;

  bswp::Server server(so);
  server.add("resnet-s", resnet).add("tinyconv", tiny);
  // Warm-up: flood a full batch per worker per model (twice) so every
  // worker almost certainly builds both of its executors before timing —
  // a burst of k*max_batch requests forms k concurrent batches, which
  // spread across all free workers. reset_stats() then zeroes whatever the
  // warm-up recorded so the row reflects only the timed run.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 2 * workers * so.batching.max_batch; ++i) {
      server.submit(i % 2 == 0 ? "resnet-s" : "tinyconv", images[0]);
    }
    server.drain();
  }
  server.reset_stats();

  Rng rng(123);
  std::vector<std::future<QTensor>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  const Clock::time_point t0 = Clock::now();
  Clock::time_point next = t0;
  for (int i = 0; i < n; ++i) {
    // Exponential interarrival: -ln(1-u) / lambda.
    const double gap_s = -std::log(1.0 - rng.uniform()) / offered_ips;
    next += std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next);
    futures.push_back(server.submit(i % 2 == 0 ? "resnet-s" : "tinyconv",
                                    images[static_cast<std::size_t>(i) % images.size()]));
  }
  server.drain();

  LoadResult r;
  r.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  // Consume every future (shed requests surface ServerRejected here; the
  // admission counters are the ground truth the table reports).
  for (std::future<QTensor>& f : futures) {
    try {
      f.get();
    } catch (const runtime::ServerRejected&) {
    }
  }
  r.stats = server.stats();
  return r;
}

void print_row(int workers, double offered_ips, microseconds deadline, const LoadResult& r) {
  const auto& s = r.stats;
  std::printf("%7d %10.0f %8lld %6llu %6llu %11.0f %6.2f %8.0f %8.0f\n", workers, offered_ips,
              static_cast<long long>(deadline.count()),
              static_cast<unsigned long long>(s.admission.completed),
              static_cast<unsigned long long>(s.admission.shed),
              r.wall_seconds > 0.0 ? static_cast<double>(s.admission.completed) / r.wall_seconds
                                   : 0.0,
              s.mean_batch_size, s.latency.p50_us, s.latency.p99_us);
}

int run_bench() {
  // Two untrained networks (BN stats seeded): a pooled bit-serial ResNet-s
  // and a baseline-kernel TinyConv — server throughput depends only on
  // geometry, so training would be wasted bench time.
  BenchDataset d = cifar_like();
  d.model_opts.width = 0.5f;
  quant::CalibrateOptions qo;
  qo.num_samples = smoke_scaled(32, 8);

  nn::Graph rg = models::build_resnet_s(d.model_opts);
  Rng rng(7);
  rg.init_weights(rng);
  pool::CodecOptions co;
  co.pool_size = 64;
  co.kmeans_iters = smoke_scaled(5, 2);
  co.max_cluster_vectors = smoke_scaled(4000, 1000);
  Session resnet = Deployment::from(rg)
                       .with_pool(co)
                       .seed_batchnorm(16)
                       .calibrate(*d.train, qo)
                       .compile();

  nn::Graph tg = models::build_tinyconv(d.model_opts);
  Rng rng2(8);
  tg.init_weights(rng2);
  Session tiny =
      Deployment::from(tg).seed_batchnorm(16).calibrate(*d.train, qo).compile();

  std::vector<Tensor> images;
  for (int i = 0; i < 16; ++i) {
    Tensor x({1, 3, d.model_opts.image_size, d.model_opts.image_size});
    d.train->sample(i % d.train->size(), x.data());
    images.push_back(std::move(x));
  }

  // Calibrate offered load to this host: single-executor ResNet-s latency
  // bounds one worker's capacity (TinyConv is cheaper, so the blend runs a
  // little faster — the sweep factors stay meaningful either way).
  runtime::Executor exec(resnet.network());
  exec.run_view(images[0]);
  const Clock::time_point t0 = Clock::now();
  const int kCal = smoke_scaled(24, 6);
  for (int i = 0; i < kCal; ++i) exec.run_view(images[static_cast<std::size_t>(i) % images.size()]);
  const double img_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count() / kCal;
  const double capacity_1w = 1e6 / img_us;

  std::printf("bench_server: ResNet-s (pooled) + TinyConv (baseline), "
              "ResNet-s %.0f us/img => ~%.0f img/s per worker\n",
              img_us, capacity_1w);
  std::printf("%7s %10s %8s %6s %6s %11s %6s %8s %8s\n", "workers", "offered/s", "ddl us",
              "done", "shed", "achieved/s", "batch", "p50 us", "p99 us");

  const int n = smoke_scaled(240, 24);

  // Offered load x batching deadline at a fixed worker count.
  {
    const int workers = 2;
    const double cap = capacity_1w * workers;
    for (double load : smoke_mode() ? std::vector<double>{0.8}
                                    : std::vector<double>{0.5, 0.9, 1.5}) {
      for (microseconds ddl :
           smoke_mode() ? std::vector<microseconds>{microseconds{1000}}
                        : std::vector<microseconds>{microseconds{0}, microseconds{1000},
                                                    microseconds{5000}}) {
        const double offered = load * cap;
        print_row(workers, offered, ddl,
                  run_open_loop(resnet, tiny, workers, ddl, offered, n, images));
      }
    }
  }

  // Worker scaling at fixed relative load and deadline.
  for (int workers : smoke_mode() ? std::vector<int>{2} : std::vector<int>{1, 2, 4}) {
    const double offered = 0.9 * capacity_1w * workers;
    print_row(workers, offered, microseconds{1000},
              run_open_loop(resnet, tiny, workers, microseconds{1000}, offered, n, images));
  }
  return 0;
}

}  // namespace
}  // namespace bswp::bench

int main() { return bswp::bench::run_bench(); }
