// Serving-path benchmark: steady-state throughput and heap-allocation count
// of the arena Executor / ServingPool versus the per-run-allocation
// execution style the runtime had before the arena refactor.
//
//   columns: engine              executions  allocs/run  img/s  p50/p95/p99 us
//
// "fresh-executor" rebuilds an Executor per image — every activation slot
// and the scratch region are re-allocated each run, which is exactly the
// allocation profile of the old allocate-per-layer engine (one vector per
// layer per run) collapsed into one block. "arena (reused)" is the
// steady-state path: zero allocations per run. The worker rows measure
// Session::run_batch on the persistent pool at 1/2/4/8 workers.
//
// Emits BENCH_serving.json (bench::JsonWriter) for scripts/bench_compare.sh.
#include <chrono>
#include <cstdio>

#include "common.h"
#include "core/counting_allocator.h"

namespace bswp::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int run_bench() {
  // Untrained pooled ResNet-s (BN stats seeded): engine throughput depends
  // only on geometry, so training would be wasted bench time.
  BenchDataset d = cifar_like();
  d.model_opts.width = 0.5f;
  nn::Graph graph = models::build_resnet_s(d.model_opts);
  Rng rng(7);
  graph.init_weights(rng);

  pool::CodecOptions co;
  co.pool_size = 64;
  co.kmeans_iters = 5;
  co.max_cluster_vectors = 4000;
  quant::CalibrateOptions qo;
  qo.num_samples = 32;
  Session session = Deployment::from(graph)
                        .with_pool(co)
                        .seed_batchnorm(16)
                        .calibrate(*d.train, qo)
                        .compile();

  // Host arena (what every engine below actually allocates); the MCU
  // deployment plan is bit-packed and smaller.
  std::printf("bench_serving: pooled ResNet-s width=%.2f, %zu plans, host arena %.1f kB\n",
              d.model_opts.width, session.network().plans.size(),
              static_cast<double>(runtime::Executor(session.network()).arena_bytes()) / 1024.0);

  JsonWriter jw;
  jw.add("smoke_mode", smoke_mode());
  const int kIters = smoke_scaled(48, 12);
  std::vector<Tensor> images;
  for (int i = 0; i < kIters; ++i) {
    Tensor x({1, 3, d.model_opts.image_size, d.model_opts.image_size});
    d.train->sample(i % d.train->size(), x.data());
    images.push_back(std::move(x));
  }

  std::printf("%-22s %10s %11s %9s %9s %9s %9s\n", "engine", "images", "allocs/img",
              "img/s", "p50 us", "p95 us", "p99 us");

  // 1. Fresh executor per image: the pre-arena allocation profile.
  {
    runtime::Executor(session.network()).run_view(images[0]);  // warm caches
    const std::uint64_t a0 = alloc_count();
    const Clock::time_point t0 = Clock::now();
    for (const Tensor& x : images) {
      runtime::Executor exec(session.network());
      exec.run_view(x);
    }
    const double dt = seconds_since(t0);
    std::printf("%-22s %10d %11.1f %9.0f %9s %9s %9s\n", "fresh-executor", kIters,
                static_cast<double>(alloc_count() - a0) / kIters, kIters / dt, "-", "-", "-");
    jw.add("fresh_executor_ips", kIters / dt);
    jw.add("fresh_executor_allocs_per_img", static_cast<double>(alloc_count() - a0) / kIters);
  }

  // 2. Reused arena executor: steady-state zero-allocation inference.
  {
    runtime::Executor exec(session.network());
    exec.run_view(images[0]);  // warm-up
    const std::uint64_t a0 = alloc_count();
    const Clock::time_point t0 = Clock::now();
    for (const Tensor& x : images) exec.run_view(x);
    const double dt = seconds_since(t0);
    std::printf("%-22s %10d %11.1f %9.0f %9s %9s %9s\n", "arena (reused)", kIters,
                static_cast<double>(alloc_count() - a0) / kIters, kIters / dt, "-", "-", "-");
    jw.add("arena_reused_ips", kIters / dt);
    jw.add("arena_reused_allocs_per_img", static_cast<double>(alloc_count() - a0) / kIters);
  }

  // 3. Persistent serving pool at 1/2/4/8 workers (second batch per count so
  // the pool and its per-worker arenas are warm).
  for (int workers : {1, 2, 4, 8}) {
    session.run_batch(images, workers);  // warm the pool
    const BatchResult r = session.run_batch_stats(images, workers);
    char label[32];
    std::snprintf(label, sizeof(label), "serving-pool x%d", workers);
    std::printf("%-22s %10zu %11s %9.0f %9.0f %9.0f %9.0f\n", label, r.stats.images, "-",
                r.stats.throughput_ips, r.stats.latency.p50_us, r.stats.latency.p95_us,
                r.stats.latency.p99_us);
    const std::string prefix = "pool_x" + std::to_string(workers);
    jw.add(prefix + "_ips", r.stats.throughput_ips);
    jw.add(prefix + "_p50_us", r.stats.latency.p50_us);
    jw.add(prefix + "_p99_us", r.stats.latency.p99_us);
  }
  // 4. Batched executor calls vs the per-image steal loop: the same pool
  // with exec_batch=8 (workers run chunks through one run_batch_view call)
  // against exec_batch=1 (the pre-batching per-image loop). Results are
  // bit-identical; the gap is the stationary-operand amortization.
  for (int workers : {1, 4}) {
    for (int exec_batch : {1, 8}) {
      runtime::ServingPool pool(session.network(), exec_batch);
      pool.run(images, workers);  // warm the pool
      runtime::BatchStats s;
      pool.run(images, workers, &s);
      char label[32];
      std::snprintf(label, sizeof(label), "pool x%d eb=%d", workers, exec_batch);
      std::printf("%-22s %10zu %11s %9.0f %9.0f %9.0f %9.0f\n", label, s.images, "-",
                  s.throughput_ips, s.latency.p50_us, s.latency.p95_us, s.latency.p99_us);
      const std::string prefix = "pool_x" + std::to_string(workers) +
                                 (exec_batch > 1 ? "_batched" : "_perimg");
      jw.add(prefix + "_ips", s.throughput_ips);
      jw.add(prefix + "_p50_us", s.latency.p50_us);
    }
  }
  jw.write("BENCH_serving.json");
  return 0;
}

}  // namespace
}  // namespace bswp::bench

int main() { return bswp::bench::run_bench(); }
