// Session-serving benchmark: warm per-session state vs cold per-token
// resubmission, and concurrent-session scaling (see docs/sessions.md).
//
// Two sections:
//
//  1. Warm vs cold: S concurrent sessions each greedy-decode N tokens from
//     a short prompt. Warm serving keeps the recurrent state per session —
//     one decode step per token. Cold serving (warm_state = false) is the
//     stateless-serving ablation: every token replays the whole history
//     from the zero state, the way a server without session state would
//     have to (token n costs |prompt| + n steps instead of 1). Both modes
//     emit bit-identical tokens, so the aggregate tokens/s ratio isolates
//     exactly what per-session state buys. The expected shape: warm >=
//     1.2x cold (in practice many-x — the gap widens with N since cold is
//     quadratic in generation length).
//
//  2. Concurrent-session scaling: warm aggregate tokens/s, per-token
//     p50/p99 and the session-affinity hit rate as the session count grows
//     over a fixed 2-worker server. Decode chains are sequential per
//     session, so aggregate throughput should grow with sessions until the
//     workers saturate; the affinity hit rate shows sticky placement
//     holding (or honestly degrading) under contention.
//
// Emits BENCH_sessions.json (bench::JsonWriter) for scripts/
// bench_compare.sh. Numbers under smoke mode (BSWP_BENCH_SMOKE=1, CI) are
// meaningless — only the code paths matter.
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "common.h"
#include "quant/calibrate.h"
#include "runtime/pipeline.h"
#include "runtime/sessions/session_manager.h"

namespace bswp::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// Deterministic token LM: fixed-seed weights, calibrated on its own
/// greedy rollouts (the same recipe as tests/test_sessions.cpp).
Session compile_lm(const models::TokenLmOptions& lm, std::uint64_t seed) {
  nn::Graph g = models::build_token_lm(lm);
  Rng rng(seed);
  g.init_weights(rng);
  models::TokenLmRollout cal_ds(g, lm, /*sequences=*/4, /*steps=*/8, seed + 1);
  quant::CalibrateOptions co;
  co.num_samples = cal_ds.size();
  co.batch_size = 8;
  quant::CalibrationResult cal = quant::calibrate(g, cal_ds, co);
  return Session(runtime::compile(g, nullptr, cal, runtime::CompileOptions{}));
}

struct SweepPoint {
  double tokens_per_s = 0.0;   // aggregate across sessions, wall-clock
  double p50_us = 0.0;         // per-token end-to-end
  double p99_us = 0.0;
  double affinity_hit_rate = 0.0;
};

/// S sessions decode `tokens` tokens each, concurrently, on a fresh
/// 2-worker SessionServer; returns the aggregate throughput and the
/// manager's latency/affinity rollup.
SweepPoint run_sessions(const Session& session, const models::TokenLmOptions& lm, int sessions,
                        int tokens, bool warm) {
  runtime::ServerOptions so;
  so.workers = 2;
  runtime::SessionManagerOptions mo;
  mo.warm_state = warm;
  bswp::SessionServer srv(so, mo);
  srv.add("lm", session, lm);

  // Warm the model's arena executors so the timed region measures decode
  // steady state, not first-touch compilation.
  {
    const runtime::SessionId w = srv.open("lm");
    srv.generate(w, {1, 2}, 2);
    srv.close(w);
  }

  const std::vector<int> prompt = {1, 2, 3, 4};
  std::vector<runtime::SessionId> ids;
  for (int s = 0; s < sessions; ++s) ids.push_back(srv.open("lm"));

  const Clock::time_point t0 = Clock::now();
  std::vector<std::future<runtime::GenerationResult>> futs;
  for (int s = 0; s < sessions; ++s) {
    futs.push_back(srv.generate_async(ids[static_cast<std::size_t>(s)], prompt, tokens));
  }
  std::uint64_t emitted = 0;
  for (auto& f : futs) emitted += f.get().tokens.size();
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  const runtime::SessionServingStats st = srv.stats().sessions;
  SweepPoint p;
  p.tokens_per_s = wall > 0.0 ? static_cast<double>(emitted) / wall : 0.0;
  p.p50_us = st.token_latency.p50_us;
  p.p99_us = st.token_latency.p99_us;
  p.affinity_hit_rate = st.affinity_hit_rate;
  return p;
}

int run_bench() {
  models::TokenLmOptions lm;
  lm.vocab = 64;
  lm.embed_dim = 16;
  lm.state_dim = 32;
  lm.hidden_dim = 32;
  const Session session = compile_lm(lm, 7);

  JsonWriter jw;
  jw.add("smoke_mode", smoke_mode());
  const int tokens = smoke_scaled(48, 8);
  jw.add("tokens_per_session", tokens);

  // --- Section 1: warm state vs cold per-token resubmission ----------------
  print_header("bench_sessions: warm session state vs cold resubmission");
  for (int sessions : {1, 4}) {
    const SweepPoint warm = run_sessions(session, lm, sessions, tokens, /*warm=*/true);
    const SweepPoint cold = run_sessions(session, lm, sessions, tokens, /*warm=*/false);
    const double speedup = cold.tokens_per_s > 0.0 ? warm.tokens_per_s / cold.tokens_per_s : 0.0;
    std::printf("%d session(s) x %d tokens: warm %8.0f tok/s, cold %7.0f tok/s "
                "-> %.1fx\n",
                sessions, tokens, warm.tokens_per_s, cold.tokens_per_s, speedup);
    const std::string sfx = "_s" + std::to_string(sessions);
    jw.add("warm_tokens_per_s" + sfx, warm.tokens_per_s);
    jw.add("cold_tokens_per_s" + sfx, cold.tokens_per_s);
    jw.add("warm_over_cold_speedup" + sfx, speedup);
  }

  // --- Section 2: concurrent-session scaling -------------------------------
  print_header("bench_sessions: concurrent-session scaling (warm, 2 workers)");
  for (int sessions : {1, 2, 4, 8}) {
    const SweepPoint p = run_sessions(session, lm, sessions, tokens, /*warm=*/true);
    std::printf("%d session(s): %8.0f tok/s, per-token p50 %6.0f us, p99 %6.0f us, "
                "affinity hit rate %.0f%%\n",
                sessions, p.tokens_per_s, p.p50_us, p.p99_us, 100.0 * p.affinity_hit_rate);
    const std::string sfx = "_s" + std::to_string(sessions);
    jw.add("scale_tokens_per_s" + sfx, p.tokens_per_s);
    jw.add("scale_token_p50_us" + sfx, p.p50_us);
    jw.add("scale_token_p99_us" + sfx, p.p99_us);
    jw.add("scale_affinity_hit_rate" + sfx, p.affinity_hit_rate);
  }

  jw.write("BENCH_sessions.json");
  return 0;
}

}  // namespace
}  // namespace bswp::bench

int main() { return bswp::bench::run_bench(); }
