// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure. The accuracy benches
// train width-scaled models on the synthetic datasets (DESIGN.md §2
// substitutions) with fixed seeds, run the full Figure 2 pipeline
// (cluster -> fine-tune -> calibrate -> compile), and evaluate through the
// real integer engine. The latency benches use paper-scale (width 1.0)
// architectures — event counts depend only on geometry, not on weights.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/bswp.h"
#include "core/rng.h"
#include "models/zoo.h"
#include "nn/trainer.h"
#include "pool/storage_model.h"

namespace bswp::bench {

/// Benchmark smoke mode (BSWP_BENCH_SMOKE=1): shrink datasets, training
/// epochs and calibration so every bench binary exercises its full pipeline
/// in seconds. CI runs each bench this way so the targets cannot rot between
/// performance PRs; numbers printed under smoke mode are meaningless.
inline bool smoke_mode() {
  static const bool on = std::getenv("BSWP_BENCH_SMOKE") != nullptr;
  return on;
}

/// `full` normally, a small-but-nonzero stand-in under smoke mode.
inline int smoke_scaled(int full, int smoke) { return smoke_mode() ? smoke : full; }

// ---------------------------------------------------------------------------
// Datasets: fixed-seed synthetic stand-ins (see DESIGN.md substitution table).
// ---------------------------------------------------------------------------

struct BenchDataset {
  std::unique_ptr<data::Dataset> train;
  std::unique_ptr<data::Dataset> test;
  models::ModelOptions model_opts;  // in_channels / image_size / num_classes
};

/// CIFAR-10 stand-in used by the ResNet rows.
inline BenchDataset cifar_like() {
  data::SyntheticCifarOptions o;
  o.num_classes = 10;
  o.train_size = smoke_scaled(768, 96);
  o.test_size = smoke_scaled(192, 48);
  o.image_size = 16;
  o.templates_per_class = 4;
  o.noise_stddev = 0.15f;  // calibrated so float ResNet-14 lands near the
  o.seed = 42;             // paper's 92.26% CIFAR-10 accuracy
  BenchDataset d;
  d.train = std::make_unique<data::SyntheticCifar>(o, true);
  d.test = std::make_unique<data::SyntheticCifar>(o, false);
  d.model_opts.in_channels = 3;
  d.model_opts.image_size = o.image_size;
  d.model_opts.num_classes = o.num_classes;
  return d;
}

/// Quickdraw-100 stand-in used by the TinyConv / MobileNet-v2 rows
/// (class count scaled with the models; keeps the many-class regime).
inline BenchDataset quickdraw_like() {
  data::SyntheticQuickdrawOptions o;
  o.num_classes = 24;
  o.train_size = smoke_scaled(960, 96);
  o.test_size = smoke_scaled(192, 48);
  o.image_size = 20;
  o.jitter = 0.08f;
  o.seed = 7;
  BenchDataset d;
  d.train = std::make_unique<data::SyntheticQuickdraw>(o, true);
  d.test = std::make_unique<data::SyntheticQuickdraw>(o, false);
  d.model_opts.in_channels = 1;
  d.model_opts.image_size = o.image_size;
  d.model_opts.num_classes = o.num_classes;
  return d;
}

// ---------------------------------------------------------------------------
// Pipeline steps
// ---------------------------------------------------------------------------

struct TrainedModel {
  std::string name;
  nn::Graph graph;
  float float_acc = 0.0f;
};

inline TrainedModel train_float(const std::string& name,
                                const std::function<nn::Graph(const models::ModelOptions&)>& build,
                                const BenchDataset& ds, float width, int epochs = 6,
                                uint64_t seed = 1000, bool fake_quant = false) {
  TrainedModel m;
  m.name = name;
  models::ModelOptions mo = ds.model_opts;
  mo.width = width;
  mo.fake_quant = fake_quant;
  m.graph = build(mo);
  Rng rng(seed);
  m.graph.init_weights(rng);
  nn::TrainConfig cfg;
  cfg.epochs = smoke_scaled(epochs, 1);
  cfg.batch_size = 32;
  cfg.lr = 0.08f;
  cfg.lr_step = 4;
  cfg.seed = seed + 1;
  nn::Trainer trainer(cfg);
  m.float_acc = trainer.fit(m.graph, *ds.train, *ds.test).final_test_acc;
  return m;
}

struct PooledModel {
  nn::Graph graph;  // weights projected onto the pool
  pool::PooledNetwork net;
  float finetuned_acc = 0.0f;
};

inline PooledModel pool_and_finetune(const TrainedModel& base, const BenchDataset& ds,
                                     int pool_size, int group_size = 8,
                                     pool::Metric metric = pool::Metric::kCosine,
                                     int finetune_epochs = 3, float lr = 0.02f) {
  PooledModel p;
  p.graph = base.graph;
  pool::CodecOptions co;
  co.pool_size = pool_size;
  co.group_size = group_size;
  co.metric = metric;
  co.kmeans_iters = smoke_scaled(12, 3);
  co.max_cluster_vectors = smoke_scaled(8000, 2000);
  p.net = pool::build_weight_pool(p.graph, co);
  pool::FinetuneOptions fo;
  fo.train.epochs = smoke_scaled(finetune_epochs, 1);
  fo.train.batch_size = 32;
  fo.train.lr = lr;
  fo.train.lr_step = 0;
  p.finetuned_acc = pool::finetune_pooled(p.graph, p.net, *ds.train, *ds.test, fo).final_test_acc;
  return p;
}

/// Build a Deployment mirroring a CompileOptions struct (the bench tables
/// sweep individual fields; the facade re-validates every combination).
inline Deployment make_deployment(const nn::Graph& graph, const pool::PooledNetwork* net,
                                  const BenchDataset& ds, const runtime::CompileOptions& opt,
                                  int cal_samples = 96) {
  Deployment dep = Deployment::from(graph);
  if (net != nullptr) dep.with_pool(*net);
  quant::CalibrateOptions qo;
  qo.num_samples = smoke_scaled(cal_samples, 16);
  dep.with_options(opt).calibrate(*ds.train, qo);
  return dep;
}

/// Engine accuracy through the integer pipeline (pooled if `net` non-null).
inline float engine_accuracy(nn::Graph& graph, const pool::PooledNetwork* net,
                             const BenchDataset& ds, const runtime::CompileOptions& opt,
                             int max_samples = 0) {
  return make_deployment(graph, net, ds, opt).compile().evaluate(*ds.test, max_samples);
}

/// The paper's five network/dataset rows, width-scaled for trainability.
struct PaperRow {
  std::string name;
  std::function<nn::Graph(const models::ModelOptions&)> build;
  bool on_cifar;
  float width;
};

inline std::vector<PaperRow> accuracy_rows() {
  return {
      {"ResNet-s", models::build_resnet_s, true, 0.5f},
      {"ResNet-10", models::build_resnet10, true, 0.25f},
      {"ResNet-14", models::build_resnet14, true, 0.25f},
      {"TinyConv", models::build_tinyconv, false, 0.5f},
      {"MobileNet-v2", models::build_mobilenet_v2, false, 0.25f},
  };
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

// ---------------------------------------------------------------------------
// Machine-readable bench output
// ---------------------------------------------------------------------------

/// Flat JSON emitter for bench metrics: one `"key": value,` pair per line,
/// keys emitted in insertion order. The one-pair-per-line shape is a
/// deliberate contract — scripts/bench_compare.sh diffs two of these files
/// with awk alone (no JSON parser in the image), so nested objects and
/// multi-pair lines are out. Keys name their unit and direction the way
/// stats structs do: `*_us` / `*latency*` / `*p50*`-style keys are
/// lower-is-better, everything else (throughput, hit rates, counts)
/// higher-is-better.
class JsonWriter {
 public:
  void add(const std::string& key, double value) {
    entries_.emplace_back(key, format_double(value));
  }
  void add(const std::string& key, std::uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, int value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }
  void add(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");
  }

  /// Write the collected pairs as a JSON object, one pair per line.
  /// Returns false (after a warning) when the file cannot be opened —
  /// benches keep running; the JSON artifact is best-effort.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", entries_[i].first.c_str(),
                   entries_[i].second.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu metrics)\n", path.c_str(), entries_.size());
    return true;
  }

 private:
  static std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace bswp::bench
