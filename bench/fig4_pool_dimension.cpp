// Figure 4: z-dimension pools vs xy-dimension (3x3 kernel) pools, with and
// without scaling coefficients, across pool sizes, on ResNet-14 / CIFAR-10.
// Expected shape: z-pool >= xy-pool-with-coefficients > xy-pool-without,
// with 64 vectors enough and 32 decent (paper Fig. 4; original 92.26%).
#include "common.h"

namespace {

using namespace bswp;
using namespace bswp::bench;

float finetune_xy(const TrainedModel& base, const BenchDataset& ds, int pool_size,
                  bool coefficients) {
  nn::Graph g = base.graph;
  pool::XyPoolOptions opt;
  opt.pool_size = pool_size;
  opt.use_coefficients = coefficients;
  opt.kmeans_iters = 12;
  opt.max_cluster_vectors = 8000;
  pool::XyPooledNetwork net = pool::build_xy_pool(g, opt);
  pool::reconstruct_xy_weights(g, net);

  nn::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 32;
  cfg.lr = 0.02f;
  cfg.lr_step = 0;
  nn::Trainer trainer(cfg);
  trainer.set_post_step([&net](nn::Graph& graph) {
    pool::reassign_xy_indices(graph, net);
    pool::reconstruct_xy_weights(graph, net);
  });
  return trainer.fit(g, *ds.train, *ds.test).final_test_acc;
}

}  // namespace

int main() {
  using namespace bswp;
  using namespace bswp::bench;

  print_header(
      "Figure 4 — weight pool dimension ablation (ResNet-14 / SyntheticCifar)\n"
      "series: xy-pool (no coeff), xy-pool (+coeff), z-pool (group size 8)");

  BenchDataset ds = cifar_like();
  TrainedModel base = train_float("ResNet-14", models::build_resnet14, ds, 0.25f,
                                  /*epochs=*/5, /*seed=*/21);
  std::printf("\noriginal (float) accuracy: %.2f%%   [paper: 92.26%%]\n\n", base.float_acc);
  std::printf("%-10s %-18s %-18s %-14s\n", "pool size", "xy (no coeff) %", "xy (+coeff) %",
              "z g8 %");

  for (int pool_size : {16, 32, 64}) {
    const float xy_plain = finetune_xy(base, ds, pool_size, /*coefficients=*/false);
    const float xy_coeff = finetune_xy(base, ds, pool_size, /*coefficients=*/true);
    PooledModel z = pool_and_finetune(base, ds, pool_size, /*group_size=*/8);
    std::printf("%-10d %-18.2f %-18.2f %-14.2f\n", pool_size, xy_plain, xy_coeff,
                z.finetuned_acc);
  }
  std::printf(
      "\nshape check (paper Fig. 4): z-pool matches or beats xy+coeff at every\n"
      "pool size and clearly beats xy without coefficients; 64 vectors suffice.\n");
  return 0;
}
