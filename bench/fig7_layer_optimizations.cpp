// Figure 7: layer-level speedup of (a) LUT caching and (b) LUT caching +
// precomputation over the baseline bit-serial implementation (input-reuse,
// LUT in flash), on 3x3 conv layers with 32/64/128/192 filters (= channels),
// 16x16 input, pool size 64, 8-bit activations, on MC-large.
//
// Paper shape: caching speedup grows with filter count (~marginal at 32,
// >1.4x at 192); precomputation helps only above the pool size (2.45x at
// 192, hurts at 32). Extra rows: the memoization alternative (appendix) and
// the naive no-input-reuse strawman (§4.1).
#include "common.h"

#include "kernels/bitserial_conv.h"

namespace {

using namespace bswp;

struct Layer {
  kernels::PackedIndices indices;
  nn::ConvSpec spec;
  QTensor input;
};

Layer make_layer(int channels, int filters, int pool_size, int act_bits, uint64_t seed) {
  Rng rng(seed);
  Layer l;
  l.spec = nn::ConvSpec{channels, filters, 3, 3, 1, 1, 1};
  pool::PooledLayer pl;
  pl.out_ch = filters;
  pl.channel_groups = channels / 8;
  pl.kh = pl.kw = 3;
  pl.indices.resize(static_cast<std::size_t>(filters) * pl.channel_groups * 9);
  for (auto& idx : pl.indices)
    idx = static_cast<uint16_t>(rng.uniform_int(static_cast<uint64_t>(pool_size)));
  l.indices = kernels::PackedIndices::pack(pl);
  l.input = QTensor({1, channels, 16, 16}, act_bits, /*is_signed=*/false);
  l.input.scale = 0.05f;
  for (auto& v : l.input.data) v = static_cast<int16_t>(rng.uniform_int(1u << act_bits));
  return l;
}

double layer_seconds(const Layer& l, const pool::DotLut& lut, kernels::BitSerialVariant variant,
                     const sim::McuProfile& mcu) {
  kernels::Requant rq = kernels::Requant::uniform(l.spec.out_ch, 1e-4f, {}, 0.01f, 8, false, true);
  sim::CostCounter c;
  kernels::bitserial_conv2d(l.input, l.indices, lut, l.spec, rq, variant, &c);
  return mcu.seconds(c);
}

}  // namespace

int main() {
  using namespace bswp;
  using namespace bswp::bench;
  using kernels::BitSerialVariant;

  print_header(
      "Figure 7 — layer-level speedup of LUT caching and precomputation\n"
      "3x3 conv, channels = filters, 16x16 input, pool 64, 8-bit activations, MC-large");

  Rng seed_rng(77);
  pool::WeightPool wp;
  wp.group_size = 8;
  wp.vectors = Tensor({64, 8});
  seed_rng.fill_normal(wp.vectors, 0.3f);
  pool::DotLut lut = pool::build_lut(wp, pool::LutOptions{});
  const sim::McuProfile mcu = sim::mc_large();

  std::printf("\n%-9s %12s %12s %14s %12s %10s\n", "filters", "caching x", "cache+pre x",
              "cache+memo x", "naive x", "[paper]");
  const char* paper_note[] = {"~1.05/0.7", "~1.15/1.1", "~1.3/1.9", "~1.45/2.45"};
  int i = 0;
  for (int filters : {32, 64, 128, 192}) {
    Layer l = make_layer(filters, filters, 64, 8, 100 + static_cast<uint64_t>(filters));
    const double base = layer_seconds(l, lut, BitSerialVariant::kInputReuse, mcu);
    const double cached = layer_seconds(l, lut, BitSerialVariant::kCached, mcu);
    const double pre = layer_seconds(l, lut, BitSerialVariant::kCachedPrecompute, mcu);
    const double memo = layer_seconds(l, lut, BitSerialVariant::kCachedMemoize, mcu);
    const double naive = layer_seconds(l, lut, BitSerialVariant::kNaive, mcu);
    std::printf("%-9d %12.2f %12.2f %14.2f %12.2f %10s\n", filters, base / cached, base / pre,
                base / memo, base / naive, paper_note[i++]);
  }
  std::printf(
      "\nshape check: caching speedup grows with filter count; precomputation\n"
      "wins only when filters > pool size (64) and hurts at 32; memoization\n"
      "lands between caching and precomputation; the naive variant (bit\n"
      "unpacking inside the filter loop, §4.1) is several times slower.\n");
  return 0;
}
