// Figure 8: speedup over the 8-bit bit-serial implementation as the
// activation bitwidth decreases, (a) without precomputation and (b) with
// precomputation. Layer: 3x3 conv, 128 channels and filters, 16x16 input,
// pool size 64, MC-large.
//
// Paper shape: without precomputation the speedup scales ~linearly with
// bitwidth (≈4x at 1 bit; below the 8x ideal because bit unpacking and
// index reads do not shrink). With precomputation the precomputed-result
// lookups dominate at low bitwidth, so the curve saturates (~2x at 1 bit) —
// but precompute is faster in absolute terms throughout.
#include "common.h"

#include "kernels/bitserial_conv.h"

namespace {

using namespace bswp;

QTensor random_input(int channels, int act_bits, uint64_t seed) {
  Rng rng(seed);
  QTensor q({1, channels, 16, 16}, act_bits, /*is_signed=*/false);
  q.scale = 0.05f;
  for (auto& v : q.data) v = static_cast<int16_t>(rng.uniform_int(1u << act_bits));
  return q;
}

}  // namespace

int main() {
  using namespace bswp;
  using namespace bswp::bench;
  using kernels::BitSerialVariant;

  print_header(
      "Figure 8 — speedup vs activation bitwidth (128 ch/filters, pool 64, MC-large)\n"
      "(a) without precomputation (LUT caching only)   (b) with precomputation");

  const int channels = 128, filters = 128, pool_size = 64;
  Rng rng(88);
  pool::WeightPool wp;
  wp.group_size = 8;
  wp.vectors = Tensor({pool_size, 8});
  rng.fill_normal(wp.vectors, 0.3f);
  pool::DotLut lut = pool::build_lut(wp, pool::LutOptions{});
  const sim::McuProfile mcu = sim::mc_large();

  pool::PooledLayer pl;
  pl.out_ch = filters;
  pl.channel_groups = channels / 8;
  pl.kh = pl.kw = 3;
  pl.indices.resize(static_cast<std::size_t>(filters) * pl.channel_groups * 9);
  for (auto& idx : pl.indices)
    idx = static_cast<uint16_t>(rng.uniform_int(static_cast<uint64_t>(pool_size)));
  kernels::PackedIndices packed = kernels::PackedIndices::pack(pl);
  const nn::ConvSpec spec{channels, filters, 3, 3, 1, 1, 1};
  kernels::Requant rq = kernels::Requant::uniform(filters, 1e-4f, {}, 0.01f, 8, false, true);

  double base_cached = 0.0, base_pre = 0.0;
  std::printf("\n%-8s %18s %18s %22s\n", "M bits", "(a) no-precomp x", "(b) precomp x",
              "(b) absolute vs (a)8bit");
  for (int bits = 8; bits >= 1; --bits) {
    QTensor in = random_input(channels, bits, 200 + static_cast<uint64_t>(bits));
    sim::CostCounter cc, cp;
    kernels::bitserial_conv2d(in, packed, lut, spec, rq, BitSerialVariant::kCached, &cc);
    kernels::bitserial_conv2d(in, packed, lut, spec, rq, BitSerialVariant::kCachedPrecompute, &cp);
    const double tc = mcu.seconds(cc), tp = mcu.seconds(cp);
    if (bits == 8) {
      base_cached = tc;
      base_pre = tp;
    }
    std::printf("%-8d %18.2f %18.2f %22.2f\n", bits, base_cached / tc, base_pre / tp,
                base_cached / tp);
  }
  std::printf(
      "\nshape check (paper Fig. 8): column (a) scales near-linearly toward\n"
      "~4x at 1 bit; column (b) saturates near ~2x because the precomputed\n"
      "result lookups do not shrink with bitwidth; precompute remains faster\n"
      "in absolute terms (last column > 1 everywhere).\n");
  return 0;
}
