// §5.5: comparison with binarized networks. A binarized TinyConv has a
// compression ratio similar to a weight-pool network, but much worse
// accuracy (paper: 66.9% binarized vs 81.2% weight-pool at 3-bit
// activations, CIFAR-10 accuracy scale). The XNOR kernel's layer-level
// speedup vs CMSIS (2-4x per Romaszkan et al. 2020) is also replayed on the
// cost model.
#include "common.h"

#include "binary/binarized.h"
#include "kernels/baseline_conv.h"

int main() {
  using namespace bswp;
  using namespace bswp::bench;

  print_header("Section 5.5 — weight pools vs binarized networks (TinyConv)");

  BenchDataset ds = quickdraw_like();

  // Float and weight-pool TinyConv.
  TrainedModel base = train_float("TinyConv", models::build_tinyconv, ds, 0.5f,
                                  /*epochs=*/8, /*seed=*/61);
  PooledModel pooled = pool_and_finetune(base, ds, /*pool_size=*/64);
  runtime::CompileOptions lowbit;
  lowbit.act_bits = 3;
  const float pool_acc_3bit = engine_accuracy(pooled.graph, &pooled.net, ds, lowbit);

  // Binarized TinyConv (first layer and classifier full precision).
  models::ModelOptions mo = ds.model_opts;
  mo.width = 0.5f;
  nn::Graph bin = models::build_binarized_tinyconv(mo);
  Rng rng(62);
  bin.init_weights(rng);
  nn::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.lr = 0.03f;
  nn::Trainer trainer(cfg);
  trainer.set_post_step([](nn::Graph& g) { binary::binarize_weights(g); });
  binary::binarize_weights(bin);
  const float bin_acc = trainer.fit(bin, *ds.train, *ds.test).final_test_acc;

  std::printf("\n%-34s %10s %10s\n", "model", "accuracy", "[paper]");
  std::printf("%-34s %9.2f%% %10s\n", "TinyConv float", base.float_acc, "82.2%");
  std::printf("%-34s %9.2f%% %10s\n", "TinyConv weight-pool (3-bit act)", pool_acc_3bit, "81.2%*");
  std::printf("%-34s %9.2f%% %10s\n", "TinyConv binarized (XNOR)", bin_acc, "66.9%");
  std::printf("  (*paper reports the retrained 3-bit value; scale differs on synthetic data)\n");

  // Layer-level XNOR speedup vs the CMSIS int8 kernel on the cost model.
  {
    const int ch = 64, filters = 64;
    nn::ConvSpec spec{ch, filters, 3, 3, 1, 1, 1};
    Rng lr(63);
    Tensor w(spec.weight_shape());
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = lr.uniform() < 0.5 ? -0.1f : 0.1f;
    Tensor x({1, ch, 16, 16});
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = lr.uniform() < 0.5 ? -1.0f : 1.0f;

    sim::CostCounter cx;
    binary::PackedBinaryConv pb = binary::pack_binary_conv(w, spec);
    binary::PackedBinaryInput pi = binary::pack_binary_input(x);
    binary::xnor_conv2d(pi, pb, &cx);

    QTensor qin({1, ch, 16, 16}, 8, false);
    qin.scale = 0.05f;
    for (auto& v : qin.data) v = static_cast<int16_t>(lr.uniform_int(256));
    QTensor qw(spec.weight_shape(), 8, true);
    qw.scale = 0.01f;
    for (auto& v : qw.data) v = static_cast<int16_t>(-127 + static_cast<int>(lr.uniform_int(255)));
    kernels::Requant rq = kernels::Requant::uniform(filters, 1e-4f, {}, 0.01f, 8, false, true);
    sim::CostCounter cb;
    kernels::baseline_conv2d(qin, qw, spec, rq, &cb);

    const sim::McuProfile mcu = sim::mc_large();
    std::printf("\nlayer-level XNOR vs CMSIS int8 (64ch/64f 3x3, MC-large): %.2fx",
                mcu.seconds(cb) / mcu.seconds(cx));
    std::printf("   [3PXNet reports 2-4x]\n");
  }
  std::printf(
      "\nshape check: the binarized network compresses comparably but loses\n"
      "far more accuracy than the weight-pool network — the paper's argument\n"
      "for weight pools over binarization.\n");
  return 0;
}
