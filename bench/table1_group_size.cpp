// Table 1: accuracy of z-dimension weight pools vs group (weight vector)
// size, on ResNet-14 / CIFAR-10. Paper: 4 -> 91.22, 8 -> 91.13, 16 -> 87.96
// (original 92.26). Expected shape: 4 and 8 close to the original, 16
// clearly worse; 8 is the compression/accuracy sweet spot.
#include "common.h"

int main() {
  using namespace bswp;
  using namespace bswp::bench;

  print_header(
      "Table 1 — z-dimension weight pool accuracy vs group size\n"
      "network: ResNet-14 (width-scaled), dataset: SyntheticCifar, pool size 64");

  BenchDataset ds = cifar_like();
  TrainedModel base = train_float("ResNet-14", models::build_resnet14, ds, 0.25f,
                                  /*epochs=*/5, /*seed=*/11);
  std::printf("\noriginal (float) accuracy: %.2f%%   [paper: 92.26%%]\n\n", base.float_acc);
  std::printf("%-12s %-14s %-14s %s\n", "group size", "measured (%)", "paper (%)", "drop vs float");

  const int group_sizes[] = {4, 8, 16};
  const float paper_acc[] = {91.22f, 91.13f, 87.96f};
  for (int i = 0; i < 3; ++i) {
    PooledModel p = pool_and_finetune(base, ds, /*pool_size=*/64, group_sizes[i]);
    std::printf("%-12d %-14.2f %-14.2f %+.2f\n", group_sizes[i], p.finetuned_acc, paper_acc[i],
                p.finetuned_acc - base.float_acc);
  }
  std::printf(
      "\nshape check: group sizes 4 and 8 should sit near the float accuracy;\n"
      "group size 16 (2 bytes of weights per index) should drop clearly.\n");
  return 0;
}
