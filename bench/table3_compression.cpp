// Table 3: total parameters, overall compression ratio (vs an 8-bit
// baseline) and LUT storage overhead for the five paper networks, at pool
// size 64 / group size 8 / 8-bit LUT.
//
// Storage depends only on the architecture, so this bench uses the
// paper-scale (width 1.0) builders with random weights — no training.
//
// Paper values: TinyConv 81.6k/2.32x/29.8%, ResNet-s 171k/4.43x/29.7%,
// ResNet-10 665k/6.51x/13.8%, ResNet-14 2.73M/7.55x/4.3%,
// MobileNet-v2 2.25M/6.22x/4.5%.
#include "common.h"

int main() {
  using namespace bswp;
  using namespace bswp::bench;

  print_header("Table 3 — compression ratio and LUT overhead (pool 64, group 8, 8-bit LUT)");

  struct Row {
    const char* name;
    nn::Graph (*build)(const models::ModelOptions&);
    bool on_cifar;
    double paper_params, paper_cr, paper_lut;
  };
  const Row rows[] = {
      {"TinyConv", models::build_tinyconv, false, 81600, 2.32, 29.8},
      {"ResNet-s", models::build_resnet_s, true, 170928, 4.43, 29.7},
      {"ResNet-10", models::build_resnet10, true, 665280, 6.51, 13.8},
      {"ResNet-14", models::build_resnet14, true, 2729664, 7.55, 4.3},
      {"MobileNet-v2", models::build_mobilenet_v2, false, 2249792, 6.22, 4.5},
  };

  std::printf("\n%-14s %11s %11s %7s %7s %9s %9s\n", "network", "params", "(paper)", "CR",
              "(paper)", "LUT ovh", "(paper)");
  for (const Row& r : rows) {
    models::ModelOptions mo;
    if (!r.on_cifar) {
      mo.in_channels = r.build == models::build_tinyconv ? 1 : 1;
      mo.image_size = 28;
      mo.num_classes = 100;
    }
    nn::Graph g = r.build(mo);
    Rng rng(3);
    g.init_weights(rng);

    pool::CodecOptions co;
    co.pool_size = 64;
    co.group_size = 8;
    co.kmeans_iters = 4;           // clustering quality does not affect storage
    co.max_cluster_vectors = 4000;
    pool::PooledNetwork net = pool::build_weight_pool(g, co);
    pool::StorageReport rep = pool::analyze_storage(g, net, /*weight_bits=*/8, /*lut_bits=*/8,
                                                    /*packed_indices=*/false);
    std::printf("%-14s %11zu %11.0f %7.2f %7.2f %8.1f%% %8.1f%%\n", r.name, rep.total_params,
                r.paper_params, rep.compression_ratio(), r.paper_cr,
                100.0 * rep.lut_overhead_fraction(), r.paper_lut);
  }

  std::printf(
      "\nfootnote-1 variants (FC pooled as well, which the paper rejects for\n"
      "accuracy): compression for the small networks improves as reported.\n");
  std::printf("%-14s %9s %9s %11s %11s\n", "network", "CR fc64", "CR fc32", "paper fc64",
              "paper fc32");
  const Row small_rows[] = {rows[0], rows[1]};
  const double paper_fc64[] = {3.1, 4.5};
  const double paper_fc32[] = {4.2, 5.7};
  for (int i = 0; i < 2; ++i) {
    models::ModelOptions mo;
    if (!small_rows[i].on_cifar) {
      mo.in_channels = 1;
      mo.image_size = 28;
      mo.num_classes = 100;
    }
    nn::Graph g = small_rows[i].build(mo);
    Rng rng(3);
    g.init_weights(rng);
    double cr[2];
    int k = 0;
    for (int pool_size : {64, 32}) {
      pool::CodecOptions co;
      co.pool_size = pool_size;
      co.pool_fc = true;
      co.kmeans_iters = 4;
      co.max_cluster_vectors = 4000;
      pool::PooledNetwork net = pool::build_weight_pool(g, co);
      cr[k++] = pool::analyze_storage(g, net, 8, 8, /*packed_indices=*/false).compression_ratio();
    }
    std::printf("%-14s %9.2f %9.2f %11.1f %11.1f\n", small_rows[i].name, cr[0], cr[1],
                paper_fc64[i], paper_fc32[i]);
  }
  std::printf(
      "\nshape check: CR grows with network size toward the ~8x ceiling; the\n"
      "LUT overhead dominates only the small networks (TinyConv, ResNet-s).\n");
  return 0;
}
