// Table 4: accuracy of z-dimension weight pools at pool sizes 32/64/128 on
// the five network-dataset combinations (no activation quantization —
// accuracy is evaluated on the fine-tuned float pooled network).
//
// Paper (original / 32 / 64 / 128):
//   ResNet-s      85.3 / 82.0 / 83.0 / 84.0
//   ResNet-10     91.0 / 89.3 / 89.8 / 90.1
//   ResNet-14     92.3 / 90.7 / 91.1 / 91.0
//   TinyConv      82.2 / 81.7 / 82.2 / 82.3
//   MobileNet-v2  86.5 / 86.7 / 86.8 / 86.9
#include "common.h"

int main() {
  using namespace bswp;
  using namespace bswp::bench;

  print_header("Table 4 — accuracy vs weight pool size (group size 8, no act quant)");

  BenchDataset cifar = cifar_like();
  BenchDataset quickdraw = quickdraw_like();

  std::printf("\n%-14s %10s %8s %8s %8s\n", "network", "original", "S=32", "S=64", "S=128");
  for (const PaperRow& row : accuracy_rows()) {
    const BenchDataset& ds = row.on_cifar ? cifar : quickdraw;
    TrainedModel base = train_float(row.name, row.build, ds, row.width, /*epochs=*/5,
                                    /*seed=*/31);
    std::printf("%-14s %10.2f", row.name.c_str(), base.float_acc);
    for (int pool_size : {32, 64, 128}) {
      PooledModel p = pool_and_finetune(base, ds, pool_size);
      std::printf(" %8.2f", p.finetuned_acc);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape check (paper Table 4): accuracy within a few points of the\n"
      "original at S=64, mild degradation at S=32, S=128 ~ S=64; the\n"
      "already-compact ResNet-s loses the most.\n");
  return 0;
}
