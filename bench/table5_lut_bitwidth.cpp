// Table 5: inference accuracy of the bit-serial LUT implementation vs the
// LUT bitwidth B_l (no-LUT reference / 16 / 8 / 4), at 8-bit activations and
// pool size 64.
//
// "No-LUT" runs the same pooled weights through the plain int8 kernels; the
// 16-bit LUT stores exact partial dot products (entry_scale 1) and must match
// it closely; 8-bit loses almost nothing; 4-bit visibly degrades.
//
// Paper (no-LUT / 16 / 8 / 4):
//   ResNet-s      83.0 / 83.0 / 82.9 / 82.3
//   ResNet-10     89.6 / 89.9 / 89.9 / 89.4
//   ResNet-14     91.1 / 91.1 / 91.1 / 90.4
//   TinyConv      82.2 / 82.2 / 82.1 / 81.6
//   MobileNet-v2  86.8 / 86.6 / 86.6 / 85.5
#include "common.h"

int main() {
  using namespace bswp;
  using namespace bswp::bench;

  print_header("Table 5 — accuracy vs LUT bitwidth (pool 64, 8-bit activations)");

  BenchDataset cifar = cifar_like();
  BenchDataset quickdraw = quickdraw_like();

  std::printf("\n%-14s %8s %8s %8s %8s\n", "network", "No-LUT", "Bl=16", "Bl=8", "Bl=4");
  for (const PaperRow& row : accuracy_rows()) {
    const BenchDataset& ds = row.on_cifar ? cifar : quickdraw;
    TrainedModel base = train_float(row.name, row.build, ds, row.width, /*epochs=*/6,
                                    /*seed=*/41);
    PooledModel p = pool_and_finetune(base, ds, /*pool_size=*/64);

    // No-LUT: identical pooled weights, plain int8 kernels.
    runtime::CompileOptions base_opt;
    const float no_lut = engine_accuracy(p.graph, nullptr, ds, base_opt, /*max_samples=*/128);
    std::printf("%-14s %8.2f", row.name.c_str(), no_lut);
    std::fflush(stdout);
    for (int bl : {16, 8, 4}) {
      runtime::CompileOptions opt;
      opt.lut_bits = bl;
      std::printf(" %8.2f", engine_accuracy(p.graph, &p.net, ds, opt, /*max_samples=*/128));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape check (paper Table 5): Bl=16 ~ Bl=8 ~ no-LUT; Bl=4 drops\n"
      "roughly half a point to a point on every network.\n");
  return 0;
}
