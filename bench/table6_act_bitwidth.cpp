// Table 6: inference accuracy vs activation bitwidth (8..3), with
// quantization-aware retraining for low bitwidths (the paper's bracketed
// values), plus the minimum bitwidth achieving < 1% accuracy drop.
//
// Paper highlights: 8..6 bits lossless everywhere; 5 bits fine except
// MobileNet-v2; retraining recovers 3-4 bit accuracy for the ResNets and
// TinyConv; min bitwidths 4/4/3/4/5 (ResNet-s/10/14, TinyConv, MNv2).
#include "common.h"

namespace {

using namespace bswp;
using namespace bswp::bench;

/// QAT retraining: set fake-quant nodes to `bits`, seed their clip ranges
/// from calibration, fine-tune with the pool projection, then re-evaluate
/// through the engine at the same bitwidth.
float retrain_at_bits(const PooledModel& pooled, const BenchDataset& ds, int bits) {
  PooledModel p = pooled;  // copy graph + net
  p.graph.set_activation_bits(bits);
  quant::CalibrateOptions qo;
  qo.num_samples = 96;
  qo.act_bits = bits;
  quant::CalibrationResult cal = quant::calibrate(p.graph, *ds.train, qo);
  quant::apply_ranges_to_fake_quant(p.graph, cal);

  pool::FinetuneOptions fo;
  fo.train.epochs = 1;
  fo.train.batch_size = 32;
  fo.train.lr = 0.01f;
  fo.train.lr_step = 0;
  pool::finetune_pooled(p.graph, p.net, *ds.train, *ds.test, fo);

  runtime::CompileOptions opt;
  opt.act_bits = bits;
  return engine_accuracy(p.graph, &p.net, ds, opt, /*max_samples=*/128);
}

}  // namespace

int main() {
  using namespace bswp;
  using namespace bswp::bench;

  print_header(
      "Table 6 — accuracy vs activation bitwidth (pool 64, 8-bit LUT)\n"
      "values in brackets: after quantization-aware retraining");

  BenchDataset cifar = cifar_like();
  BenchDataset quickdraw = quickdraw_like();

  std::printf("\n%-14s", "network");
  for (int b = 8; b >= 3; --b) std::printf("      M=%d", b);
  std::printf("   min(small a.d.)  [paper]\n");

  const int paper_min[] = {4, 4, 3, 4, 5};
  int row_idx = 0;
  for (const PaperRow& row : accuracy_rows()) {
    const BenchDataset& ds = row.on_cifar ? cifar : quickdraw;
    // Train with fake-quant nodes present so QAT retraining is structural.
    TrainedModel base = train_float(row.name, row.build, ds, row.width, /*epochs=*/6,
                                    /*seed=*/51, /*fake_quant=*/true);
    PooledModel p = pool_and_finetune(base, ds, /*pool_size=*/64);

    std::printf("%-14s", row.name.c_str());
    float acc8 = 0.0f;
    int min_bits = 8;
    for (int bits = 8; bits >= 3; --bits) {
      runtime::CompileOptions opt;
      opt.act_bits = bits;
      float acc = engine_accuracy(p.graph, &p.net, ds, opt, /*max_samples=*/128);
      if (bits == 8) acc8 = acc;
      bool retrained = false;
      if (bits <= 5 && acc < acc8 - 1.0f) {
        const float r = retrain_at_bits(p, ds, bits);
        if (r > acc) {
          acc = r;
          retrained = true;
        }
      }
      // The paper uses a 1% threshold on the 10k-image CIFAR test set; our
      // 192-sample synthetic test set has ~+-3% binomial noise, so the
      // threshold is widened to 2.5% (documented in EXPERIMENTS.md).
      if (acc >= acc8 - 2.5f) min_bits = bits;
      if (retrained) {
        std::printf("  %5.1f(r)", acc);
      } else {
        std::printf("  %7.1f", acc);
      }
      std::fflush(stdout);
    }
    std::printf("        %d            [%d]\n", min_bits, paper_min[row_idx++]);
  }
  std::printf(
      "\nshape check (paper Table 6): near-lossless at 8-6 bits; degradation\n"
      "below 5 bits, partially recovered by retraining (r); MobileNet-v2 is\n"
      "the most quantization-sensitive network.\n");
  return 0;
}
