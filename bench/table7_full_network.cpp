// Table 7: full-network single-inference latency on both microcontrollers,
// comparing the CMSIS-like int8 baseline against weight-pool bit-serial
// builds: pool {64, 32} x activation bitwidth {8, min}. "min" uses the
// paper's Table 6 minimum bitwidths (<1% accuracy drop): ResNet-s 4,
// ResNet-10 4, ResNet-14 3, TinyConv 4, MobileNet-v2 5.
//
// Latency comes from exact kernel event counts priced by the MC profiles
// (DESIGN.md §6); "/" marks a network whose flash image does not fit
// (paper: ResNet-14 and MobileNet-v2 cannot fit MC-large uncompressed, and
// only TinyConv / ResNet-s fit MC-small at all).
//
// Paper MC-large (CMSIS / 64-8 / 32-8 / 64-m / 32-m), seconds:
//   TinyConv      1.06 / 0.83 / 0.75 / 0.60 / 0.57
//   ResNet-s      0.60 / 0.49 / 0.43 / 0.31 / 0.28
//   ResNet-10     5.28 / 3.00 / 2.22 / 1.87 / 1.61
//   ResNet-14        / / 3.46 / 2.59 / 1.92 / 1.73
//   MobileNet-v2     / / 3.60 / 3.12 / 3.07 / 2.78
#include <cctype>
#include <optional>

#include "common.h"

namespace {

using namespace bswp;
using namespace bswp::bench;

struct NetRow {
  const char* name;
  nn::Graph (*build)(const models::ModelOptions&);
  bool on_cifar;
  int min_bits;
};

struct Prepared {
  nn::Graph graph;
  std::unique_ptr<data::Dataset> cal_data;
  // One deployment per build family, reused across the act-bits cells so the
  // graph/pool copies and clustering happen once per row.
  std::optional<Deployment> cmsis, pool64, pool32;
  Tensor sample;
};

Prepared prepare(const NetRow& row) {
  Prepared p;
  models::ModelOptions mo;
  std::unique_ptr<data::Dataset> cal_data;
  if (row.on_cifar) {
    data::SyntheticCifarOptions o;
    o.train_size = 16;
    o.image_size = 32;
    cal_data = std::make_unique<data::SyntheticCifar>(o, true);
    mo.in_channels = 3;
    mo.image_size = 32;
    mo.num_classes = 10;
  } else {
    data::SyntheticQuickdrawOptions o;
    o.train_size = 16;
    o.num_classes = 100;
    o.image_size = 28;
    cal_data = std::make_unique<data::SyntheticQuickdraw>(o, true);
    mo.in_channels = 1;
    mo.image_size = 28;
    mo.num_classes = 100;
  }
  p.graph = row.build(mo);  // paper-scale widths; weights random (latency
  Rng rng(5);               // depends only on geometry)
  p.graph.init_weights(rng);
  {
    // Seed BN running stats so calibration ranges are finite.
    data::Batch b = cal_data->batch(0, 8);
    p.graph.forward(b.images, true);
  }
  p.cal_data = std::move(cal_data);

  quant::CalibrateOptions qo;
  qo.num_samples = 8;
  qo.iterative = false;  // max calibration is enough for latency
  p.cmsis = Deployment::from(p.graph).calibrate(*p.cal_data, qo);
  for (int pool_size : {64, 32}) {
    pool::CodecOptions co;
    co.pool_size = pool_size;
    co.kmeans_iters = 3;  // clustering quality does not affect latency
    co.max_cluster_vectors = 4000;
    (pool_size == 64 ? p.pool64 : p.pool32) =
        Deployment::from(p.graph).with_pool(co).calibrate(*p.cal_data, qo);
  }
  p.sample = Tensor({1, mo.in_channels, mo.image_size, mo.image_size});
  p.cal_data->sample(0, p.sample.data());
  return p;
}

struct Cell {
  double seconds = 0.0;
  bool fits_large = false, fits_small = false;
};

Cell measure(Prepared& p, Deployment& dep, int act_bits, const sim::McuProfile& mcu) {
  // Variant selection optimizes the MCU the row is measured on: the cost
  // model prices each layer's candidates with this profile's event costs.
  Session session = dep.cost_profile(mcu).act_bits(act_bits).compile();
  runtime::LatencyReport r = session.estimate_latency(mcu, p.sample);
  Cell c;
  c.seconds = r.seconds;
  c.fits_large = r.mem.fits(sim::mc_large());
  c.fits_small = r.mem.fits(sim::mc_small());
  return c;
}

void print_cell(const Cell& c, bool fits) {
  if (fits) {
    std::printf(" %7.2f", c.seconds);
  } else {
    std::printf(" %7s", "/");
  }
}

std::string json_key(const char* net) {
  std::string k(net);
  for (char& c : k) {
    if (c == '-') c = '_';
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return k;
}

}  // namespace

int main() {
  using namespace bswp;
  using namespace bswp::bench;

  // BENCH_table7.json: `*_seconds` keys are simulated latencies
  // (lower-is-better), `*_speedup` higher-is-better.
  JsonWriter jw;
  jw.add("smoke_mode", smoke_mode());

  print_header("Table 7 — full-network inference latency (seconds per image)");

  std::printf("\nTable 2 — simulated microcontrollers:\n");
  for (const sim::McuProfile& m : {sim::mc_large(), sim::mc_small()}) {
    std::printf("  %-26s SRAM %4zu kB  flash %5zu kB  %.0f MHz\n", m.name.c_str(),
                m.sram_bytes / 1024, m.flash_bytes / 1024, m.freq_mhz);
  }

  const NetRow rows[] = {
      {"TinyConv", models::build_tinyconv, false, 4},
      {"ResNet-s", models::build_resnet_s, true, 4},
      {"ResNet-10", models::build_resnet10, true, 4},
      {"ResNet-14", models::build_resnet14, true, 3},
      {"MobileNet-v2", models::build_mobilenet_v2, false, 5},
  };

  for (const sim::McuProfile& mcu : {sim::mc_large(), sim::mc_small()}) {
    std::printf("\n--- %s ---\n", mcu.name.c_str());
    std::printf("%-14s %7s %7s %7s %7s %7s %10s\n", "network", "CMSIS", "64-8", "32-8", "64-m",
                "32-m", "speedup-m");
    const bool is_large = mcu.sram_bytes > 64 * 1024;
    for (const NetRow& row : rows) {
      // MC-small (20 kB SRAM / 128 kB flash) only fits the two small nets —
      // skip the big ones to keep the bench quick; their flash image alone
      // exceeds the part.
      if (!is_large && row.build != models::build_tinyconv &&
          row.build != models::build_resnet_s) {
        continue;
      }
      Prepared p = prepare(row);
      const Cell cmsis = measure(p, *p.cmsis, 8, mcu);
      const Cell p64_8 = measure(p, *p.pool64, 8, mcu);
      const Cell p32_8 = measure(p, *p.pool32, 8, mcu);
      const Cell p64_m = measure(p, *p.pool64, row.min_bits, mcu);
      const Cell p32_m = measure(p, *p.pool32, row.min_bits, mcu);
      std::printf("%-14s", row.name);
      print_cell(cmsis, is_large ? cmsis.fits_large : cmsis.fits_small);
      print_cell(p64_8, is_large ? p64_8.fits_large : p64_8.fits_small);
      print_cell(p32_8, is_large ? p32_8.fits_large : p32_8.fits_small);
      print_cell(p64_m, is_large ? p64_m.fits_large : p64_m.fits_small);
      print_cell(p32_m, is_large ? p32_m.fits_large : p32_m.fits_small);
      if ((is_large ? cmsis.fits_large : cmsis.fits_small)) {
        std::printf(" %9.2fx", cmsis.seconds / p64_m.seconds);
      } else {
        std::printf(" %10s", "-");
      }
      std::printf("\n");
      std::fflush(stdout);
      const std::string base = (is_large ? "large_" : "small_") + json_key(row.name);
      jw.add(base + "_cmsis_seconds", cmsis.seconds);
      jw.add(base + "_64_8_seconds", p64_8.seconds);
      jw.add(base + "_32_8_seconds", p32_8.seconds);
      jw.add(base + "_64_m_seconds", p64_m.seconds);
      jw.add(base + "_32_m_seconds", p32_m.seconds);
      jw.add(base + "_speedup", cmsis.seconds / p64_m.seconds);
    }
  }
  std::printf(
      "\nshape check (paper Table 7): the bit-serial build beats CMSIS in\n"
      "every configuration; speedup grows with network size (~2x small nets,\n"
      "~2.8x ResNet-10 at min bitwidth); ResNet-14 / MobileNet-v2 do not fit\n"
      "MC-large flash uncompressed but do fit once pooled.\n"
      "\nknown deviation: the paper reports MC-small numbers for ResNet-s, but\n"
      "its ~171k int8 parameters exceed the F103RB's 128 kB flash outright —\n"
      "our memory model reports '/' (see EXPERIMENTS.md).\n");
  jw.write("BENCH_table7.json");
  return 0;
}
