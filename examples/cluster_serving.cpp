// Cluster serving: a 2-shard bswp::Cluster front door with the idempotent
// result cache on a cache-hot workload.
//
//   1. compile a small CNN into a Session (no training — serving behaviour
//      depends only on network geometry)
//   2. stand up a 2-shard cluster: consistent-hash routing, result cache,
//      per-shard health breakers (see docs/frontdoor.md)
//   3. replay a small set of inputs many times — repeat requests are
//      answered from the cache without touching a shard, bit-identically
//   4. stop one shard mid-workload: the survivor absorbs its ring segment
//      and every accepted request still completes
//   5. print the ClusterStats fleet snapshot
//
// Build: cmake --build build --target cluster_serving && ./build/examples/cluster_serving
#include <cstdio>
#include <future>
#include <vector>

#include "api/bswp.h"
#include "core/rng.h"
#include "models/zoo.h"

int main() {
  using namespace bswp;

  // --- 1. a compiled session (untrained weights, seeded BatchNorm) ----------
  data::SyntheticCifarOptions dopt;
  dopt.train_size = 256;
  dopt.image_size = 16;
  data::SyntheticCifar train(dopt, true);

  models::ModelOptions mo;
  mo.image_size = 16;
  mo.width = 0.5f;
  nn::Graph model = models::build_tinyconv(mo);
  Rng rng(1);
  model.init_weights(rng);
  quant::CalibrateOptions qo;
  qo.num_samples = 32;
  Session session =
      Deployment::from(model).seed_batchnorm(16).calibrate(train, qo).compile();

  // --- 2. the cluster front door --------------------------------------------
  runtime::FrontDoorOptions fo;
  fo.shards = 2;
  fo.cache_capacity = 128;          // idempotent result cache on
  fo.server.workers = 1;            // one worker per shard
  fo.server.batching.max_batch = 8;
  fo.server.queue.capacity = 256;
  fo.server.queue.policy = runtime::QueuePolicy::kBlock;

  Cluster cluster(fo);
  cluster.add("tinyconv", session);
  std::printf("cluster: %d shards, %d healthy, cache capacity %zu\n",
              cluster.shard_count(), cluster.healthy_shard_count(),
              fo.cache_capacity);

  // --- 3. cache-hot workload ------------------------------------------------
  std::vector<Tensor> inputs;
  Rng irng(7);
  for (int i = 0; i < 8; ++i) {
    Tensor x({1, 3, 16, 16});
    for (std::size_t j = 0; j < x.size(); ++j) {
      x.data()[j] = static_cast<float>(irng.uniform(-1.0, 1.0));
    }
    inputs.push_back(std::move(x));
  }
  // Cold pass fills the cache; the replayed requests after it are hits.
  for (const Tensor& x : inputs) cluster.submit("tinyconv", x);
  cluster.drain();

  std::vector<std::future<QTensor>> futures;
  const int kReplay = 200;
  for (int i = 0; i < kReplay; ++i) {
    futures.push_back(cluster.submit(
        "tinyconv", inputs[static_cast<std::size_t>(i) % inputs.size()]));
    // --- 4. rolling maintenance: shard 0 leaves mid-workload ---------------
    if (i == kReplay / 2) cluster.stop_shard(0);
  }
  int identical = 0;
  for (int i = 0; i < kReplay; ++i) {
    const QTensor got = futures[static_cast<std::size_t>(i)].get();
    const QTensor want =
        session.run(inputs[static_cast<std::size_t>(i) % inputs.size()]);
    if (got.data == want.data && got.scale == want.scale) ++identical;
  }
  std::printf("replayed %d requests (shard 0 stopped mid-run): "
              "%d/%d bit-identical to Session::run\n",
              kReplay, identical, kReplay);

  // --- 5. the fleet snapshot ------------------------------------------------
  const runtime::ClusterStats s = cluster.stats();
  std::printf("\nClusterStats\n");
  std::printf("  submitted %llu  completed %llu  failed %llu  failovers %llu\n",
              static_cast<unsigned long long>(s.submitted),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.failed),
              static_cast<unsigned long long>(s.failovers));
  std::printf("  cache: %llu hits / %llu misses (%.1f%% hit rate), %zu resident\n",
              static_cast<unsigned long long>(s.cache.hits),
              static_cast<unsigned long long>(s.cache.misses),
              100.0 * s.cache.hit_rate, s.cache.entries);
  std::printf("  latency (merged windows): p50 %.0f us  p99 %.0f us over %zu requests\n",
              s.latency.p50_us, s.latency.p99_us, s.latency.count);
  for (const runtime::ShardStats& ss : s.shard_stats) {
    std::printf("  shard %d [%s]: routed %llu (share %.2f), takeovers %llu, "
                "server completed %llu\n",
                ss.shard, runtime::shard_health_name(ss.health),
                static_cast<unsigned long long>(ss.routed), ss.dispatch_share,
                static_cast<unsigned long long>(ss.takeovers),
                static_cast<unsigned long long>(ss.server.admission.completed));
  }
  return 0;
}
