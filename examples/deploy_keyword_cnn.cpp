// Domain example: deploying a sketch/keyword-style classifier (many classes,
// 1-channel input — the Quickdraw-100 regime from the paper's intro) on the
// small, 20 kB-SRAM microcontroller. Shows the flash/SRAM budgeting workflow:
// the uncompressed TinyConv barely fits MC-small flash, the pooled build
// leaves room to spare, and the LUT cache keeps SRAM within budget.
#include <cstdio>

#include "api/bswp.h"
#include "core/rng.h"
#include "models/zoo.h"
#include "nn/trainer.h"

int main() {
  using namespace bswp;

  data::SyntheticQuickdrawOptions dopt;
  dopt.num_classes = 24;
  dopt.train_size = 1152;
  dopt.test_size = 240;
  dopt.image_size = 20;
  data::SyntheticQuickdraw train(dopt, true), test(dopt, false);

  models::ModelOptions mo;
  mo.in_channels = 1;
  mo.image_size = 20;
  mo.num_classes = 24;
  mo.width = 0.5f;
  nn::Graph model = models::build_tinyconv(mo);
  Rng rng(3);
  model.init_weights(rng);

  std::printf("training TinyConv on the sketch dataset (%d classes)...\n", dopt.num_classes);
  nn::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.lr = 0.08f;
  const float float_acc = nn::Trainer(cfg).fit(model, train, test).final_test_acc;

  pool::CodecOptions co;
  co.pool_size = 32;  // small pool: this is a small network (Table 3 regime)
  pool::FinetuneOptions fo;
  fo.train.epochs = 3;
  fo.train.batch_size = 32;
  fo.train.lr = 0.02f;
  quant::CalibrateOptions qo;
  qo.num_samples = 96;

  Deployment dep =
      Deployment::from(model).with_pool(co).finetune(train, test, fo).calibrate(train, qo);
  const float pooled_acc = dep.finetuned_acc();

  Tensor sample({1, 1, 20, 20});
  test.sample(0, sample.data());
  const sim::McuProfile target = sim::mc_small();
  std::printf("\ntarget: %s (%zu kB SRAM / %zu kB flash)\n", target.name.c_str(),
              target.sram_bytes / 1024, target.flash_bytes / 1024);
  std::printf("float accuracy %.2f%%, pooled (float) %.2f%%\n\n", float_acc, pooled_acc);

  std::printf("%-26s %9s %9s %9s %10s %6s\n", "build", "acc", "flash", "sram", "latency",
              "fits");
  struct Config {
    const char* name;
    bool pooled;
    int act_bits;
  };
  const Config configs[] = {
      {"int8 uncompressed", false, 8},
      {"weight pool, 8-bit act", true, 8},
      {"weight pool, 4-bit act", true, 4},
  };
  for (const Config& c : configs) {
    // The uncompressed build deploys the same pool-projected weights so the
    // comparison is weight-for-weight (the old hand-wired flow did too).
    Session session = c.pooled
                          ? dep.act_bits(c.act_bits).compile()
                          : Deployment::from(dep.graph()).act_bits(c.act_bits).calibrate(train, qo).compile();
    const float acc = session.evaluate(test);
    const runtime::LatencyReport r = session.estimate_latency(target, sample);
    std::printf("%-26s %8.2f%% %7zukB %7zukB %8.1fms %6s\n", c.name, acc,
                r.mem.flash_bytes / 1024, r.mem.sram_bytes / 1024, 1e3 * r.seconds,
                r.fits ? "yes" : "NO");
  }
  std::printf(
      "\nThe pooled 4-bit build is the deployment pick: smallest flash image,\n"
      "fastest inference, accuracy within a point of the 8-bit build.\n");
  return 0;
}
