// Capacity planning: which paper-scale networks fit which microcontroller,
// before and after weight-pool compression? Reproduces the motivating claim
// that weight pools let "relatively large CNNs like MobileNet-v2 fit a 1 MB
// microcontroller" (paper §7) — without training anything (storage depends
// only on architecture).
#include <cstdio>
#include <memory>

#include "api/bswp.h"
#include "core/rng.h"
#include "models/zoo.h"
#include "pool/storage_model.h"

int main() {
  using namespace bswp;

  std::printf("MCU fit check: paper-scale networks vs Table 2 microcontrollers\n\n");

  const sim::McuProfile mcus[] = {sim::mc_large(), sim::mc_small()};

  for (const models::NamedModel& m : models::paper_models()) {
    models::ModelOptions mo;
    std::unique_ptr<data::Dataset> cal_data;
    if (m.on_cifar) {
      data::SyntheticCifarOptions o;
      o.train_size = 8;
      o.image_size = 32;
      cal_data = std::make_unique<data::SyntheticCifar>(o, true);
      mo.image_size = 32;
    } else {
      data::SyntheticQuickdrawOptions o;
      o.train_size = 8;
      o.num_classes = 100;
      cal_data = std::make_unique<data::SyntheticQuickdraw>(o, true);
      mo.in_channels = 1;
      mo.image_size = 28;
      mo.num_classes = 100;
    }
    nn::Graph g = m.build(mo);
    Rng rng(4);
    g.init_weights(rng);

    // Untrained graphs: seed_batchnorm() runs one training-mode pass so
    // calibration ranges are finite (storage depends only on architecture).
    quant::CalibrateOptions qo;
    qo.num_samples = 8;
    qo.iterative = false;

    pool::CodecOptions co;
    co.pool_size = 64;
    co.kmeans_iters = 3;
    co.max_cluster_vectors = 4000;

    Session uncompressed =
        Deployment::from(g).seed_batchnorm(8).calibrate(*cal_data, qo).compile();
    // The pooled deployment uses the bit-serial engine's reduced-precision
    // mode (M = 4): activations are stored bit-packed on the MCU, so the
    // precision knob halves peak SRAM on top of the flash compression.
    Deployment pooled_dep = Deployment::from(g)
                                .with_pool(co)
                                .act_bits(4)
                                .seed_batchnorm(8)
                                .calibrate(*cal_data, qo);
    Session compressed = pooled_dep.compile();
    const sim::MemoryFootprint fu = uncompressed.footprint();
    const sim::MemoryFootprint fc = compressed.footprint();
    const pool::StorageReport rep = pool::analyze_storage(g, *pooled_dep.pooled());

    std::printf("%-14s %8zu params  CR %.2fx   flash %4zu kB -> %4zu kB\n", m.name.c_str(),
                rep.total_params, rep.compression_ratio(), fu.flash_bytes / 1024,
                fc.flash_bytes / 1024);
    for (const sim::McuProfile& mcu : mcus) {
      std::printf("    %-26s  uncompressed: %-3s   weight-pool: %s\n", mcu.name.c_str(),
                  fu.fits(mcu) ? "fits" : "NO", fc.fits(mcu) ? "fits" : "NO");
    }
  }
  std::printf(
      "\nExpected: ResNet-14 and MobileNet-v2 overflow MC-large's 1 MB flash\n"
      "uncompressed (the '/' rows of Table 7) but fit once pooled at M=4;\n"
      "peak SRAM comes from the MemoryPlanner's liveness arena (bit-packed\n"
      "activations, in-place conv/add where sound), so only TinyConv fits\n"
      "MC-small's 20 kB at all.\n");
  return 0;
}
