// Precision explorer: the runtime/accuracy trade-off that makes bit-serial
// weight pools "arbitrary precision". Compresses one network, then sweeps
// the activation bitwidth 8..1 and prints accuracy vs simulated latency —
// the deployment decision a TinyML engineer actually makes.
#include <cstdio>

#include "api/bswp.h"
#include "core/rng.h"
#include "models/zoo.h"
#include "nn/trainer.h"

int main() {
  using namespace bswp;

  data::SyntheticCifarOptions dopt;
  dopt.train_size = 1024;
  dopt.test_size = 256;
  dopt.image_size = 16;
  data::SyntheticCifar train(dopt, true), test(dopt, false);

  models::ModelOptions mo;
  mo.image_size = 16;
  mo.width = 0.25f;
  nn::Graph model = models::build_resnet10(mo);
  Rng rng(2);
  model.init_weights(rng);

  std::printf("training + compressing ResNet-10 (width 0.25)...\n");
  nn::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 32;
  cfg.lr = 0.08f;
  nn::Trainer(cfg).fit(model, train, test);

  pool::CodecOptions co;
  co.pool_size = 64;
  pool::FinetuneOptions fo;
  fo.train.epochs = 3;
  fo.train.batch_size = 32;
  fo.train.lr = 0.02f;
  quant::CalibrateOptions qo;
  qo.num_samples = 96;

  Deployment dep =
      Deployment::from(model).with_pool(co).finetune(train, test, fo).calibrate(train, qo);
  std::printf("fine-tuned pooled accuracy (float): %.2f%%\n\n", dep.finetuned_acc());

  Tensor sample({1, 3, 16, 16});
  test.sample(0, sample.data());
  const sim::McuProfile mcu = sim::mc_large();

  std::printf("%-8s %10s %12s %12s   note\n", "M bits", "accuracy", "latency", "speedup");
  double t8 = 0.0;
  float acc8 = 0.0f;
  for (int bits = 8; bits >= 1; --bits) {
    // compile() re-runs calibration with the sweep's bitwidth automatically.
    Session session = dep.act_bits(bits).compile();
    const float acc = session.evaluate(test);
    const runtime::LatencyReport r = session.estimate_latency(mcu, sample);
    if (bits == 8) {
      t8 = r.seconds;
      acc8 = acc;
    }
    const char* note = acc >= acc8 - 1.0f ? "< 1% drop" : "";
    std::printf("%-8d %9.2f%% %10.2fms %11.2fx   %s\n", bits, acc, 1e3 * r.seconds,
                t8 / r.seconds, note);
  }
  std::printf(
      "\nRuntime shrinks with bitwidth because the bit-serial loop truncates\n"
      "(paper §3.3); accuracy holds until ~4-5 bits, then degrades. Pick the\n"
      "last row with '< 1%% drop' for deployment.\n");
  return 0;
}
