// Quickstart: the complete bit-serial weight-pool workflow in one file.
//
//   1. train a small CNN on a (synthetic) dataset
//   2. compress it with a shared z-dimension weight pool (cluster + finetune)
//   3. build deployments through the bswp::Deployment fluent API
//   4. run bit-serial inference (single-image and thread-pooled batch),
//      compare accuracy/latency/storage against the CMSIS-like int8 baseline
//
// Build: cmake --build build --target quickstart && ./build/examples/quickstart
#include <cstdio>

#include "api/bswp.h"
#include "core/rng.h"
#include "models/zoo.h"
#include "nn/trainer.h"
#include "pool/storage_model.h"

int main() {
  using namespace bswp;

  // --- 1. data + float training --------------------------------------------
  data::SyntheticCifarOptions dopt;
  dopt.train_size = 1024;
  dopt.test_size = 256;
  dopt.image_size = 16;
  data::SyntheticCifar train(dopt, true), test(dopt, false);

  models::ModelOptions mo;
  mo.image_size = 16;
  nn::Graph model = models::build_resnet_s(mo);  // paper-scale widths
  Rng rng(1);
  model.init_weights(rng);

  std::printf("training float ResNet-s (%zu params)...\n", model.param_count());
  nn::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.lr = 0.08f;
  const float float_acc = nn::Trainer(cfg).fit(model, train, test).final_test_acc;
  std::printf("float accuracy: %.2f%%\n\n", float_acc);

  // --- 2. weight-pool compression (through the Deployment builder) ---------
  pool::CodecOptions co;
  co.pool_size = 64;   // S: one shared pool of 64 vectors
  co.group_size = 8;   // G: 1x8 vectors along the channel dimension
  pool::FinetuneOptions fo;
  fo.train.epochs = 3;
  fo.train.batch_size = 32;
  fo.train.lr = 0.02f;

  Deployment pooled_dep =
      Deployment::from(model).with_pool(co).finetune(train, test, fo).calibrate(train);
  std::printf("pooled %zu conv layers into a %d x %d pool (%zu uncompressed layers)\n",
              pooled_dep.pooled()->layers.size(), pooled_dep.pooled()->pool.size(),
              pooled_dep.pooled()->pool.group_size,
              pooled_dep.pooled()->uncompressed_nodes.size());
  std::printf("fine-tuned pooled accuracy: %.2f%%\n", pooled_dep.finetuned_acc());

  pool::StorageReport storage = pool::analyze_storage(pooled_dep.graph(), *pooled_dep.pooled());
  std::printf("compression ratio vs 8-bit: %.2fx (LUT overhead %.1f%%)\n\n",
              storage.compression_ratio(), 100.0 * storage.lut_overhead_fraction());

  // --- 3. compile sessions ---------------------------------------------------
  // One builder, several precision targets: compile() re-calibrates with the
  // right activation bitwidth each time. The int8 baseline uses the same
  // pool-projected weights so the comparison is weight-for-weight.
  Session baseline = Deployment::from(pooled_dep.graph()).calibrate(train).compile();
  Session bs8 = pooled_dep.act_bits(8).compile();
  Session bs4 = pooled_dep.act_bits(4).compile();  // arbitrary precision: 4 bits

  // --- 4. evaluate ----------------------------------------------------------
  Tensor sample({1, 3, 16, 16});
  test.sample(0, sample.data());
  const sim::McuProfile mcu = sim::mc_large();

  std::printf("%-30s %10s %12s %10s\n", "build", "accuracy", "latency", "flash");
  struct Entry {
    const char* name;
    const Session* session;
  };
  double cmsis_seconds = 0.0;
  for (const Entry& e : {Entry{"CMSIS-like int8", &baseline},
                         Entry{"bit-serial pool, 8-bit act", &bs8},
                         Entry{"bit-serial pool, 4-bit act", &bs4}}) {
    const float acc = e.session->evaluate(test);
    const runtime::LatencyReport r = e.session->estimate_latency(mcu, sample);
    if (cmsis_seconds == 0.0) cmsis_seconds = r.seconds;
    std::printf("%-30s %9.2f%% %10.2fms %8zukB   (%.2fx)\n", e.name, acc, 1e3 * r.seconds,
                r.mem.flash_bytes / 1024, cmsis_seconds / r.seconds);
  }
  std::printf("\nReducing activation bitwidth truncates the bit-serial loop: the\n"
              "4-bit build is the paper's runtime/accuracy trade-off in action.\n");

  // --- 5. batched inference (server-style traffic) ---------------------------
  std::vector<Tensor> batch;
  for (int i = 0; i < 8; ++i) {
    Tensor x({1, 3, 16, 16});
    test.sample(i, x.data());
    batch.push_back(std::move(x));
  }
  const std::vector<QTensor> threaded = bs4.run_batch(batch, /*n_threads=*/4);
  bool identical = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    identical = identical && threaded[i].data == bs4.run(batch[i]).data;
  }
  std::printf("\nrun_batch(8 images, 4 threads) bit-identical to sequential run: %s\n",
              identical ? "yes" : "NO");

  // --- 6. ship it -----------------------------------------------------------
  bs4.save("/tmp/resnet_s_pool64_4bit.bswp");
  const std::size_t flash = bs4.export_firmware("/tmp/resnet_s_pool64_4bit.h", "resnet_s");
  Session reloaded = Session::load("/tmp/resnet_s_pool64_4bit.bswp");
  std::printf("serialized deployable artifact: /tmp/resnet_s_pool64_4bit.{bswp,h} "
              "(%zu kB flash image; reload verified: %d plans)\n",
              flash / 1024, static_cast<int>(reloaded.network().plans.size()));
  return 0;
}
