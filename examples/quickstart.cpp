// Quickstart: the complete bit-serial weight-pool workflow in one file.
//
//   1. train a small CNN on a (synthetic) dataset
//   2. compress it with a shared z-dimension weight pool (cluster + finetune)
//   3. generate the dot-product LUT and compile for integer execution
//   4. run bit-serial inference, compare accuracy/latency/storage against
//      the CMSIS-like int8 baseline
//
// Build: cmake --build build --target quickstart && ./build/examples/quickstart
#include <cstdio>

#include "core/rng.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/trainer.h"
#include "pool/finetune.h"
#include "pool/storage_model.h"
#include "quant/calibrate.h"
#include "runtime/evaluate.h"
#include "runtime/pipeline.h"
#include "runtime/serialize.h"

int main() {
  using namespace bswp;

  // --- 1. data + float training --------------------------------------------
  data::SyntheticCifarOptions dopt;
  dopt.train_size = 1024;
  dopt.test_size = 256;
  dopt.image_size = 16;
  data::SyntheticCifar train(dopt, true), test(dopt, false);

  models::ModelOptions mo;
  mo.image_size = 16;
  nn::Graph model = models::build_resnet_s(mo);  // paper-scale widths
  Rng rng(1);
  model.init_weights(rng);

  std::printf("training float ResNet-s (%zu params)...\n", model.param_count());
  nn::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.lr = 0.08f;
  const float float_acc = nn::Trainer(cfg).fit(model, train, test).final_test_acc;
  std::printf("float accuracy: %.2f%%\n\n", float_acc);

  // --- 2. weight-pool compression ------------------------------------------
  pool::CodecOptions co;
  co.pool_size = 64;   // S: one shared pool of 64 vectors
  co.group_size = 8;   // G: 1x8 vectors along the channel dimension
  pool::PooledNetwork pooled = pool::build_weight_pool(model, co);
  std::printf("pooled %zu conv layers into a %d x %d pool (%zu uncompressed layers)\n",
              pooled.layers.size(), pooled.pool.size(), pooled.pool.group_size,
              pooled.uncompressed_nodes.size());

  pool::FinetuneOptions fo;
  fo.train.epochs = 3;
  fo.train.batch_size = 32;
  fo.train.lr = 0.02f;
  const float pooled_acc = pool::finetune_pooled(model, pooled, train, test, fo).final_test_acc;
  std::printf("fine-tuned pooled accuracy: %.2f%%\n", pooled_acc);

  pool::StorageReport storage = pool::analyze_storage(model, pooled);
  std::printf("compression ratio vs 8-bit: %.2fx (LUT overhead %.1f%%)\n\n",
              storage.compression_ratio(), 100.0 * storage.lut_overhead_fraction());

  // --- 3. calibrate + compile ----------------------------------------------
  quant::CalibrateOptions qo;
  qo.num_samples = 96;
  quant::CalibrationResult cal = quant::calibrate(model, train, qo);

  runtime::CompileOptions opt8;  // 8-bit activations
  runtime::CompileOptions opt4;  // arbitrary precision: truncate to 4 bits
  opt4.act_bits = 4;
  runtime::CompiledNetwork baseline = runtime::compile(model, nullptr, cal, opt8);
  runtime::CompiledNetwork bs8 = runtime::compile(model, &pooled, cal, opt8);
  quant::CalibrateOptions qo4 = qo;
  qo4.act_bits = 4;
  quant::CalibrationResult cal4 = quant::calibrate(model, train, qo4);
  runtime::CompiledNetwork bs4 = runtime::compile(model, &pooled, cal4, opt4);

  // --- 4. evaluate ----------------------------------------------------------
  Tensor sample({1, 3, 16, 16});
  test.sample(0, sample.data());
  const sim::McuProfile mcu = sim::mc_large();

  std::printf("%-30s %10s %12s %10s\n", "build", "accuracy", "latency", "flash");
  struct Entry {
    const char* name;
    const runtime::CompiledNetwork* net;
  };
  double cmsis_seconds = 0.0;
  for (const Entry& e : {Entry{"CMSIS-like int8", &baseline},
                         Entry{"bit-serial pool, 8-bit act", &bs8},
                         Entry{"bit-serial pool, 4-bit act", &bs4}}) {
    const float acc = runtime::evaluate_accuracy(*e.net, test);
    const runtime::LatencyReport r = runtime::estimate_latency(*e.net, mcu, sample);
    if (cmsis_seconds == 0.0) cmsis_seconds = r.seconds;
    std::printf("%-30s %9.2f%% %10.2fms %8zukB   (%.2fx)\n", e.name, acc, 1e3 * r.seconds,
                r.mem.flash_bytes / 1024, cmsis_seconds / r.seconds);
  }
  std::printf("\nReducing activation bitwidth truncates the bit-serial loop: the\n"
              "4-bit build is the paper's runtime/accuracy trade-off in action.\n");

  // --- 5. ship it -----------------------------------------------------------
  runtime::save_network(bs4, "/tmp/resnet_s_pool64_4bit.bswp");
  const std::size_t flash =
      runtime::export_c_header(bs4, "/tmp/resnet_s_pool64_4bit.h", "resnet_s");
  runtime::CompiledNetwork reloaded = runtime::load_network("/tmp/resnet_s_pool64_4bit.bswp");
  std::printf("\nserialized deployable artifact: /tmp/resnet_s_pool64_4bit.{bswp,h} "
              "(%zu kB flash image; reload verified: %d plans)\n",
              flash / 1024, static_cast<int>(reloaded.plans.size()));
  return 0;
}
