// Token generation: stateful autoregressive serving end-to-end.
//
//   1. build the zoo's GRU-style token LM and compile it through the same
//      lowering pipeline every vision model uses (the recurrence is carried
//      host-side, so the compiled network stays stateless and batchable)
//   2. serve it as a session: open, stream tokens from a short prompt
//      through the per-token callback, continue the sequence with an empty
//      prompt, close
//   3. read the serving stats: tokens/s, per-token p50/p99, session-affinity
//      hit rate
//
// Build: cmake --build build --target token_generation &&
//        ./build/examples/token_generation
#include <cstdio>
#include <vector>

#include "api/bswp.h"
#include "core/rng.h"
#include "models/zoo.h"
#include "quant/calibrate.h"
#include "runtime/pipeline.h"

int main() {
  using namespace bswp;

  // --- 1. build + compile the token LM --------------------------------------
  // Untrained fixed-seed weights: generation quality is not the point here —
  // the serving mechanics and the determinism contract are. Calibration runs
  // on the LM's own greedy rollouts (models::TokenLmRollout).
  models::TokenLmOptions lm;
  lm.vocab = 64;
  lm.embed_dim = 16;
  lm.state_dim = 32;
  lm.hidden_dim = 32;
  nn::Graph g = models::build_token_lm(lm);
  Rng rng(7);
  g.init_weights(rng);
  models::TokenLmRollout calibration(g, lm, /*sequences=*/4, /*steps=*/8, /*seed=*/8);
  quant::CalibrateOptions co;
  co.num_samples = calibration.size();
  co.batch_size = 8;
  quant::CalibrationResult cal = quant::calibrate(g, calibration, co);
  Session session(runtime::compile(g, nullptr, cal, runtime::CompileOptions{}));
  std::printf("compiled token LM: vocab %d, embed %d, state %d (%zu params)\n\n", lm.vocab,
              lm.embed_dim, lm.state_dim, g.param_count());

  // --- 2. serve it as a session ----------------------------------------------
  runtime::ServerOptions server;
  server.workers = 2;
  bswp::SessionServer srv(server);
  srv.add("lm", session, lm);

  const runtime::SessionId id = srv.open("lm");
  const std::vector<int> prompt = {3, 1, 4};
  std::printf("prompt:");
  for (int t : prompt) std::printf(" %d", t);
  std::printf("\ntokens:");
  runtime::GenerationResult r =
      srv.generate(id, prompt, /*max_tokens=*/32,
                   [](const runtime::TokenEvent& e) { std::printf(" %d", e.token); });
  std::printf("\n%zu tokens at %.0f tok/s (per-token p99 %.0f us)\n\n", r.tokens.size(),
              r.tokens_per_s, r.token_latency.p99_us);

  // An empty prompt continues exactly where the last generation stopped —
  // the session still holds the recurrent state and the context tail.
  std::printf("continuing the same session (empty prompt):");
  r = srv.generate(id, {}, 8);
  for (int t : r.tokens) std::printf(" %d", t);
  std::printf("\n\n");

  // --- 3. serving stats -------------------------------------------------------
  const runtime::ServerStats stats = srv.stats();
  std::printf("serving rollup: %llu tokens over %llu generations, %.0f tok/s,\n"
              "per-token p50 %.0f us / p99 %.0f us, session-affinity hit rate %.0f%%\n",
              static_cast<unsigned long long>(stats.sessions.tokens),
              static_cast<unsigned long long>(stats.sessions.generations),
              stats.sessions.tokens_per_s, stats.sessions.token_latency.p50_us,
              stats.sessions.token_latency.p99_us, 100.0 * stats.sessions.affinity_hit_rate);

  srv.close(id);
  srv.shutdown();
  return 0;
}
