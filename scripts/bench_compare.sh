#!/usr/bin/env bash
# Compare two bench JSON artifacts (bench::JsonWriter output) and flag
# regressions.
#
#   usage: scripts/bench_compare.sh OLD.json NEW.json [THRESHOLD_PCT]
#          scripts/bench_compare.sh --strict OLD.json NEW.json [THRESHOLD_PCT]
#
# The JSON is the flat one-"key": value-per-line shape bench::JsonWriter
# emits, so awk is enough — no JSON parser needed. Regression direction is
# inferred from the key name the same way the stats structs name units:
# keys containing `_us`, `latency`, `p50`, `p95`, `p99`, `seconds` or
# `allocs` are lower-is-better (latencies / allocation counts); everything
# else (throughput, hit rates, speedups) is higher-is-better. `tokens_per_s`
# keys are always higher-is-better, overriding any latency-ish substring. Non-numeric
# values (strings, booleans) and keys present in only one file are reported
# but never flagged.
#
# Exit status: 0 always, unless --strict is given, in which case any flagged
# regression exits 1 (CI runs this non-blocking, without --strict — smoke-
# mode numbers are meaningless and real numbers are host-dependent; the diff
# is advisory context for the reviewer, not a gate).
set -euo pipefail

strict=0
if [ "${1:-}" = "--strict" ]; then
  strict=1
  shift
fi

if [ $# -lt 2 ]; then
  echo "usage: $0 [--strict] OLD.json NEW.json [THRESHOLD_PCT]" >&2
  exit 2
fi

old_file=$1
new_file=$2
threshold=${3:-10}

for f in "$old_file" "$new_file"; do
  if [ ! -f "$f" ]; then
    echo "bench_compare: no such file: $f" >&2
    exit 2
  fi
done

awk -v threshold="$threshold" -v strict="$strict" \
    -v old_name="$old_file" -v new_name="$new_file" '
function lower_is_better(key) {
  # Throughputs stay higher-is-better even when the key also carries a
  # latency-ish substring (e.g. a per-percentile tokens_per_s breakdown).
  if (key ~ /tokens_per_s/) return 0
  return key ~ /_us/ || key ~ /latency/ || key ~ /p50/ || key ~ /p95/ || key ~ /p99/ || \
         key ~ /seconds/ || key ~ /allocs/
}
function is_number(v) {
  return v ~ /^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/
}
# Lines look like:   "key": value,
/^[[:space:]]*"[^"]+":/ {
  line = $0
  sub(/^[[:space:]]*"/, "", line)
  key = line
  sub(/".*/, "", key)
  val = line
  sub(/^[^:]*:[[:space:]]*/, "", val)
  sub(/,[[:space:]]*$/, "", val)
  if (FILENAME == ARGV[1]) { old[key] = val; order[++n_keys] = key }
  else {
    new_[key] = val
    if (!(key in old)) order[++n_keys] = key
  }
}
END {
  printf "%-32s %14s %14s %9s\n", "metric", "old", "new", "delta"
  regressions = 0
  for (i = 1; i <= n_keys; ++i) {
    key = order[i]
    ov = (key in old) ? old[key] : "-"
    nv = (key in new_) ? new_[key] : "-"
    if (!(key in old) || !(key in new_) || !is_number(ov) || !is_number(nv)) {
      printf "%-32s %14s %14s %9s\n", key, ov, nv, "-"
      continue
    }
    if (ov + 0 == 0) {
      printf "%-32s %14s %14s %9s\n", key, ov, nv, "n/a"
      continue
    }
    pct = (nv - ov) / ov * 100.0
    flag = ""
    if (lower_is_better(key) && pct > threshold) flag = "  << REGRESSION (latency up)"
    if (!lower_is_better(key) && pct < -threshold) flag = "  << REGRESSION (metric down)"
    if (flag != "") ++regressions
    printf "%-32s %14s %14s %+8.1f%%%s\n", key, ov, nv, pct, flag
  }
  printf "\n%d regression(s) beyond %s%% (%s -> %s)\n", regressions, threshold, old_name, new_name
  if (strict && regressions > 0) exit 1
}
' "$old_file" "$new_file"
