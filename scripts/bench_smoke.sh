#!/usr/bin/env bash
# Smoke-run every bench binary with minimal reps so the paper-table, serving
# and kernel benches cannot rot between performance PRs. Every bench honors
# BSWP_BENCH_SMOKE=1 (tiny datasets, few reps — numbers are meaningless,
# only the code paths matter).
# Usage: scripts/bench_smoke.sh [build-dir]
set -uo pipefail
build="${1:-build}"
export BSWP_BENCH_SMOKE=1
status=0
for bin in "$build"/bench/*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  start=$SECONDS
  "$bin" >/dev/null || { echo "FAIL $name"; status=1; continue; }
  echo "ok   $name ($((SECONDS - start))s)"
done
exit $status
