#!/usr/bin/env bash
# Smoke-run every bench binary with minimal reps so the paper-table, serving
# and kernel benches cannot rot between performance PRs. The accuracy benches
# honor BSWP_BENCH_SMOKE=1 (tiny datasets, 1 epoch — numbers are meaningless,
# only the code paths matter); bench_kernels gets a minimal measurement time.
# Usage: scripts/bench_smoke.sh [build-dir]
set -uo pipefail
build="${1:-build}"
export BSWP_BENCH_SMOKE=1
status=0
for bin in "$build"/bench/*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  start=$SECONDS
  if [ "$name" = bench_kernels ]; then
    "$bin" --benchmark_min_time=0.01 >/dev/null || { echo "FAIL $name"; status=1; continue; }
  else
    "$bin" >/dev/null || { echo "FAIL $name"; status=1; continue; }
  fi
  echo "ok   $name ($((SECONDS - start))s)"
done
exit $status
