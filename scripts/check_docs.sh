#!/usr/bin/env bash
# Docs link check: every code reference in docs/*.md (and README.md) must
# still exist in the tree, so the architecture/serving manuals cannot
# silently rot as the code moves.
#
# Two kinds of backtick-quoted references are checked:
#   1. path-like   — `src/runtime/executor.h`, `docs/serving.md`,
#                    `scripts/bench_smoke.sh` ... must exist as files/dirs;
#   2. symbol-like — namespace-qualified identifiers such as
#                    `runtime::InferenceServer` or `pool::CodecOptions`:
#                    the final component must appear somewhere under
#                    src/ tests/ bench/ examples/ scripts/.
#
# Usage: scripts/check_docs.sh   (from anywhere; resolves the repo root)
set -uo pipefail
cd "$(dirname "$0")/.."
status=0

for doc in docs/*.md README.md; do
  [ -f "$doc" ] || continue

  # Path-like references: at least one '/', only path characters.
  while IFS= read -r ref; do
    if [ ! -e "$ref" ]; then
      echo "MISSING PATH   $doc -> $ref"
      status=1
    fi
  done < <(grep -oE '`[A-Za-z0-9_.-]+(/[A-Za-z0-9_.-]+)+`' "$doc" \
             | tr -d '`' | sort -u)

  # Symbol references under the project's namespaces.
  while IFS= read -r sym; do
    leaf="${sym##*::}"
    [ -n "$leaf" ] || continue
    if ! grep -rqF "$leaf" src/ tests/ bench/ examples/ scripts/ 2>/dev/null; then
      echo "MISSING SYMBOL $doc -> $sym"
      status=1
    fi
  done < <(grep -oE '`(bswp|runtime|pool|quant|kernels|nn|sim|models|data|lowering)::[A-Za-z0-9_]+(::[A-Za-z0-9_]+)*`' "$doc" \
             | tr -d '`' | sort -u)
done

if [ "$status" -eq 0 ]; then
  echo "check_docs: all doc references resolve"
else
  echo "check_docs: stale references found (fix the doc or the code move)"
fi
exit $status
