// bswp — unified deployment API for bit-serial weight-pool networks.
//
// This header is the single public entry point for the paper's host-side
// workflow (Figure 1: train -> pool/cluster -> calibrate -> compile -> ship).
// Two facades own everything the free functions in quant::/pool::/runtime::
// used to be hand-wired for:
//
//   bswp::Deployment — fluent builder over a trained float graph:
//
//     bswp::Session s = bswp::Deployment::from(graph)
//                           .with_pool(codec_options)
//                           .finetune(train, test, ft_options)
//                           .act_bits(4)
//                           .calibrate(train)
//                           .compile();
//
//     Option combinations are validated before any heavy work runs (e.g. a
//     forced bit-serial variant without a pool, out-of-range bitwidths, or a
//     missing calibration dataset). compile() may be called repeatedly with different
//     bitwidths — calibration is re-run with the right target bitwidth each
//     time (the act_bits/calibration mismatch footgun of the old free
//     functions is gone).
//
//   bswp::Session — the inference object: run / run_batch (persistent
//     serving pool, bit-identical to sequential execution), evaluate,
//     footprint, estimate_latency, save/load, export_firmware.
//
//   bswp::Server — the async serving front end: register any number of
//     compiled sessions by name, submit individual requests
//     (submit(name, image) -> std::future<QTensor>), and let the server's
//     scheduler form cross-request batches (max-batch / deadline,
//     priority-weighted across models with per-model worker affinity) for a
//     shared pool of arena-executor workers whose live count an optional
//     autoscaler moves with load, with bounded-queue backpressure
//     (block / reject / shed-oldest) and queue/batch/affinity/latency stats.
//     See runtime/server/inference_server.h and docs/serving.md.
//
// Execution is arena-based end to end: every Session inference runs through
// a runtime::Executor whose activations and scratch live in one
// MemoryPlanner-laid-out block, and run_batch keeps a lazily created
// ServingPool of executor-per-worker threads alive across batches. Code
// that needs a long-lived single-thread inference loop can hold a
// runtime::Executor (src/runtime/executor.h) directly.
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "nn/graph.h"
#include "pool/codec.h"
#include "pool/finetune.h"
#include "quant/calibrate.h"
#include "runtime/evaluate.h"
#include "runtime/frontdoor/front_door.h"
#include "runtime/pipeline.h"
#include "runtime/server/inference_server.h"
#include "runtime/serving_pool.h"
#include "runtime/sessions/session_manager.h"

namespace bswp {

/// Batched inference outputs plus the batch's latency distribution.
struct BatchResult {
  std::vector<QTensor> logits;
  runtime::BatchStats stats;
};

/// A compiled, deployable network plus everything you do with one.
/// Move-only: the session owns its persistent serving pool.
class Session {
 public:
  /// Adopt an already-compiled network (the escape hatch for code that built
  /// a CompiledNetwork through the pipeline layer by hand).
  explicit Session(runtime::CompiledNetwork net);

  // --- inference -----------------------------------------------------------
  /// Run one image (CHW or 1xCxHxW float tensor); returns quantized logits.
  /// Throws std::invalid_argument if the image shape does not match the
  /// compiled input plan. Stateless and safe from any thread; hot loops
  /// should prefer run_batch or a dedicated runtime::Executor, which reuse
  /// their arena across calls.
  QTensor run(const Tensor& image, sim::CostCounter* counter = nullptr) const;
  /// Run and dequantize logits.
  Tensor run_logits(const Tensor& image, sim::CostCounter* counter = nullptr) const;
  /// Batched inference for server-style traffic on the session's persistent
  /// worker pool (created on first use, reused across batches; one arena
  /// Executor per worker). Results are bit-identical to calling run() on
  /// each image sequentially, regardless of n_threads. The first per-image
  /// error stops the batch early and is rethrown. Cost counting is not
  /// supported in batch mode.
  std::vector<QTensor> run_batch(std::span<const Tensor> images, int n_threads = 1) const;
  std::vector<QTensor> run_batch(const std::vector<Tensor>& images, int n_threads = 1) const {
    return run_batch(std::span<const Tensor>(images.data(), images.size()), n_threads);
  }
  /// run_batch + the batch's p50/p95/p99 per-image latency and throughput.
  BatchResult run_batch_stats(std::span<const Tensor> images, int n_threads = 1) const;
  BatchResult run_batch_stats(const std::vector<Tensor>& images, int n_threads = 1) const {
    return run_batch_stats(std::span<const Tensor>(images.data(), images.size()), n_threads);
  }

  // --- measurement ---------------------------------------------------------
  /// Top-1 accuracy (%) on `ds` (first `max_samples` samples; 0 = all).
  float evaluate(const data::Dataset& ds, int max_samples = 0) const;
  /// Static flash image + peak SRAM of the deployment.
  sim::MemoryFootprint footprint() const;
  /// One-inference latency on a simulated MCU (a zero image of the input
  /// shape is used; event counts depend only on network geometry).
  runtime::LatencyReport estimate_latency(const sim::McuProfile& mcu) const;
  runtime::LatencyReport estimate_latency(const sim::McuProfile& mcu, const Tensor& image) const;

  // --- persistence ---------------------------------------------------------
  /// Binary "BSWP" container round trip.
  void save(const std::string& path) const;
  static Session load(const std::string& path);
  /// Emit the C-header flash image a firmware build links against. Returns
  /// the number of flash bytes the emitted arrays occupy.
  std::size_t export_firmware(const std::string& path, const std::string& symbol_prefix) const;

  // --- introspection -------------------------------------------------------
  const runtime::CompiledNetwork& network() const { return *net_; }
  /// CHW shape of the compiled input plan.
  std::vector<int> input_chw() const;
  int act_bits() const { return net_->act_bits; }

 private:
  runtime::ServingPool& pool() const;

  /// Heap-pinned so the serving pool's borrowed pointer survives moves.
  std::unique_ptr<runtime::CompiledNetwork> net_;
  /// Lazily created persistent worker pool (unique_ptr keeps the Session
  /// movable; the heap mutex guards first-use creation from racing threads).
  mutable std::unique_ptr<runtime::ServingPool> pool_;
  mutable std::unique_ptr<std::mutex> pool_mu_;
};

/// Async multi-model inference server over compiled sessions: individual
/// requests in, dynamically batched execution on a shared worker pool,
/// futures out. The traffic-facing counterpart of Session::run_batch (which
/// needs the caller to show up with a pre-formed batch).
///
///   bswp::Server server({.workers = 4});
///   server.add("kws", kws_session).add("vision", vision_session);
///   std::future<QTensor> f = server.submit("kws", image);
///   QTensor logits = f.get();        // bit-identical to kws_session.run(image)
///   server.drain();                  // all accepted futures are now ready
///   runtime::ServerStats s = server.stats();
///
/// Sessions are borrowed and must outlive the server (moving a Session is
/// fine — its compiled network is heap-pinned). Admission failures
/// (bounded-queue reject/shed, shutdown) surface as runtime::ServerRejected
/// through the future. Move-only.
class Server {
 public:
  /// Starts the scheduler and `options.workers` worker threads.
  explicit Server(const runtime::ServerOptions& options = runtime::ServerOptions{});
  Server(Server&&) = default;
  Server& operator=(Server&&) = default;
  ~Server() = default;  // drains accepted requests, then joins (shutdown())

  /// Register a session's compiled network under `name`, with the server
  /// defaults or an explicit per-model batching/queue/priority-weight
  /// config. Throws std::invalid_argument on a duplicate name.
  Server& add(const std::string& name, const Session& session);
  Server& add(const std::string& name, const Session& session,
              const runtime::ModelConfig& config);

  /// Submit one request (CHW or 1xCxHxW float image) for model `name`.
  /// RequestClass::kHigh requests dispatch before queued kNormal requests
  /// of the same model and are shed last under kShedOldest.
  std::future<QTensor> submit(const std::string& name, Tensor image,
                              runtime::RequestClass cls = runtime::RequestClass::kNormal);

  /// Flush and wait until every accepted request's future is ready.
  void drain();
  /// Stop admission, drain, join. Idempotent (also run by the destructor).
  void shutdown();

  runtime::ServerStats stats() const;
  runtime::ModelStats model_stats(const std::string& name) const;
  /// Zero counters, histograms, latency windows and autoscaler event
  /// counters (after warm-up, before a measured run).
  void reset_stats();
  /// Live (dispatch-eligible) workers; varies when the autoscaler is on.
  int worker_count() const;

 private:
  std::unique_ptr<runtime::InferenceServer> impl_;
};

/// Stateful autoregressive serving: token LMs from the zoo
/// (models::build_token_lm) served as multi-step generation sessions through
/// an owned inference server. The session layer keeps each session's
/// recurrent state warm host-side, dispatches the greedy decode loop
/// step-by-step through the server (session-affinity worker placement +
/// per-token deadlines), and streams tokens through a callback:
///
///   bswp::SessionServer srv({.workers = 2});
///   srv.add("lm", lm_session, lm_options);       // compiled token LM + geometry
///   runtime::SessionId id = srv.open("lm");
///   runtime::GenerationResult r =
///       srv.generate(id, {3, 1, 4}, 32,          // prompt, max_tokens
///                    [](const runtime::TokenEvent& e) { /* stream */ });
///   srv.close(id);
///   runtime::ServerStats s = srv.stats();        // .sessions filled
///
/// Greedy decode is bit-identical across runs, worker counts and
/// scalar-vs-SIMD lanes (deterministic integer kernels + pure argmax/state
/// splice). See runtime/sessions/session_manager.h and docs/sessions.md.
/// Move-only.
class SessionServer {
 public:
  explicit SessionServer(
      const runtime::ServerOptions& server = runtime::ServerOptions{},
      const runtime::SessionManagerOptions& sessions = runtime::SessionManagerOptions{});
  SessionServer(SessionServer&&) = default;
  SessionServer& operator=(SessionServer&&) = default;
  ~SessionServer();  // shutdown(): sessions first, then the server

  /// Register a compiled token LM under `name` with its geometry (the
  /// session layer needs vocab/embed/state dims to build step inputs and
  /// split step outputs). The session is borrowed and must outlive the
  /// server. An optional ModelConfig tunes batching — the default uses
  /// max_delay = 0 so a lone decode step never waits out a batching window
  /// (concurrent sessions' steps still coalesce when simultaneous).
  SessionServer& add(const std::string& name, const Session& session,
                     const models::TokenLmOptions& lm);
  SessionServer& add(const std::string& name, const Session& session,
                     const models::TokenLmOptions& lm, const runtime::ModelConfig& config);

  /// Open / close a generation session on a registered LM.
  runtime::SessionId open(const std::string& name);
  void close(runtime::SessionId id);

  /// Blocking greedy decode (see runtime::SessionManager::generate).
  runtime::GenerationResult generate(
      runtime::SessionId id, const std::vector<int>& prompt, int max_tokens,
      const runtime::TokenCallback& on_token = runtime::TokenCallback{});
  /// Decode on a background thread; the future carries the result.
  std::future<runtime::GenerationResult> generate_async(
      runtime::SessionId id, std::vector<int> prompt, int max_tokens,
      runtime::TokenCallback on_token = runtime::TokenCallback{});

  /// Close sessions idle past SessionManagerOptions::session_ttl.
  int expire_idle();
  /// Stop generations at their next token boundary, then shut the server
  /// down. Idempotent (also run by the destructor).
  void shutdown();

  /// Server snapshot with the session-serving rollup merged in
  /// (ServerStats::sessions — tokens/s, per-token p50/p99, active/peak
  /// sessions, affinity hit rate).
  runtime::ServerStats stats() const;
  runtime::SessionStats session_stats(runtime::SessionId id) const;
  std::size_t active_sessions() const;
  int worker_count() const;

 private:
  runtime::ServerOptions server_options_;  // source of the default LM config
  std::unique_ptr<runtime::InferenceServer> server_;
  std::unique_ptr<runtime::SessionManager> sessions_;
};

/// Sharded serving cluster behind one front door: N identically configured
/// Server-style shards, consistent-hash request routing, an optional
/// idempotent result cache, and per-shard health breakers with failover.
/// The horizontal layer above bswp::Server — same submit/future contract,
/// same bit-identity guarantee, cluster-wide stats.
///
///   bswp::Cluster cluster({.shards = 2, .cache_capacity = 1024});
///   cluster.add("kws", kws_session);
///   std::future<QTensor> f = cluster.submit("kws", image);
///   QTensor logits = f.get();   // bit-identical to kws_session.run(image)
///   cluster.drain();
///   runtime::ClusterStats s = cluster.stats();
///
/// Sessions are borrowed and must outlive the cluster; every model is
/// registered on every shard (the ring decides which shard serves which
/// request). See runtime/frontdoor/front_door.h and docs/frontdoor.md.
/// Move-only.
class Cluster {
 public:
  /// Starts every shard (each a full inference server per
  /// options.server) and the routing threads.
  explicit Cluster(const runtime::FrontDoorOptions& options = runtime::FrontDoorOptions{});
  Cluster(Cluster&&) = default;
  Cluster& operator=(Cluster&&) = default;
  ~Cluster() = default;  // resolves accepted futures, then joins (shutdown())

  /// Register a session's compiled network under `name` on every shard.
  /// Throws std::invalid_argument on a duplicate name.
  Cluster& add(const std::string& name, const Session& session);
  Cluster& add(const std::string& name, const Session& session,
               const runtime::ModelConfig& config);

  /// Submit one request. Bit-identical repeat inputs may be answered from
  /// the result cache without touching a shard; otherwise the consistent-
  /// hash ring places the request on a live shard. Admission failures
  /// surface as runtime::ServerRejected through the future.
  std::future<QTensor> submit(const std::string& name, Tensor image,
                              runtime::RequestClass cls = runtime::RequestClass::kNormal);

  /// Flush every shard and wait until every accepted future is ready
  /// (failover retries included).
  void drain();
  /// Stop admission, drain, shut every shard down. Idempotent.
  void shutdown();

  /// Shut one shard down (rolling maintenance / fault injection): it is
  /// routed around immediately and its accepted requests still complete.
  void stop_shard(int shard);

  /// Fleet snapshot: routing, health, cache and merged-window latency.
  runtime::ClusterStats stats() const;
  /// Zero counters and latency windows cluster-wide (cache entries and
  /// shard health are preserved).
  void reset_stats();

  int shard_count() const;
  /// Shards currently routable (healthy or probing).
  int healthy_shard_count() const;
  /// Ring owner of (name, image) when every shard is live (placement
  /// introspection for tests and ops tooling).
  int shard_for(const std::string& name, const Tensor& image) const;

 private:
  std::unique_ptr<runtime::FrontDoor> impl_;
};

/// Fluent builder owning the pool -> finetune -> calibrate -> compile
/// pipeline. Copies the graph it is built from; the calibration (and
/// finetuning) datasets are borrowed and must outlive compile().
class Deployment {
 public:
  /// Start a deployment from a trained float graph (copied).
  static Deployment from(const nn::Graph& graph);

  // --- weight pool ---------------------------------------------------------
  /// Cluster a shared weight pool with these options (runs lazily, before
  /// finetune() or compile()). Replaces any previously supplied pool.
  Deployment& with_pool(const pool::CodecOptions& options);
  /// Use a pre-built (typically already fine-tuned) pool as-is.
  Deployment& with_pool(pool::PooledNetwork pooled);
  /// Fine-tune the graph with the pool held fixed (paper Figure 2). Runs
  /// eagerly; requires a pool. Returns the builder for chaining; the
  /// resulting accuracy is available via finetuned_acc().
  Deployment& finetune(const data::Dataset& train, const data::Dataset& test,
                       const pool::FinetuneOptions& options);

  // --- precision / compilation options -------------------------------------
  /// Activation bitwidth M in 1..8 (calibration is synced automatically).
  Deployment& act_bits(int bits);
  /// Weight bitwidth B_w in 2..8 for uncompressed layers and the pool quant.
  Deployment& weight_bits(int bits);
  /// LUT entry bitwidth B_l in 2..16. May exceed weight_bits: LUT entries
  /// hold group dot products, so B_l=16 is the exact-LUT configuration.
  Deployment& lut_bits(int bits);
  Deployment& lut_order(pool::LutOrder order);
  /// How SelectBackends picks bit-serial variants: the cost model (default)
  /// or the paper's §4.3 filters-vs-pool-size heuristic.
  Deployment& backend_select(runtime::BackendSelect mode);
  /// MCU profile pricing the cost model (defaults to MC-large). Pass the
  /// profile you will deploy on so variant choice optimizes that target.
  Deployment& cost_profile(const sim::McuProfile& profile);
  /// Host-lane policy (scalar vs SIMD kernel family per layer). The default
  /// kCostModel prices both lanes under host_profile(); both lanes are
  /// bit-identical, so this only changes host wall-clock time.
  Deployment& host_lanes(runtime::HostLaneSelect mode);
  /// Profile pricing the scalar-vs-SIMD lane decision (defaults to
  /// sim::host_profile()).
  Deployment& host_profile(const sim::McuProfile& profile);
  /// Record per-pass lowering trace entries in compile_report().
  Deployment& pass_trace(bool enabled);
  /// Heuristic mode only: enable/disable the automatic precompute policy
  /// (§4.3). Ignored by the cost model, which prices precompute directly.
  Deployment& auto_precompute(bool enabled);
  /// Force one bit-serial variant for every pooled layer (ablations).
  /// Requires a pool at compile() time.
  Deployment& force_variant(kernels::BitSerialVariant variant);
  /// Adopt a legacy CompileOptions wholesale (validated field by field) —
  /// the migration bridge for code that sweeps CompileOptions structs.
  Deployment& with_options(const runtime::CompileOptions& options);

  // --- calibration ---------------------------------------------------------
  /// Record the activation-range calibration dataset. `options.act_bits` is
  /// overridden by the deployment's act_bits at compile() time.
  Deployment& calibrate(const data::Dataset& ds,
                        const quant::CalibrateOptions& options = quant::CalibrateOptions{});
  /// Seed BatchNorm running statistics with one training-mode forward pass
  /// over `batch` calibration samples before calibrating (needed when the
  /// graph was built but never trained, e.g. capacity planning). Runs once:
  /// repeated compile() calls reuse the seeded statistics so rebuilds stay
  /// deterministic.
  Deployment& seed_batchnorm(int batch = 16);

  // --- build ---------------------------------------------------------------
  /// Validate the configuration, run the pipeline and return a Session.
  /// Throws std::invalid_argument on bad option combinations before any
  /// heavy work starts. May be called repeatedly (e.g. per bitwidth).
  Session compile();

  // --- introspection -------------------------------------------------------
  /// The graph as the deployment sees it (pool-projected after finetune() or
  /// compile() when a pool is configured).
  const nn::Graph& graph() const { return graph_; }
  /// The clustered pool, or null if none is configured/built yet.
  const pool::PooledNetwork* pooled() const { return has_pool_ ? &pooled_ : nullptr; }
  /// Final test accuracy of the last finetune() run.
  float finetuned_acc() const { return finetuned_acc_; }
  /// Lowering introspection from the last compile(): the per-layer backend
  /// selection report, plus the pass trace when pass_trace(true) is set.
  const runtime::CompileReport& compile_report() const { return report_; }

 private:
  explicit Deployment(nn::Graph graph) : graph_(std::move(graph)) {}
  void ensure_pool();
  void validate() const;

  nn::Graph graph_;

  enum class PoolSource { kNone, kOptions, kProvided };
  PoolSource pool_source_ = PoolSource::kNone;
  pool::CodecOptions pool_options_;
  pool::PooledNetwork pooled_;
  bool has_pool_ = false;
  float finetuned_acc_ = 0.0f;

  runtime::CompileOptions opts_;
  runtime::CompileReport report_;
  const data::Dataset* cal_ds_ = nullptr;
  quant::CalibrateOptions cal_options_;
  int seed_bn_batch_ = 0;
  bool bn_seeded_ = false;
};

}  // namespace bswp
