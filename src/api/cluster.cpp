#include "api/bswp.h"

namespace bswp {

Cluster::Cluster(const runtime::FrontDoorOptions& options)
    : impl_(std::make_unique<runtime::FrontDoor>(options)) {}

Cluster& Cluster::add(const std::string& name, const Session& session) {
  impl_->register_model(name, session.network());
  return *this;
}

Cluster& Cluster::add(const std::string& name, const Session& session,
                      const runtime::ModelConfig& config) {
  impl_->register_model(name, session.network(), config);
  return *this;
}

std::future<QTensor> Cluster::submit(const std::string& name, Tensor image,
                                     runtime::RequestClass cls) {
  return impl_->submit(name, std::move(image), cls);
}

void Cluster::drain() { impl_->drain(); }

void Cluster::shutdown() { impl_->shutdown(); }

void Cluster::stop_shard(int shard) { impl_->stop_shard(shard); }

runtime::ClusterStats Cluster::stats() const { return impl_->stats(); }

void Cluster::reset_stats() { impl_->reset_stats(); }

int Cluster::shard_count() const { return impl_->shard_count(); }

int Cluster::healthy_shard_count() const {
  return impl_->healthy_shard_count();
}

int Cluster::shard_for(const std::string& name, const Tensor& image) const {
  return impl_->shard_for(name, image);
}

}  // namespace bswp
