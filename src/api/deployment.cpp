#include <stdexcept>

#include "api/bswp.h"

namespace bswp {

Deployment Deployment::from(const nn::Graph& graph) {
  check(graph.num_nodes() > 0, "Deployment::from: empty graph");
  return Deployment(graph);
}

Deployment& Deployment::with_pool(const pool::CodecOptions& options) {
  check(options.pool_size > 0, "Deployment::with_pool: pool_size must be positive");
  check(options.pool_size <= 256,
        "Deployment::with_pool: pool_size > 256 cannot be index-packed into bytes");
  check(options.group_size > 0, "Deployment::with_pool: group_size must be positive");
  pool_options_ = options;
  pool_source_ = PoolSource::kOptions;
  has_pool_ = false;  // (re)cluster lazily
  return *this;
}

Deployment& Deployment::with_pool(pool::PooledNetwork pooled) {
  check(pooled.pool.size() > 0, "Deployment::with_pool: pooled network has an empty pool");
  pooled_ = std::move(pooled);
  pool_source_ = PoolSource::kProvided;
  has_pool_ = true;
  return *this;
}

void Deployment::ensure_pool() {
  if (pool_source_ == PoolSource::kOptions && !has_pool_) {
    pooled_ = pool::build_weight_pool(graph_, pool_options_);
    has_pool_ = true;
  }
}

Deployment& Deployment::finetune(const data::Dataset& train, const data::Dataset& test,
                                 const pool::FinetuneOptions& options) {
  if (pool_source_ == PoolSource::kNone) {
    throw std::invalid_argument(
        "Deployment::finetune: no weight pool configured (call with_pool first)");
  }
  ensure_pool();
  finetuned_acc_ = pool::finetune_pooled(graph_, pooled_, train, test, options).final_test_acc;
  return *this;
}

Deployment& Deployment::act_bits(int bits) {
  check(bits >= 1 && bits <= 8, "Deployment::act_bits: activation bitwidth must be in 1..8");
  opts_.act_bits = bits;
  return *this;
}

Deployment& Deployment::weight_bits(int bits) {
  check(bits >= 2 && bits <= 8, "Deployment::weight_bits: weight bitwidth must be in 2..8");
  opts_.weight_bits = bits;
  return *this;
}

Deployment& Deployment::lut_bits(int bits) {
  check(bits >= 2 && bits <= 16, "Deployment::lut_bits: LUT bitwidth must be in 2..16");
  opts_.lut_bits = bits;
  return *this;
}

Deployment& Deployment::lut_order(pool::LutOrder order) {
  opts_.lut_order = order;
  return *this;
}

Deployment& Deployment::backend_select(runtime::BackendSelect mode) {
  opts_.backend_select = mode;
  return *this;
}

Deployment& Deployment::cost_profile(const sim::McuProfile& profile) {
  opts_.cost_profile = profile;
  return *this;
}

Deployment& Deployment::host_lanes(runtime::HostLaneSelect mode) {
  opts_.host_lanes = mode;
  return *this;
}

Deployment& Deployment::host_profile(const sim::McuProfile& profile) {
  opts_.host_profile = profile;
  return *this;
}

Deployment& Deployment::pass_trace(bool enabled) {
  opts_.pass_trace = enabled;
  return *this;
}

Deployment& Deployment::auto_precompute(bool enabled) {
  opts_.auto_precompute = enabled;
  return *this;
}

Deployment& Deployment::force_variant(kernels::BitSerialVariant variant) {
  opts_.force_variant = true;
  opts_.forced_variant = variant;
  return *this;
}

Deployment& Deployment::with_options(const runtime::CompileOptions& options) {
  act_bits(options.act_bits);
  weight_bits(options.weight_bits);
  lut_bits(options.lut_bits);
  lut_order(options.lut_order);
  backend_select(options.backend_select);
  cost_profile(options.cost_profile);
  host_lanes(options.host_lanes);
  host_profile(options.host_profile);
  pass_trace(options.pass_trace);
  auto_precompute(options.auto_precompute);
  opts_.force_variant = options.force_variant;
  opts_.forced_variant = options.forced_variant;
  return *this;
}

Deployment& Deployment::calibrate(const data::Dataset& ds,
                                  const quant::CalibrateOptions& options) {
  check(ds.size() > 0, "Deployment::calibrate: empty calibration dataset");
  cal_ds_ = &ds;
  cal_options_ = options;
  return *this;
}

Deployment& Deployment::seed_batchnorm(int batch) {
  check(batch > 0, "Deployment::seed_batchnorm: batch must be positive");
  seed_bn_batch_ = batch;
  return *this;
}

void Deployment::validate() const {
  if (cal_ds_ == nullptr) {
    throw std::invalid_argument(
        "Deployment::compile: no calibration dataset (call calibrate(ds) first)");
  }
  if (opts_.force_variant && pool_source_ == PoolSource::kNone) {
    throw std::invalid_argument(
        "Deployment::compile: forced bit-serial variant '" +
        std::string(kernels::variant_name(opts_.forced_variant)) +
        "' requires a weight pool (call with_pool first)");
  }
  // Note: lut_bits > weight_bits is deliberately allowed — LUT entries hold
  // *group dot products*, not single weights, so Bl=16 against Bw=8 is the
  // paper's exact-LUT configuration (Table 5's "16" column, entry_scale 1).
}

Session Deployment::compile() {
  validate();
  ensure_pool();

  // Deployed pooled weights are exact pool reconstructions; calibrating on
  // anything else would pick ranges for weights the MCU never sees. The
  // projection is idempotent, so re-running it after finetune() is free.
  if (has_pool_) pool::reconstruct_weights(graph_, pooled_);

  // Seed BN statistics once only: a second compile() must see the same
  // running stats, or repeated builds of the same deployment would drift.
  if (seed_bn_batch_ > 0 && !bn_seeded_) {
    const data::Batch b = cal_ds_->batch(0, std::min(seed_bn_batch_, cal_ds_->size()));
    graph_.forward(b.images, /*training=*/true);
    bn_seeded_ = true;
  }

  quant::CalibrateOptions co = cal_options_;
  co.act_bits = opts_.act_bits;  // keep calibration and compilation in sync
  const quant::CalibrationResult cal = quant::calibrate(graph_, *cal_ds_, co);

  report_ = runtime::CompileReport{};
  return Session(
      runtime::compile(graph_, has_pool_ ? &pooled_ : nullptr, cal, opts_, &report_));
}

}  // namespace bswp
