#include "api/bswp.h"

namespace bswp {

Server::Server(const runtime::ServerOptions& options)
    : impl_(std::make_unique<runtime::InferenceServer>(options)) {}

Server& Server::add(const std::string& name, const Session& session) {
  impl_->register_model(name, session.network());
  return *this;
}

Server& Server::add(const std::string& name, const Session& session,
                    const runtime::ModelConfig& config) {
  impl_->register_model(name, session.network(), config);
  return *this;
}

std::future<QTensor> Server::submit(const std::string& name, Tensor image,
                                    runtime::RequestClass cls) {
  return impl_->submit(name, std::move(image), cls);
}

void Server::drain() { impl_->drain(); }

void Server::shutdown() { impl_->shutdown(); }

runtime::ServerStats Server::stats() const { return impl_->stats(); }

runtime::ModelStats Server::model_stats(const std::string& name) const {
  return impl_->model_stats(name);
}

void Server::reset_stats() { impl_->reset_stats(); }

int Server::worker_count() const { return impl_->worker_count(); }

}  // namespace bswp
