#include "api/bswp.h"
#include "runtime/serialize.h"

namespace bswp {

Session::Session(runtime::CompiledNetwork net)
    : net_(std::make_unique<runtime::CompiledNetwork>(std::move(net))),
      pool_mu_(std::make_unique<std::mutex>()) {
  check(!net_->plans.empty(), "Session: empty compiled network");
}

QTensor Session::run(const Tensor& image, sim::CostCounter* counter) const {
  runtime::Executor exec(*net_);
  return exec.run(image, counter);
}

Tensor Session::run_logits(const Tensor& image, sim::CostCounter* counter) const {
  return run(image, counter).dequantize();
}

runtime::ServingPool& Session::pool() const {
  std::lock_guard<std::mutex> lock(*pool_mu_);
  if (pool_ == nullptr) pool_ = std::make_unique<runtime::ServingPool>(*net_);
  return *pool_;
}

std::vector<QTensor> Session::run_batch(std::span<const Tensor> images, int n_threads) const {
  check(n_threads >= 1, "Session::run_batch: n_threads must be >= 1");
  return pool().run(images, n_threads, nullptr);
}

BatchResult Session::run_batch_stats(std::span<const Tensor> images, int n_threads) const {
  check(n_threads >= 1, "Session::run_batch_stats: n_threads must be >= 1");
  BatchResult r;
  r.logits = pool().run(images, n_threads, &r.stats);
  return r;
}

float Session::evaluate(const data::Dataset& ds, int max_samples) const {
  return runtime::evaluate_accuracy(*net_, ds, max_samples);
}

sim::MemoryFootprint Session::footprint() const { return runtime::footprint(*net_); }

std::vector<int> Session::input_chw() const {
  for (const runtime::LayerPlan& p : net_->plans) {
    if (p.kind == runtime::PlanKind::kInput) return p.out_chw;
  }
  throw std::runtime_error("Session: compiled network has no input plan");
}

runtime::LatencyReport Session::estimate_latency(const sim::McuProfile& mcu) const {
  const std::vector<int> chw = input_chw();
  check(chw.size() == 3, "Session::estimate_latency: input plan is not CHW");
  return estimate_latency(mcu, Tensor({1, chw[0], chw[1], chw[2]}));
}

runtime::LatencyReport Session::estimate_latency(const sim::McuProfile& mcu,
                                                 const Tensor& image) const {
  return runtime::estimate_latency(*net_, mcu, image);
}

void Session::save(const std::string& path) const { runtime::save_network(*net_, path); }

Session Session::load(const std::string& path) {
  return Session(runtime::load_network(path));
}

std::size_t Session::export_firmware(const std::string& path,
                                     const std::string& symbol_prefix) const {
  return runtime::export_c_header(*net_, path, symbol_prefix);
}

}  // namespace bswp
