#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "api/bswp.h"
#include "runtime/serialize.h"

namespace bswp {

Session::Session(runtime::CompiledNetwork net) : net_(std::move(net)) {
  check(!net_.plans.empty(), "Session: empty compiled network");
}

QTensor Session::run(const Tensor& image, sim::CostCounter* counter) const {
  return runtime::run(net_, image, counter);
}

Tensor Session::run_logits(const Tensor& image, sim::CostCounter* counter) const {
  return runtime::run_logits(net_, image, counter);
}

std::vector<QTensor> Session::run_batch(std::span<const Tensor> images, int n_threads) const {
  check(n_threads >= 1, "Session::run_batch: n_threads must be >= 1");
  std::vector<QTensor> out(images.size());
  if (images.empty()) return out;

  // Resolve each plan's kernel backend once for the whole batch so workers
  // never touch the registry lock.
  const std::vector<const runtime::KernelBackend*> backends = runtime::resolve_backends(net_);

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(n_threads), images.size());
  if (workers == 1) {
    for (std::size_t i = 0; i < images.size(); ++i) {
      out[i] = runtime::run(net_, images[i], nullptr, backends);
    }
    return out;
  }

  // Work-stealing stripe over the batch. Each image runs through the same
  // deterministic integer kernels as run(), so results are bit-identical to
  // sequential execution whatever the thread count / scheduling order.
  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr error;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= images.size()) break;
        try {
          out[i] = runtime::run(net_, images[i], nullptr, backends);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!error) error = std::current_exception();
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  if (error) std::rethrow_exception(error);
  return out;
}

float Session::evaluate(const data::Dataset& ds, int max_samples) const {
  return runtime::evaluate_accuracy(net_, ds, max_samples);
}

sim::MemoryFootprint Session::footprint() const { return runtime::footprint(net_); }

std::vector<int> Session::input_chw() const {
  for (const runtime::LayerPlan& p : net_.plans) {
    if (p.kind == runtime::PlanKind::kInput) return p.out_chw;
  }
  throw std::runtime_error("Session: compiled network has no input plan");
}

runtime::LatencyReport Session::estimate_latency(const sim::McuProfile& mcu) const {
  const std::vector<int> chw = input_chw();
  check(chw.size() == 3, "Session::estimate_latency: input plan is not CHW");
  return estimate_latency(mcu, Tensor({1, chw[0], chw[1], chw[2]}));
}

runtime::LatencyReport Session::estimate_latency(const sim::McuProfile& mcu,
                                                 const Tensor& image) const {
  return runtime::estimate_latency(net_, mcu, image);
}

void Session::save(const std::string& path) const { runtime::save_network(net_, path); }

Session Session::load(const std::string& path) {
  return Session(runtime::load_network(path));
}

std::size_t Session::export_firmware(const std::string& path,
                                     const std::string& symbol_prefix) const {
  return runtime::export_c_header(net_, path, symbol_prefix);
}

}  // namespace bswp
