#include "api/bswp.h"

namespace bswp {

namespace {

/// Decode-step traffic is latency-critical and arrives one request per
/// session at a time: a lone step must dispatch immediately (max_delay = 0)
/// while simultaneous steps from concurrent sessions still coalesce into
/// one batch. Queue/weight defaults come from the server options.
runtime::ModelConfig lm_config(const runtime::ServerOptions& server) {
  runtime::ModelConfig config{server.batching, server.queue};
  config.batching.max_delay = std::chrono::microseconds{0};
  return config;
}

}  // namespace

SessionServer::SessionServer(const runtime::ServerOptions& server,
                             const runtime::SessionManagerOptions& sessions)
    : server_options_(server),
      server_(std::make_unique<runtime::InferenceServer>(server)),
      sessions_(std::make_unique<runtime::SessionManager>(*server_, sessions)) {}

SessionServer::~SessionServer() {
  if (sessions_ != nullptr) shutdown();  // null after a move-from
}

SessionServer& SessionServer::add(const std::string& name, const Session& session,
                                  const models::TokenLmOptions& lm) {
  server_->register_model(name, session.network(), lm_config(server_options_));
  sessions_->register_lm(name, lm);
  return *this;
}

SessionServer& SessionServer::add(const std::string& name, const Session& session,
                                  const models::TokenLmOptions& lm,
                                  const runtime::ModelConfig& config) {
  server_->register_model(name, session.network(), config);
  sessions_->register_lm(name, lm);
  return *this;
}

runtime::SessionId SessionServer::open(const std::string& name) {
  return sessions_->open_session(name);
}

void SessionServer::close(runtime::SessionId id) { sessions_->close_session(id); }

runtime::GenerationResult SessionServer::generate(runtime::SessionId id,
                                                  const std::vector<int>& prompt,
                                                  int max_tokens,
                                                  const runtime::TokenCallback& on_token) {
  return sessions_->generate(id, prompt, max_tokens, on_token);
}

std::future<runtime::GenerationResult> SessionServer::generate_async(
    runtime::SessionId id, std::vector<int> prompt, int max_tokens,
    runtime::TokenCallback on_token) {
  return sessions_->generate_async(id, std::move(prompt), max_tokens, std::move(on_token));
}

int SessionServer::expire_idle() { return sessions_->expire_idle(); }

void SessionServer::shutdown() {
  // Sessions first so decode loops stop at a token boundary with the server
  // still able to complete their in-flight step; then the server drains.
  sessions_->shutdown();
  server_->shutdown();
}

runtime::ServerStats SessionServer::stats() const {
  runtime::ServerStats s = server_->stats();
  s.sessions = sessions_->stats();
  return s;
}

runtime::SessionStats SessionServer::session_stats(runtime::SessionId id) const {
  return sessions_->session_stats(id);
}

std::size_t SessionServer::active_sessions() const { return sessions_->active_sessions(); }

int SessionServer::worker_count() const { return server_->worker_count(); }

}  // namespace bswp
