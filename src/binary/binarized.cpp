#include "binary/binarized.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace bswp::binary {

using sim::Event;

void binarize_weights(nn::Graph& g, bool skip_first_conv, bool skip_classifier) {
  bool first_conv_seen = false;
  for (int i = 0; i < g.num_nodes(); ++i) {
    nn::Node& n = g.node(i);
    if (n.op == nn::Op::kConv2d) {
      if (!first_conv_seen) {
        first_conv_seen = true;
        if (skip_first_conv) continue;
      }
      const int out_ch = n.conv.out_ch;
      const std::size_t per_filter = n.weight.size() / static_cast<std::size_t>(out_ch);
      for (int o = 0; o < out_ch; ++o) {
        float* wf = n.weight.data() + static_cast<std::size_t>(o) * per_filter;
        double mean_abs = 0.0;
        for (std::size_t j = 0; j < per_filter; ++j) mean_abs += std::fabs(wf[j]);
        const float alpha = static_cast<float>(mean_abs / static_cast<double>(per_filter));
        for (std::size_t j = 0; j < per_filter; ++j) wf[j] = wf[j] >= 0.0f ? alpha : -alpha;
      }
    } else if (n.op == nn::Op::kLinear && !skip_classifier) {
      const int out = n.weight.dim(0), in = n.weight.dim(1);
      for (int o = 0; o < out; ++o) {
        float* wf = n.weight.data() + static_cast<std::size_t>(o) * in;
        double mean_abs = 0.0;
        for (int j = 0; j < in; ++j) mean_abs += std::fabs(wf[j]);
        const float alpha = static_cast<float>(mean_abs / in);
        for (int j = 0; j < in; ++j) wf[j] = wf[j] >= 0.0f ? alpha : -alpha;
      }
    }
  }
}

PackedBinaryConv pack_binary_conv(const Tensor& w, const nn::ConvSpec& spec) {
  check(spec.groups == 1, "pack_binary_conv: grouped convs unsupported");
  PackedBinaryConv p;
  p.spec = spec;
  p.words_per_tap = (spec.in_ch + 31) / 32;
  p.weight_bits.assign(
      static_cast<std::size_t>(spec.out_ch) * spec.kh * spec.kw * p.words_per_tap, 0);
  p.alpha.assign(static_cast<std::size_t>(spec.out_ch), 0.0f);
  for (int o = 0; o < spec.out_ch; ++o) {
    p.alpha[static_cast<std::size_t>(o)] = std::fabs(w.at(o, 0, 0, 0));
    for (int ky = 0; ky < spec.kh; ++ky) {
      for (int kx = 0; kx < spec.kw; ++kx) {
        for (int c = 0; c < spec.in_ch; ++c) {
          if (w.at(o, c, ky, kx) >= 0.0f) {
            const std::size_t word =
                ((static_cast<std::size_t>(o) * spec.kh + ky) * spec.kw + kx) * p.words_per_tap +
                static_cast<std::size_t>(c) / 32;
            p.weight_bits[word] |= 1u << (c % 32);
          }
        }
      }
    }
  }
  return p;
}

PackedBinaryInput pack_binary_input(const Tensor& x) {
  check(x.rank() == 4 && x.dim(0) == 1, "pack_binary_input: input must be 1xCxHxW");
  PackedBinaryInput p;
  p.channels = x.dim(1);
  p.h = x.dim(2);
  p.w = x.dim(3);
  p.words = (p.channels + 31) / 32;
  p.bits.assign(static_cast<std::size_t>(p.h) * p.w * p.words, 0);
  for (int c = 0; c < p.channels; ++c) {
    for (int y = 0; y < p.h; ++y) {
      for (int xx = 0; xx < p.w; ++xx) {
        if (x.at(0, c, y, xx) >= 0.0f) {
          p.bits[(static_cast<std::size_t>(y) * p.w + xx) * p.words +
                 static_cast<std::size_t>(c) / 32] |= 1u << (c % 32);
        }
      }
    }
  }
  return p;
}

void pack_binary_input_q(const int16_t* data, int channels, int h, int w, int zero_point,
                         uint32_t* bits) {
  const int words = binary_pack_words(channels);
  std::fill(bits, bits + static_cast<std::size_t>(h) * w * words, 0u);
  for (int c = 0; c < channels; ++c) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        if (data[(static_cast<std::size_t>(c) * h + y) * w + x] >= zero_point) {
          bits[(static_cast<std::size_t>(y) * w + x) * words + static_cast<std::size_t>(c) / 32] |=
              1u << (c % 32);
        }
      }
    }
  }
}

void pack_binary_weights_q(const int16_t* w, const nn::ConvSpec& spec, uint32_t* bits) {
  check(spec.groups == 1, "pack_binary_weights_q: grouped convs unsupported");
  const int words = binary_pack_words(spec.in_ch);
  std::fill(bits, bits + static_cast<std::size_t>(spec.out_ch) * spec.kh * spec.kw * words, 0u);
  for (int o = 0; o < spec.out_ch; ++o) {
    for (int c = 0; c < spec.in_ch; ++c) {
      for (int ky = 0; ky < spec.kh; ++ky) {
        for (int kx = 0; kx < spec.kw; ++kx) {
          const std::size_t wi =
              ((static_cast<std::size_t>(o) * spec.in_ch + c) * spec.kh + ky) * spec.kw + kx;
          if (w[wi] >= 0) {
            bits[((static_cast<std::size_t>(o) * spec.kh + ky) * spec.kw + kx) * words +
                 static_cast<std::size_t>(c) / 32] |= 1u << (c % 32);
          }
        }
      }
    }
  }
}

void xnor_conv2d_counts(const uint32_t* in_bits, int in_ch, int h, int w,
                        const uint32_t* weight_bits, const nn::ConvSpec& spec, int32_t* counts,
                        sim::CostCounter* counter) {
  check(in_ch == spec.in_ch, "xnor_conv2d: channel mismatch");
  const int words = binary_pack_words(in_ch);
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  // Lanes beyond in_ch inside the last word must not contribute: build a mask.
  const uint32_t tail_mask = in_ch % 32 == 0 ? 0xffffffffu : ((1u << (in_ch % 32)) - 1u);

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      for (int o = 0; o < spec.out_ch; ++o) {
        int matches = 0, total_lanes = 0;
        for (int ky = 0; ky < spec.kh; ++ky) {
          const int iy = oy * spec.stride + ky - spec.pad;
          for (int kx = 0; kx < spec.kw; ++kx) {
            const int ix = ox * spec.stride + kx - spec.pad;
            const std::size_t wbase =
                ((static_cast<std::size_t>(o) * spec.kh + ky) * spec.kw + kx) *
                static_cast<std::size_t>(words);
            for (int wd = 0; wd < words; ++wd) {
              const uint32_t mask = wd == words - 1 ? tail_mask : 0xffffffffu;
              // Padding encodes as activation bits 0 (-1); still counted
              // lanes, matching a zero-padded packed buffer on the MCU.
              uint32_t a = 0;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                a = in_bits[(static_cast<std::size_t>(iy) * w + ix) * words + wd];
              }
              const uint32_t wbits = weight_bits[wbase + wd];
              matches += std::popcount(~(a ^ wbits) & mask);
              total_lanes += std::popcount(mask);
            }
          }
        }
        // matches - mismatches = 2*matches - total.
        counts[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] = 2 * matches - total_lanes;
      }
    }
  }
  if (counter != nullptr) {
    const uint64_t inner = static_cast<uint64_t>(oh) * ow * spec.out_ch * spec.kh * spec.kw *
                           static_cast<uint64_t>(words);
    counter->add(Event::kSramRead, inner);        // packed activations
    counter->add(Event::kFlashSeqWord, inner);    // packed weights
    counter->add(Event::kAlu, 3 * inner);         // xor + popcount + accumulate
    counter->add(Event::kRequant, static_cast<uint64_t>(oh) * ow * spec.out_ch);
    counter->add(Event::kSramWrite, static_cast<uint64_t>(oh) * ow * spec.out_ch);
  }
}

Tensor xnor_conv2d(const PackedBinaryInput& input, const PackedBinaryConv& conv,
                   sim::CostCounter* counter) {
  const nn::ConvSpec& spec = conv.spec;
  const int oh = spec.out_h(input.h), ow = spec.out_w(input.w);
  std::vector<int32_t> counts(static_cast<std::size_t>(spec.out_ch) * oh * ow);
  xnor_conv2d_counts(input.bits.data(), input.channels, input.h, input.w,
                     conv.weight_bits.data(), spec, counts.data(), counter);
  Tensor out({1, spec.out_ch, oh, ow});
  const int hw = oh * ow;
  for (int o = 0; o < spec.out_ch; ++o) {
    const float alpha = conv.alpha[static_cast<std::size_t>(o)];
    for (int i = 0; i < hw; ++i) {
      const std::size_t idx = static_cast<std::size_t>(o) * hw + static_cast<std::size_t>(i);
      out[idx] = alpha * static_cast<float>(counts[idx]);
    }
  }
  return out;
}

}  // namespace bswp::binary
