// Binarized-network baseline (paper §5.5, comparison against 3PXNet-style
// XNOR networks).
//
// Training: keep float shadow weights in the graph and, after every optimizer
// step, project conv/linear weights to sign(w) * alpha with a per-filter
// scale alpha = mean|w| (XNOR-Net). Activations binarize through
// Graph::binarize nodes (STE backward).
//
// Inference: weights and activations packed one-bit-per-lane into 32-bit
// words; the convolution inner loop is XNOR + popcount, instrumented with the
// same sim::CostCounter events as the other kernels so the speedup-vs-CMSIS
// comparison of (Romaszkan et al., 2020) can be replayed on the cost model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.h"
#include "nn/graph.h"
#include "sim/cost_counter.h"

namespace bswp::binary {

/// Project all conv/linear weights (optionally skipping the first conv and
/// the classifier, both standard in BNN practice) to sign(w) * mean|w|.
void binarize_weights(nn::Graph& g, bool skip_first_conv = true, bool skip_classifier = true);

/// One packed binarized conv layer. Weights are stored as sign bits
/// (bit = 1 for +1) packed along the input-channel axis.
struct PackedBinaryConv {
  nn::ConvSpec spec;
  int words_per_tap = 0;  // ceil(in_ch / 32)
  std::vector<uint32_t> weight_bits;  // [o][ky][kx][word]
  std::vector<float> alpha;           // per-filter scale

  std::size_t storage_bytes() const { return weight_bits.size() * 4 + alpha.size() * 4; }
};

/// Pack a float weight tensor whose entries are +-alpha_o.
PackedBinaryConv pack_binary_conv(const Tensor& w, const nn::ConvSpec& spec);

/// Packed +-1 activation map: channels packed into words per (y, x).
struct PackedBinaryInput {
  int channels = 0, h = 0, w = 0, words = 0;
  std::vector<uint32_t> bits;  // [y][x][word]
};

/// Pack a float activation tensor (1xCxHxW, entries +-1).
PackedBinaryInput pack_binary_input(const Tensor& x);

/// XNOR-popcount convolution. Returns float outputs alpha_o * (+-counts).
/// Padding uses -1 (matching the packed zero bit).
Tensor xnor_conv2d(const PackedBinaryInput& input, const PackedBinaryConv& conv,
                   sim::CostCounter* counter);

// --- raw-buffer cores (arena execution) --------------------------------------
//
// Pointer-based variants of the packing and convolution steps so the XNOR
// backend can stage packed operands in ScratchArena memory instead of
// heap-allocated structs. Layouts match the struct API exactly.

/// Words per (y, x) position / per kernel tap when packing `channels` lanes.
inline int binary_pack_words(int channels) { return (channels + 31) / 32; }

/// Pack a quantized activation by sign (q >= zero_point -> +1) into
/// `bits[(y*w + x)*words + c/32]`. `bits` must hold h*w*words words (cleared
/// by this call).
void pack_binary_input_q(const int16_t* data, int channels, int h, int w, int zero_point,
                         uint32_t* bits);

/// Pack +-1 sign weights (int16, OIHW) into `bits[((o*kh+ky)*kw+kx)*words +
/// c/32]`. `bits` must hold out_ch*kh*kw*words words (cleared by this call).
void pack_binary_weights_q(const int16_t* w, const nn::ConvSpec& spec, uint32_t* bits);

/// XNOR-popcount conv core over packed buffers: writes the +-match balance
/// (2*matches - lanes) for every (o, oy, ox) into `counts` (out_ch*oh*ow
/// int32). Both struct and arena paths execute (and cost-count) through here.
void xnor_conv2d_counts(const uint32_t* in_bits, int in_ch, int h, int w,
                        const uint32_t* weight_bits, const nn::ConvSpec& spec, int32_t* counts,
                        sim::CostCounter* counter);

}  // namespace bswp::binary
