// Registry adapter for the XNOR-popcount binarized conv (paper §5.5).
//
// A PlanKind::kConvBinary LayerPlan stores the per-weight signs in
// `qweights` (OIHW, entries +-1) and folds the per-filter XNOR-Net alpha
// scales — together with the input scale — into `rq`. Execution binarizes
// the incoming quantized activation by sign, packs both operands and runs
// the word-parallel XNOR kernel, then requantizes the +-count accumulators.
// `binary::make_binary_conv_plan` builds such a plan from float weights.
#include "binary/binary_backend.h"

#include <cmath>

#include "runtime/kernel_backend.h"

namespace bswp::binary {

runtime::LayerPlan make_binary_conv_plan(const Tensor& w, const nn::ConvSpec& spec,
                                         const kernels::Requant& rq) {
  check(w.rank() == 4 && w.dim(0) == spec.out_ch && w.dim(1) == spec.in_ch &&
            w.dim(2) == spec.kh && w.dim(3) == spec.kw,
        "make_binary_conv_plan: weight shape does not match spec");
  check(rq.scale.size() == static_cast<std::size_t>(spec.out_ch) &&
            rq.bias.size() == static_cast<std::size_t>(spec.out_ch),
        "make_binary_conv_plan: rq.scale/bias must have out_ch entries");
  runtime::LayerPlan plan;
  plan.kind = runtime::PlanKind::kConvBinary;
  plan.spec = spec;
  plan.rq = rq;
  // Fold the XNOR-Net per-filter alpha = mean|w| into the requant scales so
  // the stored weights are pure signs.
  plan.qweights = QTensor(w.shape(), /*bits=*/8, /*is_signed=*/true);
  plan.qweights.scale = 1.0f;
  const std::size_t per_filter = w.size() / static_cast<std::size_t>(spec.out_ch);
  for (int o = 0; o < spec.out_ch; ++o) {
    const float* wf = w.data() + static_cast<std::size_t>(o) * per_filter;
    double mean_abs = 0.0;
    for (std::size_t j = 0; j < per_filter; ++j) mean_abs += std::fabs(wf[j]);
    const float alpha = static_cast<float>(mean_abs / static_cast<double>(per_filter));
    plan.rq.scale[static_cast<std::size_t>(o)] *= alpha;
    for (std::size_t j = 0; j < per_filter; ++j) {
      plan.qweights.data[static_cast<std::size_t>(o) * per_filter + j] =
          wf[j] >= 0.0f ? 1 : -1;
    }
  }
  plan.rq.out_signed = rq.out_signed;
  return plan;
}

namespace {

class XnorConvBackend : public runtime::KernelBackend {
 public:
  const char* name() const override { return "binary/xnor-conv"; }
  QTensor execute(const runtime::ExecContext& ctx) const override {
    const runtime::LayerPlan& plan = ctx.plan;
    const QTensor& in = ctx.input(0);
    check(in.shape.size() == 4 && in.shape[0] == 1,
          "xnor backend: input must be a single CHW activation");

    // Binarize the activation by sign (real >= 0 maps to +1).
    Tensor bin({in.shape[0], in.shape[1], in.shape[2], in.shape[3]});
    for (std::size_t i = 0; i < in.size(); ++i) {
      bin[i] = in.data[i] >= in.zero_point ? 1.0f : -1.0f;
    }
    PackedBinaryInput packed_in = pack_binary_input(bin);

    // Reconstruct and re-pack the +-1 weight tensor per call (alpha already
    // folded into rq). Backends are stateless singletons shared across
    // networks and threads, so per-plan caching would need keyed
    // synchronization; this path is a comparison baseline, not a hot path.
    Tensor w(plan.qweights.shape);
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] = plan.qweights.data[i] >= 0 ? 1.0f : -1.0f;
    }
    PackedBinaryConv packed_w = pack_binary_conv(w, plan.spec);

    const Tensor counts = xnor_conv2d(packed_in, packed_w, ctx.counter);
    QTensor out({counts.dim(0), counts.dim(1), counts.dim(2), counts.dim(3)}, plan.rq.out_bits,
                plan.rq.out_signed);
    out.scale = plan.rq.out_scale;
    out.zero_point = plan.rq.out_zero_point;
    const int hw = counts.dim(2) * counts.dim(3);
    for (int o = 0; o < counts.dim(1); ++o) {
      for (int i = 0; i < hw; ++i) {
        const std::size_t idx = static_cast<std::size_t>(o) * hw + static_cast<std::size_t>(i);
        out.data[idx] =
            plan.rq.apply(static_cast<int32_t>(std::lround(counts[idx])), o);
      }
    }
    return out;
  }
};

}  // namespace
}  // namespace bswp::binary

namespace bswp::runtime::detail {

void register_binary_backends(KernelRegistry& r) {
  r.add(PlanKind::kConvBinary, kAnyVariant, std::make_unique<binary::XnorConvBackend>());
}

}  // namespace bswp::runtime::detail
