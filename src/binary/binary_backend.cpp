// Registry adapter for the XNOR-popcount binarized conv (paper §5.5).
//
// A PlanKind::kConvBinary LayerPlan stores the per-weight signs in
// `qweights` (OIHW, entries +-1) and folds the per-filter XNOR-Net alpha
// scales — together with the input scale — into `rq`. Execution binarizes
// the incoming quantized activation by sign, packs both operands and runs
// the word-parallel XNOR kernel, then requantizes the +-count accumulators.
// `binary::make_binary_conv_plan` builds such a plan from float weights.
#include "binary/binary_backend.h"

#include <cmath>

#include "kernels/simd/simd_dispatch.h"
#include "runtime/kernel_backend.h"

namespace bswp::binary {

runtime::LayerPlan make_binary_conv_plan(const Tensor& w, const nn::ConvSpec& spec,
                                         const kernels::Requant& rq) {
  check(w.rank() == 4 && w.dim(0) == spec.out_ch && w.dim(1) == spec.in_ch &&
            w.dim(2) == spec.kh && w.dim(3) == spec.kw,
        "make_binary_conv_plan: weight shape does not match spec");
  check(rq.scale.size() == static_cast<std::size_t>(spec.out_ch) &&
            rq.bias.size() == static_cast<std::size_t>(spec.out_ch),
        "make_binary_conv_plan: rq.scale/bias must have out_ch entries");
  runtime::LayerPlan plan;
  plan.kind = runtime::PlanKind::kConvBinary;
  // Binary plans bypass SelectBackends, so pick the host lane here: the
  // word-widened popcount core is bit-identical to the scalar one and always
  // at least as fast, so use it whenever the SIMD family is registered.
  if (kernels::simd::available()) plan.lane = runtime::HostLane::kSimd;
  plan.spec = spec;
  plan.rq = rq;
  // Fold the XNOR-Net per-filter alpha = mean|w| into the requant scales so
  // the stored weights are pure signs.
  plan.qweights = QTensor(w.shape(), /*bits=*/8, /*is_signed=*/true);
  plan.qweights.scale = 1.0f;
  const std::size_t per_filter = w.size() / static_cast<std::size_t>(spec.out_ch);
  for (int o = 0; o < spec.out_ch; ++o) {
    const float* wf = w.data() + static_cast<std::size_t>(o) * per_filter;
    double mean_abs = 0.0;
    for (std::size_t j = 0; j < per_filter; ++j) mean_abs += std::fabs(wf[j]);
    const float alpha = static_cast<float>(mean_abs / static_cast<double>(per_filter));
    plan.rq.scale[static_cast<std::size_t>(o)] *= alpha;
    for (std::size_t j = 0; j < per_filter; ++j) {
      plan.qweights.data[static_cast<std::size_t>(o) * per_filter + j] =
          wf[j] >= 0.0f ? 1 : -1;
    }
  }
  plan.rq.out.is_signed = rq.out.is_signed;
  return plan;
}

namespace {

class XnorConvBackend : public runtime::KernelBackend {
 public:
  const char* name() const override { return "binary/xnor-conv"; }
  void execute(const runtime::ExecContext& ctx) const override {
    const runtime::LayerPlan& plan = ctx.plan;
    const kernels::QView& in = ctx.input(0);
    check(in.rank == 4 && in.shape[0] == 1,
          "xnor backend: input must be a single CHW activation");
    const nn::ConvSpec& spec = plan.spec;
    check(in.dim(1) == spec.in_ch, "xnor backend: channel mismatch");
    const int h = in.dim(2), w = in.dim(3);
    const int oh = spec.out_h(h), ow = spec.out_w(w);
    const int words = binary_pack_words(spec.in_ch);

    // Stage packed operands in scratch: the activation binarized by sign
    // (q >= zero_point maps to +1) and the stored sign weights (alpha is
    // already folded into rq, so the packed weights carry no scale).
    // Re-packing weights per call keeps the backend a stateless singleton
    // shared across networks and threads; this path is a comparison
    // baseline, not a hot path.
    uint32_t* in_bits = ctx.scratch->alloc<uint32_t>(static_cast<std::size_t>(h) * w * words);
    uint32_t* w_bits = ctx.scratch->alloc<uint32_t>(static_cast<std::size_t>(spec.out_ch) *
                                                    spec.kh * spec.kw * words);
    int32_t* counts = ctx.scratch->alloc<int32_t>(static_cast<std::size_t>(spec.out_ch) * oh * ow);
    pack_binary_input_q(in.data, spec.in_ch, h, w, in.zero_point, in_bits);
    pack_binary_weights_q(plan.qweights.data.data(), spec, w_bits);
    xnor_conv2d_counts(in_bits, spec.in_ch, h, w, w_bits, spec, counts, ctx.counter);

    kernels::QView& out = *ctx.out;
    out.set_shape({1, spec.out_ch, oh, ow});
    out.bits = plan.rq.out.bits;
    out.is_signed = plan.rq.out.is_signed;
    out.scale = plan.rq.out.scale;
    out.zero_point = plan.rq.out.zero_point;
    const int hw = oh * ow;
    for (int o = 0; o < spec.out_ch; ++o) {
      for (int i = 0; i < hw; ++i) {
        const std::size_t idx = static_cast<std::size_t>(o) * hw + static_cast<std::size_t>(i);
        out.data[idx] = plan.rq.apply(counts[idx], o);
      }
    }
  }

  void execute_batch(const runtime::ExecContext& ctx) const override {
    const runtime::LayerPlan& plan = ctx.plan;
    const kernels::QView& in = ctx.input(0);
    check(in.rank == 4 && in.shape[0] == 1,
          "xnor backend: input must be a single CHW activation");
    const nn::ConvSpec& spec = plan.spec;
    check(in.dim(1) == spec.in_ch, "xnor backend: channel mismatch");
    const int h = in.dim(2), w = in.dim(3);
    const int oh = spec.out_h(h), ow = spec.out_w(w);
    const int words = binary_pack_words(spec.in_ch);
    const std::size_t in_stride =
        ctx.net.plans[static_cast<std::size_t>(plan.inputs[0])].out_elems();
    const std::size_t out_stride = plan.out_elems();

    // Weights are packed ONCE for the whole batch (the packers are
    // counter-free, so tallies stay exactly batch x the per-image counts);
    // the input/count staging buffers are reused image to image.
    uint32_t* in_bits = ctx.scratch->alloc<uint32_t>(static_cast<std::size_t>(h) * w * words);
    uint32_t* w_bits = ctx.scratch->alloc<uint32_t>(static_cast<std::size_t>(spec.out_ch) *
                                                    spec.kh * spec.kw * words);
    int32_t* counts = ctx.scratch->alloc<int32_t>(static_cast<std::size_t>(spec.out_ch) * oh * ow);
    pack_binary_weights_q(plan.qweights.data.data(), spec, w_bits);

    kernels::QView& out = *ctx.out;
    out.set_shape({1, spec.out_ch, oh, ow});
    out.bits = plan.rq.out.bits;
    out.is_signed = plan.rq.out.is_signed;
    out.scale = plan.rq.out.scale;
    out.zero_point = plan.rq.out.zero_point;
    const int hw = oh * ow;
    for (int b = 0; b < ctx.batch; ++b) {
      const int16_t* src = in.data + static_cast<std::size_t>(b) * in_stride;
      pack_binary_input_q(src, spec.in_ch, h, w, in.zero_point, in_bits);
      xnor_conv2d_counts(in_bits, spec.in_ch, h, w, w_bits, spec, counts, ctx.counter);
      int16_t* dst = out.data + static_cast<std::size_t>(b) * out_stride;
      for (int o = 0; o < spec.out_ch; ++o) {
        for (int i = 0; i < hw; ++i) {
          const std::size_t idx = static_cast<std::size_t>(o) * hw + static_cast<std::size_t>(i);
          dst[idx] = plan.rq.apply(counts[idx], o);
        }
      }
    }
  }

  std::size_t scratch_bytes(const runtime::CompiledNetwork& net,
                            const runtime::LayerPlan& plan) const override {
    const nn::ConvSpec& spec = plan.spec;
    const runtime::LayerPlan& src = net.plans[static_cast<std::size_t>(plan.inputs[0])];
    const std::size_t words = static_cast<std::size_t>(binary_pack_words(spec.in_ch));
    const std::size_t in_hw =
        spec.in_ch > 0 ? src.out_elems() / static_cast<std::size_t>(spec.in_ch) : 0;
    const std::size_t taps = static_cast<std::size_t>(spec.out_ch) * spec.kh * spec.kw;
    return ScratchArena::bytes_for<uint32_t>(in_hw * words) +
           ScratchArena::bytes_for<uint32_t>(taps * words) +
           ScratchArena::bytes_for<int32_t>(plan.out_elems());
  }
};

}  // namespace
}  // namespace bswp::binary

namespace bswp::runtime::detail {

void register_binary_backends(KernelRegistry& r) {
  r.add(PlanKind::kConvBinary, kAnyVariant, std::make_unique<binary::XnorConvBackend>());
}

}  // namespace bswp::runtime::detail
