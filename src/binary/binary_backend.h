// Bridge between the binarized (§5.5) kernels and the runtime's
// kernel-backend registry: builds PlanKind::kConvBinary layer plans that the
// engine executes through the registered XNOR backend.
#pragma once

#include "binary/binarized.h"
#include "runtime/compressed_network.h"

namespace bswp::binary {

/// Build a kConvBinary plan from float weights (entries of any magnitude;
/// XNOR-Net alpha = mean|w| per filter is folded into `rq.scale`, the stored
/// qweights are the signs). `rq.scale` must have spec.out_ch entries.
runtime::LayerPlan make_binary_conv_plan(const Tensor& w, const nn::ConvSpec& spec,
                                         const kernels::Requant& rq);

}  // namespace bswp::binary
