// Bump-allocated scratch arena for steady-state (allocation-free) inference.
//
// Kernels draw per-layer temporaries (accumulators, precompute buffers,
// packed bit planes) from a ScratchArena instead of heap-allocating vectors.
// The arena is sized once from the MemoryPlanner's per-backend scratch
// high-water mark and reset between layers, so a warm Executor::run() touches
// the allocator zero times. Overflow throws: a backend that under-reports its
// scratch_bytes() is a bug, not a condition to paper over with heap fallback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace bswp {

class ScratchArena {
 public:
  ScratchArena() = default;
  /// Arena owning a heap block of `capacity` bytes (allocated up front).
  explicit ScratchArena(std::size_t capacity)
      : owned_(capacity > 0 ? std::make_unique<std::byte[]>(capacity) : nullptr),
        base_(owned_.get()),
        capacity_(capacity) {}
  /// Arena over caller-owned storage (e.g. a slice of a larger block).
  ScratchArena(std::byte* base, std::size_t capacity) : base_(base), capacity_(capacity) {}

  ScratchArena(ScratchArena&&) = default;
  ScratchArena& operator=(ScratchArena&&) = default;

  /// Allocate `n` elements of T, aligned for T. Throws std::runtime_error on
  /// overflow (a backend under-reported its scratch requirement).
  template <typename T>
  T* alloc(std::size_t n) {
    const std::size_t align = alignof(T);
    std::size_t off = (used_ + align - 1) & ~(align - 1);
    const std::size_t bytes = n * sizeof(T);
    if (off + bytes > capacity_) {
      throw std::runtime_error("ScratchArena: overflow (backend under-reported scratch_bytes)");
    }
    used_ = off + bytes;
    if (used_ > high_water_) high_water_ = used_;
    return reinterpret_cast<T*>(base_ + off);
  }

  /// Free everything (pointers from alloc() become dangling). Called between
  /// layers; the high-water mark survives resets.
  void reset() { used_ = 0; }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  /// Largest `used()` ever observed (instrumentation for tests and benches).
  std::size_t high_water() const { return high_water_; }

  /// Upper bound for a T[n] allocation including alignment slack — what a
  /// scratch_bytes() implementation should charge per array it draws.
  template <typename T>
  static constexpr std::size_t bytes_for(std::size_t n) {
    return n * sizeof(T) + alignof(T);
  }

 private:
  std::unique_ptr<std::byte[]> owned_;
  std::byte* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace bswp
