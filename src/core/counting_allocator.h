// Global allocation counter for zero-allocation verification.
//
// Including this header REPLACES the program-wide operator new/delete with
// counting versions; `bswp::alloc_count()` then reports how many heap
// allocations have happened. Used by tests/test_executor.cpp to *assert*
// the Executor's steady-state zero-allocation guarantee and by
// bench/bench_serving.cpp to report allocs/inference.
//
// Strictly test/bench tooling: include it in exactly one translation unit
// of a binary (the definitions are deliberately non-inline so a second
// inclusion fails at link time instead of double-counting), and never in
// library code.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace bswp {

namespace detail {
inline std::atomic<std::uint64_t> g_alloc_count{0};

inline void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
inline void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(align, (size + align - 1) / align * align)) return p;
  throw std::bad_alloc();
}
}  // namespace detail

/// Number of heap allocations (any operator new) since program start.
inline std::uint64_t alloc_count() {
  return detail::g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace bswp

void* operator new(std::size_t size) { return bswp::detail::counted_alloc(size); }
void* operator new[](std::size_t size) { return bswp::detail::counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return bswp::detail::counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return bswp::detail::counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
