#include "core/rng.h"

#include <cmath>

#include "core/tensor.h"

namespace bswp {

namespace {
uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

uint64_t Rng::uniform_int(uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

Rng Rng::split() { return Rng(next_u64()); }

void Rng::shuffle(std::vector<int>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(uniform_int(i));
    std::swap(v[i - 1], v[j]);
  }
}

void Rng::fill_normal(Tensor& t, float stddev) {
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(normal(0.0, stddev));
}

void Rng::fill_kaiming(Tensor& t, int fan_in) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
  fill_normal(t, stddev);
}

}  // namespace bswp
