// Deterministic random number generation. Every stochastic component in the
// repo (datasets, weight init, k-means seeding, training shuffles) takes an
// explicit Rng so experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace bswp {

class Tensor;

/// SplitMix64-seeded xoshiro256** generator. Not cryptographic; chosen for
/// speed and reproducibility across platforms (no libstdc++ distribution
/// dependence).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  uint64_t next_u64();
  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  uint64_t uniform_int(uint64_t n);
  /// Standard normal via Box-Muller.
  double normal();
  double normal(double mean, double stddev);

  /// Derive an independent child stream (for per-worker / per-dataset seeds).
  Rng split();

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int>& v);

  /// Fill a tensor with N(0, stddev).
  void fill_normal(Tensor& t, float stddev);
  /// Kaiming/He normal init for a weight tensor with given fan-in.
  void fill_kaiming(Tensor& t, int fan_in);

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bswp
