#include "core/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace bswp {

std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    check(d >= 0, "negative dimension in shape");
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(std::vector<int> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  check(data_.size() == shape_numel(shape_), "value count does not match shape");
}

int Tensor::dim(int i) const {
  check(i >= 0 && i < rank(), "dim index out of range");
  return shape_[static_cast<std::size_t>(i)];
}

std::size_t Tensor::index4(int a, int b, int c, int d) const {
  check(rank() == 4, "rank-4 accessor on tensor of rank " + std::to_string(rank()));
  check(a >= 0 && a < shape_[0] && b >= 0 && b < shape_[1] && c >= 0 && c < shape_[2] && d >= 0 &&
            d < shape_[3],
        "index out of range");
  return ((static_cast<std::size_t>(a) * shape_[1] + b) * shape_[2] + c) * shape_[3] + d;
}

float& Tensor::at(int a, int b, int c, int d) { return data_[index4(a, b, c, d)]; }
float Tensor::at(int a, int b, int c, int d) const { return data_[index4(a, b, c, d)]; }

float& Tensor::at(int a, int b) {
  check(rank() == 2, "rank-2 accessor on tensor of rank " + std::to_string(rank()));
  return data_[static_cast<std::size_t>(a) * shape_[1] + b];
}
float Tensor::at(int a, int b) const {
  check(rank() == 2, "rank-2 accessor on tensor of rank " + std::to_string(rank()));
  return data_[static_cast<std::size_t>(a) * shape_[1] + b];
}

void Tensor::reshape(std::vector<int> shape) {
  check(shape_numel(shape) == data_.size(), "reshape changes element count");
  shape_ = std::move(shape);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_(const Tensor& other) {
  check(other.size() == size(), "add_: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::axpy_(float alpha, const Tensor& other) {
  check(other.size() == size(), "axpy_: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Tensor::scale_(float alpha) {
  for (float& v : data_) v *= alpha;
}

float Tensor::min() const {
  check(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  check(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0f;
  double s = std::accumulate(data_.begin(), data_.end(), 0.0);
  return static_cast<float>(s / static_cast<double>(data_.size()));
}

float Tensor::l2_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) os << (i ? "," : "") << shape_[i];
  os << "]";
  return os.str();
}

Tensor QTensor::dequantize() const {
  Tensor t(shape);
  for (std::size_t i = 0; i < data.size(); ++i) t[i] = real(i);
  return t;
}

}  // namespace bswp
