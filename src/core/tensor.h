// Core dense tensor types for the bit-serial weight-pool framework.
//
// `Tensor` is a simple float32, row-major, arbitrary-rank tensor with NCHW
// helpers — it is the currency of the training/accuracy side of the repo.
// `QTensor` carries integer data plus quantization metadata and is the
// currency of the microcontroller-style kernels.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace bswp {

/// Row-major float32 tensor. Rank is dynamic (vector<int> shape); most of the
/// library uses rank-4 NCHW (activations) or OIHW (conv weights), rank-2
/// (linear weights) and rank-1 (bias) tensors.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);
  Tensor(std::vector<int> shape, float fill);
  Tensor(std::vector<int> shape, std::vector<float> values);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float v) { return Tensor(std::move(shape), v); }

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const;
  int rank() const { return static_cast<int>(shape_.size()); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Rank-4 accessor (NCHW / OIHW).
  float& at(int a, int b, int c, int d);
  float at(int a, int b, int c, int d) const;
  /// Rank-2 accessor.
  float& at(int a, int b);
  float at(int a, int b) const;

  /// Reshape in place; the total element count must be preserved.
  void reshape(std::vector<int> shape);

  /// Elementwise helpers used throughout training code.
  void fill(float v);
  void add_(const Tensor& other);               // this += other
  void axpy_(float alpha, const Tensor& other); // this += alpha * other
  void scale_(float alpha);                     // this *= alpha

  float min() const;
  float max() const;
  float abs_max() const;
  float mean() const;
  float l2_norm() const;

  std::string shape_str() const;

 private:
  std::size_t index4(int a, int b, int c, int d) const;
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape.
std::size_t shape_numel(const std::vector<int>& shape);

/// Quantized tensor. `bits` <= 8; data is stored widened to int16 so signed
/// int8 weights and unsigned sub-byte activations share one container.
/// Quantization convention:
///   real  ~=  scale * (q - zero_point)
/// Weights are symmetric (`zero_point == 0`, signed range). Activations after
/// ReLU are unsigned with `zero_point == 0` and q in [0, 2^bits - 1].
struct QTensor {
  std::vector<int> shape;
  std::vector<int16_t> data;
  float scale = 1.0f;
  int zero_point = 0;
  int bits = 8;
  bool is_signed = true;

  QTensor() = default;
  QTensor(std::vector<int> s, int bits_, bool is_signed_)
      : shape(std::move(s)), data(shape_numel(shape), 0), bits(bits_), is_signed(is_signed_) {}

  std::size_t size() const { return data.size(); }
  int dim(int i) const { return shape.at(static_cast<std::size_t>(i)); }
  int qmin() const { return is_signed ? -(1 << (bits - 1)) : 0; }
  int qmax() const { return is_signed ? (1 << (bits - 1)) - 1 : (1 << bits) - 1; }

  /// Dequantize element i.
  float real(std::size_t i) const { return scale * static_cast<float>(data[i] - zero_point); }
  Tensor dequantize() const;
};

/// Throwing check used by constructors and accessors (library code should
/// fail loudly on shape bugs rather than corrupt memory).
inline void check(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}
/// Literal-message overload: keeps hot paths allocation-free (no temporary
/// std::string on the passing side of the check).
inline void check(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace bswp
