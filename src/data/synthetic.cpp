#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"

namespace bswp::data {

Batch Dataset::batch(int start, int count) const {
  std::vector<int> idx(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) idx[static_cast<std::size_t>(i)] = start + i;
  return gather(idx);
}

Batch Dataset::gather(const std::vector<int>& indices) const {
  const int n = static_cast<int>(indices.size());
  Batch b;
  b.images = Tensor({n, channels(), height(), width()});
  b.labels.resize(static_cast<std::size_t>(n));
  const std::size_t stride =
      static_cast<std::size_t>(channels()) * height() * width();
  for (int i = 0; i < n; ++i) {
    b.labels[static_cast<std::size_t>(i)] =
        sample(indices[static_cast<std::size_t>(i)], b.images.data() + stride * i);
  }
  return b;
}

// ---------------------------------------------------------------------------
// SyntheticCifar
// ---------------------------------------------------------------------------

SyntheticCifar::SyntheticCifar(const SyntheticCifarOptions& opt, bool train)
    : opt_(opt), train_(train), size_(train ? opt.train_size : opt.test_size) {
  Rng rng(opt_.seed);  // class templates are shared between train and test
  class_templates_.resize(static_cast<std::size_t>(opt_.num_classes));
  for (int c = 0; c < opt_.num_classes; ++c) {
    auto& bank = class_templates_[static_cast<std::size_t>(c)];
    bank.resize(static_cast<std::size_t>(opt_.templates_per_class));
    for (auto& tmpl : bank) {
      const int num_gabors = 2 + static_cast<int>(rng.uniform_int(3));
      tmpl.gabors.resize(static_cast<std::size_t>(num_gabors));
      for (auto& g : tmpl.gabors) {
        g.cx = static_cast<float>(rng.uniform(0.2, 0.8));
        g.cy = static_cast<float>(rng.uniform(0.2, 0.8));
        g.sigma = static_cast<float>(rng.uniform(0.10, 0.30));
        g.freq = static_cast<float>(rng.uniform(2.0, 7.0));
        g.theta = static_cast<float>(rng.uniform(0.0, M_PI));
        g.amp = static_cast<float>(rng.uniform(0.5, 1.0));
        for (float& ch : g.color) ch = static_cast<float>(rng.uniform(0.2, 1.0));
      }
    }
  }
}

int SyntheticCifar::sample(int index, float* out) const {
  const int H = opt_.image_size, W = opt_.image_size;
  // Per-sample stream: decorrelate train/test and make samples deterministic.
  Rng rng(opt_.seed * 0x51ed2701ULL + static_cast<uint64_t>(index) * 2 +
          (train_ ? 0 : 1));
  const int label = static_cast<int>(rng.uniform_int(static_cast<uint64_t>(opt_.num_classes)));
  const auto& bank = class_templates_[static_cast<std::size_t>(label)];
  const auto& tmpl = bank[rng.uniform_int(bank.size())];

  // Random small affine jitter (rotation + translation + scale).
  const float rot = static_cast<float>(rng.uniform(-0.3, 0.3));
  const float scale = static_cast<float>(rng.uniform(0.85, 1.15));
  const float tx = static_cast<float>(rng.uniform(-0.08, 0.08));
  const float ty = static_cast<float>(rng.uniform(-0.08, 0.08));
  const float cr = std::cos(rot) * scale, sr = std::sin(rot) * scale;
  // Per-sample color cast.
  float cast[3];
  for (float& c : cast) c = static_cast<float>(rng.uniform(0.8, 1.2));

  std::fill(out, out + 3 * H * W, 0.0f);
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      // Map pixel to [0,1]^2 then apply inverse affine around center.
      const float u0 = (static_cast<float>(x) + 0.5f) / W - 0.5f;
      const float v0 = (static_cast<float>(y) + 0.5f) / H - 0.5f;
      const float u = cr * u0 - sr * v0 + 0.5f + tx;
      const float v = sr * u0 + cr * v0 + 0.5f + ty;
      float intensity[3] = {0.0f, 0.0f, 0.0f};
      for (const auto& g : tmpl.gabors) {
        const float du = u - g.cx, dv = v - g.cy;
        const float r2 = du * du + dv * dv;
        const float envelope = std::exp(-r2 / (2.0f * g.sigma * g.sigma));
        const float phase = g.freq * 2.0f * static_cast<float>(M_PI) *
                            (du * std::cos(g.theta) + dv * std::sin(g.theta));
        const float val = g.amp * envelope * (0.5f + 0.5f * std::cos(phase));
        for (int c = 0; c < 3; ++c) intensity[c] += val * g.color[c];
      }
      for (int c = 0; c < 3; ++c) {
        float px = intensity[c] * cast[c] +
                   static_cast<float>(rng.normal(0.0, opt_.noise_stddev));
        out[(c * H + y) * W + x] = std::clamp(px, 0.0f, 1.5f);
      }
    }
  }
  return label;
}

// ---------------------------------------------------------------------------
// SyntheticQuickdraw
// ---------------------------------------------------------------------------

SyntheticQuickdraw::SyntheticQuickdraw(const SyntheticQuickdrawOptions& opt, bool train)
    : opt_(opt), train_(train), size_(train ? opt.train_size : opt.test_size) {
  Rng rng(opt_.seed);
  programs_.resize(static_cast<std::size_t>(opt_.num_classes));
  for (auto& prog : programs_) {
    const int num_strokes = 2 + static_cast<int>(rng.uniform_int(
                                    static_cast<uint64_t>(opt_.strokes_per_class - 1)));
    prog.strokes.resize(static_cast<std::size_t>(num_strokes));
    for (auto& stroke : prog.strokes) {
      const int pts = 3 + static_cast<int>(rng.uniform_int(4));
      stroke.resize(static_cast<std::size_t>(pts));
      // Random walk of control points, kept inside the canvas.
      float px = static_cast<float>(rng.uniform(0.15, 0.85));
      float py = static_cast<float>(rng.uniform(0.15, 0.85));
      for (auto& p : stroke) {
        p = {px, py};
        px = std::clamp(px + static_cast<float>(rng.uniform(-0.35, 0.35)), 0.05f, 0.95f);
        py = std::clamp(py + static_cast<float>(rng.uniform(-0.35, 0.35)), 0.05f, 0.95f);
      }
    }
  }
}

namespace {
/// Accumulate an anti-aliased line segment into a 1-channel canvas.
void draw_segment(float* img, int H, int W, float x0, float y0, float x1, float y1,
                  float thickness) {
  const int steps = std::max(2, static_cast<int>(std::hypot((x1 - x0) * W, (y1 - y0) * H) * 2));
  for (int s = 0; s <= steps; ++s) {
    const float t = static_cast<float>(s) / steps;
    const float cx = (x0 + t * (x1 - x0)) * W;
    const float cy = (y0 + t * (y1 - y0)) * H;
    const int r = static_cast<int>(std::ceil(thickness)) + 1;
    const int ix = static_cast<int>(cx), iy = static_cast<int>(cy);
    for (int dy = -r; dy <= r; ++dy) {
      for (int dx = -r; dx <= r; ++dx) {
        const int x = ix + dx, y = iy + dy;
        if (x < 0 || x >= W || y < 0 || y >= H) continue;
        const float d2 = (cx - x) * (cx - x) + (cy - y) * (cy - y);
        const float v = std::exp(-d2 / (2.0f * thickness * thickness));
        float& px = img[y * W + x];
        px = std::max(px, v);
      }
    }
  }
}
}  // namespace

int SyntheticQuickdraw::sample(int index, float* out) const {
  const int H = opt_.image_size, W = opt_.image_size;
  Rng rng(opt_.seed * 0x9d5f3a21ULL + static_cast<uint64_t>(index) * 2 +
          (train_ ? 0 : 1));
  const int label = static_cast<int>(rng.uniform_int(static_cast<uint64_t>(opt_.num_classes)));
  const auto& prog = programs_[static_cast<std::size_t>(label)];

  std::fill(out, out + H * W, 0.0f);
  const float thickness = static_cast<float>(rng.uniform(0.7, 1.3));
  const float dx = static_cast<float>(rng.uniform(-0.05, 0.05));
  const float dy = static_cast<float>(rng.uniform(-0.05, 0.05));
  for (const auto& stroke : prog.strokes) {
    for (std::size_t i = 0; i + 1 < stroke.size(); ++i) {
      auto jitter = [&](std::pair<float, float> p) {
        return std::pair<float, float>{
            std::clamp(p.first + dx + static_cast<float>(rng.normal(0.0, opt_.jitter)), 0.0f, 1.0f),
            std::clamp(p.second + dy + static_cast<float>(rng.normal(0.0, opt_.jitter)), 0.0f,
                       1.0f)};
      };
      const auto a = jitter(stroke[i]);
      const auto b = jitter(stroke[i + 1]);
      draw_segment(out, H, W, a.first, a.second, b.first, b.second, thickness);
    }
  }
  // Light pixel noise so the dataset is not exactly binary.
  for (int i = 0; i < H * W; ++i) {
    out[i] = std::clamp(out[i] + static_cast<float>(rng.normal(0.0, 0.03)), 0.0f, 1.0f);
  }
  return label;
}

}  // namespace bswp::data
