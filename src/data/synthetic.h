// Procedural stand-ins for the paper's datasets.
//
// The paper evaluates on CIFAR-10 (10-class 3x32x32 natural images) and
// Quickdraw-100 (100-class 1x28x28 sketches). Neither ships with this repo,
// so we generate datasets that exercise the same code paths and — crucially
// for the accuracy tables — are hard enough that compression choices (pool
// size, group size, activation bitwidth) measurably move test accuracy:
//
//  * SyntheticCifar: each class owns a bank of oriented-gabor/blob templates;
//    a sample mixes templates with random affine jitter, per-channel color
//    cast and additive noise.
//  * SyntheticQuickdraw: each class owns a seeded polyline "stroke program";
//    a sample renders the strokes with jittered control points and thickness.
//
// Both are fully deterministic given (seed, index) so train/test splits are
// stable across runs and machines.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.h"

namespace bswp::data {

/// A labelled batch: images in NCHW, labels in [0, num_classes).
struct Batch {
  Tensor images;            // N x C x H x W
  std::vector<int> labels;  // N
};

/// In-memory dataset with deterministic generation.
class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual int size() const = 0;
  virtual int num_classes() const = 0;
  virtual int channels() const = 0;
  virtual int height() const = 0;
  virtual int width() const = 0;
  /// Write sample `index` into `out` (C*H*W floats) and return its label.
  virtual int sample(int index, float* out) const = 0;

  /// Materialize samples [start, start+count) as a batch.
  Batch batch(int start, int count) const;
  /// Materialize an arbitrary index list as a batch.
  Batch gather(const std::vector<int>& indices) const;
};

struct SyntheticCifarOptions {
  int num_classes = 10;
  int train_size = 2000;
  int test_size = 512;
  int image_size = 32;
  int templates_per_class = 3;
  float noise_stddev = 0.12f;
  uint64_t seed = 42;
};

/// 3-channel, 10-class procedural image dataset (CIFAR-10 stand-in).
class SyntheticCifar : public Dataset {
 public:
  SyntheticCifar(const SyntheticCifarOptions& opt, bool train);

  int size() const override { return size_; }
  int num_classes() const override { return opt_.num_classes; }
  int channels() const override { return 3; }
  int height() const override { return opt_.image_size; }
  int width() const override { return opt_.image_size; }
  int sample(int index, float* out) const override;

 private:
  struct ClassTemplate {
    // A small bank of oriented gaussian-modulated gratings per class.
    struct Gabor {
      float cx, cy, sigma, freq, theta, amp;
      float color[3];
    };
    std::vector<Gabor> gabors;
  };
  SyntheticCifarOptions opt_;
  bool train_;
  int size_;
  std::vector<std::vector<ClassTemplate>> class_templates_;  // [class][template]
};

struct SyntheticQuickdrawOptions {
  int num_classes = 100;
  int train_size = 4000;
  int test_size = 1000;
  int image_size = 28;
  int strokes_per_class = 4;
  float jitter = 0.06f;
  uint64_t seed = 7;
};

/// 1-channel, 100-class procedural sketch dataset (Quickdraw-100 stand-in).
class SyntheticQuickdraw : public Dataset {
 public:
  SyntheticQuickdraw(const SyntheticQuickdrawOptions& opt, bool train);

  int size() const override { return size_; }
  int num_classes() const override { return opt_.num_classes; }
  int channels() const override { return 1; }
  int height() const override { return opt_.image_size; }
  int width() const override { return opt_.image_size; }
  int sample(int index, float* out) const override;

 private:
  struct StrokeProgram {
    // Each stroke is a polyline of control points in [0,1]^2.
    std::vector<std::vector<std::pair<float, float>>> strokes;
  };
  SyntheticQuickdrawOptions opt_;
  bool train_;
  int size_;
  std::vector<StrokeProgram> programs_;  // [class]
};

}  // namespace bswp::data
