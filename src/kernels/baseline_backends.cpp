// Registry adapters for the CMSIS-like int8 kernels (conv / linear / pooling
// / residual add). All execute straight into the arena output view; none of
// the host kernels needs scratch.
#include "kernels/baseline_conv.h"
#include "runtime/kernel_backend.h"

namespace bswp::runtime {
namespace {

/// Per-image element stride of the plan's first input inside a batched arena.
std::size_t input_stride(const ExecContext& ctx) {
  return ctx.net.plans[static_cast<std::size_t>(ctx.plan.inputs[0])].out_elems();
}

class BaselineConvBackend : public KernelBackend {
 public:
  const char* name() const override { return "baseline/conv"; }
  void execute(const ExecContext& ctx) const override {
    kernels::baseline_conv2d(ctx.input(0), ctx.plan.qweights, ctx.plan.spec, ctx.plan.rq,
                             *ctx.out, ctx.counter);
  }
  void execute_batch(const ExecContext& ctx) const override {
    kernels::baseline_conv2d_batch(ctx.input(0), input_stride(ctx), ctx.batch, ctx.plan.qweights,
                                   ctx.plan.spec, ctx.plan.rq, *ctx.out, ctx.plan.out_elems(),
                                   ctx.counter);
  }
};

class BaselineLinearBackend : public KernelBackend {
 public:
  const char* name() const override { return "baseline/linear"; }
  void execute(const ExecContext& ctx) const override {
    kernels::baseline_linear(ctx.input(0), ctx.plan.qweights, ctx.plan.rq, *ctx.out, ctx.counter);
  }
  void execute_batch(const ExecContext& ctx) const override {
    kernels::baseline_linear_batch(ctx.input(0), input_stride(ctx), ctx.batch, ctx.plan.qweights,
                                   ctx.plan.rq, *ctx.out, ctx.plan.out_elems(), ctx.counter);
  }
};

class MaxPoolBackend : public KernelBackend {
 public:
  const char* name() const override { return "baseline/maxpool"; }
  void execute(const ExecContext& ctx) const override {
    kernels::maxpool_q(ctx.input(0), ctx.plan.pool_k, ctx.plan.pool_stride, *ctx.out,
                       ctx.counter);
  }
};

class GlobalAvgPoolBackend : public KernelBackend {
 public:
  const char* name() const override { return "baseline/gap"; }
  void execute(const ExecContext& ctx) const override {
    kernels::global_avgpool_q(ctx.input(0), ctx.plan.rq, *ctx.out, ctx.counter);
  }
};

class AddBackend : public KernelBackend {
 public:
  const char* name() const override { return "baseline/add"; }
  void execute(const ExecContext& ctx) const override {
    kernels::add_q(ctx.input(0), ctx.input(1), ctx.plan.rq, *ctx.out, ctx.counter);
  }
};

}  // namespace

namespace detail {

void register_baseline_backends(KernelRegistry& r) {
  r.add(PlanKind::kConvBaseline, kAnyVariant, std::make_unique<BaselineConvBackend>());
  r.add(PlanKind::kLinearBaseline, kAnyVariant, std::make_unique<BaselineLinearBackend>());
  r.add(PlanKind::kMaxPool, kAnyVariant, std::make_unique<MaxPoolBackend>());
  r.add(PlanKind::kGlobalAvgPool, kAnyVariant, std::make_unique<GlobalAvgPoolBackend>());
  r.add(PlanKind::kAdd, kAnyVariant, std::make_unique<AddBackend>());
}

}  // namespace detail
}  // namespace bswp::runtime
