#include "kernels/baseline_conv.h"

#include <algorithm>

namespace bswp::kernels {

using sim::Event;
using sim::tally;

void baseline_conv2d(const QView& in, const QTensor& weights, const nn::ConvSpec& spec,
                     const Requant& rq, QView& out, sim::CostCounter* counter) {
  check(in.rank == 4 && in.shape[0] == 1, "baseline_conv2d: input must be 1xCxHxW");
  check(in.dim(1) == spec.in_ch, "baseline_conv2d: channel mismatch");
  const int h = in.dim(2), w = in.dim(3);
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const int cg = spec.in_ch / spec.groups;
  const int og = spec.out_ch / spec.groups;
  const std::size_t wstride = static_cast<std::size_t>(cg) * spec.kh * spec.kw;

  out.set_shape({1, spec.out_ch, oh, ow});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;
  const int32_t in_zp = in.zero_point;

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      // Count the spatially valid kernel taps once per position (identical
      // for every channel and group).
      uint64_t spatial_valid = 0;
      for (int ky = 0; ky < spec.kh; ++ky) {
        const int iy = oy * spec.stride + ky - spec.pad;
        if (iy < 0 || iy >= h) continue;
        for (int kx = 0; kx < spec.kw; ++kx) {
          const int ix = ox * spec.stride + kx - spec.pad;
          if (ix >= 0 && ix < w) ++spatial_valid;
        }
      }
      for (int g = 0; g < spec.groups; ++g) {
        for (int oc = 0; oc < og; ++oc) {
          const int o = g * og + oc;
          int32_t acc = 0;
          const int16_t* wrow = weights.data.data() + static_cast<std::size_t>(o) * wstride;
          std::size_t widx = 0;
          for (int c = 0; c < cg; ++c) {
            const int in_c = g * cg + c;
            for (int ky = 0; ky < spec.kh; ++ky) {
              const int iy = oy * spec.stride + ky - spec.pad;
              for (int kx = 0; kx < spec.kw; ++kx, ++widx) {
                const int ix = ox * spec.stride + kx - spec.pad;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                const int16_t a = in.data[(static_cast<std::size_t>(in_c) * h + iy) * w + ix];
                acc += (static_cast<int32_t>(a) - in_zp) * wrow[widx];
              }
            }
          }
          out.data[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] = rq.apply(acc, o);
        }
      }
      if (counter != nullptr) {
        // Valid taps per filter: each filter reads its own group's channels.
        const uint64_t taps_per_filter = spatial_valid * static_cast<uint64_t>(cg);
        // im2col copy: the full patch (all input channels) is staged once
        // per output position, read from the activation map and written to
        // the column buffer.
        const uint64_t patch = spatial_valid * static_cast<uint64_t>(spec.in_ch);
        counter->add(Event::kSramRead, patch);
        counter->add(Event::kSramWrite, patch);
        // MAC loop per filter: sequential weight stream from flash, column
        // buffer reads from SRAM, one MAC per tap plus the q7
        // sign-extension, pointer-update and loop-compare ALU work a
        // Cortex-M3 (no DSP extension) pays per element.
        const uint64_t work = taps_per_filter * static_cast<uint64_t>(spec.out_ch);
        counter->add(Event::kFlashSeqByte, work);
        counter->add(Event::kSramRead, work);
        counter->add(Event::kMac, work);
        counter->add(Event::kAlu, 3 * work);
        counter->add(Event::kBranch, static_cast<uint64_t>(spec.out_ch));
        counter->add(Event::kRequant, static_cast<uint64_t>(spec.out_ch));
        counter->add(Event::kSramWrite, static_cast<uint64_t>(spec.out_ch));
      }
    }
  }
}

void baseline_linear(const QView& in, const QTensor& weights, const Requant& rq, QView& out,
                     sim::CostCounter* counter) {
  check(in.rank == 2 && in.shape[0] == 1, "baseline_linear: input must be 1xF");
  const int fin = in.dim(1), fout = weights.dim(0);
  check(weights.dim(1) == fin, "baseline_linear: shape mismatch");
  out.set_shape({1, fout});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;
  const int32_t in_zp = in.zero_point;
  for (int o = 0; o < fout; ++o) {
    int32_t acc = 0;
    const int16_t* wrow = weights.data.data() + static_cast<std::size_t>(o) * fin;
    for (int i = 0; i < fin; ++i)
      acc += (static_cast<int32_t>(in.data[static_cast<std::size_t>(i)]) - in_zp) * wrow[i];
    out.data[static_cast<std::size_t>(o)] = rq.apply(acc, o);
  }
  if (counter != nullptr) {
    const uint64_t taps = static_cast<uint64_t>(fin) * fout;
    counter->add(Event::kFlashSeqByte, taps);
    counter->add(Event::kSramRead, taps);
    counter->add(Event::kMac, taps);
    counter->add(Event::kAlu, 3 * taps);
    counter->add(Event::kRequant, static_cast<uint64_t>(fout));
    counter->add(Event::kSramWrite, static_cast<uint64_t>(fout));
  }
}

void baseline_conv2d_batch(const QView& in, std::size_t in_stride, int batch,
                           const QTensor& weights, const nn::ConvSpec& spec, const Requant& rq,
                           QView& out, std::size_t out_stride, sim::CostCounter* counter) {
  check(in.rank == 4 && in.shape[0] == 1, "baseline_conv2d_batch: input must be 1xCxHxW");
  check(in.dim(1) == spec.in_ch, "baseline_conv2d_batch: channel mismatch");
  check(batch >= 1, "baseline_conv2d_batch: batch must be >= 1");
  const int h = in.dim(2), w = in.dim(3);
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const int cg = spec.in_ch / spec.groups;
  const int og = spec.out_ch / spec.groups;
  const std::size_t wstride = static_cast<std::size_t>(cg) * spec.kh * spec.kw;

  out.set_shape({1, spec.out_ch, oh, ow});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;
  const int32_t in_zp = in.zero_point;

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      uint64_t spatial_valid = 0;
      for (int ky = 0; ky < spec.kh; ++ky) {
        const int iy = oy * spec.stride + ky - spec.pad;
        if (iy < 0 || iy >= h) continue;
        for (int kx = 0; kx < spec.kw; ++kx) {
          const int ix = ox * spec.stride + kx - spec.pad;
          if (ix >= 0 && ix < w) ++spatial_valid;
        }
      }
      for (int g = 0; g < spec.groups; ++g) {
        for (int oc = 0; oc < og; ++oc) {
          const int o = g * og + oc;
          const int16_t* wrow = weights.data.data() + static_cast<std::size_t>(o) * wstride;
          // Image loop inside the filter loop: wrow stays hot across the
          // batch. Each image's tap order (c, ky, kx) matches the per-image
          // core exactly, so the int32 accumulation is bit-identical.
          for (int b = 0; b < batch; ++b) {
            const int16_t* src = in.data + static_cast<std::size_t>(b) * in_stride;
            int32_t acc = 0;
            std::size_t widx = 0;
            for (int c = 0; c < cg; ++c) {
              const int in_c = g * cg + c;
              for (int ky = 0; ky < spec.kh; ++ky) {
                const int iy = oy * spec.stride + ky - spec.pad;
                for (int kx = 0; kx < spec.kw; ++kx, ++widx) {
                  const int ix = ox * spec.stride + kx - spec.pad;
                  if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                  const int16_t a = src[(static_cast<std::size_t>(in_c) * h + iy) * w + ix];
                  acc += (static_cast<int32_t>(a) - in_zp) * wrow[widx];
                }
              }
            }
            out.data[static_cast<std::size_t>(b) * out_stride +
                     (static_cast<std::size_t>(o) * oh + oy) * ow + ox] = rq.apply(acc, o);
          }
        }
      }
      if (counter != nullptr) {
        // Exactly batch x the per-image tallies (the modeled MCU does not
        // batch; the closed forms in sim/layer_cost.h price amortization).
        const uint64_t nb = static_cast<uint64_t>(batch);
        const uint64_t taps_per_filter = spatial_valid * static_cast<uint64_t>(cg);
        const uint64_t patch = spatial_valid * static_cast<uint64_t>(spec.in_ch);
        counter->add(Event::kSramRead, patch * nb);
        counter->add(Event::kSramWrite, patch * nb);
        const uint64_t work = taps_per_filter * static_cast<uint64_t>(spec.out_ch);
        counter->add(Event::kFlashSeqByte, work * nb);
        counter->add(Event::kSramRead, work * nb);
        counter->add(Event::kMac, work * nb);
        counter->add(Event::kAlu, 3 * work * nb);
        counter->add(Event::kBranch, static_cast<uint64_t>(spec.out_ch) * nb);
        counter->add(Event::kRequant, static_cast<uint64_t>(spec.out_ch) * nb);
        counter->add(Event::kSramWrite, static_cast<uint64_t>(spec.out_ch) * nb);
      }
    }
  }
}

void baseline_linear_batch(const QView& in, std::size_t in_stride, int batch,
                           const QTensor& weights, const Requant& rq, QView& out,
                           std::size_t out_stride, sim::CostCounter* counter) {
  check(in.rank == 2 && in.shape[0] == 1, "baseline_linear_batch: input must be 1xF");
  check(batch >= 1, "baseline_linear_batch: batch must be >= 1");
  const int fin = in.dim(1), fout = weights.dim(0);
  check(weights.dim(1) == fin, "baseline_linear_batch: shape mismatch");
  out.set_shape({1, fout});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;
  const int32_t in_zp = in.zero_point;
  for (int o = 0; o < fout; ++o) {
    const int16_t* wrow = weights.data.data() + static_cast<std::size_t>(o) * fin;
    for (int b = 0; b < batch; ++b) {
      const int16_t* src = in.data + static_cast<std::size_t>(b) * in_stride;
      int32_t acc = 0;
      for (int i = 0; i < fin; ++i)
        acc += (static_cast<int32_t>(src[i]) - in_zp) * wrow[i];
      out.data[static_cast<std::size_t>(b) * out_stride + static_cast<std::size_t>(o)] =
          rq.apply(acc, o);
    }
  }
  if (counter != nullptr) {
    const uint64_t nb = static_cast<uint64_t>(batch);
    const uint64_t taps = static_cast<uint64_t>(fin) * fout;
    counter->add(Event::kFlashSeqByte, taps * nb);
    counter->add(Event::kSramRead, taps * nb);
    counter->add(Event::kMac, taps * nb);
    counter->add(Event::kAlu, 3 * taps * nb);
    counter->add(Event::kRequant, static_cast<uint64_t>(fout) * nb);
    counter->add(Event::kSramWrite, static_cast<uint64_t>(fout) * nb);
  }
}

void maxpool_q(const QView& in, int k, int stride, QView& out, sim::CostCounter* counter) {
  const int c = in.dim(1), h = in.dim(2), w = in.dim(3);
  const int oh = (h - k) / stride + 1, ow = (w - k) / stride + 1;
  out.set_shape({1, c, oh, ow});
  out.set_meta(in);
  for (int ch = 0; ch < c; ++ch) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        int16_t m = in.data[(static_cast<std::size_t>(ch) * h + oy * stride) * w + ox * stride];
        for (int ky = 0; ky < k; ++ky)
          for (int kx = 0; kx < k; ++kx)
            m = std::max(m, in.data[(static_cast<std::size_t>(ch) * h + oy * stride + ky) * w +
                                    ox * stride + kx]);
        out.data[(static_cast<std::size_t>(ch) * oh + oy) * ow + ox] = m;
      }
    }
  }
  if (counter != nullptr) {
    const uint64_t outs = static_cast<uint64_t>(c) * oh * ow;
    counter->add(Event::kSramRead, outs * static_cast<uint64_t>(k) * k);
    counter->add(Event::kAlu, outs * static_cast<uint64_t>(k) * k);
    counter->add(Event::kSramWrite, outs);
  }
}

void global_avgpool_q(const QView& in, const Requant& rq, QView& out, sim::CostCounter* counter) {
  const int c = in.dim(1), h = in.dim(2), w = in.dim(3);
  out.set_shape({1, c});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = 0;
  for (int ch = 0; ch < c; ++ch) {
    int32_t acc = 0;
    const int16_t* src = in.data + static_cast<std::size_t>(ch) * h * w;
    for (int i = 0; i < h * w; ++i) acc += src[i];
    out.data[static_cast<std::size_t>(ch)] = rq.apply(acc, ch);
  }
  if (counter != nullptr) {
    counter->add(Event::kSramRead, static_cast<uint64_t>(c) * h * w);
    counter->add(Event::kAlu, static_cast<uint64_t>(c) * h * w);
    counter->add(Event::kRequant, static_cast<uint64_t>(c));
    counter->add(Event::kSramWrite, static_cast<uint64_t>(c));
  }
}

void add_q(const QView& a, const QView& b, const Requant& rq, QView& out,
           sim::CostCounter* counter) {
  check(a.same_shape(b), "add_q: shape mismatch");
  out.rank = a.rank;
  for (int i = 0; i < a.rank; ++i) out.shape[i] = a.shape[i];
  out.len = a.len;
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;
  const int32_t lo = rq.qmin(), hi = rq.qmax();
  for (std::size_t i = 0; i < a.size(); ++i) {
    float real = a.scale * static_cast<float>(a.data[i] - a.zero_point) +
                 b.scale * static_cast<float>(b.data[i] - b.zero_point);
    if (rq.fuse_relu && real < 0.0f) real = 0.0f;
    auto q = static_cast<int32_t>(std::lround(real / rq.out.scale)) + rq.out.zero_point;
    out.data[i] = static_cast<int16_t>(q < lo ? lo : (q > hi ? hi : q));
  }
  if (counter != nullptr) {
    counter->add(Event::kSramRead, 2 * a.size());
    counter->add(Event::kMac, 2 * a.size());  // two scale multiplies per element
    counter->add(Event::kAlu, a.size());
    counter->add(Event::kSramWrite, a.size());
  }
}

// --- owning wrappers ---------------------------------------------------------

namespace {

/// Owning output tensor sized for a view core's result, plus its view.
QTensor make_out(std::vector<int> shape, const Requant& rq) {
  QTensor t(std::move(shape), rq.out.bits, rq.out.is_signed);
  t.scale = rq.out.scale;
  t.zero_point = rq.out.zero_point;
  return t;
}

void adopt_meta(QTensor& t, const QView& v) {
  t.scale = v.scale;
  t.zero_point = v.zero_point;
  t.bits = v.bits;
  t.is_signed = v.is_signed;
}

}  // namespace

QTensor baseline_conv2d(const QTensor& input, const QTensor& weights, const nn::ConvSpec& spec,
                        const Requant& rq, sim::CostCounter* counter) {
  check(input.shape.size() == 4 && input.shape[0] == 1, "baseline_conv2d: input must be 1xCxHxW");
  const int oh = spec.out_h(input.dim(2)), ow = spec.out_w(input.dim(3));
  QTensor out = make_out({1, spec.out_ch, oh, ow}, rq);
  QView ov = QView::of(out);
  baseline_conv2d(QView::of(input), weights, spec, rq, ov, counter);
  return out;
}

QTensor baseline_linear(const QTensor& input, const QTensor& weights, const Requant& rq,
                        sim::CostCounter* counter) {
  check(input.shape.size() == 2 && input.shape[0] == 1, "baseline_linear: input must be 1xF");
  QTensor out = make_out({1, weights.dim(0)}, rq);
  QView ov = QView::of(out);
  baseline_linear(QView::of(input), weights, rq, ov, counter);
  return out;
}

QTensor maxpool_q(const QTensor& input, int k, int stride, sim::CostCounter* counter) {
  const int c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int oh = (h - k) / stride + 1, ow = (w - k) / stride + 1;
  QTensor out({1, c, oh, ow}, input.bits, input.is_signed);
  QView ov = QView::of(out);
  maxpool_q(QView::of(input), k, stride, ov, counter);
  adopt_meta(out, ov);
  return out;
}

QTensor global_avgpool_q(const QTensor& input, const Requant& rq, sim::CostCounter* counter) {
  QTensor out = make_out({1, input.dim(1)}, rq);
  out.zero_point = 0;
  QView ov = QView::of(out);
  global_avgpool_q(QView::of(input), rq, ov, counter);
  adopt_meta(out, ov);
  return out;
}

QTensor add_q(const QTensor& a, const QTensor& b, const Requant& rq, sim::CostCounter* counter) {
  check(a.shape == b.shape, "add_q: shape mismatch");
  QTensor out = make_out(a.shape, rq);
  QView ov = QView::of(out);
  add_q(QView::of(a), QView::of(b), rq, ov, counter);
  return out;
}

std::size_t baseline_conv_scratch_bytes(const nn::ConvSpec& spec) {
  // CMSIS keeps a 2-column q15 im2col buffer: 2 * (in_ch/groups * kh * kw) int16.
  return 2 * sizeof(int16_t) * static_cast<std::size_t>(spec.in_ch / spec.groups) * spec.kh *
         spec.kw * 2;
}

}  // namespace bswp::kernels
