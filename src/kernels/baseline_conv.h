// CMSIS-NN-style int8 reference kernels (the paper's Table 7 baseline).
//
// Functionally these are plain integer convolution / linear / pooling
// kernels; their instrumentation mirrors arm_convolve_HWC_q7_basic on a
// Cortex-M3: an im2col copy of each input patch into an SRAM column buffer,
// then a MAC loop streaming weights sequentially from flash.
#pragma once

#include "kernels/common.h"

namespace bswp::kernels {

/// int8 convolution. `input` is 1xCxHxW (signed or unsigned, zero_point 0);
/// `weights` is OIHW signed int8. Output is quantized via `rq`.
QTensor baseline_conv2d(const QTensor& input, const QTensor& weights, const nn::ConvSpec& spec,
                        const Requant& rq, sim::CostCounter* counter);

/// int8 fully-connected layer; `input` is flat (1xF), `weights` out x in.
QTensor baseline_linear(const QTensor& input, const QTensor& weights, const Requant& rq,
                        sim::CostCounter* counter);

/// Max pooling in the quantized domain (scale-preserving).
QTensor maxpool_q(const QTensor& input, int k, int stride, sim::CostCounter* counter);

/// Global average pooling with requantization.
QTensor global_avgpool_q(const QTensor& input, const Requant& rq, sim::CostCounter* counter);

/// Residual add: out = requantize(a.scale*qa + b.scale*qb). `rq.scale` is
/// ignored; input scales are used directly (per-tensor).
QTensor add_q(const QTensor& a, const QTensor& b, const Requant& rq, sim::CostCounter* counter);

/// Scratch SRAM the baseline conv needs (im2col column buffer), in bytes.
std::size_t baseline_conv_scratch_bytes(const nn::ConvSpec& spec);

}  // namespace bswp::kernels
