// CMSIS-NN-style int8 reference kernels (the paper's Table 7 baseline).
//
// Functionally these are plain integer convolution / linear / pooling
// kernels; their instrumentation mirrors arm_convolve_HWC_q7_basic on a
// Cortex-M3: an im2col copy of each input patch into an SRAM column buffer,
// then a MAC loop streaming weights sequentially from flash.
//
// Each kernel has two entry points: a view core that writes into a
// caller-provided (arena) output view — the form the Executor's backends
// call, zero-allocation — and an owning-QTensor wrapper kept for tests,
// benches and one-off callers.
#pragma once

#include "kernels/common.h"

namespace bswp::kernels {

// --- arena (view) cores ------------------------------------------------------

/// int8 convolution into `out`. `in` is 1xCxHxW (signed or unsigned,
/// zero_point 0); `weights` is OIHW signed int8. Output is quantized via
/// `rq`; `out.data` must hold out_ch * oh * ow elements.
void baseline_conv2d(const QView& in, const QTensor& weights, const nn::ConvSpec& spec,
                     const Requant& rq, QView& out, sim::CostCounter* counter);

/// int8 fully-connected layer into `out`; `in` is flat (1xF).
void baseline_linear(const QView& in, const QTensor& weights, const Requant& rq, QView& out,
                     sim::CostCounter* counter);

// --- batched cores -----------------------------------------------------------
//
// Batch-N forms over arena slots laid out at a fixed per-image element
// stride: image b reads `in.data + b * in_stride` and writes
// `out.data + b * out_stride` (`in`/`out` describe image 0). The image loop
// sits INSIDE the filter loop so each weight row is loaded once per batch
// instead of once per image; per-image accumulation order is unchanged, so
// results and CostCounter tallies are byte-identical to running the
// per-image core `batch` times (tallies are exactly batch x per-image).

/// Batched int8 convolution (see block comment above).
void baseline_conv2d_batch(const QView& in, std::size_t in_stride, int batch,
                           const QTensor& weights, const nn::ConvSpec& spec, const Requant& rq,
                           QView& out, std::size_t out_stride, sim::CostCounter* counter);

/// Batched int8 fully-connected layer (see block comment above).
void baseline_linear_batch(const QView& in, std::size_t in_stride, int batch,
                           const QTensor& weights, const Requant& rq, QView& out,
                           std::size_t out_stride, sim::CostCounter* counter);

/// Max pooling in the quantized domain (scale-preserving) into `out`.
void maxpool_q(const QView& in, int k, int stride, QView& out, sim::CostCounter* counter);

/// Global average pooling with requantization into `out`.
void global_avgpool_q(const QView& in, const Requant& rq, QView& out, sim::CostCounter* counter);

/// Residual add into `out`: out = requantize(a.scale*qa + b.scale*qb).
/// `rq.scale` is ignored; input scales are used directly (per-tensor).
void add_q(const QView& a, const QView& b, const Requant& rq, QView& out,
           sim::CostCounter* counter);

// --- owning wrappers ---------------------------------------------------------

QTensor baseline_conv2d(const QTensor& input, const QTensor& weights, const nn::ConvSpec& spec,
                        const Requant& rq, sim::CostCounter* counter);
QTensor baseline_linear(const QTensor& input, const QTensor& weights, const Requant& rq,
                        sim::CostCounter* counter);
QTensor maxpool_q(const QTensor& input, int k, int stride, sim::CostCounter* counter);
QTensor global_avgpool_q(const QTensor& input, const Requant& rq, sim::CostCounter* counter);
QTensor add_q(const QTensor& a, const QTensor& b, const Requant& rq, sim::CostCounter* counter);

/// Scratch SRAM the baseline conv needs on the modeled MCU (im2col column
/// buffer), in bytes. The host kernel reads the activation map directly and
/// needs no scratch; this feeds the simulator's memory plan.
std::size_t baseline_conv_scratch_bytes(const nn::ConvSpec& spec);

}  // namespace bswp::kernels
