#include "kernels/bit_unpack.h"

namespace bswp::kernels {

void unpack_bits(const int16_t* vals, int group_size, int bits, uint32_t* out,
                 sim::CostCounter* counter) {
  for (int j = 0; j < bits; ++j) out[j] = 0;
  for (int i = 0; i < group_size; ++i) {
    const uint32_t v = static_cast<uint32_t>(vals[i]);
    for (int j = 0; j < bits; ++j) {
      out[j] |= ((v >> j) & 1u) << i;
    }
  }
  if (counter != nullptr) {
    // One activation load per element; ~2 ALU ops (shift+mask / or) per
    // (element, bit) pair; one store per produced bit-vector. This is the
    // G*M-iteration inner loop of §4.1 whose cost input reuse amortizes.
    counter->add(sim::Event::kSramRead, static_cast<uint64_t>(group_size));
    counter->add(sim::Event::kAlu, 2ull * static_cast<uint64_t>(group_size) * bits);
    counter->add(sim::Event::kSramWrite, static_cast<uint64_t>(bits));
    counter->add(sim::Event::kBranch, static_cast<uint64_t>(group_size));
  }
}

int16_t recompose_element(const uint32_t* bit_vectors, int bits, int element) {
  int16_t v = 0;
  for (int j = 0; j < bits; ++j) {
    v = static_cast<int16_t>(v | (((bit_vectors[j] >> element) & 1u) << j));
  }
  return v;
}

}  // namespace bswp::kernels
