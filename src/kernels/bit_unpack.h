// Bit decomposition of activation vectors (paper §3.1, Figure 5; overhead
// analysis §4.1).
//
// An M-bit, G-element activation vector is decomposed into M bit-vectors of
// G bits: bit-vector j packs bit j (from LSB) of every element, with element
// i at bit position i of the result. These bit-vectors index the dot-product
// LUT.
#pragma once

#include <cstdint>

#include "core/tensor.h"
#include "sim/cost_counter.h"

namespace bswp::kernels {

/// Decompose `group_size` activation values (starting at `vals`, each an
/// M-bit unsigned quantity in an int16 slot) into `bits` bit-vectors written
/// to `out[0..bits)`. Instrumented with the software unpacking cost the paper
/// describes: one load per element plus shift/mask/or work per (element, bit).
void unpack_bits(const int16_t* vals, int group_size, int bits, uint32_t* out,
                 sim::CostCounter* counter);

/// Reference re-composition (tests): rebuild element `i` from bit-vectors.
int16_t recompose_element(const uint32_t* bit_vectors, int bits, int element);

}  // namespace bswp::kernels
