// Registry adapters for the bit-serial LUT kernels. Each BitSerialVariant is
// registered as its own backend so ablations and future per-variant
// replacements (e.g. a SIMD host build of kCachedPrecompute) can swap one
// variant without touching the others. Accumulators, precompute/memo buffers
// and channel-group staging come from the executor's scratch arena.
#include "kernels/bitserial_conv.h"
#include "runtime/kernel_backend.h"

namespace bswp::runtime {
namespace {

/// Per-image element stride of the plan's first input inside a batched arena.
std::size_t input_stride(const ExecContext& ctx) {
  return ctx.net.plans[static_cast<std::size_t>(ctx.plan.inputs[0])].out_elems();
}

class BitSerialConvBackend : public KernelBackend {
 public:
  explicit BitSerialConvBackend(kernels::BitSerialVariant v) : variant_(v) {
    name_ = std::string("bitserial/conv-") + kernels::variant_name(v);
  }
  const char* name() const override { return name_.c_str(); }
  void execute(const ExecContext& ctx) const override {
    kernels::bitserial_conv2d(ctx.input(0), ctx.plan.indices, ctx.net.lut, ctx.plan.spec,
                              ctx.plan.rq, variant_, *ctx.out, *ctx.scratch, ctx.counter);
  }
  void execute_batch(const ExecContext& ctx) const override {
    kernels::bitserial_conv2d_batch(ctx.input(0), input_stride(ctx), ctx.batch, ctx.plan.indices,
                                    ctx.net.lut, ctx.plan.spec, ctx.plan.rq, variant_, *ctx.out,
                                    ctx.plan.out_elems(), *ctx.scratch, ctx.counter);
  }
  std::size_t scratch_bytes(const CompiledNetwork& net, const LayerPlan& plan) const override {
    return kernels::bitserial_host_scratch_bytes(plan.spec.out_ch, net.lut.pool_size,
                                                 net.lut.group_size);
  }
  std::size_t scratch_bytes_batch(const CompiledNetwork& net, const LayerPlan& plan,
                                  int batch) const override {
    return kernels::bitserial_host_scratch_bytes_batch(plan.spec.out_ch, net.lut.pool_size,
                                                       net.lut.group_size, batch);
  }

 private:
  kernels::BitSerialVariant variant_;
  std::string name_;
};

class BitSerialLinearBackend : public KernelBackend {
 public:
  explicit BitSerialLinearBackend(kernels::BitSerialVariant v) : variant_(v) {
    name_ = std::string("bitserial/linear-") + kernels::variant_name(v);
  }
  const char* name() const override { return name_.c_str(); }
  void execute(const ExecContext& ctx) const override {
    kernels::bitserial_linear(ctx.input(0), ctx.plan.indices, ctx.net.lut, ctx.plan.rq, variant_,
                              *ctx.out, *ctx.scratch, ctx.counter);
  }
  void execute_batch(const ExecContext& ctx) const override {
    kernels::bitserial_linear_batch(ctx.input(0), input_stride(ctx), ctx.batch, ctx.plan.indices,
                                    ctx.net.lut, ctx.plan.rq, variant_, *ctx.out,
                                    ctx.plan.out_elems(), *ctx.scratch, ctx.counter);
  }
  std::size_t scratch_bytes(const CompiledNetwork& net, const LayerPlan& plan) const override {
    return kernels::bitserial_host_scratch_bytes(plan.indices.out_ch, net.lut.pool_size,
                                                 net.lut.group_size);
  }
  std::size_t scratch_bytes_batch(const CompiledNetwork& net, const LayerPlan& plan,
                                  int batch) const override {
    return kernels::bitserial_host_scratch_bytes_batch(plan.indices.out_ch, net.lut.pool_size,
                                                       net.lut.group_size, batch);
  }

 private:
  kernels::BitSerialVariant variant_;
  std::string name_;
};

}  // namespace

namespace detail {

void register_bitserial_backends(KernelRegistry& r) {
  using kernels::BitSerialVariant;
  for (BitSerialVariant v :
       {BitSerialVariant::kNaive, BitSerialVariant::kInputReuse, BitSerialVariant::kCached,
        BitSerialVariant::kCachedPrecompute, BitSerialVariant::kCachedMemoize}) {
    r.add(PlanKind::kConvBitSerial, static_cast<int>(v),
          std::make_unique<BitSerialConvBackend>(v));
    r.add(PlanKind::kLinearBitSerial, static_cast<int>(v),
          std::make_unique<BitSerialLinearBackend>(v));
  }
}

}  // namespace detail
}  // namespace bswp::runtime
