#include "kernels/bitserial_conv.h"

#include <algorithm>

#include "kernels/bit_unpack.h"

namespace bswp::kernels {

using sim::Event;

const char* variant_name(BitSerialVariant v) {
  switch (v) {
    case BitSerialVariant::kNaive: return "naive";
    case BitSerialVariant::kInputReuse: return "input-reuse";
    case BitSerialVariant::kCached: return "lut-cached";
    case BitSerialVariant::kCachedPrecompute: return "cached+precompute";
    case BitSerialVariant::kCachedMemoize: return "cached+memoize";
  }
  return "?";
}

namespace {

bool uses_cache(BitSerialVariant v) {
  return v == BitSerialVariant::kCached || v == BitSerialVariant::kCachedPrecompute ||
         v == BitSerialVariant::kCachedMemoize;
}

/// Count the flash->SRAM copy of the M active input-oriented LUT blocks
/// (Figure 6). Word-granularity transfers; one block per bit plane.
void count_cache_fill(sim::CostCounter* counter, int bits, const pool::DotLut& lut) {
  if (counter == nullptr) return;
  const uint64_t words_per_block = (lut.block_bytes() + 3) / 4;
  counter->add(Event::kFlashSeqWord, static_cast<uint64_t>(bits) * words_per_block);
  counter->add(Event::kSramWrite, static_cast<uint64_t>(bits) * words_per_block);
  counter->add(Event::kBranch, static_cast<uint64_t>(bits));
}

/// Core accumulation over one decomposed activation vector for all filters.
/// `idx_base` points at the [g][o] slice of the packed indices for the
/// current kernel position; the o-loop reads consecutive bytes.
struct GroupContext {
  const pool::DotLut& lut;
  const uint8_t* idx;  // out_ch consecutive indices
  int out_ch;
  int bits;
  const uint32_t* bitvec;  // bits entries
};

void accumulate_filters(const GroupContext& ctx, BitSerialVariant variant, int32_t* acc,
                        const int16_t* raw_group, int group_size, int32_t* precomp_buf,
                        uint8_t* memo_valid, sim::CostCounter* counter) {
  const bool cached = uses_cache(variant);
  const Event lut_read = cached ? Event::kSramRead : Event::kFlashRandomByte;
  const int S = ctx.lut.pool_size;

  switch (variant) {
    case BitSerialVariant::kNaive: {
      // Bit unpacking recomputed inside the filter loop (no input reuse).
      uint32_t local_bits[16];
      for (int o = 0; o < ctx.out_ch; ++o) {
        unpack_bits(raw_group, group_size, ctx.bits, local_bits, counter);
        const int s = ctx.idx[o];
        int32_t v = 0;
        for (int j = 0; j < ctx.bits; ++j) v += ctx.lut.at(local_bits[j], s) << j;
        acc[o] += v;
        if (counter != nullptr) {
          counter->add(Event::kFlashSeqByte, 1);  // index read
          counter->add(lut_read, static_cast<uint64_t>(ctx.bits));
          counter->add(Event::kAlu, 2ull * ctx.bits);
          counter->add(Event::kSramRead, 1);  // accumulator
          counter->add(Event::kSramWrite, 1);
          counter->add(Event::kBranch, 1);
        }
      }
      break;
    }
    case BitSerialVariant::kInputReuse:
    case BitSerialVariant::kCached: {
      for (int o = 0; o < ctx.out_ch; ++o) {
        const int s = ctx.idx[o];
        int32_t v = 0;
        for (int j = 0; j < ctx.bits; ++j) v += ctx.lut.at(ctx.bitvec[j], s) << j;
        acc[o] += v;
      }
      if (counter != nullptr) {
        const auto F = static_cast<uint64_t>(ctx.out_ch);
        counter->add(Event::kFlashSeqByte, F);                        // index reads
        counter->add(lut_read, F * static_cast<uint64_t>(ctx.bits));  // result lookups
        counter->add(Event::kAlu, 2ull * F * ctx.bits);               // shift + accumulate
        counter->add(Event::kSramRead, F);                            // accumulator read
        counter->add(Event::kSramWrite, F);                           // accumulator write
        counter->add(Event::kBranch, F);
      }
      break;
    }
    case BitSerialVariant::kCachedPrecompute: {
      // Algorithm 1 lines 10-14: bit-serial loop over the *pool*, results
      // stored in RAM; filter loop (lines 15-16) is pure lookups.
      for (int s = 0; s < S; ++s) {
        int32_t v = 0;
        for (int j = 0; j < ctx.bits; ++j) v += ctx.lut.at(ctx.bitvec[j], s) << j;
        precomp_buf[s] = v;
      }
      for (int o = 0; o < ctx.out_ch; ++o) acc[o] += precomp_buf[ctx.idx[o]];
      if (counter != nullptr) {
        const auto F = static_cast<uint64_t>(ctx.out_ch);
        const auto Su = static_cast<uint64_t>(S);
        counter->add(Event::kSramRead, Su * static_cast<uint64_t>(ctx.bits));  // lut cache
        counter->add(Event::kAlu, 2ull * Su * ctx.bits);
        counter->add(Event::kSramWrite, Su);  // precomputed results
        counter->add(Event::kBranch, Su);
        counter->add(Event::kFlashSeqByte, F);  // index reads
        counter->add(Event::kSramRead, 2 * F);  // precomputed result + accumulator
        counter->add(Event::kAlu, F);
        counter->add(Event::kSramWrite, F);
        counter->add(Event::kBranch, F);
      }
      break;
    }
    case BitSerialVariant::kCachedMemoize: {
      // Appendix alternative: compute each distinct pool dot product on first
      // use inside the filter loop.
      std::fill(memo_valid, memo_valid + S, 0);
      if (counter != nullptr) counter->add(Event::kSramWrite, static_cast<uint64_t>((S + 3) / 4));
      for (int o = 0; o < ctx.out_ch; ++o) {
        const int s = ctx.idx[o];
        if (!memo_valid[s]) {
          int32_t v = 0;
          for (int j = 0; j < ctx.bits; ++j) v += ctx.lut.at(ctx.bitvec[j], s) << j;
          precomp_buf[s] = v;
          memo_valid[s] = 1;
          if (counter != nullptr) {
            counter->add(Event::kSramRead, static_cast<uint64_t>(ctx.bits));
            counter->add(Event::kAlu, 2ull * ctx.bits);
            counter->add(Event::kSramWrite, 2);  // memo value + valid flag
          }
        }
        acc[o] += precomp_buf[s];
        if (counter != nullptr) {
          counter->add(Event::kFlashSeqByte, 1);  // index
          counter->add(Event::kSramRead, 3);      // valid flag + memo + accumulator
          counter->add(Event::kAlu, 1);
          counter->add(Event::kSramWrite, 1);
          counter->add(Event::kBranch, 2);  // loop + memo-hit test
        }
      }
      break;
    }
  }
}

}  // namespace

void bitserial_conv2d(const QView& in, const PackedIndices& indices, const pool::DotLut& lut,
                      const nn::ConvSpec& spec, const Requant& rq, BitSerialVariant variant,
                      QView& out, ScratchArena& scratch, sim::CostCounter* counter) {
  check(in.rank == 4 && in.shape[0] == 1, "bitserial_conv2d: input must be 1xCxHxW");
  check(!in.is_signed, "bitserial_conv2d: activations must be unsigned-quantized");
  check(spec.groups == 1, "bitserial_conv2d: grouped convs are not poolable");
  check(spec.in_ch % lut.group_size == 0, "bitserial_conv2d: in_ch must divide by group size");
  check(indices.out_ch == spec.out_ch && indices.kh == spec.kh && indices.kw == spec.kw &&
            indices.groups == spec.in_ch / lut.group_size,
        "bitserial_conv2d: index map does not match conv spec");
  const int M = in.bits;
  check(M >= 1 && M <= 16, "bitserial_conv2d: activation bits out of range");

  const int G = lut.group_size;
  const int gcnt = spec.in_ch / G;
  const int h = in.dim(2), w = in.dim(3);
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const int F = spec.out_ch;
  const int S = lut.pool_size;

  out.set_shape({1, F, oh, ow});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  int32_t* acc = scratch.alloc<int32_t>(static_cast<std::size_t>(F));
  int32_t* precomp = scratch.alloc<int32_t>(static_cast<std::size_t>(S));
  uint8_t* memo_valid = scratch.alloc<uint8_t>(static_cast<std::size_t>(S));
  int16_t* group_vals = scratch.alloc<int16_t>(static_cast<std::size_t>(G));
  uint32_t bitvec[16] = {};

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      std::fill(acc, acc + F, 0);
      sim::tally(counter, Event::kSramWrite, static_cast<uint64_t>(F));  // accumulator init
      for (int ky = 0; ky < spec.kh; ++ky) {
        const int iy = oy * spec.stride + ky - spec.pad;
        if (iy < 0 || iy >= h) continue;
        for (int kx = 0; kx < spec.kw; ++kx) {
          const int ix = ox * spec.stride + kx - spec.pad;
          if (ix < 0 || ix >= w) continue;
          for (int g = 0; g < gcnt; ++g) {
            // Gather the channel-group activation vector (contiguous in the
            // HWC layout a real deployment would use).
            for (int j = 0; j < G; ++j) {
              group_vals[static_cast<std::size_t>(j)] =
                  in.data[(static_cast<std::size_t>(g * G + j) * h + iy) * w + ix];
            }
            if (variant != BitSerialVariant::kNaive) {
              // Algorithm 1 line 7: decomposition shared across the filter loop.
              unpack_bits(group_vals, G, M, bitvec, counter);
            }
            if (uses_cache(variant)) count_cache_fill(counter, M, lut);

            GroupContext ctx{lut, indices.idx.data() + indices.flat(ky, kx, g, 0), F, M, bitvec};
            accumulate_filters(ctx, variant, acc, group_vals, G, precomp, memo_valid, counter);
            sim::tally(counter, Event::kBranch, 1);
          }
        }
      }
      for (int o = 0; o < F; ++o) {
        out.data[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] = rq.apply(acc[o], o);
      }
      if (counter != nullptr) {
        counter->add(Event::kRequant, static_cast<uint64_t>(F));
        counter->add(Event::kSramRead, static_cast<uint64_t>(F));   // accumulator
        counter->add(Event::kSramWrite, static_cast<uint64_t>(F));  // output store
      }
    }
  }
}

void bitserial_linear(const QView& in, const PackedIndices& indices, const pool::DotLut& lut,
                      const Requant& rq, BitSerialVariant variant, QView& out,
                      ScratchArena& scratch, sim::CostCounter* counter) {
  check(in.rank == 2 && in.shape[0] == 1, "bitserial_linear: input must be 1xF");
  check(!in.is_signed, "bitserial_linear: activations must be unsigned-quantized");
  const int fin = in.dim(1);
  const int G = lut.group_size;
  check(fin % G == 0, "bitserial_linear: input features must divide by group size");
  check(indices.kh == 1 && indices.kw == 1 && indices.groups == fin / G,
        "bitserial_linear: index map mismatch");
  const int M = in.bits;
  const int F = indices.out_ch;
  const int S = lut.pool_size;

  out.set_shape({1, F});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  int32_t* acc = scratch.alloc<int32_t>(static_cast<std::size_t>(F));
  int32_t* precomp = scratch.alloc<int32_t>(static_cast<std::size_t>(S));
  uint8_t* memo_valid = scratch.alloc<uint8_t>(static_cast<std::size_t>(S));
  std::fill(acc, acc + F, 0);
  uint32_t bitvec[16] = {};
  sim::tally(counter, Event::kSramWrite, static_cast<uint64_t>(F));

  for (int g = 0; g < fin / G; ++g) {
    const int16_t* group_vals = in.data + static_cast<std::size_t>(g) * G;
    if (variant != BitSerialVariant::kNaive) unpack_bits(group_vals, G, M, bitvec, counter);
    if (uses_cache(variant)) count_cache_fill(counter, M, lut);
    GroupContext ctx{lut, indices.idx.data() + indices.flat(0, 0, g, 0), F, M, bitvec};
    accumulate_filters(ctx, variant, acc, group_vals, G, precomp, memo_valid, counter);
  }
  for (int o = 0; o < F; ++o) out.data[static_cast<std::size_t>(o)] = rq.apply(acc[o], o);
  if (counter != nullptr) {
    counter->add(Event::kRequant, static_cast<uint64_t>(F));
    counter->add(Event::kSramRead, static_cast<uint64_t>(F));
    counter->add(Event::kSramWrite, static_cast<uint64_t>(F));
  }
}

void bitserial_conv2d_batch(const QView& in, std::size_t in_stride, int batch,
                            const PackedIndices& indices, const pool::DotLut& lut,
                            const nn::ConvSpec& spec, const Requant& rq, BitSerialVariant variant,
                            QView& out, std::size_t out_stride, ScratchArena& scratch,
                            sim::CostCounter* counter) {
  check(in.rank == 4 && in.shape[0] == 1, "bitserial_conv2d_batch: input must be 1xCxHxW");
  check(!in.is_signed, "bitserial_conv2d_batch: activations must be unsigned-quantized");
  check(spec.groups == 1, "bitserial_conv2d_batch: grouped convs are not poolable");
  check(spec.in_ch % lut.group_size == 0,
        "bitserial_conv2d_batch: in_ch must divide by group size");
  check(indices.out_ch == spec.out_ch && indices.kh == spec.kh && indices.kw == spec.kw &&
            indices.groups == spec.in_ch / lut.group_size,
        "bitserial_conv2d_batch: index map does not match conv spec");
  check(batch >= 1, "bitserial_conv2d_batch: batch must be >= 1");
  const int M = in.bits;
  check(M >= 1 && M <= 16, "bitserial_conv2d_batch: activation bits out of range");

  const int G = lut.group_size;
  const int gcnt = spec.in_ch / G;
  const int h = in.dim(2), w = in.dim(3);
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const int F = spec.out_ch;
  const int S = lut.pool_size;

  out.set_shape({1, F, oh, ow});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  // Accumulators carry a batch dimension (image b owns acc + b*F); the
  // staging buffers are reused image to image inside each context.
  int32_t* acc = scratch.alloc<int32_t>(static_cast<std::size_t>(batch) * F);
  int32_t* precomp = scratch.alloc<int32_t>(static_cast<std::size_t>(S));
  uint8_t* memo_valid = scratch.alloc<uint8_t>(static_cast<std::size_t>(S));
  int16_t* group_vals = scratch.alloc<int16_t>(static_cast<std::size_t>(G));
  uint32_t bitvec[16] = {};

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      std::fill(acc, acc + static_cast<std::size_t>(batch) * F, 0);
      sim::tally(counter, Event::kSramWrite, static_cast<uint64_t>(F) * batch);
      for (int ky = 0; ky < spec.kh; ++ky) {
        const int iy = oy * spec.stride + ky - spec.pad;
        if (iy < 0 || iy >= h) continue;
        for (int kx = 0; kx < spec.kw; ++kx) {
          const int ix = ox * spec.stride + kx - spec.pad;
          if (ix < 0 || ix >= w) continue;
          for (int g = 0; g < gcnt; ++g) {
            GroupContext ctx{lut, indices.idx.data() + indices.flat(ky, kx, g, 0), F, M, bitvec};
            // Image loop inside the (tap, group) context: the index row and
            // cached LUT blocks stay hot across the batch. Per image the
            // gather / unpack / accumulate sequence matches the per-image
            // core exactly — tallies and int32 accumulation included.
            for (int b = 0; b < batch; ++b) {
              const int16_t* src = in.data + static_cast<std::size_t>(b) * in_stride;
              for (int j = 0; j < G; ++j) {
                group_vals[static_cast<std::size_t>(j)] =
                    src[(static_cast<std::size_t>(g * G + j) * h + iy) * w + ix];
              }
              if (variant != BitSerialVariant::kNaive) {
                unpack_bits(group_vals, G, M, bitvec, counter);
              }
              if (uses_cache(variant)) count_cache_fill(counter, M, lut);
              accumulate_filters(ctx, variant, acc + static_cast<std::size_t>(b) * F, group_vals,
                                 G, precomp, memo_valid, counter);
              sim::tally(counter, Event::kBranch, 1);
            }
          }
        }
      }
      for (int b = 0; b < batch; ++b) {
        const int32_t* acc_b = acc + static_cast<std::size_t>(b) * F;
        int16_t* dst = out.data + static_cast<std::size_t>(b) * out_stride;
        for (int o = 0; o < F; ++o) {
          dst[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] = rq.apply(acc_b[o], o);
        }
      }
      if (counter != nullptr) {
        counter->add(Event::kRequant, static_cast<uint64_t>(F) * batch);
        counter->add(Event::kSramRead, static_cast<uint64_t>(F) * batch);
        counter->add(Event::kSramWrite, static_cast<uint64_t>(F) * batch);
      }
    }
  }
}

void bitserial_linear_batch(const QView& in, std::size_t in_stride, int batch,
                            const PackedIndices& indices, const pool::DotLut& lut,
                            const Requant& rq, BitSerialVariant variant, QView& out,
                            std::size_t out_stride, ScratchArena& scratch,
                            sim::CostCounter* counter) {
  check(in.rank == 2 && in.shape[0] == 1, "bitserial_linear_batch: input must be 1xF");
  check(!in.is_signed, "bitserial_linear_batch: activations must be unsigned-quantized");
  check(batch >= 1, "bitserial_linear_batch: batch must be >= 1");
  const int fin = in.dim(1);
  const int G = lut.group_size;
  check(fin % G == 0, "bitserial_linear_batch: input features must divide by group size");
  check(indices.kh == 1 && indices.kw == 1 && indices.groups == fin / G,
        "bitserial_linear_batch: index map mismatch");
  const int M = in.bits;
  const int F = indices.out_ch;
  const int S = lut.pool_size;

  out.set_shape({1, F});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  int32_t* acc = scratch.alloc<int32_t>(static_cast<std::size_t>(batch) * F);
  int32_t* precomp = scratch.alloc<int32_t>(static_cast<std::size_t>(S));
  uint8_t* memo_valid = scratch.alloc<uint8_t>(static_cast<std::size_t>(S));
  std::fill(acc, acc + static_cast<std::size_t>(batch) * F, 0);
  uint32_t bitvec[16] = {};
  sim::tally(counter, Event::kSramWrite, static_cast<uint64_t>(F) * batch);

  for (int g = 0; g < fin / G; ++g) {
    GroupContext ctx{lut, indices.idx.data() + indices.flat(0, 0, g, 0), F, M, bitvec};
    for (int b = 0; b < batch; ++b) {
      const int16_t* group_vals =
          in.data + static_cast<std::size_t>(b) * in_stride + static_cast<std::size_t>(g) * G;
      if (variant != BitSerialVariant::kNaive) unpack_bits(group_vals, G, M, bitvec, counter);
      if (uses_cache(variant)) count_cache_fill(counter, M, lut);
      accumulate_filters(ctx, variant, acc + static_cast<std::size_t>(b) * F, group_vals, G,
                         precomp, memo_valid, counter);
    }
  }
  for (int b = 0; b < batch; ++b) {
    const int32_t* acc_b = acc + static_cast<std::size_t>(b) * F;
    int16_t* dst = out.data + static_cast<std::size_t>(b) * out_stride;
    for (int o = 0; o < F; ++o) dst[static_cast<std::size_t>(o)] = rq.apply(acc_b[o], o);
  }
  if (counter != nullptr) {
    counter->add(Event::kRequant, static_cast<uint64_t>(F) * batch);
    counter->add(Event::kSramRead, static_cast<uint64_t>(F) * batch);
    counter->add(Event::kSramWrite, static_cast<uint64_t>(F) * batch);
  }
}

std::size_t bitserial_host_scratch_bytes(int out_ch, int pool_size, int group_size) {
  return ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(out_ch)) +
         ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(pool_size)) +
         ScratchArena::bytes_for<uint8_t>(static_cast<std::size_t>(pool_size)) +
         ScratchArena::bytes_for<int16_t>(static_cast<std::size_t>(group_size));
}

std::size_t bitserial_host_scratch_bytes_batch(int out_ch, int pool_size, int group_size,
                                               int batch) {
  return ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(out_ch) *
                                          static_cast<std::size_t>(batch)) +
         ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(pool_size)) +
         ScratchArena::bytes_for<uint8_t>(static_cast<std::size_t>(pool_size)) +
         ScratchArena::bytes_for<int16_t>(static_cast<std::size_t>(group_size));
}

// --- owning wrappers ---------------------------------------------------------

QTensor bitserial_conv2d(const QTensor& input, const PackedIndices& indices,
                         const pool::DotLut& lut, const nn::ConvSpec& spec, const Requant& rq,
                         BitSerialVariant variant, sim::CostCounter* counter) {
  check(input.shape.size() == 4 && input.shape[0] == 1, "bitserial_conv2d: input must be 1xCxHxW");
  const int oh = spec.out_h(input.dim(2)), ow = spec.out_w(input.dim(3));
  QTensor out({1, spec.out_ch, oh, ow}, rq.out.bits, rq.out.is_signed);
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;
  ScratchArena scratch(bitserial_host_scratch_bytes(spec.out_ch, lut.pool_size, lut.group_size));
  QView ov = QView::of(out);
  bitserial_conv2d(QView::of(input), indices, lut, spec, rq, variant, ov, scratch, counter);
  return out;
}

QTensor bitserial_linear(const QTensor& input, const PackedIndices& indices,
                         const pool::DotLut& lut, const Requant& rq, BitSerialVariant variant,
                         sim::CostCounter* counter) {
  QTensor out({1, indices.out_ch}, rq.out.bits, rq.out.is_signed);
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;
  ScratchArena scratch(
      bitserial_host_scratch_bytes(indices.out_ch, lut.pool_size, lut.group_size));
  QView ov = QView::of(out);
  bitserial_linear(QView::of(input), indices, lut, rq, variant, ov, scratch, counter);
  return out;
}

std::size_t bitserial_scratch_bytes(const nn::ConvSpec& spec, const pool::DotLut& lut,
                                    BitSerialVariant variant, int act_bits) {
  std::size_t bytes = sizeof(int32_t) * static_cast<std::size_t>(spec.out_ch);  // accumulators
  bytes += sizeof(uint32_t) * static_cast<std::size_t>(act_bits);               // bit-vectors
  if (uses_cache(variant)) bytes += static_cast<std::size_t>(act_bits) * lut.block_bytes();
  if (variant == BitSerialVariant::kCachedPrecompute ||
      variant == BitSerialVariant::kCachedMemoize) {
    bytes += sizeof(int32_t) * static_cast<std::size_t>(lut.pool_size);  // results
    if (variant == BitSerialVariant::kCachedMemoize) bytes += static_cast<std::size_t>(lut.pool_size);
  }
  return bytes;
}

}  // namespace bswp::kernels
