// Bit-serial lookup-table convolution (paper §3.1, §4, Algorithm 1).
//
// The convolution over a pooled layer is computed bit-serially: at each
// (output position, kernel position, channel group) the activation vector is
// bit-decomposed once, and for each bit plane the partial dot product with
// the selected pool vector is *looked up* and shift-accumulated. Variants
// correspond to the paper's implementation ablations:
//
//   kNaive            bit unpacking inside the filter loop (§4.1's ~9x
//                     overhead strawman)
//   kInputReuse       Algorithm 1 loop order: unpack once, reuse across all
//                     filters; LUT read from flash
//   kCached           + input-oriented LUT blocks copied flash->SRAM before
//                     the filter loop (§4.2, Figure 6/7)
//   kCachedPrecompute + all S distinct dot products computed once per input
//                     vector, filter loop becomes pure lookups (§4.3,
//                     Algorithm 1 lines 9-16)
//   kCachedMemoize    appendix alternative: dot products memoized lazily
//                     inside the filter loop
//
// All variants produce bit-identical outputs; they differ only in cost.
//
// The view cores draw their temporaries (accumulators, precompute/memo
// buffers, channel-group staging) from a caller-provided ScratchArena so a
// warm Executor performs zero heap allocations; the owning-QTensor wrappers
// allocate their own scratch and remain for tests and one-off callers.
#pragma once

#include "core/arena.h"
#include "kernels/common.h"
#include "pool/lut.h"

namespace bswp::kernels {

enum class BitSerialVariant {
  kNaive,
  kInputReuse,
  kCached,
  kCachedPrecompute,
  kCachedMemoize,
};

const char* variant_name(BitSerialVariant v);

// --- arena (view) cores ------------------------------------------------------

/// Bit-serial pooled convolution into `out`. `in` must be unsigned-quantized
/// with `in.bits` <= the LUT's supported range (activation bitwidth M is
/// taken from the input view — reducing M truncates the bit-serial loop).
/// `spec.groups` must be 1 and `spec.in_ch` divisible by the pool group size.
void bitserial_conv2d(const QView& in, const PackedIndices& indices, const pool::DotLut& lut,
                      const nn::ConvSpec& spec, const Requant& rq, BitSerialVariant variant,
                      QView& out, ScratchArena& scratch, sim::CostCounter* counter);

/// Bit-serial pooled fully-connected layer (footnote-1 configuration).
void bitserial_linear(const QView& in, const PackedIndices& indices, const pool::DotLut& lut,
                      const Requant& rq, BitSerialVariant variant, QView& out,
                      ScratchArena& scratch, sim::CostCounter* counter);

/// Host scratch bytes the view cores draw from their arena for a layer with
/// `out_ch` filters against a pool of `pool_size` vectors and group size
/// `group_size` (conservative: sized for the hungriest variant).
std::size_t bitserial_host_scratch_bytes(int out_ch, int pool_size, int group_size);

// --- batched cores -----------------------------------------------------------
//
// Batch-N forms over arena slots at a fixed per-image element stride (image
// b reads `in.data + b * in_stride`, writes `out.data + b * out_stride`;
// the views describe image 0). The image loop sits inside the (position,
// kernel tap, channel group) context so the packed index row and cached LUT
// blocks stay hot across the batch; each image's unpack / lookup /
// accumulate sequence is unchanged, so outputs and CostCounter tallies are
// byte-identical to `batch` per-image calls (tallies exactly batch x).

/// Batched bit-serial pooled convolution (see block comment above).
void bitserial_conv2d_batch(const QView& in, std::size_t in_stride, int batch,
                            const PackedIndices& indices, const pool::DotLut& lut,
                            const nn::ConvSpec& spec, const Requant& rq, BitSerialVariant variant,
                            QView& out, std::size_t out_stride, ScratchArena& scratch,
                            sim::CostCounter* counter);

/// Batched bit-serial pooled fully-connected layer (see block comment above).
void bitserial_linear_batch(const QView& in, std::size_t in_stride, int batch,
                            const PackedIndices& indices, const pool::DotLut& lut,
                            const Requant& rq, BitSerialVariant variant, QView& out,
                            std::size_t out_stride, ScratchArena& scratch,
                            sim::CostCounter* counter);

/// Host scratch bytes of the batched cores: the accumulator array carries a
/// batch dimension; the per-group staging buffers are shared.
std::size_t bitserial_host_scratch_bytes_batch(int out_ch, int pool_size, int group_size,
                                               int batch);

// --- owning wrappers ---------------------------------------------------------

QTensor bitserial_conv2d(const QTensor& input, const PackedIndices& indices,
                         const pool::DotLut& lut, const nn::ConvSpec& spec, const Requant& rq,
                         BitSerialVariant variant, sim::CostCounter* counter);
QTensor bitserial_linear(const QTensor& input, const PackedIndices& indices,
                         const pool::DotLut& lut, const Requant& rq, BitSerialVariant variant,
                         sim::CostCounter* counter);

/// Peak SRAM scratch for a layer under a variant on the modeled MCU:
/// bit-vectors, LUT cache, precompute/memo buffers and the per-position
/// accumulator array (feeds the simulator's memory plan).
std::size_t bitserial_scratch_bytes(const nn::ConvSpec& spec, const pool::DotLut& lut,
                                    BitSerialVariant variant, int act_bits);

/// The paper's layer-level policy (§4.3): precompute pays off iff the layer
/// has more filters than the pool has vectors.
inline bool should_precompute(int out_ch, int pool_size) { return out_ch > pool_size; }

}  // namespace bswp::kernels
