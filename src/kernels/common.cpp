#include "kernels/common.h"

namespace bswp::kernels {

Requant Requant::uniform(int channels, float acc_scale, const std::vector<float>& b_real,
                         float out_scale, int out_bits, bool out_signed, bool fuse_relu) {
  Requant r;
  r.scale.assign(static_cast<std::size_t>(channels), acc_scale);
  r.bias = b_real;
  if (r.bias.empty()) r.bias.assign(static_cast<std::size_t>(channels), 0.0f);
  check(r.bias.size() == static_cast<std::size_t>(channels), "Requant: bias size mismatch");
  r.out.scale = out_scale;
  r.out.bits = out_bits;
  r.out.is_signed = out_signed;
  r.fuse_relu = fuse_relu;
  return r;
}

PackedIndices PackedIndices::pack(const pool::PooledLayer& layer) {
  PackedIndices p;
  p.kh = layer.kh;
  p.kw = layer.kw;
  p.groups = layer.channel_groups;
  p.out_ch = layer.out_ch;
  p.idx.assign(static_cast<std::size_t>(p.kh) * p.kw * p.groups * p.out_ch, 0);
  for (int o = 0; o < p.out_ch; ++o) {
    for (int g = 0; g < p.groups; ++g) {
      for (int ky = 0; ky < p.kh; ++ky) {
        for (int kx = 0; kx < p.kw; ++kx) {
          const uint16_t v = layer.index(o, g, ky, kx);
          check(v < 256, "PackedIndices: pool size must be <= 256 for uint8 indices");
          p.idx[p.flat(ky, kx, g, o)] = static_cast<uint8_t>(v);
        }
      }
    }
  }
  return p;
}

}  // namespace bswp::kernels
