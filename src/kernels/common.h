// Shared types for the integer (microcontroller-style) kernels.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/tensor.h"
#include "nn/layers.h"
#include "pool/codec.h"
#include "sim/cost_counter.h"

namespace bswp::kernels {

/// Per-layer requantization: maps an int32 accumulator to the next layer's
/// quantized activation domain. Per-output-channel scale/bias absorb both the
/// conv bias and any BatchNorm affine (BN is folded into requantization, not
/// into the shared weights — folding into weights would break pool sharing).
struct Requant {
  std::vector<float> scale;  // acc -> real, per output channel
  std::vector<float> bias;   // real-domain additive term per output channel
  float out_scale = 1.0f;    // real -> q step of the output tensor
  int out_bits = 8;
  bool out_signed = false;
  /// Offset-unsigned representation: real = out_scale * (q - out_zero_point).
  /// Signed intermediates (residual-add outputs) use zero_point = 2^(M-1) so
  /// the bit-serial kernels always see unsigned bit patterns.
  int out_zero_point = 0;
  bool fuse_relu = true;

  int32_t qmin() const { return out_signed ? -(1 << (out_bits - 1)) : 0; }
  int32_t qmax() const { return out_signed ? (1 << (out_bits - 1)) - 1 : (1 << out_bits) - 1; }

  int16_t apply(int32_t acc, int ch) const {
    float real = static_cast<float>(acc) * scale[static_cast<std::size_t>(ch)] +
                 bias[static_cast<std::size_t>(ch)];
    if (fuse_relu && real < 0.0f) real = 0.0f;
    const auto q = static_cast<int32_t>(std::lround(real / out_scale)) + out_zero_point;
    const int32_t lo = qmin(), hi = qmax();
    return static_cast<int16_t>(q < lo ? lo : (q > hi ? hi : q));
  }

  /// Uniform scale constructor (no BN, scalar conv bias vector `b_real`).
  static Requant uniform(int channels, float acc_scale, const std::vector<float>& b_real,
                         float out_scale, int out_bits, bool out_signed, bool fuse_relu);
};

/// Weight-pool indices packed in the bit-serial kernel's access order:
/// [ky][kx][g][o] so the innermost filter loop reads consecutive bytes.
struct PackedIndices {
  int kh = 1, kw = 1, groups = 0, out_ch = 0;
  std::vector<uint8_t> idx;

  static PackedIndices pack(const pool::PooledLayer& layer);

  std::size_t flat(int ky, int kx, int g, int o) const {
    return ((static_cast<std::size_t>(ky) * kw + kx) * groups + g) * out_ch +
           static_cast<std::size_t>(o);
  }
  uint8_t at(int ky, int kx, int g, int o) const { return idx[flat(ky, kx, g, o)]; }
  std::size_t storage_bytes() const { return idx.size(); }
};

}  // namespace bswp::kernels
