// Shared types for the integer (microcontroller-style) kernels.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "core/tensor.h"
#include "nn/layers.h"
#include "pool/codec.h"
#include "sim/cost_counter.h"

namespace bswp::kernels {

/// Non-owning view of a quantized activation — the currency of arena
/// execution. The data pointer targets a MemoryPlanner-assigned slot; shape
/// is a fixed rank<=4 array so views can be re-stamped every run without
/// heap traffic. Kernels read input views and write output views in place;
/// the owning-QTensor kernel entry points below are thin wrappers for tests
/// and one-off callers.
struct QView {
  int16_t* data = nullptr;
  std::size_t len = 0;
  int shape[4] = {1, 1, 1, 1};
  int rank = 0;
  float scale = 1.0f;
  int zero_point = 0;
  int bits = 8;
  bool is_signed = true;

  std::size_t size() const { return len; }
  int dim(int i) const { return shape[i]; }

  void set_shape(std::initializer_list<int> dims) {
    rank = 0;
    len = 1;
    for (int d : dims) {
      shape[rank++] = d;
      len *= static_cast<std::size_t>(d);
    }
  }
  /// Copy quantization metadata (not shape or data) from another view.
  void set_meta(const QView& o) {
    scale = o.scale;
    zero_point = o.zero_point;
    bits = o.bits;
    is_signed = o.is_signed;
  }
  bool same_shape(const QView& o) const {
    if (rank != o.rank) return false;
    for (int i = 0; i < rank; ++i)
      if (shape[i] != o.shape[i]) return false;
    return true;
  }

  /// View over an owning tensor. The const overload const_casts the data
  /// pointer: it exists so read-only kernel wrappers can view const inputs;
  /// callers must not write through it.
  static QView of(QTensor& t) {
    QView v = of(static_cast<const QTensor&>(t));
    return v;
  }
  static QView of(const QTensor& t) {
    check(t.shape.size() <= 4, "QView: rank > 4");
    QView v;
    v.data = const_cast<int16_t*>(t.data.data());
    v.len = t.data.size();
    v.rank = static_cast<int>(t.shape.size());
    for (int i = 0; i < v.rank; ++i) v.shape[i] = t.shape[static_cast<std::size_t>(i)];
    v.scale = t.scale;
    v.zero_point = t.zero_point;
    v.bits = t.bits;
    v.is_signed = t.is_signed;
    return v;
  }

  /// Materialize an owning copy (allocates; not for steady-state paths).
  QTensor to_qtensor() const {
    QTensor t(std::vector<int>(shape, shape + rank), bits, is_signed);
    t.scale = scale;
    t.zero_point = zero_point;
    check(t.data.size() == len, "QView: shape/len mismatch");
    std::copy(data, data + len, t.data.begin());
    return t;
  }
};

/// Quantization of one activation tensor: real = scale * (q - zero_point).
/// Shared by Requant (the domain a kernel writes) and LayerPlan (the domain a
/// plan's output occupies) so the two can never drift apart.
struct OutputQuant {
  float scale = 1.0f;  // real -> q step
  /// Offset-unsigned representation: signed intermediates (residual-add
  /// outputs) use zero_point = 2^(M-1) so the bit-serial kernels always see
  /// unsigned bit patterns.
  int zero_point = 0;
  int bits = 8;
  bool is_signed = false;

  int32_t qmin() const { return is_signed ? -(1 << (bits - 1)) : 0; }
  int32_t qmax() const { return is_signed ? (1 << (bits - 1)) - 1 : (1 << bits) - 1; }
};

/// Per-layer requantization: maps an int32 accumulator to the next layer's
/// quantized activation domain. Per-output-channel scale/bias absorb both the
/// conv bias and any BatchNorm affine (BN is folded into requantization, not
/// into the shared weights — folding into weights would break pool sharing).
struct Requant {
  std::vector<float> scale;  // acc -> real, per output channel
  std::vector<float> bias;   // real-domain additive term per output channel
  OutputQuant out;           // quantization of the tensor this layer writes
  bool fuse_relu = true;

  int32_t qmin() const { return out.qmin(); }
  int32_t qmax() const { return out.qmax(); }

  int16_t apply(int32_t acc, int ch) const {
    float real = static_cast<float>(acc) * scale[static_cast<std::size_t>(ch)] +
                 bias[static_cast<std::size_t>(ch)];
    if (fuse_relu && real < 0.0f) real = 0.0f;
    const auto q = static_cast<int32_t>(std::lround(real / out.scale)) + out.zero_point;
    const int32_t lo = qmin(), hi = qmax();
    return static_cast<int16_t>(q < lo ? lo : (q > hi ? hi : q));
  }

  /// Uniform scale constructor (no BN, scalar conv bias vector `b_real`).
  static Requant uniform(int channels, float acc_scale, const std::vector<float>& b_real,
                         float out_scale, int out_bits, bool out_signed, bool fuse_relu);
};

/// Weight-pool indices packed in the bit-serial kernel's access order:
/// [ky][kx][g][o] so the innermost filter loop reads consecutive bytes.
struct PackedIndices {
  int kh = 1, kw = 1, groups = 0, out_ch = 0;
  std::vector<uint8_t> idx;

  static PackedIndices pack(const pool::PooledLayer& layer);

  std::size_t flat(int ky, int kx, int g, int o) const {
    return ((static_cast<std::size_t>(ky) * kw + kx) * groups + g) * out_ch +
           static_cast<std::size_t>(o);
  }
  uint8_t at(int ky, int kx, int g, int o) const { return idx[flat(ky, kx, g, o)]; }
  std::size_t storage_bytes() const { return idx.size(); }
};

}  // namespace bswp::kernels
