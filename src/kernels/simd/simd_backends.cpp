// Registry adapters for the SIMD host kernel family (HostLane::kSimd keys).
//
// Registered only when the library is built with BSWP_SIMD=ON; otherwise
// register_simd_backends is a no-op and SIMD-lane plans resolve to the
// scalar backends through KernelRegistry::find's scalar-lane fallback. One
// bit-serial implementation serves all five variant keys — the variants are
// bit-identical by contract and differ only in the MCU cost tallied.
#include "binary/binarized.h"
#include "kernels/simd/simd_dispatch.h"
#include "kernels/simd/simd_kernels.h"
#include "runtime/kernel_backend.h"

namespace bswp::runtime {
namespace {

/// Per-image element stride of the plan's first input inside a batched arena.
std::size_t input_stride(const ExecContext& ctx) {
  return ctx.net.plans[static_cast<std::size_t>(ctx.plan.inputs[0])].out_elems();
}

class SimdConvBackend : public KernelBackend {
 public:
  const char* name() const override { return "simd/conv"; }
  void execute(const ExecContext& ctx) const override {
    kernels::simd::simd_conv2d(ctx.input(0), ctx.plan.qweights, ctx.plan.spec, ctx.plan.rq,
                               *ctx.out, *ctx.scratch, ctx.counter);
  }
  void execute_batch(const ExecContext& ctx) const override {
    kernels::simd::simd_conv2d_batch(ctx.input(0), input_stride(ctx), ctx.batch,
                                     ctx.plan.qweights, ctx.plan.spec, ctx.plan.rq, *ctx.out,
                                     ctx.plan.out_elems(), *ctx.scratch, ctx.counter);
  }
  std::size_t scratch_bytes(const CompiledNetwork& net, const LayerPlan& plan) const override {
    (void)net;
    return kernels::simd::simd_conv_scratch_bytes(plan.spec);
  }
  std::size_t scratch_bytes_batch(const CompiledNetwork& net, const LayerPlan& plan,
                                  int batch) const override {
    (void)net;
    return kernels::simd::simd_conv_scratch_bytes_batch(plan.spec, batch);
  }
};

class SimdLinearBackend : public KernelBackend {
 public:
  const char* name() const override { return "simd/linear"; }
  void execute(const ExecContext& ctx) const override {
    kernels::simd::simd_linear(ctx.input(0), ctx.plan.qweights, ctx.plan.rq, *ctx.out,
                               *ctx.scratch, ctx.counter);
  }
  void execute_batch(const ExecContext& ctx) const override {
    kernels::simd::simd_linear_batch(ctx.input(0), input_stride(ctx), ctx.batch,
                                     ctx.plan.qweights, ctx.plan.rq, *ctx.out,
                                     ctx.plan.out_elems(), *ctx.scratch, ctx.counter);
  }
  std::size_t scratch_bytes(const CompiledNetwork& net, const LayerPlan& plan) const override {
    (void)net;
    return kernels::simd::simd_linear_scratch_bytes(plan.qweights.dim(1));
  }
  std::size_t scratch_bytes_batch(const CompiledNetwork& net, const LayerPlan& plan,
                                  int batch) const override {
    (void)net;
    return kernels::simd::simd_linear_scratch_bytes_batch(plan.qweights.dim(1), batch);
  }
};

class SimdBitSerialConvBackend : public KernelBackend {
 public:
  explicit SimdBitSerialConvBackend(kernels::BitSerialVariant v) : variant_(v) {}
  const char* name() const override { return "simd/bitserial-conv"; }
  void execute(const ExecContext& ctx) const override {
    kernels::simd::simd_bitserial_conv2d(ctx.input(0), ctx.plan.indices, ctx.net.lut,
                                         ctx.plan.spec, ctx.plan.rq, variant_, *ctx.out,
                                         *ctx.scratch, ctx.counter);
  }
  void execute_batch(const ExecContext& ctx) const override {
    kernels::simd::simd_bitserial_conv2d_batch(ctx.input(0), input_stride(ctx), ctx.batch,
                                               ctx.plan.indices, ctx.net.lut, ctx.plan.spec,
                                               ctx.plan.rq, variant_, *ctx.out,
                                               ctx.plan.out_elems(), *ctx.scratch, ctx.counter);
  }
  std::size_t scratch_bytes(const CompiledNetwork& net, const LayerPlan& plan) const override {
    return kernels::simd::simd_bitserial_scratch_bytes(plan.spec.out_ch, net.lut.pool_size,
                                                       net.lut.group_size);
  }
  std::size_t scratch_bytes_batch(const CompiledNetwork& net, const LayerPlan& plan,
                                  int batch) const override {
    // The batched core additionally stages the batch's input windows in HWC
    // layout; the producing plan's out_chw gives the input geometry.
    const std::vector<int>& chw = net.plans[static_cast<std::size_t>(plan.inputs[0])].out_chw;
    return kernels::simd::simd_bitserial_conv_scratch_bytes_batch(
        plan.spec, chw[1], chw[2], plan.spec.out_ch, net.lut.pool_size, batch);
  }

 private:
  kernels::BitSerialVariant variant_;
};

class SimdBitSerialLinearBackend : public KernelBackend {
 public:
  explicit SimdBitSerialLinearBackend(kernels::BitSerialVariant v) : variant_(v) {}
  const char* name() const override { return "simd/bitserial-linear"; }
  void execute(const ExecContext& ctx) const override {
    kernels::simd::simd_bitserial_linear(ctx.input(0), ctx.plan.indices, ctx.net.lut,
                                         ctx.plan.rq, variant_, *ctx.out, *ctx.scratch,
                                         ctx.counter);
  }
  void execute_batch(const ExecContext& ctx) const override {
    kernels::simd::simd_bitserial_linear_batch(ctx.input(0), input_stride(ctx), ctx.batch,
                                               ctx.plan.indices, ctx.net.lut, ctx.plan.rq,
                                               variant_, *ctx.out, ctx.plan.out_elems(),
                                               *ctx.scratch, ctx.counter);
  }
  std::size_t scratch_bytes(const CompiledNetwork& net, const LayerPlan& plan) const override {
    return kernels::simd::simd_bitserial_scratch_bytes(plan.indices.out_ch, net.lut.pool_size,
                                                       net.lut.group_size);
  }
  std::size_t scratch_bytes_batch(const CompiledNetwork& net, const LayerPlan& plan,
                                  int batch) const override {
    return kernels::simd::simd_bitserial_scratch_bytes_batch(
        plan.indices.out_ch, net.lut.pool_size, net.lut.group_size, batch);
  }

 private:
  kernels::BitSerialVariant variant_;
};

/// Same staging as the scalar XnorConvBackend; the counts core runs the
/// 64-bit-word popcount path.
class SimdXnorConvBackend : public KernelBackend {
 public:
  const char* name() const override { return "simd/xnor-conv"; }
  void execute(const ExecContext& ctx) const override {
    const LayerPlan& plan = ctx.plan;
    const kernels::QView& in = ctx.input(0);
    check(in.rank == 4 && in.shape[0] == 1,
          "simd xnor backend: input must be a single CHW activation");
    const nn::ConvSpec& spec = plan.spec;
    check(in.dim(1) == spec.in_ch, "simd xnor backend: channel mismatch");
    const int h = in.dim(2), w = in.dim(3);
    const int oh = spec.out_h(h), ow = spec.out_w(w);
    const int words = binary::binary_pack_words(spec.in_ch);

    uint32_t* in_bits = ctx.scratch->alloc<uint32_t>(static_cast<std::size_t>(h) * w * words);
    uint32_t* w_bits = ctx.scratch->alloc<uint32_t>(static_cast<std::size_t>(spec.out_ch) *
                                                    spec.kh * spec.kw * words);
    int32_t* counts =
        ctx.scratch->alloc<int32_t>(static_cast<std::size_t>(spec.out_ch) * oh * ow);
    binary::pack_binary_input_q(in.data, spec.in_ch, h, w, in.zero_point, in_bits);
    binary::pack_binary_weights_q(plan.qweights.data.data(), spec, w_bits);
    kernels::simd::simd_xnor_conv2d_counts(in_bits, spec.in_ch, h, w, w_bits, spec, counts,
                                           ctx.counter);

    kernels::QView& out = *ctx.out;
    out.set_shape({1, spec.out_ch, oh, ow});
    out.bits = plan.rq.out.bits;
    out.is_signed = plan.rq.out.is_signed;
    out.scale = plan.rq.out.scale;
    out.zero_point = plan.rq.out.zero_point;
    const int hw = oh * ow;
    for (int o = 0; o < spec.out_ch; ++o) {
      for (int i = 0; i < hw; ++i) {
        const std::size_t idx = static_cast<std::size_t>(o) * hw + static_cast<std::size_t>(i);
        out.data[idx] = plan.rq.apply(counts[idx], o);
      }
    }
  }

  void execute_batch(const ExecContext& ctx) const override {
    const LayerPlan& plan = ctx.plan;
    const kernels::QView& in = ctx.input(0);
    check(in.rank == 4 && in.shape[0] == 1,
          "simd xnor backend: input must be a single CHW activation");
    const nn::ConvSpec& spec = plan.spec;
    check(in.dim(1) == spec.in_ch, "simd xnor backend: channel mismatch");
    const int h = in.dim(2), w = in.dim(3);
    const int oh = spec.out_h(h), ow = spec.out_w(w);
    const int words = binary::binary_pack_words(spec.in_ch);
    const std::size_t in_stride = input_stride(ctx);
    const std::size_t out_stride = plan.out_elems();

    // Weights packed once per batch (the packers tally nothing, so counters
    // stay exactly batch x per-image); input/count staging reused per image.
    uint32_t* in_bits = ctx.scratch->alloc<uint32_t>(static_cast<std::size_t>(h) * w * words);
    uint32_t* w_bits = ctx.scratch->alloc<uint32_t>(static_cast<std::size_t>(spec.out_ch) *
                                                    spec.kh * spec.kw * words);
    int32_t* counts =
        ctx.scratch->alloc<int32_t>(static_cast<std::size_t>(spec.out_ch) * oh * ow);
    binary::pack_binary_weights_q(plan.qweights.data.data(), spec, w_bits);

    kernels::QView& out = *ctx.out;
    out.set_shape({1, spec.out_ch, oh, ow});
    out.bits = plan.rq.out.bits;
    out.is_signed = plan.rq.out.is_signed;
    out.scale = plan.rq.out.scale;
    out.zero_point = plan.rq.out.zero_point;
    const int hw = oh * ow;
    for (int b = 0; b < ctx.batch; ++b) {
      const int16_t* src = in.data + static_cast<std::size_t>(b) * in_stride;
      binary::pack_binary_input_q(src, spec.in_ch, h, w, in.zero_point, in_bits);
      kernels::simd::simd_xnor_conv2d_counts(in_bits, spec.in_ch, h, w, w_bits, spec, counts,
                                             ctx.counter);
      int16_t* dst = out.data + static_cast<std::size_t>(b) * out_stride;
      for (int o = 0; o < spec.out_ch; ++o) {
        for (int i = 0; i < hw; ++i) {
          const std::size_t idx = static_cast<std::size_t>(o) * hw + static_cast<std::size_t>(i);
          dst[idx] = plan.rq.apply(counts[idx], o);
        }
      }
    }
  }

  std::size_t scratch_bytes(const CompiledNetwork& net, const LayerPlan& plan) const override {
    const nn::ConvSpec& spec = plan.spec;
    const LayerPlan& src = net.plans[static_cast<std::size_t>(plan.inputs[0])];
    const std::size_t words = static_cast<std::size_t>(binary::binary_pack_words(spec.in_ch));
    const std::size_t in_hw =
        spec.in_ch > 0 ? src.out_elems() / static_cast<std::size_t>(spec.in_ch) : 0;
    const std::size_t taps = static_cast<std::size_t>(spec.out_ch) * spec.kh * spec.kw;
    return ScratchArena::bytes_for<uint32_t>(in_hw * words) +
           ScratchArena::bytes_for<uint32_t>(taps * words) +
           ScratchArena::bytes_for<int32_t>(plan.out_elems());
  }
};

}  // namespace

namespace detail {

void register_simd_backends(KernelRegistry& r) {
  if (!kernels::simd::compiled()) return;
  r.add(PlanKind::kConvBaseline, kSimdKeyOffset, std::make_unique<SimdConvBackend>());
  r.add(PlanKind::kLinearBaseline, kSimdKeyOffset, std::make_unique<SimdLinearBackend>());
  using kernels::BitSerialVariant;
  for (BitSerialVariant v :
       {BitSerialVariant::kNaive, BitSerialVariant::kInputReuse, BitSerialVariant::kCached,
        BitSerialVariant::kCachedPrecompute, BitSerialVariant::kCachedMemoize}) {
    r.add(PlanKind::kConvBitSerial, kSimdKeyOffset + static_cast<int>(v),
          std::make_unique<SimdBitSerialConvBackend>(v));
    r.add(PlanKind::kLinearBitSerial, kSimdKeyOffset + static_cast<int>(v),
          std::make_unique<SimdBitSerialLinearBackend>(v));
  }
  r.add(PlanKind::kConvBinary, kSimdKeyOffset, std::make_unique<SimdXnorConvBackend>());
}

}  // namespace detail
}  // namespace bswp::runtime
