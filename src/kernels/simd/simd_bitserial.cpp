// Widened bit-serial LUT accumulate (HostLane::kSimd).
//
// Per (output position, kernel tap, channel group) context the scalar
// variants walk the filter loop doing per-filter LUT lookups; this core
// instead always materializes all S pool dot products
//   vals[s] = sum_j lut(bitvec[j], s) << j
// — vectorized 8 int32 lanes at a time over the contiguous s axis of an
// input-oriented LUT (weight-oriented layouts stride by 2^N per s, so they
// precompute scalar) — and then processes 8 output channels per step:
// _mm256_i32gather_epi32 over the packed uint8 pool indices feeds 8
// accumulators per instruction. Every variant computes the identical sums
// (they differ only in modeled cost), so one SIMD implementation serves all
// five variant keys; `variant` only selects which scalar cost closed-form to
// tally so MCU latency estimates stay faithful to the plan.
#include "kernels/bit_unpack.h"
#include "kernels/simd/simd_dispatch.h"
#include "kernels/simd/simd_kernels.h"
#include "sim/layer_cost.h"

#include <algorithm>

#if defined(BSWP_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define BSWP_SIMD_X86 1
#include <immintrin.h>
#endif

namespace bswp::kernels::simd {
namespace {

#if defined(BSWP_SIMD_X86)

/// vals[s] = sum_j row_j[s] << j over contiguous input-oriented LUT rows.
__attribute__((target("avx2"))) void precompute_pool_avx2(const pool::DotLut& lut,
                                                          const uint32_t* bitvec, int bits,
                                                          int32_t* vals) {
  const int S = lut.pool_size;
  const int32_t* e = lut.entries.data();
  for (int j = 0; j < bits; ++j) {
    const int32_t* row = e + static_cast<std::size_t>(bitvec[j]) * S;
    int s = 0;
    if (j == 0) {
      for (; s + 8 <= S; s += 8) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + s),
                            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + s)));
      }
      for (; s < S; ++s) vals[s] = row[s];
    } else {
      for (; s + 8 <= S; s += 8) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + s));
        const __m256i r = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + s));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + s),
                            _mm256_add_epi32(v, _mm256_slli_epi32(r, j)));
      }
      for (; s < S; ++s) vals[s] += row[s] << j;
    }
  }
}

/// acc[o] += vals[idx[o]] for 8 output channels per gather.
__attribute__((target("avx2"))) void accumulate_avx2(const int32_t* vals, const uint8_t* idx,
                                                     int out_ch, int32_t* acc) {
  int o = 0;
  for (; o + 8 <= out_ch; o += 8) {
    const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(idx + o));
    const __m256i gathered = _mm256_i32gather_epi32(vals, _mm256_cvtepu8_epi32(b), 4);
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + o));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + o), _mm256_add_epi32(a, gathered));
  }
  for (; o < out_ch; ++o) acc[o] += vals[idx[o]];
}

#endif  // BSWP_SIMD_X86

void precompute_pool_portable(const pool::DotLut& lut, const uint32_t* bitvec, int bits,
                              int32_t* vals) {
  const int S = lut.pool_size;
  if (lut.order == pool::LutOrder::kInputOriented) {
    const int32_t* e = lut.entries.data();
    for (int j = 0; j < bits; ++j) {
      const int32_t* row = e + static_cast<std::size_t>(bitvec[j]) * S;
      if (j == 0) {
#pragma omp simd
        for (int s = 0; s < S; ++s) vals[s] = row[s];
      } else {
#pragma omp simd
        for (int s = 0; s < S; ++s) vals[s] += row[s] << j;
      }
    }
  } else {
    // Weight-oriented blocks put consecutive s a full 2^N entries apart;
    // gather scalar (the cost model never prefers the SIMD lane here).
    for (int s = 0; s < S; ++s) {
      int32_t v = 0;
      for (int j = 0; j < bits; ++j) v += lut.at(bitvec[j], s) << j;
      vals[s] = v;
    }
  }
}

void accumulate_portable(const int32_t* vals, const uint8_t* idx, int out_ch, int32_t* acc) {
#pragma omp simd
  for (int o = 0; o < out_ch; ++o) acc[o] += vals[idx[o]];
}

/// One context: decompose the group vector, precompute the pool, accumulate
/// all filters through the index gather.
void run_context(const pool::DotLut& lut, const int16_t* group_vals, int group_size, int bits,
                 const uint8_t* idx, int out_ch, uint32_t* bitvec, int32_t* vals, int32_t* acc,
                 bool use_avx2) {
  unpack_bits(group_vals, group_size, bits, bitvec, nullptr);
#if defined(BSWP_SIMD_X86)
  if (use_avx2 && lut.order == pool::LutOrder::kInputOriented) {
    precompute_pool_avx2(lut, bitvec, bits, vals);
    accumulate_avx2(vals, idx, out_ch, acc);
    return;
  }
#else
  (void)use_avx2;
#endif
  precompute_pool_portable(lut, bitvec, bits, vals);
  accumulate_portable(vals, idx, out_ch, acc);
}

}  // namespace

void simd_bitserial_conv2d(const QView& in, const PackedIndices& indices,
                           const pool::DotLut& lut, const nn::ConvSpec& spec, const Requant& rq,
                           BitSerialVariant variant, QView& out, ScratchArena& scratch,
                           sim::CostCounter* counter) {
  check(in.rank == 4 && in.shape[0] == 1, "simd_bitserial_conv2d: input must be 1xCxHxW");
  check(!in.is_signed, "simd_bitserial_conv2d: activations must be unsigned-quantized");
  check(spec.groups == 1, "simd_bitserial_conv2d: grouped convs are not poolable");
  check(spec.in_ch % lut.group_size == 0,
        "simd_bitserial_conv2d: in_ch must divide by group size");
  check(indices.out_ch == spec.out_ch && indices.kh == spec.kh && indices.kw == spec.kw &&
            indices.groups == spec.in_ch / lut.group_size,
        "simd_bitserial_conv2d: index map does not match conv spec");
  const int M = in.bits;
  check(M >= 1 && M <= 16, "simd_bitserial_conv2d: activation bits out of range");

  const int G = lut.group_size;
  const int gcnt = spec.in_ch / G;
  const int h = in.dim(2), w = in.dim(3);
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const int F = spec.out_ch;
  const int S = lut.pool_size;

  out.set_shape({1, F, oh, ow});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  int32_t* acc = scratch.alloc<int32_t>(static_cast<std::size_t>(F));
  int32_t* vals = scratch.alloc<int32_t>(static_cast<std::size_t>(S));
  int16_t* group_vals = scratch.alloc<int16_t>(static_cast<std::size_t>(G));
  uint32_t bitvec[16] = {};
  const bool use_avx2 = avx2_supported();

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      std::fill(acc, acc + F, 0);
      for (int ky = 0; ky < spec.kh; ++ky) {
        const int iy = oy * spec.stride + ky - spec.pad;
        if (iy < 0 || iy >= h) continue;
        for (int kx = 0; kx < spec.kw; ++kx) {
          const int ix = ox * spec.stride + kx - spec.pad;
          if (ix < 0 || ix >= w) continue;
          for (int g = 0; g < gcnt; ++g) {
            for (int j = 0; j < G; ++j) {
              group_vals[static_cast<std::size_t>(j)] =
                  in.data[(static_cast<std::size_t>(g * G + j) * h + iy) * w + ix];
            }
            run_context(lut, group_vals, G, M, indices.idx.data() + indices.flat(ky, kx, g, 0),
                        F, bitvec, vals, acc, use_avx2);
          }
        }
      }
      for (int o = 0; o < F; ++o) {
        out.data[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] = rq.apply(acc[o], o);
      }
    }
  }
  // Tally the plan's scalar variant's exact event counts (the closed form is
  // pinned to the scalar kernel) so MCU estimates ignore the host lane.
  if (counter != nullptr)
    counter->merge(sim::bitserial_conv_cost(spec, h, w, M, lut, indices, variant));
}

void simd_bitserial_linear(const QView& in, const PackedIndices& indices,
                           const pool::DotLut& lut, const Requant& rq,
                           BitSerialVariant variant, QView& out, ScratchArena& scratch,
                           sim::CostCounter* counter) {
  check(in.rank == 2 && in.shape[0] == 1, "simd_bitserial_linear: input must be 1xF");
  check(!in.is_signed, "simd_bitserial_linear: activations must be unsigned-quantized");
  const int fin = in.dim(1);
  const int G = lut.group_size;
  check(fin % G == 0, "simd_bitserial_linear: input features must divide by group size");
  check(indices.kh == 1 && indices.kw == 1 && indices.groups == fin / G,
        "simd_bitserial_linear: index map mismatch");
  const int M = in.bits;
  const int F = indices.out_ch;
  const int S = lut.pool_size;

  out.set_shape({1, F});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  int32_t* acc = scratch.alloc<int32_t>(static_cast<std::size_t>(F));
  int32_t* vals = scratch.alloc<int32_t>(static_cast<std::size_t>(S));
  std::fill(acc, acc + F, 0);
  uint32_t bitvec[16] = {};
  const bool use_avx2 = avx2_supported();

  for (int g = 0; g < fin / G; ++g) {
    run_context(lut, in.data + static_cast<std::size_t>(g) * G, G, M,
                indices.idx.data() + indices.flat(0, 0, g, 0), F, bitvec, vals, acc, use_avx2);
  }
  for (int o = 0; o < F; ++o) out.data[static_cast<std::size_t>(o)] = rq.apply(acc[o], o);
  if (counter != nullptr)
    counter->merge(sim::bitserial_linear_cost(fin, M, lut, indices, variant));
}

std::size_t simd_bitserial_scratch_bytes(int out_ch, int pool_size, int group_size) {
  return ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(out_ch)) +
         ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(pool_size)) +
         ScratchArena::bytes_for<int16_t>(static_cast<std::size_t>(group_size));
}

}  // namespace bswp::kernels::simd
