// Widened bit-serial LUT accumulate (HostLane::kSimd).
//
// Per (output position, kernel tap, channel group) context the scalar
// variants walk the filter loop doing per-filter LUT lookups; this core
// instead always materializes all S pool dot products
//   vals[s] = sum_j lut(bitvec[j], s) << j
// — vectorized 8 int32 lanes at a time over the contiguous s axis of an
// input-oriented LUT (weight-oriented layouts stride by 2^N per s, so they
// precompute scalar) — and then processes 8 output channels per step:
// _mm256_i32gather_epi32 over the packed uint8 pool indices feeds 8
// accumulators per instruction. Every variant computes the identical sums
// (they differ only in modeled cost), so one SIMD implementation serves all
// five variant keys; `variant` only selects which scalar cost closed-form to
// tally so MCU latency estimates stay faithful to the plan.
#include "kernels/bit_unpack.h"
#include "kernels/simd/simd_dispatch.h"
#include "kernels/simd/simd_kernels.h"
#include "sim/layer_cost.h"

#include <algorithm>

#if defined(BSWP_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define BSWP_SIMD_X86 1
#include <immintrin.h>
#endif

namespace bswp::kernels::simd {
namespace {

#if defined(BSWP_SIMD_X86)

/// vals[s] = sum_j row_j[s] << j over contiguous input-oriented LUT rows.
__attribute__((target("avx2"))) void precompute_pool_avx2(const pool::DotLut& lut,
                                                          const uint32_t* bitvec, int bits,
                                                          int32_t* vals) {
  const int S = lut.pool_size;
  const int32_t* e = lut.entries.data();
  for (int j = 0; j < bits; ++j) {
    const int32_t* row = e + static_cast<std::size_t>(bitvec[j]) * S;
    int s = 0;
    if (j == 0) {
      for (; s + 8 <= S; s += 8) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + s),
                            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + s)));
      }
      for (; s < S; ++s) vals[s] = row[s];
    } else {
      for (; s + 8 <= S; s += 8) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + s));
        const __m256i r = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + s));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + s),
                            _mm256_add_epi32(v, _mm256_slli_epi32(r, j)));
      }
      for (; s < S; ++s) vals[s] += row[s] << j;
    }
  }
}

/// acc[o] += vals[idx[o]] for 8 output channels per gather.
__attribute__((target("avx2"))) void accumulate_avx2(const int32_t* vals, const uint8_t* idx,
                                                     int out_ch, int32_t* acc) {
  int o = 0;
  for (; o + 8 <= out_ch; o += 8) {
    const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(idx + o));
    const __m256i gathered = _mm256_i32gather_epi32(vals, _mm256_cvtepu8_epi32(b), 4);
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + o));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + o), _mm256_add_epi32(a, gathered));
  }
  for (; o < out_ch; ++o) acc[o] += vals[idx[o]];
}

/// Batch-transposed unpack: decompose the same channel-group vector of up to
/// 8 images at once. bvt[j*8 + b] receives image b's bit-plane j — exactly
/// the value unpack_bits writes to out[j] for that image (pure bit
/// extraction, so bit-identity is free). Vectorizing across the batch is the
/// batch-only win here: one image's G values already fit one register, so the
/// per-image core has no lanes left to fill.
__attribute__((target("avx2"))) void unpack_tile8_avx2(const int16_t* base,
                                                       std::size_t img_stride, int count, int G,
                                                       int M, int32_t* bvt) {
  alignas(32) int32_t tile[32][8];
  for (int b = 0; b < count; ++b) {
    const int16_t* r = base + static_cast<std::size_t>(b) * img_stride;
    for (int g = 0; g < G; ++g) tile[g][b] = r[g];
  }
  if (count < 8) {
    for (int b = count; b < 8; ++b) {
      for (int g = 0; g < G; ++g) tile[g][b] = 0;
    }
  }
  const __m256i one = _mm256_set1_epi32(1);
  for (int j = 0; j < M; ++j) {
    __m256i acc = _mm256_setzero_si256();
    for (int g = 0; g < G; ++g) {
      const __m256i v = _mm256_load_si256(reinterpret_cast<const __m256i*>(tile[g]));
      acc = _mm256_or_si256(
          acc, _mm256_slli_epi32(_mm256_and_si256(_mm256_srli_epi32(v, j), one), g));
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(bvt + j * 8), acc);
  }
}

#endif  // BSWP_SIMD_X86

void precompute_pool_portable(const pool::DotLut& lut, const uint32_t* bitvec, int bits,
                              int32_t* vals) {
  const int S = lut.pool_size;
  if (lut.order == pool::LutOrder::kInputOriented) {
    const int32_t* e = lut.entries.data();
    for (int j = 0; j < bits; ++j) {
      const int32_t* row = e + static_cast<std::size_t>(bitvec[j]) * S;
      if (j == 0) {
#pragma omp simd
        for (int s = 0; s < S; ++s) vals[s] = row[s];
      } else {
#pragma omp simd
        for (int s = 0; s < S; ++s) vals[s] += row[s] << j;
      }
    }
  } else {
    // Weight-oriented blocks put consecutive s a full 2^N entries apart;
    // gather scalar (the cost model never prefers the SIMD lane here).
    for (int s = 0; s < S; ++s) {
      int32_t v = 0;
      for (int j = 0; j < bits; ++j) v += lut.at(bitvec[j], s) << j;
      vals[s] = v;
    }
  }
}

void accumulate_portable(const int32_t* vals, const uint8_t* idx, int out_ch, int32_t* acc) {
#pragma omp simd
  for (int o = 0; o < out_ch; ++o) acc[o] += vals[idx[o]];
}

/// One context: decompose the group vector, precompute the pool, accumulate
/// all filters through the index gather.
void run_context(const pool::DotLut& lut, const int16_t* group_vals, int group_size, int bits,
                 const uint8_t* idx, int out_ch, uint32_t* bitvec, int32_t* vals, int32_t* acc,
                 bool use_avx2) {
  unpack_bits(group_vals, group_size, bits, bitvec, nullptr);
#if defined(BSWP_SIMD_X86)
  if (use_avx2 && lut.order == pool::LutOrder::kInputOriented) {
    precompute_pool_avx2(lut, bitvec, bits, vals);
    accumulate_avx2(vals, idx, out_ch, acc);
    return;
  }
#else
  (void)use_avx2;
#endif
  precompute_pool_portable(lut, bitvec, bits, vals);
  accumulate_portable(vals, idx, out_ch, acc);
}

/// Same context for `batch` images whose group vectors sit `img_stride`
/// elements apart: unpack up to 8 images' bit-planes per transposed AVX2
/// pass, then run each image's pool precompute + index gather off the
/// transposed columns. Falls back to per-image run_context off the fast path.
void run_context_batch(const pool::DotLut& lut, const int16_t* base, std::size_t img_stride,
                       int batch, int group_size, int bits, const uint8_t* idx, int out_ch,
                       uint32_t* bitvec, int32_t* vals, int32_t* acc, std::size_t acc_stride,
                       bool use_avx2) {
#if defined(BSWP_SIMD_X86)
  if (use_avx2 && lut.order == pool::LutOrder::kInputOriented && group_size <= 32) {
    alignas(32) int32_t bvt[16 * 8];
    for (int b0 = 0; b0 < batch; b0 += 8) {
      const int cnt = std::min(8, batch - b0);
      unpack_tile8_avx2(base + static_cast<std::size_t>(b0) * img_stride, img_stride, cnt,
                        group_size, bits, bvt);
      for (int k = 0; k < cnt; ++k) {
        for (int j = 0; j < bits; ++j) bitvec[j] = static_cast<uint32_t>(bvt[j * 8 + k]);
        precompute_pool_avx2(lut, bitvec, bits, vals);
        accumulate_avx2(vals, idx, out_ch, acc + static_cast<std::size_t>(b0 + k) * acc_stride);
      }
    }
    return;
  }
#endif
  for (int b = 0; b < batch; ++b) {
    run_context(lut, base + static_cast<std::size_t>(b) * img_stride, group_size, bits, idx,
                out_ch, bitvec, vals, acc + static_cast<std::size_t>(b) * acc_stride, use_avx2);
  }
}

}  // namespace

void simd_bitserial_conv2d(const QView& in, const PackedIndices& indices,
                           const pool::DotLut& lut, const nn::ConvSpec& spec, const Requant& rq,
                           BitSerialVariant variant, QView& out, ScratchArena& scratch,
                           sim::CostCounter* counter) {
  check(in.rank == 4 && in.shape[0] == 1, "simd_bitserial_conv2d: input must be 1xCxHxW");
  check(!in.is_signed, "simd_bitserial_conv2d: activations must be unsigned-quantized");
  check(spec.groups == 1, "simd_bitserial_conv2d: grouped convs are not poolable");
  check(spec.in_ch % lut.group_size == 0,
        "simd_bitserial_conv2d: in_ch must divide by group size");
  check(indices.out_ch == spec.out_ch && indices.kh == spec.kh && indices.kw == spec.kw &&
            indices.groups == spec.in_ch / lut.group_size,
        "simd_bitserial_conv2d: index map does not match conv spec");
  const int M = in.bits;
  check(M >= 1 && M <= 16, "simd_bitserial_conv2d: activation bits out of range");

  const int G = lut.group_size;
  const int gcnt = spec.in_ch / G;
  const int h = in.dim(2), w = in.dim(3);
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const int F = spec.out_ch;
  const int S = lut.pool_size;

  out.set_shape({1, F, oh, ow});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  int32_t* acc = scratch.alloc<int32_t>(static_cast<std::size_t>(F));
  int32_t* vals = scratch.alloc<int32_t>(static_cast<std::size_t>(S));
  int16_t* group_vals = scratch.alloc<int16_t>(static_cast<std::size_t>(G));
  uint32_t bitvec[16] = {};
  const bool use_avx2 = avx2_supported();

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      std::fill(acc, acc + F, 0);
      for (int ky = 0; ky < spec.kh; ++ky) {
        const int iy = oy * spec.stride + ky - spec.pad;
        if (iy < 0 || iy >= h) continue;
        for (int kx = 0; kx < spec.kw; ++kx) {
          const int ix = ox * spec.stride + kx - spec.pad;
          if (ix < 0 || ix >= w) continue;
          for (int g = 0; g < gcnt; ++g) {
            for (int j = 0; j < G; ++j) {
              group_vals[static_cast<std::size_t>(j)] =
                  in.data[(static_cast<std::size_t>(g * G + j) * h + iy) * w + ix];
            }
            run_context(lut, group_vals, G, M, indices.idx.data() + indices.flat(ky, kx, g, 0),
                        F, bitvec, vals, acc, use_avx2);
          }
        }
      }
      for (int o = 0; o < F; ++o) {
        out.data[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] = rq.apply(acc[o], o);
      }
    }
  }
  // Tally the plan's scalar variant's exact event counts (the closed form is
  // pinned to the scalar kernel) so MCU estimates ignore the host lane.
  if (counter != nullptr)
    counter->merge(sim::bitserial_conv_cost(spec, h, w, M, lut, indices, variant));
}

void simd_bitserial_linear(const QView& in, const PackedIndices& indices,
                           const pool::DotLut& lut, const Requant& rq,
                           BitSerialVariant variant, QView& out, ScratchArena& scratch,
                           sim::CostCounter* counter) {
  check(in.rank == 2 && in.shape[0] == 1, "simd_bitserial_linear: input must be 1xF");
  check(!in.is_signed, "simd_bitserial_linear: activations must be unsigned-quantized");
  const int fin = in.dim(1);
  const int G = lut.group_size;
  check(fin % G == 0, "simd_bitserial_linear: input features must divide by group size");
  check(indices.kh == 1 && indices.kw == 1 && indices.groups == fin / G,
        "simd_bitserial_linear: index map mismatch");
  const int M = in.bits;
  const int F = indices.out_ch;
  const int S = lut.pool_size;

  out.set_shape({1, F});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  int32_t* acc = scratch.alloc<int32_t>(static_cast<std::size_t>(F));
  int32_t* vals = scratch.alloc<int32_t>(static_cast<std::size_t>(S));
  std::fill(acc, acc + F, 0);
  uint32_t bitvec[16] = {};
  const bool use_avx2 = avx2_supported();

  for (int g = 0; g < fin / G; ++g) {
    run_context(lut, in.data + static_cast<std::size_t>(g) * G, G, M,
                indices.idx.data() + indices.flat(0, 0, g, 0), F, bitvec, vals, acc, use_avx2);
  }
  for (int o = 0; o < F; ++o) out.data[static_cast<std::size_t>(o)] = rq.apply(acc[o], o);
  if (counter != nullptr)
    counter->merge(sim::bitserial_linear_cost(fin, M, lut, indices, variant));
}

void simd_bitserial_conv2d_batch(const QView& in, std::size_t in_stride, int batch,
                                 const PackedIndices& indices, const pool::DotLut& lut,
                                 const nn::ConvSpec& spec, const Requant& rq,
                                 BitSerialVariant variant, QView& out, std::size_t out_stride,
                                 ScratchArena& scratch, sim::CostCounter* counter) {
  check(in.rank == 4 && in.shape[0] == 1, "simd_bitserial_conv2d_batch: input must be 1xCxHxW");
  check(!in.is_signed, "simd_bitserial_conv2d_batch: activations must be unsigned-quantized");
  check(spec.groups == 1, "simd_bitserial_conv2d_batch: grouped convs are not poolable");
  check(spec.in_ch % lut.group_size == 0,
        "simd_bitserial_conv2d_batch: in_ch must divide by group size");
  check(indices.out_ch == spec.out_ch && indices.kh == spec.kh && indices.kw == spec.kw &&
            indices.groups == spec.in_ch / lut.group_size,
        "simd_bitserial_conv2d_batch: index map does not match conv spec");
  check(batch >= 1, "simd_bitserial_conv2d_batch: batch must be >= 1");
  const int M = in.bits;
  check(M >= 1 && M <= 16, "simd_bitserial_conv2d_batch: activation bits out of range");

  const int G = lut.group_size;
  const int gcnt = spec.in_ch / G;
  const int h = in.dim(2), w = in.dim(3);
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const int F = spec.out_ch;
  const int S = lut.pool_size;

  out.set_shape({1, F, oh, ow});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  // Image b owns acc + b*F; pool values are recomputed per image but the LUT
  // rows and index bytes stay cache-hot across the batch.
  int32_t* acc = scratch.alloc<int32_t>(static_cast<std::size_t>(batch) * F);
  int32_t* vals = scratch.alloc<int32_t>(static_cast<std::size_t>(S));
  uint32_t bitvec[16] = {};
  const bool use_avx2 = avx2_supported();

  // Throughput-path layout fix, amortized over the whole batch: stage every
  // image's input window to HWC once, so the hot (tap, group, image) loop
  // reads each channel-group vector as ONE contiguous 1xG row instead of G
  // scalar loads strided h*w apart (which thrash L1 once the CHW activation
  // plane outgrows it). Values are only moved, never transformed, so the
  // per-image sums — and the logits — are untouched.
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  int16_t* hwc = scratch.alloc<int16_t>(static_cast<std::size_t>(batch) * hw * spec.in_ch);
  for (int b = 0; b < batch; ++b) {
    const int16_t* src = in.data + static_cast<std::size_t>(b) * in_stride;
    int16_t* dst = hwc + static_cast<std::size_t>(b) * hw * spec.in_ch;
    for (int c = 0; c < spec.in_ch; ++c) {
      for (std::size_t p = 0; p < hw; ++p) {
        dst[p * static_cast<std::size_t>(spec.in_ch) + c] = src[static_cast<std::size_t>(c) * hw + p];
      }
    }
  }

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      std::fill(acc, acc + static_cast<std::size_t>(batch) * F, 0);
      for (int ky = 0; ky < spec.kh; ++ky) {
        const int iy = oy * spec.stride + ky - spec.pad;
        if (iy < 0 || iy >= h) continue;
        for (int kx = 0; kx < spec.kw; ++kx) {
          const int ix = ox * spec.stride + kx - spec.pad;
          if (ix < 0 || ix >= w) continue;
          for (int g = 0; g < gcnt; ++g) {
            const uint8_t* idx = indices.idx.data() + indices.flat(ky, kx, g, 0);
            const int16_t* base = hwc +
                                  ((static_cast<std::size_t>(iy) * w + ix) * spec.in_ch) +
                                  static_cast<std::size_t>(g) * G;
            run_context_batch(lut, base, hw * static_cast<std::size_t>(spec.in_ch), batch, G, M,
                              idx, F, bitvec, vals, acc, static_cast<std::size_t>(F), use_avx2);
          }
        }
      }
      for (int b = 0; b < batch; ++b) {
        const int32_t* acc_b = acc + static_cast<std::size_t>(b) * F;
        int16_t* dst = out.data + static_cast<std::size_t>(b) * out_stride;
        for (int o = 0; o < F; ++o) {
          dst[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] = rq.apply(acc_b[o], o);
        }
      }
    }
  }
  if (counter != nullptr) {
    const sim::CostCounter per_image = sim::bitserial_conv_cost(spec, h, w, M, lut, indices, variant);
    for (int b = 0; b < batch; ++b) counter->merge(per_image);
  }
}

void simd_bitserial_linear_batch(const QView& in, std::size_t in_stride, int batch,
                                 const PackedIndices& indices, const pool::DotLut& lut,
                                 const Requant& rq, BitSerialVariant variant, QView& out,
                                 std::size_t out_stride, ScratchArena& scratch,
                                 sim::CostCounter* counter) {
  check(in.rank == 2 && in.shape[0] == 1, "simd_bitserial_linear_batch: input must be 1xF");
  check(!in.is_signed, "simd_bitserial_linear_batch: activations must be unsigned-quantized");
  check(batch >= 1, "simd_bitserial_linear_batch: batch must be >= 1");
  const int fin = in.dim(1);
  const int G = lut.group_size;
  check(fin % G == 0, "simd_bitserial_linear_batch: input features must divide by group size");
  check(indices.kh == 1 && indices.kw == 1 && indices.groups == fin / G,
        "simd_bitserial_linear_batch: index map mismatch");
  const int M = in.bits;
  const int F = indices.out_ch;
  const int S = lut.pool_size;

  out.set_shape({1, F});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  int32_t* acc = scratch.alloc<int32_t>(static_cast<std::size_t>(batch) * F);
  int32_t* vals = scratch.alloc<int32_t>(static_cast<std::size_t>(S));
  std::fill(acc, acc + static_cast<std::size_t>(batch) * F, 0);
  uint32_t bitvec[16] = {};
  const bool use_avx2 = avx2_supported();

  for (int g = 0; g < fin / G; ++g) {
    const uint8_t* idx = indices.idx.data() + indices.flat(0, 0, g, 0);
    run_context_batch(lut, in.data + static_cast<std::size_t>(g) * G, in_stride, batch, G, M,
                      idx, F, bitvec, vals, acc, static_cast<std::size_t>(F), use_avx2);
  }
  for (int b = 0; b < batch; ++b) {
    const int32_t* acc_b = acc + static_cast<std::size_t>(b) * F;
    int16_t* dst = out.data + static_cast<std::size_t>(b) * out_stride;
    for (int o = 0; o < F; ++o) dst[static_cast<std::size_t>(o)] = rq.apply(acc_b[o], o);
  }
  if (counter != nullptr) {
    const sim::CostCounter per_image = sim::bitserial_linear_cost(fin, M, lut, indices, variant);
    for (int b = 0; b < batch; ++b) counter->merge(per_image);
  }
}

std::size_t simd_bitserial_scratch_bytes(int out_ch, int pool_size, int group_size) {
  return ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(out_ch)) +
         ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(pool_size)) +
         ScratchArena::bytes_for<int16_t>(static_cast<std::size_t>(group_size));
}

std::size_t simd_bitserial_scratch_bytes_batch(int out_ch, int pool_size, int group_size,
                                               int batch) {
  return ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(out_ch) *
                                          static_cast<std::size_t>(batch)) +
         ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(pool_size)) +
         ScratchArena::bytes_for<int16_t>(static_cast<std::size_t>(group_size));
}

std::size_t simd_bitserial_conv_scratch_bytes_batch(const nn::ConvSpec& spec, int in_h, int in_w,
                                                    int out_ch, int pool_size, int batch) {
  return ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(out_ch) *
                                          static_cast<std::size_t>(batch)) +
         ScratchArena::bytes_for<int32_t>(static_cast<std::size_t>(pool_size)) +
         ScratchArena::bytes_for<int16_t>(static_cast<std::size_t>(batch) *
                                          static_cast<std::size_t>(in_h) * in_w * spec.in_ch);
}

}  // namespace bswp::kernels::simd
