// Register-tiled + cache-blocked int8 conv/linear cores (HostLane::kSimd).
//
// Blocking scheme: per (output position, group) the zero-point-shifted input
// patch is staged once as an im2col column in scratch, then reused across the
// whole filter loop — the column stays L1-resident while the weight rows
// stream sequentially. The filter loop is register-tiled 4 wide so four int32
// accumulator vectors amortize each column load; within the tile the inner
// dot product runs 16 int16 lanes per step (_mm256_madd_epi16) with a scalar
// tail for the last K % 16 taps. Out-of-bounds taps stage 0, contributing
// 0 * w — exactly what the scalar kernel's tap skip contributes.
#include "kernels/simd/simd_dispatch.h"
#include "kernels/simd/simd_kernels.h"
#include "sim/layer_cost.h"

#if defined(BSWP_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define BSWP_SIMD_X86 1
#include <immintrin.h>
#endif

namespace bswp::kernels::simd {
namespace {

#if defined(BSWP_SIMD_X86)

__attribute__((target("avx2"))) inline int32_t hsum8(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// Dot products of `col` against four consecutive weight rows (stride
/// `wstride`), K taps each.
__attribute__((target("avx2"))) void dot4_avx2(const int16_t* col, const int16_t* w,
                                               std::size_t wstride, int K, int32_t* r) {
  __m256i a0 = _mm256_setzero_si256(), a1 = a0, a2 = a0, a3 = a0;
  int k = 0;
  for (; k + 16 <= K; k += 16) {
    const __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + k));
    const __m256i w0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + k));
    const __m256i w1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + wstride + k));
    const __m256i w2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 2 * wstride + k));
    const __m256i w3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 3 * wstride + k));
    a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(c, w0));
    a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(c, w1));
    a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(c, w2));
    a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(c, w3));
  }
  r[0] = hsum8(a0);
  r[1] = hsum8(a1);
  r[2] = hsum8(a2);
  r[3] = hsum8(a3);
  for (; k < K; ++k) {
    const int32_t c = col[k];
    r[0] += c * w[k];
    r[1] += c * w[wstride + k];
    r[2] += c * w[2 * wstride + k];
    r[3] += c * w[3 * wstride + k];
  }
}

__attribute__((target("avx2"))) int32_t dot1_avx2(const int16_t* col, const int16_t* w, int K) {
  __m256i a = _mm256_setzero_si256();
  int k = 0;
  for (; k + 16 <= K; k += 16) {
    a = _mm256_add_epi32(
        a, _mm256_madd_epi16(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + k)),
                             _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + k))));
  }
  int32_t acc = hsum8(a);
  for (; k < K; ++k) acc += static_cast<int32_t>(col[k]) * w[k];
  return acc;
}

#endif  // BSWP_SIMD_X86

int32_t dot1_portable(const int16_t* col, const int16_t* w, int K) {
  int32_t acc = 0;
#pragma omp simd reduction(+ : acc)
  for (int k = 0; k < K; ++k) acc += static_cast<int32_t>(col[k]) * static_cast<int32_t>(w[k]);
  return acc;
}

/// Stage group g's zero-point-shifted patch at (oy, ox) as a column matching
/// the weight-row layout widx = (c*kh + ky)*kw + kx. Invalid taps stage 0.
void stage_column(const QView& in, const nn::ConvSpec& spec, int g, int oy, int ox, int h,
                  int w, int cg, int32_t in_zp, int16_t* col) {
  std::size_t widx = 0;
  for (int c = 0; c < cg; ++c) {
    const int16_t* chan = in.data + static_cast<std::size_t>(g * cg + c) * h * w;
    for (int ky = 0; ky < spec.kh; ++ky) {
      const int iy = oy * spec.stride + ky - spec.pad;
      const bool row_ok = iy >= 0 && iy < h;
      for (int kx = 0; kx < spec.kw; ++kx, ++widx) {
        const int ix = ox * spec.stride + kx - spec.pad;
        col[widx] = row_ok && ix >= 0 && ix < w
                        ? static_cast<int16_t>(chan[static_cast<std::size_t>(iy) * w + ix] - in_zp)
                        : int16_t{0};
      }
    }
  }
}

}  // namespace

void simd_conv2d(const QView& in, const QTensor& weights, const nn::ConvSpec& spec,
                 const Requant& rq, QView& out, ScratchArena& scratch,
                 sim::CostCounter* counter) {
  check(in.rank == 4 && in.shape[0] == 1, "simd_conv2d: input must be 1xCxHxW");
  check(in.dim(1) == spec.in_ch, "simd_conv2d: channel mismatch");
  const int h = in.dim(2), w = in.dim(3);
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const int cg = spec.in_ch / spec.groups;
  const int og = spec.out_ch / spec.groups;
  const std::size_t wstride = static_cast<std::size_t>(cg) * spec.kh * spec.kw;
  const int K = cg * spec.kh * spec.kw;

  out.set_shape({1, spec.out_ch, oh, ow});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;
  const int32_t in_zp = in.zero_point;

  int16_t* col = scratch.alloc<int16_t>(static_cast<std::size_t>(K));
#if defined(BSWP_SIMD_X86)
  const bool use_avx2 = avx2_supported();
#endif

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      for (int g = 0; g < spec.groups; ++g) {
        stage_column(in, spec, g, oy, ox, h, w, cg, in_zp, col);
        const int16_t* wbase = weights.data.data() + static_cast<std::size_t>(g) * og * wstride;
        int oc = 0;
#if defined(BSWP_SIMD_X86)
        if (use_avx2) {
          for (; oc + 4 <= og; oc += 4) {
            int32_t r[4];
            dot4_avx2(col, wbase + static_cast<std::size_t>(oc) * wstride, wstride, K, r);
            for (int i = 0; i < 4; ++i) {
              const int o = g * og + oc + i;
              out.data[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] = rq.apply(r[i], o);
            }
          }
          for (; oc < og; ++oc) {
            const int o = g * og + oc;
            out.data[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] =
                rq.apply(dot1_avx2(col, wbase + static_cast<std::size_t>(oc) * wstride, K), o);
          }
        }
#endif
        for (; oc < og; ++oc) {
          const int o = g * og + oc;
          out.data[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] =
              rq.apply(dot1_portable(col, wbase + static_cast<std::size_t>(oc) * wstride, K), o);
        }
      }
    }
  }
  // Tally the scalar MCU reference events (exactly what baseline_conv2d
  // tallies — pinned by tests/test_layer_cost.cpp) so latency estimates keep
  // modeling the microcontroller regardless of host lane.
  if (counter != nullptr) counter->merge(sim::baseline_conv_cost(spec, h, w));
}

void simd_linear(const QView& in, const QTensor& weights, const Requant& rq, QView& out,
                 ScratchArena& scratch, sim::CostCounter* counter) {
  check(in.rank == 2 && in.shape[0] == 1, "simd_linear: input must be 1xF");
  const int fin = in.dim(1), fout = weights.dim(0);
  check(weights.dim(1) == fin, "simd_linear: shape mismatch");
  out.set_shape({1, fout});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  int16_t* col = scratch.alloc<int16_t>(static_cast<std::size_t>(fin));
  const int32_t in_zp = in.zero_point;
#pragma omp simd
  for (int i = 0; i < fin; ++i)
    col[i] = static_cast<int16_t>(in.data[static_cast<std::size_t>(i)] - in_zp);

  const int16_t* wbase = weights.data.data();
  const auto wstride = static_cast<std::size_t>(fin);
  int o = 0;
#if defined(BSWP_SIMD_X86)
  if (avx2_supported()) {
    for (; o + 4 <= fout; o += 4) {
      int32_t r[4];
      dot4_avx2(col, wbase + static_cast<std::size_t>(o) * wstride, wstride, fin, r);
      for (int i = 0; i < 4; ++i)
        out.data[static_cast<std::size_t>(o + i)] = rq.apply(r[i], o + i);
    }
    for (; o < fout; ++o) {
      out.data[static_cast<std::size_t>(o)] =
          rq.apply(dot1_avx2(col, wbase + static_cast<std::size_t>(o) * wstride, fin), o);
    }
  }
#endif
  for (; o < fout; ++o) {
    out.data[static_cast<std::size_t>(o)] =
        rq.apply(dot1_portable(col, wbase + static_cast<std::size_t>(o) * wstride, fin), o);
  }
  if (counter != nullptr) counter->merge(sim::baseline_linear_cost(fin, fout));
}

void simd_conv2d_batch(const QView& in, std::size_t in_stride, int batch, const QTensor& weights,
                       const nn::ConvSpec& spec, const Requant& rq, QView& out,
                       std::size_t out_stride, ScratchArena& scratch, sim::CostCounter* counter) {
  check(in.rank == 4 && in.shape[0] == 1, "simd_conv2d_batch: input must be 1xCxHxW");
  check(in.dim(1) == spec.in_ch, "simd_conv2d_batch: channel mismatch");
  check(batch >= 1, "simd_conv2d_batch: batch must be >= 1");
  const int h = in.dim(2), w = in.dim(3);
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const int cg = spec.in_ch / spec.groups;
  const int og = spec.out_ch / spec.groups;
  const std::size_t wstride = static_cast<std::size_t>(cg) * spec.kh * spec.kw;
  const int K = cg * spec.kh * spec.kw;

  out.set_shape({1, spec.out_ch, oh, ow});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;
  const int32_t in_zp = in.zero_point;

  // All N columns staged side by side; each 4-wide filter tile then sweeps
  // the whole batch, so the weight rows are loaded once per batch.
  int16_t* cols = scratch.alloc<int16_t>(static_cast<std::size_t>(batch) * K);
#if defined(BSWP_SIMD_X86)
  const bool use_avx2 = avx2_supported();
#endif

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      for (int g = 0; g < spec.groups; ++g) {
        for (int b = 0; b < batch; ++b) {
          QView in_b = in;
          in_b.data += static_cast<std::size_t>(b) * in_stride;
          stage_column(in_b, spec, g, oy, ox, h, w, cg, in_zp, cols + static_cast<std::size_t>(b) * K);
        }
        const int16_t* wbase = weights.data.data() + static_cast<std::size_t>(g) * og * wstride;
        int oc = 0;
#if defined(BSWP_SIMD_X86)
        if (use_avx2) {
          for (; oc + 4 <= og; oc += 4) {
            for (int b = 0; b < batch; ++b) {
              int32_t r[4];
              dot4_avx2(cols + static_cast<std::size_t>(b) * K,
                        wbase + static_cast<std::size_t>(oc) * wstride, wstride, K, r);
              for (int i = 0; i < 4; ++i) {
                const int o = g * og + oc + i;
                out.data[static_cast<std::size_t>(b) * out_stride +
                         (static_cast<std::size_t>(o) * oh + oy) * ow + ox] = rq.apply(r[i], o);
              }
            }
          }
          for (; oc < og; ++oc) {
            const int o = g * og + oc;
            for (int b = 0; b < batch; ++b) {
              out.data[static_cast<std::size_t>(b) * out_stride +
                       (static_cast<std::size_t>(o) * oh + oy) * ow + ox] =
                  rq.apply(dot1_avx2(cols + static_cast<std::size_t>(b) * K,
                                     wbase + static_cast<std::size_t>(oc) * wstride, K),
                           o);
            }
          }
        }
#endif
        for (; oc < og; ++oc) {
          const int o = g * og + oc;
          for (int b = 0; b < batch; ++b) {
            out.data[static_cast<std::size_t>(b) * out_stride +
                     (static_cast<std::size_t>(o) * oh + oy) * ow + ox] =
                rq.apply(dot1_portable(cols + static_cast<std::size_t>(b) * K,
                                       wbase + static_cast<std::size_t>(oc) * wstride, K),
                         o);
          }
        }
      }
    }
  }
  // Exactly batch x the scalar MCU reference events (the modeled MCU does
  // not batch; the batched closed forms in sim/layer_cost.h only price the
  // host-side amortization for lane selection).
  if (counter != nullptr) {
    const sim::CostCounter per_image = sim::baseline_conv_cost(spec, h, w);
    for (int b = 0; b < batch; ++b) counter->merge(per_image);
  }
}

void simd_linear_batch(const QView& in, std::size_t in_stride, int batch, const QTensor& weights,
                       const Requant& rq, QView& out, std::size_t out_stride,
                       ScratchArena& scratch, sim::CostCounter* counter) {
  check(in.rank == 2 && in.shape[0] == 1, "simd_linear_batch: input must be 1xF");
  check(batch >= 1, "simd_linear_batch: batch must be >= 1");
  const int fin = in.dim(1), fout = weights.dim(0);
  check(weights.dim(1) == fin, "simd_linear_batch: shape mismatch");
  out.set_shape({1, fout});
  out.bits = rq.out.bits;
  out.is_signed = rq.out.is_signed;
  out.scale = rq.out.scale;
  out.zero_point = rq.out.zero_point;

  int16_t* cols = scratch.alloc<int16_t>(static_cast<std::size_t>(batch) * fin);
  const int32_t in_zp = in.zero_point;
  for (int b = 0; b < batch; ++b) {
    const int16_t* src = in.data + static_cast<std::size_t>(b) * in_stride;
    int16_t* col = cols + static_cast<std::size_t>(b) * fin;
#pragma omp simd
    for (int i = 0; i < fin; ++i) col[i] = static_cast<int16_t>(src[i] - in_zp);
  }

  const int16_t* wbase = weights.data.data();
  const auto wstride = static_cast<std::size_t>(fin);
  int o = 0;
#if defined(BSWP_SIMD_X86)
  if (avx2_supported()) {
    for (; o + 4 <= fout; o += 4) {
      for (int b = 0; b < batch; ++b) {
        int32_t r[4];
        dot4_avx2(cols + static_cast<std::size_t>(b) * fin,
                  wbase + static_cast<std::size_t>(o) * wstride, wstride, fin, r);
        int16_t* dst = out.data + static_cast<std::size_t>(b) * out_stride;
        for (int i = 0; i < 4; ++i) dst[static_cast<std::size_t>(o + i)] = rq.apply(r[i], o + i);
      }
    }
    for (; o < fout; ++o) {
      for (int b = 0; b < batch; ++b) {
        out.data[static_cast<std::size_t>(b) * out_stride + static_cast<std::size_t>(o)] =
            rq.apply(dot1_avx2(cols + static_cast<std::size_t>(b) * fin,
                               wbase + static_cast<std::size_t>(o) * wstride, fin),
                     o);
      }
    }
  }
#endif
  for (; o < fout; ++o) {
    for (int b = 0; b < batch; ++b) {
      out.data[static_cast<std::size_t>(b) * out_stride + static_cast<std::size_t>(o)] =
          rq.apply(dot1_portable(cols + static_cast<std::size_t>(b) * fin,
                                 wbase + static_cast<std::size_t>(o) * wstride, fin),
                   o);
    }
  }
  if (counter != nullptr) {
    const sim::CostCounter per_image = sim::baseline_linear_cost(fin, fout);
    for (int b = 0; b < batch; ++b) counter->merge(per_image);
  }
}

std::size_t simd_conv_scratch_bytes(const nn::ConvSpec& spec) {
  return ScratchArena::bytes_for<int16_t>(static_cast<std::size_t>(spec.in_ch / spec.groups) *
                                          spec.kh * spec.kw);
}

std::size_t simd_linear_scratch_bytes(int in_features) {
  return ScratchArena::bytes_for<int16_t>(static_cast<std::size_t>(in_features));
}

std::size_t simd_conv_scratch_bytes_batch(const nn::ConvSpec& spec, int batch) {
  return ScratchArena::bytes_for<int16_t>(static_cast<std::size_t>(spec.in_ch / spec.groups) *
                                          spec.kh * spec.kw * static_cast<std::size_t>(batch));
}

std::size_t simd_linear_scratch_bytes_batch(int in_features, int batch) {
  return ScratchArena::bytes_for<int16_t>(static_cast<std::size_t>(in_features) *
                                          static_cast<std::size_t>(batch));
}

}  // namespace bswp::kernels::simd
