#include "kernels/simd/simd_dispatch.h"

namespace bswp::kernels::simd {

bool compiled() {
#if defined(BSWP_SIMD_ENABLED)
  return true;
#else
  return false;
#endif
}

bool avx2_supported() {
#if defined(BSWP_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
#else
  return false;
#endif
}

bool available() { return compiled(); }

const char* isa_name() {
  if (!compiled()) return "off";
  return avx2_supported() ? "avx2" : "portable";
}

}  // namespace bswp::kernels::simd
