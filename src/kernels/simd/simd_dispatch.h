// Build/runtime capability probe for the vectorized host kernel family.
//
// The SIMD kernels compile in two flavors from the same sources: an AVX2
// intrinsics path selected per-call at runtime (function-level
// target("avx2") so the rest of the library needs no -mavx2), and a
// portable register-blocked `#pragma omp simd` path that serves NEON and
// plain scalar builds. `compiled()` reflects the BSWP_SIMD CMake option;
// when it is false the family is not registered at all and every plan
// resolves to the scalar backends (see KernelRegistry::find's scalar-lane
// fallback).
#pragma once

namespace bswp::kernels::simd {

/// True when the library was built with BSWP_SIMD=ON.
bool compiled();

/// True when the running CPU supports the AVX2 intrinsics path (always
/// false on non-x86 builds or when the family is compiled out).
bool avx2_supported();

/// True when the SIMD backends are registered and usable. The portable
/// fallback needs no CPU feature, so this equals compiled().
bool available();

/// "avx2", "portable" or "off" — which implementation executes.
const char* isa_name();

}  // namespace bswp::kernels::simd
