// Vectorized + cache-blocked host kernels (HostLane::kSimd).
//
// Three hot paths, each bit-identical to its scalar reference kernel:
//
//   simd_conv2d / simd_linear      int8 conv & fully-connected cores. Each
//                                  output position stages an im2col column of
//                                  zero-point-shifted activations in scratch
//                                  (out-of-bounds taps stage 0, which
//                                  contributes 0*w like the scalar tap skip),
//                                  then a 4-filter register tile runs 16-lane
//                                  int16 multiply-accumulates over the shared
//                                  column (AVX2 _mm256_madd_epi16, or a
//                                  `#pragma omp simd` reduction).
//   simd_bitserial_conv2d/_linear  widened bit-serial LUT accumulate: all S
//                                  pool dot products are precomputed per
//                                  channel-group context (vectorized over the
//                                  contiguous s axis of an input-oriented
//                                  LUT), then the filter loop gathers 8
//                                  output channels per step
//                                  (_mm256_i32gather_epi32 over the packed
//                                  uint8 indices).
//   simd_xnor_conv2d_counts        XNOR popcount over 64-bit words (pairs of
//                                  packed 32-bit lanes fused per popcount).
//
// Bit-identity holds because integer accumulation is associative modulo
// 2^32 — reordering the adds cannot change the wrapped sum — and
// requantization stays scalar per output element. Cost counters tally the
// *scalar MCU reference* events (merged from the closed forms in
// sim/layer_cost.h, which tests pin to the scalar kernels event-for-event),
// so Session::estimate_latency keeps answering "what would this cost on the
// microcontroller" no matter which host lane produced the logits.
//
// All cores draw temporaries exclusively from the caller's ScratchArena;
// the *_scratch_bytes helpers report the exact upper bound the backends
// advertise through KernelBackend::scratch_bytes().
#pragma once

#include "core/arena.h"
#include "kernels/bitserial_conv.h"
#include "kernels/common.h"
#include "pool/lut.h"

namespace bswp::kernels::simd {

/// Vectorized int8 convolution into `out`; arguments mirror
/// kernels::baseline_conv2d plus the scratch arena for the column buffer.
void simd_conv2d(const QView& in, const QTensor& weights, const nn::ConvSpec& spec,
                 const Requant& rq, QView& out, ScratchArena& scratch,
                 sim::CostCounter* counter);

/// Vectorized int8 fully-connected layer into `out`.
void simd_linear(const QView& in, const QTensor& weights, const Requant& rq, QView& out,
                 ScratchArena& scratch, sim::CostCounter* counter);

/// Widened bit-serial pooled convolution into `out`. `variant` only selects
/// which scalar variant's cost counters to tally — every variant computes
/// the same sums, and this core always precomputes the full pool.
void simd_bitserial_conv2d(const QView& in, const PackedIndices& indices,
                           const pool::DotLut& lut, const nn::ConvSpec& spec, const Requant& rq,
                           BitSerialVariant variant, QView& out, ScratchArena& scratch,
                           sim::CostCounter* counter);

/// Widened bit-serial pooled fully-connected layer into `out`.
void simd_bitserial_linear(const QView& in, const PackedIndices& indices,
                           const pool::DotLut& lut, const Requant& rq,
                           BitSerialVariant variant, QView& out, ScratchArena& scratch,
                           sim::CostCounter* counter);

/// 64-bit-word XNOR popcount core; drop-in for binary::xnor_conv2d_counts
/// (same packed layouts, counts and counter tallies).
void simd_xnor_conv2d_counts(const uint32_t* in_bits, int in_ch, int h, int w,
                             const uint32_t* weight_bits, const nn::ConvSpec& spec,
                             int32_t* counts, sim::CostCounter* counter);

/// Scratch bytes simd_conv2d draws (one im2col column per group).
std::size_t simd_conv_scratch_bytes(const nn::ConvSpec& spec);

/// Scratch bytes simd_linear draws (one shifted copy of the input row).
std::size_t simd_linear_scratch_bytes(int in_features);

/// Scratch bytes the bit-serial cores draw (accumulators + precomputed pool
/// values + channel-group staging); covers both conv and linear.
std::size_t simd_bitserial_scratch_bytes(int out_ch, int pool_size, int group_size);

}  // namespace bswp::kernels::simd
