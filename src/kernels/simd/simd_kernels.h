// Vectorized + cache-blocked host kernels (HostLane::kSimd).
//
// Three hot paths, each bit-identical to its scalar reference kernel:
//
//   simd_conv2d / simd_linear      int8 conv & fully-connected cores. Each
//                                  output position stages an im2col column of
//                                  zero-point-shifted activations in scratch
//                                  (out-of-bounds taps stage 0, which
//                                  contributes 0*w like the scalar tap skip),
//                                  then a 4-filter register tile runs 16-lane
//                                  int16 multiply-accumulates over the shared
//                                  column (AVX2 _mm256_madd_epi16, or a
//                                  `#pragma omp simd` reduction).
//   simd_bitserial_conv2d/_linear  widened bit-serial LUT accumulate: all S
//                                  pool dot products are precomputed per
//                                  channel-group context (vectorized over the
//                                  contiguous s axis of an input-oriented
//                                  LUT), then the filter loop gathers 8
//                                  output channels per step
//                                  (_mm256_i32gather_epi32 over the packed
//                                  uint8 indices).
//   simd_xnor_conv2d_counts        XNOR popcount over 64-bit words (pairs of
//                                  packed 32-bit lanes fused per popcount).
//
// Bit-identity holds because integer accumulation is associative modulo
// 2^32 — reordering the adds cannot change the wrapped sum — and
// requantization stays scalar per output element. Cost counters tally the
// *scalar MCU reference* events (merged from the closed forms in
// sim/layer_cost.h, which tests pin to the scalar kernels event-for-event),
// so Session::estimate_latency keeps answering "what would this cost on the
// microcontroller" no matter which host lane produced the logits.
//
// All cores draw temporaries exclusively from the caller's ScratchArena;
// the *_scratch_bytes helpers report the exact upper bound the backends
// advertise through KernelBackend::scratch_bytes().
#pragma once

#include "core/arena.h"
#include "kernels/bitserial_conv.h"
#include "kernels/common.h"
#include "pool/lut.h"

namespace bswp::kernels::simd {

/// Vectorized int8 convolution into `out`; arguments mirror
/// kernels::baseline_conv2d plus the scratch arena for the column buffer.
void simd_conv2d(const QView& in, const QTensor& weights, const nn::ConvSpec& spec,
                 const Requant& rq, QView& out, ScratchArena& scratch,
                 sim::CostCounter* counter);

/// Vectorized int8 fully-connected layer into `out`.
void simd_linear(const QView& in, const QTensor& weights, const Requant& rq, QView& out,
                 ScratchArena& scratch, sim::CostCounter* counter);

/// Widened bit-serial pooled convolution into `out`. `variant` only selects
/// which scalar variant's cost counters to tally — every variant computes
/// the same sums, and this core always precomputes the full pool.
void simd_bitserial_conv2d(const QView& in, const PackedIndices& indices,
                           const pool::DotLut& lut, const nn::ConvSpec& spec, const Requant& rq,
                           BitSerialVariant variant, QView& out, ScratchArena& scratch,
                           sim::CostCounter* counter);

/// Widened bit-serial pooled fully-connected layer into `out`.
void simd_bitserial_linear(const QView& in, const PackedIndices& indices,
                           const pool::DotLut& lut, const Requant& rq,
                           BitSerialVariant variant, QView& out, ScratchArena& scratch,
                           sim::CostCounter* counter);

/// 64-bit-word XNOR popcount core; drop-in for binary::xnor_conv2d_counts
/// (same packed layouts, counts and counter tallies).
void simd_xnor_conv2d_counts(const uint32_t* in_bits, int in_ch, int h, int w,
                             const uint32_t* weight_bits, const nn::ConvSpec& spec,
                             int32_t* counts, sim::CostCounter* counter);

// --- batched cores -----------------------------------------------------------
//
// Batch-N forms over arena slots at a fixed per-image element stride (image
// b reads `in.data + b * in_stride`, writes `out.data + b * out_stride`; the
// views describe image 0). The conv/linear cores stage all N im2col columns
// per (position, group) and sweep each 4-wide AVX2 filter tile across the
// whole batch, loading every weight row once per batch instead of once per
// image; the bit-serial cores keep the LUT rows and index gathers hot across
// images. Per-image dot products are unchanged, so results and CostCounter
// tallies are byte-identical to `batch` per-image calls.

/// Batched vectorized int8 convolution (see block comment above).
void simd_conv2d_batch(const QView& in, std::size_t in_stride, int batch, const QTensor& weights,
                       const nn::ConvSpec& spec, const Requant& rq, QView& out,
                       std::size_t out_stride, ScratchArena& scratch, sim::CostCounter* counter);

/// Batched vectorized int8 fully-connected layer (see block comment above).
void simd_linear_batch(const QView& in, std::size_t in_stride, int batch, const QTensor& weights,
                       const Requant& rq, QView& out, std::size_t out_stride,
                       ScratchArena& scratch, sim::CostCounter* counter);

/// Batched widened bit-serial pooled convolution (see block comment above).
void simd_bitserial_conv2d_batch(const QView& in, std::size_t in_stride, int batch,
                                 const PackedIndices& indices, const pool::DotLut& lut,
                                 const nn::ConvSpec& spec, const Requant& rq,
                                 BitSerialVariant variant, QView& out, std::size_t out_stride,
                                 ScratchArena& scratch, sim::CostCounter* counter);

/// Batched widened bit-serial pooled fully-connected layer.
void simd_bitserial_linear_batch(const QView& in, std::size_t in_stride, int batch,
                                 const PackedIndices& indices, const pool::DotLut& lut,
                                 const Requant& rq, BitSerialVariant variant, QView& out,
                                 std::size_t out_stride, ScratchArena& scratch,
                                 sim::CostCounter* counter);

/// Scratch bytes simd_conv2d draws (one im2col column per group).
std::size_t simd_conv_scratch_bytes(const nn::ConvSpec& spec);

/// Scratch bytes simd_linear draws (one shifted copy of the input row).
std::size_t simd_linear_scratch_bytes(int in_features);

/// Scratch bytes the bit-serial cores draw (accumulators + precomputed pool
/// values + channel-group staging); covers both conv and linear.
std::size_t simd_bitserial_scratch_bytes(int out_ch, int pool_size, int group_size);

/// Scratch of the batched conv core (`batch` im2col columns side by side).
std::size_t simd_conv_scratch_bytes_batch(const nn::ConvSpec& spec, int batch);

/// Scratch of the batched linear core (`batch` shifted input rows).
std::size_t simd_linear_scratch_bytes_batch(int in_features, int batch);

/// Scratch of the batched bit-serial linear core (batch-wide accumulator
/// array; pool values are shared across images).
std::size_t simd_bitserial_scratch_bytes_batch(int out_ch, int pool_size, int group_size,
                                               int batch);

/// Scratch of the batched bit-serial conv core: batch-wide accumulators plus
/// the batch's HWC-staged input windows (every channel-group read in the hot
/// context loop becomes one contiguous row instead of G strided loads).
std::size_t simd_bitserial_conv_scratch_bytes_batch(const nn::ConvSpec& spec, int in_h, int in_w,
                                                    int out_ch, int pool_size, int batch);

}  // namespace bswp::kernels::simd
