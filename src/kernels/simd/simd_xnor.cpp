// 64-bit-word XNOR popcount core (HostLane::kSimd).
//
// Identical packed layouts, counts and counter tallies as
// binary::xnor_conv2d_counts; pairs of adjacent 32-bit lane words are fused
// into one uint64 XNOR + popcount per step (with a 32-bit step for an odd
// trailing word), halving the popcount instruction count on 64-bit hosts.
#include "kernels/simd/simd_kernels.h"

#include <bit>

#include "binary/binarized.h"

namespace bswp::kernels::simd {

using sim::Event;

void simd_xnor_conv2d_counts(const uint32_t* in_bits, int in_ch, int h, int w,
                             const uint32_t* weight_bits, const nn::ConvSpec& spec,
                             int32_t* counts, sim::CostCounter* counter) {
  check(in_ch == spec.in_ch, "simd_xnor_conv2d: channel mismatch");
  const int words = binary::binary_pack_words(in_ch);
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const uint32_t tail_mask = in_ch % 32 == 0 ? 0xffffffffu : ((1u << (in_ch % 32)) - 1u);

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      for (int o = 0; o < spec.out_ch; ++o) {
        int matches = 0, total_lanes = 0;
        for (int ky = 0; ky < spec.kh; ++ky) {
          const int iy = oy * spec.stride + ky - spec.pad;
          for (int kx = 0; kx < spec.kw; ++kx) {
            const int ix = ox * spec.stride + kx - spec.pad;
            const bool in_bounds = iy >= 0 && iy < h && ix >= 0 && ix < w;
            const uint32_t* arow =
                in_bounds ? in_bits + (static_cast<std::size_t>(iy) * w + ix) * words : nullptr;
            const uint32_t* wrow =
                weight_bits +
                ((static_cast<std::size_t>(o) * spec.kh + ky) * spec.kw + kx) *
                    static_cast<std::size_t>(words);
            int wd = 0;
            for (; wd + 2 <= words; wd += 2) {
              const uint32_t m_lo = 0xffffffffu;
              const uint32_t m_hi = wd + 1 == words - 1 ? tail_mask : 0xffffffffu;
              const uint64_t m64 = m_lo | (static_cast<uint64_t>(m_hi) << 32);
              // Padding encodes as activation bits 0 (-1); still counted
              // lanes, matching the scalar core.
              const uint64_t a64 =
                  in_bounds ? arow[wd] | (static_cast<uint64_t>(arow[wd + 1]) << 32) : 0u;
              const uint64_t w64 = wrow[wd] | (static_cast<uint64_t>(wrow[wd + 1]) << 32);
              matches += std::popcount(~(a64 ^ w64) & m64);
              total_lanes += std::popcount(m64);
            }
            if (wd < words) {
              const uint32_t mask = wd == words - 1 ? tail_mask : 0xffffffffu;
              const uint32_t a = in_bounds ? arow[wd] : 0u;
              matches += std::popcount(~(a ^ wrow[wd]) & mask);
              total_lanes += std::popcount(mask);
            }
          }
        }
        counts[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] = 2 * matches - total_lanes;
      }
    }
  }
  // Same MCU reference tallies as the scalar core (32-bit word granularity).
  if (counter != nullptr) {
    const uint64_t inner = static_cast<uint64_t>(oh) * ow * spec.out_ch * spec.kh * spec.kw *
                           static_cast<uint64_t>(words);
    counter->add(Event::kSramRead, inner);
    counter->add(Event::kFlashSeqWord, inner);
    counter->add(Event::kAlu, 3 * inner);
    counter->add(Event::kRequant, static_cast<uint64_t>(oh) * ow * spec.out_ch);
    counter->add(Event::kSramWrite, static_cast<uint64_t>(oh) * ow * spec.out_ch);
  }
}

}  // namespace bswp::kernels::simd
