#include "models/zoo.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"

namespace bswp::models {

int scale_channels(int ch, float width, int multiple) {
  const int scaled = static_cast<int>(std::lround(ch * width));
  const int rounded = ((scaled + multiple - 1) / multiple) * multiple;
  return std::max(multiple, rounded);
}

namespace {

/// conv -> [fq] -> relu -> [fq] helper; fake-quant nodes are QAT-only.
int conv_relu(nn::Graph& g, int x, int out_ch, int k, int stride, int pad,
              const ModelOptions& opt, bool with_bn, bool bias) {
  int c = g.conv2d(x, out_ch, k, stride, pad, /*groups=*/1, bias);
  if (with_bn) c = g.batchnorm(c);
  c = g.relu(c);
  if (opt.fake_quant) c = g.fake_quant(c, opt.fake_quant_bits);
  return c;
}

/// ResNet basic block: conv-bn-relu-conv-bn + skip, relu after the add.
int basic_block(nn::Graph& g, int x, int in_ch, int out_ch, int stride,
                const ModelOptions& opt) {
  int c1 = g.conv2d(x, out_ch, 3, stride, 1);
  c1 = g.batchnorm(c1);
  c1 = g.relu(c1);
  if (opt.fake_quant) c1 = g.fake_quant(c1, opt.fake_quant_bits);
  int c2 = g.conv2d(c1, out_ch, 3, 1, 1);
  c2 = g.batchnorm(c2);
  int skip = x;
  if (stride != 1 || in_ch != out_ch) {
    skip = g.conv2d(x, out_ch, 1, stride, 0);
    skip = g.batchnorm(skip);
  }
  int a = g.add(c2, skip);
  a = g.relu(a);
  if (opt.fake_quant) a = g.fake_quant(a, opt.fake_quant_bits);
  return a;
}

}  // namespace

nn::Graph build_resnet(const ModelOptions& opt, const std::vector<int>& blocks,
                       const std::vector<int>& channels) {
  check(blocks.size() == channels.size(), "resnet: blocks/channels size mismatch");
  nn::Graph g;
  int x = g.input(opt.in_channels, opt.image_size, opt.image_size);
  int ch0 = scale_channels(channels[0], opt.width);
  x = conv_relu(g, x, ch0, 3, 1, 1, opt, /*with_bn=*/true, /*bias=*/false);
  int in_ch = ch0;
  for (std::size_t stage = 0; stage < blocks.size(); ++stage) {
    const int out_ch = scale_channels(channels[stage], opt.width);
    for (int b = 0; b < blocks[stage]; ++b) {
      const int stride = (stage > 0 && b == 0) ? 2 : 1;
      x = basic_block(g, x, in_ch, out_ch, stride, opt);
      in_ch = out_ch;
    }
  }
  x = g.global_avgpool(x);
  g.linear(x, opt.num_classes, /*bias=*/true, "classifier");
  return g;
}

nn::Graph build_resnet_s(const ModelOptions& opt) {
  return build_resnet(opt, {2, 2, 2}, {16, 32, 64});
}

nn::Graph build_resnet10(const ModelOptions& opt) {
  return build_resnet(opt, {2, 2}, {64, 128});
}

nn::Graph build_resnet14(const ModelOptions& opt) {
  return build_resnet(opt, {2, 2, 2}, {64, 128, 256});
}

nn::Graph build_tinyconv(const ModelOptions& opt) {
  // The CMSIS-NN CIFAR-10 example: conv5x5(32) -> pool -> conv5x5(32) ->
  // pool -> conv5x5(64) -> pool -> FC. Convs carry biases (no BN).
  nn::Graph g;
  int x = g.input(opt.in_channels, opt.image_size, opt.image_size);
  const int c1 = scale_channels(32, opt.width);
  const int c2 = scale_channels(32, opt.width);
  const int c3 = scale_channels(64, opt.width);
  x = conv_relu(g, x, c1, 5, 1, 2, opt, /*with_bn=*/false, /*bias=*/true);
  x = g.maxpool(x, 2, 2);
  x = conv_relu(g, x, c2, 5, 1, 2, opt, /*with_bn=*/false, /*bias=*/true);
  x = g.maxpool(x, 2, 2);
  x = conv_relu(g, x, c3, 5, 1, 2, opt, /*with_bn=*/false, /*bias=*/true);
  x = g.maxpool(x, 2, 2);
  // Global-average head (the paper's Quickdraw-100 variant keeps the FC
  // small; a flattened 5x5 head would triple TinyConv's Table 3 parameter
  // count at 100 classes).
  x = g.global_avgpool(x);
  g.linear(x, opt.num_classes, /*bias=*/true, "classifier");
  return g;
}

nn::Graph build_mobilenet_v2(const ModelOptions& opt) {
  // CIFAR-style MobileNet-v2: stride-2 stages moved later so 32x32 inputs
  // keep enough resolution. Only the 1x1 point-wise convs are z-poolable;
  // depth-wise convs stay uncompressed (paper §5.1).
  nn::Graph g;
  int x = g.input(opt.in_channels, opt.image_size, opt.image_size);
  const int stem = scale_channels(32, opt.width);
  // Stride-2 stem (as in the ImageNet definition): the early expanded
  // feature maps would otherwise exceed microcontroller SRAM budgets.
  x = conv_relu(g, x, stem, 3, 2, 1, opt, /*with_bn=*/true, /*bias=*/false);
  int in_ch = stem;

  struct Setting {
    int expand, out_ch, repeat, stride;
  };
  // (t, c, n, s) from the MobileNet-v2 paper, CIFAR strides.
  const Setting settings[] = {
      {1, 16, 1, 1}, {6, 24, 2, 1}, {6, 32, 3, 2}, {6, 64, 4, 2},
      {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
  };
  for (const auto& s : settings) {
    const int out_ch = scale_channels(s.out_ch, opt.width);
    for (int r = 0; r < s.repeat; ++r) {
      const int stride = r == 0 ? s.stride : 1;
      const int hidden = in_ch * s.expand;
      int y = x;
      if (s.expand != 1) {
        y = g.conv2d(y, hidden, 1, 1, 0);  // point-wise expand (poolable)
        y = g.batchnorm(y);
        y = g.relu(y);
        if (opt.fake_quant) y = g.fake_quant(y, opt.fake_quant_bits);
      }
      y = g.conv2d(y, hidden, 3, stride, 1, /*groups=*/hidden);  // depth-wise
      y = g.batchnorm(y);
      y = g.relu(y);
      if (opt.fake_quant) y = g.fake_quant(y, opt.fake_quant_bits);
      y = g.conv2d(y, out_ch, 1, 1, 0);  // point-wise project (poolable)
      y = g.batchnorm(y);
      if (stride == 1 && in_ch == out_ch) y = g.add(y, x);
      x = y;
      in_ch = out_ch;
    }
  }
  const int head = scale_channels(1280, opt.width, 8);
  x = conv_relu(g, x, head, 1, 1, 0, opt, /*with_bn=*/true, /*bias=*/false);
  x = g.global_avgpool(x);
  g.linear(x, opt.num_classes, /*bias=*/true, "classifier");
  return g;
}

nn::Graph build_binarized_tinyconv(const ModelOptions& opt) {
  nn::Graph g;
  int x = g.input(opt.in_channels, opt.image_size, opt.image_size);
  const int c1 = scale_channels(32, opt.width);
  const int c2 = scale_channels(32, opt.width);
  const int c3 = scale_channels(64, opt.width);
  // First layer stays full precision (standard practice in BNN literature,
  // matching the weight-pool setup which also keeps the first layer dense).
  // Activations binarize through conv -> BN -> sign: BN centers the
  // pre-binarization distribution so the sign carries information (a sign
  // after ReLU would be constant +1).
  x = g.conv2d(x, c1, 5, 1, 2, 1, /*bias=*/false);
  x = g.batchnorm(x);
  x = g.maxpool(x, 2, 2);
  x = g.binarize(x);
  x = g.conv2d(x, c2, 5, 1, 2, 1, /*bias=*/false);
  x = g.batchnorm(x);
  x = g.maxpool(x, 2, 2);
  x = g.binarize(x);
  x = g.conv2d(x, c3, 5, 1, 2, 1, /*bias=*/false);
  x = g.batchnorm(x);
  x = g.maxpool(x, 2, 2);
  x = g.relu(x);
  x = g.global_avgpool(x);
  g.linear(x, opt.num_classes, /*bias=*/true, "classifier");
  return g;
}

namespace {

void validate(const TokenLmOptions& opt, const char* who) {
  check(opt.vocab >= 2, std::string(who) + ": vocab must be >= 2");
  check(opt.embed_dim >= 1, std::string(who) + ": embed_dim must be >= 1");
  check(opt.state_dim >= 1, std::string(who) + ": state_dim must be >= 1");
  check(opt.hidden_dim >= 1, std::string(who) + ": hidden_dim must be >= 1");
  check(opt.state_clip > 0.0f, std::string(who) + ": state_clip must be > 0");
}

float clip_state(float v, float clip) { return std::clamp(v, -clip, clip); }

}  // namespace

nn::Graph build_token_lm(const TokenLmOptions& opt) {
  validate(opt, "build_token_lm");
  nn::Graph g;
  int x = g.input(opt.embed_dim + opt.state_dim, 1, 1);
  x = g.flatten(x);
  // Reset / update / candidate: ReLU-fused linears (M-bit activations, the
  // shape the bit-serial and SIMD linear kernels serve); the add mixes the
  // direct update path with the two-layer candidate path and its trailing
  // relu fuses into the add.
  int r = g.relu(g.linear(x, opt.hidden_dim, /*bias=*/true, "gru_reset"));
  int z = g.relu(g.linear(x, opt.hidden_dim, /*bias=*/true, "gru_update"));
  int c = g.relu(g.linear(r, opt.hidden_dim, /*bias=*/true, "gru_cand"));
  int m = g.relu(g.add(z, c));
  // Unfused head: AssignActivationQuant's classifier rule gives it 16-bit
  // signed output, so both the logits argmax and the re-fed state slice are
  // carried at int16 precision.
  g.linear(m, opt.vocab + opt.state_dim, /*bias=*/true, "lm_head");
  return g;
}

std::vector<float> token_embedding(const TokenLmOptions& opt, int token) {
  validate(opt, "token_embedding");
  check(token >= 0 && token < opt.vocab, "token_embedding: token out of range");
  // Seed mixing mirrors SplitMix64's increment so adjacent tokens land in
  // unrelated streams; Rng itself is fixed-algorithm (xoshiro256**), so the
  // table is identical on every platform without being stored anywhere.
  Rng rng(opt.embed_seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(token + 1));
  std::vector<float> e(static_cast<std::size_t>(opt.embed_dim));
  for (float& v : e) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return e;
}

Tensor token_lm_input(const TokenLmOptions& opt, int token, const std::vector<float>* state) {
  const std::vector<float> emb = token_embedding(opt, token);
  Tensor in({opt.embed_dim + opt.state_dim, 1, 1});
  std::copy(emb.begin(), emb.end(), in.data());
  if (state != nullptr && !state->empty()) {
    check(static_cast<int>(state->size()) == opt.state_dim,
          "token_lm_input: state size mismatch");
    for (int h = 0; h < opt.state_dim; ++h) {
      in[static_cast<std::size_t>(opt.embed_dim + h)] =
          clip_state((*state)[static_cast<std::size_t>(h)], opt.state_clip);
    }
  }
  return in;
}

int token_lm_decode(const TokenLmOptions& opt, const QTensor& out,
                    std::vector<float>* next_state) {
  check(static_cast<int>(out.size()) == opt.vocab + opt.state_dim,
        "token_lm_decode: output size mismatch");
  // Greedy argmax on the raw int16 logits (scale > 0 and a shared zero point
  // make raw order == real order); lowest index wins ties, so the decode is
  // a pure function of the integer output.
  int best = 0;
  for (int v = 1; v < opt.vocab; ++v) {
    if (out.data[static_cast<std::size_t>(v)] > out.data[static_cast<std::size_t>(best)]) {
      best = v;
    }
  }
  if (next_state != nullptr) {
    next_state->resize(static_cast<std::size_t>(opt.state_dim));
    for (int h = 0; h < opt.state_dim; ++h) {
      (*next_state)[static_cast<std::size_t>(h)] =
          clip_state(out.real(static_cast<std::size_t>(opt.vocab + h)), opt.state_clip);
    }
  }
  return best;
}

TokenLmRollout::TokenLmRollout(nn::Graph& graph, const TokenLmOptions& opt, int sequences,
                               int steps, std::uint64_t seed)
    : opt_(opt) {
  validate(opt, "TokenLmRollout");
  check(sequences >= 1 && steps >= 1, "TokenLmRollout: sequences and steps must be >= 1");
  samples_.reserve(static_cast<std::size_t>(sequences) * static_cast<std::size_t>(steps));
  labels_.reserve(samples_.capacity());
  Rng rng(seed);
  const int in_ch = opt.embed_dim + opt.state_dim;
  for (int s = 0; s < sequences; ++s) {
    std::vector<float> state;  // empty = zero initial state
    int token = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(opt.vocab)));
    for (int t = 0; t < steps; ++t) {
      Tensor in = token_lm_input(opt, token, &state);
      Tensor x({1, in_ch, 1, 1}, in.vec());
      const Tensor& out = graph.forward(x, /*training=*/false);
      int best = 0;
      for (int v = 1; v < opt.vocab; ++v) {
        if (out[static_cast<std::size_t>(v)] > out[static_cast<std::size_t>(best)]) best = v;
      }
      state.resize(static_cast<std::size_t>(opt.state_dim));
      for (int h = 0; h < opt.state_dim; ++h) {
        state[static_cast<std::size_t>(h)] =
            clip_state(out[static_cast<std::size_t>(opt.vocab + h)], opt.state_clip);
      }
      samples_.push_back(std::move(in));
      labels_.push_back(best);
      // Alternate greedy continuation with random restarts so the recorded
      // states cover both attractor orbits and fresh-context transients.
      token = (t % 2 == 0) ? best
                           : static_cast<int>(
                                 rng.uniform_int(static_cast<std::uint64_t>(opt.vocab)));
    }
  }
}

int TokenLmRollout::sample(int index, float* out) const {
  const Tensor& t = samples_.at(static_cast<std::size_t>(index));
  std::copy(t.vec().begin(), t.vec().end(), out);
  return labels_.at(static_cast<std::size_t>(index));
}

std::vector<NamedModel> paper_models() {
  return {
      {"TinyConv", build_tinyconv, /*on_cifar=*/false},
      {"ResNet-s", build_resnet_s, true},
      {"ResNet-10", build_resnet10, true},
      {"ResNet-14", build_resnet14, true},
      {"MobileNet-v2", build_mobilenet_v2, /*on_cifar=*/false},
  };
}

}  // namespace bswp::models
