#include "models/zoo.h"

#include <algorithm>
#include <cmath>

namespace bswp::models {

int scale_channels(int ch, float width, int multiple) {
  const int scaled = static_cast<int>(std::lround(ch * width));
  const int rounded = ((scaled + multiple - 1) / multiple) * multiple;
  return std::max(multiple, rounded);
}

namespace {

/// conv -> [fq] -> relu -> [fq] helper; fake-quant nodes are QAT-only.
int conv_relu(nn::Graph& g, int x, int out_ch, int k, int stride, int pad,
              const ModelOptions& opt, bool with_bn, bool bias) {
  int c = g.conv2d(x, out_ch, k, stride, pad, /*groups=*/1, bias);
  if (with_bn) c = g.batchnorm(c);
  c = g.relu(c);
  if (opt.fake_quant) c = g.fake_quant(c, opt.fake_quant_bits);
  return c;
}

/// ResNet basic block: conv-bn-relu-conv-bn + skip, relu after the add.
int basic_block(nn::Graph& g, int x, int in_ch, int out_ch, int stride,
                const ModelOptions& opt) {
  int c1 = g.conv2d(x, out_ch, 3, stride, 1);
  c1 = g.batchnorm(c1);
  c1 = g.relu(c1);
  if (opt.fake_quant) c1 = g.fake_quant(c1, opt.fake_quant_bits);
  int c2 = g.conv2d(c1, out_ch, 3, 1, 1);
  c2 = g.batchnorm(c2);
  int skip = x;
  if (stride != 1 || in_ch != out_ch) {
    skip = g.conv2d(x, out_ch, 1, stride, 0);
    skip = g.batchnorm(skip);
  }
  int a = g.add(c2, skip);
  a = g.relu(a);
  if (opt.fake_quant) a = g.fake_quant(a, opt.fake_quant_bits);
  return a;
}

}  // namespace

nn::Graph build_resnet(const ModelOptions& opt, const std::vector<int>& blocks,
                       const std::vector<int>& channels) {
  check(blocks.size() == channels.size(), "resnet: blocks/channels size mismatch");
  nn::Graph g;
  int x = g.input(opt.in_channels, opt.image_size, opt.image_size);
  int ch0 = scale_channels(channels[0], opt.width);
  x = conv_relu(g, x, ch0, 3, 1, 1, opt, /*with_bn=*/true, /*bias=*/false);
  int in_ch = ch0;
  for (std::size_t stage = 0; stage < blocks.size(); ++stage) {
    const int out_ch = scale_channels(channels[stage], opt.width);
    for (int b = 0; b < blocks[stage]; ++b) {
      const int stride = (stage > 0 && b == 0) ? 2 : 1;
      x = basic_block(g, x, in_ch, out_ch, stride, opt);
      in_ch = out_ch;
    }
  }
  x = g.global_avgpool(x);
  g.linear(x, opt.num_classes, /*bias=*/true, "classifier");
  return g;
}

nn::Graph build_resnet_s(const ModelOptions& opt) {
  return build_resnet(opt, {2, 2, 2}, {16, 32, 64});
}

nn::Graph build_resnet10(const ModelOptions& opt) {
  return build_resnet(opt, {2, 2}, {64, 128});
}

nn::Graph build_resnet14(const ModelOptions& opt) {
  return build_resnet(opt, {2, 2, 2}, {64, 128, 256});
}

nn::Graph build_tinyconv(const ModelOptions& opt) {
  // The CMSIS-NN CIFAR-10 example: conv5x5(32) -> pool -> conv5x5(32) ->
  // pool -> conv5x5(64) -> pool -> FC. Convs carry biases (no BN).
  nn::Graph g;
  int x = g.input(opt.in_channels, opt.image_size, opt.image_size);
  const int c1 = scale_channels(32, opt.width);
  const int c2 = scale_channels(32, opt.width);
  const int c3 = scale_channels(64, opt.width);
  x = conv_relu(g, x, c1, 5, 1, 2, opt, /*with_bn=*/false, /*bias=*/true);
  x = g.maxpool(x, 2, 2);
  x = conv_relu(g, x, c2, 5, 1, 2, opt, /*with_bn=*/false, /*bias=*/true);
  x = g.maxpool(x, 2, 2);
  x = conv_relu(g, x, c3, 5, 1, 2, opt, /*with_bn=*/false, /*bias=*/true);
  x = g.maxpool(x, 2, 2);
  // Global-average head (the paper's Quickdraw-100 variant keeps the FC
  // small; a flattened 5x5 head would triple TinyConv's Table 3 parameter
  // count at 100 classes).
  x = g.global_avgpool(x);
  g.linear(x, opt.num_classes, /*bias=*/true, "classifier");
  return g;
}

nn::Graph build_mobilenet_v2(const ModelOptions& opt) {
  // CIFAR-style MobileNet-v2: stride-2 stages moved later so 32x32 inputs
  // keep enough resolution. Only the 1x1 point-wise convs are z-poolable;
  // depth-wise convs stay uncompressed (paper §5.1).
  nn::Graph g;
  int x = g.input(opt.in_channels, opt.image_size, opt.image_size);
  const int stem = scale_channels(32, opt.width);
  // Stride-2 stem (as in the ImageNet definition): the early expanded
  // feature maps would otherwise exceed microcontroller SRAM budgets.
  x = conv_relu(g, x, stem, 3, 2, 1, opt, /*with_bn=*/true, /*bias=*/false);
  int in_ch = stem;

  struct Setting {
    int expand, out_ch, repeat, stride;
  };
  // (t, c, n, s) from the MobileNet-v2 paper, CIFAR strides.
  const Setting settings[] = {
      {1, 16, 1, 1}, {6, 24, 2, 1}, {6, 32, 3, 2}, {6, 64, 4, 2},
      {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
  };
  for (const auto& s : settings) {
    const int out_ch = scale_channels(s.out_ch, opt.width);
    for (int r = 0; r < s.repeat; ++r) {
      const int stride = r == 0 ? s.stride : 1;
      const int hidden = in_ch * s.expand;
      int y = x;
      if (s.expand != 1) {
        y = g.conv2d(y, hidden, 1, 1, 0);  // point-wise expand (poolable)
        y = g.batchnorm(y);
        y = g.relu(y);
        if (opt.fake_quant) y = g.fake_quant(y, opt.fake_quant_bits);
      }
      y = g.conv2d(y, hidden, 3, stride, 1, /*groups=*/hidden);  // depth-wise
      y = g.batchnorm(y);
      y = g.relu(y);
      if (opt.fake_quant) y = g.fake_quant(y, opt.fake_quant_bits);
      y = g.conv2d(y, out_ch, 1, 1, 0);  // point-wise project (poolable)
      y = g.batchnorm(y);
      if (stride == 1 && in_ch == out_ch) y = g.add(y, x);
      x = y;
      in_ch = out_ch;
    }
  }
  const int head = scale_channels(1280, opt.width, 8);
  x = conv_relu(g, x, head, 1, 1, 0, opt, /*with_bn=*/true, /*bias=*/false);
  x = g.global_avgpool(x);
  g.linear(x, opt.num_classes, /*bias=*/true, "classifier");
  return g;
}

nn::Graph build_binarized_tinyconv(const ModelOptions& opt) {
  nn::Graph g;
  int x = g.input(opt.in_channels, opt.image_size, opt.image_size);
  const int c1 = scale_channels(32, opt.width);
  const int c2 = scale_channels(32, opt.width);
  const int c3 = scale_channels(64, opt.width);
  // First layer stays full precision (standard practice in BNN literature,
  // matching the weight-pool setup which also keeps the first layer dense).
  // Activations binarize through conv -> BN -> sign: BN centers the
  // pre-binarization distribution so the sign carries information (a sign
  // after ReLU would be constant +1).
  x = g.conv2d(x, c1, 5, 1, 2, 1, /*bias=*/false);
  x = g.batchnorm(x);
  x = g.maxpool(x, 2, 2);
  x = g.binarize(x);
  x = g.conv2d(x, c2, 5, 1, 2, 1, /*bias=*/false);
  x = g.batchnorm(x);
  x = g.maxpool(x, 2, 2);
  x = g.binarize(x);
  x = g.conv2d(x, c3, 5, 1, 2, 1, /*bias=*/false);
  x = g.batchnorm(x);
  x = g.maxpool(x, 2, 2);
  x = g.relu(x);
  x = g.global_avgpool(x);
  g.linear(x, opt.num_classes, /*bias=*/true, "classifier");
  return g;
}

std::vector<NamedModel> paper_models() {
  return {
      {"TinyConv", build_tinyconv, /*on_cifar=*/false},
      {"ResNet-s", build_resnet_s, true},
      {"ResNet-10", build_resnet10, true},
      {"ResNet-14", build_resnet14, true},
      {"MobileNet-v2", build_mobilenet_v2, /*on_cifar=*/false},
  };
}

}  // namespace bswp::models
