// Model zoo: the five networks of the paper's evaluation (§5.1).
//
//   TinyConv     — the CMSIS-NN CIFAR example network (3 conv5x5 + FC)
//   ResNet-s     — scaled-down ResNet-18 from MLPerf Tiny (3 stages @ 16/32/64)
//   ResNet-10    — ResNet-18 with the last two blocks truncated (2 stages @ 64/128)
//   ResNet-14    — ResNet-18 with the last block truncated (3 stages @ 64/128/256)
//   MobileNet-v2 — CIFAR-style MNv2 (inverted residual bottlenecks)
//
// Each builder accepts a width multiplier: width = 1 gives the paper-scale
// network (used for Table 3 storage and Table 7 latency, where parameter
// counts must match the paper); width < 1 gives a trainable variant for the
// accuracy experiments on the synthetic datasets (channels are rounded to
// multiples of the pool group size so z-pooling stays exact).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "nn/graph.h"

namespace bswp::models {

struct ModelOptions {
  int in_channels = 3;
  int image_size = 32;
  int num_classes = 10;
  float width = 1.0f;
  /// Insert activation fake-quant nodes after every ReLU (QAT experiments).
  bool fake_quant = false;
  int fake_quant_bits = 8;
};

nn::Graph build_tinyconv(const ModelOptions& opt);
nn::Graph build_resnet_s(const ModelOptions& opt);
nn::Graph build_resnet10(const ModelOptions& opt);
nn::Graph build_resnet14(const ModelOptions& opt);
nn::Graph build_mobilenet_v2(const ModelOptions& opt);

/// Generic ResNet builder used by the three ResNet variants:
/// `blocks[i]` basic blocks at `channels[i]`, stride 2 between stages.
nn::Graph build_resnet(const ModelOptions& opt, const std::vector<int>& blocks,
                       const std::vector<int>& channels);

/// Binarized TinyConv for the §5.5 comparison: weights are projected to
/// per-filter-scaled signs after every step (use binary::binarize_weights as
/// the trainer post-step hook) and activations pass through sign nodes.
nn::Graph build_binarized_tinyconv(const ModelOptions& opt);

struct NamedModel {
  std::string name;
  std::function<nn::Graph(const ModelOptions&)> build;
  bool on_cifar = true;  // paper: ResNets on CIFAR-10, TinyConv/MNv2 on Quickdraw
};

/// The paper's five network-dataset combinations, in Table 3 order.
std::vector<NamedModel> paper_models();

/// Round a scaled channel count to a multiple of `multiple` (>= multiple).
int scale_channels(int ch, float width, int multiple = 8);

}  // namespace bswp::models
