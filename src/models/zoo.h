// Model zoo: the five networks of the paper's evaluation (§5.1).
//
//   TinyConv     — the CMSIS-NN CIFAR example network (3 conv5x5 + FC)
//   ResNet-s     — scaled-down ResNet-18 from MLPerf Tiny (3 stages @ 16/32/64)
//   ResNet-10    — ResNet-18 with the last two blocks truncated (2 stages @ 64/128)
//   ResNet-14    — ResNet-18 with the last block truncated (3 stages @ 64/128/256)
//   MobileNet-v2 — CIFAR-style MNv2 (inverted residual bottlenecks)
//
// Each builder accepts a width multiplier: width = 1 gives the paper-scale
// network (used for Table 3 storage and Table 7 latency, where parameter
// counts must match the paper); width < 1 gives a trainable variant for the
// accuracy experiments on the synthetic datasets (channels are rounded to
// multiples of the pool group size so z-pooling stays exact).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "data/synthetic.h"
#include "nn/graph.h"

namespace bswp::models {

struct ModelOptions {
  int in_channels = 3;
  int image_size = 32;
  int num_classes = 10;
  float width = 1.0f;
  /// Insert activation fake-quant nodes after every ReLU (QAT experiments).
  bool fake_quant = false;
  int fake_quant_bits = 8;
};

nn::Graph build_tinyconv(const ModelOptions& opt);
nn::Graph build_resnet_s(const ModelOptions& opt);
nn::Graph build_resnet10(const ModelOptions& opt);
nn::Graph build_resnet14(const ModelOptions& opt);
nn::Graph build_mobilenet_v2(const ModelOptions& opt);

/// Generic ResNet builder used by the three ResNet variants:
/// `blocks[i]` basic blocks at `channels[i]`, stride 2 between stages.
nn::Graph build_resnet(const ModelOptions& opt, const std::vector<int>& blocks,
                       const std::vector<int>& channels);

/// Binarized TinyConv for the §5.5 comparison: weights are projected to
/// per-filter-scaled signs after every step (use binary::binarize_weights as
/// the trainer post-step hook) and activations pass through sign nodes.
nn::Graph build_binarized_tinyconv(const ModelOptions& opt);

struct NamedModel {
  std::string name;
  std::function<nn::Graph(const ModelOptions&)> build;
  bool on_cifar = true;  // paper: ResNets on CIFAR-10, TinyConv/MNv2 on Quickdraw
};

/// The paper's five network-dataset combinations, in Table 3 order.
std::vector<NamedModel> paper_models();

/// Round a scaled channel count to a multiple of `multiple` (>= multiple).
int scale_channels(int ch, float width, int multiple = 8);

// --- token language model (autoregressive serving workload) ----------------
//
// A tiny GRU-style recurrent LM expressed entirely with ops the PlanGraph
// pipeline already lowers (kLinear / kAdd / kReLU / kFlatten), so one decode
// step compiles and runs on the baseline / bit-serial / SIMD backends
// unchanged. The graph has a single input and a single output, so the
// recurrence is carried *around* the network by the caller:
//
//   input  [embed_dim + state_dim] : token embedding ‖ previous state
//   output [vocab + state_dim]     : next-token logits ‖ next state
//
//   x  ── reset ──┐
//    \            candidate ──┐
//     `─ update ──────────────┴─ add ─ relu ─ lm_head
//
// `reset`/`update`/`candidate` are ReLU-fused linears (M-bit activations,
// z-poolable); the residual add mixes the direct update path with the
// two-layer candidate path (the additive stand-in for GRU gating — true
// sigmoid gates need elementwise multiply, which the integer pipeline does
// not model). `lm_head` is an unfused linear, so AssignActivationQuant gives
// it the 16-bit signed classifier quantization: logits argmax deterministic
// and the re-fed state carried at int16 precision.
//
// Everything downstream is deterministic integer code, so greedy decode is
// bit-identical across runs, worker counts and scalar-vs-SIMD lanes — the
// property tests/test_sessions.cpp pins against a golden token fixture.
struct TokenLmOptions {
  int vocab = 64;       // V: token id range [0, vocab)
  int embed_dim = 16;   // E: token embedding width
  int state_dim = 32;   // H: recurrent state width
  int hidden_dim = 32;  // width of the reset/update/candidate layers
  /// Recurrent state is clamped to [-state_clip, state_clip] before being
  /// re-fed (by token_lm_input); keeps the float rollout used for
  /// calibration and the served recurrence in the same bounded range, so
  /// neither can diverge from the other.
  float state_clip = 4.0f;
  /// Seed of the deterministic embedding table (see token_embedding).
  std::uint64_t embed_seed = 0x70ceb5ULL;
};

/// Build the decode-step graph described above. Weights are uninitialized —
/// call Graph::init_weights (a fixed seed makes the whole LM reproducible).
nn::Graph build_token_lm(const TokenLmOptions& opt);

/// Deterministic embedding of `token`: opt.embed_dim uniforms in [-1, 1)
/// drawn from an Rng seeded by (embed_seed, token). A pure function — no
/// stored table — so every process that agrees on TokenLmOptions agrees on
/// the embedding, which is what makes golden token fixtures portable.
std::vector<float> token_embedding(const TokenLmOptions& opt, int token);

/// Assemble one decode-step input: [embedding(token) ‖ clamp(state)] as the
/// {E+H, 1, 1} CHW tensor the compiled input plan expects. `state` may be
/// null or empty for the zero initial state; otherwise it must hold
/// opt.state_dim floats.
Tensor token_lm_input(const TokenLmOptions& opt, int token, const std::vector<float>* state);

/// Split one decode-step output: greedy argmax over the logits slice
/// (raw int16 comparison, lowest index wins ties) and the dequantized,
/// clamped next state written to `next_state` (resized to opt.state_dim;
/// pass null to discard). Returns the argmax token.
int token_lm_decode(const TokenLmOptions& opt, const QTensor& out,
                    std::vector<float>* next_state);

/// Calibration dataset for the token LM: float-graph rollouts over
/// Rng-driven token streams, recording every decode-step input the
/// recurrence actually visits (embedding ‖ evolved state), so activation
/// ranges cover the states the served model will see rather than just the
/// zero-state first step. Labels are the float-graph greedy next token.
class TokenLmRollout : public data::Dataset {
 public:
  /// Rolls `sequences` sequences of `steps` steps each through `graph`
  /// (weights must be initialized) and materializes the inputs.
  TokenLmRollout(nn::Graph& graph, const TokenLmOptions& opt, int sequences, int steps,
                 std::uint64_t seed);

  int size() const override { return static_cast<int>(samples_.size()); }
  int num_classes() const override { return opt_.vocab; }
  int channels() const override { return opt_.embed_dim + opt_.state_dim; }
  int height() const override { return 1; }
  int width() const override { return 1; }
  int sample(int index, float* out) const override;

 private:
  TokenLmOptions opt_;
  std::vector<Tensor> samples_;
  std::vector<int> labels_;
};

}  // namespace bswp::models
