#include "nn/graph.h"

#include <algorithm>
#include <cmath>

namespace bswp::nn {

const char* op_name(Op op) {
  switch (op) {
    case Op::kInput: return "input";
    case Op::kConv2d: return "conv2d";
    case Op::kLinear: return "linear";
    case Op::kReLU: return "relu";
    case Op::kMaxPool: return "maxpool";
    case Op::kGlobalAvgPool: return "gap";
    case Op::kAdd: return "add";
    case Op::kFlatten: return "flatten";
    case Op::kBatchNorm: return "batchnorm";
    case Op::kFakeQuant: return "fakequant";
    case Op::kBinarize: return "binarize";
  }
  return "?";
}

int Graph::add_node(Node n) {
  for (int in : n.inputs) {
    check(in >= 0 && in < num_nodes(), "graph: input node does not exist yet");
  }
  n.out_chw = infer_shape(n);
  nodes_.push_back(std::move(n));
  return num_nodes() - 1;
}

std::vector<int> Graph::infer_shape(const Node& n) const {
  auto in_shape = [&](int i) { return nodes_[static_cast<std::size_t>(n.inputs[i])].out_chw; };
  switch (n.op) {
    case Op::kInput:
      return n.out_chw;  // set by input()
    case Op::kConv2d: {
      auto s = in_shape(0);
      check(s.size() == 3, "conv2d input must be CHW");
      check(s[0] == n.conv.in_ch, "conv2d: in_ch mismatch");
      return {n.conv.out_ch, n.conv.out_h(s[1]), n.conv.out_w(s[2])};
    }
    case Op::kLinear: {
      auto s = in_shape(0);
      check(s.size() == 1, "linear input must be flat");
      return {n.weight.dim(0)};
    }
    case Op::kReLU:
    case Op::kBatchNorm:
    case Op::kFakeQuant:
    case Op::kBinarize:
      return in_shape(0);
    case Op::kMaxPool: {
      auto s = in_shape(0);
      return {s[0], (s[1] - n.pool_k) / n.pool_stride + 1, (s[2] - n.pool_k) / n.pool_stride + 1};
    }
    case Op::kGlobalAvgPool: {
      auto s = in_shape(0);
      return {s[0]};
    }
    case Op::kAdd: {
      auto a = in_shape(0), b = in_shape(1);
      check(a == b, "add: shape mismatch");
      return a;
    }
    case Op::kFlatten: {
      auto s = in_shape(0);
      int total = 1;
      for (int d : s) total *= d;
      return {total};
    }
  }
  return {};
}

int Graph::input(int c, int h, int w) {
  check(nodes_.empty(), "graph: input must be the first node");
  Node n;
  n.op = Op::kInput;
  n.name = "input";
  n.out_chw = {c, h, w};
  nodes_.push_back(std::move(n));
  return 0;
}

int Graph::conv2d(int in, int out_ch, int k, int stride, int pad, int groups, bool bias,
                  const std::string& name) {
  check(in >= 0 && in < num_nodes(), "conv2d: input node does not exist yet");
  Node n;
  n.op = Op::kConv2d;
  n.inputs = {in};
  const auto& s = nodes_.at(static_cast<std::size_t>(in)).out_chw;
  check(s.size() == 3, "conv2d: input node is not spatial");
  n.conv = ConvSpec{s[0], out_ch, k, k, stride, pad, groups};
  n.weight = Tensor(n.conv.weight_shape());
  n.wgrad = Tensor(n.conv.weight_shape());
  n.has_bias = bias;
  if (bias) {
    n.bias = Tensor({out_ch});
    n.bgrad = Tensor({out_ch});
  }
  n.name = name.empty() ? ("conv" + std::to_string(num_nodes())) : name;
  return add_node(std::move(n));
}

int Graph::linear(int in, int out_features, bool bias, const std::string& name) {
  check(in >= 0 && in < num_nodes(), "linear: input node does not exist yet");
  Node n;
  n.op = Op::kLinear;
  n.inputs = {in};
  const auto& s = nodes_.at(static_cast<std::size_t>(in)).out_chw;
  check(s.size() == 1, "linear: flatten or pool the input first");
  n.weight = Tensor({out_features, s[0]});
  n.wgrad = Tensor({out_features, s[0]});
  n.has_bias = bias;
  if (bias) {
    n.bias = Tensor({out_features});
    n.bgrad = Tensor({out_features});
  }
  n.name = name.empty() ? ("fc" + std::to_string(num_nodes())) : name;
  return add_node(std::move(n));
}

int Graph::relu(int in) {
  Node n;
  n.op = Op::kReLU;
  n.inputs = {in};
  n.name = "relu";
  return add_node(std::move(n));
}

int Graph::maxpool(int in, int k, int stride) {
  Node n;
  n.op = Op::kMaxPool;
  n.inputs = {in};
  n.pool_k = k;
  n.pool_stride = stride;
  n.name = "maxpool";
  return add_node(std::move(n));
}

int Graph::global_avgpool(int in) {
  Node n;
  n.op = Op::kGlobalAvgPool;
  n.inputs = {in};
  n.name = "gap";
  return add_node(std::move(n));
}

int Graph::add(int a, int b) {
  Node n;
  n.op = Op::kAdd;
  n.inputs = {a, b};
  n.name = "add";
  return add_node(std::move(n));
}

int Graph::flatten(int in) {
  Node n;
  n.op = Op::kFlatten;
  n.inputs = {in};
  n.name = "flatten";
  return add_node(std::move(n));
}

int Graph::batchnorm(int in, const std::string& name) {
  check(in >= 0 && in < num_nodes(), "batchnorm: input node does not exist yet");
  Node n;
  n.op = Op::kBatchNorm;
  n.inputs = {in};
  const auto& s = nodes_.at(static_cast<std::size_t>(in)).out_chw;
  check(s.size() == 3, "batchnorm: input must be spatial");
  n.bn = BatchNormState(s[0]);
  n.ggrad = Tensor({s[0]});
  n.betagrad = Tensor({s[0]});
  n.name = name.empty() ? ("bn" + std::to_string(num_nodes())) : name;
  return add_node(std::move(n));
}

int Graph::fake_quant(int in, int bits) {
  Node n;
  n.op = Op::kFakeQuant;
  n.inputs = {in};
  n.fq_bits = bits;
  n.name = "fq";
  return add_node(std::move(n));
}

int Graph::binarize(int in) {
  Node n;
  n.op = Op::kBinarize;
  n.inputs = {in};
  n.name = "binarize";
  return add_node(std::move(n));
}

void Graph::init_weights(Rng& rng) {
  for (auto& n : nodes_) {
    if (n.op == Op::kConv2d) {
      rng.fill_kaiming(n.weight, (n.conv.in_ch / n.conv.groups) * n.conv.kh * n.conv.kw);
      if (n.has_bias) n.bias.fill(0.0f);
    } else if (n.op == Op::kLinear) {
      rng.fill_kaiming(n.weight, n.weight.dim(1));
      if (n.has_bias) n.bias.fill(0.0f);
    }
  }
}

const Tensor& Graph::forward(const Tensor& x, bool training) {
  training_ = training;
  acts_.assign(nodes_.size(), Tensor());
  const int batch = x.dim(0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    auto in = [&](int j) -> const Tensor& { return acts_[static_cast<std::size_t>(n.inputs[static_cast<std::size_t>(j)])]; };
    switch (n.op) {
      case Op::kInput:
        acts_[i] = x;
        break;
      case Op::kConv2d:
        acts_[i] = conv2d_forward(in(0), n.weight, n.has_bias ? &n.bias : nullptr, n.conv);
        break;
      case Op::kLinear:
        acts_[i] = linear_forward(in(0), n.weight, n.has_bias ? &n.bias : nullptr);
        break;
      case Op::kReLU:
        acts_[i] = relu_forward(in(0));
        break;
      case Op::kMaxPool:
        acts_[i] = maxpool_forward(in(0), n.pool_k, n.pool_stride);
        break;
      case Op::kGlobalAvgPool:
        acts_[i] = global_avgpool_forward(in(0));
        break;
      case Op::kAdd:
        acts_[i] = add_forward(in(0), in(1));
        break;
      case Op::kFlatten: {
        acts_[i] = in(0);
        int total = 1;
        for (int d : n.out_chw) total *= d;
        acts_[i].reshape({batch, total});
        break;
      }
      case Op::kBatchNorm:
        acts_[i] = batchnorm_forward(in(0), n.bn, training);
        break;
      case Op::kFakeQuant: {
        if (training && n.fq_update_range) {
          // Exponential moving max keeps the clip range tracking activations.
          const float batch_max = in(0).size() ? std::max(0.0f, in(0).max()) : 0.0f;
          n.fq_range = n.fq_range <= 0.0f ? batch_max : 0.95f * n.fq_range + 0.05f * batch_max;
        }
        acts_[i] = fake_quant_forward(in(0), n.fq_bits, n.fq_range);
        break;
      }
      case Op::kBinarize: {
        acts_[i] = in(0);
        for (std::size_t j = 0; j < acts_[i].size(); ++j) {
          acts_[i][j] = acts_[i][j] >= 0.0f ? 1.0f : -1.0f;
        }
        break;
      }
    }
  }
  return acts_.back();
}

void Graph::backward(const Tensor& dlogits) {
  grads_.assign(nodes_.size(), Tensor());
  grads_.back() = dlogits;
  for (int i = num_nodes() - 1; i >= 0; --i) {
    Node& n = nodes_[static_cast<std::size_t>(i)];
    Tensor& dout = grads_[static_cast<std::size_t>(i)];
    if (dout.empty()) continue;  // node not on any path to the loss
    auto in_act = [&](int j) -> const Tensor& {
      return acts_[static_cast<std::size_t>(n.inputs[static_cast<std::size_t>(j)])];
    };
    auto in_grad = [&](int j) -> Tensor& {
      Tensor& g = grads_[static_cast<std::size_t>(n.inputs[static_cast<std::size_t>(j)])];
      if (g.empty()) g = Tensor(in_act(j).shape());
      return g;
    };
    switch (n.op) {
      case Op::kInput:
        break;
      case Op::kConv2d: {
        Tensor dx(in_act(0).shape());
        conv2d_backward(in_act(0), n.weight, n.conv, dout, &dx, &n.wgrad,
                        n.has_bias ? &n.bgrad : nullptr);
        in_grad(0).add_(dx);
        break;
      }
      case Op::kLinear: {
        Tensor dx(in_act(0).shape());
        linear_backward(in_act(0), n.weight, dout, &dx, &n.wgrad,
                        n.has_bias ? &n.bgrad : nullptr);
        in_grad(0).add_(dx);
        break;
      }
      case Op::kReLU: {
        Tensor dx(in_act(0).shape());
        relu_backward(in_act(0), dout, &dx);
        in_grad(0).add_(dx);
        break;
      }
      case Op::kMaxPool: {
        Tensor dx(in_act(0).shape());
        maxpool_backward(in_act(0), n.pool_k, n.pool_stride, dout, &dx);
        in_grad(0).add_(dx);
        break;
      }
      case Op::kGlobalAvgPool: {
        Tensor dx(in_act(0).shape());
        global_avgpool_backward(in_act(0), dout, &dx);
        in_grad(0).add_(dx);
        break;
      }
      case Op::kAdd:
        in_grad(0).add_(dout);
        in_grad(1).add_(dout);
        break;
      case Op::kFlatten: {
        Tensor dx = dout;
        dx.reshape(in_act(0).shape());
        in_grad(0).add_(dx);
        break;
      }
      case Op::kBatchNorm: {
        Tensor dx(in_act(0).shape());
        batchnorm_backward(in_act(0), n.bn, dout, &dx, &n.ggrad, &n.betagrad);
        in_grad(0).add_(dx);
        break;
      }
      case Op::kFakeQuant: {
        Tensor dx(in_act(0).shape());
        fake_quant_backward(in_act(0), n.fq_range, dout, &dx);
        in_grad(0).add_(dx);
        break;
      }
      case Op::kBinarize: {
        // Straight-through estimator clipped to |x| <= 1 (XNOR-Net style).
        Tensor dx(in_act(0).shape());
        const Tensor& x = in_act(0);
        for (std::size_t j = 0; j < x.size(); ++j) {
          dx[j] = std::fabs(x[j]) <= 1.0f ? dout[j] : 0.0f;
        }
        in_grad(0).add_(dx);
        break;
      }
    }
  }
}

void Graph::zero_grad() {
  for (auto& n : nodes_) {
    n.wgrad.fill(0.0f);
    n.bgrad.fill(0.0f);
    n.ggrad.fill(0.0f);
    n.betagrad.fill(0.0f);
  }
}

std::vector<Graph::ParamRef> Graph::params() {
  std::vector<ParamRef> out;
  for (auto& n : nodes_) {
    if (n.op == Op::kConv2d || n.op == Op::kLinear) {
      out.push_back({&n.weight, &n.wgrad, true});
      if (n.has_bias) out.push_back({&n.bias, &n.bgrad, false});
    } else if (n.op == Op::kBatchNorm) {
      out.push_back({&n.bn.gamma, &n.ggrad, false});
      out.push_back({&n.bn.beta, &n.betagrad, false});
    }
  }
  return out;
}

std::vector<int> Graph::conv_nodes(bool include_grouped) const {
  std::vector<int> out;
  for (int i = 0; i < num_nodes(); ++i) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.op == Op::kConv2d && (include_grouped || n.conv.groups == 1)) out.push_back(i);
  }
  return out;
}

std::vector<int> Graph::linear_nodes() const {
  std::vector<int> out;
  for (int i = 0; i < num_nodes(); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].op == Op::kLinear) out.push_back(i);
  }
  return out;
}

std::size_t Graph::param_count() const {
  std::size_t total = 0;
  for (const auto& n : nodes_) {
    total += n.weight.size() + n.bias.size();
    if (n.op == Op::kBatchNorm) total += n.bn.gamma.size() + n.bn.beta.size();
  }
  return total;
}

void Graph::set_activation_bits(int bits) {
  for (auto& n : nodes_) {
    if (n.op == Op::kFakeQuant) n.fq_bits = bits;
  }
}

void Graph::set_fq_range_tracking(bool on) {
  for (auto& n : nodes_) {
    if (n.op == Op::kFakeQuant) n.fq_update_range = on;
  }
}

}  // namespace bswp::nn
