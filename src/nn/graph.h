// SSA-style computation graph with reverse-mode autodiff.
//
// Nodes are appended in topological order (every input id must already
// exist), so forward is a single pass over the node list and backward is the
// reverse pass. The graph owns all parameters; `params()` exposes them to
// the optimizer, and compression code (pool/codec, BN folding) mutates conv
// weights in place through the node API.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"
#include "nn/layers.h"

namespace bswp::nn {

enum class Op {
  kInput,
  kConv2d,
  kLinear,
  kReLU,
  kMaxPool,
  kGlobalAvgPool,
  kAdd,
  kFlatten,
  kBatchNorm,
  kFakeQuant,
  /// Sign binarization (+1/-1) with straight-through gradient inside |x|<=1;
  /// used by the binarized-network baseline (paper §5.5).
  kBinarize,
};

const char* op_name(Op op);

struct Node {
  Op op = Op::kInput;
  std::string name;
  std::vector<int> inputs;        // node ids
  std::vector<int> out_chw;       // output shape per sample (C,H,W) or (F)

  // Conv / linear parameters.
  ConvSpec conv;
  bool has_bias = false;
  Tensor weight, bias;
  Tensor wgrad, bgrad;

  // Pooling.
  int pool_k = 2, pool_stride = 2;

  // BatchNorm.
  BatchNormState bn;
  Tensor ggrad, betagrad;

  // Fake quantization (QAT). `fq_range <= 0` means "not yet calibrated":
  // the node is an identity until calibration sets the clip range.
  int fq_bits = 8;
  float fq_range = 0.0f;
  bool fq_update_range = true;  // track running max during training forward
};

class Graph {
 public:
  // --- construction -------------------------------------------------------
  int input(int c, int h, int w);
  int conv2d(int in, int out_ch, int k, int stride, int pad, int groups = 1, bool bias = false,
             const std::string& name = "");
  int linear(int in, int out_features, bool bias = true, const std::string& name = "");
  int relu(int in);
  int maxpool(int in, int k, int stride);
  int global_avgpool(int in);
  int add(int a, int b);
  int flatten(int in);
  int batchnorm(int in, const std::string& name = "");
  int fake_quant(int in, int bits);
  int binarize(int in);

  void init_weights(Rng& rng);

  // --- execution -----------------------------------------------------------
  /// Forward pass; activations are cached for backward. Returns the output of
  /// the last node (the logits for classifier graphs).
  const Tensor& forward(const Tensor& x, bool training);
  /// Backward from dLoss/dLogits (same shape as the last node's output).
  /// Parameter gradients are accumulated; call zero_grad() per step.
  void backward(const Tensor& dlogits);
  void zero_grad();

  /// Forward and return activation of a specific node (after a forward call).
  const Tensor& activation(int node) const { return acts_.at(static_cast<std::size_t>(node)); }

  // --- introspection -------------------------------------------------------
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return nodes_.at(static_cast<std::size_t>(i)); }
  const Node& node(int i) const { return nodes_.at(static_cast<std::size_t>(i)); }
  int output_node() const { return num_nodes() - 1; }

  /// All (param, grad) pairs for the optimizer.
  struct ParamRef {
    Tensor* value;
    Tensor* grad;
    bool decay;  // apply weight decay (conv/linear weights only)
  };
  std::vector<ParamRef> params();

  /// Ids of all conv nodes (optionally excluding depthwise / grouped convs).
  std::vector<int> conv_nodes(bool include_grouped = true) const;
  /// Ids of all linear nodes.
  std::vector<int> linear_nodes() const;
  /// Total trainable parameter count.
  std::size_t param_count() const;

  /// Set every fake-quant node's bitwidth (for bitwidth sweeps). Nodes keep
  /// their calibrated ranges.
  void set_activation_bits(int bits);
  /// Freeze/unfreeze fake-quant running-range updates.
  void set_fq_range_tracking(bool on);

 private:
  int add_node(Node n);
  std::vector<int> infer_shape(const Node& n) const;

  std::vector<Node> nodes_;
  std::vector<Tensor> acts_;   // cached activations from last forward
  std::vector<Tensor> grads_;  // activation gradients during backward
  bool training_ = false;
};

}  // namespace bswp::nn
