#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace bswp::nn {

// ---------------------------------------------------------------------------
// Small matmul kernels. ikj loop order keeps the inner loop contiguous in B
// and C; good enough for the layer sizes trained in this repo.
// ---------------------------------------------------------------------------

void matmul(const float* a, const float* b, float* c, int m, int k, int n) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(p) * n;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_at_b(const float* a, const float* b, float* c, int m, int k, int n) {
  // c (k x n) += a^T (k x m) * b (m x n), with a given as (m x k).
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    const float* brow = b + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_a_bt(const float* a, const float* b, float* c, int m, int k, int n) {
  // c (m x n) = a (m x k) * b^T with b given as (n x k).
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c[static_cast<std::size_t>(i) * n + j] = acc;
    }
  }
}

// ---------------------------------------------------------------------------
// im2col / col2im
// ---------------------------------------------------------------------------

void im2col(const float* img, int c, int h, int w, const ConvSpec& spec, float* cols) {
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const int span = oh * ow;
  int row = 0;
  for (int ch = 0; ch < c; ++ch) {
    for (int ky = 0; ky < spec.kh; ++ky) {
      for (int kx = 0; kx < spec.kw; ++kx, ++row) {
        float* out_row = cols + static_cast<std::size_t>(row) * span;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * spec.stride + ky - spec.pad;
          if (iy < 0 || iy >= h) {
            std::memset(out_row + oy * ow, 0, sizeof(float) * static_cast<std::size_t>(ow));
            continue;
          }
          const float* src = img + (static_cast<std::size_t>(ch) * h + iy) * w;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * spec.stride + kx - spec.pad;
            out_row[oy * ow + ox] = (ix >= 0 && ix < w) ? src[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, int c, int h, int w, const ConvSpec& spec, float* img) {
  const int oh = spec.out_h(h), ow = spec.out_w(w);
  const int span = oh * ow;
  int row = 0;
  for (int ch = 0; ch < c; ++ch) {
    for (int ky = 0; ky < spec.kh; ++ky) {
      for (int kx = 0; kx < spec.kw; ++kx, ++row) {
        const float* in_row = cols + static_cast<std::size_t>(row) * span;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * spec.stride + ky - spec.pad;
          if (iy < 0 || iy >= h) continue;
          float* dst = img + (static_cast<std::size_t>(ch) * h + iy) * w;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * spec.stride + kx - spec.pad;
            if (ix >= 0 && ix < w) dst[ix] += in_row[oy * ow + ox];
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor* bias,
                      const ConvSpec& spec) {
  check(x.rank() == 4, "conv2d: input must be NCHW");
  check(x.dim(1) == spec.in_ch, "conv2d: channel mismatch");
  check(spec.in_ch % spec.groups == 0 && spec.out_ch % spec.groups == 0,
        "conv2d: groups must divide channels");
  const int n = x.dim(0), h = x.dim(2), ww = x.dim(3);
  const int oh = spec.out_h(h), ow = spec.out_w(ww);
  const int cg = spec.in_ch / spec.groups;      // input channels per group
  const int og = spec.out_ch / spec.groups;     // output channels per group
  const int krows = cg * spec.kh * spec.kw;
  Tensor y({n, spec.out_ch, oh, ow});
  std::vector<float> cols(static_cast<std::size_t>(krows) * oh * ow);

  for (int img = 0; img < n; ++img) {
    for (int g = 0; g < spec.groups; ++g) {
      const float* xin =
          x.data() + ((static_cast<std::size_t>(img) * spec.in_ch + g * cg) * h) * ww;
      im2col(xin, cg, h, ww, spec, cols.data());
      const float* wgrp = w.data() + static_cast<std::size_t>(g) * og * krows;
      float* yout = y.data() + ((static_cast<std::size_t>(img) * spec.out_ch + g * og) * oh) * ow;
      matmul(wgrp, cols.data(), yout, og, krows, oh * ow);
    }
  }
  if (bias != nullptr && !bias->empty()) {
    const int span = oh * ow;
    for (int img = 0; img < n; ++img) {
      for (int oc = 0; oc < spec.out_ch; ++oc) {
        float* row = y.data() + (static_cast<std::size_t>(img) * spec.out_ch + oc) * span;
        const float b = (*bias)[static_cast<std::size_t>(oc)];
        for (int i = 0; i < span; ++i) row[i] += b;
      }
    }
  }
  return y;
}

void conv2d_backward(const Tensor& x, const Tensor& w, const ConvSpec& spec, const Tensor& dout,
                     Tensor* dx, Tensor* dw, Tensor* db) {
  const int n = x.dim(0), h = x.dim(2), ww = x.dim(3);
  const int oh = spec.out_h(h), ow = spec.out_w(ww);
  const int cg = spec.in_ch / spec.groups;
  const int og = spec.out_ch / spec.groups;
  const int krows = cg * spec.kh * spec.kw;
  const int span = oh * ow;
  std::vector<float> cols(static_cast<std::size_t>(krows) * span);
  std::vector<float> dcols(static_cast<std::size_t>(krows) * span);

  if (dx != nullptr) dx->fill(0.0f);
  for (int img = 0; img < n; ++img) {
    for (int g = 0; g < spec.groups; ++g) {
      const float* xin =
          x.data() + ((static_cast<std::size_t>(img) * spec.in_ch + g * cg) * h) * ww;
      const float* doutg =
          dout.data() + ((static_cast<std::size_t>(img) * spec.out_ch + g * og) * oh) * ow;
      if (dw != nullptr) {
        im2col(xin, cg, h, ww, spec, cols.data());
        // dW (og x krows) += dOut (og x span) * cols^T (span x krows)
        float* dwg = dw->data() + static_cast<std::size_t>(g) * og * krows;
        for (int oc = 0; oc < og; ++oc) {
          const float* drow = doutg + static_cast<std::size_t>(oc) * span;
          float* dwrow = dwg + static_cast<std::size_t>(oc) * krows;
          for (int r = 0; r < krows; ++r) {
            const float* crow = cols.data() + static_cast<std::size_t>(r) * span;
            float acc = 0.0f;
            for (int i = 0; i < span; ++i) acc += drow[i] * crow[i];
            dwrow[r] += acc;
          }
        }
      }
      if (dx != nullptr) {
        // dcols (krows x span) = W^T (krows x og) * dOut (og x span)
        const float* wgrp = w.data() + static_cast<std::size_t>(g) * og * krows;
        std::memset(dcols.data(), 0, sizeof(float) * dcols.size());
        matmul_at_b(wgrp, doutg, dcols.data(), og, krows, span);
        float* dxg = dx->data() + ((static_cast<std::size_t>(img) * spec.in_ch + g * cg) * h) * ww;
        col2im(dcols.data(), cg, h, ww, spec, dxg);
      }
    }
  }
  if (db != nullptr && db->size() == static_cast<std::size_t>(spec.out_ch)) {
    for (int img = 0; img < n; ++img) {
      for (int oc = 0; oc < spec.out_ch; ++oc) {
        const float* row = dout.data() + (static_cast<std::size_t>(img) * spec.out_ch + oc) * span;
        float acc = 0.0f;
        for (int i = 0; i < span; ++i) acc += row[i];
        (*db)[static_cast<std::size_t>(oc)] += acc;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor* bias) {
  check(x.rank() == 2, "linear: input must be N x F");
  const int n = x.dim(0), fin = x.dim(1), fout = w.dim(0);
  check(w.dim(1) == fin, "linear: weight shape mismatch");
  Tensor y({n, fout});
  matmul_a_bt(x.data(), w.data(), y.data(), n, fin, fout);
  if (bias != nullptr && !bias->empty()) {
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < fout; ++j) y.at(i, j) += (*bias)[static_cast<std::size_t>(j)];
  }
  return y;
}

void linear_backward(const Tensor& x, const Tensor& w, const Tensor& dout, Tensor* dx, Tensor* dw,
                     Tensor* db) {
  const int n = x.dim(0), fin = x.dim(1), fout = w.dim(0);
  if (dw != nullptr) {
    // dW (fout x fin) += dOut^T (fout x n) * x (n x fin)
    matmul_at_b(dout.data(), x.data(), dw->data(), n, fout, fin);
  }
  if (db != nullptr && !db->empty()) {
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < fout; ++j) (*db)[static_cast<std::size_t>(j)] += dout.at(i, j);
  }
  if (dx != nullptr) {
    // dX (n x fin) = dOut (n x fout) * W (fout x fin)
    matmul(dout.data(), w.data(), dx->data(), n, fout, fin);
  }
}

// ---------------------------------------------------------------------------
// Activations / pooling
// ---------------------------------------------------------------------------

Tensor relu_forward(const Tensor& x) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = std::max(0.0f, y[i]);
  return y;
}

void relu_backward(const Tensor& x, const Tensor& dout, Tensor* dx) {
  for (std::size_t i = 0; i < x.size(); ++i) (*dx)[i] = x[i] > 0.0f ? dout[i] : 0.0f;
}

Tensor maxpool_forward(const Tensor& x, int k, int stride) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = (h - k) / stride + 1, ow = (w - k) / stride + 1;
  Tensor y({n, c, oh, ow});
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float m = -1e30f;
          for (int ky = 0; ky < k; ++ky)
            for (int kx = 0; kx < k; ++kx)
              m = std::max(m, x.at(img, ch, oy * stride + ky, ox * stride + kx));
          y.at(img, ch, oy, ox) = m;
        }
      }
    }
  }
  return y;
}

void maxpool_backward(const Tensor& x, int k, int stride, const Tensor& dout, Tensor* dx) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = (h - k) / stride + 1, ow = (w - k) / stride + 1;
  dx->fill(0.0f);
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float m = -1e30f;
          int my = 0, mx = 0;
          for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
              const float v = x.at(img, ch, oy * stride + ky, ox * stride + kx);
              if (v > m) {
                m = v;
                my = oy * stride + ky;
                mx = ox * stride + kx;
              }
            }
          }
          dx->at(img, ch, my, mx) += dout.at(img, ch, oy, ox);
        }
      }
    }
  }
}

Tensor global_avgpool_forward(const Tensor& x) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor y({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float* src = x.data() + (static_cast<std::size_t>(img) * c + ch) * h * w;
      float acc = 0.0f;
      for (int i = 0; i < h * w; ++i) acc += src[i];
      y.at(img, ch) = acc * inv;
    }
  }
  return y;
}

void global_avgpool_backward(const Tensor& x, const Tensor& dout, Tensor* dx) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const float g = dout.at(img, ch) * inv;
      float* dst = dx->data() + (static_cast<std::size_t>(img) * c + ch) * h * w;
      for (int i = 0; i < h * w; ++i) dst[i] = g;
    }
  }
}

Tensor add_forward(const Tensor& a, const Tensor& b) {
  check(a.size() == b.size(), "add: size mismatch");
  Tensor y = a;
  y.add_(b);
  return y;
}

// ---------------------------------------------------------------------------
// BatchNorm
// ---------------------------------------------------------------------------

BatchNormState::BatchNormState(int channels)
    : gamma({channels}, 1.0f),
      beta({channels}, 0.0f),
      running_mean({channels}, 0.0f),
      running_var({channels}, 1.0f),
      saved_mean({channels}, 0.0f),
      saved_inv_std({channels}, 1.0f) {}

Tensor batchnorm_forward(const Tensor& x, BatchNormState& bn, bool training) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t span = static_cast<std::size_t>(h) * w;
  const float count = static_cast<float>(n) * span;
  Tensor y(x.shape());
  for (int ch = 0; ch < c; ++ch) {
    float mean, inv_std;
    if (training) {
      double s = 0.0, s2 = 0.0;
      for (int img = 0; img < n; ++img) {
        const float* src = x.data() + (static_cast<std::size_t>(img) * c + ch) * span;
        for (std::size_t i = 0; i < span; ++i) {
          s += src[i];
          s2 += static_cast<double>(src[i]) * src[i];
        }
      }
      mean = static_cast<float>(s / count);
      const float var = std::max(0.0f, static_cast<float>(s2 / count) - mean * mean);
      inv_std = 1.0f / std::sqrt(var + bn.eps);
      bn.saved_mean[static_cast<std::size_t>(ch)] = mean;
      bn.saved_inv_std[static_cast<std::size_t>(ch)] = inv_std;
      bn.running_mean[static_cast<std::size_t>(ch)] =
          (1 - bn.momentum) * bn.running_mean[static_cast<std::size_t>(ch)] + bn.momentum * mean;
      bn.running_var[static_cast<std::size_t>(ch)] =
          (1 - bn.momentum) * bn.running_var[static_cast<std::size_t>(ch)] + bn.momentum * var;
    } else {
      mean = bn.running_mean[static_cast<std::size_t>(ch)];
      inv_std = 1.0f / std::sqrt(bn.running_var[static_cast<std::size_t>(ch)] + bn.eps);
    }
    const float g = bn.gamma[static_cast<std::size_t>(ch)];
    const float b = bn.beta[static_cast<std::size_t>(ch)];
    for (int img = 0; img < n; ++img) {
      const float* src = x.data() + (static_cast<std::size_t>(img) * c + ch) * span;
      float* dst = y.data() + (static_cast<std::size_t>(img) * c + ch) * span;
      for (std::size_t i = 0; i < span; ++i) dst[i] = g * (src[i] - mean) * inv_std + b;
    }
  }
  return y;
}

void batchnorm_backward(const Tensor& x, const BatchNormState& bn, const Tensor& dout, Tensor* dx,
                        Tensor* dgamma, Tensor* dbeta) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t span = static_cast<std::size_t>(h) * w;
  const float count = static_cast<float>(n) * span;
  for (int ch = 0; ch < c; ++ch) {
    const float mean = bn.saved_mean[static_cast<std::size_t>(ch)];
    const float inv_std = bn.saved_inv_std[static_cast<std::size_t>(ch)];
    const float g = bn.gamma[static_cast<std::size_t>(ch)];
    // Accumulate sum(dout) and sum(dout * xhat).
    double sum_dout = 0.0, sum_dout_xhat = 0.0;
    for (int img = 0; img < n; ++img) {
      const float* xs = x.data() + (static_cast<std::size_t>(img) * c + ch) * span;
      const float* ds = dout.data() + (static_cast<std::size_t>(img) * c + ch) * span;
      for (std::size_t i = 0; i < span; ++i) {
        const float xhat = (xs[i] - mean) * inv_std;
        sum_dout += ds[i];
        sum_dout_xhat += static_cast<double>(ds[i]) * xhat;
      }
    }
    if (dgamma != nullptr) (*dgamma)[static_cast<std::size_t>(ch)] += static_cast<float>(sum_dout_xhat);
    if (dbeta != nullptr) (*dbeta)[static_cast<std::size_t>(ch)] += static_cast<float>(sum_dout);
    if (dx != nullptr) {
      const float k1 = static_cast<float>(sum_dout) / count;
      const float k2 = static_cast<float>(sum_dout_xhat) / count;
      for (int img = 0; img < n; ++img) {
        const float* xs = x.data() + (static_cast<std::size_t>(img) * c + ch) * span;
        const float* ds = dout.data() + (static_cast<std::size_t>(img) * c + ch) * span;
        float* dd = dx->data() + (static_cast<std::size_t>(img) * c + ch) * span;
        for (std::size_t i = 0; i < span; ++i) {
          const float xhat = (xs[i] - mean) * inv_std;
          dd[i] = g * inv_std * (ds[i] - k1 - xhat * k2);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Loss / metrics
// ---------------------------------------------------------------------------

float softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                            Tensor* dlogits) {
  const int n = logits.dim(0), k = logits.dim(1);
  check(static_cast<int>(labels.size()) == n, "labels size mismatch");
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const float* row = logits.data() + static_cast<std::size_t>(i) * k;
    float m = row[0];
    for (int j = 1; j < k; ++j) m = std::max(m, row[j]);
    double z = 0.0;
    for (int j = 0; j < k; ++j) z += std::exp(static_cast<double>(row[j] - m));
    const int y = labels[static_cast<std::size_t>(i)];
    loss += std::log(z) - static_cast<double>(row[y] - m);
    if (dlogits != nullptr) {
      float* drow = dlogits->data() + static_cast<std::size_t>(i) * k;
      for (int j = 0; j < k; ++j) {
        const float p = static_cast<float>(std::exp(static_cast<double>(row[j] - m)) / z);
        drow[j] = (p - (j == y ? 1.0f : 0.0f)) / static_cast<float>(n);
      }
    }
  }
  return static_cast<float>(loss / n);
}

int count_correct(const Tensor& logits, const std::vector<int>& labels) {
  const int n = logits.dim(0), k = logits.dim(1);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const float* row = logits.data() + static_cast<std::size_t>(i) * k;
    int best = 0;
    for (int j = 1; j < k; ++j)
      if (row[j] > row[best]) best = j;
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return correct;
}

// ---------------------------------------------------------------------------
// Fake quantization (QAT)
// ---------------------------------------------------------------------------

Tensor fake_quant_forward(const Tensor& x, int bits, float range) {
  check(bits >= 1 && bits <= 16, "fake_quant: bits out of range");
  Tensor y(x.shape());
  if (range <= 0.0f) return x;  // uncalibrated: identity
  const float levels = static_cast<float>((1 << bits) - 1);
  const float step = range / levels;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float clamped = std::clamp(x[i], 0.0f, range);
    y[i] = std::round(clamped / step) * step;
  }
  return y;
}

void fake_quant_backward(const Tensor& x, float range, const Tensor& dout, Tensor* dx) {
  if (range <= 0.0f) {
    *dx = dout;
    return;
  }
  // Straight-through estimator with clipping mask.
  for (std::size_t i = 0; i < x.size(); ++i) {
    (*dx)[i] = (x[i] >= 0.0f && x[i] <= range) ? dout[i] : 0.0f;
  }
}

}  // namespace bswp::nn
