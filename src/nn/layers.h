// Pure-function layer implementations (forward + backward) on float tensors.
//
// These are the numerical workhorses behind nn::Graph. They are stateless:
// every function takes all of its operands explicitly, which keeps them easy
// to test in isolation (including finite-difference gradient checks) and
// reusable by the quantization pipeline (e.g. BN folding needs raw conv
// arithmetic).
#pragma once

#include <optional>
#include <vector>

#include "core/tensor.h"

namespace bswp::nn {

/// Convolution geometry. Weights are OIHW with I = in_ch / groups.
struct ConvSpec {
  int in_ch = 0;
  int out_ch = 0;
  int kh = 3;
  int kw = 3;
  int stride = 1;
  int pad = 1;
  int groups = 1;

  int out_h(int in_h) const { return (in_h + 2 * pad - kh) / stride + 1; }
  int out_w(int in_w) const { return (in_w + 2 * pad - kw) / stride + 1; }
  std::vector<int> weight_shape() const { return {out_ch, in_ch / groups, kh, kw}; }
  std::size_t weight_count() const {
    return static_cast<std::size_t>(out_ch) * (in_ch / groups) * kh * kw;
  }
};

/// C = A(m x k) * B(k x n), row-major; C is overwritten.
void matmul(const float* a, const float* b, float* c, int m, int k, int n);
/// C += A^T(m x k -> k x m) * B(m x n): used for weight gradients.
void matmul_at_b(const float* a, const float* b, float* c, int m, int k, int n);
/// C = A(m x k) * B^T(n x k): used for input gradients.
void matmul_a_bt(const float* a, const float* b, float* c, int m, int k, int n);

/// im2col for one image (single group slice): input (c x h x w) ->
/// columns ((c*kh*kw) x (out_h*out_w)).
void im2col(const float* img, int c, int h, int w, const ConvSpec& spec, float* cols);
/// Transpose of im2col: scatter-add columns back into an image gradient.
void col2im(const float* cols, int c, int h, int w, const ConvSpec& spec, float* img);

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor* bias, const ConvSpec& spec);
/// Any of dx/dw/db may be null to skip that gradient. dw/db are accumulated
/// into (caller zeroes them at step start).
void conv2d_backward(const Tensor& x, const Tensor& w, const ConvSpec& spec, const Tensor& dout,
                     Tensor* dx, Tensor* dw, Tensor* db);

Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor* bias);
void linear_backward(const Tensor& x, const Tensor& w, const Tensor& dout, Tensor* dx, Tensor* dw,
                     Tensor* db);

Tensor relu_forward(const Tensor& x);
void relu_backward(const Tensor& x, const Tensor& dout, Tensor* dx);

Tensor maxpool_forward(const Tensor& x, int k, int stride);
void maxpool_backward(const Tensor& x, int k, int stride, const Tensor& dout, Tensor* dx);

Tensor global_avgpool_forward(const Tensor& x);
void global_avgpool_backward(const Tensor& x, const Tensor& dout, Tensor* dx);

Tensor add_forward(const Tensor& a, const Tensor& b);

/// BatchNorm running state + learned affine.
struct BatchNormState {
  Tensor gamma, beta, running_mean, running_var;
  // Saved batch statistics from the last training forward (needed by backward).
  Tensor saved_mean, saved_inv_std;
  float momentum = 0.1f;
  float eps = 1e-5f;

  explicit BatchNormState(int channels = 0);
};

Tensor batchnorm_forward(const Tensor& x, BatchNormState& bn, bool training);
void batchnorm_backward(const Tensor& x, const BatchNormState& bn, const Tensor& dout, Tensor* dx,
                        Tensor* dgamma, Tensor* dbeta);

/// Softmax + cross-entropy over logits (N x classes). Returns mean loss and
/// writes dlogits (already divided by N) if non-null.
float softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                            Tensor* dlogits);
/// Count of argmax(logits) == label.
int count_correct(const Tensor& logits, const std::vector<int>& labels);

/// Uniform fake quantization of activations to `bits` unsigned levels over
/// [0, range]; straight-through estimator on backward.
Tensor fake_quant_forward(const Tensor& x, int bits, float range);
void fake_quant_backward(const Tensor& x, float range, const Tensor& dout, Tensor* dx);

}  // namespace bswp::nn
