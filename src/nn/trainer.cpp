#include "nn/trainer.h"

#include <cmath>
#include <cstdio>

namespace bswp::nn {

TrainStats Trainer::fit(Graph& g, const data::Dataset& train, const data::Dataset& test) {
  TrainStats stats;
  Rng rng(cfg_.seed);

  // Momentum buffers aligned with g.params() ordering.
  auto params = g.params();
  std::vector<Tensor> velocity;
  velocity.reserve(params.size());
  for (auto& p : params) velocity.emplace_back(p.value->shape());

  std::vector<int> order(static_cast<std::size_t>(train.size()));
  for (int i = 0; i < train.size(); ++i) order[static_cast<std::size_t>(i)] = i;

  float lr = cfg_.lr;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    if (cfg_.lr_step > 0 && epoch > 0 && epoch % cfg_.lr_step == 0) lr *= cfg_.lr_decay;
    rng.shuffle(order);
    double loss_sum = 0.0;
    int correct = 0, seen = 0, batches = 0;
    for (int start = 0; start + cfg_.batch_size <= train.size(); start += cfg_.batch_size) {
      if (cfg_.max_batches_per_epoch > 0 && batches >= cfg_.max_batches_per_epoch) break;
      std::vector<int> idx(order.begin() + start, order.begin() + start + cfg_.batch_size);
      data::Batch b = train.gather(idx);

      g.zero_grad();
      const Tensor& logits = g.forward(b.images, /*training=*/true);
      Tensor dlogits(logits.shape());
      const float loss = softmax_cross_entropy(logits, b.labels, &dlogits);
      correct += count_correct(logits, b.labels);
      seen += cfg_.batch_size;
      loss_sum += loss;
      ++batches;
      g.backward(dlogits);

      // SGD with momentum + decoupled-from-loss L2 on decayable params.
      params = g.params();
      for (std::size_t p = 0; p < params.size(); ++p) {
        Tensor& v = velocity[p];
        Tensor& w = *params[p].value;
        Tensor& dw = *params[p].grad;
        const float wd = params[p].decay ? cfg_.weight_decay : 0.0f;
        for (std::size_t i = 0; i < w.size(); ++i) {
          v[i] = cfg_.momentum * v[i] + dw[i] + wd * w[i];
          w[i] -= lr * v[i];
        }
      }
      if (post_step_) post_step_(g);
    }
    stats.epoch_loss.push_back(batches ? static_cast<float>(loss_sum / batches) : 0.0f);
    stats.epoch_train_acc.push_back(seen ? 100.0f * correct / seen : 0.0f);
    if (cfg_.verbose) {
      std::printf("  epoch %2d  loss %.4f  train-acc %.2f%%  lr %.4f\n", epoch,
                  stats.epoch_loss.back(), stats.epoch_train_acc.back(), lr);
    }
  }
  stats.final_test_acc = evaluate(g, test);
  return stats;
}

float evaluate(Graph& g, const data::Dataset& ds, int batch_size) {
  int correct = 0, total = 0;
  for (int start = 0; start < ds.size(); start += batch_size) {
    const int count = std::min(batch_size, ds.size() - start);
    data::Batch b = ds.batch(start, count);
    const Tensor& logits = g.forward(b.images, /*training=*/false);
    correct += count_correct(logits, b.labels);
    total += count;
  }
  return total ? 100.0f * correct / total : 0.0f;
}

}  // namespace bswp::nn
