// SGD trainer for nn::Graph classifiers.
//
// Mirrors the paper's training setup (§5.1): SGD with momentum and a step
// learning-rate schedule. A `post_step` hook lets the weight-pool fine-tuner
// re-project weights onto the pool after every optimizer step (the paper's
// "forward pass reassigns indices to the nearest weight pool vector").
#pragma once

#include <functional>
#include <vector>

#include "data/synthetic.h"
#include "nn/graph.h"

namespace bswp::nn {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 64;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  /// Multiply lr by `lr_decay` every `lr_step` epochs (0 = no schedule).
  int lr_step = 6;
  float lr_decay = 0.2f;
  uint64_t seed = 1234;
  bool verbose = false;
  /// Cap on batches per epoch (0 = full dataset); used to keep bench-side
  /// fine-tuning cheap.
  int max_batches_per_epoch = 0;
};

struct TrainStats {
  std::vector<float> epoch_loss;
  std::vector<float> epoch_train_acc;
  float final_test_acc = 0.0f;
};

class Trainer {
 public:
  explicit Trainer(TrainConfig cfg) : cfg_(cfg) {}

  /// Hook invoked after every optimizer step (e.g. pool projection).
  void set_post_step(std::function<void(Graph&)> hook) { post_step_ = std::move(hook); }

  TrainStats fit(Graph& g, const data::Dataset& train, const data::Dataset& test);

 private:
  TrainConfig cfg_;
  std::function<void(Graph&)> post_step_;
};

/// Top-1 accuracy (in %) of the graph on a dataset, evaluated in inference
/// mode with the given batch size.
float evaluate(Graph& g, const data::Dataset& ds, int batch_size = 128);

}  // namespace bswp::nn
