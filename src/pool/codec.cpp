#include "pool/codec.h"

#include <algorithm>

#include "pool/grouping.h"

namespace bswp::pool {

namespace {

/// Deterministic stride-subsample of rows from an (n x dim) tensor.
Tensor subsample_rows(const Tensor& vecs, int cap) {
  const int n = vecs.dim(0), dim = vecs.dim(1);
  if (cap <= 0 || n <= cap) return vecs;
  Tensor out({cap, dim});
  const double stride = static_cast<double>(n) / cap;
  for (int i = 0; i < cap; ++i) {
    const int src = std::min(n - 1, static_cast<int>(i * stride));
    std::copy(vecs.data() + static_cast<std::size_t>(src) * dim,
              vecs.data() + static_cast<std::size_t>(src + 1) * dim,
              out.data() + static_cast<std::size_t>(i) * dim);
  }
  return out;
}

PooledLayer make_layer_entry(const nn::Graph& g, int node, int group_size) {
  const nn::Node& n = g.node(node);
  PooledLayer layer;
  layer.node = node;
  if (n.op == nn::Op::kLinear) {
    layer.is_linear = true;
    layer.out_ch = n.weight.dim(0);
    layer.channel_groups = n.weight.dim(1) / group_size;
    layer.kh = layer.kw = 1;
  } else {
    layer.out_ch = n.conv.out_ch;
    layer.channel_groups = n.conv.in_ch / group_size;
    layer.kh = n.conv.kh;
    layer.kw = n.conv.kw;
  }
  layer.indices.assign(static_cast<std::size_t>(layer.out_ch) * layer.channel_groups * layer.kh *
                           layer.kw,
                       0);
  return layer;
}

Tensor layer_vectors(const nn::Graph& g, const PooledLayer& layer, int group_size) {
  const nn::Node& n = g.node(layer.node);
  return layer.is_linear ? extract_z_vectors_linear(n.weight, group_size)
                         : extract_z_vectors(n.weight, group_size);
}

void assign_layer(const nn::Graph& g, const WeightPool& pool, PooledLayer& layer) {
  Tensor vecs = layer_vectors(g, layer, pool.group_size);
  const int dim = pool.group_size;
  for (int i = 0; i < vecs.dim(0); ++i) {
    layer.indices[static_cast<std::size_t>(i)] = static_cast<uint16_t>(
        nearest_centroid(vecs.data() + static_cast<std::size_t>(i) * dim, pool.vectors,
                         pool.metric));
  }
}

}  // namespace

PooledNetwork build_weight_pool(const nn::Graph& g, const CodecOptions& opt) {
  check(opt.pool_size >= 2 && opt.pool_size <= 65536, "pool size out of range");
  PooledNetwork net;
  net.pool.group_size = opt.group_size;
  net.pool.metric = opt.metric;

  // Gather candidate layers and their vectors.
  std::vector<int> pooled_nodes;
  std::size_t total_rows = 0;
  std::vector<Tensor> all_vecs;
  for (int node = 0; node < g.num_nodes(); ++node) {
    const nn::Node& n = g.node(node);
    if (n.op == nn::Op::kConv2d) {
      if (!z_poolable(n.conv, opt.group_size)) {
        net.uncompressed_nodes.push_back(node);
        continue;
      }
      pooled_nodes.push_back(node);
      all_vecs.push_back(extract_z_vectors(n.weight, opt.group_size));
      total_rows += static_cast<std::size_t>(all_vecs.back().dim(0));
    } else if (n.op == nn::Op::kLinear) {
      if (opt.pool_fc && n.weight.dim(1) % opt.group_size == 0) {
        pooled_nodes.push_back(node);
        all_vecs.push_back(extract_z_vectors_linear(n.weight, opt.group_size));
        total_rows += static_cast<std::size_t>(all_vecs.back().dim(0));
      } else {
        net.uncompressed_nodes.push_back(node);
      }
    }
  }
  check(!pooled_nodes.empty(), "build_weight_pool: no poolable layers in graph");

  // Stack vectors from every pooled layer, then cluster (a deterministic
  // subsample caps k-means cost on big networks).
  Tensor stacked({static_cast<int>(total_rows), opt.group_size});
  std::size_t row = 0;
  for (const Tensor& v : all_vecs) {
    std::copy(v.data(), v.data() + v.size(), stacked.data() + row * opt.group_size);
    row += static_cast<std::size_t>(v.dim(0));
  }
  KMeansOptions ko;
  ko.clusters = opt.pool_size;
  ko.metric = opt.metric;
  ko.max_iters = opt.kmeans_iters;
  ko.seed = opt.seed;
  const KMeansResult km = kmeans(subsample_rows(stacked, opt.max_cluster_vectors), ko);
  net.pool.vectors = km.centroids;

  // Exact assignment of every layer against the final pool.
  for (int node : pooled_nodes) {
    PooledLayer layer = make_layer_entry(g, node, opt.group_size);
    assign_layer(g, net.pool, layer);
    net.layers.push_back(std::move(layer));
  }
  return net;
}

void reassign_indices(const nn::Graph& g, PooledNetwork& net) {
  for (PooledLayer& layer : net.layers) assign_layer(g, net.pool, layer);
}

void reconstruct_weights(nn::Graph& g, const PooledNetwork& net) {
  const int gs = net.pool.group_size;
  for (const PooledLayer& layer : net.layers) {
    nn::Node& n = g.node(layer.node);
    Tensor vecs({static_cast<int>(layer.indices.size()), gs});
    for (std::size_t i = 0; i < layer.indices.size(); ++i) {
      const float* src =
          net.pool.vectors.data() + static_cast<std::size_t>(layer.indices[i]) * gs;
      std::copy(src, src + gs, vecs.data() + i * gs);
    }
    if (layer.is_linear) {
      scatter_z_vectors_linear(n.weight, vecs, gs);
    } else {
      scatter_z_vectors(n.weight, vecs, gs);
    }
  }
}

double pooled_weight_fraction(const nn::Graph& g, const PooledNetwork& net) {
  std::size_t pooled = 0, total = 0;
  for (int node = 0; node < g.num_nodes(); ++node) {
    const nn::Node& n = g.node(node);
    if (n.op == nn::Op::kConv2d || n.op == nn::Op::kLinear) total += n.weight.size();
  }
  for (const PooledLayer& l : net.layers) {
    pooled += g.node(l.node).weight.size();
  }
  return total ? static_cast<double>(pooled) / static_cast<double>(total) : 0.0;
}

// ---------------------------------------------------------------------------
// xy-dimension pooling
// ---------------------------------------------------------------------------

XyPooledNetwork build_xy_pool(const nn::Graph& g, const XyPoolOptions& opt) {
  XyPooledNetwork net;
  std::vector<int> nodes;
  std::size_t total = 0;
  int kdim = -1;
  std::vector<Tensor> all;
  for (int node = 0; node < g.num_nodes(); ++node) {
    const nn::Node& n = g.node(node);
    if (n.op != nn::Op::kConv2d || n.conv.groups != 1) continue;
    const int kd = n.conv.kh * n.conv.kw;
    if (kd < 4) continue;  // xy pooling of 1x1 kernels is meaningless (paper §3)
    if (kdim == -1) kdim = kd;
    if (kd != kdim) continue;  // pool only equal kernel sizes together
    nodes.push_back(node);
    all.push_back(extract_xy_kernels(n.weight));
    total += static_cast<std::size_t>(all.back().dim(0));
  }
  check(!nodes.empty(), "build_xy_pool: no kxk conv layers found");

  Tensor stacked({static_cast<int>(total), kdim});
  std::size_t row = 0;
  for (const Tensor& v : all) {
    std::copy(v.data(), v.data() + v.size(), stacked.data() + row * kdim);
    row += static_cast<std::size_t>(v.dim(0));
  }
  KMeansOptions ko;
  ko.clusters = opt.pool_size;
  // With coefficients the magnitude is factored out, so cluster directions;
  // without coefficients cluster raw kernels (this is what makes the
  // no-coefficient xy pool notably worse in Figure 4).
  ko.metric = opt.use_coefficients ? Metric::kCosine : Metric::kEuclidean;
  ko.max_iters = opt.kmeans_iters;
  ko.seed = opt.seed;
  Tensor sample({static_cast<int>(std::min<std::size_t>(
                     total, opt.max_cluster_vectors > 0
                                ? static_cast<std::size_t>(opt.max_cluster_vectors)
                                : total)),
                 kdim});
  {
    const int n = stacked.dim(0), cap = sample.dim(0);
    const double stride = static_cast<double>(n) / cap;
    for (int i = 0; i < cap; ++i) {
      const int src = std::min(n - 1, static_cast<int>(i * stride));
      std::copy(stacked.data() + static_cast<std::size_t>(src) * kdim,
                stacked.data() + static_cast<std::size_t>(src + 1) * kdim,
                sample.data() + static_cast<std::size_t>(i) * kdim);
    }
  }
  const KMeansResult km = kmeans(sample, ko);
  net.kernels = km.centroids;

  for (std::size_t li = 0; li < nodes.size(); ++li) {
    XyPooledNetwork::Layer layer;
    layer.node = nodes[li];
    const Tensor& kernels = all[li];
    const int n = kernels.dim(0);
    layer.indices.resize(static_cast<std::size_t>(n));
    if (opt.use_coefficients) layer.coefficients.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const float* k = kernels.data() + static_cast<std::size_t>(i) * kdim;
      const int c = nearest_centroid(k, net.kernels, ko.metric);
      layer.indices[static_cast<std::size_t>(i)] = static_cast<uint16_t>(c);
      if (opt.use_coefficients) {
        // Least-squares scale: argmin_s || k - s * centroid ||.
        const float* cen = net.kernels.data() + static_cast<std::size_t>(c) * kdim;
        double num = 0.0, den = 0.0;
        for (int d = 0; d < kdim; ++d) {
          num += static_cast<double>(k[d]) * cen[d];
          den += static_cast<double>(cen[d]) * cen[d];
        }
        layer.coefficients[static_cast<std::size_t>(i)] =
            den > 0.0 ? static_cast<float>(num / den) : 0.0f;
      }
    }
    net.layers.push_back(std::move(layer));
  }
  return net;
}

void reassign_xy_indices(const nn::Graph& g, XyPooledNetwork& net) {
  const int kdim = net.kernels.dim(1);
  for (auto& layer : net.layers) {
    const bool use_coeff = !layer.coefficients.empty();
    const Metric metric = use_coeff ? Metric::kCosine : Metric::kEuclidean;
    Tensor kernels = extract_xy_kernels(g.node(layer.node).weight);
    for (int i = 0; i < kernels.dim(0); ++i) {
      const float* k = kernels.data() + static_cast<std::size_t>(i) * kdim;
      const int c = nearest_centroid(k, net.kernels, metric);
      layer.indices[static_cast<std::size_t>(i)] = static_cast<uint16_t>(c);
      if (use_coeff) {
        const float* cen = net.kernels.data() + static_cast<std::size_t>(c) * kdim;
        double num = 0.0, den = 0.0;
        for (int d = 0; d < kdim; ++d) {
          num += static_cast<double>(k[d]) * cen[d];
          den += static_cast<double>(cen[d]) * cen[d];
        }
        layer.coefficients[static_cast<std::size_t>(i)] =
            den > 0.0 ? static_cast<float>(num / den) : 0.0f;
      }
    }
  }
}

void reconstruct_xy_weights(nn::Graph& g, const XyPooledNetwork& net) {
  const int kdim = net.kernels.dim(1);
  for (const auto& layer : net.layers) {
    nn::Node& n = g.node(layer.node);
    Tensor kernels({static_cast<int>(layer.indices.size()), kdim});
    for (std::size_t i = 0; i < layer.indices.size(); ++i) {
      const float* src = net.kernels.data() + static_cast<std::size_t>(layer.indices[i]) * kdim;
      const float coeff = layer.coefficients.empty() ? 1.0f : layer.coefficients[i];
      for (int d = 0; d < kdim; ++d) kernels[i * kdim + d] = coeff * src[d];
    }
    scatter_xy_kernels(n.weight, kernels);
  }
}

}  // namespace bswp::pool
