// Weight-pool codec: pretrained graph -> (shared pool, per-layer indices),
// and reconstruction back into graph weights (Figure 2 pipeline).
//
// One pool is shared by the whole network. Layers that are not z-poolable
// (the shallow first conv, depthwise convs, and — by default — FC layers,
// per §3 and footnote 1) are left uncompressed and recorded as such.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.h"
#include "nn/graph.h"
#include "pool/kmeans.h"

namespace bswp::pool {

/// The shared pool: S vectors of length G.
struct WeightPool {
  int group_size = 8;
  Metric metric = Metric::kCosine;
  Tensor vectors;  // S x G

  int size() const { return vectors.empty() ? 0 : vectors.dim(0); }
};

/// Index map for one pooled layer. Indices are row-major over
/// (o, g, ky, kx) for convs and (o, g) for linear layers — the same
/// canonical order as pool::extract_z_vectors.
struct PooledLayer {
  int node = -1;           // graph node id
  bool is_linear = false;
  int out_ch = 0, channel_groups = 0, kh = 1, kw = 1;
  std::vector<uint16_t> indices;

  std::size_t index_at(int o, int g, int ky, int kx) const {
    return ((static_cast<std::size_t>(o) * channel_groups + g) * kh + ky) * kw + kx;
  }
  uint16_t index(int o, int g, int ky, int kx) const { return indices[index_at(o, g, ky, kx)]; }
};

struct PooledNetwork {
  WeightPool pool;
  std::vector<PooledLayer> layers;        // pooled layers only
  std::vector<int> uncompressed_nodes;    // conv/linear nodes left as-is
};

struct CodecOptions {
  int pool_size = 64;
  int group_size = 8;
  Metric metric = Metric::kCosine;
  bool pool_fc = false;       // paper default: FC stays uncompressed
  int kmeans_iters = 40;
  uint64_t seed = 99;
  /// Subsample cap on the number of vectors fed to k-means (0 = all). Large
  /// networks have millions of vectors; clustering a deterministic subsample
  /// is standard and leaves assignment exact.
  int max_cluster_vectors = 20000;
};

/// Cluster all poolable weights of `g` into a shared pool and assign indices.
PooledNetwork build_weight_pool(const nn::Graph& g, const CodecOptions& opt);

/// Re-assign indices of `net.layers` to the nearest pool vectors given the
/// graph's *current* weights (used during fine-tuning).
void reassign_indices(const nn::Graph& g, PooledNetwork& net);

/// Overwrite pooled layers' weights in the graph with pool[index] vectors
/// (the weight-pool forward-pass projection).
void reconstruct_weights(nn::Graph& g, const PooledNetwork& net);

/// Fraction of weight parameters covered by the pool (for reporting).
double pooled_weight_fraction(const nn::Graph& g, const PooledNetwork& net);

// --- xy-dimension pooling (Figure 4 baseline) -------------------------------

struct XyPoolOptions {
  int pool_size = 64;
  bool use_coefficients = true;
  int kmeans_iters = 40;
  uint64_t seed = 99;
  int max_cluster_vectors = 20000;
};

struct XyPooledNetwork {
  Tensor kernels;  // S x (kh*kw), one shared pool of 2D kernels
  // For each pooled conv node: index + optional coefficient per (o, i).
  struct Layer {
    int node = -1;
    std::vector<uint16_t> indices;
    std::vector<float> coefficients;  // empty when coefficients disabled
  };
  std::vector<Layer> layers;
};

/// Cluster 3x3 (or kxk) kernels across all equal-kernel-size convs.
XyPooledNetwork build_xy_pool(const nn::Graph& g, const XyPoolOptions& opt);
void reconstruct_xy_weights(nn::Graph& g, const XyPooledNetwork& net);
/// Re-assign kernels (and refresh coefficients) against the fixed kernel
/// pool from the graph's current weights — the xy-pool fine-tune projection.
void reassign_xy_indices(const nn::Graph& g, XyPooledNetwork& net);

}  // namespace bswp::pool
