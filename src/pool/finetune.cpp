#include "pool/finetune.h"

namespace bswp::pool {

void project_to_pool(nn::Graph& g, PooledNetwork& net) {
  reassign_indices(g, net);
  reconstruct_weights(g, net);
}

nn::TrainStats finetune_pooled(nn::Graph& g, PooledNetwork& net, const data::Dataset& train,
                               const data::Dataset& test, const FinetuneOptions& opt) {
  project_to_pool(g, net);  // start from the projected network
  nn::Trainer trainer(opt.train);
  if (opt.project_every_step) {
    trainer.set_post_step([&net](nn::Graph& graph) { project_to_pool(graph, net); });
  }
  nn::TrainStats stats = trainer.fit(g, train, test);
  if (!opt.project_every_step) project_to_pool(g, net);
  return stats;
}

}  // namespace bswp::pool
