// Weight-pool fine-tuning (paper Figure 2, §3): retrain the network with the
// pool fixed. "The backward pass updates the network weights and the forward
// pass reassigns indices to the nearest weight pool vector" — implemented as
// a projection hook after every optimizer step: re-assign indices from the
// freshly-updated float weights, then overwrite the weights with their pool
// reconstructions (a straight-through projection).
#pragma once

#include "data/synthetic.h"
#include "nn/trainer.h"
#include "pool/codec.h"

namespace bswp::pool {

struct FinetuneOptions {
  nn::TrainConfig train;
  /// Project after every step (true, the paper's scheme) or only at epoch
  /// boundaries (cheaper ablation).
  bool project_every_step = true;
};

/// Fine-tune `g` with the pool held fixed. On return, `g`'s pooled weights
/// are exact pool reconstructions and `net`'s indices match them.
nn::TrainStats finetune_pooled(nn::Graph& g, PooledNetwork& net, const data::Dataset& train,
                               const data::Dataset& test, const FinetuneOptions& opt);

/// One projection step: reassign indices from current weights, then overwrite
/// weights with pool reconstructions.
void project_to_pool(nn::Graph& g, PooledNetwork& net);

}  // namespace bswp::pool
