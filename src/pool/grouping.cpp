#include "pool/grouping.h"

namespace bswp::pool {

int num_channel_groups(int in_ch, int group_size) {
  check(group_size > 0, "group size must be positive");
  return in_ch / group_size;
}

Tensor extract_z_vectors(const Tensor& w, int group_size) {
  check(w.rank() == 4, "extract_z_vectors: weight must be OIHW");
  const int o = w.dim(0), i = w.dim(1), kh = w.dim(2), kw = w.dim(3);
  check(i % group_size == 0, "extract_z_vectors: in_ch must be divisible by group size");
  const int groups = i / group_size;
  Tensor vecs({o * groups * kh * kw, group_size});
  std::size_t row = 0;
  for (int oc = 0; oc < o; ++oc) {
    for (int g = 0; g < groups; ++g) {
      for (int ky = 0; ky < kh; ++ky) {
        for (int kx = 0; kx < kw; ++kx, ++row) {
          for (int j = 0; j < group_size; ++j) {
            vecs[row * group_size + j] = w.at(oc, g * group_size + j, ky, kx);
          }
        }
      }
    }
  }
  return vecs;
}

void scatter_z_vectors(Tensor& w, const Tensor& vectors, int group_size) {
  const int o = w.dim(0), i = w.dim(1), kh = w.dim(2), kw = w.dim(3);
  check(i % group_size == 0, "scatter_z_vectors: in_ch must be divisible by group size");
  const int groups = i / group_size;
  check(vectors.dim(0) == o * groups * kh * kw && vectors.dim(1) == group_size,
        "scatter_z_vectors: vector count mismatch");
  std::size_t row = 0;
  for (int oc = 0; oc < o; ++oc) {
    for (int g = 0; g < groups; ++g) {
      for (int ky = 0; ky < kh; ++ky) {
        for (int kx = 0; kx < kw; ++kx, ++row) {
          for (int j = 0; j < group_size; ++j) {
            w.at(oc, g * group_size + j, ky, kx) = vectors[row * group_size + j];
          }
        }
      }
    }
  }
}

Tensor extract_z_vectors_linear(const Tensor& w, int group_size) {
  check(w.rank() == 2, "extract_z_vectors_linear: weight must be out x in");
  const int o = w.dim(0), i = w.dim(1);
  check(i % group_size == 0, "extract_z_vectors_linear: in features must divide by group size");
  const int groups = i / group_size;
  Tensor vecs({o * groups, group_size});
  for (int oc = 0; oc < o; ++oc) {
    for (int g = 0; g < groups; ++g) {
      for (int j = 0; j < group_size; ++j) {
        vecs[(static_cast<std::size_t>(oc) * groups + g) * group_size + j] =
            w.at(oc, g * group_size + j);
      }
    }
  }
  return vecs;
}

void scatter_z_vectors_linear(Tensor& w, const Tensor& vectors, int group_size) {
  const int o = w.dim(0), i = w.dim(1);
  const int groups = i / group_size;
  check(vectors.dim(0) == o * groups && vectors.dim(1) == group_size,
        "scatter_z_vectors_linear: vector count mismatch");
  for (int oc = 0; oc < o; ++oc) {
    for (int g = 0; g < groups; ++g) {
      for (int j = 0; j < group_size; ++j) {
        w.at(oc, g * group_size + j) =
            vectors[(static_cast<std::size_t>(oc) * groups + g) * group_size + j];
      }
    }
  }
}

Tensor extract_xy_kernels(const Tensor& w) {
  check(w.rank() == 4, "extract_xy_kernels: weight must be OIHW");
  const int o = w.dim(0), i = w.dim(1), kh = w.dim(2), kw = w.dim(3);
  Tensor kernels({o * i, kh * kw});
  for (int oc = 0; oc < o; ++oc) {
    for (int ic = 0; ic < i; ++ic) {
      for (int k = 0; k < kh * kw; ++k) {
        kernels[(static_cast<std::size_t>(oc) * i + ic) * kh * kw + k] =
            w.data()[((static_cast<std::size_t>(oc) * i + ic) * kh * kw) + k];
      }
    }
  }
  return kernels;
}

void scatter_xy_kernels(Tensor& w, const Tensor& kernels) {
  const int o = w.dim(0), i = w.dim(1), kh = w.dim(2), kw = w.dim(3);
  check(kernels.dim(0) == o * i && kernels.dim(1) == kh * kw,
        "scatter_xy_kernels: kernel count mismatch");
  for (std::size_t idx = 0; idx < w.size(); ++idx) w[idx] = kernels[idx];
}

bool z_poolable(const nn::ConvSpec& spec, int group_size) {
  return spec.groups == 1 && spec.in_ch % group_size == 0 && spec.in_ch >= group_size;
}

}  // namespace bswp::pool
