// Weight grouping: slicing conv/linear weight tensors into the 1xG vectors
// that the weight pool shares (paper §3, Figure 3).
//
// z-dimension grouping slices along the input-channel axis: the vector for
// (output filter o, group g, kernel position ky,kx) is
//   w[o, g*G .. g*G+G-1, ky, kx].
// Canonical vector ordering everywhere in this repo is row-major over
// (o, g, ky, kx). xy-dimension grouping (the Figure 4 baseline) slices whole
// kh*kw kernels per (o, i) pair.
#pragma once

#include "core/tensor.h"
#include "nn/layers.h"

namespace bswp::pool {

/// Number of z-dimension groups along the channel axis (in_ch must be a
/// multiple of G unless padding is allowed by the caller).
int num_channel_groups(int in_ch, int group_size);

/// Extract z-dimension vectors from an OIHW conv weight.
/// Returns (out_ch * groups * kh * kw) x G. in_ch % G must be 0.
Tensor extract_z_vectors(const Tensor& w, int group_size);

/// Inverse of extract_z_vectors: write vectors back into the weight tensor.
void scatter_z_vectors(Tensor& w, const Tensor& vectors, int group_size);

/// Same slicing for a linear weight (out x in): vectors along the input axis.
Tensor extract_z_vectors_linear(const Tensor& w, int group_size);
void scatter_z_vectors_linear(Tensor& w, const Tensor& vectors, int group_size);

/// Extract xy-dimension kernels from an OIHW conv weight:
/// returns (out_ch * in_cg) x (kh*kw).
Tensor extract_xy_kernels(const Tensor& w);
void scatter_xy_kernels(Tensor& w, const Tensor& kernels);

/// True if a conv layer is z-poolable with group size G: ungrouped conv with
/// in_ch divisible by G (the paper keeps shallow first layers uncompressed).
bool z_poolable(const nn::ConvSpec& spec, int group_size);

}  // namespace bswp::pool
