#include "pool/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bswp::pool {

double distance(const float* a, const float* b, int dim, Metric metric) {
  if (metric == Metric::kEuclidean) {
    double d = 0.0;
    for (int i = 0; i < dim; ++i) {
      const double diff = static_cast<double>(a[i]) - b[i];
      d += diff * diff;
    }
    return d;
  }
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int i = 0; i < dim; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 1.0;
  return 1.0 - dot / std::sqrt(na * nb);
}

int nearest_centroid(const float* v, const Tensor& centroids, Metric metric) {
  const int k = centroids.dim(0), dim = centroids.dim(1);
  int best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (int c = 0; c < k; ++c) {
    const double d = distance(v, centroids.data() + static_cast<std::size_t>(c) * dim, dim, metric);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

KMeansResult kmeans(const Tensor& vectors, const KMeansOptions& opt) {
  check(vectors.rank() == 2, "kmeans: input must be n x dim");
  const int n = vectors.dim(0), dim = vectors.dim(1);
  const int k = std::min(opt.clusters, n);
  check(k >= 1, "kmeans: need at least one cluster");
  Rng rng(opt.seed);

  KMeansResult res;
  res.centroids = Tensor({k, dim});
  res.assignment.assign(static_cast<std::size_t>(n), 0);

  auto vec = [&](int i) { return vectors.data() + static_cast<std::size_t>(i) * dim; };
  auto cen = [&](int c) { return res.centroids.data() + static_cast<std::size_t>(c) * dim; };

  // --- k-means++ seeding ---------------------------------------------------
  {
    const int first = static_cast<int>(rng.uniform_int(static_cast<uint64_t>(n)));
    std::copy(vec(first), vec(first) + dim, cen(0));
    std::vector<double> d2(static_cast<std::size_t>(n));
    for (int c = 1; c < k; ++c) {
      double total = 0.0;
      for (int i = 0; i < n; ++i) {
        double best = std::numeric_limits<double>::max();
        for (int j = 0; j < c; ++j) best = std::min(best, distance(vec(i), cen(j), dim, opt.metric));
        d2[static_cast<std::size_t>(i)] = best;
        total += best;
      }
      int chosen = n - 1;
      if (total > 0.0) {
        double r = rng.uniform() * total;
        for (int i = 0; i < n; ++i) {
          r -= d2[static_cast<std::size_t>(i)];
          if (r <= 0.0) {
            chosen = i;
            break;
          }
        }
      } else {
        chosen = static_cast<int>(rng.uniform_int(static_cast<uint64_t>(n)));
      }
      std::copy(vec(chosen), vec(chosen) + dim, cen(c));
    }
  }

  // --- Lloyd iterations ------------------------------------------------------
  std::vector<double> sums(static_cast<std::size_t>(k) * dim);
  std::vector<int> counts(static_cast<std::size_t>(k));
  for (int iter = 0; iter < opt.max_iters; ++iter) {
    res.iters_run = iter + 1;
    res.inertia = 0.0;
    for (int i = 0; i < n; ++i) {
      const int c = nearest_centroid(vec(i), res.centroids, opt.metric);
      res.assignment[static_cast<std::size_t>(i)] = c;
      res.inertia += distance(vec(i), cen(c), dim, opt.metric);
    }
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (int i = 0; i < n; ++i) {
      const int c = res.assignment[static_cast<std::size_t>(i)];
      ++counts[static_cast<std::size_t>(c)];
      const float* v = vec(i);
      double* s = sums.data() + static_cast<std::size_t>(c) * dim;
      for (int d = 0; d < dim; ++d) s[d] += v[d];
    }
    double movement = 0.0;
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) {
        // Re-seed empty cluster from a random vector.
        const int i = static_cast<int>(rng.uniform_int(static_cast<uint64_t>(n)));
        std::copy(vec(i), vec(i) + dim, cen(c));
        movement += 1.0;
        continue;
      }
      const double inv = 1.0 / counts[static_cast<std::size_t>(c)];
      float* cv = cen(c);
      const double* s = sums.data() + static_cast<std::size_t>(c) * dim;
      for (int d = 0; d < dim; ++d) {
        const double nv = s[d] * inv;
        movement += std::fabs(nv - cv[d]);
        cv[d] = static_cast<float>(nv);
      }
    }
    if (movement < opt.tol) break;
  }
  // Final assignment against the last centroid update.
  res.inertia = 0.0;
  for (int i = 0; i < n; ++i) {
    const int c = nearest_centroid(vec(i), res.centroids, opt.metric);
    res.assignment[static_cast<std::size_t>(i)] = c;
    res.inertia += distance(vec(i), cen(c), dim, opt.metric);
  }
  return res;
}

}  // namespace bswp::pool
