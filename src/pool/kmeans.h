// K-means clustering for weight vectors.
//
// The paper clusters 1xG channel-dimension weight vectors "using K-means
// clustering (with a cosine distance metric to avoid scaling dependence)"
// (§3). Cosine mode normalizes the direction for assignment but keeps
// centroids as plain means of the assigned raw vectors, so pool vectors
// retain representative magnitudes (the z-dimension pool has no scaling
// coefficients). Euclidean mode is used by the xy-dimension baseline.
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/tensor.h"

namespace bswp::pool {

enum class Metric { kEuclidean, kCosine };

struct KMeansOptions {
  int clusters = 64;
  Metric metric = Metric::kCosine;
  int max_iters = 50;
  double tol = 1e-5;  // stop when centroid movement falls below this
  uint64_t seed = 99;
};

struct KMeansResult {
  Tensor centroids;              // clusters x dim
  std::vector<int> assignment;   // one entry per input vector
  int iters_run = 0;
  double inertia = 0.0;          // sum of assignment distances
};

/// Distance between two vectors under a metric. Cosine distance is
/// 1 - cos(a, b); zero vectors are treated as distance 1 from everything.
double distance(const float* a, const float* b, int dim, Metric metric);

/// Cluster `vectors` (n x dim tensor). k-means++ seeding, Lloyd iterations.
KMeansResult kmeans(const Tensor& vectors, const KMeansOptions& opt);

/// Index of the centroid nearest to `v` under the metric.
int nearest_centroid(const float* v, const Tensor& centroids, Metric metric);

}  // namespace bswp::pool
