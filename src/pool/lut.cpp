#include "pool/lut.h"

#include <algorithm>
#include <cmath>

#include "quant/quantize.h"

namespace bswp::pool {

QTensor quantize_pool(const WeightPool& pool, int bits) {
  return quant::quantize_symmetric(pool.vectors, bits);
}

int32_t reference_bit_dot(const QTensor& qpool, uint32_t bit_vector, int s) {
  const int dim = qpool.dim(1);
  int32_t acc = 0;
  for (int j = 0; j < dim; ++j) {
    if ((bit_vector >> j) & 1u) acc += qpool.data[static_cast<std::size_t>(s) * dim + j];
  }
  return acc;
}

DotLut build_lut(const WeightPool& pool, const LutOptions& opt) {
  check(pool.size() > 0, "build_lut: empty pool");
  check(pool.group_size >= 1 && pool.group_size <= 16, "build_lut: group size out of range");
  check(opt.bitwidth >= 2 && opt.bitwidth <= 32, "build_lut: LUT bitwidth out of range");

  const QTensor qpool = quantize_pool(pool, opt.pool_quant_bits);
  DotLut lut;
  lut.group_size = pool.group_size;
  lut.pool_size = pool.size();
  lut.bitwidth = opt.bitwidth;
  lut.order = opt.order;
  lut.pool_scale = qpool.scale;

  const int nb = lut.num_bit_vectors();
  lut.entries.assign(static_cast<std::size_t>(nb) * lut.pool_size, 0);

  // Raw (exact) entries first; find their dynamic range.
  int32_t max_abs = 0;
  std::vector<int32_t> raw(static_cast<std::size_t>(nb) * lut.pool_size);
  for (int b = 0; b < nb; ++b) {
    for (int s = 0; s < lut.pool_size; ++s) {
      const int32_t v = reference_bit_dot(qpool, static_cast<uint32_t>(b), s);
      raw[static_cast<std::size_t>(b) * lut.pool_size + s] = v;
      max_abs = std::max(max_abs, std::abs(v));
    }
  }

  // Requantize to B_l bits. If the raw range already fits, entries are exact
  // (entry_scale = 1) — this is why a 16-bit LUT matches the no-LUT reference
  // in Table 5.
  const int32_t qmax = (int64_t{1} << (opt.bitwidth - 1)) - 1;
  lut.entry_scale =
      max_abs > qmax ? static_cast<float>(max_abs) / static_cast<float>(qmax) : 1.0f;
  for (int b = 0; b < nb; ++b) {
    for (int s = 0; s < lut.pool_size; ++s) {
      const int32_t v = raw[static_cast<std::size_t>(b) * lut.pool_size + s];
      const int32_t q =
          lut.entry_scale == 1.0f
              ? v
              : quant::clamp_q(static_cast<int32_t>(std::lround(v / lut.entry_scale)), -qmax - 1,
                               qmax);
      lut.entries[lut.flat_index(static_cast<uint32_t>(b), s)] = q;
    }
  }
  return lut;
}

}  // namespace bswp::pool
