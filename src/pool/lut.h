// Dot-product lookup table generation (paper §3.1-3.2).
//
// For a pool of S vectors of length N, the LUT stores, for every N-bit
// activation bit-vector b and every pool vector s, the 1-bit dot product
//   raw(b, s) = sum_j bit_j(b) * qpool[s][j]
// where qpool is the pool quantized to int8 (weights are never stored, only
// these partial dot products — "the weight bitwidth of weight pool networks
// can be arbitrary"). Entries are then requantized to the LUT bitwidth B_l
// (Eq. 3: storage = 2^N * S * B_l bits). Bit j of the table index corresponds
// to vector element j.
//
// Two memory layouts are supported (§4.2): input-oriented (blocks indexed by
// bit-vector, each holding all S pool results — the layout that makes LUT
// caching work) and weight-oriented (blocks per pool vector).
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.h"
#include "pool/codec.h"

namespace bswp::pool {

enum class LutOrder { kInputOriented, kWeightOriented };

struct DotLut {
  int group_size = 8;   // N
  int pool_size = 0;    // S
  int bitwidth = 8;     // B_l
  LutOrder order = LutOrder::kInputOriented;

  /// Quantization chain: real partial sum = entry * entry_scale * pool_scale,
  /// where pool_scale is the int8 pool quantization scale and entry_scale
  /// the B_l requantization step (1.0 when B_l is wide enough to be exact).
  float pool_scale = 1.0f;
  float entry_scale = 1.0f;

  std::vector<int32_t> entries;  // (1 << N) * S

  int num_bit_vectors() const { return 1 << group_size; }
  std::size_t flat_index(uint32_t bits, int s) const {
    return order == LutOrder::kInputOriented
               ? static_cast<std::size_t>(bits) * pool_size + static_cast<std::size_t>(s)
               : static_cast<std::size_t>(s) * num_bit_vectors() + bits;
  }
  int32_t at(uint32_t bits, int s) const { return entries[flat_index(bits, s)]; }

  /// Eq. 3 storage in bytes: 2^N * S * B_l / 8.
  std::size_t storage_bytes() const {
    return (static_cast<std::size_t>(num_bit_vectors()) * pool_size * bitwidth + 7) / 8;
  }
  /// Bytes of one input-oriented block (all pool entries for one bit-vector);
  /// this is the caching granularity of §4.2.
  std::size_t block_bytes() const {
    return (static_cast<std::size_t>(pool_size) * bitwidth + 7) / 8;
  }
};

struct LutOptions {
  int bitwidth = 8;
  LutOrder order = LutOrder::kInputOriented;
  int pool_quant_bits = 8;
};

/// Quantize the pool symmetrically to `bits` (shared scale across the pool —
/// the pool is global so its scale is global).
QTensor quantize_pool(const WeightPool& pool, int bits);

/// Build the dot-product LUT from a pool.
DotLut build_lut(const WeightPool& pool, const LutOptions& opt);

/// Exact integer dot product between the bits of `bit_vector` and the int8
/// pool vector `s` (reference for tests and for the exact/wide-B_l path).
int32_t reference_bit_dot(const QTensor& qpool, uint32_t bit_vector, int s);

}  // namespace bswp::pool
