#include "pool/storage_model.h"

#include <cmath>

namespace bswp::pool {

namespace {
double log2_int(int v) { return std::log2(static_cast<double>(v)); }
}  // namespace

double StorageReport::original_bits() const {
  return static_cast<double>(total_params) * weight_bits;
}

double StorageReport::index_bits() const {
  const double groups = static_cast<double>(pooled_params) / group_size;
  const double bits_per_index = packed_indices ? log2_int(pool_size) : 8.0;
  return groups * bits_per_index;
}

double StorageReport::lut_storage_bits() const {
  return std::pow(2.0, group_size) * pool_size * lut_bits;
}

double StorageReport::uncompressed_bits() const {
  return static_cast<double>(uncompressed_params) * weight_bits;
}

double StorageReport::compressed_bits() const {
  return index_bits() + lut_storage_bits() + uncompressed_bits();
}

double StorageReport::compression_ratio() const {
  const double c = compressed_bits();
  return c > 0.0 ? original_bits() / c : 0.0;
}

double StorageReport::lut_overhead_fraction() const {
  const double c = compressed_bits();
  return c > 0.0 ? lut_storage_bits() / c : 0.0;
}

StorageReport analyze_storage(const nn::Graph& g, const PooledNetwork& net, int weight_bits,
                              int lut_bits, bool packed_indices) {
  StorageReport r;
  r.group_size = net.pool.group_size;
  r.pool_size = net.pool.size();
  r.weight_bits = weight_bits;
  r.lut_bits = lut_bits;
  r.packed_indices = packed_indices;

  std::vector<bool> pooled(static_cast<std::size_t>(g.num_nodes()), false);
  for (const PooledLayer& l : net.layers) pooled[static_cast<std::size_t>(l.node)] = true;

  for (int node = 0; node < g.num_nodes(); ++node) {
    const nn::Node& n = g.node(node);
    if (n.op != nn::Op::kConv2d && n.op != nn::Op::kLinear) continue;
    r.total_params += n.weight.size() + n.bias.size();
    if (pooled[static_cast<std::size_t>(node)]) {
      r.pooled_params += n.weight.size();
      r.uncompressed_params += n.bias.size();  // biases stay dense
    } else {
      r.uncompressed_params += n.weight.size() + n.bias.size();
    }
  }
  return r;
}

double max_compression_ratio(std::size_t total_weights, int weight_bits, int group_size,
                             int pool_size, int lut_bits) {
  const double w = static_cast<double>(total_weights);
  const double denom =
      w / group_size * log2_int(pool_size) + std::pow(2.0, group_size) * pool_size * lut_bits;
  return w * weight_bits / denom;
}

}  // namespace bswp::pool
