// Storage and compression-ratio model (paper Eq. 3-4, Table 3).
//
// For a network with W weight parameters at baseline bitwidth B_w, a pooled
// network stores: per-group indices (W_pooled / N groups at log2(S) bits),
// the LUT (2^N * S * B_l bits), and any uncompressed layers at B_w bits.
#pragma once

#include <cstddef>

#include "nn/graph.h"
#include "pool/codec.h"

namespace bswp::pool {

struct StorageReport {
  std::size_t total_params = 0;         // W: all conv/linear weights + biases
  std::size_t pooled_params = 0;        // weights replaced by indices
  std::size_t uncompressed_params = 0;  // weights kept at B_w

  int group_size = 8;   // N
  int pool_size = 64;   // S
  int weight_bits = 8;  // B_w
  int lut_bits = 8;     // B_l
  bool packed_indices = true;  // count indices at log2(S) (Eq. 4) vs 8 bits

  double original_bits() const;
  double index_bits() const;
  double lut_storage_bits() const;
  double uncompressed_bits() const;
  double compressed_bits() const;
  /// Eq. 4 generalized with the uncompressed-layer term.
  double compression_ratio() const;
  /// "LUT overhead" column of Table 3: LUT share of compressed storage.
  double lut_overhead_fraction() const;
};

/// Inventory a pooled graph. Biases and uncompressed conv/linear weights are
/// counted at B_w; pooled weights are counted as indices.
StorageReport analyze_storage(const nn::Graph& g, const PooledNetwork& net, int weight_bits = 8,
                              int lut_bits = 8, bool packed_indices = true);

/// Pure Eq. 4 (everything pooled, no uncompressed layers) — the theoretical
/// maximum CR discussed in §3.2.
double max_compression_ratio(std::size_t total_weights, int weight_bits, int group_size,
                             int pool_size, int lut_bits);

}  // namespace bswp::pool
