#include "quant/calibrate.h"

#include <algorithm>
#include <cmath>

#include "quant/quantize.h"

namespace bswp::quant {

CalibrationResult calibrate(nn::Graph& g, const data::Dataset& ds, const CalibrateOptions& opt) {
  CalibrationResult result;
  const int total = std::min(opt.num_samples, ds.size());
  // Collected samples per node. To bound memory we subsample values.
  std::map<int, std::vector<float>> node_values;

  for (int start = 0; start < total; start += opt.batch_size) {
    const int count = std::min(opt.batch_size, total - start);
    data::Batch b = ds.batch(start, count);
    result.input_abs_max = std::max(result.input_abs_max, b.images.abs_max());
    g.forward(b.images, /*training=*/false);
    for (int i = 0; i < g.num_nodes(); ++i) {
      const Tensor& act = g.activation(i);
      auto& vals = node_values[i];
      // Stride-subsample to at most ~4k values per node per batch.
      const std::size_t stride = std::max<std::size_t>(1, act.size() / 4096);
      for (std::size_t j = 0; j < act.size(); j += stride) vals.push_back(act[j]);
    }
  }

  for (auto& [node, vals] : node_values) {
    float range, abs_range;
    if (opt.iterative) {
      range = choose_clip_iterative(vals, opt.act_bits);
      std::vector<float> abs_vals(vals.size());
      for (std::size_t i = 0; i < vals.size(); ++i) abs_vals[i] = std::fabs(vals[i]);
      abs_range = choose_clip_iterative(abs_vals, opt.act_bits);
    } else {
      range = 0.0f;
      abs_range = 0.0f;
      for (float v : vals) {
        range = std::max(range, v);
        abs_range = std::max(abs_range, std::fabs(v));
      }
      if (range <= 0.0f) range = 1.0f;
      if (abs_range <= 0.0f) abs_range = 1.0f;
    }
    result.node_range[node] = range;
    result.node_abs_range[node] = abs_range;
  }
  return result;
}

void apply_ranges_to_fake_quant(nn::Graph& g, const CalibrationResult& cal) {
  for (int i = 0; i < g.num_nodes(); ++i) {
    nn::Node& n = g.node(i);
    if (n.op != nn::Op::kFakeQuant) continue;
    const int src = n.inputs.at(0);
    auto it = cal.node_range.find(src);
    if (it != cal.node_range.end()) n.fq_range = it->second;
  }
}

}  // namespace bswp::quant
