// Activation-range calibration.
//
// Runs the float graph over a calibration batch and records, for every node,
// the post-activation value distribution needed to pick quantization ranges
// (iterative clip search, §5.3.3). The runtime pipeline uses these ranges to
// quantize inter-layer activations; QAT benches use them to seed fake-quant
// node clip ranges.
#pragma once

#include <map>
#include <vector>

#include "data/synthetic.h"
#include "nn/graph.h"

namespace bswp::quant {

struct CalibrationResult {
  /// node id -> chosen unsigned clip range for the node's *output*
  /// (post-ReLU layers; negatives clamp to zero).
  std::map<int, float> node_range;
  /// node id -> chosen clip on |value| (for signed intermediates such as
  /// residual-add inputs that carry negative values).
  std::map<int, float> node_abs_range;
  /// Range of the network input (may include negatives; stored as abs-max
  /// since the first layer runs in signed int8).
  float input_abs_max = 1.0f;

  float range(int node) const { return node_range.at(node); }
  float abs_range(int node) const { return node_abs_range.at(node); }
};

struct CalibrateOptions {
  int num_samples = 256;
  int batch_size = 64;
  int act_bits = 8;    // bitwidth the iterative search optimizes for
  bool iterative = true;  // false = plain max calibration
};

/// Calibrate node output ranges on `ds` (first `num_samples` samples).
CalibrationResult calibrate(nn::Graph& g, const data::Dataset& ds, const CalibrateOptions& opt);

/// Copy calibrated ranges into the graph's fake-quant nodes (each fake-quant
/// node inherits the range recorded for its input node).
void apply_ranges_to_fake_quant(nn::Graph& g, const CalibrationResult& cal);

}  // namespace bswp::quant
