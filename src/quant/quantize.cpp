#include "quant/quantize.h"

#include <algorithm>
#include <cmath>

namespace bswp::quant {

float symmetric_scale(const Tensor& t, int bits) {
  check(bits >= 2 && bits <= 16, "symmetric quant needs 2..16 bits");
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  const float amax = t.abs_max();
  return amax > 0.0f ? amax / qmax : 1.0f;
}

QTensor quantize_symmetric(const Tensor& t, int bits, float scale) {
  QTensor q(t.shape(), bits, /*is_signed=*/true);
  q.scale = scale;
  const int lo = q.qmin(), hi = q.qmax();
  for (std::size_t i = 0; i < t.size(); ++i) {
    const int v = static_cast<int>(std::lround(t[i] / scale));
    q.data[i] = static_cast<int16_t>(clamp_q(v, lo, hi));
  }
  return q;
}

QTensor quantize_symmetric(const Tensor& t, int bits) {
  return quantize_symmetric(t, bits, symmetric_scale(t, bits));
}

QTensor quantize_unsigned(const Tensor& t, int bits, float range) {
  check(bits >= 1 && bits <= 16, "unsigned quant needs 1..16 bits");
  check(range > 0.0f, "unsigned quant needs positive range");
  QTensor q(t.shape(), bits, /*is_signed=*/false);
  const int hi = q.qmax();
  q.scale = range / static_cast<float>(hi);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const int v = static_cast<int>(std::lround(t[i] / q.scale));
    q.data[i] = static_cast<int16_t>(clamp_q(v, 0, hi));
  }
  return q;
}

double unsigned_quant_mse(const std::vector<float>& values, int bits, float range) {
  if (values.empty() || range <= 0.0f) return 0.0;
  const float hi = static_cast<float>((1 << bits) - 1);
  const float step = range / hi;
  double mse = 0.0;
  for (float v : values) {
    const float c = std::clamp(v, 0.0f, range);
    const float q = std::round(c / step) * step;
    const double e = static_cast<double>(v) - q;
    mse += e * e;
  }
  return mse / static_cast<double>(values.size());
}

float choose_clip_iterative(const std::vector<float>& values, int bits, int iters) {
  float vmax = 0.0f;
  for (float v : values) vmax = std::max(vmax, v);
  if (vmax <= 0.0f) return 1.0f;

  // Golden-section search for the clip range over [5% max, max]. The MSE as a
  // function of the clip is smooth and unimodal in practice; the paper calls
  // this step "an iterative search algorithm to determine the optimal range".
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 0.05 * vmax, hi = vmax;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = unsigned_quant_mse(values, bits, static_cast<float>(x1));
  double f2 = unsigned_quant_mse(values, bits, static_cast<float>(x2));
  for (int i = 0; i < iters; ++i) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = unsigned_quant_mse(values, bits, static_cast<float>(x1));
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = unsigned_quant_mse(values, bits, static_cast<float>(x2));
    }
  }
  return static_cast<float>((lo + hi) / 2.0);
}

}  // namespace bswp::quant
