// Quantization primitives.
//
// Two schemes are used throughout the repo, matching the paper's inference
// setup:
//  * weights / LUT entries: symmetric signed `bits`-bit, zero_point = 0;
//  * activations (post-ReLU):  unsigned `bits`-bit over [0, range].
// `choose_clip_iterative` implements the paper's "iterative search algorithm
// to determine the optimal range when quantizing activations" (§5.3.3) as a
// golden-section search over the clip fraction minimizing quantization MSE.
#pragma once

#include <vector>

#include "core/tensor.h"

namespace bswp::quant {

/// Scale for symmetric signed quantization of `t` to `bits` bits.
float symmetric_scale(const Tensor& t, int bits);

/// Quantize to symmetric signed `bits`-bit with the given scale.
QTensor quantize_symmetric(const Tensor& t, int bits, float scale);
QTensor quantize_symmetric(const Tensor& t, int bits);

/// Quantize to unsigned `bits`-bit over [0, range] (values are clamped).
QTensor quantize_unsigned(const Tensor& t, int bits, float range);

/// Mean squared error between `t` and its (bits, range) unsigned quantization.
double unsigned_quant_mse(const std::vector<float>& values, int bits, float range);

/// Iterative (golden-section) search for the clip range in (0, max(values)]
/// minimizing unsigned-quantization MSE. Returns the chosen range.
float choose_clip_iterative(const std::vector<float>& values, int bits, int iters = 40);

/// Round-to-nearest division by 2^shift (used by requantization paths).
inline int32_t rounding_rshift(int64_t v, int shift) {
  if (shift <= 0) return static_cast<int32_t>(v << -shift);
  const int64_t round = int64_t{1} << (shift - 1);
  return static_cast<int32_t>((v + (v >= 0 ? round : round - 1)) >> shift);
}

/// Clamp helper for integer requantization.
inline int32_t clamp_q(int32_t v, int32_t lo, int32_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace bswp::quant
