// Cooperative cancellation for in-flight executor runs.
//
// A CancelToken is the layer-granular shed point of the serving stack: the
// Executor checks it at every layer boundary of run_view()/run_batch_view()
// and abandons the run with an ExecutionCancelled throw when it trips. The
// arena makes abandonment free — every backend rewrites its output slot from
// scratch and the ScratchArena bump-resets per layer, so a cancelled run
// leaves no state a later run could observe; the caller simply never reads
// the output views. No partial QTensor can escape: materialization happens
// only after the full plan walk returns.
//
// Two trip conditions, usable together:
//
//   * cancel() — a manual flag any thread may set at any time;
//   * arm(clock, deadline[, remaining_us, layers, scale]) — a deadline on
//     the injected Clock, optionally sharpened by a per-layer
//     remaining-execution schedule: with a schedule, the token trips at
//     layer p as soon as now + remaining_us[p] * scale overshoots the
//     deadline — i.e. the moment the SLO becomes unreachable, not the
//     moment it is already blown. The InferenceServer derives the schedule
//     from the compiled plan's per-layer CostCounter capture priced with
//     sim::host_profile(), calibrated by measured executor time.
//
// Ownership protocol: arm()/disarm() belong to the single thread driving
// the executor (the worker), called only between runs; cancel() is safe
// from any thread at any point. The schedule pointer is borrowed and must
// stay valid while armed (the server points it at registration-time data
// that is never mutated).
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "runtime/clock.h"

namespace bswp::runtime {

/// Thrown by Executor::run_view / run_batch_view when an armed CancelToken
/// trips at a layer boundary. Deliberately NOT derived from the engine's
/// invariant-failure exceptions: a catcher can tell a deliberate shed from a
/// kernel fault (the server maps this to kDeadlineExpired, anything else to
/// a failed future).
class ExecutionCancelled : public std::runtime_error {
 public:
  explicit ExecutionCancelled(const std::string& what) : std::runtime_error(what) {}
};

class CancelToken {
 public:
  /// Manual trip: the next layer-boundary check abandons the run. Safe from
  /// any thread, including while a run is in flight.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_relaxed); }

  /// Arm a deadline on `clock` (borrowed, must outlive the armed state).
  /// With a non-null `remaining_us` schedule of `layers` entries,
  /// remaining_us[p] is the estimated microseconds of execution from layer p
  /// (inclusive) to the end and `scale` is a measured-over-estimated
  /// calibration factor; the token then trips as soon as the deadline is
  /// unreachable rather than only once it has passed. Owner-thread only,
  /// between runs.
  void arm(const Clock* clock, Clock::time_point deadline, const double* remaining_us = nullptr,
           std::size_t layers = 0, double scale = 1.0) noexcept {
    clock_ = clock;
    deadline_ = deadline;
    remaining_us_ = remaining_us;
    layers_ = layers;
    scale_ = scale;
  }

  /// Clear the deadline AND the manual flag, making the token reusable for
  /// the next run. Owner-thread only, between runs.
  void disarm() noexcept {
    clock_ = nullptr;
    remaining_us_ = nullptr;
    layers_ = 0;
    cancelled_.store(false, std::memory_order_relaxed);
  }

  /// The layer-boundary decision the executor takes before running layer
  /// `layer`: true = abandon the run now.
  bool should_cancel(std::size_t layer) const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (clock_ == nullptr) return false;
    const Clock::time_point now = clock_->now();
    if (now >= deadline_) return true;
    if (remaining_us_ != nullptr && layer < layers_) {
      const double slack_us =
          std::chrono::duration<double, std::micro>(deadline_ - now).count();
      if (remaining_us_[layer] * scale_ > slack_us) return true;
    }
    return false;
  }

 private:
  std::atomic<bool> cancelled_{false};
  const Clock* clock_ = nullptr;
  Clock::time_point deadline_{};
  const double* remaining_us_ = nullptr;
  std::size_t layers_ = 0;
  double scale_ = 1.0;
};

}  // namespace bswp::runtime
