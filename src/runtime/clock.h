// Injectable time source for the serving layers.
//
// Every timed decision in the serving stack — batching windows, request
// deadlines, autoscaler cadence/cooldown, session TTL expiry, latency
// stamps — reads time through a runtime::Clock instead of calling
// std::chrono::steady_clock::now() directly. Production code runs on the
// SteadyClock default (a zero-cost passthrough); tests inject a ManualClock
// and advance virtual time explicitly, so deadline/TTL/autoscaler
// assertions are deterministic instead of racing wall-clock sleeps.
//
// The seam deliberately reuses std::chrono::steady_clock's time_point and
// duration types: existing timestamps keep their types, and a null Clock*
// option field means "the real clock" everywhere a clock is injectable
// (ServerOptions::clock, SessionManagerOptions::clock).
//
// Timed condition-variable waits go through Clock::wait_until so a sleeper
// wakes when *virtual* time passes its wake point. ManualClock implements
// this as a bounded real-time poll (a few hundred microseconds per check):
// callers must treat wait_until exactly like a plain cv wait — spurious
// wakeups allowed, re-check conditions in a loop — which every serving-layer
// wait already does. The consequence is the property the tests rely on:
// while virtual time stands still, no timed decision can fire; advancing
// virtual time is the only way to make one fire.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace bswp::runtime {

class Clock {
 public:
  using time_point = std::chrono::steady_clock::time_point;
  using duration = std::chrono::steady_clock::duration;

  virtual ~Clock() = default;

  /// Current time on this clock. Thread-safe.
  virtual time_point now() const = 0;

  /// Block on `cv` (with `lock` held) until roughly `tp` on THIS clock, a
  /// notification, or a spurious wakeup — callers must re-check their
  /// condition in a loop, exactly as with a raw cv wait.
  virtual void wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                          time_point tp) const = 0;
};

/// The production clock: a passthrough to std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  time_point now() const override { return std::chrono::steady_clock::now(); }
  void wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                  time_point tp) const override {
    cv.wait_until(lock, tp);
  }
};

/// Process-wide SteadyClock instance — what a null injectable clock field
/// resolves to.
inline const Clock& steady_clock_ref() {
  static const SteadyClock clock;
  return clock;
}

/// Test clock: time moves only when advance()/set() is called. Thread-safe
/// (now() is an atomic load), so any number of server/session threads may
/// read it while a test thread advances it.
///
/// Virtual time starts one hour past the steady-clock epoch so that
/// subtraction (cutoffs, cooldown arithmetic) never has to reason about the
/// epoch boundary.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(time_point start = time_point{} + std::chrono::hours(1))
      : now_rep_(start.time_since_epoch().count()) {}

  time_point now() const override {
    return time_point(duration(now_rep_.load(std::memory_order_acquire)));
  }

  /// Move virtual time forward. Sleepers observe the new time within one
  /// poll period (sub-millisecond of real time), not instantly — tests wait
  /// for the *effect* they expect rather than assuming synchronous delivery.
  void advance(duration d) { now_rep_.fetch_add(d.count(), std::memory_order_acq_rel); }
  void set(time_point tp) { now_rep_.store(tp.time_since_epoch().count(), std::memory_order_release); }

  void wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                  time_point tp) const override {
    if (now() >= tp) return;
    // Bounded real-time poll: virtual time cannot wake a real cv, so check
    // it a few thousand times per second. Decisions stay deterministic —
    // they depend only on the virtual now() the caller re-reads after this
    // returns — the poll just bounds how much real time a test waits.
    cv.wait_for(lock, std::chrono::microseconds(200));
  }

 private:
  std::atomic<duration::rep> now_rep_;
};

}  // namespace bswp::runtime
