#include "runtime/compressed_network.h"

namespace bswp::runtime {

const char* plan_kind_name(PlanKind k) {
  switch (k) {
    case PlanKind::kInput: return "input";
    case PlanKind::kConvBaseline: return "conv-int8";
    case PlanKind::kConvBitSerial: return "conv-bitserial";
    case PlanKind::kLinearBaseline: return "fc-int8";
    case PlanKind::kLinearBitSerial: return "fc-bitserial";
    case PlanKind::kMaxPool: return "maxpool";
    case PlanKind::kGlobalAvgPool: return "gap";
    case PlanKind::kAdd: return "add";
    case PlanKind::kFlatten: return "flatten";
    case PlanKind::kRelu: return "relu";
    case PlanKind::kConvBinary: return "conv-xnor";
  }
  return "?";
}

}  // namespace bswp::runtime
