// Deployable (compiled) representation of a network: an ordered list of
// integer-kernel layer plans plus the shared dot-product LUT.
//
// This is the artifact that "ships to the microcontroller" in Figure 1:
// uncompressed layers carry int8 weights, pooled layers carry packed pool
// indices, and one global LUT serves every pooled layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/baseline_conv.h"
#include "kernels/bitserial_conv.h"
#include "kernels/common.h"
#include "pool/lut.h"

namespace bswp::runtime {

enum class PlanKind {
  kInput,
  kConvBaseline,
  kConvBitSerial,
  kLinearBaseline,
  kLinearBitSerial,
  kMaxPool,
  kGlobalAvgPool,
  kAdd,
  kFlatten,
  kRelu,
  /// XNOR-popcount binarized conv (§5.5 baseline). `qweights` holds the
  /// per-weight signs (+-1); per-filter alpha scales live in `rq.scale`.
  kConvBinary,
};

/// Number of PlanKind values (serialization bound / registry iteration).
/// Adding a PlanKind: extend plan_kind_name() below (the consteval guard
/// fails the build otherwise), bump the count static_assert next to the
/// payload serializers in runtime/serialize.cpp, and register a backend.
constexpr int kNumPlanKinds = static_cast<int>(PlanKind::kConvBinary) + 1;

constexpr const char* plan_kind_name(PlanKind k) {
  switch (k) {
    case PlanKind::kInput: return "input";
    case PlanKind::kConvBaseline: return "conv-int8";
    case PlanKind::kConvBitSerial: return "conv-bitserial";
    case PlanKind::kLinearBaseline: return "fc-int8";
    case PlanKind::kLinearBitSerial: return "fc-bitserial";
    case PlanKind::kMaxPool: return "maxpool";
    case PlanKind::kGlobalAvgPool: return "gap";
    case PlanKind::kAdd: return "add";
    case PlanKind::kFlatten: return "flatten";
    case PlanKind::kRelu: return "relu";
    case PlanKind::kConvBinary: return "conv-xnor";
  }
  return nullptr;  // unreachable for in-range kinds; the guard below checks
}

namespace detail {
consteval bool all_plan_kinds_named() {
  for (int i = 0; i < kNumPlanKinds; ++i) {
    if (plan_kind_name(static_cast<PlanKind>(i)) == nullptr) return false;
  }
  return true;
}
}  // namespace detail

static_assert(detail::all_plan_kinds_named(),
              "every PlanKind in [0, kNumPlanKinds) needs a plan_kind_name() case — a new "
              "kind cannot silently skip naming, serialization, or backend registration");

/// Host execution lane of a plan: the scalar reference kernels, or the
/// vectorized + cache-blocked kernels under src/kernels/simd/. Lanes are
/// bit-identical by contract (integer accumulation reordered, scalar
/// requantization per element) and differ only in wall-clock cost;
/// SelectBackends prices them with CompileOptions::host_profile. A plan
/// carrying kSimd resolves to the scalar backend when the SIMD family is
/// compiled out or unsupported at runtime (see backend_variant_key /
/// KernelRegistry::find fallback).
enum class HostLane : uint8_t {
  kScalar = 0,
  kSimd = 1,
};

constexpr const char* host_lane_name(HostLane l) {
  return l == HostLane::kSimd ? "simd" : "scalar";
}

struct LayerPlan {
  PlanKind kind = PlanKind::kInput;
  std::string name;
  std::vector<int> inputs;  // producing plan indices

  nn::ConvSpec spec;               // conv plans
  kernels::Requant rq;             // conv / linear / gap / add requantization
  QTensor qweights;                // baseline conv & linear weights (int8)
  kernels::PackedIndices indices;  // bit-serial plans
  kernels::BitSerialVariant variant = kernels::BitSerialVariant::kCached;
  /// Host execution lane (scalar vs SIMD kernels). Chosen by SelectBackends
  /// for conv/linear kinds; structural plans always run scalar.
  HostLane lane = HostLane::kScalar;
  int pool_k = 2, pool_stride = 2;

  // Output quantization of this plan's activation. For requantizing plans it
  // mirrors rq.out; structural plans (maxpool/flatten/relu) inherit it from
  // their producer.
  kernels::OutputQuant out;
  std::vector<int> out_chw;

  std::size_t out_elems() const {
    std::size_t n = 1;
    for (int d : out_chw) n *= static_cast<std::size_t>(d);
    return n;
  }
};

struct CompiledNetwork {
  std::vector<LayerPlan> plans;
  pool::DotLut lut;
  bool has_lut = false;
  int act_bits = 8;
  float input_scale = 1.0f;

  int count_kind(PlanKind k) const {
    int n = 0;
    for (const auto& p : plans)
      if (p.kind == k) ++n;
    return n;
  }
};

}  // namespace bswp::runtime
