#include "runtime/engine.h"

#include <algorithm>
#include <cmath>

#include "runtime/kernel_backend.h"

namespace bswp::runtime {

std::vector<const KernelBackend*> resolve_backends(const CompiledNetwork& net) {
  const KernelRegistry& registry = KernelRegistry::instance();
  std::vector<const KernelBackend*> backends;
  backends.reserve(net.plans.size());
  for (const LayerPlan& plan : net.plans) {
    backends.push_back(&registry.resolve(plan.kind, backend_variant_key(plan)));
  }
  return backends;
}

QTensor run(const CompiledNetwork& net, const Tensor& image, sim::CostCounter* counter,
            const std::vector<const KernelBackend*>& backends) {
  check(!net.plans.empty(), "engine: empty network");
  check(backends.size() == net.plans.size(), "engine: backends do not match the network");
  std::vector<QTensor> acts(net.plans.size());
  for (std::size_t p = 0; p < net.plans.size(); ++p) {
    ExecContext ctx{net, net.plans[p], &image, acts, counter};
    acts[p] = backends[p]->execute(ctx);
  }
  return acts.back();
}

QTensor run(const CompiledNetwork& net, const Tensor& image, sim::CostCounter* counter) {
  return run(net, image, counter, resolve_backends(net));
}

Tensor run_logits(const CompiledNetwork& net, const Tensor& image, sim::CostCounter* counter) {
  return run(net, image, counter).dequantize();
}

sim::MemoryFootprint footprint(const CompiledNetwork& net) {
  sim::MemoryFootprint fp;
  if (net.has_lut) fp.flash_bytes += net.lut.storage_bytes();

  // Flash image: weights / indices / per-channel requant constants (scale +
  // bias as 4-byte words each, the fixed-point multiplier pairs of a real
  // deployment).
  for (const auto& plan : net.plans) {
    switch (plan.kind) {
      case PlanKind::kConvBaseline:
      case PlanKind::kLinearBaseline:
        fp.flash_bytes += plan.qweights.size();  // int8 weights, 1 byte each
        fp.flash_bytes += plan.rq.scale.size() * 8;
        break;
      case PlanKind::kConvBitSerial:
      case PlanKind::kLinearBitSerial:
        fp.flash_bytes += plan.indices.storage_bytes();
        fp.flash_bytes += plan.rq.scale.size() * 8;
        break;
      case PlanKind::kConvBinary:
        fp.flash_bytes += (plan.qweights.size() + 7) / 8;  // 1-bit packed signs
        fp.flash_bytes += plan.rq.scale.size() * 8;
        break;
      default:
        break;
    }
  }

  // Peak SRAM under a tight deployment planner. Modeled implementation
  // techniques (all standard on memory-starved MCUs, documented in
  // DESIGN.md):
  //  * rolling in-place convolution: a stride-1 same-size conv overwrites
  //    input rows as they die, so only ~(kh+1) extra output rows are live;
  //  * conv+maxpool fusion: a conv feeding only a maxpool streams pooled
  //    rows, never materializing the pre-pool map;
  //  * residual adds accumulate in place over one operand (both operands
  //    are live during the add — residual blocks need two feature maps).
  const int n = static_cast<int>(net.plans.size());
  std::vector<std::vector<int>> consumers(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    for (int in : net.plans[static_cast<std::size_t>(p)].inputs)
      consumers[static_cast<std::size_t>(in)].push_back(p);
  }
  auto out_bytes_of = [&](int p) {
    const LayerPlan& lp = net.plans[static_cast<std::size_t>(p)];
    return lp.out_elems() * lp.bytes_per_elem();
  };

  std::size_t peak = 0;
  for (int p = 0; p < n; ++p) {
    const LayerPlan& plan = net.plans[static_cast<std::size_t>(p)];
    std::size_t out_bytes = out_bytes_of(p);
    int out_h = plan.out_chw.size() == 3 ? plan.out_chw[1] : 1;
    std::size_t live = 0;
    std::size_t scratch = 0;
    const bool is_conv =
        plan.kind == PlanKind::kConvBaseline || plan.kind == PlanKind::kConvBitSerial;
    if (is_conv) {
      // Fused maxpool: the sole consumer pools this output.
      if (consumers[static_cast<std::size_t>(p)].size() == 1) {
        const LayerPlan& c =
            net.plans[static_cast<std::size_t>(consumers[static_cast<std::size_t>(p)][0])];
        if (c.kind == PlanKind::kMaxPool) {
          out_bytes /= static_cast<std::size_t>(c.pool_stride) * c.pool_stride;
          out_h /= c.pool_stride;
        }
      }
      const std::size_t in_bytes = out_bytes_of(plan.inputs[0]);
      const std::size_t row = out_h > 0 ? out_bytes / static_cast<std::size_t>(out_h) : out_bytes;
      live = std::max(in_bytes, out_bytes) +
             std::min(out_bytes, static_cast<std::size_t>(plan.spec.kh + 1) * row);
      scratch = plan.kind == PlanKind::kConvBaseline
                    ? kernels::baseline_conv_scratch_bytes(plan.spec)
                    : kernels::bitserial_scratch_bytes(plan.spec, net.lut, plan.variant,
                                                       net.act_bits);
    } else if (plan.kind == PlanKind::kAdd) {
      live = out_bytes_of(plan.inputs[0]) + out_bytes_of(plan.inputs[1]);
    } else if (plan.kind == PlanKind::kInput) {
      live = out_bytes;
    } else if (plan.kind == PlanKind::kMaxPool) {
      // A maxpool fused into its producing conv (sole consumer) streams the
      // pooled map directly; only the pooled output is ever materialized.
      const int src = plan.inputs[0];
      const LayerPlan& sp = net.plans[static_cast<std::size_t>(src)];
      const bool fused = (sp.kind == PlanKind::kConvBaseline ||
                          sp.kind == PlanKind::kConvBitSerial) &&
                         consumers[static_cast<std::size_t>(src)].size() == 1;
      live = fused ? out_bytes : out_bytes_of(src) + out_bytes;
    } else if (plan.kind == PlanKind::kConvBinary) {
      // XNOR conv scratch: the packed +-1 input map (1 bit/lane, word-padded
      // along channels) lives in SRAM next to the unpacked input and output.
      const LayerPlan& src = net.plans[static_cast<std::size_t>(plan.inputs[0])];
      const int in_ch = plan.spec.in_ch;
      const int words = (in_ch + 31) / 32;
      const std::size_t in_hw = in_ch > 0 ? src.out_elems() / static_cast<std::size_t>(in_ch) : 0;
      live = out_bytes_of(plan.inputs[0]) + out_bytes;
      scratch = in_hw * static_cast<std::size_t>(words) * 4;
    } else if (plan.kind == PlanKind::kLinearBaseline || plan.kind == PlanKind::kLinearBitSerial) {
      live = out_bytes_of(plan.inputs[0]) + out_bytes;
      if (plan.kind == PlanKind::kLinearBitSerial) {
        nn::ConvSpec fc_spec;
        fc_spec.out_ch = plan.indices.out_ch;
        scratch = kernels::bitserial_scratch_bytes(fc_spec, net.lut, plan.variant, net.act_bits);
      }
    } else {
      live = out_bytes_of(plan.inputs[0]) + out_bytes;
    }
    peak = std::max(peak, live + scratch);
  }
  fp.sram_bytes = peak;
  return fp;
}

}  // namespace bswp::runtime
