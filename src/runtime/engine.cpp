#include "runtime/engine.h"

#include <algorithm>
#include <cmath>

#include "quant/quantize.h"

namespace bswp::runtime {

QTensor run(const CompiledNetwork& net, const Tensor& image, sim::CostCounter* counter) {
  std::vector<QTensor> acts(net.plans.size());
  for (std::size_t p = 0; p < net.plans.size(); ++p) {
    const LayerPlan& plan = net.plans[p];
    auto in = [&](int i) -> const QTensor& { return acts[static_cast<std::size_t>(plan.inputs[static_cast<std::size_t>(i)])]; };
    switch (plan.kind) {
      case PlanKind::kInput: {
        Tensor img = image;
        if (img.rank() == 3) {
          img.reshape({1, img.dim(0), img.dim(1), img.dim(2)});
        }
        check(img.rank() == 4 && img.dim(0) == 1, "engine: input must be a single CHW image");
        QTensor q({1, img.dim(1), img.dim(2), img.dim(3)}, 8, /*is_signed=*/true);
        q.scale = plan.out_scale;
        for (std::size_t i = 0; i < img.size(); ++i) {
          q.data[i] = static_cast<int16_t>(
              quant::clamp_q(static_cast<int32_t>(std::lround(img[i] / q.scale)), -128, 127));
        }
        acts[p] = std::move(q);
        break;
      }
      case PlanKind::kConvBaseline:
        acts[p] = kernels::baseline_conv2d(in(0), plan.qweights, plan.spec, plan.rq, counter);
        break;
      case PlanKind::kConvBitSerial:
        acts[p] = kernels::bitserial_conv2d(in(0), plan.indices, net.lut, plan.spec, plan.rq,
                                            plan.variant, counter);
        break;
      case PlanKind::kLinearBaseline:
        acts[p] = kernels::baseline_linear(in(0), plan.qweights, plan.rq, counter);
        break;
      case PlanKind::kLinearBitSerial:
        acts[p] = kernels::bitserial_linear(in(0), plan.indices, net.lut, plan.rq, plan.variant,
                                            counter);
        break;
      case PlanKind::kMaxPool:
        acts[p] = kernels::maxpool_q(in(0), plan.pool_k, plan.pool_stride, counter);
        break;
      case PlanKind::kGlobalAvgPool:
        acts[p] = kernels::global_avgpool_q(in(0), plan.rq, counter);
        break;
      case PlanKind::kAdd:
        acts[p] = kernels::add_q(in(0), in(1), plan.rq, counter);
        break;
      case PlanKind::kFlatten: {
        QTensor q = in(0);
        int total = 1;
        for (int d : q.shape) total *= d;
        q.shape = {1, total};
        acts[p] = std::move(q);
        break;
      }
      case PlanKind::kRelu: {
        QTensor q = in(0);
        const auto zp = static_cast<int16_t>(q.zero_point);
        for (auto& v : q.data) v = std::max(v, zp);
        if (counter != nullptr) {
          counter->add(sim::Event::kSramRead, q.size());
          counter->add(sim::Event::kAlu, q.size());
          counter->add(sim::Event::kSramWrite, q.size());
        }
        acts[p] = std::move(q);
        break;
      }
    }
  }
  return acts.back();
}

Tensor run_logits(const CompiledNetwork& net, const Tensor& image, sim::CostCounter* counter) {
  return run(net, image, counter).dequantize();
}

sim::MemoryFootprint footprint(const CompiledNetwork& net) {
  sim::MemoryFootprint fp;
  if (net.has_lut) fp.flash_bytes += net.lut.storage_bytes();

  // Flash image: weights / indices / per-channel requant constants (scale +
  // bias as 4-byte words each, the fixed-point multiplier pairs of a real
  // deployment).
  for (const auto& plan : net.plans) {
    switch (plan.kind) {
      case PlanKind::kConvBaseline:
      case PlanKind::kLinearBaseline:
        fp.flash_bytes += plan.qweights.size();  // int8 weights, 1 byte each
        fp.flash_bytes += plan.rq.scale.size() * 8;
        break;
      case PlanKind::kConvBitSerial:
      case PlanKind::kLinearBitSerial:
        fp.flash_bytes += plan.indices.storage_bytes();
        fp.flash_bytes += plan.rq.scale.size() * 8;
        break;
      default:
        break;
    }
  }

  // Peak SRAM under a tight deployment planner. Modeled implementation
  // techniques (all standard on memory-starved MCUs, documented in
  // DESIGN.md):
  //  * rolling in-place convolution: a stride-1 same-size conv overwrites
  //    input rows as they die, so only ~(kh+1) extra output rows are live;
  //  * conv+maxpool fusion: a conv feeding only a maxpool streams pooled
  //    rows, never materializing the pre-pool map;
  //  * residual adds accumulate in place over one operand (both operands
  //    are live during the add — residual blocks need two feature maps).
  const int n = static_cast<int>(net.plans.size());
  std::vector<std::vector<int>> consumers(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    for (int in : net.plans[static_cast<std::size_t>(p)].inputs)
      consumers[static_cast<std::size_t>(in)].push_back(p);
  }
  auto out_bytes_of = [&](int p) {
    const LayerPlan& lp = net.plans[static_cast<std::size_t>(p)];
    return lp.out_elems() * lp.bytes_per_elem();
  };

  std::size_t peak = 0;
  for (int p = 0; p < n; ++p) {
    const LayerPlan& plan = net.plans[static_cast<std::size_t>(p)];
    std::size_t out_bytes = out_bytes_of(p);
    int out_h = plan.out_chw.size() == 3 ? plan.out_chw[1] : 1;
    std::size_t live = 0;
    std::size_t scratch = 0;
    const bool is_conv =
        plan.kind == PlanKind::kConvBaseline || plan.kind == PlanKind::kConvBitSerial;
    if (is_conv) {
      // Fused maxpool: the sole consumer pools this output.
      if (consumers[static_cast<std::size_t>(p)].size() == 1) {
        const LayerPlan& c =
            net.plans[static_cast<std::size_t>(consumers[static_cast<std::size_t>(p)][0])];
        if (c.kind == PlanKind::kMaxPool) {
          out_bytes /= static_cast<std::size_t>(c.pool_stride) * c.pool_stride;
          out_h /= c.pool_stride;
        }
      }
      const std::size_t in_bytes = out_bytes_of(plan.inputs[0]);
      const std::size_t row = out_h > 0 ? out_bytes / static_cast<std::size_t>(out_h) : out_bytes;
      live = std::max(in_bytes, out_bytes) +
             std::min(out_bytes, static_cast<std::size_t>(plan.spec.kh + 1) * row);
      scratch = plan.kind == PlanKind::kConvBaseline
                    ? kernels::baseline_conv_scratch_bytes(plan.spec)
                    : kernels::bitserial_scratch_bytes(plan.spec, net.lut, plan.variant,
                                                       net.act_bits);
    } else if (plan.kind == PlanKind::kAdd) {
      live = out_bytes_of(plan.inputs[0]) + out_bytes_of(plan.inputs[1]);
    } else if (plan.kind == PlanKind::kInput) {
      live = out_bytes;
    } else if (plan.kind == PlanKind::kMaxPool) {
      // A maxpool fused into its producing conv (sole consumer) streams the
      // pooled map directly; only the pooled output is ever materialized.
      const int src = plan.inputs[0];
      const LayerPlan& sp = net.plans[static_cast<std::size_t>(src)];
      const bool fused = (sp.kind == PlanKind::kConvBaseline ||
                          sp.kind == PlanKind::kConvBitSerial) &&
                         consumers[static_cast<std::size_t>(src)].size() == 1;
      live = fused ? out_bytes : out_bytes_of(src) + out_bytes;
    } else if (plan.kind == PlanKind::kLinearBaseline || plan.kind == PlanKind::kLinearBitSerial) {
      live = out_bytes_of(plan.inputs[0]) + out_bytes;
      if (plan.kind == PlanKind::kLinearBitSerial) {
        nn::ConvSpec fc_spec;
        fc_spec.out_ch = plan.indices.out_ch;
        scratch = kernels::bitserial_scratch_bytes(fc_spec, net.lut, plan.variant, net.act_bits);
      }
    } else {
      live = out_bytes_of(plan.inputs[0]) + out_bytes;
    }
    peak = std::max(peak, live + scratch);
  }
  fp.sram_bytes = peak;
  return fp;
}

}  // namespace bswp::runtime
