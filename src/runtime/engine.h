// Integer inference engine: executes a CompiledNetwork with the
// microcontroller-style kernels, optionally tallying cost events.
#pragma once

#include "core/tensor.h"
#include "runtime/compressed_network.h"
#include "sim/mcu.h"

namespace bswp::runtime {

/// Run one image (CHW or 1xCxHxW float tensor) through the network.
/// Returns the (quantized) logits tensor.
QTensor run(const CompiledNetwork& net, const Tensor& image, sim::CostCounter* counter = nullptr);

/// Run and dequantize logits.
Tensor run_logits(const CompiledNetwork& net, const Tensor& image,
                  sim::CostCounter* counter = nullptr);

/// Static flash image + peak SRAM of a deployment (used against Table 2
/// budgets; uncompressed big networks overflow flash — the "/" rows of
/// Table 7).
sim::MemoryFootprint footprint(const CompiledNetwork& net);

}  // namespace bswp::runtime
