// Integer inference engine: executes a CompiledNetwork by dispatching each
// layer plan through the kernel-backend registry (runtime/kernel_backend.h),
// optionally tallying cost events.
//
// DEPRECATED as a public API: these free functions are the implementation
// layer behind bswp::Session (src/api/bswp.h); new call sites should use the
// Session facade.
#pragma once

#include "core/tensor.h"
#include "runtime/compressed_network.h"
#include "sim/mcu.h"

namespace bswp::runtime {

class KernelBackend;

/// Run one image (CHW or 1xCxHxW float tensor) through the network.
/// Returns the (quantized) logits tensor.
QTensor run(const CompiledNetwork& net, const Tensor& image, sim::CostCounter* counter = nullptr);

/// Resolve every plan's kernel backend once (hoists the registry lookups out
/// of batch/evaluation loops). Throws if any plan has no backend.
std::vector<const KernelBackend*> resolve_backends(const CompiledNetwork& net);

/// run() with backends pre-resolved by resolve_backends on the same net.
QTensor run(const CompiledNetwork& net, const Tensor& image, sim::CostCounter* counter,
            const std::vector<const KernelBackend*>& backends);

/// Run and dequantize logits.
Tensor run_logits(const CompiledNetwork& net, const Tensor& image,
                  sim::CostCounter* counter = nullptr);

/// Static flash image + peak SRAM of a deployment (used against Table 2
/// budgets; uncompressed big networks overflow flash — the "/" rows of
/// Table 7).
sim::MemoryFootprint footprint(const CompiledNetwork& net);

}  // namespace bswp::runtime
