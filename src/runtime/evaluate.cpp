#include "runtime/evaluate.h"

#include <algorithm>

namespace bswp::runtime {

float evaluate_accuracy(const CompiledNetwork& net, const data::Dataset& ds, int max_samples) {
  const int total = max_samples > 0 ? std::min(max_samples, ds.size()) : ds.size();
  int correct = 0;
  Executor exec(net);
  Tensor x({1, ds.channels(), ds.height(), ds.width()});
  for (int i = 0; i < total; ++i) {
    const int label = ds.sample(i, x.data());
    const kernels::QView& logits = exec.run_view(x, nullptr);
    int best = 0;
    for (int j = 1; j < static_cast<int>(logits.size()); ++j) {
      if (logits.data[static_cast<std::size_t>(j)] > logits.data[static_cast<std::size_t>(best)]) best = j;
    }
    if (best == label) ++correct;
  }
  return total ? 100.0f * correct / total : 0.0f;
}

LatencyReport estimate_latency(const CompiledNetwork& net, const sim::McuProfile& mcu,
                               const Tensor& image) {
  LatencyReport r;
  Executor exec(net);
  exec.run_view(image, &r.counter);
  r.cycles = mcu.cycles(r.counter);
  r.seconds = mcu.seconds(r.counter);
  r.mem = footprint(net);
  r.fits = r.mem.fits(mcu);
  return r;
}

}  // namespace bswp::runtime
