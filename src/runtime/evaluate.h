// Evaluation helpers: accuracy of a compiled network on a dataset, and
// latency / memory on a simulated MCU.
//
// Implementation layer behind bswp::Session::evaluate / estimate_latency
// (src/api/bswp.h); both reuse one arena Executor across the whole sweep.
#pragma once

#include "data/synthetic.h"
#include "runtime/executor.h"
#include "sim/mcu.h"

namespace bswp::runtime {

/// Top-1 accuracy (%) of the integer engine on `ds` (first `max_samples`
/// samples; 0 = all).
float evaluate_accuracy(const CompiledNetwork& net, const data::Dataset& ds, int max_samples = 0);

struct LatencyReport {
  double seconds = 0.0;
  double cycles = 0.0;
  sim::CostCounter counter;
  sim::MemoryFootprint mem;
  bool fits = false;
};

/// One-inference latency on `mcu`. Event counts are deterministic functions
/// of the network geometry, so any representative image gives the same
/// counts (up to data-dependent memoization hits).
LatencyReport estimate_latency(const CompiledNetwork& net, const sim::McuProfile& mcu,
                               const Tensor& image);

}  // namespace bswp::runtime
