#include "runtime/executor.h"

namespace bswp::runtime {

Executor::Executor(const CompiledNetwork& net, int max_batch)
    : net_(&net), max_batch_(max_batch) {
  check(!net.plans.empty(), "Executor: empty network");
  check(max_batch >= 1, "Executor: max_batch must be >= 1");
  const KernelRegistry& registry = KernelRegistry::instance();
  backends_.reserve(net.plans.size());
  for (const LayerPlan& plan : net.plans) {
    backends_.push_back(&registry.resolve(plan.kind, backend_variant_key(plan)));
  }
  plan_ = MemoryPlanner::plan_host(net, backends_, max_batch);

  // One backing block: [activation region | scratch region].
  arena_ = std::make_unique<std::byte[]>(plan_.peak_bytes());
  scratch_ = ScratchArena(arena_.get() + plan_.act_bytes, plan_.scratch_bytes);

  views_.resize(net.plans.size());
  input_start_.reserve(net.plans.size());
  std::size_t total_inputs = 0;
  for (const LayerPlan& plan : net.plans) total_inputs += plan.inputs.size();
  inputs_.reserve(total_inputs);
  for (std::size_t p = 0; p < net.plans.size(); ++p) {
    views_[p].data = reinterpret_cast<int16_t*>(arena_.get() + plan_.buffers[p].offset);
    input_start_.push_back(inputs_.size());
    for (int in : net.plans[p].inputs) inputs_.push_back(&views_[static_cast<std::size_t>(in)]);
  }
}

const kernels::QView& Executor::run_view(const Tensor& image, sim::CostCounter* counter,
                                         const CancelToken* cancel) {
  const CompiledNetwork& net = *net_;
  for (std::size_t p = 0; p < net.plans.size(); ++p) {
    if (cancel != nullptr && cancel->should_cancel(p)) {
      throw ExecutionCancelled("Executor: run cancelled at layer boundary " +
                               std::to_string(p) + " ('" + net.plans[p].name + "')");
    }
    scratch_.reset();
    ExecContext ctx{net,
                    net.plans[p],
                    &image,
                    inputs_.data() + input_start_[p],
                    static_cast<int>(net.plans[p].inputs.size()),
                    &views_[p],
                    &scratch_,
                    counter};
    backends_[p]->execute(ctx);
    check(views_[p].len <= net.plans[p].out_elems(),
          "Executor: backend overflowed its planned output slot");
  }
  return views_.back();
}

const kernels::QView& Executor::run_batch_view(std::span<const Tensor> images,
                                               sim::CostCounter* counter,
                                               const CancelToken* cancel) {
  const int n = static_cast<int>(images.size());
  check(n >= 1, "Executor: run_batch_view needs at least one image");
  check(n <= max_batch_, "Executor: batch exceeds the executor's max_batch");
  if (n == 1) return run_view(images[0], counter, cancel);
  const CompiledNetwork& net = *net_;
  for (std::size_t p = 0; p < net.plans.size(); ++p) {
    if (cancel != nullptr && cancel->should_cancel(p)) {
      throw ExecutionCancelled("Executor: batch cancelled at layer boundary " +
                               std::to_string(p) + " ('" + net.plans[p].name + "')");
    }
    scratch_.reset();
    ExecContext ctx{net,
                    net.plans[p],
                    images.data(),
                    inputs_.data() + input_start_[p],
                    static_cast<int>(net.plans[p].inputs.size()),
                    &views_[p],
                    &scratch_,
                    counter,
                    n};
    backends_[p]->execute_batch(ctx);
    check(views_[p].len <= net.plans[p].out_elems(),
          "Executor: backend overflowed its planned output slot");
  }
  return views_.back();
}

kernels::QView Executor::logits_view(int i) const {
  check(i >= 0 && i < max_batch_, "Executor: logits_view index out of range");
  kernels::QView v = views_.back();
  v.data += static_cast<std::size_t>(i) * net_->plans.back().out_elems();
  return v;
}

QTensor Executor::run(const Tensor& image, sim::CostCounter* counter,
                      const CancelToken* cancel) {
  return run_view(image, counter, cancel).to_qtensor();
}

std::vector<sim::CostCounter> Executor::profile_layers(const Tensor& image) {
  const CompiledNetwork& net = *net_;
  std::vector<sim::CostCounter> per_layer(net.plans.size());
  for (std::size_t p = 0; p < net.plans.size(); ++p) {
    scratch_.reset();
    ExecContext ctx{net,
                    net.plans[p],
                    &image,
                    inputs_.data() + input_start_[p],
                    static_cast<int>(net.plans[p].inputs.size()),
                    &views_[p],
                    &scratch_,
                    &per_layer[p]};
    backends_[p]->execute(ctx);
    check(views_[p].len <= net.plans[p].out_elems(),
          "Executor: backend overflowed its planned output slot");
  }
  return per_layer;
}

std::vector<QTensor> Executor::run_batch(std::span<const Tensor> images,
                                         sim::CostCounter* counter) {
  run_batch_view(images, counter);
  std::vector<QTensor> out;
  out.reserve(images.size());
  for (int i = 0; i < static_cast<int>(images.size()); ++i) {
    out.push_back(logits_view(i).to_qtensor());
  }
  return out;
}

}  // namespace bswp::runtime
