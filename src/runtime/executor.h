// Reusable inference executor over a planned memory arena.
//
// An Executor resolves every plan's kernel backend once, lays out one arena
// from the MemoryPlanner's host plan (liveness-shared activation slots + the
// backends' scratch high-water), and then serves run() calls that perform
// zero heap allocations: activations are written into fixed arena slots
// through QViews and temporaries come from a bump-reset ScratchArena.
//
// This replaces the PR-1-era free functions runtime::run / run_logits /
// resolve_backends (which allocated every activation on every call). One-off
// callers go through bswp::Session; sustained traffic holds an Executor (or
// a ServingPool of them) and reuses it across inferences.
//
// Thread safety: an Executor is a mutable execution context — one thread at
// a time. For parallel serving, build one Executor per worker (they share
// the immutable CompiledNetwork and the stateless backends).
#pragma once

#include <memory>

#include "runtime/kernel_backend.h"
#include "runtime/memory_planner.h"

namespace bswp::runtime {

class Executor {
 public:
  /// Resolve backends, plan the arena and allocate it. `net` is borrowed and
  /// must outlive the executor. Throws if any plan has no registered backend.
  explicit Executor(const CompiledNetwork& net);

  Executor(Executor&&) = default;
  Executor& operator=(Executor&&) = default;

  /// Run one image (CHW or 1xCxHxW float tensor) and return a view of the
  /// quantized logits inside the arena. Zero heap allocations. The view is
  /// valid until the next run_view()/run() call or destruction.
  const kernels::QView& run_view(const Tensor& image, sim::CostCounter* counter = nullptr);

  /// run_view() + materialize the logits as an owning QTensor.
  QTensor run(const Tensor& image, sim::CostCounter* counter = nullptr);

  const CompiledNetwork& network() const { return *net_; }
  const MemoryPlan& memory_plan() const { return plan_; }
  /// Bytes of the one backing allocation (activation region + scratch).
  std::size_t arena_bytes() const { return plan_.peak_bytes(); }
  /// Deepest scratch use observed so far (<= plan_.scratch_bytes).
  std::size_t scratch_high_water() const { return scratch_.high_water(); }

 private:
  const CompiledNetwork* net_;
  std::vector<const KernelBackend*> backends_;
  MemoryPlan plan_;
  std::unique_ptr<std::byte[]> arena_;
  ScratchArena scratch_;                       // borrows the arena's tail
  std::vector<kernels::QView> views_;          // per plan, data pointer fixed
  std::vector<const kernels::QView*> inputs_;  // flattened per-plan input views
  std::vector<std::size_t> input_start_;       // per-plan offset into inputs_
};

}  // namespace bswp::runtime
