// Reusable inference executor over a planned memory arena.
//
// An Executor resolves every plan's kernel backend once, lays out one arena
// from the MemoryPlanner's host plan (liveness-shared activation slots + the
// backends' scratch high-water), and then serves run() calls that perform
// zero heap allocations: activations are written into fixed arena slots
// through QViews and temporaries come from a bump-reset ScratchArena.
//
// Batched execution: an Executor built with max_batch > 1 plans every
// activation slot with a batch dimension (image i of plan p lives at
// views[p].data + i * p.out_elems()) and run_batch_view() walks the plan
// list ONCE for the whole batch, handing each backend an ExecContext with
// batch = N. Backends with a batched core amortize their stationary operand
// (weights, LUT residency, im2row tiles) across the batch; the rest fall
// back to a per-image loop. Either way the results are byte-identical to N
// sequential run_view() calls.
//
// This replaces the PR-1-era free functions runtime::run / run_logits /
// resolve_backends (which allocated every activation on every call). One-off
// callers go through bswp::Session; sustained traffic holds an Executor (or
// a ServingPool of them) and reuses it across inferences.
//
// Cancellation: run_view/run_batch_view take an optional CancelToken and
// check it at every layer boundary (the top of each plan iteration, so a
// token armed with an already-unreachable deadline aborts before layer 0
// runs). A tripped token throws ExecutionCancelled and the run is abandoned
// cleanly — every backend rewrites its arena slot from scratch and the
// scratch arena bump-resets per layer, so the next run on the same executor
// is bit-identical to a run on a fresh one, and no partial output can
// escape (materialization happens only after the full plan walk). The
// un-cancelled path stays zero-allocation.
//
// Thread safety: an Executor is a mutable execution context — one thread at
// a time. For parallel serving, build one Executor per worker (they share
// the immutable CompiledNetwork and the stateless backends).
#pragma once

#include <memory>
#include <span>

#include "runtime/cancel.h"
#include "runtime/kernel_backend.h"
#include "runtime/memory_planner.h"

namespace bswp::runtime {

class Executor {
 public:
  /// Resolve backends, plan the arena (with room for up to `max_batch`
  /// images per activation slot) and allocate it. `net` is borrowed and must
  /// outlive the executor. Throws if any plan has no registered backend.
  explicit Executor(const CompiledNetwork& net, int max_batch = 1);

  Executor(Executor&&) = default;
  Executor& operator=(Executor&&) = default;

  /// Run one image (CHW or 1xCxHxW float tensor) and return a view of the
  /// quantized logits inside the arena. Zero heap allocations. The view is
  /// valid until the next run_view()/run() call or destruction. A non-null
  /// `cancel` is checked at every layer boundary; a tripped token throws
  /// ExecutionCancelled and abandons the run (see the header comment).
  const kernels::QView& run_view(const Tensor& image, sim::CostCounter* counter = nullptr,
                                 const CancelToken* cancel = nullptr);

  /// Run `images.size()` images (<= max_batch) through the network in one
  /// plan walk and return the view of image 0's logits; image i's logits are
  /// at logits_view(i). Zero heap allocations; bit-identical to running each
  /// image through run_view() in order. Views are valid until the next
  /// run/run_batch call or destruction. `cancel` as in run_view — the whole
  /// batch is abandoned together (layer boundaries are batch-wide).
  const kernels::QView& run_batch_view(std::span<const Tensor> images,
                                       sim::CostCounter* counter = nullptr,
                                       const CancelToken* cancel = nullptr);

  /// Logits view of image i from the last run_batch_view() call. The view's
  /// metadata is shared; data points at image i's slice.
  kernels::QView logits_view(int i) const;

  /// run_view() + materialize the logits as an owning QTensor.
  QTensor run(const Tensor& image, sim::CostCounter* counter = nullptr,
              const CancelToken* cancel = nullptr);

  /// One plan walk of `image` tallying each layer's kernel events into its
  /// own CostCounter (index = plan index). This is the estimate source for
  /// execution-aware deadlines: price each counter with a sim::McuProfile
  /// (sim::host_profile() for this host) and suffix-sum to get the
  /// remaining-execution schedule a CancelToken can be armed with. Allocates
  /// (the result vector) — a registration-time call, not a serving-path one.
  std::vector<sim::CostCounter> profile_layers(const Tensor& image);

  /// run_batch_view() + materialize every image's logits (allocates).
  std::vector<QTensor> run_batch(std::span<const Tensor> images,
                                 sim::CostCounter* counter = nullptr);

  const CompiledNetwork& network() const { return *net_; }
  const MemoryPlan& memory_plan() const { return plan_; }
  /// Largest batch a single run_batch_view() call accepts.
  int max_batch() const { return max_batch_; }
  /// Bytes of the one backing allocation (activation region + scratch).
  std::size_t arena_bytes() const { return plan_.peak_bytes(); }
  /// Deepest scratch use observed so far (<= plan_.scratch_bytes).
  std::size_t scratch_high_water() const { return scratch_.high_water(); }

 private:
  const CompiledNetwork* net_;
  int max_batch_ = 1;
  std::vector<const KernelBackend*> backends_;
  MemoryPlan plan_;
  std::unique_ptr<std::byte[]> arena_;
  ScratchArena scratch_;                       // borrows the arena's tail
  std::vector<kernels::QView> views_;          // per plan, data pointer fixed
  std::vector<const kernels::QView*> inputs_;  // flattened per-plan input views
  std::vector<std::size_t> input_start_;       // per-plan offset into inputs_
};

}  // namespace bswp::runtime
