#include "runtime/frontdoor/front_door.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/tensor.h"

namespace bswp::runtime {

namespace {

using WallClock = std::chrono::steady_clock;

double elapsed_us(WallClock::time_point from, WallClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

// One accepted request from submit() until its front-door future resolves.
// Lives in exactly one shard's pending deque at a time; a kFailover retry
// moves it (with a fresh shard future) to the next live shard's deque.
struct FrontDoor::Pending {
  RequestKey key;
  std::string model_id;
  // Retained only under kFailover, where a mid-flight retry needs the
  // original input; kFailFast moves the caller's tensor straight into the
  // shard and keeps nothing.
  Tensor image;
  RequestClass cls = RequestClass::kNormal;
  std::promise<QTensor> promise;
  std::future<QTensor> shard_future;
  WallClock::time_point arrival;
  WallClock::time_point deadline;
  bool has_deadline = false;
  int owner = 0;            // ring owner ignoring health (takeover metric)
  std::vector<int> tried;   // shards that already failed this request
};

struct FrontDoor::ShardState {
  ShardState(const ServerOptions& opts, std::size_t latency_window)
      : server(std::make_unique<InferenceServer>(opts)),
        latency(latency_window) {}

  std::unique_ptr<InferenceServer> server;
  std::thread forwarder;

  // --- guarded by FrontDoor::mu_ ---
  std::condition_variable cv;   // wakes this shard's forwarder
  std::deque<Pending> pending;  // FIFO: head-of-line wait order == submit order
  ShardHealth health = ShardHealth::kHealthy;
  int fail_streak = 0;          // consecutive shard faults while healthy
  int ok_streak = 0;            // consecutive successes while probing
  WallClock::time_point tripped_at{};
  std::uint64_t routed = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t failures = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_recoveries = 0;

  // --- guarded by FrontDoor::stats_mu_ ---
  LatencyRecorder latency;  // e2e µs of requests this shard served
};

FrontDoor::FrontDoor(const FrontDoorOptions& options)
    : options_(options),
      ring_(options.shards, options.vnodes_per_shard),
      cache_(options.cache_capacity),
      cache_latency_(options.latency_window) {
  check(options.shards >= 1, "FrontDoor: shards must be >= 1");
  check(options.vnodes_per_shard >= 1,
        "FrontDoor: vnodes_per_shard must be >= 1");
  check(options.breaker.unhealthy_after >= 1,
        "FrontDoor: breaker.unhealthy_after must be >= 1");
  check(options.breaker.healthy_after >= 1,
        "FrontDoor: breaker.healthy_after must be >= 1");
  check(options.breaker.cooldown.count() >= 0,
        "FrontDoor: breaker.cooldown must be >= 0");
  check(options.request_timeout.count() >= 0,
        "FrontDoor: request_timeout must be >= 0");
  shards_.reserve(static_cast<std::size_t>(options.shards));
  for (int s = 0; s < options.shards; ++s) {
    shards_.push_back(
        std::make_unique<ShardState>(options.server, options.latency_window));
  }
  for (int s = 0; s < options.shards; ++s) {
    shards_[static_cast<std::size_t>(s)]->forwarder =
        std::thread(&FrontDoor::forwarder_main, this, s);
  }
}

FrontDoor::~FrontDoor() { shutdown(); }

void FrontDoor::register_model(const std::string& model_id,
                               const CompiledNetwork& net) {
  for (auto& st : shards_) st->server->register_model(model_id, net);
}

void FrontDoor::register_model(const std::string& model_id,
                               const CompiledNetwork& net,
                               const ModelConfig& config) {
  for (auto& st : shards_) st->server->register_model(model_id, net, config);
}

std::future<QTensor> FrontDoor::submit(const std::string& model_id,
                                       Tensor image, RequestClass cls) {
  const auto arrival = WallClock::now();
  std::promise<QTensor> promise;
  std::future<QTensor> future = promise.get_future();

  const RequestKey key = RequestKey::of(model_id, image);  // outside any lock
  auto hit = cache_.get(key);

  std::unique_lock<std::mutex> lock(mu_);
  if (!accepting_) {
    ++submitted_;
    ++failed_;
    lock.unlock();
    promise.set_exception(std::make_exception_ptr(ServerRejected(
        ServerRejected::Reason::kShutdown, "FrontDoor: shutting down")));
    return future;
  }
  ++submitted_;

  if (hit) {
    ++completed_;
    lock.unlock();
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      cache_latency_.record(elapsed_us(arrival, WallClock::now()));
    }
    promise.set_value(std::move(*hit));
    return future;
  }

  static const std::vector<int> kNothingTried;
  const int target = route_locked(key.lo, arrival, kNothingTried);
  if (target < 0) {
    ++failed_;
    lock.unlock();
    promise.set_exception(std::make_exception_ptr(
        ServerRejected(ServerRejected::Reason::kUnhealthy,
                       options_.health == HealthPolicy::kFailFast
                           ? "FrontDoor: owning shard is unhealthy (kFailFast)"
                           : "FrontDoor: no routable shard")));
    return future;
  }
  ShardState& st = *shards_[static_cast<std::size_t>(target)];
  const int owner = ring_.shard_for(key.lo);
  ++st.routed;
  if (target != owner) ++st.takeovers;
  lock.unlock();

  // Shard admission outside mu_: a QueuePolicy::kBlock submit may wait for
  // queue space, and no router state should be pinned meanwhile.
  const bool keep_input = options_.health == HealthPolicy::kFailover;
  std::future<QTensor> shard_future;
  try {
    shard_future = st.server->submit(
        model_id, keep_input ? Tensor(image) : std::move(image), cls);
  } catch (...) {
    // Synchronous admission throw (unknown model id): a client error — it
    // would fail identically on every shard, so no breaker, no failover.
    lock.lock();
    ++failed_;
    lock.unlock();
    promise.set_exception(std::current_exception());
    return future;
  }

  Pending p;
  p.key = key;
  p.model_id = model_id;
  if (keep_input) p.image = std::move(image);
  p.cls = cls;
  p.promise = std::move(promise);
  p.shard_future = std::move(shard_future);
  p.arrival = arrival;
  p.has_deadline = options_.request_timeout.count() > 0;
  if (p.has_deadline) p.deadline = arrival + options_.request_timeout;
  p.owner = owner;

  lock.lock();
  st.pending.push_back(std::move(p));
  ++pending_total_;
  st.cv.notify_one();
  return future;
}

void FrontDoor::forwarder_main(int sid) {
  ShardState& st = *shards_[static_cast<std::size_t>(sid)];
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    st.cv.wait(lock, [&] { return stop_forwarders_ || !st.pending.empty(); });
    if (st.pending.empty()) {
      if (stop_forwarders_) return;
      continue;
    }
    Pending p = std::move(st.pending.front());
    st.pending.pop_front();
    lock.unlock();

    // Wait for the shard outside every lock; classify the outcome.
    QTensor result;
    bool ok = false;
    bool shard_stopped = false;
    std::exception_ptr shard_fault;  // rejection/timeout: breaker + failover
    std::exception_ptr client_error; // would fail on any shard: propagate
    if (p.has_deadline && p.shard_future.wait_until(p.deadline) ==
                              std::future_status::timeout) {
      shard_fault = std::make_exception_ptr(std::runtime_error(
          "FrontDoor: request deadline exceeded on shard " +
          std::to_string(sid)));
    } else {
      try {
        result = p.shard_future.get();
        ok = true;
      } catch (const ServerRejected& e) {
        shard_stopped = e.reason() == ServerRejected::Reason::kShutdown;
        shard_fault = std::current_exception();
      } catch (...) {
        client_error = std::current_exception();
      }
    }
    const auto now = WallClock::now();

    if (ok) {
      cache_.put(p.key, result);
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        st.latency.record(elapsed_us(p.arrival, now));
      }
      lock.lock();
      ++completed_;
      breaker_success_locked(st);
      pending_done_locked();
      lock.unlock();
      p.promise.set_value(std::move(result));
      lock.lock();
      continue;
    }

    if (client_error) {
      lock.lock();
      ++failed_;
      pending_done_locked();
      lock.unlock();
      p.promise.set_exception(client_error);
      lock.lock();
      continue;
    }

    // Shard fault: feed the breaker, then retry elsewhere (kFailover) or
    // give the caller the shard's error (kFailFast).
    lock.lock();
    ++st.failures;
    breaker_failure_locked(st, shard_stopped, now);
    int next = -1;
    if (options_.health == HealthPolicy::kFailover) {
      p.tried.push_back(sid);
      next = route_locked(p.key.lo, now, p.tried);
    }
    if (next < 0) {
      ++failed_;
      pending_done_locked();
      lock.unlock();
      p.promise.set_exception(shard_fault);
      lock.lock();
      continue;
    }
    ShardState& nst = *shards_[static_cast<std::size_t>(next)];
    ++failovers_;
    ++nst.routed;
    if (next != p.owner) ++nst.takeovers;
    lock.unlock();
    std::future<QTensor> retry_future;
    bool resubmitted = false;
    try {
      retry_future = nst.server->submit(p.model_id, Tensor(p.image), p.cls);
      resubmitted = true;
    } catch (...) {
      client_error = std::current_exception();
    }
    lock.lock();
    if (resubmitted) {
      p.shard_future = std::move(retry_future);
      // pending_total_ is unchanged: the request never left the pipeline.
      nst.pending.push_back(std::move(p));
      nst.cv.notify_one();
    } else {
      ++failed_;
      pending_done_locked();
      lock.unlock();
      p.promise.set_exception(client_error);
      lock.lock();
    }
  }
}

int FrontDoor::route_locked(std::uint64_t key, WallClock::time_point now,
                            const std::vector<int>& tried) {
  // Lazy cooldown refresh: an open breaker whose cooldown has elapsed
  // becomes probing (routable) the next time anyone routes.
  for (auto& sp : shards_) {
    if (sp->health == ShardHealth::kUnhealthy &&
        now - sp->tripped_at >= options_.breaker.cooldown) {
      sp->health = ShardHealth::kProbing;
      sp->ok_streak = 0;
      ++ring_rebalances_;
    }
  }
  const auto is_tried = [&](int s) {
    return std::find(tried.begin(), tried.end(), s) != tried.end();
  };
  const std::vector<int> cands = ring_.candidates(key);
  if (options_.health == HealthPolicy::kFailFast) {
    // Only the ring owner is eligible: no blast radius onto its neighbours.
    if (!cands.empty() && routable_locked(cands[0]) && !is_tried(cands[0])) {
      return cands[0];
    }
    return -1;
  }
  for (int c : cands) {
    if (routable_locked(c) && !is_tried(c)) return c;
  }
  return -1;
}

bool FrontDoor::routable_locked(int sid) const {
  const ShardState& st = *shards_[static_cast<std::size_t>(sid)];
  if (st.health != ShardHealth::kHealthy &&
      st.health != ShardHealth::kProbing) {
    return false;
  }
  // Defensive: a shard being shut down concurrently (stop_shard between
  // health mark and server shutdown) stops accepting before its state
  // reads kStopped. mu_ -> server mutex ordering is safe: the server never
  // calls back into the front door.
  return st.server->accepting();
}

void FrontDoor::breaker_success_locked(ShardState& st) {
  st.fail_streak = 0;
  if (st.health == ShardHealth::kProbing) {
    if (++st.ok_streak >= options_.breaker.healthy_after) {
      st.health = ShardHealth::kHealthy;
      st.ok_streak = 0;
      ++st.breaker_recoveries;
      // No ring_rebalances_: probing shards were already routable, so the
      // routable set did not change.
    }
  }
}

void FrontDoor::breaker_failure_locked(ShardState& st, bool shard_stopped,
                                       WallClock::time_point now) {
  st.ok_streak = 0;
  if (st.health == ShardHealth::kStopped) return;
  if (shard_stopped) {
    // The shard's server refused with kShutdown: it is gone for good —
    // nothing to probe, route around it immediately.
    st.health = ShardHealth::kStopped;
    ++ring_rebalances_;
    return;
  }
  switch (st.health) {
    case ShardHealth::kProbing:
      // A probe failed: re-open instantly, restart the cooldown.
      st.health = ShardHealth::kUnhealthy;
      st.tripped_at = now;
      ++st.breaker_trips;
      ++ring_rebalances_;
      break;
    case ShardHealth::kHealthy:
      if (++st.fail_streak >= options_.breaker.unhealthy_after) {
        st.health = ShardHealth::kUnhealthy;
        st.tripped_at = now;
        st.fail_streak = 0;
        ++st.breaker_trips;
        ++ring_rebalances_;
      }
      break;
    default:
      break;  // kUnhealthy: cooldown already running
  }
}

void FrontDoor::pending_done_locked() {
  --pending_total_;
  if (pending_total_ == 0) drain_cv_.notify_all();
}

void FrontDoor::drain() {
  for (;;) {
    // Flush shard queues outside mu_ (a kFailover retry may land new work
    // on a shard after its drain returned — hence the outer loop).
    for (auto& st : shards_) {
      if (st->server->accepting()) st->server->drain();
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (pending_total_ == 0) return;
    drain_cv_.wait_for(lock, std::chrono::milliseconds(1),
                       [&] { return pending_total_ == 0; });
    if (pending_total_ == 0) return;
  }
}

void FrontDoor::shutdown() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    accepting_ = false;
  }
  drain();  // every accepted front-door future resolves before threads stop
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_forwarders_ = true;
    for (auto& st : shards_) st->cv.notify_all();
  }
  for (auto& st : shards_) {
    if (st->forwarder.joinable()) st->forwarder.join();
  }
  for (auto& st : shards_) st->server->shutdown();
  std::lock_guard<std::mutex> lock(mu_);
  joined_ = true;
}

void FrontDoor::stop_shard(int shard) {
  check(shard >= 0 && shard < static_cast<int>(shards_.size()),
        "FrontDoor: stop_shard index out of range");
  ShardState& st = *shards_[static_cast<std::size_t>(shard)];
  {
    // Mark first so new submits route around the shard immediately; its
    // already-accepted requests drain inside server->shutdown() below, so
    // their forwarder futures still resolve with values.
    std::lock_guard<std::mutex> lock(mu_);
    if (st.health != ShardHealth::kStopped) {
      st.health = ShardHealth::kStopped;
      ++ring_rebalances_;
    }
  }
  st.server->shutdown();  // outside mu_: it blocks on in-flight work
}

ClusterStats FrontDoor::stats() const {
  ClusterStats out;
  out.shards = static_cast<int>(shards_.size());
  out.shard_stats.resize(shards_.size());

  // Shard server snapshots first, without any front-door lock (each takes
  // the shard's own locks and sorts latency windows).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    out.shard_stats[i].server = shards_[i]->server->stats();
  }

  std::uint64_t total_routed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.submitted = submitted_;
    out.completed = completed_;
    out.failed = failed_;
    out.failovers = failovers_;
    out.ring_rebalances = ring_rebalances_;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const ShardState& st = *shards_[i];
      ShardStats& s = out.shard_stats[i];
      s.shard = static_cast<int>(i);
      s.health = st.health;
      s.routed = st.routed;
      s.takeovers = st.takeovers;
      s.failures = st.failures;
      s.breaker_trips = st.breaker_trips;
      s.breaker_recoveries = st.breaker_recoveries;
      total_routed += st.routed;
      if (st.health == ShardHealth::kHealthy ||
          st.health == ShardHealth::kProbing) {
        ++out.healthy_shards;
      }
    }
  }
  for (auto& s : out.shard_stats) {
    s.dispatch_share = total_routed > 0 ? static_cast<double>(s.routed) /
                                              static_cast<double>(total_routed)
                                        : 0.0;
  }

  // Copy the recorders under stats_mu_, then merge + summarize outside it
  // (summaries sort; the sort must not stall the forwarders' record path).
  std::vector<LatencyRecorder> windows;
  windows.reserve(shards_.size() + 1);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    for (auto& st : shards_) windows.push_back(st->latency);
    windows.push_back(cache_latency_);
  }
  LatencyRecorder merged;  // unbounded: holds every retained sample
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    out.shard_stats[i].latency = windows[i].summary();
    merged.merge(windows[i]);
  }
  merged.merge(windows.back());
  out.latency = merged.summary();

  out.cache = cache_.stats();
  return out;
}

void FrontDoor::reset_stats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    submitted_ = completed_ = failed_ = failovers_ = ring_rebalances_ = 0;
    for (auto& st : shards_) {
      // Counters only: health, streaks and trip timestamps are operational
      // state, not statistics.
      st->routed = st->takeovers = st->failures = 0;
      st->breaker_trips = st->breaker_recoveries = 0;
    }
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    for (auto& st : shards_) st->latency.clear();
    cache_latency_.clear();
  }
  cache_.reset_stats();  // counters only — resident entries stay warm
  for (auto& st : shards_) st->server->reset_stats();
}

int FrontDoor::shard_count() const { return static_cast<int>(shards_.size()); }

int FrontDoor::healthy_shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (auto& st : shards_) {
    if (st->health == ShardHealth::kHealthy ||
        st->health == ShardHealth::kProbing) {
      ++n;
    }
  }
  return n;
}

int FrontDoor::shard_for(const std::string& model_id,
                         const Tensor& image) const {
  return ring_.shard_for(RequestKey::of(model_id, image).lo);
}

InferenceServer& FrontDoor::shard(int i) {
  check(i >= 0 && i < static_cast<int>(shards_.size()),
        "FrontDoor: shard index out of range");
  return *shards_[static_cast<std::size_t>(i)]->server;
}

const InferenceServer& FrontDoor::shard(int i) const {
  check(i >= 0 && i < static_cast<int>(shards_.size()),
        "FrontDoor: shard index out of range");
  return *shards_[static_cast<std::size_t>(i)]->server;
}

}  // namespace bswp::runtime
