// Cluster front door: consistent-hash routing over N InferenceServer
// shards, an idempotent result cache, and per-shard circuit breakers —
// the horizontal-scale layer above the single-process server.
//
//   submit(model, image[, class])
//        │  key = hash128(model id, input bits)
//        ▼
//   result cache ── bit-identical hit? ──> future ready, no shard touched
//        │ miss
//        ▼
//   consistent-hash ring (vnodes) ──> owner shard ── unhealthy? walk to the
//        │                                           next live shard
//        ▼                                           (kFailover) or fail
//   shard InferenceServer::submit ──> shard future   fast (kFailFast)
//        │
//        ▼
//   per-shard forwarder thread: waits on shard futures in submit order,
//   fills the cache, trips/probes the breaker on rejections & timeouts,
//   retries rejected requests on the remaining live shards (kFailover),
//   and fulfills the front-door future the caller holds.
//
// Guarantees, in the spirit of docs/serving.md:
//
//   * Bit-identity — a completed future holds logits bit-identical to
//     Session::run(image), whether they came from a shard or the cache
//     (the cache is keyed by the exact input bits).
//   * Stable placement — a given (model, input) key always routes to the
//     same shard while the live set is unchanged; a shard's death remaps
//     only its ~1/N of the key space (ring successor takeover), and its
//     recovery restores the original mapping exactly.
//   * No accepted request lost under kFailover — as long as one shard is
//     routable, a rejected/timed-out request is retried on the remaining
//     live shards before its future is allowed to fail; stop_shard()
//     itself drains the shard's accepted work before it goes dark.
//   * Honest aggregation — ClusterStats latency percentiles are computed
//     from merged per-shard sample windows (LatencyRecorder::merge), never
//     by averaging per-shard percentiles.
//
// docs/frontdoor.md is the prose companion (ring mechanics, cache keying,
// breaker state machine, tuning cookbook); tests/test_frontdoor.cpp is the
// executable contract and runs under TSan in CI.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/frontdoor/hash_ring.h"
#include "runtime/frontdoor/options.h"
#include "runtime/frontdoor/result_cache.h"
#include "runtime/frontdoor/stats.h"
#include "runtime/server/inference_server.h"

namespace bswp::runtime {

class FrontDoor {
 public:
  /// Builds the ring and starts every shard (each an InferenceServer with
  /// options.server) plus one forwarder thread per shard.
  explicit FrontDoor(const FrontDoorOptions& options = FrontDoorOptions{});
  /// shutdown(): resolves every accepted future, then joins everything.
  ~FrontDoor();

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  /// Register a compiled network on EVERY shard (any shard can serve any
  /// model; the ring decides who serves which key). Same contract as
  /// InferenceServer::register_model — `net` is borrowed and must outlive
  /// the front door; duplicate ids throw.
  void register_model(const std::string& model_id, const CompiledNetwork& net);
  void register_model(const std::string& model_id, const CompiledNetwork& net,
                      const ModelConfig& config);

  /// Submit one request. Cache hits resolve the future before submit
  /// returns; misses route by consistent hash to a live shard. Admission
  /// failures surface as ServerRejected through the future (reason
  /// kUnhealthy when no routable shard exists or kFailFast hits a dead
  /// owner). Safe from any number of threads.
  std::future<QTensor> submit(const std::string& model_id, Tensor image,
                              RequestClass cls = RequestClass::kNormal);

  /// Flush every shard and wait until every accepted front-door future is
  /// ready (failover retries included). Keeps accepting.
  void drain();
  /// Stop admission, drain, join forwarders, shut every shard down.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Shut one shard down (maintenance, or fault injection in tests/bench):
  /// the shard is routed around from this call on, its already-accepted
  /// requests drain and complete, and its ring segment falls to the
  /// successors. A stopped shard never comes back. Throws on a bad index.
  void stop_shard(int shard);

  /// Fleet snapshot: routing + health + cache counters, every shard's own
  /// ServerStats, and merged-window cluster latency percentiles.
  ClusterStats stats() const;
  /// Zero every routing/cache/latency counter (cache entries stay warm) and
  /// reset each shard's server stats. Health states are NOT reset — they
  /// are operational state, not statistics.
  void reset_stats();

  int shard_count() const;
  /// Shards currently routable (healthy or probing).
  int healthy_shard_count() const;
  /// Ring owner of (model, image) ignoring health — where the key lives
  /// when every shard is up. Deterministic; used by tests and ops tooling
  /// to reason about placement.
  int shard_for(const std::string& model_id, const Tensor& image) const;
  /// Direct access to one shard's server (bench/test introspection; the
  /// returned reference is owned by the front door).
  InferenceServer& shard(int i);
  const InferenceServer& shard(int i) const;

 private:
  struct Pending;
  struct ShardState;

  void forwarder_main(int sid);
  /// First routable shard for `key` in ring-successor order, honoring
  /// HealthPolicy and skipping `tried`; -1 when none. Also lazily moves
  /// cooled-down breakers to kProbing. Lock held.
  int route_locked(std::uint64_t key, std::chrono::steady_clock::time_point now,
                   const std::vector<int>& tried);
  bool routable_locked(int sid) const;
  void breaker_success_locked(ShardState& st);
  void breaker_failure_locked(ShardState& st, bool shard_stopped,
                              std::chrono::steady_clock::time_point now);
  /// One request left the pending pipeline (resolved either way). Lock held.
  void pending_done_locked();

  FrontDoorOptions options_;
  HashRing ring_;
  ResultCache cache_;

  std::mutex lifecycle_mu_;  // serializes shutdown()/destructor
  mutable std::mutex mu_;    // routing, health, pending queues, counters
  // Latency recorders live behind their own lock; never held with mu_
  // (same discipline as InferenceServer).
  mutable std::mutex stats_mu_;
  std::condition_variable drain_cv_;  // pending_total_ reached zero

  std::vector<std::unique_ptr<ShardState>> shards_;

  bool accepting_ = true;
  bool stop_forwarders_ = false;
  bool joined_ = false;
  std::size_t pending_total_ = 0;  // front-door futures not yet resolved

  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t ring_rebalances_ = 0;

  LatencyRecorder cache_latency_;  // cache-hit e2e, guarded by stats_mu_
};

}  // namespace bswp::runtime
