// Consistent-hash ring with virtual nodes — the request-placement policy of
// the cluster front door (runtime::FrontDoor).
//
// Each shard owns `vnodes_per_shard` pseudo-random points ("virtual nodes")
// on a 64-bit ring; a request key is routed to the shard owning the first
// vnode clockwise of the key. Properties the front door leans on:
//
//   * removing one of N shards remaps only that shard's ~1/N of the key
//     space (its segments fall to their clockwise successors, which virtual
//     nodes spread across all survivors) — every other key keeps its shard,
//     so per-model warm-executor state on the surviving shards is untouched;
//   * adding the shard back restores the exact previous mapping (vnode
//     positions are a pure function of (shard id, replica));
//   * the successor walk (`candidates()`) is the natural failover order: a
//     key's second choice is deterministic and evenly distributed, so an
//     unhealthy shard's load spreads instead of dogpiling one neighbour.
//
// The ring itself is a plain value type with no locking; FrontDoor treats it
// as immutable after construction and expresses shard death by *skipping*
// dead shards during the candidate walk rather than mutating the ring (so
// recovery is a no-op and the remap guarantee above is trivially preserved).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace bswp::runtime {

/// SplitMix64 finalizer: cheap, well-mixed 64-bit hash step.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte range, folded through mix64 for avalanche. `seed`
/// selects one of a family of independent hash functions (the result cache
/// keys with two of them).
inline std::uint64_t hash_bytes(const void* data, std::size_t len,
                                std::uint64_t seed = 0) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL ^ mix64(seed);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return mix64(h);
}

class HashRing {
 public:
  /// Ring over shards [0, shards) with `vnodes_per_shard` points each.
  /// More vnodes -> smoother load split and smaller remap variance, at
  /// O(shards * vnodes) memory and log-time lookups (64 is plenty for the
  /// handful of shards one process hosts).
  explicit HashRing(int shards, int vnodes_per_shard = 64) {
    ring_.reserve(static_cast<std::size_t>(shards) *
                  static_cast<std::size_t>(vnodes_per_shard));
    for (int s = 0; s < shards; ++s) {
      for (int v = 0; v < vnodes_per_shard; ++v) {
        // Pure function of (shard, replica): re-adding a shard lands its
        // vnodes on identical positions, restoring the previous mapping.
        const std::uint64_t h =
            mix64(mix64(static_cast<std::uint64_t>(s) * 0x100000001b3ULL) +
                  static_cast<std::uint64_t>(v));
        ring_.push_back({h, s});
      }
    }
    std::sort(ring_.begin(), ring_.end());
    shards_ = shards;
  }

  int shards() const { return shards_; }

  /// Owner of `key`: the shard of the first vnode at or clockwise of the
  /// key (wrapping). -1 on an empty ring.
  int shard_for(std::uint64_t key) const {
    if (ring_.empty()) return -1;
    auto it = std::lower_bound(ring_.begin(), ring_.end(),
                               Vnode{key, -1});
    if (it == ring_.end()) it = ring_.begin();
    return it->shard;
  }

  /// All distinct shards in successor order starting at `key`'s owner —
  /// the deterministic failover sequence. First entry == shard_for(key).
  std::vector<int> candidates(std::uint64_t key) const {
    std::vector<int> out;
    if (ring_.empty()) return out;
    out.reserve(static_cast<std::size_t>(shards_));
    auto it = std::lower_bound(ring_.begin(), ring_.end(), Vnode{key, -1});
    for (std::size_t walked = 0;
         walked < ring_.size() && out.size() < static_cast<std::size_t>(shards_);
         ++walked, ++it) {
      if (it == ring_.end()) it = ring_.begin();
      if (std::find(out.begin(), out.end(), it->shard) == out.end()) {
        out.push_back(it->shard);
      }
    }
    return out;
  }

  /// Owner of `key` among the shards `alive[s]` marks true — i.e. the
  /// mapping a ring *without* the dead shards would produce. Dead shards'
  /// segments fall to their clockwise successors; live shards' keys are
  /// untouched. -1 when nothing is alive.
  int shard_for_live(std::uint64_t key, const std::vector<bool>& alive) const {
    if (ring_.empty()) return -1;
    auto it = std::lower_bound(ring_.begin(), ring_.end(), Vnode{key, -1});
    for (std::size_t walked = 0; walked < ring_.size(); ++walked, ++it) {
      if (it == ring_.end()) it = ring_.begin();
      if (alive[static_cast<std::size_t>(it->shard)]) return it->shard;
    }
    return -1;
  }

 private:
  struct Vnode {
    std::uint64_t hash;
    int shard;
    bool operator<(const Vnode& o) const { return hash < o.hash; }
  };

  std::vector<Vnode> ring_;
  int shards_ = 0;
};

}  // namespace bswp::runtime
