// Configuration for the cluster front door: how many shards, how requests
// are placed on them (ring granularity), what is cached, and how shard
// failure is detected and handled.
//
// Follows the options.h house rules: every field has a stated default and a
// stated interaction with its neighbours; docs/frontdoor.md is the prose
// companion and scripts/check_docs.sh keeps it honest.
#pragma once

#include <chrono>
#include <cstddef>

#include "runtime/server/options.h"

namespace bswp::runtime {

/// What submit() does when the shard owning a request's ring segment is
/// unhealthy (breaker open) or stopped.
enum class HealthPolicy {
  /// Fail the request's future immediately with ServerRejected{kUnhealthy}.
  /// O(1), no cross-shard blast radius: choose this when the caller has its
  /// own fallback and a slow answer is worse than no answer.
  kFailFast,
  /// Route to the key's next live shard in ring-successor order (the
  /// default), and retry a request whose shard rejects or times out mid-
  /// flight on the remaining live shards. An accepted front-door future
  /// then resolves as long as any shard stays up; the cost is a warm-
  /// affinity miss on the takeover shard and (on mid-flight retry) one
  /// retained input copy per in-flight request.
  kFailover,
};

/// Per-shard circuit breaker. The hysteresis shape is the autoscaler's
/// (AutoscalerOptions): consecutive-observation streaks open/close the
/// breaker and a cooldown separates state changes, so one transient
/// rejection cannot flap a shard out of the ring.
///
///   healthy --(unhealthy_after consecutive rejections/timeouts)--> unhealthy
///   unhealthy --(cooldown elapsed)--> probing (routable again)
///   probing --(healthy_after consecutive successes)--> healthy
///   probing --(any failure)--> unhealthy (cooldown restarts)
///
/// A stopped shard (InferenceServer no longer accepting) is routed around
/// immediately regardless of streaks — there is nothing to probe.
struct BreakerOptions {
  /// Consecutive shard-caused failures (rejections, timeouts — never
  /// client errors like a bad input shape) that open the breaker
  /// (default 3, must be >= 1).
  int unhealthy_after = 3;
  /// Consecutive successes while probing that close it (default 2, >= 1).
  int healthy_after = 2;
  /// How long an open breaker holds before the shard may be probed again
  /// (default 50 ms, >= 0). Too short re-probes a sick shard with live
  /// traffic; too long leaves capacity parked after a blip.
  std::chrono::microseconds cooldown{50000};
};

struct FrontDoorOptions {
  /// InferenceServer shards owned by the front door (default 2, >= 1).
  /// Every registered model exists on every shard; the ring decides which
  /// shard serves which (model, input) key.
  int shards = 2;
  /// Virtual nodes per shard on the consistent-hash ring (default 64,
  /// >= 1). More vnodes -> smoother key split across shards and smaller
  /// remap variance when a shard drops; cost is O(shards * vnodes) ring
  /// memory and a log of it per lookup.
  int vnodes_per_shard = 64;
  /// Configuration applied to every shard (workers, batching, queues,
  /// autoscaler — see ServerOptions). Shards are deliberately identical:
  /// heterogeneous fleets belong behind heterogeneous front doors.
  ServerOptions server;
  /// Result-cache entries retained (default 0 = disabled). Bit-identical
  /// repeat inputs are answered from the cache without touching a shard;
  /// see runtime/frontdoor/result_cache.h for the keying contract.
  std::size_t cache_capacity = 0;
  /// Unhealthy-shard handling (default kFailover).
  HealthPolicy health = HealthPolicy::kFailover;
  /// Failure-detection hysteresis (see BreakerOptions).
  BreakerOptions breaker;
  /// Per-request completion deadline measured from submit (default 0 =
  /// none). A request not completed in time counts as a shard timeout for
  /// the breaker and — under kFailover — is retried on the next live
  /// shard; under kFailFast its future fails with the timeout error. The
  /// shard may still finish the abandoned work (it is not cancelled), so
  /// set this comfortably above worst-case queue + execution time.
  std::chrono::microseconds request_timeout{0};
  /// Retained front-door end-to-end latency samples per shard (ring
  /// window; default 65536, 0 = unbounded). Cluster percentiles are
  /// computed by merging these windows (LatencyRecorder::merge), never by
  /// averaging per-shard percentiles.
  std::size_t latency_window = 1 << 16;
};

}  // namespace bswp::runtime
