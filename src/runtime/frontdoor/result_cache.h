// Idempotent inference result cache for the cluster front door.
//
// Inference here is a pure function: the kernels are deterministic integer
// code, so (model, input bits) fully determines the output bits. That makes
// results safely cacheable — a hit returns logits bit-identical to what any
// shard would have computed, and the request never touches a shard at all.
//
// Keying: requests are keyed by TWO independent 64-bit hashes of
// (model id, input shape, raw float bits) — see RequestKey. A single 64-bit
// hash would make a collision (two different inputs served each other's
// logits) merely improbable; 128 bits makes it negligible (~2^-64 per pair),
// which is the standard content-address trade (the input itself is not
// retained — storing it would cost more than the result). The float bits are
// hashed, not the values: -0.0f and 0.0f are different keys, NaN payloads
// are different keys — "bit-identical in, bit-identical out" is the contract.
//
// Replacement is plain LRU over a doubly-linked list + hash map (both O(1));
// capacity counts *entries* (results of one model have one size; mixed
// fleets can translate entries to bytes via their largest logits vector).
// Capacity 0 disables the cache entirely: get() misses without counting and
// put() drops, so a disabled front door pays one branch, not a mutex.
//
// Thread safety: all operations take the internal mutex; the critical
// sections are O(1) plus one QTensor copy. Counters (hits/misses/insertions/
// evictions) are read via stats() for ClusterStats.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/tensor.h"
#include "runtime/frontdoor/hash_ring.h"

namespace bswp::runtime {

/// 128-bit content address of (model id, input tensor bits).
struct RequestKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const RequestKey& o) const { return lo == o.lo && hi == o.hi; }

  /// Hash model id, shape and raw float bits with two independent seeds.
  /// `lo` doubles as the routing key on the consistent-hash ring.
  static RequestKey of(const std::string& model_id, const Tensor& image) {
    RequestKey k;
    for (int seed = 0; seed < 2; ++seed) {
      std::uint64_t h = hash_bytes(model_id.data(), model_id.size(),
                                   static_cast<std::uint64_t>(seed));
      const auto& shape = image.shape();
      h = mix64(h ^ hash_bytes(shape.data(), shape.size() * sizeof(int),
                               static_cast<std::uint64_t>(seed) + 2));
      h = mix64(h ^ hash_bytes(image.data(), image.size() * sizeof(float),
                               static_cast<std::uint64_t>(seed) + 4));
      (seed == 0 ? k.lo : k.hi) = h;
    }
    return k;
  }
};

struct RequestKeyHash {
  std::size_t operator()(const RequestKey& k) const {
    return static_cast<std::size_t>(k.lo ^ mix64(k.hi));
  }
};

/// Counter snapshot for ClusterStats. hits/misses count get() calls while
/// enabled; insertions/evictions count put() outcomes. All zero when the
/// cache is disabled (capacity 0).
struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;   // currently resident
  std::size_t capacity = 0;  // configured bound (0 = disabled)
  /// hits / (hits + misses); 0 before any lookup.
  double hit_rate = 0.0;
};

class ResultCache {
 public:
  /// `capacity` bounds resident entries; 0 disables the cache.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }

  /// Cached logits for `key`, refreshing its recency; nullopt on a miss
  /// (or always, when disabled).
  std::optional<QTensor> get(const RequestKey& key) {
    if (!enabled()) return std::nullopt;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // O(1) move-to-front
    ++hits_;
    return it->second->result;
  }

  /// Insert (or refresh) `key`'s result, evicting the least recently used
  /// entry when at capacity. Dropped silently when disabled.
  void put(const RequestKey& key, const QTensor& result) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Concurrent misses on the same key both compute and both put; the
      // results are bit-identical, so refreshing recency is all that's left.
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (lru_.size() >= capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++evictions_;
    }
    lru_.push_front(Entry{key, result});
    index_[key] = lru_.begin();
    ++insertions_;
  }

  ResultCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    ResultCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.insertions = insertions_;
    s.evictions = evictions_;
    s.entries = lru_.size();
    s.capacity = capacity_;
    const std::uint64_t looked = hits_ + misses_;
    s.hit_rate = looked > 0 ? static_cast<double>(hits_) / static_cast<double>(looked) : 0.0;
    return s;
  }

  /// Drop every entry and zero the counters.
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
    hits_ = misses_ = insertions_ = evictions_ = 0;
  }

  /// Zero the counters but keep the resident entries — the front door's
  /// reset_stats() must not cool a warm cache (e.g. between a bench
  /// warm-up and its measured run).
  void reset_stats() {
    std::lock_guard<std::mutex> lock(mu_);
    hits_ = misses_ = insertions_ = evictions_ = 0;
  }

 private:
  struct Entry {
    RequestKey key;
    QTensor result;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<RequestKey, std::list<Entry>::iterator, RequestKeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace bswp::runtime
