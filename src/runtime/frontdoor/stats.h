// Observable cluster state: routing counters, per-shard health and dispatch
// share, cache effectiveness, and merged-window latency percentiles.
// Snapshots are plain value types; ClusterStats embeds each shard's own
// ServerStats so one stats() call tells the whole fleet story.
//
// Units follow the server stats conventions (src/runtime/server/stats.h):
// request counters count REQUESTS, every latency field is MICROSECONDS, and
// instantaneous fields are snapshots, not rates. Cluster latency summaries
// are computed from MERGED sample windows (LatencyRecorder::merge) — a
// cluster p99 is the p99 of all requests, not an average of shard p99s.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/frontdoor/result_cache.h"
#include "runtime/latency_recorder.h"
#include "runtime/server/stats.h"

namespace bswp::runtime {

/// Breaker state of one shard (see BreakerOptions for the transitions).
enum class ShardHealth {
  kHealthy,    // routable, breaker closed
  kProbing,    // routable; cooldown elapsed, successes will close the breaker
  kUnhealthy,  // routed around; cooldown running
  kStopped,    // shard shut down (stop_shard / shutdown) — permanently out
};

inline const char* shard_health_name(ShardHealth h) {
  switch (h) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kProbing: return "probing";
    case ShardHealth::kUnhealthy: return "unhealthy";
    case ShardHealth::kStopped: return "stopped";
  }
  return "?";
}

struct ShardStats {
  int shard = 0;
  ShardHealth health = ShardHealth::kHealthy;
  /// Requests the router sent to this shard (primary + failover arrivals).
  std::uint64_t routed = 0;
  /// Routed requests whose ring owner was a different (dead) shard — the
  /// extra load this shard absorbed for its neighbours.
  std::uint64_t takeovers = 0;
  /// Shard-caused failures observed by the front door against this shard:
  /// rejections and request timeouts (client errors are not counted — they
  /// would fail anywhere).
  std::uint64_t failures = 0;
  /// Breaker transitions: healthy->unhealthy openings and probe-confirmed
  /// closings since start/reset_stats().
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_recoveries = 0;
  /// This shard's fraction of all routed requests (0 before any routing).
  /// With every shard healthy this converges to ~1/shards — a lasting skew
  /// means hot keys, not a router bug.
  double dispatch_share = 0.0;
  /// Front-door end-to-end latency (submit to future ready, µs) of
  /// requests served by this shard — routing, queueing and execution
  /// included; cache hits excluded (they never reach a shard).
  LatencySummary latency;
  /// The shard's own InferenceServer snapshot (queues, batches, affinity,
  /// autoscaler, per-model detail).
  ServerStats server;
};

struct ClusterStats {
  int shards = 0;
  /// Shards currently routable (healthy or probing).
  int healthy_shards = 0;
  /// Requests accepted by the front door (cache hits included).
  std::uint64_t submitted = 0;
  /// Futures fulfilled with logits (from cache or a shard).
  std::uint64_t completed = 0;
  /// Futures fulfilled with an error after exhausting policy (client
  /// errors, kFailFast refusals, all-shards-down, timeouts).
  std::uint64_t failed = 0;
  /// Mid-flight retries: requests re-submitted to another shard after a
  /// rejection/timeout (kFailover only). One request can retry more than
  /// once; each hop counts.
  std::uint64_t failovers = 0;
  /// Times the set of routable shards changed (a trip, recovery, or stop).
  /// Each change remaps ~1/shards of the key space — the ring's stability
  /// guarantee, pinned by tests/test_frontdoor.cpp.
  std::uint64_t ring_rebalances = 0;
  /// Result-cache effectiveness (all zero when disabled).
  ResultCacheStats cache;
  /// End-to-end latency over ALL completed requests — per-shard windows
  /// plus the cache-hit window, merged then summarized.
  LatencySummary latency;
  std::vector<ShardStats> shard_stats;  // index == shard id
};

}  // namespace bswp::runtime
