#include "runtime/kernel_backend.h"

#include <algorithm>
#include <stdexcept>

namespace bswp::runtime {

void KernelBackend::execute_batch(const ExecContext& ctx) const {
  if (ctx.batch <= 1) {
    execute(ctx);
    return;
  }
  // Per-image loop: shift every view by the per-image stride and run the
  // scalar path. Fixed-capacity input staging keeps this allocation-free.
  constexpr int kMaxInputs = 4;
  check(ctx.num_inputs <= kMaxInputs, "execute_batch: too many plan inputs");
  kernels::QView in_views[kMaxInputs];
  const kernels::QView* in_ptrs[kMaxInputs];
  for (int k = 0; k < ctx.num_inputs; ++k) in_ptrs[k] = &in_views[k];
  kernels::QView out = *ctx.out;
  const std::size_t out_stride = ctx.plan.out_elems();
  for (int i = 0; i < ctx.batch; ++i) {
    for (int k = 0; k < ctx.num_inputs; ++k) {
      const std::size_t src = static_cast<std::size_t>(ctx.plan.inputs[static_cast<std::size_t>(k)]);
      in_views[k] = *ctx.inputs[k];
      in_views[k].data += static_cast<std::size_t>(i) * ctx.net.plans[src].out_elems();
    }
    out = *ctx.out;
    out.data = ctx.out->data + static_cast<std::size_t>(i) * out_stride;
    ExecContext sub{ctx.net,         ctx.plan,
                    ctx.image == nullptr ? nullptr : ctx.image + i,
                    in_ptrs,         ctx.num_inputs,
                    &out,            ctx.scratch,
                    ctx.counter};
    ctx.scratch->reset();
    execute(sub);
  }
  // Stamp the base view with image 0's pointer and the (identical across
  // images) metadata the last execute filled in.
  out.data = ctx.out->data;
  *ctx.out = out;
}

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry reg;
  static std::once_flag once;
  std::call_once(once, [] {
    detail::register_structural_backends(reg);
    detail::register_baseline_backends(reg);
    detail::register_bitserial_backends(reg);
    detail::register_binary_backends(reg);
    detail::register_simd_backends(reg);
  });
  return reg;
}

std::unique_ptr<KernelBackend> KernelRegistry::add(PlanKind kind, int variant,
                                                   std::unique_ptr<KernelBackend> backend,
                                                   bool replace) {
  check(backend != nullptr, "KernelRegistry::add: null backend");
  const Key key{static_cast<int>(kind), variant};
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : backends_) {
    if (!(entry.first < key) && !(key < entry.first)) {
      if (!replace) {
        throw std::invalid_argument(std::string("KernelRegistry: backend already registered for ") +
                                    plan_kind_name(kind) + " (use replace to override)");
      }
      std::swap(entry.second, backend);
      return backend;  // the previous backend
    }
  }
  backends_.emplace_back(key, std::move(backend));
  return nullptr;
}

const KernelBackend* KernelRegistry::find(PlanKind kind, int variant) const {
  // A SIMD-lane key falls back onto its scalar-lane key before the wildcard,
  // so a kSimd plan still resolves (bit-identically) on a scalar-only build.
  // kSimdKeyOffset + 0 is the SIMD key of variant-less kinds, whose scalar
  // registration is the kAnyVariant wildcard itself.
  const bool simd_key = variant >= kSimdKeyOffset;
  const int scalar_key = simd_key && variant > kSimdKeyOffset ? variant - kSimdKeyOffset
                                                              : kAnyVariant;
  std::lock_guard<std::mutex> lock(mu_);
  const KernelBackend* scalar = nullptr;
  const KernelBackend* fallback = nullptr;
  for (const auto& entry : backends_) {
    if (entry.first.kind != static_cast<int>(kind)) continue;
    if (entry.first.variant == variant) return entry.second.get();
    if (simd_key && scalar_key != kAnyVariant && entry.first.variant == scalar_key)
      scalar = entry.second.get();
    if (entry.first.variant == kAnyVariant) fallback = entry.second.get();
  }
  return scalar != nullptr ? scalar : fallback;
}

const KernelBackend& KernelRegistry::resolve(PlanKind kind, int variant) const {
  const KernelBackend* b = find(kind, variant);
  if (b == nullptr) {
    std::string msg = std::string("KernelRegistry: no backend for plan kind '") +
                      plan_kind_name(kind) + "' variant " + std::to_string(variant) +
                      "; registered:";
    for (const std::string& line : registered()) msg += "\n  " + line;
    throw std::runtime_error(msg);
  }
  return *b;
}

std::vector<std::string> KernelRegistry::registered() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& entry : backends_) {
    std::string line = plan_kind_name(static_cast<PlanKind>(entry.first.kind));
    line += "/";
    line += entry.first.variant == kAnyVariant ? "*" : std::to_string(entry.first.variant);
    line += " -> ";
    line += entry.second->name();
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> KernelRegistry::describe(const CompiledNetwork& net) const {
  std::vector<std::string> out;
  out.reserve(net.plans.size());
  for (const LayerPlan& plan : net.plans) {
    const int key = backend_variant_key(plan);
    const KernelBackend* b = find(plan.kind, key);
    std::string line = plan.name;
    line += ": ";
    line += plan_kind_name(plan.kind);
    line += "/";
    line += key == kAnyVariant ? "*" : std::to_string(key);
    line += " [";
    line += host_lane_name(plan.lane);
    line += "] -> ";
    line += b != nullptr ? b->name() : "<unresolved>";
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace bswp::runtime
