// Kernel-backend registry: the extension seam between the compiled network
// representation and the kernels that execute it.
//
// Every LayerPlan is executed by a KernelBackend looked up from the global
// KernelRegistry under a (PlanKind, variant) key. The baseline int8 kernels,
// the five bit-serial LUT variants and the XNOR binarized kernel all register
// here; new backends (SIMD hosts, sharded/cached server execution, hardware
// offload) plug in without touching the Executor loop in executor.cpp.
//
// Execution contract (arena model): execute(ctx) writes the layer's result
// into `ctx.out` — a view over a MemoryPlanner-assigned slot of the
// Executor's arena — and draws any temporaries from `ctx.scratch`, a bump
// arena reset between layers. A backend must write every element of its
// output, fill the view's shape/quantization metadata, and report its peak
// scratch need via scratch_bytes() so the Executor can size the arena once;
// a warm Executor::run() then performs zero heap allocations.
//
// Variant keying: plans whose kind carries a BitSerialVariant resolve with
// that variant; every other kind resolves with kAnyVariant. Lookup tries the
// exact (kind, variant) key first and falls back to (kind, kAnyVariant).
//
// Who resolves from here: every runtime::Executor — including the one-per
// worker×model executors the serving layers (runtime::ServingPool,
// runtime::InferenceServer) keep warm — resolves its backends once at
// construction and holds raw pointers for its lifetime. Register custom
// backends at setup, before executors exist; see the hot-swap caveat on
// add(). docs/architecture.md §6 places this seam in the full pipeline.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/arena.h"
#include "core/tensor.h"
#include "runtime/compressed_network.h"
#include "sim/cost_counter.h"

namespace bswp::runtime {

/// Everything a backend may need to execute one layer plan.
struct ExecContext {
  const CompiledNetwork& net;
  const LayerPlan& plan;
  /// The raw float image (only meaningful for PlanKind::kInput plans).
  const Tensor* image = nullptr;
  /// Views of the activations produced by the plan's inputs, in plan.inputs
  /// order (num_inputs entries).
  const kernels::QView* const* inputs = nullptr;
  int num_inputs = 0;
  /// Arena slot to write this plan's activation into. `out->data` and the
  /// slot capacity (plan.out_elems() elements) are fixed by the memory plan;
  /// the backend stamps shape and quantization metadata.
  kernels::QView* out = nullptr;
  /// Per-layer scratch (reset before each execute call).
  ScratchArena* scratch = nullptr;
  sim::CostCounter* counter = nullptr;
  /// Number of images in this call (execute_batch only; execute sees 1).
  /// Image i of a plan p lives at `view.data + i * p.out_elems()` — the
  /// planned slot capacity is the per-image element stride, and the base
  /// views (`inputs`, `out`) describe image 0. For kInput plans, `image`
  /// points at a contiguous array of `batch` Tensors.
  int batch = 1;

  /// Activation produced by the plan's i-th input (image 0 when batched).
  const kernels::QView& input(int i) const { return *inputs[i]; }
};

/// One executable kernel implementation.
class KernelBackend {
 public:
  virtual ~KernelBackend() = default;
  /// Stable identifier, e.g. "baseline/conv" or "bitserial/cached".
  virtual const char* name() const = 0;
  /// Execute `ctx.plan`, writing the result into `ctx.out` and drawing
  /// temporaries from `ctx.scratch` (never the heap).
  virtual void execute(const ExecContext& ctx) const = 0;
  /// Execute `ctx.plan` for `ctx.batch` images laid out contiguously at the
  /// per-image stride (see ExecContext::batch). Backends override this to
  /// amortize stationary work (weight loads, LUT residency, im2row tiles)
  /// across the batch; the override MUST stay byte-identical to running
  /// execute() once per image — same int32 accumulation order, same requant,
  /// same CostCounter tallies (exactly batch x the per-image counts). The
  /// default loops execute() per image, resetting scratch between images.
  virtual void execute_batch(const ExecContext& ctx) const;
  /// Upper bound on the scratch bytes execute() draws for this plan. The
  /// MemoryPlanner sizes the Executor's scratch region from the maximum over
  /// all plans; an under-report makes the ScratchArena throw at run time.
  /// Default: 0 — correct only for a backend that draws nothing from
  /// ctx.scratch (an over-report merely wastes arena bytes).
  virtual std::size_t scratch_bytes(const CompiledNetwork& net, const LayerPlan& plan) const {
    (void)net;
    (void)plan;
    return 0;
  }
  /// Upper bound on the scratch bytes execute_batch() draws for `batch`
  /// images. Default: the per-image bound — correct for the default
  /// per-image loop and for any batched core that reuses one image's
  /// staging buffers; a core staging batch-wide state must override.
  virtual std::size_t scratch_bytes_batch(const CompiledNetwork& net, const LayerPlan& plan,
                                          int batch) const {
    (void)batch;
    return scratch_bytes(net, plan);
  }
};

/// Wildcard variant key for plan kinds that carry no bit-serial variant.
constexpr int kAnyVariant = -1;

/// Key-space offset for HostLane::kSimd registrations. A SIMD backend for
/// bit-serial variant v registers under v + kSimdKeyOffset; SIMD backends for
/// kinds without a bit-serial variant register under kSimdKeyOffset + 0.
/// Scalar keys stay below the offset (there are only a handful of bit-serial
/// variants), so the two lanes never collide and find() can strip the offset
/// to fall back onto the scalar lane when no SIMD backend is registered.
constexpr int kSimdKeyOffset = 64;

/// Variant key a plan resolves under: the bit-serial variant for bit-serial
/// kinds (kAnyVariant otherwise), shifted into the SIMD key space when the
/// plan's host lane is kSimd.
inline int backend_variant_key(const LayerPlan& plan) {
  const bool bit_serial =
      plan.kind == PlanKind::kConvBitSerial || plan.kind == PlanKind::kLinearBitSerial;
  const int scalar_key = bit_serial ? static_cast<int>(plan.variant) : kAnyVariant;
  if (plan.lane != HostLane::kSimd) return scalar_key;
  return bit_serial ? scalar_key + kSimdKeyOffset : kSimdKeyOffset;
}

/// Process-global backend registry. Thread-safe; the built-in backends are
/// registered on first use of instance().
class KernelRegistry {
 public:
  static KernelRegistry& instance();

  /// Register `backend` under (kind, variant). Throws std::invalid_argument
  /// if the key is taken and `replace` is false (the default, so two
  /// libraries cannot silently fight over a key). Returns the previous
  /// backend when replacing (so tests can restore it). Replacing transfers
  /// ownership of the old backend to the caller while Executors hold raw
  /// pointers for their lifetime — hot-swapping requires quiescing
  /// in-flight inference first (registration normally happens at setup).
  std::unique_ptr<KernelBackend> add(PlanKind kind, int variant,
                                     std::unique_ptr<KernelBackend> backend,
                                     bool replace = false);

  /// Exact (kind, variant) match first. A SIMD-lane key (>= kSimdKeyOffset)
  /// that misses then retries its scalar-lane key (offset stripped) — so a
  /// plan compiled for the SIMD lane still executes, bit-identically, on a
  /// build without the SIMD family. Finally (kind, kAnyVariant); null if
  /// nothing matches.
  const KernelBackend* find(PlanKind kind, int variant) const;

  /// Like find, but throws std::runtime_error naming the missing key and the
  /// registered backends.
  const KernelBackend& resolve(PlanKind kind, int variant) const;

  /// "kind/variant -> name" lines for every registered backend.
  std::vector<std::string> registered() const;

  /// Per-plan resolution report for a compiled network: one
  /// "layer: kind/variant [lane] -> backend" line per plan, showing exactly
  /// which backend each layer executes on (after any scalar-lane fallback).
  std::vector<std::string> describe(const CompiledNetwork& net) const;

 private:
  KernelRegistry() = default;
  struct Key {
    int kind;
    int variant;
    bool operator<(const Key& o) const {
      return kind != o.kind ? kind < o.kind : variant < o.variant;
    }
  };
  mutable std::mutex mu_;
  std::vector<std::pair<Key, std::unique_ptr<KernelBackend>>> backends_;
};

namespace detail {
/// Built-in backend registration hooks (defined next to their kernels; called
/// once from KernelRegistry::instance so static-library linking cannot drop
/// them).
void register_structural_backends(KernelRegistry& r);
void register_baseline_backends(KernelRegistry& r);
void register_bitserial_backends(KernelRegistry& r);
void register_binary_backends(KernelRegistry& r);
void register_simd_backends(KernelRegistry& r);
}  // namespace detail

}  // namespace bswp::runtime
