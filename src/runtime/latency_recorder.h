// Shared latency accounting for the serving layers.
//
// ServingPool's BatchStats and the InferenceServer's ServerStats both report
// nearest-rank percentiles over per-request latencies; LatencyRecorder is the
// one implementation of that accounting. It records microsecond samples into
// an optionally bounded window (a long-running server must not grow a sample
// vector forever — with a cap, the oldest samples are overwritten ring-style
// and percentiles describe the most recent `cap` requests) and summarizes on
// demand.
//
// Thread safety: none. Callers that record from multiple threads (the
// serving pool's workers write per-image slots, the inference server records
// under its state mutex) synchronize externally.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace bswp::runtime {

/// Nearest-rank latency distribution (microseconds) of `count` samples.
struct LatencySummary {
  std::size_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

class LatencyRecorder {
 public:
  /// `window` caps the retained samples (0 = unbounded). A capped recorder
  /// summarizes the most recent `window` samples.
  explicit LatencyRecorder(std::size_t window = 0) : window_(window) {}

  void record(double us) {
    if (window_ == 0 || samples_.size() < window_) {
      samples_.push_back(us);
    } else {
      samples_[next_] = us;
      next_ = (next_ + 1) % window_;
    }
    ++total_;
  }

  /// Samples currently retained (<= window when capped).
  std::size_t size() const { return samples_.size(); }
  /// Samples ever recorded (monotonic, not capped).
  std::size_t total() const { return total_; }

  void clear() {
    samples_.clear();
    next_ = 0;
    total_ = 0;
  }

  /// Append `other`'s retained window (oldest sample first) into this
  /// recorder, as if every one of those samples had been record()ed here.
  /// This is how aggregate percentiles must be computed: summarizing a
  /// merged window equals summarizing the concatenation of the windows,
  /// whereas averaging per-source p99s is meaningless (the "mean of p99s"
  /// trap). Subject to this recorder's own cap — merging more samples than
  /// `window` keeps the most recently appended ones.
  void merge(const LatencyRecorder& other) {
    const std::size_t n = other.samples_.size();
    for (std::size_t i = 0; i < n; ++i) {
      // Chronological walk of the other ring: once capped, `next_` points
      // at the oldest retained sample.
      record(other.samples_[(other.next_ + i) % n]);
    }
  }

  LatencySummary summary() const { return summarize(samples_); }

  /// The retained window, unsorted (ring order once capped). Callers that
  /// must not sort under a lock copy this and summarize() outside it.
  const std::vector<double>& samples() const { return samples_; }

  /// Nearest-rank percentiles + mean over an unsorted sample vector
  /// (copies + sorts; empty input yields an all-zero summary).
  static LatencySummary summarize(std::vector<double> lat_us) {
    LatencySummary s;
    if (lat_us.empty()) return s;
    std::sort(lat_us.begin(), lat_us.end());
    const auto rank = [&](double q) {
      const auto n = static_cast<double>(lat_us.size());
      auto idx = static_cast<std::size_t>(std::ceil(q * n));
      return lat_us[std::min(lat_us.size() - 1, idx > 0 ? idx - 1 : 0)];
    };
    s.count = lat_us.size();
    s.p50_us = rank(0.50);
    s.p95_us = rank(0.95);
    s.p99_us = rank(0.99);
    double sum = 0.0;
    for (double v : lat_us) sum += v;
    s.mean_us = sum / static_cast<double>(lat_us.size());
    return s;
  }

 private:
  std::vector<double> samples_;
  std::size_t window_ = 0;
  std::size_t next_ = 0;   // ring cursor, used once samples_ hits the cap
  std::size_t total_ = 0;
};

}  // namespace bswp::runtime
