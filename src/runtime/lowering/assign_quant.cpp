// AssignActivationQuant: attach an output quantization to every live node
// from the calibration result, in topological order.
//
// The rules are the paper's activation scheme:
//  * the input plan runs signed int8 over [-abs_max, abs_max];
//  * ReLU-fused chains emit unsigned M-bit over [0, range(chain end)];
//  * non-ReLU conv/add outputs (residual branches) are offset-unsigned with
//    zero_point 2^(M-1) over [-abs_range, abs_range], so the bit-serial
//    kernels always see unsigned bit patterns;
//  * an unfused linear is a classifier head: 16-bit signed logits so argmax
//    is never range-limited (a ReLU-fused hidden linear follows the chain
//    rule instead);
//  * structural nodes (maxpool / flatten / standalone relu) inherit their
//    producer's quantization unchanged.
#include <algorithm>
#include <cmath>

#include "runtime/lowering/plan_graph.h"

namespace bswp::runtime::lowering {
namespace {

class AssignActivationQuant : public Pass {
 public:
  const char* name() const override { return "AssignActivationQuant"; }

  int run(PlanGraph& pg, PassContext& ctx, std::string* detail) override {
    const int M = ctx.opt.act_bits;
    int assigned = 0;
    for (int id : pg.live_nodes()) {
      PlanNode& n = pg.node(id);
      switch (n.op) {
        case nn::Op::kInput:
          n.oq = {std::max(1e-6f, ctx.cal.input_abs_max) / 127.0f, 0, 8, true};
          break;
        case nn::Op::kConv2d:
        case nn::Op::kAdd:
          n.oq = chain_quant(ctx, n, M);
          break;
        case nn::Op::kLinear:
          if (n.fused_relu) {
            n.oq = chain_quant(ctx, n, M);
          } else {
            const float absr = std::max(1e-6f, ctx.cal.abs_range(n.range_node));
            n.oq = {absr / 32767.0f, 0, 16, true};
          }
          break;
        case nn::Op::kGlobalAvgPool: {
          const float range = std::max(1e-6f, ctx.cal.range(n.graph_node));
          n.oq = {range / static_cast<float>((1 << M) - 1), 0, M, false};
          break;
        }
        case nn::Op::kMaxPool:
        case nn::Op::kFlatten:
        case nn::Op::kReLU: {
          const PlanNode& src = pg.node(n.inputs[0]);
          check(src.quant_assigned,
                "AssignActivationQuant: producer of '" + n.name + "' has no quantization");
          n.oq = src.oq;
          break;
        }
        case nn::Op::kBatchNorm:
          // Foldable BNs were spliced by FoldBatchNorm; anything left is a
          // pattern the integer runtime cannot express. Rejecting here (the
          // first pass that must understand every survivor) keeps the error
          // precise — a consumer-side check would blame the wrong node.
          throw std::invalid_argument(
              "compile: standalone BatchNorm (not directly after a conv) is unsupported");
        case nn::Op::kBinarize:
          throw std::invalid_argument("compile: binarized graphs use the bswp::binary path");
        default:
          throw std::invalid_argument("compile: unsupported op in graph: " +
                                      std::string(nn::op_name(n.op)));
      }
      n.quant_assigned = true;
      ++assigned;
    }
    if (detail != nullptr) *detail = "act_bits=" + std::to_string(M);
    return assigned;
  }

 private:
  /// Output quantization of a (possibly ReLU-fused) conv / add / linear
  /// chain, read at the chain-end range node.
  static kernels::OutputQuant chain_quant(const PassContext& ctx, const PlanNode& n, int M) {
    if (n.fused_relu) {
      const float range = std::max(1e-6f, ctx.cal.range(n.range_node));
      return {range / static_cast<float>((1 << M) - 1), 0, M, false};
    }
    const float absr = std::max(1e-6f, ctx.cal.abs_range(n.range_node));
    return {absr / static_cast<float>(1 << (M - 1)), 1 << (M - 1), M, false};
  }
};

}  // namespace

std::unique_ptr<Pass> make_assign_activation_quant() {
  return std::make_unique<AssignActivationQuant>();
}

}  // namespace bswp::runtime::lowering
