// EliminateDeadNodes: drop every node with no path to the network output.
//
// The monolithic compiler emitted a plan for every graph node, so a dangling
// branch (a probe head left in the graph, an ablation tap) was compiled and
// executed on every inference. After this pass only contributing nodes reach
// Legalize, and the MemoryPlanner never reserves arena slots for dead
// activations.
#include "runtime/lowering/plan_graph.h"

namespace bswp::runtime::lowering {
namespace {

class EliminateDeadNodes : public Pass {
 public:
  const char* name() const override { return "EliminateDeadNodes"; }

  int run(PlanGraph& pg, PassContext& ctx, std::string* detail) override {
    (void)ctx;
    std::vector<bool> reachable(static_cast<std::size_t>(pg.num_nodes()), false);
    std::vector<int> stack = {pg.output()};
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      if (reachable[static_cast<std::size_t>(id)]) continue;
      reachable[static_cast<std::size_t>(id)] = true;
      for (int in : pg.node(id).inputs) stack.push_back(in);
    }
    int removed = 0;
    for (int id : pg.live_nodes()) {
      if (reachable[static_cast<std::size_t>(id)]) continue;
      pg.node(id).dead = true;
      ++removed;
    }
    if (removed > 0 && detail != nullptr) {
      *detail = std::to_string(removed) + " unreachable node(s) removed";
    }
    return removed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_eliminate_dead_nodes() {
  return std::make_unique<EliminateDeadNodes>();
}

}  // namespace bswp::runtime::lowering
