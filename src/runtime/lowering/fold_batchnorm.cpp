// FoldBatchNorm: splice conv→BN edges, recording the BN graph node on the
// conv so Legalize can fold gamma/sqrt(var)+beta into the conv's per-channel
// requantization (never into weights — that would break pool sharing).
//
// A BN is foldable iff it consumes a conv — possibly through FakeQuant
// identities, as QAT graphs insert (conv→FQ→BN) — where every link of the
// chain is single-consumer and the conv has no BN folded yet (the paper's
// conv→BN→ReLU chain shape). The intervening FakeQuants are spliced here
// too, so their pre-BN ranges never override the chain-end range the conv
// inherits from the BN. Any BN left standing after this pass is a
// standalone BN, rejected with a precise error in AssignActivationQuant.
#include "runtime/lowering/plan_graph.h"

namespace bswp::runtime::lowering {
namespace {

class FoldBatchNorm : public Pass {
 public:
  const char* name() const override { return "FoldBatchNorm"; }

  int run(PlanGraph& pg, PassContext& ctx, std::string* detail) override {
    (void)ctx;
    int folds = 0;
    for (int id : pg.live_nodes()) {
      const PlanNode& bn = pg.node(id);
      if (bn.op != nn::Op::kBatchNorm) continue;
      // Walk up through FakeQuant identities to the would-be conv anchor.
      std::vector<int> fq_chain;
      int src = bn.inputs[0];
      while (pg.node(src).op == nn::Op::kFakeQuant) {
        fq_chain.push_back(src);
        src = pg.node(src).inputs[0];
      }
      PlanNode& conv = pg.node(src);
      if (conv.op != nn::Op::kConv2d) continue;
      if (conv.bn_node != -1 || conv.fused_relu) continue;
      bool single_consumer_chain = pg.consumer_count(src, 2) == 1;
      for (int fq : fq_chain) {
        single_consumer_chain = single_consumer_chain && pg.consumer_count(fq, 2) == 1;
      }
      if (!single_consumer_chain) continue;
      conv.bn_node = bn.graph_node;
      conv.range_node = bn.range_node;
      pg.splice(id);
      for (int fq : fq_chain) pg.splice(fq);
      ++folds;
    }
    if (folds > 0 && detail != nullptr) *detail = std::to_string(folds) + " BN folded into conv";
    return folds;
  }
};

}  // namespace

std::unique_ptr<Pass> make_fold_batchnorm() { return std::make_unique<FoldBatchNorm>(); }

}  // namespace bswp::runtime::lowering
