// FuseActivations: absorb activation-shaped nodes into their producers.
//
//  * FakeQuant nodes are calibration identities at inference time — every
//    one is spliced out. When the FakeQuant was its producer's only
//    consumer, the producer inherits its calibrated range (the chain-end
//    range rule of the original monolithic compiler).
//  * A ReLU whose single-consumer producer is a conv, linear, or add is
//    fused into that producer's requantization clamp (one ReLU per chain;
//    further ReLUs stay standalone kRelu plans). Fusing into linear is the
//    generalization that unlocks hidden (non-classifier) linear layers on
//    the bit-serial path: a fused linear emits an unsigned act_bits
//    activation instead of 16-bit signed classifier logits.
#include "runtime/lowering/plan_graph.h"

namespace bswp::runtime::lowering {
namespace {

bool can_fuse_relu_into(nn::Op op) {
  return op == nn::Op::kConv2d || op == nn::Op::kLinear || op == nn::Op::kAdd;
}

class FuseActivations : public Pass {
 public:
  const char* name() const override { return "FuseActivations"; }

  int run(PlanGraph& pg, PassContext& ctx, std::string* detail) override {
    (void)ctx;
    int spliced_fq = 0, fused_relu = 0;
    // FakeQuant identities first, so ranges propagate through them before
    // ReLU fusion decides chain-end ranges.
    for (int id : pg.live_nodes()) {
      const PlanNode& fq = pg.node(id);
      if (fq.op != nn::Op::kFakeQuant) continue;
      const int src = fq.inputs[0];
      if (pg.consumer_count(src, 2) == 1) {
        pg.node(src).range_node = fq.range_node;
      }
      pg.splice(id);
      ++spliced_fq;
    }
    for (int id : pg.live_nodes()) {
      const PlanNode& relu = pg.node(id);
      if (relu.op != nn::Op::kReLU) continue;
      const int src = relu.inputs[0];
      PlanNode& producer = pg.node(src);
      if (!can_fuse_relu_into(producer.op)) continue;
      if (producer.fused_relu) continue;  // one ReLU per chain
      if (pg.consumer_count(src, 2) != 1) continue;
      producer.fused_relu = true;
      producer.range_node = relu.range_node;
      pg.splice(id);
      ++fused_relu;
    }
    if (detail != nullptr && (spliced_fq + fused_relu) > 0) {
      *detail = std::to_string(fused_relu) + " ReLU fused, " + std::to_string(spliced_fq) +
                " FakeQuant spliced";
    }
    return spliced_fq + fused_relu;
  }
};

}  // namespace

std::unique_ptr<Pass> make_fuse_activations() { return std::make_unique<FuseActivations>(); }

}  // namespace bswp::runtime::lowering
