// Legalize: turn every live, quantized, backend-assigned PlanNode into the
// final immutable LayerPlan.
//
// This is where the numeric contracts are discharged: BatchNorm affines fold
// into per-channel requantization, uncompressed weights are quantized
// symmetric int8, pooled layers get their packed indices and (for
// offset-unsigned inputs) the -zp * sum(w) row-sum bias correction, and the
// unsupported-pattern checks fire with precise errors. The math is a
// field-exact port of the monolithic compile() so lowering stays
// bit-identical (tests/test_golden.cpp enforces this across the model zoo).
#include <algorithm>
#include <cmath>

#include "quant/quantize.h"
#include "runtime/lowering/plan_graph.h"

namespace bswp::runtime::lowering {
namespace {

/// Per-channel BN multipliers destined for requantization.
struct BnFold {
  std::vector<float> scale;  // gamma / sqrt(var + eps)
  std::vector<float> mean;   // running mean
  std::vector<float> beta;
};

BnFold fold_bn(const nn::Graph& g, int bn_node, int channels) {
  BnFold f;
  f.scale.assign(static_cast<std::size_t>(channels), 1.0f);
  f.mean.assign(static_cast<std::size_t>(channels), 0.0f);
  f.beta.assign(static_cast<std::size_t>(channels), 0.0f);
  if (bn_node < 0) return f;
  const nn::BatchNormState& bn = g.node(bn_node).bn;
  for (int c = 0; c < channels; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    f.scale[ci] = bn.gamma[ci] / std::sqrt(bn.running_var[ci] + bn.eps);
    f.mean[ci] = bn.running_mean[ci];
    f.beta[ci] = bn.beta[ci];
  }
  return f;
}

class Legalize : public Pass {
 public:
  const char* name() const override { return "Legalize"; }

  int run(PlanGraph& pg, PassContext& ctx, std::string* detail) override {
    (void)detail;
    int legalized = 0;
    for (int id : pg.live_nodes()) {
      PlanNode& n = pg.node(id);
      check(n.quant_assigned && n.kind_assigned,
            "Legalize: node '" + n.name + "' reached Legalize without quant/backend decisions");
      LayerPlan& plan = n.plan;
      plan.kind = n.kind;
      plan.name = n.name;
      plan.out_chw = n.out_chw;
      plan.out = n.oq;
      switch (n.op) {
        case nn::Op::kInput:
          break;
        case nn::Op::kConv2d: legalize_conv(pg, ctx, n); break;
        case nn::Op::kLinear: legalize_linear(pg, ctx, n); break;
        case nn::Op::kAdd: {
          plan.rq = kernels::Requant::uniform(1, 1.0f, {}, n.oq.scale, n.oq.bits, false,
                                              n.fused_relu);
          plan.rq.out.zero_point = n.oq.zero_point;
          break;
        }
        case nn::Op::kGlobalAvgPool: legalize_gap(pg, ctx, n); break;
        case nn::Op::kMaxPool: {
          const nn::Node& gn = ctx.graph.node(n.graph_node);
          plan.pool_k = gn.pool_k;
          plan.pool_stride = gn.pool_stride;
          break;
        }
        case nn::Op::kFlatten:
        case nn::Op::kReLU:
          break;
        default:
          // AssignActivationQuant already rejected unsupported ops; this is
          // a structural backstop for a pass pipeline missing that pass.
          throw std::invalid_argument("compile: unsupported op in graph: " +
                                      std::string(nn::op_name(n.op)));
      }
      n.legalized = true;
      ++legalized;
    }
    return legalized;
  }

 private:
  /// Sum of one quantized pool row (zero-point bias correction input).
  static int32_t pool_rowsum(const PassContext& ctx, int s) {
    int32_t acc = 0;
    const int gs = ctx.lut->group_size;
    for (int j = 0; j < gs; ++j) {
      acc += ctx.qpool->data[static_cast<std::size_t>(s) * gs + j];
    }
    return acc;
  }

  static void legalize_conv(PlanGraph& pg, PassContext& ctx, PlanNode& n) {
    const nn::Node& gn = ctx.graph.node(n.graph_node);
    const PlanNode& src = pg.node(n.inputs[0]);
    const float s_in = src.oq.scale;
    const int in_zp = src.oq.zero_point;
    const BnFold bn = fold_bn(ctx.graph, n.bn_node, gn.conv.out_ch);
    LayerPlan& plan = n.plan;
    plan.spec = gn.conv;

    float conv_scale;
    std::vector<float> corr(static_cast<std::size_t>(gn.conv.out_ch), 0.0f);
    if (plan.kind == PlanKind::kConvBitSerial) {
      const pool::PooledLayer& pl = *ctx.pooled_layer(n.graph_node);
      plan.indices = n.indices.idx.empty() ? kernels::PackedIndices::pack(pl)
                                           : std::move(n.indices);
      plan.variant = n.variant;
      conv_scale = s_in * ctx.lut->pool_scale * ctx.lut->entry_scale;
      if (in_zp != 0) {
        // Offset-unsigned input: fold -zp * sum(w) into the bias. Only valid
        // without padding (padded taps would need the same term).
        check(gn.conv.pad == 0,
              "compile: pooled conv with signed (offset) input requires pad == 0");
        for (int o = 0; o < gn.conv.out_ch; ++o) {
          int64_t rowsum = 0;
          for (int g = 0; g < pl.channel_groups; ++g)
            for (int ky = 0; ky < pl.kh; ++ky)
              for (int kx = 0; kx < pl.kw; ++kx)
                rowsum += pool_rowsum(ctx, pl.index(o, g, ky, kx));
          corr[static_cast<std::size_t>(o)] = -s_in * static_cast<float>(in_zp) *
                                              ctx.lut->pool_scale * static_cast<float>(rowsum);
        }
      }
    } else {
      plan.qweights = quant::quantize_symmetric(gn.weight, ctx.opt.weight_bits);
      conv_scale = s_in * plan.qweights.scale;
    }

    plan.rq.scale.resize(static_cast<std::size_t>(gn.conv.out_ch));
    plan.rq.bias.resize(static_cast<std::size_t>(gn.conv.out_ch));
    for (int o = 0; o < gn.conv.out_ch; ++o) {
      const auto oi = static_cast<std::size_t>(o);
      const float conv_bias = gn.has_bias ? gn.bias[oi] : 0.0f;
      plan.rq.scale[oi] = conv_scale * bn.scale[oi];
      plan.rq.bias[oi] = bn.scale[oi] * (conv_bias + corr[oi] - bn.mean[oi]) + bn.beta[oi];
    }
    plan.rq.fuse_relu = n.fused_relu;
    plan.rq.out = n.oq;
  }

  static void legalize_linear(PlanGraph& pg, PassContext& ctx, PlanNode& n) {
    const nn::Node& gn = ctx.graph.node(n.graph_node);
    const PlanNode& src = pg.node(n.inputs[0]);
    const float s_in = src.oq.scale;
    const int fout = gn.weight.dim(0);
    LayerPlan& plan = n.plan;

    float lin_scale;
    std::vector<float> corr(static_cast<std::size_t>(fout), 0.0f);
    if (plan.kind == PlanKind::kLinearBitSerial) {
      const pool::PooledLayer& pl = *ctx.pooled_layer(n.graph_node);
      plan.indices = n.indices.idx.empty() ? kernels::PackedIndices::pack(pl)
                                           : std::move(n.indices);
      plan.variant = n.variant;
      lin_scale = s_in * ctx.lut->pool_scale * ctx.lut->entry_scale;
      if (src.oq.zero_point != 0) {
        for (int o = 0; o < fout; ++o) {
          int64_t rowsum = 0;
          for (int g = 0; g < pl.channel_groups; ++g) rowsum += pool_rowsum(ctx, pl.index(o, g, 0, 0));
          corr[static_cast<std::size_t>(o)] = -s_in *
                                              static_cast<float>(src.oq.zero_point) *
                                              ctx.lut->pool_scale * static_cast<float>(rowsum);
        }
      }
    } else {
      plan.qweights = quant::quantize_symmetric(gn.weight, ctx.opt.weight_bits);
      lin_scale = s_in * plan.qweights.scale;
    }

    plan.rq.scale.assign(static_cast<std::size_t>(fout), lin_scale);
    plan.rq.bias.resize(static_cast<std::size_t>(fout));
    for (int o = 0; o < fout; ++o) {
      const auto oi = static_cast<std::size_t>(o);
      plan.rq.bias[oi] = (gn.has_bias ? gn.bias[oi] : 0.0f) + corr[oi];
    }
    plan.rq.fuse_relu = n.fused_relu;
    plan.rq.out = n.oq;
  }

  static void legalize_gap(PlanGraph& pg, const PassContext&, PlanNode& n) {
    const PlanNode& src = pg.node(n.inputs[0]);
    check(src.out_chw.size() == 3, "compile: GlobalAvgPool input must be CHW");
    const int channels = src.out_chw[0];
    const float inv_hw = 1.0f / static_cast<float>(src.out_chw[1] * src.out_chw[2]);
    LayerPlan& plan = n.plan;
    plan.rq.scale.assign(static_cast<std::size_t>(channels), src.oq.scale * inv_hw);
    plan.rq.bias.assign(static_cast<std::size_t>(channels),
                        -src.oq.scale * static_cast<float>(src.oq.zero_point));
    plan.rq.fuse_relu = false;
    plan.rq.out = n.oq;
  }
};

}  // namespace

std::unique_ptr<Pass> make_legalize() { return std::make_unique<Legalize>(); }

}  // namespace bswp::runtime::lowering
