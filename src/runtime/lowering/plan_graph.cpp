#include "runtime/lowering/plan_graph.h"

#include <sstream>

namespace bswp::runtime::lowering {

int PlanGraph::live_count() const {
  int n = 0;
  for (const PlanNode& node : nodes_)
    if (!node.dead) ++n;
  return n;
}

std::vector<int> PlanGraph::live_nodes() const {
  std::vector<int> ids;
  ids.reserve(nodes_.size());
  for (int i = 0; i < num_nodes(); ++i)
    if (!nodes_[static_cast<std::size_t>(i)].dead) ids.push_back(i);
  return ids;
}

std::vector<std::vector<int>> PlanGraph::consumers() const {
  std::vector<std::vector<int>> c(nodes_.size());
  for (int i = 0; i < num_nodes(); ++i) {
    const PlanNode& n = nodes_[static_cast<std::size_t>(i)];
    if (n.dead) continue;
    for (int in : n.inputs) c[static_cast<std::size_t>(in)].push_back(i);
  }
  return c;
}

int PlanGraph::consumer_count(int id, int cap) const {
  int n = 0;
  for (const PlanNode& c : nodes_) {
    if (c.dead) continue;
    for (int in : c.inputs) {
      if (in == id && ++n >= cap) return n;
    }
  }
  return n;
}

void PlanGraph::splice(int id) {
  PlanNode& n = node(id);
  check(!n.dead, "PlanGraph::splice: node already dead");
  check(n.inputs.size() == 1, "PlanGraph::splice: only single-input nodes can be spliced");
  const int src = n.inputs[0];
  for (PlanNode& c : nodes_) {
    if (c.dead) continue;
    for (int& in : c.inputs)
      if (in == id) in = src;
  }
  if (output_ == id) output_ = src;
  n.dead = true;
}

const pool::PooledLayer* PassContext::pooled_layer(int graph_node) const {
  if (pooled == nullptr) return nullptr;
  for (const pool::PooledLayer& l : pooled->layers)
    if (l.node == graph_node) return &l;
  return nullptr;
}

PlanGraph build_plan_graph(const nn::Graph& g) {
  PlanGraph pg;
  for (int i = 0; i < g.num_nodes(); ++i) {
    const nn::Node& n = g.node(i);
    PlanNode p;
    p.op = n.op;
    p.name = n.name;
    p.graph_node = i;
    p.range_node = i;
    p.inputs = n.inputs;  // graph ids == plan-node ids at build time
    p.out_chw = n.out_chw;
    pg.add_node(std::move(p));
  }
  pg.set_output(g.output_node());
  return pg;
}

std::vector<std::unique_ptr<Pass>> default_pass_pipeline() {
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(make_fold_batchnorm());
  passes.push_back(make_fuse_activations());
  passes.push_back(make_eliminate_dead_nodes());
  passes.push_back(make_assign_activation_quant());
  passes.push_back(make_select_backends());
  passes.push_back(make_legalize());
  return passes;
}

void run_pass_pipeline(PlanGraph& pg, const std::vector<std::unique_ptr<Pass>>& passes,
                       PassContext& ctx) {
  for (const std::unique_ptr<Pass>& pass : passes) {
    const int before = pg.live_count();
    std::string detail;
    const int changes = pass->run(pg, ctx, &detail);
    if (ctx.report != nullptr && ctx.opt.pass_trace) {
      PassTraceEntry e;
      e.pass = pass->name();
      e.live_before = before;
      e.live_after = pg.live_count();
      e.changes = changes;
      e.detail = std::move(detail);
      ctx.report->pass_trace.push_back(std::move(e));
    }
  }
}

void freeze(PlanGraph& pg, CompiledNetwork& net) {
  const std::vector<int> order = pg.live_nodes();
  std::vector<int> plan_index(static_cast<std::size_t>(pg.num_nodes()), -1);
  for (int id : order) {
    PlanNode& n = pg.node(id);
    check(n.legalized, "freeze: live node '" + n.name + "' was never legalized");
    LayerPlan plan = std::move(n.plan);
    plan.lane = n.lane;
    plan.inputs.clear();
    plan.inputs.reserve(n.inputs.size());
    for (int in : n.inputs) {
      const int p = plan_index[static_cast<std::size_t>(in)];
      check(p >= 0, "freeze: node '" + n.name + "' consumes an unemitted producer");
      plan.inputs.push_back(p);
    }
    if (plan.kind == PlanKind::kInput) net.input_scale = plan.out.scale;
    plan_index[static_cast<std::size_t>(id)] = static_cast<int>(net.plans.size());
    net.plans.push_back(std::move(plan));
  }
}

}  // namespace bswp::runtime::lowering

namespace bswp::runtime {

std::string CompileReport::summary() const {
  std::ostringstream os;
  if (!pass_trace.empty()) {
    os << "pass trace:\n";
    for (const PassTraceEntry& e : pass_trace) {
      os << "  " << e.pass << ": " << e.live_before << " -> " << e.live_after
         << " live nodes, " << e.changes << " change(s)";
      if (!e.detail.empty()) os << " (" << e.detail << ")";
      os << "\n";
    }
  }
  if (!backend_choices.empty()) {
    os << "backend selection:\n";
    for (const BackendChoice& b : backend_choices) {
      os << "  " << b.layer << " [" << plan_kind_name(b.kind) << "] -> " << b.chosen;
      if (b.chosen_cycles > 0.0) {
        os << " (" << b.chosen_cycles << " cyc";
        if (b.heuristic_cycles > b.chosen_cycles) {
          os << ", heuristic " << b.heuristic_cycles << " cyc";
        }
        os << ")";
      }
      os << "\n";
      for (const BackendCandidate& c : b.candidates) {
        os << "      " << c.backend << ": " << c.cycles << " cyc"
           << (c.selectable ? "" : " [comparison only]") << "\n";
      }
    }
  }
  if (!lane_choices.empty()) {
    os << "host lane selection:\n";
    for (const LaneChoice& l : lane_choices) {
      os << "  " << l.layer << " [" << plan_kind_name(l.kind) << "] -> "
         << host_lane_name(l.lane);
      if (l.simd_cycles > 0.0) {
        os << " (scalar " << l.scalar_cycles << " cyc, simd " << l.simd_cycles << " cyc)";
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace bswp::runtime
