// PlanGraph: the mutable intermediate representation of the compile
// pipeline.
//
// A PlanGraph is built 1:1 from the float nn::Graph (one PlanNode per graph
// node, explicit producer edges) and then rewritten by an ordered pass
// pipeline until every live node carries a fully legalized LayerPlan; only
// then is it frozen into the immutable CompiledNetwork artifact. Passes are
// small, single-purpose, and composable — adding an optimization means
// adding a pass, not threading logic through a monolith:
//
//   FoldBatchNorm        conv→BN: BN affine recorded on the conv for later
//                        folding into requantization; BN node spliced out
//   FuseActivations      FakeQuant identities spliced; ReLU fused into its
//                        producing conv / linear / add (single-consumer)
//   EliminateDeadNodes   nodes with no path to the network output dropped
//   AssignActivationQuant every live node gets its output quantization from
//                        the calibration result (chain-end ranges)
//   SelectBackends       PlanKind + bit-serial variant per node; pooled
//                        layers pick the cheapest variant under the cost
//                        model (sim/layer_cost.h) priced by the compile
//                        profile — or the §4.3 heuristic in kHeuristic mode
//   Legalize             requantization construction (BN fold, zero-point
//                        row-sum corrections), weight quantization, index
//                        packing, and the unsupported-pattern checks
//
// Node ids are stable across passes (nodes are marked dead, never erased),
// ids are in topological order, and consumer lists are derived on demand —
// the invariants every pass relies on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "pool/lut.h"
#include "runtime/pipeline.h"

namespace bswp::runtime::lowering {

/// One tentative layer plan under construction.
struct PlanNode {
  nn::Op op = nn::Op::kInput;
  std::string name;
  int graph_node = -1;        // anchor node in the source nn::Graph
  std::vector<int> inputs;    // producing PlanGraph node ids
  std::vector<int> out_chw;   // output shape per sample
  bool dead = false;

  // --- fusion state (FoldBatchNorm / FuseActivations) ------------------------
  int bn_node = -1;           // graph node of the folded BatchNorm, or -1
  bool fused_relu = false;
  /// Graph node whose calibrated range defines this node's output (advances
  /// to the chain end as identities/activations are absorbed).
  int range_node = -1;

  // --- attached quantization (AssignActivationQuant) -------------------------
  kernels::OutputQuant oq;
  bool quant_assigned = false;

  // --- backend decision (SelectBackends) -------------------------------------
  PlanKind kind = PlanKind::kInput;
  kernels::BitSerialVariant variant = kernels::BitSerialVariant::kCached;
  HostLane lane = HostLane::kScalar;  // host kernel family (freeze -> plan.lane)
  bool kind_assigned = false;
  kernels::PackedIndices indices;  // packed for pooled nodes (reused by Legalize)

  // --- legalized artifact (Legalize; moved out by freeze) --------------------
  LayerPlan plan;
  bool legalized = false;
};

class PlanGraph {
 public:
  int add_node(PlanNode n) {
    nodes_.push_back(std::move(n));
    return static_cast<int>(nodes_.size()) - 1;
  }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  PlanNode& node(int i) { return nodes_.at(static_cast<std::size_t>(i)); }
  const PlanNode& node(int i) const { return nodes_.at(static_cast<std::size_t>(i)); }

  /// The node producing the network output (forwarded when spliced away).
  int output() const { return output_; }
  void set_output(int id) { output_ = id; }

  int live_count() const;
  /// Live node ids in topological (ascending-id) order.
  std::vector<int> live_nodes() const;
  /// Consumer lists over live nodes only (indexed by node id).
  std::vector<std::vector<int>> consumers() const;
  /// Number of live consumers of `id`, counting at most `cap` (allocation-free
  /// and always current — safe inside splice loops, where a consumers() map
  /// taken up front would go stale).
  int consumer_count(int id, int cap) const;

  /// Remove a single-input identity-like node from the graph: every consumer
  /// is rewired to its input, the output pointer is forwarded, and the node
  /// is marked dead.
  void splice(int id);

 private:
  std::vector<PlanNode> nodes_;
  int output_ = -1;
};

/// Everything the passes may consult. Borrowed members must outlive the run.
struct PassContext {
  const nn::Graph& graph;
  const pool::PooledNetwork* pooled;  // null for uncompressed builds
  const quant::CalibrationResult& cal;
  const CompileOptions& opt;
  const pool::DotLut* lut = nullptr;  // null without a pool
  const QTensor* qpool = nullptr;     // quantized pool (zero-point row sums)
  CompileReport* report = nullptr;    // null => nothing recorded

  /// Graph-node id -> pooled layer, for the layers the codec compressed.
  const pool::PooledLayer* pooled_layer(int graph_node) const;
};

/// One transformation over the PlanGraph. run() returns the number of
/// mutations it performed (for the pass trace) and may set `detail` to a
/// one-line summary.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual int run(PlanGraph& pg, PassContext& ctx, std::string* detail) = 0;
};

std::unique_ptr<Pass> make_fold_batchnorm();
std::unique_ptr<Pass> make_fuse_activations();
std::unique_ptr<Pass> make_eliminate_dead_nodes();
std::unique_ptr<Pass> make_assign_activation_quant();
std::unique_ptr<Pass> make_select_backends();
std::unique_ptr<Pass> make_legalize();

/// The default lowering pipeline, in order.
std::vector<std::unique_ptr<Pass>> default_pass_pipeline();

/// Build the initial 1:1 PlanGraph from the float graph.
PlanGraph build_plan_graph(const nn::Graph& g);

/// Run `passes` in order, recording trace entries when ctx.report is set and
/// ctx.opt.pass_trace is enabled.
void run_pass_pipeline(PlanGraph& pg, const std::vector<std::unique_ptr<Pass>>& passes,
                       PassContext& ctx);

/// Move every live node's legalized LayerPlan into `net` in topological
/// order, remapping plan inputs from node ids to plan indices.
void freeze(PlanGraph& pg, CompiledNetwork& net);

}  // namespace bswp::runtime::lowering
