// Introspection artifacts of the lowering pipeline: the per-pass trace and
// the per-layer backend-selection report. Produced by runtime::compile()
// when the caller passes a CompileReport, surfaced through
// bswp::Deployment::compile_report().
#pragma once

#include <string>
#include <vector>

#include "runtime/compressed_network.h"

namespace bswp::runtime {

/// One pipeline pass as it ran over the PlanGraph. Only recorded when
/// CompileOptions::pass_trace is set.
struct PassTraceEntry {
  std::string pass;
  int live_before = 0;  // live PlanGraph nodes entering the pass
  int live_after = 0;
  int changes = 0;      // pass-defined mutation count (folds, fusions, ...)
  std::string detail;   // one-line human summary, may be empty
};

/// One candidate backend considered for a layer, priced by the cost model.
struct BackendCandidate {
  std::string backend;   // e.g. "bitserial/cached+precompute", "baseline int8"
  double cycles = 0.0;   // estimated cycles under CompileOptions::cost_profile
  /// False for candidates listed for comparison only (the baseline kernel on
  /// a pooled layer computes different numerics, so it is never chosen).
  bool selectable = true;
};

/// The SelectBackends decision for one layer that had a real choice.
struct BackendChoice {
  std::string layer;
  PlanKind kind = PlanKind::kConvBitSerial;
  std::vector<BackendCandidate> candidates;
  std::string chosen;
  double chosen_cycles = 0.0;
  /// Cycles of the variant the pre-cost-model heuristic (§4.3 filters-vs-pool
  /// rule) would have picked; >= chosen_cycles by construction.
  double heuristic_cycles = 0.0;
};

/// The SelectBackends host-lane decision (scalar vs SIMD kernel family) for
/// one compute layer. Recorded for every conv/linear layer, pooled or not;
/// both lanes are bit-identical, so this only affects host wall-clock time.
struct LaneChoice {
  std::string layer;
  PlanKind kind = PlanKind::kConvBaseline;
  HostLane lane = HostLane::kScalar;
  /// Estimated cycles of each lane under CompileOptions::host_profile.
  /// simd_cycles is 0 when the SIMD backends are compiled out or the lane
  /// was forced (HostLaneSelect != kCostModel).
  double scalar_cycles = 0.0;
  double simd_cycles = 0.0;
};

/// Everything the lowering pipeline can tell you about one compile() run.
struct CompileReport {
  std::vector<PassTraceEntry> pass_trace;
  std::vector<BackendChoice> backend_choices;
  std::vector<LaneChoice> lane_choices;

  /// Multi-line human-readable rendering of both sections.
  std::string summary() const;
};

}  // namespace bswp::runtime
