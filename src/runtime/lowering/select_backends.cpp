// SelectBackends: assign every live node its PlanKind and, for pooled
// layers, the bit-serial variant that will execute it.
//
// In kCostModel mode (the default) the choice is a measured-cost decision:
// sim/layer_cost.h predicts the exact event counts of all five bit-serial
// variants (the counts are closed-form in geometry and pool indices — see
// tests/test_layer_cost.cpp), CompileOptions::cost_profile prices them in
// cycles, and the cheapest variant wins. Because per-layer cycles are
// additive, per-layer argmin is optimal for whole-network simulated latency
// — it can only match or beat the §4.3 filters-vs-pool-size heuristic,
// which remains available as BackendSelect::kHeuristic for ablations. The
// baseline int8 kernel is priced alongside for the report, but never chosen
// for a pooled layer (it computes different numerics than the LUT path).
//
// Orthogonally, every conv/linear layer gets a HostLane: the scalar
// reference kernels or the SIMD family under src/kernels/simd/. Both lanes
// are bit-identical, so the decision is pure wall-clock — the same argmin
// machinery prices the scalar closed form against the simd_* closed form
// under CompileOptions::host_profile and keeps the cheaper lane (ties go to
// scalar). kSimd is never assigned when the SIMD backends are compiled out.
#include <limits>

#include "kernels/simd/simd_dispatch.h"
#include "runtime/lowering/plan_graph.h"
#include "sim/layer_cost.h"

namespace bswp::runtime::lowering {
namespace {

using kernels::BitSerialVariant;

constexpr BitSerialVariant kAllVariants[] = {
    BitSerialVariant::kNaive, BitSerialVariant::kInputReuse, BitSerialVariant::kCached,
    BitSerialVariant::kCachedPrecompute, BitSerialVariant::kCachedMemoize};

class SelectBackends : public Pass {
 public:
  const char* name() const override { return "SelectBackends"; }

  int run(PlanGraph& pg, PassContext& ctx, std::string* detail) override {
    int decided = 0, cost_picked = 0, simd_lanes = 0;
    for (int id : pg.live_nodes()) {
      PlanNode& n = pg.node(id);
      switch (n.op) {
        case nn::Op::kInput: n.kind = PlanKind::kInput; break;
        case nn::Op::kMaxPool: n.kind = PlanKind::kMaxPool; break;
        case nn::Op::kGlobalAvgPool: n.kind = PlanKind::kGlobalAvgPool; break;
        case nn::Op::kAdd: n.kind = PlanKind::kAdd; break;
        case nn::Op::kFlatten: n.kind = PlanKind::kFlatten; break;
        case nn::Op::kReLU: n.kind = PlanKind::kRelu; break;
        case nn::Op::kConv2d:
        case nn::Op::kLinear: {
          const pool::PooledLayer* pl = ctx.pooled_layer(n.graph_node);
          if (pl == nullptr) {
            n.kind = n.op == nn::Op::kConv2d ? PlanKind::kConvBaseline
                                             : PlanKind::kLinearBaseline;
          } else {
            n.kind = n.op == nn::Op::kConv2d ? PlanKind::kConvBitSerial
                                             : PlanKind::kLinearBitSerial;
            n.indices = kernels::PackedIndices::pack(*pl);
            if (choose_variant(pg, ctx, n)) ++cost_picked;
          }
          choose_lane(pg, ctx, n);
          if (n.lane == HostLane::kSimd) ++simd_lanes;
          break;
        }
        default:
          continue;  // unsupported ops were rejected by AssignActivationQuant
      }
      n.kind_assigned = true;
      ++decided;
    }
    if (detail != nullptr && (cost_picked > 0 || simd_lanes > 0)) {
      std::string d;
      if (cost_picked > 0) {
        d = std::to_string(cost_picked) + " pooled layer(s) priced by " +
            ctx.opt.cost_profile.name;
      }
      if (simd_lanes > 0) {
        if (!d.empty()) d += "; ";
        d += std::to_string(simd_lanes) + " layer(s) on the simd host lane";
      }
      *detail = std::move(d);
    }
    return decided;
  }

 private:
  /// The pre-cost-model layer policy (§4.2-4.3): precompute when filters
  /// exceed the pool size; cache when the filter loop amortizes the block
  /// copies; flash reads for very narrow layers. Linear layers were always
  /// cached.
  static BitSerialVariant heuristic_variant(const PassContext& ctx, const PlanNode& n,
                                            int pool_size) {
    if (n.op == nn::Op::kLinear) return BitSerialVariant::kCached;
    const int out_ch = ctx.graph.node(n.graph_node).conv.out_ch;
    if (ctx.opt.auto_precompute && kernels::should_precompute(out_ch, pool_size)) {
      return BitSerialVariant::kCachedPrecompute;
    }
    if (out_ch * 4 >= pool_size) return BitSerialVariant::kCached;
    return BitSerialVariant::kInputReuse;
  }

  /// Pick n.variant. Returns true when the cost model made the decision.
  bool choose_variant(const PlanGraph& pg, PassContext& ctx, PlanNode& n) const {
    if (ctx.opt.force_variant) {
      n.variant = ctx.opt.forced_variant;
      return false;
    }
    check(ctx.lut != nullptr, "SelectBackends: pooled layer without a LUT");
    if (ctx.opt.backend_select == BackendSelect::kHeuristic) {
      n.variant = heuristic_variant(ctx, n, ctx.lut->pool_size);
      return false;
    }

    // Cost-model mode: price every variant (and the baseline kernel, for the
    // report) under the compile profile.
    const PlanNode& src = pg.node(n.inputs[0]);
    check(src.quant_assigned, "SelectBackends: producer of '" + n.name + "' lacks quantization");
    const int M = src.oq.bits;  // bit-serial loop depth = input bitwidth
    const sim::McuProfile& mcu = ctx.opt.cost_profile;

    BackendChoice choice;
    choice.layer = n.name;
    choice.kind = n.kind;
    double best = std::numeric_limits<double>::infinity();
    for (BitSerialVariant v : kAllVariants) {
      const double cycles = mcu.cycles(variant_cost(ctx, n, src, M, v));
      choice.candidates.push_back(
          {std::string("bitserial/") + kernels::variant_name(v), cycles, true});
      if (cycles < best) {
        best = cycles;
        n.variant = v;
      }
    }
    choice.chosen = std::string("bitserial/") + kernels::variant_name(n.variant);
    choice.chosen_cycles = best;
    choice.heuristic_cycles =
        mcu.cycles(variant_cost(ctx, n, src, M, heuristic_variant(ctx, n, ctx.lut->pool_size)));
    choice.candidates.push_back({"baseline int8", mcu.cycles(baseline_cost(ctx, n, src)), false});
    if (ctx.report != nullptr) ctx.report->backend_choices.push_back(std::move(choice));
    return true;
  }

  /// Assign n.lane for a conv/linear node (any of the four compute kinds).
  /// Forced modes short-circuit; kCostModel prices the scalar closed form of
  /// the *chosen* backend against its simd_* counterpart under
  /// CompileOptions::host_profile. kSimd is only ever assigned when
  /// kernels::simd::available() — a network compiled on a SIMD build still
  /// loads on a scalar-only one because KernelRegistry::find falls back, but
  /// the compile-time decision must not promise what this build lacks.
  void choose_lane(const PlanGraph& pg, PassContext& ctx, PlanNode& n) const {
    n.lane = HostLane::kScalar;
    double scalar_cyc = 0.0, simd_cyc = 0.0;
    if (kernels::simd::available() && ctx.opt.host_lanes != HostLaneSelect::kScalar) {
      if (ctx.opt.host_lanes == HostLaneSelect::kSimd) {
        n.lane = HostLane::kSimd;
      } else {
        const sim::McuProfile& host = ctx.opt.host_profile;
        const PlanNode& src = pg.node(n.inputs[0]);
        const int batch = ctx.opt.batch_hint > 1 ? ctx.opt.batch_hint : 1;
        scalar_cyc = host.cycles(scalar_lane_cost(ctx, n, src, batch));
        simd_cyc = host.cycles(simd_lane_cost(ctx, n, src, batch));
        if (simd_cyc < scalar_cyc) n.lane = HostLane::kSimd;
      }
    }
    if (ctx.report != nullptr) {
      ctx.report->lane_choices.push_back({n.name, n.kind, n.lane, scalar_cyc, simd_cyc});
    }
  }

  /// Host-profile event counts of the scalar lane for the backend already
  /// chosen for `n` (baseline int8 or the winning bit-serial variant). With
  /// `batch` > 1 (CompileOptions::batch_hint) the batched closed forms price
  /// one batched-core call over the whole batch.
  static sim::CostCounter scalar_lane_cost(const PassContext& ctx, const PlanNode& n,
                                           const PlanNode& src, int batch) {
    if (n.kind == PlanKind::kConvBaseline || n.kind == PlanKind::kLinearBaseline) {
      return baseline_cost_for(ctx, n, src, batch);
    }
    check(src.quant_assigned, "SelectBackends: producer of '" + n.name + "' lacks quantization");
    if (batch > 1) {
      if (n.op == nn::Op::kLinear) {
        const int fin = static_cast<int>(elems(src.out_chw));
        return sim::bitserial_linear_cost_batched(fin, src.oq.bits, *ctx.lut, n.indices,
                                                  n.variant, batch);
      }
      const nn::ConvSpec& spec = ctx.graph.node(n.graph_node).conv;
      return sim::bitserial_conv_cost_batched(spec, src.out_chw[1], src.out_chw[2], src.oq.bits,
                                              *ctx.lut, n.indices, n.variant, batch);
    }
    return variant_cost(ctx, n, src, src.oq.bits, n.variant);
  }

  static sim::CostCounter simd_lane_cost(const PassContext& ctx, const PlanNode& n,
                                         const PlanNode& src, int batch) {
    if (n.op == nn::Op::kLinear) {
      const int fin = static_cast<int>(elems(src.out_chw));
      if (n.kind == PlanKind::kLinearBaseline) {
        const int fout = ctx.graph.node(n.graph_node).weight.dim(0);
        return batch > 1 ? sim::simd_linear_cost_batched(fin, fout, batch)
                         : sim::simd_linear_cost(fin, fout);
      }
      return batch > 1 ? sim::simd_bitserial_linear_cost_batched(fin, n.indices.out_ch,
                                                                 src.oq.bits, *ctx.lut, batch)
                       : sim::simd_bitserial_linear_cost(fin, n.indices.out_ch, src.oq.bits,
                                                         *ctx.lut);
    }
    const nn::ConvSpec& spec = ctx.graph.node(n.graph_node).conv;
    if (n.kind == PlanKind::kConvBaseline) {
      return batch > 1 ? sim::simd_conv_cost_batched(spec, src.out_chw[1], src.out_chw[2], batch)
                       : sim::simd_conv_cost(spec, src.out_chw[1], src.out_chw[2]);
    }
    return batch > 1 ? sim::simd_bitserial_conv_cost_batched(spec, src.out_chw[1], src.out_chw[2],
                                                             src.oq.bits, *ctx.lut, batch)
                     : sim::simd_bitserial_conv_cost(spec, src.out_chw[1], src.out_chw[2],
                                                     src.oq.bits, *ctx.lut);
  }

  /// Like baseline_cost, but valid for unpooled layers too (no indices).
  static sim::CostCounter baseline_cost_for(const PassContext& ctx, const PlanNode& n,
                                            const PlanNode& src, int batch = 1) {
    if (n.op == nn::Op::kLinear) {
      const int fin = static_cast<int>(elems(src.out_chw));
      const int fout = ctx.graph.node(n.graph_node).weight.dim(0);
      return batch > 1 ? sim::baseline_linear_cost_batched(fin, fout, batch)
                       : sim::baseline_linear_cost(fin, fout);
    }
    const nn::ConvSpec& spec = ctx.graph.node(n.graph_node).conv;
    return batch > 1
               ? sim::baseline_conv_cost_batched(spec, src.out_chw[1], src.out_chw[2], batch)
               : sim::baseline_conv_cost(spec, src.out_chw[1], src.out_chw[2]);
  }

  static sim::CostCounter variant_cost(const PassContext& ctx, const PlanNode& n,
                                       const PlanNode& src, int act_bits, BitSerialVariant v) {
    if (n.op == nn::Op::kLinear) {
      const int fin = static_cast<int>(elems(src.out_chw));
      return sim::bitserial_linear_cost(fin, act_bits, *ctx.lut, n.indices, v);
    }
    const nn::ConvSpec& spec = ctx.graph.node(n.graph_node).conv;
    return sim::bitserial_conv_cost(spec, src.out_chw[1], src.out_chw[2], act_bits, *ctx.lut,
                                    n.indices, v);
  }

  static sim::CostCounter baseline_cost(const PassContext& ctx, const PlanNode& n,
                                        const PlanNode& src) {
    if (n.op == nn::Op::kLinear) {
      const int fin = static_cast<int>(elems(src.out_chw));
      return sim::baseline_linear_cost(fin, n.indices.out_ch);
    }
    const nn::ConvSpec& spec = ctx.graph.node(n.graph_node).conv;
    return sim::baseline_conv_cost(spec, src.out_chw[1], src.out_chw[2]);
  }

  static std::size_t elems(const std::vector<int>& chw) {
    std::size_t n = 1;
    for (int d : chw) n *= static_cast<std::size_t>(d);
    return n;
  }
};

}  // namespace

std::unique_ptr<Pass> make_select_backends() { return std::make_unique<SelectBackends>(); }

}  // namespace bswp::runtime::lowering
