#include "runtime/memory_planner.h"

#include <algorithm>

#include "runtime/kernel_backend.h"

namespace bswp::runtime {

namespace {

constexpr std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

/// Coalescing free list over [offset, offset+size) byte ranges.
class FreeList {
 public:
  /// Best-fit allocation; returns true and sets `offset` if a range fits.
  bool take(std::size_t size, std::size_t* offset) {
    std::size_t best = ranges_.size();
    for (std::size_t i = 0; i < ranges_.size(); ++i) {
      if (ranges_[i].size >= size &&
          (best == ranges_.size() || ranges_[i].size < ranges_[best].size)) {
        best = i;
      }
    }
    if (best == ranges_.size()) return false;
    *offset = ranges_[best].offset;
    ranges_[best].offset += size;
    ranges_[best].size -= size;
    if (ranges_[best].size == 0) ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(best));
    return true;
  }

  /// Allocation that may grow the arena: place at a free range ending
  /// exactly at `*high_water` (paying only the difference), or at the high
  /// water itself. Used when no existing range fits outright.
  void take_end(std::size_t size, std::size_t* offset, std::size_t* high_water) {
    if (!ranges_.empty()) {
      Range& tail = ranges_.back();
      if (tail.offset + tail.size == *high_water) {
        *offset = tail.offset;
        *high_water = tail.offset + size;
        ranges_.pop_back();
        return;
      }
    }
    *offset = *high_water;
    *high_water += size;
  }

  /// Return a range, merging with adjacent free ranges.
  void release(std::size_t offset, std::size_t size) {
    if (size == 0) return;
    Range r{offset, size};
    auto it = std::lower_bound(
        ranges_.begin(), ranges_.end(), r,
        [](const Range& a, const Range& b) { return a.offset < b.offset; });
    it = ranges_.insert(it, r);
    // Merge with successor, then predecessor.
    auto next = it + 1;
    if (next != ranges_.end() && it->offset + it->size == next->offset) {
      it->size += next->size;
      ranges_.erase(next);
    }
    if (it != ranges_.begin()) {
      auto prev = it - 1;
      if (prev->offset + prev->size == it->offset) {
        prev->size += it->size;
        ranges_.erase(it);
      }
    }
  }

 private:
  struct Range {
    std::size_t offset;
    std::size_t size;
  };
  std::vector<Range> ranges_;  // sorted by offset, non-adjacent
};

}  // namespace

std::vector<int> MemoryPlanner::last_uses(const CompiledNetwork& net) {
  const int n = static_cast<int>(net.plans.size());
  std::vector<int> last(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    last[static_cast<std::size_t>(p)] = p;
    for (int in : net.plans[static_cast<std::size_t>(p)].inputs) {
      check(in >= 0 && in < p, "MemoryPlanner: plan inputs must precede the plan");
      last[static_cast<std::size_t>(in)] = std::max(last[static_cast<std::size_t>(in)], p);
    }
  }
  // The network output is live past the end — the caller reads it after
  // run() returns.
  if (n > 0) last[static_cast<std::size_t>(n - 1)] = n;
  return last;
}

MemoryPlan MemoryPlanner::plan(const CompiledNetwork& net,
                               const std::vector<std::size_t>& out_bytes,
                               const std::vector<std::size_t>& scratch,
                               const std::vector<int>* inplace_input) {
  const int n = static_cast<int>(net.plans.size());
  check(static_cast<int>(out_bytes.size()) == n && static_cast<int>(scratch.size()) == n,
        "MemoryPlanner: sizing vectors do not match the network");
  check(inplace_input == nullptr || static_cast<int>(inplace_input->size()) == n,
        "MemoryPlanner: inplace hints do not match the network");
  MemoryPlan mp;
  mp.buffers.resize(static_cast<std::size_t>(n));

  // Liveness: a buffer stays live from its producer through its last
  // consumer.
  const std::vector<int> last = last_uses(net);
  for (int p = 0; p < n; ++p) {
    mp.buffers[static_cast<std::size_t>(p)].def = p;
    mp.buffers[static_cast<std::size_t>(p)].last_use = last[static_cast<std::size_t>(p)];
  }

  // Offset assignment: release dead buffers before placing each output, then
  // best-fit into a freed slot or extend the arena. An applicable in-place
  // hint (the hinted input dies at this very plan) releases that input
  // early, so the new buffer may overlay it — the plan's execution consumes
  // the input as it overwrites it.
  FreeList free_list;
  std::vector<bool> released(static_cast<std::size_t>(n), false);
  std::size_t high_water = 0;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < p; ++q) {
      if (released[static_cast<std::size_t>(q)]) continue;
      const BufferPlacement& dead = mp.buffers[static_cast<std::size_t>(q)];
      if (dead.last_use < p) {
        free_list.release(dead.offset, dead.bytes);
        released[static_cast<std::size_t>(q)] = true;
      }
    }
    BufferPlacement& b = mp.buffers[static_cast<std::size_t>(p)];
    if (inplace_input != nullptr) {
      const int q = (*inplace_input)[static_cast<std::size_t>(p)];
      if (q >= 0 && mp.buffers[static_cast<std::size_t>(q)].last_use == p &&
          !released[static_cast<std::size_t>(q)]) {
        const BufferPlacement& victim = mp.buffers[static_cast<std::size_t>(q)];
        free_list.release(victim.offset, victim.bytes);
        released[static_cast<std::size_t>(q)] = true;
        b.inplace_of = q;
      }
    }
    b.bytes = round_up(std::max<std::size_t>(out_bytes[static_cast<std::size_t>(p)], 1), kAlign);
    if (!free_list.take(b.bytes, &b.offset)) {
      free_list.take_end(b.bytes, &b.offset, &high_water);
    }
    mp.scratch_bytes = std::max(mp.scratch_bytes, scratch[static_cast<std::size_t>(p)]);
  }
  mp.act_bytes = high_water;
  return mp;
}

MemoryPlan MemoryPlanner::plan_host(const CompiledNetwork& net,
                                    const std::vector<const KernelBackend*>& backends, int batch) {
  check(backends.size() == net.plans.size(), "MemoryPlanner: backends do not match the network");
  check(batch >= 1, "MemoryPlanner: batch must be >= 1");
  std::vector<std::size_t> out_bytes(net.plans.size());
  std::vector<std::size_t> scratch(net.plans.size());
  for (std::size_t p = 0; p < net.plans.size(); ++p) {
    out_bytes[p] =
        net.plans[p].out_elems() * sizeof(int16_t) * static_cast<std::size_t>(batch);
    scratch[p] = batch > 1 ? backends[p]->scratch_bytes_batch(net, net.plans[p], batch)
                           : backends[p]->scratch_bytes(net, net.plans[p]);
  }
  return plan(net, out_bytes, scratch);
}

MemoryPlan MemoryPlanner::plan_mcu(const CompiledNetwork& net) {
  // Deployment sizing: M-bit activations are stored bit-packed (the whole
  // point of the bit-serial kernels — precision is a memory knob too), and
  // the standard memory-starved-MCU techniques documented in DESIGN.md are
  // modeled as in-place hints, applied by the planner only where they are
  // sound (the overwritten input's last consumer is this plan):
  //  * rolling in-place convolution: input rows die as output rows are
  //    produced, so the shared slot holds max(in, out) plus ~(kh+1) rows;
  //  * residual adds accumulate in place over one dying operand;
  //  * relu / flatten / maxpool rewrite their input in place.
  const std::vector<int> last = last_uses(net);
  auto packed_bytes = [](const LayerPlan& p) {
    return (p.out_elems() * static_cast<std::size_t>(p.out.bits) + 7) / 8;
  };
  std::vector<std::size_t> out_bytes(net.plans.size());
  std::vector<std::size_t> scratch(net.plans.size());
  std::vector<int> inplace(net.plans.size(), -1);
  for (std::size_t p = 0; p < net.plans.size(); ++p) {
    const LayerPlan& plan = net.plans[p];
    out_bytes[p] = packed_bytes(plan);
    const int src = plan.inputs.empty() ? -1 : plan.inputs[0];
    const bool src_dies =
        src >= 0 && last[static_cast<std::size_t>(src)] == static_cast<int>(p);
    switch (plan.kind) {
      case PlanKind::kConvBaseline:
      case PlanKind::kConvBitSerial: {
        if (src_dies) {
          // Rolling window: the slot carries the larger map plus the live
          // band of output rows not yet claimed from the input.
          const std::size_t in_b = packed_bytes(net.plans[static_cast<std::size_t>(src)]);
          const std::size_t out_b = out_bytes[p];
          const int out_h = plan.out_chw.size() == 3 ? plan.out_chw[1] : 1;
          const std::size_t row = out_h > 0 ? out_b / static_cast<std::size_t>(out_h) : out_b;
          out_bytes[p] = std::max(in_b, out_b) +
                         std::min(out_b, static_cast<std::size_t>(plan.spec.kh + 1) * row);
          inplace[p] = src;
        }
        scratch[p] =
            plan.kind == PlanKind::kConvBaseline
                ? kernels::baseline_conv_scratch_bytes(plan.spec)
                : kernels::bitserial_scratch_bytes(plan.spec, net.lut, plan.variant, net.act_bits);
        break;
      }
      case PlanKind::kLinearBitSerial: {
        nn::ConvSpec fc_spec;
        fc_spec.out_ch = plan.indices.out_ch;
        scratch[p] = kernels::bitserial_scratch_bytes(fc_spec, net.lut, plan.variant, net.act_bits);
        break;
      }
      case PlanKind::kConvBinary: {
        // XNOR conv scratch: the packed +-1 input map (1 bit/lane,
        // word-padded along channels) staged next to the unpacked input.
        const LayerPlan& src_plan = net.plans[static_cast<std::size_t>(plan.inputs[0])];
        const int in_ch = plan.spec.in_ch;
        const int words = (in_ch + 31) / 32;
        const std::size_t in_hw =
            in_ch > 0 ? src_plan.out_elems() / static_cast<std::size_t>(in_ch) : 0;
        scratch[p] = in_hw * static_cast<std::size_t>(words) * 4;
        break;
      }
      case PlanKind::kAdd: {
        if (src_dies) {
          inplace[p] = src;
        } else if (plan.inputs.size() > 1 &&
                   last[static_cast<std::size_t>(plan.inputs[1])] == static_cast<int>(p)) {
          inplace[p] = plan.inputs[1];
        }
        break;
      }
      case PlanKind::kRelu:
      case PlanKind::kFlatten:
      case PlanKind::kMaxPool:
        if (src_dies) inplace[p] = src;
        break;
      default:
        break;
    }
  }
  return plan(net, out_bytes, scratch, &inplace);
}

sim::MemoryFootprint footprint(const CompiledNetwork& net) {
  sim::MemoryFootprint fp;
  if (net.has_lut) fp.flash_bytes += net.lut.storage_bytes();

  // Flash image: weights / indices / per-channel requant constants (scale +
  // bias as 4-byte words each, the fixed-point multiplier pairs of a real
  // deployment).
  for (const auto& plan : net.plans) {
    switch (plan.kind) {
      case PlanKind::kConvBaseline:
      case PlanKind::kLinearBaseline:
        fp.flash_bytes += plan.qweights.size();  // int8 weights, 1 byte each
        fp.flash_bytes += plan.rq.scale.size() * 8;
        break;
      case PlanKind::kConvBitSerial:
      case PlanKind::kLinearBitSerial:
        fp.flash_bytes += plan.indices.storage_bytes();
        fp.flash_bytes += plan.rq.scale.size() * 8;
        break;
      case PlanKind::kConvBinary:
        fp.flash_bytes += (plan.qweights.size() + 7) / 8;  // 1-bit packed signs
        fp.flash_bytes += plan.rq.scale.size() * 8;
        break;
      default:
        break;
    }
  }

  // Peak SRAM: the deployment arena the MemoryPlanner would lay out on the
  // device — liveness-shared activation slots plus the per-kernel scratch
  // high-water mark. This is the same plan the Executor executes against
  // (host-sized), so the simulated budget can no longer drift from the
  // engine's actual memory behavior.
  fp.sram_bytes = MemoryPlanner::plan_mcu(net).peak_bytes();
  return fp;
}

}  // namespace bswp::runtime
