// Liveness-driven static memory planning for compiled networks.
//
// The planner walks the plan list in execution order, computes each
// activation's live interval (producer through last consumer), and assigns
// byte offsets in a single arena with a coalescing best-fit free list, so
// buffers whose lifetimes do not overlap share storage. The same algorithm
// serves two sizing models:
//
//   plan_host — what the Executor actually allocates: activations stored as
//     int16 elements plus each backend's self-reported scratch high-water.
//   plan_mcu  — what a firmware deployment would place in SRAM: M-bit
//     activations stored bit-packed, in-place techniques (rolling conv,
//     accumulate-in-place add) applied where liveness proves them sound,
//     plus the modeled kernel scratch (im2col column buffer, LUT cache,
//     packed XNOR operands).
//
// runtime::footprint() derives its peak-SRAM number from plan_mcu, so the
// simulator's memory model and the engine's arena are one artifact: the cost
// model cannot drift from what execution does again.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/compressed_network.h"
#include "sim/mcu.h"

namespace bswp::runtime {

class KernelBackend;

/// One activation buffer's placement in the arena.
struct BufferPlacement {
  std::size_t offset = 0;  // byte offset of the buffer in the arena
  std::size_t bytes = 0;   // rounded-up (aligned) buffer size
  int def = -1;            // producing plan index
  int last_use = -1;       // last plan index that reads this buffer
  /// Plan index whose buffer this placement overwrites in place (-1 = none).
  /// Only set when the input dies at this plan; the two placements may then
  /// legally share bytes (rolling conv, accumulate-in-place add, ...).
  int inplace_of = -1;
};

struct MemoryPlan {
  std::vector<BufferPlacement> buffers;  // indexed by plan id
  std::size_t act_bytes = 0;             // activation-region high-water mark
  std::size_t scratch_bytes = 0;         // max per-plan scratch requirement
  /// Peak SRAM / arena size: activations and scratch live side by side.
  std::size_t peak_bytes() const { return act_bytes + scratch_bytes; }
};

class MemoryPlanner {
 public:
  /// Buffer alignment inside the arena (also keeps per-buffer cache lines
  /// from straddling two logical buffers).
  static constexpr std::size_t kAlign = 64;

  /// Plan the host Executor's arena: int16 activation slots + the resolved
  /// backends' scratch_bytes high-water. `backends` must parallel net.plans.
  /// With `batch` > 1 every activation slot holds `batch` images laid out at
  /// the per-image stride (plan.out_elems() elements) and scratch is sized
  /// from scratch_bytes_batch — liveness and in-place logic are unchanged,
  /// the slots just scale by the batch dimension.
  static MemoryPlan plan_host(const CompiledNetwork& net,
                              const std::vector<const KernelBackend*>& backends, int batch = 1);

  /// Plan the modeled MCU deployment: bit-packed M-bit activations +
  /// modeled kernel scratch (feeds runtime::footprint()). Models the
  /// standard memory-starved-MCU implementation techniques as in-place
  /// aliasing hints that the planner honors only when sound (input dies at
  /// the consuming plan): rolling in-place convolution, accumulate-in-place
  /// residual add, in-place relu/flatten/maxpool.
  static MemoryPlan plan_mcu(const CompiledNetwork& net);

  /// Core algorithm: liveness analysis + best-fit offset assignment over
  /// per-plan output sizes (`out_bytes`) and scratch needs (`scratch`).
  /// `inplace_input`, when given, holds per plan the producing-plan index
  /// whose buffer this plan may overwrite (or -1); the hint is applied only
  /// if that buffer's last use is this plan.
  static MemoryPlan plan(const CompiledNetwork& net, const std::vector<std::size_t>& out_bytes,
                         const std::vector<std::size_t>& scratch,
                         const std::vector<int>* inplace_input = nullptr);

  /// Per-plan last consumer index (the final plan is pinned past the end).
  static std::vector<int> last_uses(const CompiledNetwork& net);
};

/// Static flash image + peak SRAM of a deployment (used against Table 2
/// budgets; uncompressed big networks overflow flash — the "/" rows of
/// Table 7). SRAM is the MCU memory plan's arena peak.
sim::MemoryFootprint footprint(const CompiledNetwork& net);

}  // namespace bswp::runtime
