#include "runtime/pipeline.h"

#include "runtime/lowering/plan_graph.h"

namespace bswp::runtime {

CompiledNetwork compile(const nn::Graph& g, const pool::PooledNetwork* pooled,
                        const quant::CalibrationResult& cal, const CompileOptions& opt,
                        CompileReport* report) {
  check(opt.act_bits >= 1 && opt.act_bits <= 8, "compile: act_bits must be in 1..8");
  CompiledNetwork net;
  net.act_bits = opt.act_bits;

  // Shared LUT + quantized pool for the pooled layers (built once up front —
  // the SelectBackends cost model and the Legalize row-sum corrections both
  // read it).
  QTensor qpool;
  if (pooled != nullptr && !pooled->layers.empty()) {
    pool::LutOptions lo;
    lo.bitwidth = opt.lut_bits;
    lo.order = opt.lut_order;
    lo.pool_quant_bits = opt.weight_bits;
    net.lut = pool::build_lut(pooled->pool, lo);
    net.has_lut = true;
    qpool = pool::quantize_pool(pooled->pool, opt.weight_bits);
  }

  lowering::PassContext ctx{g,
                            net.has_lut ? pooled : nullptr,
                            cal,
                            opt,
                            net.has_lut ? &net.lut : nullptr,
                            net.has_lut ? &qpool : nullptr,
                            report};
  lowering::PlanGraph pg = lowering::build_plan_graph(g);
  lowering::run_pass_pipeline(pg, lowering::default_pass_pipeline(), ctx);
  lowering::freeze(pg, net);
  return net;
}

}  // namespace bswp::runtime
