#include "runtime/pipeline.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "quant/quantize.h"

namespace bswp::runtime {

namespace {

using nn::Op;

struct Chain {
  int bn_node = -1;
  bool has_relu = false;
  int end = -1;  // last absorbed node (defines the output range)
  std::vector<int> members;
};

/// Follow the single-consumer chain of BN / ReLU / FakeQuant nodes hanging
/// off `start`. BN is only absorbable directly after a conv (before ReLU).
Chain walk_chain(const nn::Graph& g, const std::vector<std::vector<int>>& consumers, int start,
                 bool allow_bn) {
  Chain c;
  c.end = start;
  c.members.push_back(start);
  int cur = start;
  while (true) {
    const auto& next_list = consumers[static_cast<std::size_t>(cur)];
    if (next_list.size() != 1) break;
    const int next = next_list[0];
    const Op op = g.node(next).op;
    if (op == Op::kBatchNorm) {
      if (!allow_bn || c.bn_node != -1 || c.has_relu) break;
      c.bn_node = next;
    } else if (op == Op::kReLU) {
      if (c.has_relu) break;
      c.has_relu = true;
    } else if (op == Op::kFakeQuant) {
      // calibration identity at inference time
    } else {
      break;
    }
    cur = next;
    c.end = cur;
    c.members.push_back(cur);
  }
  return c;
}

struct OutQuant {
  float scale;
  int zero_point;
  bool relu;
};

/// Output quantization of a fused chain: ReLU outputs are unsigned M-bit in
/// [0, range]; non-ReLU outputs (residual branches) are offset-unsigned with
/// zero_point 2^(M-1) over [-absr, absr].
OutQuant chain_out_quant(const quant::CalibrationResult& cal, const Chain& c, int act_bits) {
  OutQuant q;
  q.relu = c.has_relu;
  if (c.has_relu) {
    const float range = std::max(1e-6f, cal.range(c.end));
    q.scale = range / static_cast<float>((1 << act_bits) - 1);
    q.zero_point = 0;
  } else {
    const float absr = std::max(1e-6f, cal.abs_range(c.end));
    q.scale = absr / static_cast<float>(1 << (act_bits - 1));
    q.zero_point = 1 << (act_bits - 1);
  }
  return q;
}

/// Per-channel BN multipliers folded into requantization.
struct BnFold {
  std::vector<float> scale;  // gamma / sqrt(var + eps)
  std::vector<float> mean;   // running mean
  std::vector<float> beta;
};

BnFold fold_bn(const nn::Graph& g, int bn_node, int channels) {
  BnFold f;
  f.scale.assign(static_cast<std::size_t>(channels), 1.0f);
  f.mean.assign(static_cast<std::size_t>(channels), 0.0f);
  f.beta.assign(static_cast<std::size_t>(channels), 0.0f);
  if (bn_node < 0) return f;
  const nn::BatchNormState& bn = g.node(bn_node).bn;
  for (int c = 0; c < channels; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    f.scale[ci] = bn.gamma[ci] / std::sqrt(bn.running_var[ci] + bn.eps);
    f.mean[ci] = bn.running_mean[ci];
    f.beta[ci] = bn.beta[ci];
  }
  return f;
}

}  // namespace

CompiledNetwork compile(const nn::Graph& g, const pool::PooledNetwork* pooled,
                        const quant::CalibrationResult& cal, const CompileOptions& opt) {
  check(opt.act_bits >= 1 && opt.act_bits <= 8, "compile: act_bits must be in 1..8");
  CompiledNetwork net;
  net.act_bits = opt.act_bits;

  // Shared LUT for pooled layers.
  std::map<int, const pool::PooledLayer*> pooled_by_node;
  if (pooled != nullptr && !pooled->layers.empty()) {
    pool::LutOptions lo;
    lo.bitwidth = opt.lut_bits;
    lo.order = opt.lut_order;
    lo.pool_quant_bits = opt.weight_bits;
    net.lut = pool::build_lut(pooled->pool, lo);
    net.has_lut = true;
    for (const auto& layer : pooled->layers) pooled_by_node[layer.node] = &layer;
  }

  // Quantized pool (for zero-point row-sum corrections).
  QTensor qpool;
  if (net.has_lut) qpool = pool::quantize_pool(pooled->pool, opt.weight_bits);
  auto pool_rowsum = [&](int s) {
    int32_t acc = 0;
    const int gs = net.lut.group_size;
    for (int j = 0; j < gs; ++j) acc += qpool.data[static_cast<std::size_t>(s) * gs + j];
    return acc;
  };

  std::vector<std::vector<int>> consumers(static_cast<std::size_t>(g.num_nodes()));
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int in : g.node(i).inputs) consumers[static_cast<std::size_t>(in)].push_back(i);
  }

  std::vector<int> node_plan(static_cast<std::size_t>(g.num_nodes()), -1);
  auto plan_of = [&](int node) {
    const int p = node_plan[static_cast<std::size_t>(node)];
    check(p >= 0, "compile: node has no plan (unsupported graph pattern)");
    return p;
  };

  for (int node = 0; node < g.num_nodes(); ++node) {
    if (node_plan[static_cast<std::size_t>(node)] >= 0) continue;  // absorbed into a chain
    const nn::Node& n = g.node(node);
    LayerPlan plan;
    plan.name = n.name;
    plan.out_chw = n.out_chw;

    switch (n.op) {
      case Op::kInput: {
        plan.kind = PlanKind::kInput;
        plan.out_bits = 8;
        plan.out_signed = true;
        plan.out_scale = std::max(1e-6f, cal.input_abs_max) / 127.0f;
        plan.out_zero_point = 0;
        net.input_scale = plan.out_scale;
        break;
      }
      case Op::kConv2d: {
        const Chain chain = walk_chain(g, consumers, node, /*allow_bn=*/true);
        const OutQuant oq = chain_out_quant(cal, chain, opt.act_bits);
        const int in_plan = plan_of(n.inputs[0]);
        const LayerPlan& src = net.plans[static_cast<std::size_t>(in_plan)];
        const float s_in = src.out_scale;
        const int in_zp = src.out_zero_point;
        const BnFold bn = fold_bn(g, chain.bn_node, n.conv.out_ch);

        plan.inputs = {in_plan};
        plan.spec = n.conv;
        const auto it = pooled_by_node.find(node);
        float conv_scale;
        std::vector<float> corr(static_cast<std::size_t>(n.conv.out_ch), 0.0f);
        if (it != pooled_by_node.end()) {
          plan.kind = PlanKind::kConvBitSerial;
          plan.indices = kernels::PackedIndices::pack(*it->second);
          // Layer policy (§4.2-4.3): precompute when filters exceed the pool
          // size; cache the LUT when the filter loop is long enough to
          // amortize the per-decomposition block copies; otherwise read the
          // LUT from flash directly (very narrow layers).
          if (opt.force_variant) {
            plan.variant = opt.forced_variant;
          } else if (opt.auto_precompute &&
                     kernels::should_precompute(n.conv.out_ch, net.lut.pool_size)) {
            plan.variant = kernels::BitSerialVariant::kCachedPrecompute;
          } else if (n.conv.out_ch * 4 >= net.lut.pool_size) {
            plan.variant = kernels::BitSerialVariant::kCached;
          } else {
            plan.variant = kernels::BitSerialVariant::kInputReuse;
          }
          conv_scale = s_in * net.lut.pool_scale * net.lut.entry_scale;
          if (in_zp != 0) {
            // Offset-unsigned input: fold -zp * sum(w) into the bias. Only
            // valid without padding (padded taps would need the same term).
            check(n.conv.pad == 0,
                  "compile: pooled conv with signed (offset) input requires pad == 0");
            const pool::PooledLayer& pl = *it->second;
            for (int o = 0; o < n.conv.out_ch; ++o) {
              int64_t rowsum = 0;
              for (int gg = 0; gg < pl.channel_groups; ++gg)
                for (int ky = 0; ky < pl.kh; ++ky)
                  for (int kx = 0; kx < pl.kw; ++kx) rowsum += pool_rowsum(pl.index(o, gg, ky, kx));
              corr[static_cast<std::size_t>(o)] = -s_in * static_cast<float>(in_zp) *
                                                  net.lut.pool_scale *
                                                  static_cast<float>(rowsum);
            }
          }
        } else {
          plan.kind = PlanKind::kConvBaseline;
          plan.qweights = quant::quantize_symmetric(n.weight, opt.weight_bits);
          conv_scale = s_in * plan.qweights.scale;
        }

        plan.rq.scale.resize(static_cast<std::size_t>(n.conv.out_ch));
        plan.rq.bias.resize(static_cast<std::size_t>(n.conv.out_ch));
        for (int o = 0; o < n.conv.out_ch; ++o) {
          const auto oi = static_cast<std::size_t>(o);
          const float conv_bias = n.has_bias ? n.bias[oi] : 0.0f;
          plan.rq.scale[oi] = conv_scale * bn.scale[oi];
          plan.rq.bias[oi] = bn.scale[oi] * (conv_bias + corr[oi] - bn.mean[oi]) + bn.beta[oi];
        }
        plan.rq.fuse_relu = oq.relu;
        plan.rq.out_scale = oq.scale;
        plan.rq.out_zero_point = oq.zero_point;
        plan.rq.out_bits = opt.act_bits;
        plan.rq.out_signed = false;
        plan.out_scale = oq.scale;
        plan.out_zero_point = oq.zero_point;
        plan.out_bits = opt.act_bits;
        plan.out_signed = false;
        plan.out_chw = g.node(chain.end).out_chw;

        net.plans.push_back(std::move(plan));
        for (int m : chain.members) node_plan[static_cast<std::size_t>(m)] = static_cast<int>(net.plans.size()) - 1;
        continue;
      }
      case Op::kAdd: {
        const Chain chain = walk_chain(g, consumers, node, /*allow_bn=*/false);
        const OutQuant oq = chain_out_quant(cal, chain, opt.act_bits);
        plan.kind = PlanKind::kAdd;
        plan.inputs = {plan_of(n.inputs[0]), plan_of(n.inputs[1])};
        plan.rq = kernels::Requant::uniform(1, 1.0f, {}, oq.scale, opt.act_bits, false, oq.relu);
        plan.rq.out_zero_point = oq.zero_point;
        plan.out_scale = oq.scale;
        plan.out_zero_point = oq.zero_point;
        plan.out_bits = opt.act_bits;
        plan.out_signed = false;
        net.plans.push_back(std::move(plan));
        for (int m : chain.members) node_plan[static_cast<std::size_t>(m)] = static_cast<int>(net.plans.size()) - 1;
        continue;
      }
      case Op::kLinear: {
        const int in_plan = plan_of(n.inputs[0]);
        const LayerPlan& src = net.plans[static_cast<std::size_t>(in_plan)];
        const float s_in = src.out_scale;
        plan.inputs = {in_plan};
        const int fout = n.weight.dim(0);
        const auto it = pooled_by_node.find(node);
        float lin_scale;
        std::vector<float> corr(static_cast<std::size_t>(fout), 0.0f);
        if (it != pooled_by_node.end()) {
          plan.kind = PlanKind::kLinearBitSerial;
          plan.indices = kernels::PackedIndices::pack(*it->second);
          plan.variant = kernels::BitSerialVariant::kCached;
          lin_scale = s_in * net.lut.pool_scale * net.lut.entry_scale;
          if (src.out_zero_point != 0) {
            const pool::PooledLayer& pl = *it->second;
            for (int o = 0; o < fout; ++o) {
              int64_t rowsum = 0;
              for (int gg = 0; gg < pl.channel_groups; ++gg) rowsum += pool_rowsum(pl.index(o, gg, 0, 0));
              corr[static_cast<std::size_t>(o)] = -s_in *
                                                  static_cast<float>(src.out_zero_point) *
                                                  net.lut.pool_scale * static_cast<float>(rowsum);
            }
          }
        } else {
          plan.kind = PlanKind::kLinearBaseline;
          plan.qweights = quant::quantize_symmetric(n.weight, opt.weight_bits);
          lin_scale = s_in * plan.qweights.scale;
        }
        // Classifier logits: 16-bit signed so argmax is never range-limited.
        const float absr = std::max(1e-6f, cal.abs_range(node));
        plan.rq.scale.resize(static_cast<std::size_t>(fout));
        plan.rq.bias.resize(static_cast<std::size_t>(fout));
        for (int o = 0; o < fout; ++o) {
          plan.rq.scale[static_cast<std::size_t>(o)] = lin_scale;
          plan.rq.bias[static_cast<std::size_t>(o)] =
              (n.has_bias ? n.bias[static_cast<std::size_t>(o)] : 0.0f) + corr[static_cast<std::size_t>(o)];
        }
        plan.rq.fuse_relu = false;
        plan.rq.out_scale = absr / 32767.0f;
        plan.rq.out_bits = 16;
        plan.rq.out_signed = true;
        plan.rq.out_zero_point = 0;
        plan.out_scale = plan.rq.out_scale;
        plan.out_bits = 16;
        plan.out_signed = true;
        plan.out_zero_point = 0;
        break;
      }
      case Op::kMaxPool: {
        const int in_plan = plan_of(n.inputs[0]);
        const LayerPlan& src = net.plans[static_cast<std::size_t>(in_plan)];
        plan.kind = PlanKind::kMaxPool;
        plan.inputs = {in_plan};
        plan.pool_k = n.pool_k;
        plan.pool_stride = n.pool_stride;
        plan.out_scale = src.out_scale;
        plan.out_zero_point = src.out_zero_point;
        plan.out_bits = src.out_bits;
        plan.out_signed = src.out_signed;
        break;
      }
      case Op::kGlobalAvgPool: {
        const int in_plan = plan_of(n.inputs[0]);
        const LayerPlan& src = net.plans[static_cast<std::size_t>(in_plan)];
        const auto& in_chw = g.node(n.inputs[0]).out_chw;
        const int channels = in_chw[0];
        const float inv_hw = 1.0f / static_cast<float>(in_chw[1] * in_chw[2]);
        plan.kind = PlanKind::kGlobalAvgPool;
        plan.inputs = {in_plan};
        const float range = std::max(1e-6f, cal.range(node));
        plan.rq.scale.assign(static_cast<std::size_t>(channels), src.out_scale * inv_hw);
        plan.rq.bias.assign(static_cast<std::size_t>(channels),
                            -src.out_scale * static_cast<float>(src.out_zero_point));
        plan.rq.fuse_relu = false;
        plan.rq.out_scale = range / static_cast<float>((1 << opt.act_bits) - 1);
        plan.rq.out_bits = opt.act_bits;
        plan.rq.out_signed = false;
        plan.rq.out_zero_point = 0;
        plan.out_scale = plan.rq.out_scale;
        plan.out_bits = opt.act_bits;
        plan.out_signed = false;
        plan.out_zero_point = 0;
        break;
      }
      case Op::kFlatten: {
        const int in_plan = plan_of(n.inputs[0]);
        const LayerPlan& src = net.plans[static_cast<std::size_t>(in_plan)];
        plan.kind = PlanKind::kFlatten;
        plan.inputs = {in_plan};
        plan.out_scale = src.out_scale;
        plan.out_zero_point = src.out_zero_point;
        plan.out_bits = src.out_bits;
        plan.out_signed = src.out_signed;
        break;
      }
      case Op::kReLU: {
        // Standalone ReLU (not fused into a conv/add chain).
        const int in_plan = plan_of(n.inputs[0]);
        const LayerPlan& src = net.plans[static_cast<std::size_t>(in_plan)];
        plan.kind = PlanKind::kRelu;
        plan.inputs = {in_plan};
        plan.out_scale = src.out_scale;
        plan.out_zero_point = src.out_zero_point;
        plan.out_bits = src.out_bits;
        plan.out_signed = src.out_signed;
        break;
      }
      case Op::kFakeQuant: {
        node_plan[static_cast<std::size_t>(node)] = plan_of(n.inputs[0]);
        continue;
      }
      case Op::kBatchNorm:
        throw std::invalid_argument(
            "compile: standalone BatchNorm (not directly after a conv) is unsupported");
      case Op::kBinarize:
        throw std::invalid_argument("compile: binarized graphs use the bswp::binary path");
    }
    net.plans.push_back(std::move(plan));
    node_plan[static_cast<std::size_t>(node)] = static_cast<int>(net.plans.size()) - 1;
  }
  return net;
}

}  // namespace bswp::runtime
