// Compilation pipeline: float graph (+ optional weight pool) -> deployable
// CompiledNetwork (Figure 1 host side, minus training).
//
// Lowering is organized as an ordered pass pipeline over a mutable PlanGraph
// IR (src/runtime/lowering/): FoldBatchNorm -> FuseActivations ->
// EliminateDeadNodes -> AssignActivationQuant -> SelectBackends -> Legalize,
// after which the graph is frozen into the immutable CompiledNetwork
// artifact (container format unchanged). BatchNorm folds into per-channel
// *requantization* (never into weights — that would break pool sharing), and
// backend/variant choice is a cost-model query (sim/layer_cost.h) priced by
// CompileOptions::cost_profile rather than a hard-coded threshold.
//
// DEPRECATED as a public API: compile() is the implementation layer behind
// bswp::Deployment (src/api/bswp.h); new call sites should use the facade,
// which also keeps calibration act_bits in sync automatically.
#pragma once

#include "pool/codec.h"
#include "quant/calibrate.h"
#include "runtime/compressed_network.h"
#include "runtime/lowering/report.h"
#include "sim/mcu.h"

namespace bswp::runtime {

/// How SelectBackends picks the bit-serial variant of each pooled layer.
enum class BackendSelect {
  /// Estimate every variant's event counts with sim/layer_cost and pick the
  /// cheapest under CompileOptions::cost_profile (the default).
  kCostModel,
  /// The paper's §4.2-4.3 layer policy: precompute when filters exceed the
  /// pool size (if auto_precompute), cache when the filter loop amortizes
  /// the block copies, flash reads otherwise.
  kHeuristic,
};

/// How SelectBackends assigns each compute layer's HostLane (the host-CPU
/// kernel family that will execute it; MCU latency estimates are unaffected).
enum class HostLaneSelect {
  /// Price HostLane::kScalar vs HostLane::kSimd per layer with
  /// sim/layer_cost.h's closed forms under CompileOptions::host_profile and
  /// keep the cheaper one (ties go to scalar). Never assigns kSimd when the
  /// SIMD backends are compiled out (BSWP_SIMD=OFF).
  kCostModel,
  /// Force every layer onto the scalar reference kernels (ablations, golden
  /// fixture regeneration).
  kScalar,
  /// Force every layer onto the SIMD kernels where they exist (falls back to
  /// scalar when compiled out).
  kSimd,
};

struct CompileOptions {
  int act_bits = 8;     // M: activation bitwidth of all hidden activations
  int weight_bits = 8;  // B_w for uncompressed layers and the pool quant
  int lut_bits = 8;     // B_l
  pool::LutOrder lut_order = pool::LutOrder::kInputOriented;
  /// Variant policy. kHeuristic reproduces the pre-cost-model behavior.
  BackendSelect backend_select = BackendSelect::kCostModel;
  /// MCU profile pricing the cost model's event counts (kCostModel only).
  sim::McuProfile cost_profile = sim::mc_large();
  /// Host-lane policy: scalar vs SIMD kernel family per layer. Orthogonal to
  /// backend_select (which picks the bit-serial *variant*); every variant is
  /// bit-identical across lanes, so this only moves wall-clock time.
  HostLaneSelect host_lanes = HostLaneSelect::kCostModel;
  /// Profile pricing the scalar-vs-SIMD lane decision (kCostModel lanes).
  sim::McuProfile host_profile = sim::host_profile();
  /// Expected serving batch size the host lanes should be priced at. With a
  /// hint > 1 the lane decision uses the *_cost_batched closed forms
  /// (sim/layer_cost.h), which amortize the stationary operand across the
  /// batch — this can flip a layer's lane when the per-image argmin and the
  /// batched argmin disagree. Has no effect on numerics or on MCU latency
  /// estimates; 1 preserves the per-image decision exactly.
  int batch_hint = 1;
  /// Heuristic mode only: pick cached+precompute when filters > pool size.
  bool auto_precompute = true;
  /// Force one bit-serial variant for every pooled layer, linear included
  /// (ablations; all variants are bit-identical, they differ only in cost).
  bool force_variant = false;
  kernels::BitSerialVariant forced_variant = kernels::BitSerialVariant::kCached;
  /// Record per-pass PassTraceEntry rows in the CompileReport.
  bool pass_trace = false;
};

/// Compile `g` for integer execution. `pooled` may be null for a fully
/// uncompressed (CMSIS-baseline) build. `cal` must contain ranges for every
/// node of `g` (from quant::calibrate on the same graph). When `report` is
/// non-null it receives the backend-selection report and, if
/// `opt.pass_trace` is set, the pass trace.
CompiledNetwork compile(const nn::Graph& g, const pool::PooledNetwork* pooled,
                        const quant::CalibrationResult& cal, const CompileOptions& opt,
                        CompileReport* report = nullptr);

}  // namespace bswp::runtime
