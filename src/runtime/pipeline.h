// Compilation pipeline: float graph (+ optional weight pool) -> deployable
// CompiledNetwork (Figure 1 host side, minus training).
//
// The pipeline fuses conv→BN→ReLU chains, quantizes uncompressed layers to
// int8, converts pooled layers to packed indices against the shared LUT, and
// assigns every inter-layer activation an M-bit quantization from the
// calibration result. BatchNorm folds into per-channel *requantization*
// (never into weights — that would break pool sharing across layers).
//
// DEPRECATED as a public API: compile() is the implementation layer behind
// bswp::Deployment (src/api/bswp.h); new call sites should use the facade,
// which also keeps calibration act_bits in sync automatically.
#pragma once

#include "pool/codec.h"
#include "quant/calibrate.h"
#include "runtime/compressed_network.h"

namespace bswp::runtime {

struct CompileOptions {
  int act_bits = 8;     // M: activation bitwidth of all hidden activations
  int weight_bits = 8;  // B_w for uncompressed layers and the pool quant
  int lut_bits = 8;     // B_l
  pool::LutOrder lut_order = pool::LutOrder::kInputOriented;
  /// Pick cached+precompute automatically when filters > pool size (§4.3).
  bool auto_precompute = true;
  /// Force one bit-serial variant for every pooled layer (ablations).
  bool force_variant = false;
  kernels::BitSerialVariant forced_variant = kernels::BitSerialVariant::kCached;
};

/// Compile `g` for integer execution. `pooled` may be null for a fully
/// uncompressed (CMSIS-baseline) build. `cal` must contain ranges for every
/// node of `g` (from quant::calibrate on the same graph).
CompiledNetwork compile(const nn::Graph& g, const pool::PooledNetwork* pooled,
                        const quant::CalibrationResult& cal, const CompileOptions& opt);

}  // namespace bswp::runtime
