#include "runtime/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "kernels/simd/simd_dispatch.h"

namespace bswp::runtime {

namespace {

constexpr uint32_t kMagic = 0x42535750;  // "BSWP"
// v2 appends a HostLane byte after each plan's variant; v1 files still load
// (every plan gets HostLane::kScalar, the lane all v1 networks ran on).
constexpr uint32_t kVersion = 2;

// A new PlanKind must be wired through the plan payload writers/readers
// below (and through export_c_header's flash emission) before this count is
// bumped — the assert makes skipping this file a compile error.
static_assert(kNumPlanKinds == 11,
              "PlanKind changed: audit save_network/load_network/export_c_header payloads, "
              "then update this count");

// --- little primitive readers/writers (host-endian; container is a host
// artifact, not a wire format) ----------------------------------------------

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("bswp: truncated network file");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<uint32_t>(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto n = read_pod<uint32_t>(is);
  if (n > (1u << 20)) throw std::runtime_error("bswp: implausible string length");
  std::string s(n, '\0');
  is.read(s.data(), n);
  if (!is) throw std::runtime_error("bswp: truncated network file");
  return s;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod<uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  const auto n = read_pod<uint64_t>(is);
  if (n > (1ull << 32)) throw std::runtime_error("bswp: implausible vector length");
  std::vector<T> v(static_cast<std::size_t>(n));
  is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
  if (!is && n > 0) throw std::runtime_error("bswp: truncated network file");
  return v;
}

void write_int_vec(std::ostream& os, const std::vector<int>& v) {
  std::vector<int32_t> tmp(v.begin(), v.end());
  write_vec(os, tmp);
}

std::vector<int> read_int_vec(std::istream& is) {
  auto tmp = read_vec<int32_t>(is);
  return std::vector<int>(tmp.begin(), tmp.end());
}

void write_qtensor(std::ostream& os, const QTensor& q) {
  write_int_vec(os, q.shape);
  write_vec(os, q.data);
  write_pod(os, q.scale);
  write_pod<int32_t>(os, q.zero_point);
  write_pod<int32_t>(os, q.bits);
  write_pod<uint8_t>(os, q.is_signed ? 1 : 0);
}

QTensor read_qtensor(std::istream& is) {
  QTensor q;
  q.shape = read_int_vec(is);
  q.data = read_vec<int16_t>(is);
  q.scale = read_pod<float>(is);
  q.zero_point = read_pod<int32_t>(is);
  q.bits = read_pod<int32_t>(is);
  q.is_signed = read_pod<uint8_t>(is) != 0;
  if (q.data.size() != shape_numel(q.shape)) throw std::runtime_error("bswp: qtensor mismatch");
  return q;
}

void write_requant(std::ostream& os, const kernels::Requant& rq) {
  write_vec(os, rq.scale);
  write_vec(os, rq.bias);
  write_pod(os, rq.out.scale);
  write_pod<int32_t>(os, rq.out.bits);
  write_pod<uint8_t>(os, rq.out.is_signed ? 1 : 0);
  write_pod<int32_t>(os, rq.out.zero_point);
  write_pod<uint8_t>(os, rq.fuse_relu ? 1 : 0);
}

kernels::Requant read_requant(std::istream& is) {
  kernels::Requant rq;
  rq.scale = read_vec<float>(is);
  rq.bias = read_vec<float>(is);
  rq.out.scale = read_pod<float>(is);
  rq.out.bits = read_pod<int32_t>(is);
  rq.out.is_signed = read_pod<uint8_t>(is) != 0;
  rq.out.zero_point = read_pod<int32_t>(is);
  rq.fuse_relu = read_pod<uint8_t>(is) != 0;
  return rq;
}

}  // namespace

void save_network(const CompiledNetwork& net, std::ostream& os) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod<int32_t>(os, net.act_bits);
  write_pod(os, net.input_scale);
  write_pod<uint8_t>(os, net.has_lut ? 1 : 0);
  if (net.has_lut) {
    write_pod<int32_t>(os, net.lut.group_size);
    write_pod<int32_t>(os, net.lut.pool_size);
    write_pod<int32_t>(os, net.lut.bitwidth);
    write_pod<int32_t>(os, static_cast<int32_t>(net.lut.order));
    write_pod(os, net.lut.pool_scale);
    write_pod(os, net.lut.entry_scale);
    write_vec(os, net.lut.entries);
  }
  write_pod<uint32_t>(os, static_cast<uint32_t>(net.plans.size()));
  for (const LayerPlan& p : net.plans) {
    write_pod<int32_t>(os, static_cast<int32_t>(p.kind));
    write_string(os, p.name);
    write_int_vec(os, p.inputs);
    write_pod<int32_t>(os, p.spec.in_ch);
    write_pod<int32_t>(os, p.spec.out_ch);
    write_pod<int32_t>(os, p.spec.kh);
    write_pod<int32_t>(os, p.spec.kw);
    write_pod<int32_t>(os, p.spec.stride);
    write_pod<int32_t>(os, p.spec.pad);
    write_pod<int32_t>(os, p.spec.groups);
    write_requant(os, p.rq);
    write_qtensor(os, p.qweights);
    write_pod<int32_t>(os, p.indices.kh);
    write_pod<int32_t>(os, p.indices.kw);
    write_pod<int32_t>(os, p.indices.groups);
    write_pod<int32_t>(os, p.indices.out_ch);
    write_vec(os, p.indices.idx);
    write_pod<int32_t>(os, static_cast<int32_t>(p.variant));
    write_pod<uint8_t>(os, static_cast<uint8_t>(p.lane));
    write_pod<int32_t>(os, p.pool_k);
    write_pod<int32_t>(os, p.pool_stride);
    write_pod(os, p.out.scale);
    write_pod<int32_t>(os, p.out.zero_point);
    write_pod<int32_t>(os, p.out.bits);
    write_pod<uint8_t>(os, p.out.is_signed ? 1 : 0);
    write_int_vec(os, p.out_chw);
  }
}

void save_network(const CompiledNetwork& net, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("bswp: cannot open " + path + " for writing");
  save_network(net, os);
  if (!os) throw std::runtime_error("bswp: write failed for " + path);
}

CompiledNetwork load_network(std::istream& is) {
  if (read_pod<uint32_t>(is) != kMagic) throw std::runtime_error("bswp: bad magic");
  const auto version = read_pod<uint32_t>(is);
  if (version < 1 || version > kVersion) {
    throw std::runtime_error("bswp: unsupported version");
  }
  CompiledNetwork net;
  net.act_bits = read_pod<int32_t>(is);
  net.input_scale = read_pod<float>(is);
  net.has_lut = read_pod<uint8_t>(is) != 0;
  if (net.has_lut) {
    net.lut.group_size = read_pod<int32_t>(is);
    net.lut.pool_size = read_pod<int32_t>(is);
    net.lut.bitwidth = read_pod<int32_t>(is);
    net.lut.order = static_cast<pool::LutOrder>(read_pod<int32_t>(is));
    net.lut.pool_scale = read_pod<float>(is);
    net.lut.entry_scale = read_pod<float>(is);
    net.lut.entries = read_vec<int32_t>(is);
    if (net.lut.entries.size() !=
        static_cast<std::size_t>(net.lut.num_bit_vectors()) * net.lut.pool_size) {
      throw std::runtime_error("bswp: LUT size mismatch");
    }
  }
  const auto num_plans = read_pod<uint32_t>(is);
  if (num_plans > 100000) throw std::runtime_error("bswp: implausible plan count");
  net.plans.resize(num_plans);
  for (LayerPlan& p : net.plans) {
    const auto kind = read_pod<int32_t>(is);
    if (kind < 0 || kind >= static_cast<int32_t>(kNumPlanKinds)) {
      throw std::runtime_error("bswp: unknown plan kind");
    }
    p.kind = static_cast<PlanKind>(kind);
    p.name = read_string(is);
    p.inputs = read_int_vec(is);
    p.spec.in_ch = read_pod<int32_t>(is);
    p.spec.out_ch = read_pod<int32_t>(is);
    p.spec.kh = read_pod<int32_t>(is);
    p.spec.kw = read_pod<int32_t>(is);
    p.spec.stride = read_pod<int32_t>(is);
    p.spec.pad = read_pod<int32_t>(is);
    p.spec.groups = read_pod<int32_t>(is);
    p.rq = read_requant(is);
    p.qweights = read_qtensor(is);
    p.indices.kh = read_pod<int32_t>(is);
    p.indices.kw = read_pod<int32_t>(is);
    p.indices.groups = read_pod<int32_t>(is);
    p.indices.out_ch = read_pod<int32_t>(is);
    p.indices.idx = read_vec<uint8_t>(is);
    p.variant = static_cast<kernels::BitSerialVariant>(read_pod<int32_t>(is));
    if (version >= 2) {
      const auto lane = read_pod<uint8_t>(is);
      if (lane > static_cast<uint8_t>(HostLane::kSimd)) {
        throw std::runtime_error("bswp: unknown host lane");
      }
      // A network compiled on a SIMD build loads on a scalar-only one: the
      // lanes are bit-identical, so silently downgrade instead of refusing.
      p.lane = kernels::simd::available() ? static_cast<HostLane>(lane) : HostLane::kScalar;
    }
    p.pool_k = read_pod<int32_t>(is);
    p.pool_stride = read_pod<int32_t>(is);
    p.out.scale = read_pod<float>(is);
    p.out.zero_point = read_pod<int32_t>(is);
    p.out.bits = read_pod<int32_t>(is);
    p.out.is_signed = read_pod<uint8_t>(is) != 0;
    p.out_chw = read_int_vec(is);
  }
  return net;
}

CompiledNetwork load_network(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("bswp: cannot open " + path);
  return load_network(is);
}

std::size_t export_c_header(const CompiledNetwork& net, const std::string& path,
                            const std::string& symbol_prefix) {
  std::ostringstream os;
  std::size_t flash_bytes = 0;
  os << "// Auto-generated flash image for a bit-serial weight-pool network.\n";
  os << "// act_bits=" << net.act_bits << " input_scale=" << net.input_scale << "\n";
  os << "#pragma once\n#include <stdint.h>\n\n";

  auto emit_u8 = [&](const std::string& name, const uint8_t* data, std::size_t n) {
    os << "static const uint8_t " << name << "[" << n << "] = {";
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 16 == 0) os << "\n  ";
      os << static_cast<int>(data[i]) << ",";
    }
    os << "\n};\n\n";
    flash_bytes += n;
  };
  auto emit_i8 = [&](const std::string& name, const int16_t* data, std::size_t n) {
    os << "static const int8_t " << name << "[" << n << "] = {";
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 16 == 0) os << "\n  ";
      os << static_cast<int>(data[i]) << ",";
    }
    os << "\n};\n\n";
    flash_bytes += n;
  };
  auto emit_f32 = [&](const std::string& name, const float* data, std::size_t n) {
    os << "static const float " << name << "[" << n << "] = {";
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 8 == 0) os << "\n  ";
      os << data[i] << "f,";
    }
    os << "\n};\n\n";
    flash_bytes += 4 * n;
  };

  if (net.has_lut) {
    // LUT entries fit int8 at B_l <= 8; wider tables emit int16.
    os << "// dot-product LUT: " << net.lut.num_bit_vectors() << " blocks x "
       << net.lut.pool_size << " entries, B_l=" << net.lut.bitwidth << "\n";
    if (net.lut.bitwidth <= 8) {
      std::vector<int16_t> tmp(net.lut.entries.begin(), net.lut.entries.end());
      emit_i8(symbol_prefix + "_lut", tmp.data(), tmp.size());
    } else {
      os << "static const int16_t " << symbol_prefix << "_lut["
         << net.lut.entries.size() << "] = {";
      for (std::size_t i = 0; i < net.lut.entries.size(); ++i) {
        if (i % 12 == 0) os << "\n  ";
        os << net.lut.entries[i] << ",";
      }
      os << "\n};\n\n";
      flash_bytes += 2 * net.lut.entries.size();
    }
  }
  int layer_id = 0;
  for (const LayerPlan& p : net.plans) {
    const std::string base = symbol_prefix + "_l" + std::to_string(layer_id++);
    switch (p.kind) {
      case PlanKind::kConvBaseline:
      case PlanKind::kLinearBaseline:
        if (!p.qweights.data.empty()) {
          emit_i8(base + "_weights", p.qweights.data.data(), p.qweights.data.size());
        }
        break;
      case PlanKind::kConvBitSerial:
      case PlanKind::kLinearBitSerial:
        emit_u8(base + "_indices", p.indices.idx.data(), p.indices.idx.size());
        break;
      case PlanKind::kConvBinary: {
        // 1-bit packed signs (bit = 1 for +1), flat OIHW order.
        std::vector<uint8_t> packed((p.qweights.size() + 7) / 8, 0);
        for (std::size_t i = 0; i < p.qweights.size(); ++i) {
          if (p.qweights.data[i] >= 0) packed[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
        }
        emit_u8(base + "_sign_bits", packed.data(), packed.size());
        break;
      }
      default:
        continue;
    }
    emit_f32(base + "_rq_scale", p.rq.scale.data(), p.rq.scale.size());
    emit_f32(base + "_rq_bias", p.rq.bias.data(), p.rq.bias.size());
  }
  os << "// total flash bytes: " << flash_bytes << "\n";

  std::ofstream file(path);
  if (!file) throw std::runtime_error("bswp: cannot open " + path + " for writing");
  file << os.str();
  if (!file) throw std::runtime_error("bswp: write failed for " + path);
  return flash_bytes;
}

}  // namespace bswp::runtime
