// Serialization of the deployable artifact (paper Figure 1: "the dot product
// lookup table is generated from the weight pool, and loaded into the
// microcontroller's flash memory along with weight indices and precision
// information").
//
// Two formats:
//  * a binary container ("BSWP" magic) for save/load round trips on the
//    host — everything needed to reconstruct a CompiledNetwork exactly;
//  * a C header export that emits the flash image (LUT, packed indices,
//    int8 weights, requantization constants) as const arrays, the form a
//    firmware build actually links against.
//
// DEPRECATED as a public API: implementation layer behind
// bswp::Session::save / load / export_firmware (src/api/bswp.h).
#pragma once

#include <iosfwd>
#include <string>

#include "runtime/compressed_network.h"

namespace bswp::runtime {

/// Serialize a compiled network. Throws std::runtime_error on I/O failure.
void save_network(const CompiledNetwork& net, const std::string& path);
void save_network(const CompiledNetwork& net, std::ostream& os);

/// Load a network saved by save_network. Throws std::runtime_error on
/// malformed input (bad magic, truncation, unknown enum values).
CompiledNetwork load_network(const std::string& path);
CompiledNetwork load_network(std::istream& is);

/// Emit a C header with the network's flash constants. `symbol_prefix` must
/// be a valid C identifier prefix. Returns the number of flash bytes the
/// emitted arrays occupy.
std::size_t export_c_header(const CompiledNetwork& net, const std::string& path,
                            const std::string& symbol_prefix);

}  // namespace bswp::runtime
