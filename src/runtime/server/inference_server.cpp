#include "runtime/server/inference_server.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "runtime/executor.h"

namespace bswp::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

void validate(const ModelConfig& config, const char* who) {
  check(config.batching.max_batch >= 1, std::string(who) + ": max_batch must be >= 1");
  check(config.batching.max_delay.count() >= 0, std::string(who) + ": max_delay must be >= 0");
  check(config.queue.capacity >= 1, std::string(who) + ": queue capacity must be >= 1");
}

}  // namespace

/// One queued request: the input, the client's promise, and two timestamps —
/// end-to-end latency is measured from `arrival` (the top of submit(), so a
/// kBlock wait on a full queue is counted), while the batching deadline runs
/// from `enqueue` (queue entry, the moment the request became batchable).
struct InferenceServer::Request {
  Tensor image;
  std::promise<QTensor> promise;
  Clock::time_point arrival;
  Clock::time_point enqueue;
};

/// Everything the server knows about one registered model. Heap-pinned
/// (unique_ptr in models_) so workers can key executor caches and in-flight
/// batches by address. All fields are guarded by the server's mu_, except
/// the latency recorder, which lives behind stats_mu_.
struct InferenceServer::ModelState {
  ModelState(std::string id_, const CompiledNetwork& n, const ModelConfig& c, std::size_t window)
      : id(std::move(id_)), net(&n), config(c), latency(window) {}

  std::string id;
  const CompiledNetwork* net;
  ModelConfig config;

  std::deque<Request> queue;  // bounded FIFO (config.queue.capacity)

  AdmissionCounters adm;
  std::uint64_t batches = 0;
  std::uint64_t batch_images = 0;              // sum of dispatched batch sizes
  std::vector<std::uint64_t> batch_size_hist;  // index = batch size
  LatencyRecorder latency;  // end-to-end, incl. queueing (guarded by stats_mu_)
};

/// One formed batch on its way to a worker.
struct InferenceServer::BatchTask {
  ModelState* model = nullptr;
  std::vector<Request> requests;
};

InferenceServer::InferenceServer(const ServerOptions& options)
    : options_(options), global_latency_(options.latency_window) {
  check(options_.workers >= 1, "InferenceServer: workers must be >= 1");
  validate(ModelConfig{options_.batching, options_.queue}, "InferenceServer");
  scheduler_ = std::thread([this] { scheduler_main(); });
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::register_model(const std::string& model_id, const CompiledNetwork& net) {
  register_model(model_id, net, ModelConfig{options_.batching, options_.queue});
}

void InferenceServer::register_model(const std::string& model_id, const CompiledNetwork& net,
                                     const ModelConfig& config) {
  check(!net.plans.empty(), "InferenceServer::register_model: empty network");
  validate(config, "InferenceServer::register_model");
  std::lock_guard<std::mutex> lock(mu_);
  check(accepting_, "InferenceServer::register_model: server is shut down");
  for (const auto& m : models_) {
    check(m->id != model_id,
          "InferenceServer::register_model: duplicate model id '" + model_id + "'");
  }
  models_.push_back(
      std::make_unique<ModelState>(model_id, net, config, options_.latency_window));
}

std::future<QTensor> InferenceServer::submit(const std::string& model_id, Tensor image) {
  const Clock::time_point arrival = Clock::now();
  std::promise<QTensor> promise;
  std::future<QTensor> fut = promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  ModelState* m = nullptr;
  for (const auto& cand : models_) {
    if (cand->id == model_id) {
      m = cand.get();
      break;
    }
  }
  check(m != nullptr, "InferenceServer::submit: unknown model '" + model_id + "'");

  const auto reject = [&](ServerRejected::Reason reason, const char* what) {
    ++m->adm.rejected;
    lock.unlock();
    promise.set_exception(std::make_exception_ptr(ServerRejected(reason, what)));
    return std::move(fut);
  };
  if (!accepting_) {
    return reject(ServerRejected::Reason::kShutdown, "InferenceServer: shutting down");
  }

  // Admission control: the queue is bounded, and this is where a saturated
  // server pushes back (the scheduler stops draining queues once every
  // worker is busy).
  const std::size_t capacity = m->config.queue.capacity;
  if (m->queue.size() >= capacity) {
    switch (m->config.queue.policy) {
      case QueuePolicy::kBlock:
        space_cv_.wait(lock, [&] { return !accepting_ || m->queue.size() < capacity; });
        if (!accepting_) {
          return reject(ServerRejected::Reason::kShutdown, "InferenceServer: shutting down");
        }
        break;
      case QueuePolicy::kReject:
        return reject(ServerRejected::Reason::kQueueFull,
                      "InferenceServer: queue full (kReject)");
      case QueuePolicy::kShedOldest: {
        // The victim's future must be failed before mu_ is released: once
        // the request leaves the queue it is invisible to drain()/shutdown's
        // idle predicate, and their "every accepted future is ready"
        // guarantee would otherwise race the set_exception below.
        Request victim = std::move(m->queue.front());
        m->queue.pop_front();
        ++m->adm.shed;
        victim.promise.set_exception(std::make_exception_ptr(ServerRejected(
            ServerRejected::Reason::kShed,
            "InferenceServer: shed by a newer request (kShedOldest)")));
        break;
      }
    }
  }

  Request r;
  r.image = std::move(image);
  r.promise = std::move(promise);
  r.arrival = arrival;
  r.enqueue = Clock::now();
  m->queue.push_back(std::move(r));
  ++m->adm.accepted;
  sched_cv_.notify_one();
  return fut;
}

void InferenceServer::dispatch_locked(ModelState& m) {
  BatchTask task;
  task.model = &m;
  const std::size_t take =
      std::min(m.queue.size(), static_cast<std::size_t>(m.config.batching.max_batch));
  task.requests.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    task.requests.push_back(std::move(m.queue.front()));
    m.queue.pop_front();
  }
  dispatch_q_.push_back(std::move(task));
  work_cv_.notify_one();
  space_cv_.notify_all();  // queue space freed for kBlock submitters
}

void InferenceServer::scheduler_main() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stop_threads_) return;

    // A batch is dispatched only while a worker is free: at most one pending
    // task per idle worker. When all workers are busy, requests age in the
    // bounded per-model queues — that is what makes admission control see
    // overload instead of an elastic internal queue.
    const bool worker_free =
        busy_workers_ + static_cast<int>(dispatch_q_.size()) < options_.workers;
    ModelState* pick = nullptr;
    Clock::time_point next_deadline = Clock::time_point::max();
    if (worker_free && !models_.empty()) {
      const Clock::time_point now = Clock::now();
      const std::size_t n = models_.size();
      // Round-robin scan from the cursor: one hot model cannot starve the
      // others, because the cursor advances past each dispatched model.
      for (std::size_t k = 0; k < n; ++k) {
        ModelState& m = *models_[(rr_ + k) % n];
        if (m.queue.empty()) continue;
        const Clock::time_point deadline =
            m.queue.front().enqueue + m.config.batching.max_delay;
        if (flush_ || static_cast<int>(m.queue.size()) >= m.config.batching.max_batch ||
            now >= deadline) {
          pick = &m;
          rr_ = (rr_ + k + 1) % n;
          break;
        }
        next_deadline = std::min(next_deadline, deadline);
      }
    }

    if (pick != nullptr) {
      dispatch_locked(*pick);
      continue;  // more models (or more of this one) may be ready
    }
    if (worker_free && next_deadline != Clock::time_point::max()) {
      // Nothing full yet: sleep until the oldest request's deadline fires a
      // partial batch. Arrivals and freed workers re-wake us earlier.
      sched_cv_.wait_until(lock, next_deadline);
    } else {
      sched_cv_.wait(lock);
    }
  }
}

void InferenceServer::worker_main() {
  // One arena Executor per model this worker has served, keyed by the
  // stable ModelState address; arenas stay warm across batches.
  std::unordered_map<const ModelState*, std::unique_ptr<Executor>> executors;

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_threads_ || !dispatch_q_.empty(); });
    if (dispatch_q_.empty()) return;  // stop_threads_, queues already drained
    BatchTask task = std::move(dispatch_q_.front());
    dispatch_q_.pop_front();
    ++busy_workers_;
    lock.unlock();

    ModelState& m = *task.model;
    std::unique_ptr<Executor>& exec = executors[task.model];
    std::exception_ptr build_error;
    if (exec == nullptr) {
      try {
        exec = std::make_unique<Executor>(*m.net);
      } catch (...) {
        build_error = std::current_exception();
      }
    }

    struct Outcome {
      QTensor logits;
      std::exception_ptr error;
      double e2e_us = 0.0;
    };
    std::vector<Outcome> outcomes(task.requests.size());
    for (std::size_t i = 0; i < task.requests.size(); ++i) {
      Outcome& o = outcomes[i];
      if (build_error != nullptr) {
        o.error = build_error;
      } else {
        // A bad request (e.g. wrong input shape) fails its own future only;
        // batch neighbours are other clients' requests.
        try {
          o.logits = exec->run(task.requests[i].image);
        } catch (...) {
          o.error = std::current_exception();
        }
      }
      o.e2e_us = micros_since(task.requests[i].arrival);
    }

    // Fulfill promises before reporting quiescence so drain() returning
    // implies every drained future is ready.
    std::size_t ok = 0;
    for (std::size_t i = 0; i < task.requests.size(); ++i) {
      if (outcomes[i].error != nullptr) {
        task.requests[i].promise.set_exception(outcomes[i].error);
      } else {
        task.requests[i].promise.set_value(std::move(outcomes[i].logits));
        ++ok;
      }
    }

    // Latency first (stats_mu_), counters second (mu_) — taken sequentially,
    // never nested, and in this order so that once drain() observes
    // busy_workers_ == 0, every completed request's sample is recorded.
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      for (const Outcome& o : outcomes) {
        m.latency.record(o.e2e_us);
        global_latency_.record(o.e2e_us);
      }
    }

    lock.lock();
    m.adm.completed += ok;
    m.adm.failed += task.requests.size() - ok;
    ++m.batches;
    m.batch_images += task.requests.size();
    if (m.batch_size_hist.size() <= task.requests.size()) {
      m.batch_size_hist.resize(task.requests.size() + 1, 0);
    }
    ++m.batch_size_hist[task.requests.size()];
    --busy_workers_;
    sched_cv_.notify_one();  // a worker freed up: more batches may dispatch
    idle_cv_.notify_all();
  }
}

bool InferenceServer::queues_empty_locked() const {
  for (const auto& m : models_) {
    if (!m->queue.empty()) return false;
  }
  return true;
}

void InferenceServer::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  ++drain_waiters_;
  flush_ = true;  // dispatch everything queued, deadlines ignored
  sched_cv_.notify_all();
  idle_cv_.wait(lock, [&] {
    return queues_empty_locked() && dispatch_q_.empty() && busy_workers_ == 0;
  });
  // Restore deadline batching once the last drainer leaves (shutdown keeps
  // the flush on for good).
  if (--drain_waiters_ == 0 && accepting_) flush_ = false;
}

void InferenceServer::shutdown() {
  // Serializes concurrent shutdown()/destructor calls; never taken by the
  // server threads, so it cannot deadlock with mu_.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (joined_) return;
    accepting_ = false;  // new submits reject; kBlock waiters wake and reject
    flush_ = true;
    ++drain_waiters_;
    space_cv_.notify_all();
    sched_cv_.notify_all();
    idle_cv_.wait(lock, [&] {
      return queues_empty_locked() && dispatch_q_.empty() && busy_workers_ == 0;
    });
    --drain_waiters_;
    stop_threads_ = true;
    joined_ = true;
    sched_cv_.notify_all();
    work_cv_.notify_all();
  }
  scheduler_.join();
  for (std::thread& w : workers_) w.join();
}

ModelStats InferenceServer::snapshot_locked(const ModelState& m) const {
  ModelStats s;
  s.model = m.id;
  s.admission = m.adm;
  s.queue_depth = m.queue.size();
  s.batches = m.batches;
  s.mean_batch_size =
      m.batches > 0 ? static_cast<double>(m.batch_images) / static_cast<double>(m.batches) : 0.0;
  s.batch_size_hist = m.batch_size_hist;
  return s;  // latency: summarized by the caller outside the lock
}

ServerStats InferenceServer::stats() const {
  // Three phases, each lock taken on its own: counters under mu_, raw
  // sample-window copies under stats_mu_ (so the copy blocks only latency
  // recording, never submit/dispatch), and the sort/summarize unlocked.
  // Counter and latency snapshots may straddle a completion; monitoring
  // does not need them transactionally consistent.
  ServerStats s;
  std::vector<const ModelState*> order;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t batch_images = 0;
    for (const auto& m : models_) {
      ModelStats ms = snapshot_locked(*m);
      s.admission.accepted += ms.admission.accepted;
      s.admission.rejected += ms.admission.rejected;
      s.admission.shed += ms.admission.shed;
      s.admission.completed += ms.admission.completed;
      s.admission.failed += ms.admission.failed;
      s.queue_depth += ms.queue_depth;
      s.batches += ms.batches;
      batch_images += m->batch_images;
      if (s.batch_size_hist.size() < ms.batch_size_hist.size()) {
        s.batch_size_hist.resize(ms.batch_size_hist.size(), 0);
      }
      for (std::size_t k = 0; k < ms.batch_size_hist.size(); ++k) {
        s.batch_size_hist[k] += ms.batch_size_hist[k];
      }
      s.models.push_back(std::move(ms));
      order.push_back(m.get());  // stable: models are never unregistered
    }
    s.mean_batch_size =
        s.batches > 0 ? static_cast<double>(batch_images) / static_cast<double>(s.batches) : 0.0;
  }
  std::vector<std::vector<double>> model_samples;
  std::vector<double> global_samples;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    model_samples.reserve(order.size());
    for (const ModelState* m : order) model_samples.push_back(m->latency.samples());
    global_samples = global_latency_.samples();
  }
  for (std::size_t i = 0; i < s.models.size(); ++i) {
    s.models[i].latency = LatencyRecorder::summarize(std::move(model_samples[i]));
  }
  s.latency = LatencyRecorder::summarize(std::move(global_samples));
  return s;
}

ModelStats InferenceServer::model_stats(const std::string& model_id) const {
  ModelStats s;
  const ModelState* found = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& m : models_) {
      if (m->id == model_id) {
        found = m.get();
        break;
      }
    }
    if (found == nullptr) {
      throw std::invalid_argument("InferenceServer::model_stats: unknown model '" + model_id +
                                  "'");
    }
    s = snapshot_locked(*found);
  }
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    samples = found->latency.samples();
  }
  s.latency = LatencyRecorder::summarize(std::move(samples));
  return s;
}

void InferenceServer::reset_stats() {
  // The models_ vector may only be walked under mu_ (register_model can
  // reallocate it); collect the stable pointers there, then clear the
  // recorders under stats_mu_.
  std::vector<ModelState*> order;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& m : models_) {
      m->adm = AdmissionCounters{};
      m->batches = 0;
      m->batch_images = 0;
      m->batch_size_hist.clear();
      order.push_back(m.get());
    }
  }
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  for (ModelState* m : order) m->latency.clear();
  global_latency_.clear();
}

std::vector<std::string> InferenceServer::model_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(models_.size());
  for (const auto& m : models_) ids.push_back(m->id);
  return ids;
}

}  // namespace bswp::runtime
