#include "runtime/server/inference_server.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "runtime/executor.h"
#include "sim/mcu.h"

namespace bswp::runtime {

// In this file `Clock` is runtime::Clock (the injectable seam from
// runtime/clock.h); its time_point/duration are steady_clock's, so existing
// timestamp types are unchanged. Every read of "now" goes through clock_.

namespace {

double micros_between(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

void validate(const ModelConfig& config, const char* who) {
  check(config.batching.max_batch >= 1, std::string(who) + ": max_batch must be >= 1");
  check(config.batching.max_delay.count() >= 0, std::string(who) + ": max_delay must be >= 0");
  check(config.queue.capacity >= 1, std::string(who) + ": queue capacity must be >= 1");
  check(config.weight >= 1, std::string(who) + ": priority weight must be >= 1");
}

/// Mirrors InputBackend's shape check (structural_backends.cpp) so a bad
/// request can be rejected *before* the batch dispatches: under batched
/// execution its neighbours ride one batched executor call undisturbed.
/// Returns null when the image is a valid single CHW/1xCxHxW image of shape
/// `want` (or when the compiled input shape is unknown — the executor then
/// remains the authority).
std::exception_ptr validate_image(const Tensor& img, const std::vector<int>& want) {
  if (want.size() != 3) return nullptr;
  int c = 0, h = 0, w = 0;
  if (img.rank() == 3) {
    c = img.dim(0);
    h = img.dim(1);
    w = img.dim(2);
  } else if (img.rank() == 4 && img.dim(0) == 1) {
    c = img.dim(1);
    h = img.dim(2);
    w = img.dim(3);
  } else {
    return std::make_exception_ptr(
        std::invalid_argument("engine: input must be a single CHW image"));
  }
  if (c != want[0] || h != want[1] || w != want[2]) {
    return std::make_exception_ptr(std::invalid_argument(
        "engine: input image shape " + std::to_string(c) + "x" + std::to_string(h) + "x" +
        std::to_string(w) + " does not match the network input " + std::to_string(want[0]) +
        "x" + std::to_string(want[1]) + "x" + std::to_string(want[2])));
  }
  return nullptr;
}

void validate(const AutoscalerOptions& a, const char* who) {
  if (!a.enabled) return;
  check(a.min_workers >= 1, std::string(who) + ": autoscaler min_workers must be >= 1");
  check(a.max_workers >= a.min_workers,
        std::string(who) + ": autoscaler max_workers must be >= min_workers");
  check(a.interval.count() > 0, std::string(who) + ": autoscaler interval must be > 0");
  check(a.up_queue_per_worker > 0.0,
        std::string(who) + ": autoscaler up_queue_per_worker must be > 0");
  check(a.up_latency_us >= 0.0, std::string(who) + ": autoscaler up_latency_us must be >= 0");
  check(a.up_consecutive >= 1 && a.down_consecutive >= 1,
        std::string(who) + ": autoscaler hysteresis streaks must be >= 1");
  check(a.cooldown.count() >= 0, std::string(who) + ": autoscaler cooldown must be >= 0");
  check(a.evict_after.count() >= 0, std::string(who) + ": autoscaler evict_after must be >= 0");
}

}  // namespace

/// One queued request: the input, the client's promise, and two timestamps —
/// end-to-end latency is measured from `arrival` (the top of submit(), so a
/// kBlock wait on a full queue is counted), while the batching deadline runs
/// from `enqueue` (queue entry, the moment the request became batchable).
struct InferenceServer::Request {
  Tensor image;
  std::promise<QTensor> promise;
  Clock::time_point arrival;
  Clock::time_point enqueue;
  /// SubmitOptions::affinity_key (0 = none): sticky-worker placement.
  std::uint64_t affinity_key = 0;
  /// Absolute queue-residency deadline (enqueue + SubmitOptions::deadline);
  /// max() = none. Expired requests are purged by the scheduler.
  Clock::time_point deadline = Clock::time_point::max();
};

/// Everything the server knows about one registered model. Heap-pinned
/// (unique_ptr in models_) so workers can key executor caches and in-flight
/// batches by address. All fields are guarded by the server's mu_, except
/// the latency recorder, which lives behind stats_mu_.
///
/// The queue is two FIFOs, one per RequestClass: dispatch pops kHigh first,
/// kShedOldest evicts kNormal first, and the batching deadline runs from the
/// oldest request across both.
struct InferenceServer::ModelState {
  ModelState(std::string id_, const CompiledNetwork& n, const ModelConfig& c, std::size_t window)
      : id(std::move(id_)), net(&n), config(c), latency(window), exec_latency(window) {
    for (const auto& p : n.plans) {
      if (p.kind == PlanKind::kInput) {
        input_chw = p.out_chw;
        break;
      }
    }
  }

  std::string id;
  const CompiledNetwork* net;
  ModelConfig config;
  /// The compiled input CHW, for pre-dispatch shape validation under batched
  /// execution (empty when the network has no kInput plan).
  std::vector<int> input_chw;
  /// Execution-aware deadline schedule: remaining_us[p] is the estimated
  /// per-image microseconds from layer p (inclusive) to the end of the plan,
  /// from a one-time CostCounter capture at register_model priced with
  /// sim::host_profile(). Immutable after registration, so workers may read
  /// it without mu_ (CancelToken borrows the data pointer). Empty when
  /// execution-aware deadlines are off or profiling failed for this model.
  std::vector<double> remaining_us;
  /// EWMA calibration of the cost model against measured executor wall time
  /// (measured / predicted, per image). Guarded by mu_; 1.0 until the first
  /// completed batch with a nonzero measurement (manual-clock runs measure
  /// zero wall time and leave it at 1).
  double cost_scale = 1.0;
  bool cost_scale_valid = false;

  std::deque<Request> high;  // RequestClass::kHigh, FIFO
  std::deque<Request> norm;  // RequestClass::kNormal, FIFO
  /// kWeightedDeficit: batches this model may still dispatch in the current
  /// scheduling cycle. Refilled to config.weight when every ready model has
  /// spent its grant; zeroed when the queue empties (no banked bursts).
  int credits = 0;

  AdmissionCounters adm;
  std::uint64_t batches = 0;     // batches handed to workers
  std::uint64_t dispatched = 0;  // requests handed to workers
  std::uint64_t affinity_hits = 0;
  std::uint64_t affinity_misses = 0;
  std::uint64_t session_affinity_hits = 0;    // keyed batches on the sticky worker
  std::uint64_t session_affinity_misses = 0;  // keyed batches elsewhere
  std::uint64_t deadline_expired = 0;         // requests purged past deadline
  /// Sticky worker of each session-affinity key, written at dispatch and
  /// erased by forget_affinity(). State, not statistics: reset_stats leaves
  /// it alone. Defensively bounded in dispatch_locked — a client that leaks
  /// keys (never calls forget_affinity) degrades to cold placement instead
  /// of growing this map without bound.
  std::unordered_map<std::uint64_t, int> sticky;
  std::vector<std::uint64_t> batch_size_hist;  // index = batch size
  LatencyRecorder latency;  // end-to-end, incl. queueing (guarded by stats_mu_)
  LatencyRecorder exec_latency;  // executor time only (guarded by stats_mu_)

  std::size_t queued() const { return high.size() + norm.size(); }

  /// Enqueue time of the oldest queued request across both classes (each
  /// deque is FIFO by enqueue, so this is the min of the two fronts).
  Clock::time_point oldest_enqueue() const {
    if (high.empty()) return norm.front().enqueue;
    if (norm.empty()) return high.front().enqueue;
    return std::min(high.front().enqueue, norm.front().enqueue);
  }

  /// Affinity key of the next request pop_next() would return (0 if none
  /// queued or unkeyed) — what worker selection steers by.
  std::uint64_t next_key() const {
    const std::deque<Request>& q = high.empty() ? norm : high;
    return q.empty() ? 0 : q.front().affinity_key;
  }

  /// Next request to dispatch: high-class first, FIFO within a class.
  Request pop_next() {
    std::deque<Request>& q = high.empty() ? norm : high;
    Request r = std::move(q.front());
    q.pop_front();
    return r;
  }

  /// kShedOldest victim: the oldest normal-class request, or — when no
  /// normal-class request is queued — the oldest high-class one.
  Request pop_shed_victim() {
    std::deque<Request>& q = norm.empty() ? high : norm;
    Request r = std::move(q.front());
    q.pop_front();
    return r;
  }
};

/// One formed batch on its way to a worker.
struct InferenceServer::BatchTask {
  ModelState* model = nullptr;
  std::vector<Request> requests;
};

/// Per-worker dispatch slot plus what the scheduler knows about the worker's
/// executor cache. All fields guarded by mu_; each worker has its own cv so
/// a dispatch wakes exactly the worker it targets.
struct InferenceServer::WorkerState {
  std::condition_variable cv;
  bool busy = false;      // executing a batch (outside mu_)
  bool has_task = false;  // batch placed, not yet picked up
  BatchTask task;
  /// Models whose arena Executor this worker has built (affinity targets).
  /// Survives descaling: a parked worker re-enters warm — unless the
  /// autoscaler eviction policy (evict_after / max_warm_bytes) reclaims it.
  std::vector<const ModelState*> warm;
  /// Eviction request from the autoscaler: the parked worker wakes, drops
  /// its executor cache and clears the flag (skipped if a dispatch raced in
  /// — a worker holding a task is live again and never evicted mid-flight).
  bool evict_requested = false;
  /// Arena bytes of the executors this worker currently holds; summed into
  /// ServerStats::warm_bytes and drained by the max_warm_bytes policy.
  std::size_t warm_bytes = 0;
  /// Completion time of this worker's last batch — the idleness the
  /// evict_after policy measures. Initialized to server construction time.
  Clock::time_point last_active;
};

InferenceServer::InferenceServer(const ServerOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : &steady_clock_ref()),
      global_latency_(options.latency_window),
      global_exec_latency_(options.latency_window) {
  check(options_.workers >= 1, "InferenceServer: workers must be >= 1");
  validate(ModelConfig{options_.batching, options_.queue}, "InferenceServer");
  validate(options_.autoscaler, "InferenceServer");

  const AutoscalerOptions& a = options_.autoscaler;
  const int threads = a.enabled ? a.max_workers : options_.workers;
  live_workers_ = a.enabled ? std::clamp(options_.workers, a.min_workers, a.max_workers)
                            : options_.workers;
  peak_workers_ = live_workers_;
  last_scale_ = clock_->now();
  next_eval_ = last_scale_ + a.interval;

  worker_state_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    worker_state_.push_back(std::make_unique<WorkerState>());
    worker_state_.back()->last_active = last_scale_;
  }
  scheduler_ = std::thread([this] { scheduler_main(); });
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::register_model(const std::string& model_id, const CompiledNetwork& net) {
  register_model(model_id, net, ModelConfig{options_.batching, options_.queue});
}

void InferenceServer::register_model(const std::string& model_id, const CompiledNetwork& net,
                                     const ModelConfig& config) {
  check(!net.plans.empty(), "InferenceServer::register_model: empty network");
  validate(config, "InferenceServer::register_model");
  auto state = std::make_unique<ModelState>(model_id, net, config, options_.latency_window);
  if (options_.execution_aware_deadlines && state->input_chw.size() == 3) {
    // One-time per-layer cost capture: the estimate source for execution-
    // aware deadlines. A throwaway single-image Executor runs the plan once,
    // each layer tallying its own CostCounter; the host profile prices the
    // counters and the suffix sum becomes the remaining-execution schedule
    // CancelTokens are armed with. Event counts depend on geometry and bit
    // planes, not weight values, so a zero image prices like any other. A
    // model this fails for simply serves with queue-residency deadlines.
    try {
      Executor probe(net, 1);
      const Tensor zero(std::vector<int>{state->input_chw[0], state->input_chw[1],
                                         state->input_chw[2]});
      const std::vector<sim::CostCounter> layers = probe.profile_layers(zero);
      const sim::McuProfile host = sim::host_profile();
      state->remaining_us.assign(layers.size(), 0.0);
      double acc = 0.0;
      for (std::size_t p = layers.size(); p-- > 0;) {
        acc += host.seconds(layers[p]) * 1e6;
        state->remaining_us[p] = acc;
      }
      if (!(acc > 0.0)) state->remaining_us.clear();
    } catch (...) {
      state->remaining_us.clear();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  check(accepting_, "InferenceServer::register_model: server is shut down");
  for (const auto& m : models_) {
    check(m->id != model_id,
          "InferenceServer::register_model: duplicate model id '" + model_id + "'");
  }
  models_.push_back(std::move(state));
}

std::future<QTensor> InferenceServer::submit(const std::string& model_id, Tensor image,
                                             RequestClass cls) {
  SubmitOptions options;
  options.cls = cls;
  return submit(model_id, std::move(image), options);
}

std::future<QTensor> InferenceServer::submit(const std::string& model_id, Tensor image,
                                             const SubmitOptions& options) {
  const Clock::time_point arrival = clock_->now();
  std::promise<QTensor> promise;
  std::future<QTensor> fut = promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  ModelState* m = nullptr;
  for (const auto& cand : models_) {
    if (cand->id == model_id) {
      m = cand.get();
      break;
    }
  }
  check(m != nullptr, "InferenceServer::submit: unknown model '" + model_id + "'");

  const auto reject = [&](ServerRejected::Reason reason, const char* what) {
    ++m->adm.rejected;
    lock.unlock();
    promise.set_exception(std::make_exception_ptr(ServerRejected(reason, what)));
    return std::move(fut);
  };
  if (!accepting_) {
    return reject(ServerRejected::Reason::kShutdown, "InferenceServer: shutting down");
  }

  // Admission control: the queue is bounded, and this is where a saturated
  // server pushes back (the scheduler stops draining queues once every live
  // worker is busy). RequestClass does not bypass admission — a kHigh
  // request blocks/rejects like any other; it only orders the queue.
  const std::size_t capacity = m->config.queue.capacity;
  if (m->queued() >= capacity) {
    switch (m->config.queue.policy) {
      case QueuePolicy::kBlock:
        space_cv_.wait(lock, [&] { return !accepting_ || m->queued() < capacity; });
        if (!accepting_) {
          return reject(ServerRejected::Reason::kShutdown, "InferenceServer: shutting down");
        }
        break;
      case QueuePolicy::kReject:
        return reject(ServerRejected::Reason::kQueueFull,
                      "InferenceServer: queue full (kReject)");
      case QueuePolicy::kShedOldest: {
        // The victim's future must be failed before mu_ is released: once
        // the request leaves the queue it is invisible to drain()/shutdown's
        // idle predicate, and their "every accepted future is ready"
        // guarantee would otherwise race the set_exception below.
        Request victim = m->pop_shed_victim();
        ++m->adm.shed;
        victim.promise.set_exception(std::make_exception_ptr(ServerRejected(
            ServerRejected::Reason::kShed,
            "InferenceServer: shed by a newer request (kShedOldest)")));
        break;
      }
    }
  }

  Request r;
  r.image = std::move(image);
  r.promise = std::move(promise);
  r.arrival = arrival;
  r.enqueue = clock_->now();
  r.affinity_key = options.affinity_key;
  if (options.deadline.count() > 0) r.deadline = r.enqueue + options.deadline;
  (options.cls == RequestClass::kHigh ? m->high : m->norm).push_back(std::move(r));
  ++m->adm.accepted;
  sched_cv_.notify_one();
  return fut;
}

void InferenceServer::forget_affinity(const std::string& model_id, std::uint64_t affinity_key) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& m : models_) {
    if (m->id == model_id) {
      m->sticky.erase(affinity_key);
      return;
    }
  }
  throw std::invalid_argument("InferenceServer::forget_affinity: unknown model '" + model_id +
                              "'");
}

Clock::duration InferenceServer::exec_estimate_locked(const ModelState& m) const {
  if (m.remaining_us.empty()) return Clock::duration::zero();
  const double us = m.remaining_us.front() * (m.cost_scale_valid ? m.cost_scale : 1.0);
  if (!(us > 0.0)) return Clock::duration::zero();
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::micro>(us));
}

void InferenceServer::expire_deadlines_locked(ModelState& m, Clock::time_point now,
                                              Clock::time_point* next_deadline) {
  // Refuse-to-dispatch: with an execution estimate available, a request is
  // unmeetable once its remaining slack drops below the estimated execution
  // time — not merely once the deadline itself passes. Purging on the
  // effective deadline (deadline - estimate) is what keeps doomed work from
  // ever occupying a worker; without an estimate this degrades to plain
  // queue-residency expiry.
  const Clock::duration est = exec_estimate_locked(m);
  bool removed = false;
  for (std::deque<Request>* q : {&m.high, &m.norm}) {
    for (auto it = q->begin(); it != q->end();) {
      if (it->deadline == Clock::time_point::max()) {
        ++it;
        continue;
      }
      const Clock::time_point effective = it->deadline - est;
      if (effective <= now) {
        // Fail the future before mu_ is released, like the kShedOldest path:
        // once the request leaves the queue it is invisible to the
        // drain()/shutdown idle predicate, whose "every accepted future is
        // ready" guarantee must not race this set_exception.
        ++m.adm.shed;
        ++m.deadline_expired;
        it->promise.set_exception(std::make_exception_ptr(ServerRejected(
            ServerRejected::Reason::kDeadlineExpired,
            "InferenceServer: deadline unmeetable (expired in queue, or remaining "
            "slack below the execution estimate)")));
        it = q->erase(it);
        removed = true;
      } else {
        *next_deadline = std::min(*next_deadline, effective);
        ++it;
      }
    }
  }
  if (removed) {
    space_cv_.notify_all();  // queue space freed for kBlock submitters
    idle_cv_.notify_all();   // a drain() may be waiting on empty queues
  }
}

InferenceServer::ModelState* InferenceServer::select_model_locked(
    Clock::time_point now, Clock::time_point* next_deadline) {
  *next_deadline = Clock::time_point::max();

  // Purge expired per-request deadlines over every queued model before
  // anything else — in particular before the no-free-worker early return
  // below. An expired request must fail its future promptly even under full
  // worker saturation (the session layer's deadline-free retry waits on that
  // failure), and the earliest surviving request deadline joins the batching
  // deadlines in the scheduler's wake computation so the purge re-runs on
  // time while all workers stay busy.
  for (const auto& m : models_) {
    if (m->queued() != 0) expire_deadlines_locked(*m, now, next_deadline);
  }

  // A batch is formed only while a live worker is free: at most one pending
  // task per idle worker. When all live workers are busy, requests age in
  // the bounded per-model queues — that is what makes admission control see
  // overload instead of an elastic internal queue, and what the autoscaler
  // reads as queue pressure.
  bool any_free = false;
  for (int i = 0; i < live_workers_; ++i) {
    const WorkerState& w = *worker_state_[static_cast<std::size_t>(i)];
    if (!w.busy && !w.has_task) {
      any_free = true;
      break;
    }
  }
  if (!any_free || models_.empty()) return nullptr;

  const std::size_t n = models_.size();
  // Scan from the cursor: the cursor advances past each dispatched model,
  // so same-credit models take turns. Under kWeightedDeficit a ready model
  // is dispatchable only while it has batch credits; when every ready model
  // has spent its grant, a new cycle refills credits to each model's weight
  // — that refill boundary is what makes sustained shares proportional to
  // the weights while a weight-1 model still dispatches every cycle.
  ModelState* exhausted = nullptr;  // first ready model with no credits left
  std::size_t exhausted_k = 0;
  for (std::size_t k = 0; k < n; ++k) {
    ModelState& m = *models_[(rr_ + k) % n];
    // Expired requests were already purged above, so everything still
    // queued here is dispatchable.
    if (m.queued() == 0) continue;
    const Clock::time_point deadline = m.oldest_enqueue() + m.config.batching.max_delay;
    const bool is_ready = flush_ ||
                          static_cast<int>(m.queued()) >= m.config.batching.max_batch ||
                          now >= deadline;
    if (!is_ready) {
      *next_deadline = std::min(*next_deadline, deadline);
      continue;
    }
    if (options_.schedule == SchedulePolicy::kRoundRobin || m.credits > 0) {
      rr_ = (rr_ + k + 1) % n;
      return &m;
    }
    if (exhausted == nullptr) {
      exhausted = &m;
      exhausted_k = k;
    }
  }
  if (exhausted == nullptr) return nullptr;
  for (const auto& m : models_) m->credits = m->config.weight;
  rr_ = (rr_ + exhausted_k + 1) % n;
  return exhausted;
}

int InferenceServer::select_worker_locked(const ModelState& m, bool* hit,
                                          bool* session_hit) const {
  *hit = false;
  *session_hit = false;
  // Sticky placement first: the worker that last served the next request's
  // affinity key holds that session's decode state pattern in its warm
  // executor and cache. Only taken when that worker is free and live — a
  // busy sticky worker falls through to the warm scan (an affinity miss,
  // never a stall).
  const std::uint64_t key = m.next_key();
  if (key != 0) {
    const auto it = m.sticky.find(key);
    if (it != m.sticky.end() && it->second < live_workers_) {
      const WorkerState& w = *worker_state_[static_cast<std::size_t>(it->second)];
      if (!w.busy && !w.has_task) {
        *session_hit = true;
        *hit = std::find(w.warm.begin(), w.warm.end(), &m) != w.warm.end();
        return it->second;
      }
    }
  }
  int cold = -1;
  for (int i = 0; i < live_workers_; ++i) {
    const WorkerState& w = *worker_state_[static_cast<std::size_t>(i)];
    if (w.busy || w.has_task) continue;
    if (std::find(w.warm.begin(), w.warm.end(), &m) != w.warm.end()) {
      *hit = true;
      return i;  // free worker with this model's executor already built
    }
    if (cold < 0) cold = i;
  }
  return cold;
}

void InferenceServer::dispatch_locked(ModelState& m, int wid, bool affinity_hit,
                                      bool session_hit) {
  WorkerState& w = *worker_state_[static_cast<std::size_t>(wid)];
  BatchTask task;
  task.model = &m;
  const std::uint64_t lead_key = m.next_key();
  const std::size_t take =
      std::min(m.queued(), static_cast<std::size_t>(m.config.batching.max_batch));
  task.requests.reserve(take);
  for (std::size_t i = 0; i < take; ++i) task.requests.push_back(m.pop_next());
  // Record every keyed request's worker so the next step of its session
  // steers here. The bound self-heals a client that leaks keys: past it,
  // placement degrades to cold rather than the map growing without limit.
  if (m.sticky.size() > 65536) m.sticky.clear();
  for (const Request& r : task.requests) {
    if (r.affinity_key != 0) m.sticky[r.affinity_key] = wid;
  }
  if (lead_key != 0) {
    if (session_hit) {
      ++m.session_affinity_hits;
    } else {
      ++m.session_affinity_misses;
    }
  }
  if (options_.schedule == SchedulePolicy::kWeightedDeficit) {
    if (m.credits > 0) --m.credits;
    if (m.queued() == 0) m.credits = 0;  // no banking across idle periods
  }

  ++m.batches;
  m.dispatched += take;
  if (m.batch_size_hist.size() <= take) m.batch_size_hist.resize(take + 1, 0);
  ++m.batch_size_hist[take];
  if (affinity_hit) {
    ++m.affinity_hits;
  } else {
    ++m.affinity_misses;
  }

  w.task = std::move(task);
  w.has_task = true;
  w.cv.notify_one();
  space_cv_.notify_all();  // queue space freed for kBlock submitters
}

void InferenceServer::scheduler_main() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stop_threads_) return;
    const Clock::time_point now = clock_->now();

    if (options_.autoscaler.enabled && now >= next_eval_) {
      autoscale_locked(now);
      next_eval_ = now + options_.autoscaler.interval;
    }

    Clock::time_point next_deadline = Clock::time_point::max();
    ModelState* pick = select_model_locked(now, &next_deadline);
    if (pick != nullptr) {
      bool hit = false;
      bool session_hit = false;
      const int wid = select_worker_locked(*pick, &hit, &session_hit);
      // select_model_locked only returns a model while a worker is free and
      // the lock has been held throughout, so a slot is guaranteed.
      check(wid >= 0, "InferenceServer: scheduler invariant violated (no free worker)");
      dispatch_locked(*pick, wid, hit, session_hit);
      continue;  // more models (or more of this one) may be ready
    }

    // Nothing dispatchable: sleep until the oldest request's batching
    // deadline fires a partial batch, or the next autoscaler evaluation,
    // whichever is sooner. Arrivals and freed workers re-wake us earlier.
    Clock::time_point wake = next_deadline;
    if (options_.autoscaler.enabled) wake = std::min(wake, next_eval_);
    if (wake != Clock::time_point::max()) {
      clock_->wait_until(sched_cv_, lock, wake);
    } else {
      sched_cv_.wait(lock);
    }
  }
}

void InferenceServer::autoscale_locked(Clock::time_point now) {
  ++autoscale_evals_;
  const AutoscalerOptions& a = options_.autoscaler;
  std::size_t queued = 0;
  for (const auto& m : models_) queued += m->queued();
  int occupied = busy_workers_;
  for (const auto& w : worker_state_) {
    if (w->has_task) ++occupied;
  }

  bool pressure =
      static_cast<double>(queued) > a.up_queue_per_worker * static_cast<double>(live_workers_);
  // The latency EWMA only moves when batches complete, so it goes stale the
  // moment traffic stops; gate it on work actually waiting, or a drained
  // server would read the last burst's EWMA as pressure forever and never
  // take the shrink branch below.
  if (!pressure && queued > 0 && a.up_latency_us > 0.0 && lat_ewma_valid_ &&
      lat_ewma_us_ > a.up_latency_us) {
    pressure = true;
  }
  const bool idle = queued == 0 && occupied < live_workers_;

  // Hysteresis: a signal must hold for a consecutive streak of evaluations,
  // opposing signals reset each other's streak, and `cooldown` separates any
  // two scale events — so a step change in load converges to a stable count
  // instead of oscillating. Streaks clamp at their thresholds: a pool pinned
  // at min/max keeps satisfying its streak without counting toward overflow.
  if (pressure) {
    down_streak_ = 0;
    up_streak_ = std::min(up_streak_ + 1, a.up_consecutive);
    if (up_streak_ >= a.up_consecutive && live_workers_ < a.max_workers &&
        now - last_scale_ >= a.cooldown) {
      ++live_workers_;
      peak_workers_ = std::max(peak_workers_, live_workers_);
      ++scale_ups_;
      last_scale_ = now;
      up_streak_ = 0;
    }
  } else if (idle) {
    up_streak_ = 0;
    down_streak_ = std::min(down_streak_ + 1, a.down_consecutive);
    if (down_streak_ >= a.down_consecutive && live_workers_ > a.min_workers &&
        now - last_scale_ >= a.cooldown) {
      --live_workers_;
      ++scale_downs_;
      last_scale_ = now;
      down_streak_ = 0;
    }
  } else {
    up_streak_ = 0;
    down_streak_ = 0;
  }

  // Executor-cache eviction rides the autoscaler cadence. Only parked
  // workers (index >= live_workers_) are candidates: a live worker's cache
  // is the affinity machinery's working set, and a busy or tasked worker is
  // about to refresh last_active anyway. The flag wakes the worker, which
  // drops its own cache (the arenas are its thread-local state).
  if (a.evict_after.count() > 0) {
    for (std::size_t i = static_cast<std::size_t>(live_workers_); i < worker_state_.size();
         ++i) {
      WorkerState& w = *worker_state_[i];
      if (w.warm_bytes > 0 && !w.busy && !w.has_task && !w.evict_requested &&
          now - w.last_active >= a.evict_after) {
        w.evict_requested = true;
        w.cv.notify_one();
      }
    }
  }
  if (a.max_warm_bytes > 0) {
    std::size_t total = 0;
    for (const auto& w : worker_state_) {
      if (!w->evict_requested) total += w->warm_bytes;
    }
    // Over budget: evict parked workers oldest-idle-first until under (or
    // until only live workers hold the remainder — live caches are never
    // reclaimed, so a budget smaller than the live working set is advisory).
    while (total > a.max_warm_bytes) {
      WorkerState* victim = nullptr;
      for (std::size_t i = static_cast<std::size_t>(live_workers_); i < worker_state_.size();
           ++i) {
        WorkerState& w = *worker_state_[i];
        if (w.warm_bytes == 0 || w.busy || w.has_task || w.evict_requested) continue;
        if (victim == nullptr || w.last_active < victim->last_active) victim = &w;
      }
      if (victim == nullptr) break;
      victim->evict_requested = true;
      total -= victim->warm_bytes;
      victim->cv.notify_one();
    }
  }
}

void InferenceServer::worker_main(int wid) {
  WorkerState& self = *worker_state_[static_cast<std::size_t>(wid)];
  // One arena Executor per model this worker has served, keyed by the
  // stable ModelState address; arenas stay warm across batches (and across
  // descale/rescale — a parked worker keeps its cache, which is what makes
  // affinity hits resume immediately after a scale-up). Executors are built
  // with the model's max_batch so batched dispatch has the arena slots.
  std::unordered_map<const ModelState*, std::unique_ptr<Executor>> executors;
  // Batched dispatch stages validated images contiguously here (Tensor moves
  // only) so the whole batch goes through ONE run_batch_view span; both
  // vectors keep their capacity across batches, so the steady state of a
  // warm worker performs no heap allocations on the dispatch path.
  std::vector<Tensor> staging;
  std::vector<std::size_t> staged_req;  // staging slot -> request index
  // One reusable cooperative token: armed per executor call (owner-thread
  // protocol — never while a run is in flight), checked by the executor at
  // every layer boundary.
  CancelToken cancel;

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    self.cv.wait(lock,
                 [&] { return stop_threads_ || self.has_task || self.evict_requested; });
    if (self.evict_requested) {
      self.evict_requested = false;
      if (!self.has_task && !executors.empty()) {
        // Drop the cache. The unique_ptrs move to a local vector so the
        // arenas (the actual memory the policy reclaims) are freed outside
        // mu_; counters and the scheduler-visible warm set update first.
        std::vector<std::unique_ptr<Executor>> dropped;
        dropped.reserve(executors.size());
        for (auto& entry : executors) {
          if (entry.second != nullptr) dropped.push_back(std::move(entry.second));
        }
        executors.clear();
        evicted_executors_ += dropped.size();
        self.warm.clear();
        self.warm_bytes = 0;
        lock.unlock();
        dropped.clear();
        lock.lock();
      }
    }
    if (!self.has_task) {
      if (stop_threads_) return;  // queues already drained
      continue;                   // eviction wake (or spurious): nothing to run
    }
    BatchTask task = std::move(self.task);
    self.task = BatchTask{};
    self.has_task = false;
    self.busy = true;
    ++busy_workers_;
    ModelState& m = *task.model;
    const double cost_scale = m.cost_scale_valid ? m.cost_scale : 1.0;
    lock.unlock();

    std::unique_ptr<Executor>& exec = executors[task.model];
    bool built = false;
    std::exception_ptr build_error;
    if (exec == nullptr) {
      try {
        exec = std::make_unique<Executor>(
            *m.net, options_.batched_execution ? m.config.batching.max_batch : 1);
        built = true;
      } catch (...) {
        build_error = std::current_exception();
      }
    }

    struct Outcome {
      QTensor logits;
      std::exception_ptr error;
      double e2e_us = 0.0;
      double exec_us = 0.0;  // executor wall time attributed to this request
      bool ran = false;      // produced logits (exec_us is meaningful)
      bool shed = false;     // cancelled at a layer boundary (SLO unreachable)
    };
    std::vector<Outcome> outcomes(task.requests.size());
    // Execution-aware shedding: the token is armed with a member deadline and
    // the model's remaining-execution schedule (immutable after registration,
    // so reading it without mu_ is safe), scaled by the measured calibration
    // times the number of images in the run — the schedule is per image, and
    // the calibration tracks amortized per-image batch cost, so an n-image
    // batch prices at n times the per-image estimate. The executor then
    // sheds the run at the first layer boundary where the deadline can no
    // longer be met — for a batch that was never feasible, that is layer 0,
    // before any work is wasted on it.
    const bool exec_aware = options_.execution_aware_deadlines && !m.remaining_us.empty();
    const auto arm_token = [&](Clock::time_point dl, std::size_t n_images) {
      cancel.disarm();
      if (exec_aware && dl != Clock::time_point::max()) {
        cancel.arm(clock_, dl, m.remaining_us.data(), m.remaining_us.size(),
                   cost_scale * static_cast<double>(n_images));
      }
    };
    const auto shed_error = [] {
      return std::make_exception_ptr(ServerRejected(
          ServerRejected::Reason::kDeadlineExpired,
          "InferenceServer: in-flight work shed at a layer boundary (deadline "
          "unreachable)"));
    };
    const bool batched = options_.batched_execution && build_error == nullptr &&
                         task.requests.size() > 1 &&
                         static_cast<int>(task.requests.size()) <= exec->max_batch();
    if (build_error != nullptr) {
      for (Outcome& o : outcomes) o.error = build_error;
    } else if (batched) {
      // Up-front shape validation: a bad request fails its own future here
      // and never enters the batch, so its neighbours still ride the single
      // batched executor call.
      staging.clear();
      staged_req.clear();
      Clock::time_point latest_deadline = Clock::time_point::min();
      for (std::size_t i = 0; i < task.requests.size(); ++i) {
        std::exception_ptr bad = validate_image(task.requests[i].image, m.input_chw);
        if (bad != nullptr) {
          outcomes[i].error = bad;
        } else {
          staging.push_back(std::move(task.requests[i].image));
          staged_req.push_back(i);
          latest_deadline = std::max(latest_deadline, task.requests[i].deadline);
        }
      }
      if (!staging.empty()) {
        // Armed with the LATEST member deadline: the batch runs (and members
        // whose own deadline lapsed deliver late) as long as ANY member's
        // SLO is still reachable; a deadline-free member disables shedding
        // outright, because the batch must complete for it.
        arm_token(latest_deadline, staging.size());
        const Clock::time_point exec_t0 = clock_->now();
        bool batch_ok = true;
        bool batch_shed = false;
        try {
          exec->run_batch_view(std::span<const Tensor>(staging.data(), staging.size()),
                               nullptr, &cancel);
        } catch (const ExecutionCancelled&) {
          batch_ok = false;
          batch_shed = true;
        } catch (...) {
          batch_ok = false;
        }
        if (batch_ok) {
          const double per_image_us = micros_between(exec_t0, clock_->now()) /
                                      static_cast<double>(staging.size());
          for (std::size_t k = 0; k < staging.size(); ++k) {
            Outcome& o = outcomes[staged_req[k]];
            o.logits = exec->logits_view(static_cast<int>(k)).to_qtensor();
            o.exec_us = per_image_us;
            o.ran = true;
          }
        } else if (batch_shed) {
          // Deliberate shed: no member could meet its SLO, so the run was
          // abandoned at a layer boundary. No per-image fallback — re-running
          // doomed work is exactly the waste this path removes. The arena is
          // rewritten wholesale by the next run, so nothing partial escapes.
          for (std::size_t k = 0; k < staging.size(); ++k) {
            Outcome& o = outcomes[staged_req[k]];
            o.shed = true;
            o.error = shed_error();
          }
        } else {
          // The batched call failed as a whole; per-image fallback isolates
          // the failing request to its own future. Solo runs are governed by
          // each request's own deadline.
          for (std::size_t k = 0; k < staging.size(); ++k) {
            Outcome& o = outcomes[staged_req[k]];
            arm_token(task.requests[staged_req[k]].deadline, 1);
            const Clock::time_point r0 = clock_->now();
            try {
              o.logits = exec->run(staging[k], nullptr, &cancel);
              o.exec_us = micros_between(r0, clock_->now());
              o.ran = true;
            } catch (const ExecutionCancelled&) {
              o.shed = true;
              o.error = shed_error();
            } catch (...) {
              o.error = std::current_exception();
            }
          }
        }
        cancel.disarm();
      }
    } else {
      for (std::size_t i = 0; i < task.requests.size(); ++i) {
        Outcome& o = outcomes[i];
        // A bad request (e.g. wrong input shape) fails its own future only;
        // batch neighbours are other clients' requests.
        arm_token(task.requests[i].deadline, 1);
        const Clock::time_point r0 = clock_->now();
        try {
          o.logits = exec->run(task.requests[i].image, nullptr, &cancel);
          o.exec_us = micros_between(r0, clock_->now());
          o.ran = true;
        } catch (const ExecutionCancelled&) {
          o.shed = true;
          o.error = shed_error();
        } catch (...) {
          o.error = std::current_exception();
        }
      }
      cancel.disarm();
    }
    const Clock::time_point done = clock_->now();
    for (std::size_t i = 0; i < task.requests.size(); ++i) {
      outcomes[i].e2e_us = micros_between(task.requests[i].arrival, done);
    }

    // Fulfill promises before reporting quiescence so drain() returning
    // implies every drained future is ready.
    std::size_t ok = 0;
    std::size_t shed_n = 0;
    std::size_t n_lat = 0;
    double e2e_sum_us = 0.0;
    double exec_wall_us = 0.0;
    std::size_t exec_images = 0;
    for (std::size_t i = 0; i < task.requests.size(); ++i) {
      if (outcomes[i].shed) {
        ++shed_n;  // shed mid-run records no latency sample (like a queue purge)
      } else {
        e2e_sum_us += outcomes[i].e2e_us;
        ++n_lat;
      }
      if (outcomes[i].ran) {
        exec_wall_us += outcomes[i].exec_us;
        ++exec_images;
      }
      if (outcomes[i].error != nullptr) {
        task.requests[i].promise.set_exception(outcomes[i].error);
      } else {
        task.requests[i].promise.set_value(std::move(outcomes[i].logits));
        ++ok;
      }
    }

    // Latency first (stats_mu_), counters second (mu_) — taken sequentially,
    // never nested, and in this order so that once drain() observes the
    // workers quiescent, every completed request's sample is recorded.
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      for (const Outcome& o : outcomes) {
        if (o.shed) continue;
        m.latency.record(o.e2e_us);
        global_latency_.record(o.e2e_us);
        if (o.ran) {
          m.exec_latency.record(o.exec_us);
          global_exec_latency_.record(o.exec_us);
        }
      }
    }

    lock.lock();
    if (built) {
      self.warm.push_back(task.model);
      self.warm_bytes += exec->arena_bytes();
    }
    self.last_active = clock_->now();
    m.adm.completed += ok;
    m.adm.shed += shed_n;
    m.deadline_expired += shed_n;  // in-flight sheds count with queue purges
    m.adm.failed += task.requests.size() - ok - shed_n;
    if (exec_images > 0 && exec_wall_us > 0.0 && !m.remaining_us.empty() &&
        m.remaining_us.front() > 0.0) {
      // Calibrate the cost model against reality: EWMA of measured-over-
      // predicted per-image executor time, folded into every future estimate
      // and armed token. Zero measurements (manual clock) leave it alone.
      const double ratio =
          (exec_wall_us / static_cast<double>(exec_images)) / m.remaining_us.front();
      m.cost_scale = m.cost_scale_valid ? 0.2 * ratio + 0.8 * m.cost_scale : ratio;
      m.cost_scale_valid = true;
    }
    if (n_lat > 0) {
      // Batch-mean EWMA of end-to-end latency: the autoscaler's cheap
      // latency signal (the percentile windows live behind stats_mu_, which
      // the scheduler never takes). Shed requests contribute nothing.
      const double mean_us = e2e_sum_us / static_cast<double>(n_lat);
      lat_ewma_us_ = lat_ewma_valid_ ? 0.2 * mean_us + 0.8 * lat_ewma_us_ : mean_us;
      lat_ewma_valid_ = true;
    }
    self.busy = false;
    --busy_workers_;
    sched_cv_.notify_one();  // a worker freed up: more batches may dispatch
    idle_cv_.notify_all();
  }
}

bool InferenceServer::queues_empty_locked() const {
  for (const auto& m : models_) {
    if (m->queued() != 0) return false;
  }
  return true;
}

bool InferenceServer::workers_quiescent_locked() const {
  if (busy_workers_ != 0) return false;
  for (const auto& w : worker_state_) {
    if (w->has_task) return false;
  }
  return true;
}

void InferenceServer::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  ++drain_waiters_;
  flush_ = true;  // dispatch everything queued, deadlines ignored
  sched_cv_.notify_all();
  idle_cv_.wait(lock, [&] { return queues_empty_locked() && workers_quiescent_locked(); });
  // Restore deadline batching once the last drainer leaves (shutdown keeps
  // the flush on for good).
  if (--drain_waiters_ == 0 && accepting_) flush_ = false;
}

void InferenceServer::shutdown() {
  // Serializes concurrent shutdown()/destructor calls; never taken by the
  // server threads, so it cannot deadlock with mu_.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (joined_) return;
    accepting_ = false;  // new submits reject; kBlock waiters wake and reject
    flush_ = true;
    ++drain_waiters_;
    space_cv_.notify_all();
    sched_cv_.notify_all();
    idle_cv_.wait(lock, [&] { return queues_empty_locked() && workers_quiescent_locked(); });
    --drain_waiters_;
    stop_threads_ = true;
    joined_ = true;
    sched_cv_.notify_all();
    for (const auto& w : worker_state_) w->cv.notify_all();
  }
  scheduler_.join();
  for (std::thread& w : workers_) w.join();
}

ModelStats InferenceServer::snapshot_locked(const ModelState& m) const {
  ModelStats s;
  s.model = m.id;
  s.admission = m.adm;
  s.queue_depth = m.queued();
  s.batches = m.batches;
  s.dispatched = m.dispatched;
  s.weight = m.config.weight;
  s.affinity_hits = m.affinity_hits;
  s.affinity_misses = m.affinity_misses;
  s.session_affinity_hits = m.session_affinity_hits;
  s.session_affinity_misses = m.session_affinity_misses;
  s.deadline_expired = m.deadline_expired;
  s.mean_batch_size =
      m.batches > 0 ? static_cast<double>(m.dispatched) / static_cast<double>(m.batches) : 0.0;
  s.batch_size_hist = m.batch_size_hist;
  return s;  // latency: summarized by the caller outside the lock;
             // dispatch_share: filled by stats() once the total is known
}

ServerStats InferenceServer::stats() const {
  // Three phases, each lock taken on its own: counters under mu_, raw
  // sample-window copies under stats_mu_ (so the copy blocks only latency
  // recording, never submit/dispatch), and the sort/summarize unlocked.
  // Counter and latency snapshots may straddle a completion; monitoring
  // does not need them transactionally consistent.
  ServerStats s;
  std::vector<const ModelState*> order;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& m : models_) {
      ModelStats ms = snapshot_locked(*m);
      s.admission.accepted += ms.admission.accepted;
      s.admission.rejected += ms.admission.rejected;
      s.admission.shed += ms.admission.shed;
      s.admission.completed += ms.admission.completed;
      s.admission.failed += ms.admission.failed;
      s.queue_depth += ms.queue_depth;
      s.batches += ms.batches;
      s.dispatched += ms.dispatched;
      s.affinity_hits += ms.affinity_hits;
      s.affinity_misses += ms.affinity_misses;
      s.session_affinity_hits += ms.session_affinity_hits;
      s.session_affinity_misses += ms.session_affinity_misses;
      s.deadline_expired += ms.deadline_expired;
      if (s.batch_size_hist.size() < ms.batch_size_hist.size()) {
        s.batch_size_hist.resize(ms.batch_size_hist.size(), 0);
      }
      for (std::size_t k = 0; k < ms.batch_size_hist.size(); ++k) {
        s.batch_size_hist[k] += ms.batch_size_hist[k];
      }
      s.models.push_back(std::move(ms));
      order.push_back(m.get());  // stable: models are never unregistered
    }
    s.mean_batch_size =
        s.batches > 0 ? static_cast<double>(s.dispatched) / static_cast<double>(s.batches) : 0.0;
    s.current_workers = live_workers_;
    s.peak_workers = peak_workers_;
    s.scale_up_events = scale_ups_;
    s.scale_down_events = scale_downs_;
    s.autoscale_evals = autoscale_evals_;
    s.evicted_executors = evicted_executors_;
    for (const auto& w : worker_state_) s.warm_bytes += w->warm_bytes;
  }
  for (ModelStats& ms : s.models) {
    ms.dispatch_share = s.dispatched > 0
                            ? static_cast<double>(ms.dispatched) / static_cast<double>(s.dispatched)
                            : 0.0;
  }
  std::vector<std::vector<double>> model_samples;
  std::vector<std::vector<double>> model_exec_samples;
  std::vector<double> global_samples;
  std::vector<double> global_exec_samples;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    model_samples.reserve(order.size());
    model_exec_samples.reserve(order.size());
    for (const ModelState* m : order) {
      model_samples.push_back(m->latency.samples());
      model_exec_samples.push_back(m->exec_latency.samples());
    }
    global_samples = global_latency_.samples();
    global_exec_samples = global_exec_latency_.samples();
  }
  for (std::size_t i = 0; i < s.models.size(); ++i) {
    s.models[i].latency = LatencyRecorder::summarize(std::move(model_samples[i]));
    s.models[i].exec_latency = LatencyRecorder::summarize(std::move(model_exec_samples[i]));
  }
  s.latency = LatencyRecorder::summarize(std::move(global_samples));
  s.exec_latency = LatencyRecorder::summarize(std::move(global_exec_samples));
  return s;
}

ModelStats InferenceServer::model_stats(const std::string& model_id) const {
  ModelStats s;
  const ModelState* found = nullptr;
  std::uint64_t total_dispatched = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& m : models_) {
      total_dispatched += m->dispatched;
      if (m->id == model_id) found = m.get();
    }
    if (found == nullptr) {
      throw std::invalid_argument("InferenceServer::model_stats: unknown model '" + model_id +
                                  "'");
    }
    s = snapshot_locked(*found);
  }
  s.dispatch_share = total_dispatched > 0
                         ? static_cast<double>(s.dispatched) / static_cast<double>(total_dispatched)
                         : 0.0;
  std::vector<double> samples;
  std::vector<double> exec_samples;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    samples = found->latency.samples();
    exec_samples = found->exec_latency.samples();
  }
  s.latency = LatencyRecorder::summarize(std::move(samples));
  s.exec_latency = LatencyRecorder::summarize(std::move(exec_samples));
  return s;
}

void InferenceServer::reset_stats() {
  // The models_ vector may only be walked under mu_ (register_model can
  // reallocate it); collect the stable pointers there, then clear the
  // recorders under stats_mu_.
  std::vector<ModelState*> order;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& m : models_) {
      m->adm = AdmissionCounters{};
      m->batches = 0;
      m->dispatched = 0;
      m->affinity_hits = 0;
      m->affinity_misses = 0;
      m->session_affinity_hits = 0;
      m->session_affinity_misses = 0;
      m->deadline_expired = 0;
      m->batch_size_hist.clear();
      order.push_back(m.get());
    }
    scale_ups_ = 0;
    scale_downs_ = 0;
    autoscale_evals_ = 0;
    evicted_executors_ = 0;  // warm_bytes is state, not a counter: untouched
    peak_workers_ = live_workers_;
    lat_ewma_us_ = 0.0;
    lat_ewma_valid_ = false;
  }
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  for (ModelState* m : order) {
    m->latency.clear();
    m->exec_latency.clear();
  }
  global_latency_.clear();
  global_exec_latency_.clear();
}

int InferenceServer::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_workers_;
}

bool InferenceServer::accepting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepting_;
}

std::size_t InferenceServer::queued_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t queued = 0;
  for (const auto& m : models_) queued += m->queued();
  return queued;
}

std::vector<std::string> InferenceServer::model_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(models_.size());
  for (const auto& m : models_) ids.push_back(m->id);
  return ids;
}

}  // namespace bswp::runtime
