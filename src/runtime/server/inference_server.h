// Async inference server: request queue, dynamic cross-request batching,
// backpressure, multi-network serving.
//
// This is the serving layer production traffic actually needs: individual
// requests arrive one at a time at unpredictable rates against many compiled
// models, and the server — not the caller — forms batches. Architecture:
//
//   submit(model, image) ──> per-model bounded FIFO ──┐
//   submit(model, image) ──> per-model bounded FIFO ──┤   scheduler thread
//                                                     ├──> (round-robin,
//   register_model(...)  adds a queue                 │    max_batch/deadline)
//                                                     ▼
//                                     dispatch queue (≤ 1 batch per free
//                                     worker) ──> N worker threads, each
//                                     holding one arena Executor per model
//                                     it has served (warm across batches)
//
// Batching: a model's batch closes when `max_batch` requests are queued or
// the oldest has waited `max_delay`, whichever is first; ready models are
// drained round-robin so one hot model cannot starve the rest. The scheduler
// only dispatches while a worker is free — when all workers are busy,
// requests back up in the bounded per-model queues, which is where
// backpressure (QueuePolicy::{kBlock, kReject, kShedOldest}) engages.
//
// Results: submit() returns a std::future<QTensor> fulfilled with logits
// bit-identical to Session::run / Executor::run for the same image (the
// kernels are deterministic integer code and each request runs on one arena
// executor). A request that fails (bad shape, rejected, shed, shutdown)
// fulfills its future with an exception — ServerRejected for admission
// failures — and never disturbs its batch neighbours.
//
// Shutdown: shutdown() (and the destructor) stops admission, flushes every
// queue ignoring batching deadlines, waits for in-flight work, then joins
// the threads — no submitted request is ever silently dropped. drain()
// does the same flush-and-wait while keeping the server accepting.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/compressed_network.h"
#include "runtime/server/options.h"
#include "runtime/server/stats.h"

namespace bswp::runtime {

/// Delivered through a request's future when admission control refuses it:
/// a kReject overflow, a kShedOldest eviction, or a shutdown-time refusal.
class ServerRejected : public std::runtime_error {
 public:
  enum class Reason { kQueueFull, kShed, kShutdown };
  ServerRejected(Reason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}
  Reason reason() const { return reason_; }

 private:
  Reason reason_;
};

class InferenceServer {
 public:
  /// Starts the scheduler and worker threads immediately; per-model arena
  /// executors are built lazily, the first time a worker serves that model.
  explicit InferenceServer(const ServerOptions& options = ServerOptions{});
  /// shutdown(): drains every accepted request, then joins the threads.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Register a compiled network under `model_id` with the server-default
  /// (or an explicit) batching/queue config. `net` is borrowed and must
  /// outlive the server. Throws std::invalid_argument on a duplicate id.
  /// Models may be registered while the server is running.
  void register_model(const std::string& model_id, const CompiledNetwork& net);
  void register_model(const std::string& model_id, const CompiledNetwork& net,
                      const ModelConfig& config);

  /// Submit one request. Returns immediately (kBlock: after space frees)
  /// with a future for the quantized logits. Throws std::invalid_argument
  /// for an unknown model id; admission failures are delivered through the
  /// future as ServerRejected. Safe from any number of threads.
  std::future<QTensor> submit(const std::string& model_id, Tensor image);

  /// Flush every queued request (batching deadlines ignored) and wait until
  /// the server is momentarily idle: queues empty, no batch in flight.
  /// Concurrent submits are still accepted and extend the wait.
  void drain();

  /// Stop admission, drain, and join all threads. Idempotent; called by the
  /// destructor. Requests blocked in a kBlock submit are rejected.
  void shutdown();

  /// Aggregate + per-model snapshot (registration order). Percentiles are
  /// computed outside the server lock — polling stats() does not stall
  /// submit/dispatch for the sort.
  ServerStats stats() const;
  ModelStats model_stats(const std::string& model_id) const;
  /// Zero every admission counter, batch histogram and latency window (e.g.
  /// after warm-up, before a measured run). Queued/in-flight requests are
  /// unaffected and will count against the fresh counters on completion.
  void reset_stats();

  int worker_count() const { return options_.workers; }
  std::vector<std::string> model_ids() const;

 private:
  struct Request;
  struct ModelState;
  struct BatchTask;

  void scheduler_main();
  void worker_main();
  /// Pop up to max_batch requests from `m` into a dispatch task. Lock held.
  void dispatch_locked(ModelState& m);
  bool queues_empty_locked() const;
  /// Everything except the latency summary, which the caller computes from
  /// the copied-out sample window after releasing mu_.
  ModelStats snapshot_locked(const ModelState& m) const;

  ServerOptions options_;

  std::mutex lifecycle_mu_;  // serializes shutdown()/destructor
  mutable std::mutex mu_;    // queues, dispatch, counters, lifecycle
  // Latency sample windows live behind their own lock so a stats() poll
  // copying them (up to latency_window doubles per model) never blocks
  // submit or the scheduler on mu_. Discipline: stats_mu_ is NEVER held
  // together with mu_ — every path takes them sequentially.
  mutable std::mutex stats_mu_;
  std::condition_variable sched_cv_;  // scheduler: arrivals, freed workers
  std::condition_variable work_cv_;   // workers: dispatch queue non-empty
  std::condition_variable space_cv_;  // kBlock submitters: queue space
  std::condition_variable idle_cv_;   // drain/shutdown: server went idle

  // Registration order drives round-robin; lookup is a linear scan, which
  // is fine for the handful of models a server realistically hosts.
  // ModelState addresses are stable (unique_ptr) — workers key executor
  // caches and in-flight batches by pointer.
  std::vector<std::unique_ptr<ModelState>> models_;
  std::size_t rr_ = 0;  // round-robin cursor into models_

  std::deque<BatchTask> dispatch_q_;
  int busy_workers_ = 0;
  bool accepting_ = true;
  bool flush_ = false;        // drain/shutdown: ignore batching deadlines
  int drain_waiters_ = 0;     // flush_ stays set while any drain() waits
  bool stop_threads_ = false;
  bool joined_ = false;

  LatencyRecorder global_latency_;  // across models, guarded by stats_mu_

  std::thread scheduler_;
  std::vector<std::thread> workers_;
};

}  // namespace bswp::runtime
