// Async inference server: request queue, dynamic cross-request batching,
// priority-weighted scheduling, worker affinity, backpressure, autoscaling,
// multi-network serving.
//
// This is the serving layer production traffic actually needs: individual
// requests arrive one at a time at unpredictable rates against many compiled
// models, and the server — not the caller — forms batches. Architecture:
//
//   submit(model, image[, class]) ─> per-model bounded queue ──┐
//   submit(model, image[, class]) ─> per-model bounded queue ──┤ scheduler
//                                                              │  thread
//   register_model(...)  adds a queue + priority weight        │
//                                                              ▼
//                        pick model: weighted deficit round-robin
//                        (or plain round-robin), max_batch/deadline
//                                                              │
//                        pick worker: prefer one whose executor
//                        cache is already warm for the model   │
//                                                              ▼
//                        per-worker dispatch slot ──> N live workers out of
//                        `max_workers` threads; the autoscaler moves the
//                        live count with queue-depth/latency signals
//
// Batching: a model's batch closes when `max_batch` requests are queued or
// the oldest has waited `max_delay`, whichever is first. Ready models are
// drained by SchedulePolicy — weighted deficit round-robin by default, where
// ModelConfig::weight is the model's batch-credit grant per scheduling cycle,
// so a hot model gets proportionally more dispatch slots while a weight-1
// model still dispatches every cycle (never starves). Within one model's
// queue, RequestClass::kHigh requests dispatch before kNormal ones. The
// scheduler only dispatches while a live worker is free — when all are busy,
// requests back up in the bounded per-model queues, which is where
// backpressure (QueuePolicy::{kBlock, kReject, kShedOldest}) engages and
// what the autoscaler reads as its grow signal.
//
// Results: submit() returns a std::future<QTensor> fulfilled with logits
// bit-identical to Session::run / Executor::run for the same image (the
// kernels are deterministic integer code and each request runs on one arena
// executor). A request that fails (bad shape, rejected, shed, shutdown)
// fulfills its future with an exception — ServerRejected for admission
// failures — and never disturbs its batch neighbours.
//
// Shutdown: shutdown() (and the destructor) stops admission, flushes every
// queue ignoring batching deadlines, waits for in-flight work, then joins
// the threads — no submitted request is ever silently dropped. drain()
// does the same flush-and-wait while keeping the server accepting.
//
// docs/serving.md documents the semantics precisely (with a tuning
// cookbook); docs/architecture.md places this layer in the full pipeline.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/compressed_network.h"
#include "runtime/server/options.h"
#include "runtime/server/stats.h"

namespace bswp::runtime {

/// Delivered through a request's future when admission control refuses it:
/// a kReject overflow, a kShedOldest eviction, a shutdown-time refusal, a
/// SubmitOptions::deadline that elapsed in queue, or — through the cluster
/// front door — a kFailFast route to an unhealthy shard.
class ServerRejected : public std::runtime_error {
 public:
  enum class Reason { kQueueFull, kShed, kShutdown, kUnhealthy, kDeadlineExpired };
  ServerRejected(Reason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}
  Reason reason() const { return reason_; }

 private:
  Reason reason_;
};

class InferenceServer {
 public:
  /// Starts the scheduler and worker threads immediately (`workers` threads,
  /// or `autoscaler.max_workers` when autoscaling is enabled — scaling only
  /// changes how many are dispatch-eligible). Per-model arena executors are
  /// built lazily, the first time a worker serves that model.
  explicit InferenceServer(const ServerOptions& options = ServerOptions{});
  /// shutdown(): drains every accepted request, then joins the threads.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Register a compiled network under `model_id` with the server-default
  /// (or an explicit) batching/queue/weight config. `net` is borrowed and
  /// must outlive the server. Throws std::invalid_argument on a duplicate
  /// id. Models may be registered while the server is running.
  void register_model(const std::string& model_id, const CompiledNetwork& net);
  void register_model(const std::string& model_id, const CompiledNetwork& net,
                      const ModelConfig& config);

  /// Submit one request. Returns immediately (kBlock: after space frees)
  /// with a future for the quantized logits. RequestClass::kHigh requests
  /// dispatch before queued kNormal requests of the same model and are shed
  /// last. Throws std::invalid_argument for an unknown model id; admission
  /// failures are delivered through the future as ServerRejected. Safe from
  /// any number of threads.
  std::future<QTensor> submit(const std::string& model_id, Tensor image,
                              RequestClass cls = RequestClass::kNormal);
  /// Submit with the full per-request option set: priority class plus an
  /// optional session-affinity key (sticky worker placement for stateful
  /// sequences) and an optional queue-residency deadline (expired requests
  /// fail with ServerRejected::Reason::kDeadlineExpired before reaching a
  /// worker). See SubmitOptions for the exact semantics of each knob.
  std::future<QTensor> submit(const std::string& model_id, Tensor image,
                              const SubmitOptions& options);

  /// Drop the sticky-worker mapping for `affinity_key` on `model_id` (no-op
  /// for an unknown key). Session close/expiry calls this so a recycled key
  /// starts cold instead of chasing a stale worker.
  void forget_affinity(const std::string& model_id, std::uint64_t affinity_key);

  /// Flush every queued request (batching deadlines ignored) and wait until
  /// the server is momentarily idle: queues empty, no batch in flight.
  /// Concurrent submits are still accepted and extend the wait.
  void drain();

  /// Stop admission, drain, and join all threads. Idempotent; called by the
  /// destructor. Requests blocked in a kBlock submit are rejected.
  void shutdown();

  /// Aggregate + per-model snapshot (registration order). Percentiles are
  /// computed outside the server lock — polling stats() does not stall
  /// submit/dispatch for the sort.
  ServerStats stats() const;
  ModelStats model_stats(const std::string& model_id) const;
  /// Zero every admission/dispatch/affinity counter, batch histogram,
  /// latency window and autoscaler event counter (e.g. after warm-up,
  /// before a measured run); peak_workers restarts from the current live
  /// count. Queued/in-flight requests are unaffected and will count against
  /// the fresh counters on completion. The live worker count itself is
  /// not changed.
  void reset_stats();

  /// Live (dispatch-eligible) workers right now; moves between
  /// autoscaler.min_workers/max_workers when autoscaling is enabled.
  int worker_count() const;
  std::vector<std::string> model_ids() const;
  /// False once shutdown() has begun: every subsequent submit is rejected.
  /// The cluster front door (runtime/frontdoor/) polls this to route around
  /// a stopped shard without burning a request to find out.
  bool accepting() const;
  /// Queued requests across all models right now — a cheap load signal for
  /// routing tiers (no latency-window copy, unlike stats()).
  std::size_t queued_total() const;

 private:
  struct Request;
  struct ModelState;
  struct BatchTask;
  struct WorkerState;

  void scheduler_main();
  void worker_main(int wid);
  /// Policy-aware model selection: the ready model the scheduler should
  /// dispatch next, or null. Fills `next_deadline` with the earliest
  /// batching OR request deadline among queued requests. Expired-deadline
  /// requests are purged (futures failed) as a side effect. Lock held.
  ModelState* select_model_locked(std::chrono::steady_clock::time_point now,
                                  std::chrono::steady_clock::time_point* next_deadline);
  /// Purge requests whose SubmitOptions::deadline is unmeetable: elapsed in
  /// queue, or — under execution_aware_deadlines — with less slack left
  /// than the model's (calibrated) execution estimate, so dispatching them
  /// would only waste a worker. Fails their futures with kDeadlineExpired.
  /// Feeds the earliest surviving effective deadline (deadline minus the
  /// execution estimate) into `next_deadline`. Lock held.
  void expire_deadlines_locked(ModelState& m, std::chrono::steady_clock::time_point now,
                               std::chrono::steady_clock::time_point* next_deadline);
  /// The model's calibrated whole-network execution estimate, as a clock
  /// duration (zero when unavailable or execution-aware deadlines are off).
  /// Lock held (reads the calibration EWMA).
  std::chrono::steady_clock::duration exec_estimate_locked(const ModelState& m) const;
  /// Free live worker for `m`, preferring (1) the sticky worker of the next
  /// request's affinity key, (2) a warm executor (affinity hit); -1 when
  /// every live worker is occupied. Lock held.
  int select_worker_locked(const ModelState& m, bool* hit, bool* session_hit) const;
  /// Pop up to max_batch requests from `m` (kHigh first) into worker
  /// `wid`'s dispatch slot; records keyed requests' sticky workers. Lock
  /// held.
  void dispatch_locked(ModelState& m, int wid, bool affinity_hit, bool session_hit);
  /// One autoscaler evaluation: maybe move live_workers_ by one. Lock held.
  void autoscale_locked(std::chrono::steady_clock::time_point now);
  bool queues_empty_locked() const;
  bool workers_quiescent_locked() const;  // no pending slot, none busy
  /// Everything except the latency summary, which the caller computes from
  /// the copied-out sample window after releasing mu_.
  ModelStats snapshot_locked(const ModelState& m) const;

  ServerOptions options_;
  /// Resolved time source: options_.clock, or the process steady clock.
  /// Every timed decision and latency stamp reads through this.
  const Clock* clock_ = nullptr;

  std::mutex lifecycle_mu_;  // serializes shutdown()/destructor
  mutable std::mutex mu_;    // queues, dispatch, counters, lifecycle
  // Latency sample windows live behind their own lock so a stats() poll
  // copying them (up to latency_window doubles per model) never blocks
  // submit or the scheduler on mu_. Discipline: stats_mu_ is NEVER held
  // together with mu_ — every path takes them sequentially.
  mutable std::mutex stats_mu_;
  std::condition_variable sched_cv_;  // scheduler: arrivals, freed workers
  std::condition_variable space_cv_;  // kBlock submitters: queue space
  std::condition_variable idle_cv_;   // drain/shutdown: server went idle

  // Registration order drives the round-robin cursor; lookup is a linear
  // scan, which is fine for the handful of models a server realistically
  // hosts. ModelState addresses are stable (unique_ptr) — workers key
  // executor caches and in-flight batches by pointer.
  std::vector<std::unique_ptr<ModelState>> models_;
  std::size_t rr_ = 0;  // scan cursor into models_ (both policies)

  // One state per worker thread; index == thread id. Each has its own
  // dispatch slot and condition variable, so the scheduler wakes exactly
  // the worker it placed a batch on.
  std::vector<std::unique_ptr<WorkerState>> worker_state_;
  int live_workers_ = 0;   // workers [0, live_workers_) are dispatch-eligible
  int peak_workers_ = 0;   // high-water mark of live_workers_
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  std::uint64_t autoscale_evals_ = 0;
  std::uint64_t evicted_executors_ = 0;  // executors dropped by eviction
  int up_streak_ = 0;      // consecutive pressure evaluations (hysteresis)
  int down_streak_ = 0;    // consecutive idle evaluations (hysteresis)
  std::chrono::steady_clock::time_point last_scale_;
  std::chrono::steady_clock::time_point next_eval_;
  // Server-wide EWMA of end-to-end request latency (µs), the autoscaler's
  // optional latency signal. Updated by workers under mu_ (cheap), unlike
  // the percentile windows behind stats_mu_.
  double lat_ewma_us_ = 0.0;
  bool lat_ewma_valid_ = false;

  int busy_workers_ = 0;
  bool accepting_ = true;
  bool flush_ = false;        // drain/shutdown: ignore batching deadlines
  int drain_waiters_ = 0;     // flush_ stays set while any drain() waits
  bool stop_threads_ = false;
  bool joined_ = false;

  LatencyRecorder global_latency_;       // across models, guarded by stats_mu_
  LatencyRecorder global_exec_latency_;  // executor time only, guarded by stats_mu_

  std::thread scheduler_;
  std::vector<std::thread> workers_;
};

}  // namespace bswp::runtime
