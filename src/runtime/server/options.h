// Configuration for the async inference server: how batches are formed and
// what happens when a model's request queue is full.
#pragma once

#include <chrono>
#include <cstddef>

namespace bswp::runtime {

/// When the scheduler closes a batch for one model. A batch dispatches as
/// soon as `max_batch` requests are queued, or when the oldest queued request
/// has waited `max_delay` (whichever comes first), so light traffic pays at
/// most `max_delay` of batching latency and heavy traffic runs full batches.
struct BatchingPolicy {
  int max_batch = 8;
  std::chrono::microseconds max_delay{2000};
};

/// What submit() does when a model's bounded queue is full.
enum class QueuePolicy {
  kBlock,      // block the submitting thread until space frees (closed loop)
  kReject,     // fail the new request's future with ServerRejected
  kShedOldest, // fail the oldest queued request's future, admit the new one
};

/// Bounded per-model admission queue. Only requests waiting to be batched
/// count against `capacity`; dispatched batches are bounded separately by
/// the worker count (the scheduler never dispatches more batches than there
/// are free workers, so a saturated server backs requests up here).
struct QueueOptions {
  std::size_t capacity = 256;
  QueuePolicy policy = QueuePolicy::kBlock;
};

/// Per-model overrides (a latency-critical model can run a shorter deadline
/// and a shed-oldest queue next to a throughput model that blocks).
struct ModelConfig {
  BatchingPolicy batching;
  QueueOptions queue;
};

struct ServerOptions {
  /// Worker threads shared by every registered model. Each worker lazily
  /// builds one arena Executor per model it actually serves.
  int workers = 2;
  /// Defaults for models registered without an explicit ModelConfig.
  BatchingPolicy batching;
  QueueOptions queue;
  /// Retained end-to-end latency samples per model (ring window; 0 keeps
  /// every sample — fine for tests, unbounded for a long-running server).
  std::size_t latency_window = 1 << 16;
};

}  // namespace bswp::runtime
