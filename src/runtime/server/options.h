// Configuration for the async inference server: how batches are formed, how
// dispatch slots are shared between models (priority), what happens when a
// model's request queue is full (backpressure), and how the live worker count
// tracks load (autoscaling).
//
// Every option here has a stated default and a stated interaction with its
// neighbours; docs/serving.md is the prose companion (semantics + tuning
// cookbook) and scripts/check_docs.sh keeps the two in sync with the tree.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "runtime/clock.h"

namespace bswp::runtime {

/// When the scheduler closes a batch for one model. A batch dispatches as
/// soon as `max_batch` requests are queued, or when the oldest queued request
/// has waited `max_delay` (whichever comes first), so light traffic pays at
/// most `max_delay` of batching latency and heavy traffic runs full batches.
struct BatchingPolicy {
  /// Largest batch the scheduler will form (default 8, must be >= 1). Also
  /// the per-dispatch quantum of the weighted scheduler: a model with
  /// priority weight w may dispatch up to w batches of up to `max_batch`
  /// requests per scheduling cycle.
  int max_batch = 8;
  /// Longest the oldest queued request may wait before a partial batch is
  /// forced out (default 2 ms; 0 dispatches immediately, trading batch size
  /// for latency). Ignored while drain()/shutdown() are flushing.
  std::chrono::microseconds max_delay{2000};
};

/// What submit() does when a model's bounded queue is full.
enum class QueuePolicy {
  kBlock,      // block the submitting thread until space frees (closed loop)
  kReject,     // fail the new request's future with ServerRejected
  kShedOldest, // fail the oldest queued request's future, admit the new one
};

/// Bounded per-model admission queue. Only requests waiting to be batched
/// count against `capacity`; dispatched batches are bounded separately by
/// the live worker count (the scheduler never hands out more batches than
/// there are free workers, so a saturated server backs requests up here).
struct QueueOptions {
  /// Queue slots, in requests (default 256, must be >= 1).
  std::size_t capacity = 256;
  /// Full-queue behavior (default kBlock). With kShedOldest, normal-class
  /// requests are evicted before high-class ones (see RequestClass).
  QueuePolicy policy = QueuePolicy::kBlock;
};

/// How the scheduler divides batch slots between models that are ready to
/// dispatch at the same time.
enum class SchedulePolicy {
  /// One batch per ready model per turn, in registration order. Every model
  /// gets an equal share of dispatch slots regardless of its traffic, so a
  /// hot model queues behind its own backlog while cold models idle.
  kRoundRobin,
  /// Weighted deficit round-robin over `ModelConfig::weight` (the default).
  /// Each scheduling cycle grants every model `weight` batch credits; ready
  /// models spend one credit per dispatched batch and the cycle ends when no
  /// ready model has credits left, so sustained dispatch shares converge to
  /// weight_i / sum(weights). Unused credits do not accumulate across cycles
  /// (no banked bursts), and every model with a non-empty queue receives
  /// credits every cycle — a weight-1 model can be slowed but never starved.
  /// With all weights equal (the default) this degenerates to fair
  /// round-robin.
  kWeightedDeficit,
};

/// Per-request priority class, within one model's queue.
enum class RequestClass {
  kNormal,  // FIFO order (default)
  /// Dispatched before every queued kNormal request of the same model (FIFO
  /// among kHigh). Under QueuePolicy::kShedOldest, kNormal requests are
  /// evicted first; when no kNormal request is queued, the oldest kHigh
  /// request is shed. Cross-model ordering is the scheduler's business
  /// (SchedulePolicy / ModelConfig::weight), not RequestClass's.
  kHigh,
};

/// Per-request submission knobs beyond the RequestClass: the session-serving
/// layer (runtime/sessions/) is the primary client, but any caller may use
/// them. Defaults reproduce the plain submit(model, image, cls) behavior.
struct SubmitOptions {
  /// Priority class within the model's queue (see RequestClass).
  RequestClass cls = RequestClass::kNormal;
  /// Session-affinity key (0 = none). Requests sharing a non-zero key are
  /// preferentially dispatched to the worker that last served that key for
  /// this model, keeping a stateful session's warm arena executor (and the
  /// CPU cache lines its weights occupy) on one worker across the sequential
  /// decode steps of a generation. A plain warm worker is the fallback; the
  /// scheduler never *waits* for the preferred worker — a busy preferred
  /// worker costs a session-affinity miss, not latency. Forget keys with
  /// InferenceServer::forget_affinity when the session closes.
  std::uint64_t affinity_key = 0;
  /// Completion deadline measured from admission (0 = none). A request
  /// still queued when its deadline elapses is purged by the scheduler and
  /// its future fails with ServerRejected::Reason::kDeadlineExpired — it
  /// never reaches a worker. Under ServerOptions::execution_aware_deadlines
  /// (the default) the deadline bounds *completion*, not just queueing: the
  /// scheduler purges a request as soon as its remaining slack no longer
  /// covers the model's estimated execution time (refuse-to-dispatch), and
  /// a dispatched batch whose every member's SLO has become unreachable is
  /// shed at the next layer boundary mid-run — those futures fail with the
  /// same kDeadlineExpired, and no partial result is ever observable. With
  /// execution_aware_deadlines = false the deadline bounds queue residency
  /// only and dispatched work always runs to completion (the pre-SLO
  /// behavior, kept for ablation — bench/bench_server.cpp measures the
  /// attainment gap).
  std::chrono::microseconds deadline{0};
};

/// Admission-driven autoscaling of the worker pool. Disabled by default:
/// the pool stays at `ServerOptions::workers`. When enabled, the scheduler
/// re-evaluates the live worker count every `interval` and grows/shrinks it
/// one worker at a time between `min_workers` and `max_workers`:
///
///   grow   when total queued requests exceed `up_queue_per_worker` per live
///          worker (or the end-to-end latency EWMA exceeds `up_latency_us`,
///          when set) for `up_consecutive` consecutive evaluations;
///   shrink when the queues are empty and at least one live worker is idle
///          for `down_consecutive` consecutive evaluations.
///
/// `cooldown` must elapse between any two scale events. The consecutive-
/// evaluation streaks plus the cooldown are the hysteresis: a load spike
/// shorter than `up_consecutive * interval` does not grow the pool, and a
/// step change settles at a stable count instead of oscillating (a grow
/// event resets the shrink streak and vice versa). Scale events and the
/// current/peak live count are observable in ServerStats.
struct AutoscalerOptions {
  /// Default false: worker count is fixed at ServerOptions::workers.
  bool enabled = false;
  /// Live-worker bounds (defaults 1 and 4; 1 <= min_workers <= max_workers).
  /// The server spawns `max_workers` threads up front — scaling changes how
  /// many are eligible for dispatch, never thread creation, so a grow event
  /// adds capacity immediately. A descaled ("parked") worker keeps its warm
  /// executors and is preferred again by affinity when rescaled.
  int min_workers = 1;
  int max_workers = 4;
  /// Evaluation cadence (default 5 ms, must be > 0). The scheduler wakes at
  /// least this often while autoscaling is enabled, even when idle.
  std::chrono::microseconds interval{5000};
  /// Grow when total queued requests > up_queue_per_worker * live workers
  /// (default 4.0, must be > 0). Think of it as "how many requests deep may
  /// the backlog get, per worker, before it buys another worker".
  double up_queue_per_worker = 4.0;
  /// Optional latency signal (microseconds; default 0 = disabled): also grow
  /// when the server-wide EWMA of end-to-end request latency (queueing
  /// included) exceeds this. Use it to scale on slow requests even when the
  /// queue-depth signal is quiet (shallow but expensive queues). Considered
  /// only while requests are queued — the EWMA freezes when traffic stops,
  /// and a stale reading must not hold an idle pool above min_workers.
  double up_latency_us = 0.0;
  /// Hysteresis streaks (defaults 2 and 4 evaluations, each >= 1). Shrink is
  /// deliberately slower than grow: adding a worker under pressure is cheap,
  /// while removing one too eagerly re-queues the next burst.
  int up_consecutive = 2;
  int down_consecutive = 4;
  /// Minimum gap between two scale events (default 20 ms, >= 0).
  std::chrono::microseconds cooldown{20000};
  /// Executor-cache eviction on parked workers (0 = never evict, the
  /// default). A worker left dispatch-ineligible ("parked") whose last
  /// batch completed more than `evict_after` ago drops its warm arena
  /// Executors — from a parked worker's point of view every model is cold,
  /// and its arenas are pure memory cost until a scale-up. Evicted
  /// executors rebuild lazily on the next dispatch (an affinity miss, never
  /// an error; logits are bit-identical after a re-warm). Counted in
  /// ServerStats::evicted_executors; resident bytes are
  /// ServerStats::warm_bytes.
  std::chrono::microseconds evict_after{0};
  /// Server-wide warm-arena budget in bytes (0 = unbounded). When the total
  /// arena bytes held by worker executor caches exceeds this, parked
  /// workers' caches are evicted oldest-idle-first until the total is back
  /// under budget. Live workers' caches are never evicted — the budget
  /// bounds parked memory, it does not starve dispatch.
  std::size_t max_warm_bytes = 0;
};

/// Per-model configuration (defaults come from ServerOptions; a latency-
/// critical model can run a shorter deadline, a shed-oldest queue and a
/// higher weight next to a throughput model that blocks).
struct ModelConfig {
  BatchingPolicy batching;
  QueueOptions queue;
  /// Relative dispatch share under SchedulePolicy::kWeightedDeficit
  /// (default 1, must be >= 1): batch credits granted per scheduling cycle.
  /// A weight-8 model next to three weight-1 models receives up to 8 of
  /// every 11 batch slots under saturation. Ignored by kRoundRobin.
  int weight = 1;
};

struct ServerOptions {
  /// Execute each formed batch as ONE batched executor call
  /// (Executor::run_batch_view) instead of a per-request loop (default
  /// true). Workers build their arena executors with
  /// BatchingPolicy::max_batch activation slots, every request's input shape
  /// is validated before the batch forms (a bad request fails its own future
  /// and never enters the batched call), and a batched call that throws
  /// falls back to per-image execution — logits are bit-identical either
  /// way, so this trades nothing but wall-clock. Disable only for ablations
  /// against the per-request dispatch loop.
  bool batched_execution = true;
  /// Worker threads shared by every registered model (default 2, >= 1).
  /// Each worker lazily builds one arena Executor per model it actually
  /// serves, and the scheduler prefers placing a model on a worker that
  /// already holds its executor (see ModelStats affinity counters). With
  /// the autoscaler enabled this is the *initial* live count, clamped into
  /// [min_workers, max_workers].
  int workers = 2;
  /// Cross-model dispatch order (default kWeightedDeficit, which equals
  /// fair round-robin until a ModelConfig::weight is raised above 1).
  SchedulePolicy schedule = SchedulePolicy::kWeightedDeficit;
  /// Defaults for models registered without an explicit ModelConfig.
  BatchingPolicy batching;
  QueueOptions queue;
  /// Worker-pool autoscaling (default disabled — fixed `workers`).
  AutoscalerOptions autoscaler;
  /// Retained end-to-end latency samples per model (ring window; default
  /// 65536; 0 keeps every sample — fine for tests, unbounded for a
  /// long-running server).
  std::size_t latency_window = 1 << 16;
  /// Execution-aware SLO enforcement for SubmitOptions::deadline (default
  /// true). The server derives a per-layer execution-time estimate for each
  /// registered model from a one-time per-layer CostCounter capture priced
  /// with sim::host_profile() (calibrated against measured executor time as
  /// batches complete), then (a) refuses to dispatch a request whose
  /// remaining slack no longer covers its estimated execution — purged with
  /// kDeadlineExpired before wasting a worker — and (b) arms a CancelToken
  /// on every dispatched batch so in-flight work is shed at the next layer
  /// boundary once no member's SLO is reachable. false restores queue-
  /// residency-only deadlines (dispatched work runs to completion) for
  /// ablation.
  bool execution_aware_deadlines = true;
  /// Time source for every timed decision (batching windows, deadlines,
  /// autoscaler cadence, latency stamps). Null (the default) means the
  /// process steady clock; tests inject a runtime::ManualClock to make
  /// timing deterministic. Borrowed — must outlive the server.
  const Clock* clock = nullptr;
};

}  // namespace bswp::runtime
