// Observable server state: admission counters, queue depth, batch-size
// histogram and end-to-end latency (queueing included), per model and
// aggregated. Snapshots are plain value types taken under the server lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/latency_recorder.h"

namespace bswp::runtime {

/// What happened to every request at and after admission. Every submitted
/// request ends in exactly one of {rejected, shed, completed, failed};
/// accepted counts admissions, so on an idle server
/// accepted == completed + failed + shed.
struct AdmissionCounters {
  std::uint64_t accepted = 0;   // admitted into the model's queue
  std::uint64_t rejected = 0;   // refused at submit (kReject overflow/shutdown)
  std::uint64_t shed = 0;       // evicted from the queue (kShedOldest overflow)
  std::uint64_t completed = 0;  // future fulfilled with logits
  std::uint64_t failed = 0;     // future fulfilled with an error
};

struct ModelStats {
  std::string model;
  AdmissionCounters admission;
  std::size_t queue_depth = 0;  // requests waiting to be batched (snapshot)
  std::uint64_t batches = 0;    // batches dispatched
  double mean_batch_size = 0.0;
  /// batch_size_hist[k] = batches dispatched with exactly k requests
  /// (index 0 unused; sized to the largest batch seen).
  std::vector<std::uint64_t> batch_size_hist;
  /// End-to-end latency, submit() to future fulfillment — queueing and
  /// batching delay included (most recent `latency_window` samples).
  LatencySummary latency;
};

struct ServerStats {
  AdmissionCounters admission;  // totals across models
  std::size_t queue_depth = 0;
  std::uint64_t batches = 0;
  double mean_batch_size = 0.0;
  std::vector<std::uint64_t> batch_size_hist;
  LatencySummary latency;  // across all models (shared window)
  std::vector<ModelStats> models;  // registration order
};

}  // namespace bswp::runtime
