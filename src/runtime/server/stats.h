// Observable server state: admission counters, queue depth, batch-size
// histogram, dispatch share, worker-affinity hits, autoscaler state and
// end-to-end latency (queueing included), per model and aggregated.
// Snapshots are plain value types taken under the server lock.
//
// Units, once and for all (docs/serving.md repeats this table in prose):
//   * every AdmissionCounters field and `dispatched` count REQUESTS;
//   * `batches`, `batch_size_hist`, and the affinity counters count BATCHES
//     (one dispatch of 1..max_batch requests to one worker);
//   * every latency field is MICROSECONDS (the `_us` suffix is load-bearing);
//   * `queue_depth` is an instantaneous request count, not a rate;
//   * worker counts are live (dispatch-eligible) workers, not threads;
//   * `evicted_executors` counts EXECUTORS (one warm arena dropped from one
//     worker's cache); `warm_bytes` is an instantaneous BYTE count of the
//     arena memory those caches currently hold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/latency_recorder.h"

namespace bswp::runtime {

/// What happened to every request at and after admission; all five fields
/// count requests. Every submitted request ends in exactly one of
/// {rejected, shed, completed, failed}; `accepted` counts admissions, so on
/// an idle (drained) server accepted == completed + failed + shed.
struct AdmissionCounters {
  std::uint64_t accepted = 0;   // requests admitted into the model's queue
  std::uint64_t rejected = 0;   // requests refused at submit (kReject overflow
                                // or shutdown) — never entered the queue
  std::uint64_t shed = 0;       // requests evicted from the queue after
                                // admission (kShedOldest overflow, or a
                                // SubmitOptions::deadline expiring in queue —
                                // the latter also counted in
                                // ModelStats::deadline_expired)
  std::uint64_t completed = 0;  // futures fulfilled with logits
  std::uint64_t failed = 0;     // futures fulfilled with an error (bad input,
                                // executor failure) — shed is counted in
                                // `shed`, not here
};

struct ModelStats {
  std::string model;
  AdmissionCounters admission;
  /// Requests currently waiting to be batched (instantaneous snapshot;
  /// excludes requests already dispatched to a worker).
  std::size_t queue_depth = 0;
  /// Batches dispatched to workers since start/reset_stats().
  std::uint64_t batches = 0;
  /// Requests dispatched to workers (sum of batch sizes); >= completed +
  /// failed while batches are in flight.
  std::uint64_t dispatched = 0;
  /// This model's fraction of all dispatched requests across the server
  /// (0 when nothing has been dispatched). Under saturation and
  /// SchedulePolicy::kWeightedDeficit this converges toward
  /// weight / sum(weights) — compare it against `weight` to see whether a
  /// model is getting its configured share.
  double dispatch_share = 0.0;
  /// ModelConfig::weight echo, so dashboards can plot share vs. weight.
  int weight = 1;
  /// Batches placed on a worker that already held this model's warm arena
  /// Executor (hit) vs. one that had to build it (miss);
  /// affinity_hits + affinity_misses == batches. A low hit rate on a hot
  /// model means its executors are being rebuilt instead of staying
  /// cache-resident (e.g. more models than workers churning).
  std::uint64_t affinity_hits = 0;
  std::uint64_t affinity_misses = 0;
  /// Batches that carried a SubmitOptions::affinity_key and landed on (hit)
  /// vs. off (miss) the worker that last served that key; batches without a
  /// key count in neither. A session-affinity hit implies the session's
  /// warm state executor was reused in place — the signal the session layer
  /// surfaces as its affinity hit rate.
  std::uint64_t session_affinity_hits = 0;
  std::uint64_t session_affinity_misses = 0;
  /// Requests purged from the queue because their SubmitOptions::deadline
  /// elapsed before dispatch (also included in admission.shed).
  std::uint64_t deadline_expired = 0;
  /// Requests per dispatched batch: dispatched / batches (0 before the
  /// first batch).
  double mean_batch_size = 0.0;
  /// batch_size_hist[k] = batches dispatched with exactly k requests
  /// (index 0 unused; sized to the largest batch seen).
  std::vector<std::uint64_t> batch_size_hist;
  /// End-to-end latency in microseconds, submit() to future fulfillment —
  /// queueing and batching delay included (most recent
  /// ServerOptions::latency_window samples).
  LatencySummary latency;
  /// Execute-time latency in MICROSECONDS, exclusive of queueing and
  /// batching delay: the wall time of the executor call that produced each
  /// request's logits. Under batched dispatch the whole batch runs as one
  /// executor call and every request in it records batch wall time / batch
  /// size, so `latency` - `exec_latency` is the serving overhead (queueing +
  /// batch formation). Requests that fail before or during execution record
  /// no sample: count tracks completed requests, not dispatched ones.
  LatencySummary exec_latency;
};

/// The session-serving layer's slice of ServerStats (tokens, not requests —
/// one generated token is one decode-step request through submit()). Filled
/// by runtime/sessions/SessionManager::stats(); zero-valued on a server with
/// no session layer attached. Latency fields are MICROSECONDS per token,
/// end-to-end (queueing + execution + state splice).
struct SessionServingStats {
  std::uint64_t opened = 0;        // sessions opened since start
  std::uint64_t closed = 0;        // sessions closed explicitly
  std::uint64_t expired = 0;       // sessions closed by idle-TTL expiry
  std::size_t active_sessions = 0; // open right now (snapshot)
  std::size_t peak_sessions = 0;   // high-water mark of active_sessions
  std::uint64_t tokens = 0;        // generated tokens (prompt prefill excluded)
  std::uint64_t generations = 0;   // generate() calls that ran to completion
  std::uint64_t cancelled = 0;     // generate() calls stopped by close/shutdown
  std::uint64_t deadline_misses = 0;  // per-token deadline expiries (each
                                      // retried without a deadline, so a miss
                                      // costs latency, never a token)
  /// Generated tokens per wall-clock second, summed over completed decode
  /// loops (prefill steps excluded from both numerator and denominator).
  double tokens_per_s = 0.0;
  /// Per-token end-to-end latency (most recent window).
  LatencySummary token_latency;
  /// Session-affinity hit rate of the decode traffic, from the server's
  /// session_affinity counters: hits / (hits + misses); 0 before any
  /// keyed dispatch.
  double affinity_hit_rate = 0.0;
};

struct ServerStats {
  AdmissionCounters admission;  // request totals across models
  std::size_t queue_depth = 0;  // queued requests across models (snapshot)
  std::uint64_t batches = 0;    // batches dispatched across models
  std::uint64_t dispatched = 0; // requests dispatched across models
  double mean_batch_size = 0.0; // dispatched / batches (0 before any batch)
  std::vector<std::uint64_t> batch_size_hist;  // summed across models
  std::uint64_t affinity_hits = 0;    // batches, summed across models
  std::uint64_t affinity_misses = 0;  // batches, summed across models
  std::uint64_t session_affinity_hits = 0;    // keyed batches, across models
  std::uint64_t session_affinity_misses = 0;  // keyed batches, across models
  std::uint64_t deadline_expired = 0;  // requests, summed across models
  /// Live (dispatch-eligible) workers right now. Fixed at
  /// ServerOptions::workers unless the autoscaler is enabled.
  int current_workers = 0;
  /// High-water mark of current_workers since start/reset_stats().
  int peak_workers = 0;
  /// Autoscaler scale events since start/reset_stats(): each event moves
  /// the live count by exactly one worker, so current_workers equals the
  /// live count at the start of the stats window plus
  /// scale_up_events - scale_down_events (both 0 when the autoscaler is
  /// disabled).
  std::uint64_t scale_up_events = 0;
  std::uint64_t scale_down_events = 0;
  /// Autoscaler evaluations since start/reset_stats() (0 when disabled).
  /// Tests use this to confirm the scheduler observed an advanced manual
  /// clock before asserting what the evaluation did (or did not) change.
  std::uint64_t autoscale_evals = 0;
  /// Warm arena Executors dropped from parked workers' caches by the
  /// AutoscalerOptions eviction policy (evict_after / max_warm_bytes) since
  /// start/reset_stats(). Each eviction is one executor on one worker; the
  /// next dispatch of that model to that worker rebuilds it (an affinity
  /// miss), with bit-identical logits after the re-warm.
  std::uint64_t evicted_executors = 0;
  /// Arena bytes currently held by worker executor caches, across all
  /// workers (instantaneous snapshot) — what the max_warm_bytes budget
  /// bounds.
  std::size_t warm_bytes = 0;
  LatencySummary latency;          // microseconds, across all models
  /// Execute-time latency across all models (see ModelStats::exec_latency).
  LatencySummary exec_latency;
  /// Session-serving rollup (all-zero unless a SessionManager fills it —
  /// bswp::SessionServer::stats() returns the merged snapshot).
  SessionServingStats sessions;
  std::vector<ModelStats> models;  // registration order
};

}  // namespace bswp::runtime
