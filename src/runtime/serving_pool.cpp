#include "runtime/serving_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

namespace bswp::runtime {

namespace {

using WallClock = std::chrono::steady_clock;

double micros_since(WallClock::time_point t0) {
  return std::chrono::duration<double, std::micro>(WallClock::now() - t0).count();
}

}  // namespace

/// One in-flight batch, shared between run() and the workers.
struct ServingPool::Batch {
  std::span<const Tensor> images;
  std::vector<QTensor>* out = nullptr;
  std::vector<double>* lat_us = nullptr;
  int workers = 0;  // participating worker count (ids < workers)

  std::atomic<std::size_t> next{0};   // work-stealing cursor
  std::atomic<bool> failed{false};    // set on first error; stops stealing
  std::exception_ptr error;           // first error (guarded by err_mu)
  std::mutex err_mu;
  int active = 0;  // participating workers still running (guarded by pool mu_)
};

ServingPool::ServingPool(const CompiledNetwork& net, int exec_batch)
    : net_(&net), exec_batch_(exec_batch) {
  check(!net.plans.empty(), "ServingPool: empty network");
  check(exec_batch >= 1, "ServingPool: exec_batch must be >= 1");
}

ServingPool::~ServingPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ServingPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void ServingPool::ensure_workers(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < n) {
    const int id = static_cast<int>(threads_.size());
    threads_.emplace_back([this, id] { worker_main(id); });
  }
}

void ServingPool::worker_main(int id) {
  // The worker's executor is built lazily on its first batch and reused for
  // the life of the pool: the arena stays warm across batches.
  std::unique_ptr<Executor> exec;
  std::uint64_t seen = 0;
  for (;;) {
    Batch* b = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || (batch_ != nullptr && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      if (id >= batch_->workers) continue;  // this batch wants fewer workers
      b = batch_;
    }

    if (exec == nullptr) {
      try {
        exec = std::make_unique<Executor>(*net_, exec_batch_);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(b->err_mu);
          if (!b->error) b->error = std::current_exception();
        }
        b->failed.store(true, std::memory_order_release);
      }
    }

    if (exec != nullptr) {
      // Chunked steal loop: each steal claims up to exec_batch_ contiguous
      // images and runs them as ONE batched executor call (bit-identical to
      // per-image execution). Checking the failure flag here (not just the
      // cursor) is the early-exit contract: once any chunk fails, no worker
      // starts another chunk and the rest of the queue drains unexecuted.
      const auto chunk = static_cast<std::size_t>(exec_batch_);
      while (!b->failed.load(std::memory_order_acquire)) {
        const std::size_t i = b->next.fetch_add(chunk, std::memory_order_relaxed);
        if (i >= b->images.size()) break;
        const std::size_t n = std::min(chunk, b->images.size() - i);
        const WallClock::time_point t0 = WallClock::now();
        try {
          exec->run_batch_view(b->images.subspan(i, n));
          // Per-image latency under batched execution is the amortized share
          // of the chunk's wall time — the quantity a capacity planner needs.
          const double per_image = micros_since(t0) / static_cast<double>(n);
          for (std::size_t k = 0; k < n; ++k) {
            (*b->out)[i + k] = exec->logits_view(static_cast<int>(k)).to_qtensor();
            (*b->lat_us)[i + k] = per_image;
          }
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(b->err_mu);
            if (!b->error) b->error = std::current_exception();
          }
          b->failed.store(true, std::memory_order_release);
        }
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--b->active == 0) done_cv_.notify_all();
    }
  }
}

std::vector<QTensor> ServingPool::run(std::span<const Tensor> images, int n_workers,
                                      BatchStats* stats) {
  check(n_workers >= 1, "ServingPool::run: n_workers must be >= 1");
  std::vector<QTensor> out(images.size());
  // `stats` is only assigned on success (below); a failed batch must not
  // clobber the caller's struct with partial numbers.
  if (images.empty()) {
    if (stats != nullptr) *stats = BatchStats{};
    return out;
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(n_workers), images.size()));
  std::vector<double> lat_us(images.size(), 0.0);
  const WallClock::time_point t_batch = WallClock::now();

  if (workers == 1) {
    // Inline on the caller thread; the sequential executor persists too and
    // serves the batch in exec_batch_-wide batched calls like the workers.
    if (seq_exec_ == nullptr) seq_exec_ = std::make_unique<Executor>(*net_, exec_batch_);
    const auto chunk = static_cast<std::size_t>(exec_batch_);
    for (std::size_t i = 0; i < images.size(); i += chunk) {
      const std::size_t n = std::min(chunk, images.size() - i);
      const WallClock::time_point t0 = WallClock::now();
      seq_exec_->run_batch_view(images.subspan(i, n));
      const double per_image = micros_since(t0) / static_cast<double>(n);
      for (std::size_t k = 0; k < n; ++k) {
        out[i + k] = seq_exec_->logits_view(static_cast<int>(k)).to_qtensor();
        lat_us[i + k] = per_image;
      }
    }
  } else {
    ensure_workers(workers);
    Batch b;
    b.images = images;
    b.out = &out;
    b.lat_us = &lat_us;
    b.workers = workers;
    b.active = workers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_ = &b;
      ++generation_;
    }
    cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return b.active == 0; });
      batch_ = nullptr;
    }
    if (b.error) std::rethrow_exception(b.error);
  }

  if (stats != nullptr) {
    BatchStats s;
    s.images = images.size();
    s.workers = workers;
    s.wall_seconds = std::chrono::duration<double>(WallClock::now() - t_batch).count();
    s.throughput_ips =
        s.wall_seconds > 0.0 ? static_cast<double>(images.size()) / s.wall_seconds : 0.0;
    s.latency = LatencyRecorder::summarize(std::move(lat_us));
    *stats = s;
  }
  return out;
}

}  // namespace bswp::runtime
