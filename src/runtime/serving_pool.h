// Persistent serving pool: long-lived worker threads, one arena Executor
// each, fed work-stealing batches of images.
//
// This is the server-side steady state the ROADMAP asks for: workers are
// created lazily on the first multi-threaded batch and reused across
// batches, so per-worker arenas are warm after the first image and
// steady-state serving performs no per-inference heap allocation inside the
// engine. Results are bit-identical to sequential execution for any worker
// count (the kernels are deterministic integer code and each image is
// independent).
//
// Error semantics: the first exception is recorded, every worker's steal
// loop observes the failure flag and stops taking new images (the remaining
// queue is drained unexecuted), and the error is rethrown to the caller
// after the batch quiesces. A failed batch leaves the caller's `stats`
// untouched — partial latency numbers from an aborted batch are noise.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "runtime/executor.h"
#include "runtime/latency_recorder.h"

namespace bswp::runtime {

/// Latency distribution of one served batch.
struct BatchStats {
  std::size_t images = 0;
  int workers = 0;               // workers that participated (1 = inline)
  double wall_seconds = 0.0;     // batch wall time, submit to last result
  double throughput_ips = 0.0;   // images / wall_seconds
  /// Per-image engine latency (microseconds, nearest-rank percentiles).
  LatencySummary latency;
};

class ServingPool {
 public:
  /// The pool serves exactly one compiled network; `net` is borrowed and
  /// must outlive the pool. No threads are created until a batch needs them.
  /// `exec_batch` is the executor-level batch width (>= 1): workers steal
  /// chunks of up to `exec_batch` images and run each chunk as ONE
  /// Executor::run_batch_view call, so the batched kernel cores amortize
  /// their stationary operands. 1 reproduces the per-image steal loop
  /// exactly. Results are bit-identical for every setting.
  explicit ServingPool(const CompiledNetwork& net, int exec_batch = 8);
  ~ServingPool();

  ServingPool(const ServingPool&) = delete;
  ServingPool& operator=(const ServingPool&) = delete;

  /// Serve one batch on up to `n_workers` persistent workers (grown on
  /// demand, reused afterwards). Batches are serialized: concurrent run()
  /// calls queue on an internal mutex. Throws the first per-image error
  /// after the batch quiesces; `stats` (optional) receives the latency
  /// distribution of a successful batch and is left untouched on failure.
  std::vector<QTensor> run(std::span<const Tensor> images, int n_workers,
                           BatchStats* stats = nullptr);

  /// Worker threads currently alive (grows, never shrinks).
  int worker_count() const;

 private:
  struct Batch;
  void ensure_workers(int n);
  void worker_main(int id);

  const CompiledNetwork* net_;
  int exec_batch_ = 1;  // executor batch width (chunk size of the steal loop)

  std::mutex run_mu_;  // serializes batches

  mutable std::mutex mu_;  // guards batch_, generation_, stop_, threads_
  std::condition_variable cv_;       // workers wait for a batch / shutdown
  std::condition_variable done_cv_;  // run() waits for batch quiescence
  std::vector<std::thread> threads_;
  Batch* batch_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::unique_ptr<Executor> seq_exec_;  // lazy, for single-worker batches
};

}  // namespace bswp::runtime
