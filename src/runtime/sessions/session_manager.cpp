#include "runtime/sessions/session_manager.h"

#include <algorithm>
#include <utility>

namespace bswp::runtime {

// `Clock` here is runtime::Clock (runtime/clock.h); all reads of "now" go
// through the injected clock_ so TTL and decode timing run on a ManualClock
// in tests.

namespace {

double micros_between(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

}  // namespace

SessionManager::SessionManager(InferenceServer& server, const SessionManagerOptions& options)
    : server_(server),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : &steady_clock_ref()),
      token_latency_(options.token_latency_window) {
  check(options_.max_sessions >= 1, "SessionManager: max_sessions must be >= 1");
  check(options_.token_deadline.count() >= 0, "SessionManager: token_deadline must be >= 0");
  check(options_.session_ttl.count() >= 0, "SessionManager: session_ttl must be >= 0");
}

SessionManager::~SessionManager() { shutdown(); }

void SessionManager::register_lm(const std::string& model_id,
                                 const models::TokenLmOptions& lm) {
  const std::vector<std::string> ids = server_.model_ids();
  check(std::find(ids.begin(), ids.end(), model_id) != ids.end(),
        "SessionManager::register_lm: model '" + model_id +
            "' is not registered on the server");
  std::lock_guard<std::mutex> lock(mu_);
  check(!shutdown_, "SessionManager::register_lm: manager is shut down");
  check(lms_.find(model_id) == lms_.end(),
        "SessionManager::register_lm: duplicate LM '" + model_id + "'");
  lms_.emplace(model_id, lm);
}

SessionId SessionManager::open_session(const std::string& model_id) {
  expire_idle();
  std::lock_guard<std::mutex> lock(mu_);
  check(!shutdown_, "SessionManager::open_session: manager is shut down");
  const auto lm = lms_.find(model_id);
  check(lm != lms_.end(),
        "SessionManager::open_session: unknown LM '" + model_id + "'");
  check(sessions_.size() < options_.max_sessions,
        "SessionManager::open_session: max_sessions reached");
  const SessionId id = next_id_++;
  auto rec = std::make_unique<SessionRec>(options_.token_latency_window);
  rec->id = id;
  rec->model = model_id;
  rec->lm = lm->second;
  rec->last_used = clock_->now();
  sessions_.emplace(id, std::move(rec));
  ++opened_;
  peak_sessions_ = std::max(peak_sessions_, sessions_.size());
  return id;
}

SessionManager::SessionRec* SessionManager::find_locked(SessionId id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

const SessionManager::SessionRec* SessionManager::find_locked(SessionId id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void SessionManager::close_session(SessionId id) {
  std::string model;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionRec* rec = find_locked(id);
    check(rec != nullptr, "SessionManager::close_session: unknown session");
    if (rec->generating) {
      // The decode loop observes `closed` at its next token boundary, stops,
      // and finalizes the erase — the session stays visible (and counted
      // active) until its in-flight step has fully unwound.
      rec->closed = true;
      return;
    }
    model = rec->model;
    sessions_.erase(id);
    ++closed_;
  }
  server_.forget_affinity(model, id);
}

bool SessionManager::has_session(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return find_locked(id) != nullptr;
}

int SessionManager::expire_idle() {
  if (options_.session_ttl.count() == 0) return 0;
  const Clock::time_point cutoff = clock_->now() - options_.session_ttl;
  std::vector<std::pair<std::string, SessionId>> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      SessionRec& rec = *it->second;
      if (!rec.generating && !rec.closed && rec.last_used < cutoff) {
        victims.emplace_back(rec.model, rec.id);
        it = sessions_.erase(it);
        ++expired_;
      } else {
        ++it;
      }
    }
  }
  for (const auto& [model, id] : victims) server_.forget_affinity(model, id);
  return static_cast<int>(victims.size());
}

bool SessionManager::step(const std::string& model, SessionId id, const Tensor& input,
                          QTensor* out, std::uint64_t* misses) {
  SubmitOptions so;
  so.cls = options_.token_class;
  so.affinity_key = id;
  so.deadline = options_.token_deadline;
  for (;;) {
    try {
      // The server takes the image by value; keep `input` for the
      // deadline-miss retry.
      *out = server_.submit(model, Tensor(input), so).get();
      return true;
    } catch (const ServerRejected& e) {
      if (e.reason() == ServerRejected::Reason::kDeadlineExpired && so.deadline.count() > 0) {
        // Miss policy: the deadline bounds queueing of the *first* attempt;
        // the retry runs deadline-free so a congested queue costs latency,
        // never a token — the emitted sequence stays deadline-independent.
        ++*misses;
        so.deadline = std::chrono::microseconds{0};
        continue;
      }
      return false;  // shutdown / overflow: stop the generation cleanly
    }
  }
}

GenerationResult SessionManager::generate(SessionId id, const std::vector<int>& prompt,
                                          int max_tokens, const TokenCallback& on_token) {
  check(max_tokens >= 0, "SessionManager::generate: max_tokens must be >= 0");

  std::string model;
  models::TokenLmOptions lm;
  std::vector<float> state;
  std::vector<int> history;
  SessionRec* rec = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    check(!shutdown_, "SessionManager::generate: manager is shut down");
    rec = find_locked(id);
    check(rec != nullptr && !rec->closed, "SessionManager::generate: unknown session");
    check(!rec->generating,
          "SessionManager::generate: a generation is already in progress on this session");
    model = rec->model;
    lm = rec->lm;
    // Validate before marking the generation active: a throw past this
    // point would leak `generating` and deadlock shutdown().
    for (int t : prompt) {
      check(t >= 0 && t < lm.vocab, "SessionManager::generate: prompt token out of range");
    }
    state = rec->state;      // warm continuation point
    history = rec->history;  // cold replay + empty-prompt continuation
    rec->generating = true;
    ++active_generations_;
  }

  // `pending` is the last context token, fed to produce the next emission.
  // history + prompt must be non-empty: a fresh session with an empty prompt
  // has nothing to feed.
  GenerationResult res;
  std::vector<double> lat_us;
  std::uint64_t misses = 0;
  bool aborted = false;
  double decode_seconds = 0.0;

  const auto stop_requested = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_ || rec->closed;
  };

  try {
    check(!prompt.empty() || !history.empty(),
          "SessionManager::generate: empty prompt on a fresh session");
    QTensor out;
    if (options_.warm_state) {
      // Prefill: feed every context token but the last; the last is fed by
      // the first emission step so its logits are not thrown away. The feed
      // starts from the unfed tail of the history — after any earlier
      // generation the warm state reflects history minus its last token, so
      // that token must lead the feed ahead of the new prompt (cold replay
      // feeds it as part of the full history; this is what keeps the two
      // modes bit-identical across multi-call sessions).
      std::vector<int> feed;
      if (!history.empty()) feed.push_back(history.back());
      feed.insert(feed.end(), prompt.begin(), prompt.end());
      history.insert(history.end(), prompt.begin(), prompt.end());
      for (std::size_t i = 0; i + 1 < feed.size(); ++i) {
        if (stop_requested() || !step(model, id, models::token_lm_input(lm, feed[i], &state),
                                      &out, &misses)) {
          aborted = true;
          break;
        }
        models::token_lm_decode(lm, out, &state);
      }
      int pending = feed.back();
      const Clock::time_point decode_t0 = clock_->now();
      for (int n = 0; n < max_tokens && !aborted; ++n) {
        const Clock::time_point t0 = clock_->now();
        if (stop_requested() ||
            !step(model, id, models::token_lm_input(lm, pending, &state), &out, &misses)) {
          aborted = true;
          break;
        }
        const int token = models::token_lm_decode(lm, out, &state);
        const double us = micros_between(t0, clock_->now());
        lat_us.push_back(us);
        res.tokens.push_back(token);
        history.push_back(token);
        pending = token;
        if (on_token) on_token(TokenEvent{n, token, us});
      }
      decode_seconds = micros_between(decode_t0, clock_->now()) / 1e6;
    } else {
      // Cold-resubmit ablation: every emission replays the whole history
      // from the zero state (token n costs |history| + n steps). Same feed
      // sequence, same integer arithmetic, bit-identical tokens — only the
      // per-token cost changes, which is exactly what the warm-vs-cold
      // bench isolates.
      history.insert(history.end(), prompt.begin(), prompt.end());
      const Clock::time_point decode_t0 = clock_->now();
      for (int n = 0; n < max_tokens && !aborted; ++n) {
        const Clock::time_point t0 = clock_->now();
        std::vector<float> cold_state;
        for (std::size_t i = 0; i < history.size() && !aborted; ++i) {
          if (stop_requested() ||
              !step(model, id, models::token_lm_input(lm, history[i], &cold_state), &out,
                    &misses)) {
            aborted = true;
            break;
          }
          models::token_lm_decode(lm, out, &cold_state);
        }
        if (aborted) break;
        const int token = models::token_lm_decode(lm, out, nullptr);
        const double us = micros_between(t0, clock_->now());
        lat_us.push_back(us);
        res.tokens.push_back(token);
        history.push_back(token);
        if (on_token) on_token(TokenEvent{n, token, us});
      }
      decode_seconds = micros_between(decode_t0, clock_->now()) / 1e6;
      state.clear();  // cold sessions never carry warm state
    }
  } catch (...) {
    // Validation failures (bad prompt token, fresh-session empty prompt) and
    // a throwing on_token callback must release the generation slot before
    // propagating — and still finalize a close_session() requested while the
    // generation ran, or the record (rejected by generate(), skipped by
    // expire_idle()) and its server-side sticky entry would leak until a
    // second close_session() call.
    bool erase = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      rec->generating = false;
      if (rec->closed) {
        sessions_.erase(id);
        ++closed_;
        erase = true;
      }
      --active_generations_;
      gen_cv_.notify_all();
    }
    if (erase) server_.forget_affinity(model, id);
    throw;
  }

  res.completed = !aborted;
  res.deadline_misses = misses;
  res.token_latency = LatencyRecorder::summarize(lat_us);
  res.tokens_per_s =
      decode_seconds > 0.0 ? static_cast<double>(res.tokens.size()) / decode_seconds : 0.0;

  bool erase = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rec->generating = false;
    rec->last_used = clock_->now();
    rec->state = std::move(state);
    rec->history = std::move(history);
    rec->tokens += res.tokens.size();
    rec->deadline_misses += misses;
    rec->decode_seconds += decode_seconds;
    for (double us : lat_us) {
      rec->token_latency.record(us);
      token_latency_.record(us);
    }
    total_tokens_ += res.tokens.size();
    deadline_misses_ += misses;
    decode_seconds_ += decode_seconds;
    if (aborted) {
      ++cancelled_;
    } else {
      ++generations_;
    }
    if (rec->closed) {
      sessions_.erase(id);
      ++closed_;
      erase = true;
    }
    --active_generations_;
    gen_cv_.notify_all();
  }
  if (erase) server_.forget_affinity(model, id);
  return res;
}

std::future<GenerationResult> SessionManager::generate_async(SessionId id,
                                                             std::vector<int> prompt,
                                                             int max_tokens,
                                                             TokenCallback on_token) {
  return std::async(std::launch::async,
                    [this, id, prompt = std::move(prompt), max_tokens,
                     on_token = std::move(on_token)] {
                      return generate(id, prompt, max_tokens, on_token);
                    });
}

void SessionManager::shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  // In-flight decode loops observe shutdown_ at their next token boundary
  // (their current step completes through the still-running server, or is
  // rejected if the server shut down first — either way they stop).
  gen_cv_.wait(lock, [&] { return active_generations_ == 0; });
}

SessionServingStats SessionManager::stats() const {
  SessionServingStats s;
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.opened = opened_;
    s.closed = closed_;
    s.expired = expired_;
    s.active_sessions = sessions_.size();
    s.peak_sessions = peak_sessions_;
    s.tokens = total_tokens_;
    s.generations = generations_;
    s.cancelled = cancelled_;
    s.deadline_misses = deadline_misses_;
    s.tokens_per_s = decode_seconds_ > 0.0
                         ? static_cast<double>(total_tokens_) / decode_seconds_
                         : 0.0;
    samples = token_latency_.samples();
  }
  s.token_latency = LatencyRecorder::summarize(std::move(samples));
  // Affinity hit rate of the decode traffic, from the server's keyed-batch
  // counters (cheap per-model snapshots; mu_ is not held).
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::vector<std::string> lm_ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lm_ids.reserve(lms_.size());
    for (const auto& [mid, lm] : lms_) lm_ids.push_back(mid);
  }
  for (const std::string& mid : lm_ids) {
    const ModelStats ms = server_.model_stats(mid);
    hits += ms.session_affinity_hits;
    misses += ms.session_affinity_misses;
  }
  s.affinity_hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / static_cast<double>(hits + misses) : 0.0;
  return s;
}

SessionStats SessionManager::session_stats(SessionId id) const {
  SessionStats s;
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const SessionRec* rec = find_locked(id);
    check(rec != nullptr, "SessionManager::session_stats: unknown session");
    s.id = rec->id;
    s.model = rec->model;
    s.tokens = rec->tokens;
    s.deadline_misses = rec->deadline_misses;
    s.tokens_per_s = rec->decode_seconds > 0.0
                         ? static_cast<double>(rec->tokens) / rec->decode_seconds
                         : 0.0;
    samples = rec->token_latency.samples();
  }
  s.token_latency = LatencyRecorder::summarize(std::move(samples));
  return s;
}

std::size_t SessionManager::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace bswp::runtime
