// Session serving: multi-step stateful token generation on top of the
// async InferenceServer.
//
// The server below this layer is one-shot: a request goes in, logits come
// out, nothing persists. Autoregressive generation is the opposite shape —
// a session's decode steps form a sequential dependency chain (step t+1's
// input contains step t's output state), so steady-state throughput is
// bounded by per-step dispatch latency rather than batch formation. The
// SessionManager owns that chain:
//
//   open_session(model) ──> SessionId, zero recurrent state
//   generate(id, prompt, n) ──> greedy decode loop:
//       token_lm_input(prev token, state)            (models/zoo.h)
//         └─> InferenceServer::submit(model, input,
//               {kHigh, affinity_key = id,           sticky worker keeps the
//                deadline = token_deadline})          session on one executor
//         └─> token_lm_decode(logits ‖ next state)   argmax + state splice
//       per-token callback / collected result
//   close_session(id) / idle-TTL expiry ──> state freed,
//       InferenceServer::forget_affinity(id)
//
// State lives host-side (a float vector per session, state_dim entries) and
// is carried around the compiled network, which stays stateless and
// batchable — concurrent sessions' decode steps can share a server batch.
// The affinity key makes the server prefer the worker that ran the
// session's previous step, so the model's warm arena executor and the
// session's cache lines stay put across the chain (PR-5 warm-executor
// affinity, extended to per-key stickiness).
//
// Determinism: every step is deterministic integer kernel code and the
// decode (argmax + int16 state dequantization) is a pure function of the
// step output, so greedy generation is bit-identical across runs, worker
// counts, scalar-vs-SIMD lanes, and warm-vs-cold serving modes —
// tests/test_sessions.cpp pins this against a golden token fixture.
//
// Per-token deadlines are execution-aware (the server default): a step
// fails with kDeadlineExpired when it is still queued past
// SessionManagerOptions::token_deadline, when its remaining slack drops
// below the server's per-layer execution estimate (refused at dispatch), or
// when in-flight work is shed at a layer boundary. Every such miss is
// retried once without a deadline, so a deadline miss costs latency (and a
// stats increment), never a token — the emitted sequence is
// deadline-independent by construction, under all three failure shapes.
//
// docs/sessions.md is the prose companion (lifecycle, guarantees, tuning).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "models/zoo.h"
#include "runtime/latency_recorder.h"
#include "runtime/server/inference_server.h"

namespace bswp::runtime {

using SessionId = std::uint64_t;

struct SessionManagerOptions {
  /// Per-token deadline forwarded as SubmitOptions::deadline (0 = none);
  /// execution-aware under ServerOptions::execution_aware_deadlines. An
  /// expired or shed step is retried without a deadline: misses are
  /// counted, tokens are never dropped.
  std::chrono::microseconds token_deadline{0};
  /// Idle sessions older than this are closed by expire_idle() (0 = never).
  std::chrono::milliseconds session_ttl{0};
  /// open_session() throws once this many sessions are open.
  std::size_t max_sessions = 1024;
  /// true (default): recurrent state is kept per session and each token is
  /// ONE decode step. false: cold-resubmit ablation — every token recomputes
  /// from the zero state through the full history (the stateless-serving
  /// baseline bench/bench_sessions.cpp compares against). Both modes emit
  /// bit-identical token streams; only the step count differs.
  bool warm_state = true;
  /// Priority class of decode-step requests (default kHigh: a token step on
  /// a latency-sensitive chain should not queue behind bulk one-shot
  /// traffic on the same model).
  RequestClass token_class = RequestClass::kHigh;
  /// Retained per-token latency samples, manager-wide and per session.
  std::size_t token_latency_window = 1 << 14;
  /// Time source for TTL expiry and decode timing (null = the process
  /// steady clock). Borrowed; must outlive the manager. Tests inject a
  /// ManualClock here (usually the same one as ServerOptions::clock) so
  /// idle-TTL assertions never sleep.
  const Clock* clock = nullptr;
};

/// One emitted token, delivered to the generate() callback as it decodes.
struct TokenEvent {
  int index = 0;         // 0-based position in this generation
  int token = 0;         // emitted token id
  double latency_us = 0; // end-to-end step latency (all steps for this
                         // token — cold mode replays the history)
};
using TokenCallback = std::function<void(const TokenEvent&)>;

struct GenerationResult {
  std::vector<int> tokens;
  /// Generated tokens / decode-loop wall time (prefill excluded).
  double tokens_per_s = 0.0;
  /// Per-token end-to-end latency of this generation, microseconds.
  LatencySummary token_latency;
  std::uint64_t deadline_misses = 0;
  /// false when the loop was stopped early by close_session(), shutdown()
  /// (either layer's), or a non-retryable admission failure; `tokens` holds
  /// what was emitted before the stop.
  bool completed = true;
};

/// Per-session slice of the serving stats (lifetime totals for one id).
struct SessionStats {
  SessionId id = 0;
  std::string model;
  std::uint64_t tokens = 0;
  std::uint64_t deadline_misses = 0;
  double tokens_per_s = 0.0;        // lifetime decode throughput
  LatencySummary token_latency;     // microseconds, most recent window
};

/// Serves registered token LMs as stateful sessions over a borrowed
/// InferenceServer (which must outlive the manager). Thread-safe: sessions
/// may be opened, generated on (one generation per session at a time),
/// closed and expired from any threads concurrently.
class SessionManager {
 public:
  explicit SessionManager(InferenceServer& server,
                          const SessionManagerOptions& options = SessionManagerOptions{});
  /// shutdown(): stops in-flight generations at the next token boundary.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Declare `model_id` (already registered on the server) to be a token LM
  /// with this geometry. Throws if the server does not know the model or the
  /// manager already has an LM under this id.
  void register_lm(const std::string& model_id, const models::TokenLmOptions& lm);

  /// Open a session on a registered LM: allocates the zero recurrent state
  /// and returns the id that keys generate/close and the server-side
  /// worker affinity. Throws past max_sessions or after shutdown().
  SessionId open_session(const std::string& model_id);

  /// Close a session and free its state. A generation in flight stops at
  /// its next token boundary and finalizes the close. Unknown ids throw.
  void close_session(SessionId id);
  bool has_session(SessionId id) const;

  /// Greedy-decode up to `max_tokens` tokens after feeding `prompt`,
  /// invoking `on_token` (if set) as each token is emitted. Blocks until
  /// done or stopped; one generation per session at a time (concurrent
  /// generate() on the same id throws std::logic_error). An empty prompt
  /// continues from the session's previous generation (throws on a fresh
  /// session, which has no context yet).
  GenerationResult generate(SessionId id, const std::vector<int>& prompt, int max_tokens,
                            const TokenCallback& on_token = TokenCallback{});
  /// generate() on a background thread; the future carries the result (or
  /// the exception generate() would have thrown).
  std::future<GenerationResult> generate_async(SessionId id, std::vector<int> prompt,
                                               int max_tokens,
                                               TokenCallback on_token = TokenCallback{});

  /// Close every idle session older than session_ttl (no-op when ttl = 0).
  /// Returns how many sessions were expired.
  int expire_idle();

  /// Stop new opens/generations and wait for in-flight decode loops to stop
  /// at their next token boundary. Does NOT shut the server down (the
  /// facade layers ordering: manager first, then server). Idempotent.
  void shutdown();

  /// Manager-wide serving snapshot (the SessionServingStats that
  /// bswp::SessionServer merges into ServerStats::sessions).
  SessionServingStats stats() const;
  SessionStats session_stats(SessionId id) const;
  std::size_t active_sessions() const;

 private:
  struct SessionRec {
    SessionId id = 0;
    std::string model;
    models::TokenLmOptions lm;
    std::vector<float> state;     // warm recurrent state (empty = zero)
    std::vector<int> history;     // every token fed or emitted (cold replay
                                  // + empty-prompt continuation)
    bool generating = false;
    bool closed = false;          // close requested mid-generation
    std::chrono::steady_clock::time_point last_used;
    std::uint64_t tokens = 0;
    std::uint64_t deadline_misses = 0;
    double decode_seconds = 0.0;
    LatencyRecorder token_latency;

    SessionRec(std::size_t window) : token_latency(window) {}
  };

  SessionRec* find_locked(SessionId id);
  const SessionRec* find_locked(SessionId id) const;
  /// One decode step: submit (with affinity key + deadline), wait, return
  /// the raw output. Returns false to abort the generation (shutdown or a
  /// non-retryable rejection); counts deadline misses into `misses`.
  bool step(const std::string& model, SessionId id, const Tensor& input, QTensor* out,
            std::uint64_t* misses);

  InferenceServer& server_;
  SessionManagerOptions options_;
  const Clock* clock_ = nullptr;  // resolved from options_.clock at ctor

  mutable std::mutex mu_;
  std::condition_variable gen_cv_;  // shutdown waits for generations to stop
  std::map<std::string, models::TokenLmOptions> lms_;
  std::map<SessionId, std::unique_ptr<SessionRec>> sessions_;
  SessionId next_id_ = 1;
  bool shutdown_ = false;
  int active_generations_ = 0;

  // Lifetime counters + the manager-wide token latency window (all under
  // mu_ — decode steps record at token cadence, so contention is nil).
  std::uint64_t opened_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t expired_ = 0;
  std::size_t peak_sessions_ = 0;
  std::uint64_t total_tokens_ = 0;
  std::uint64_t generations_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t deadline_misses_ = 0;
  double decode_seconds_ = 0.0;
  LatencyRecorder token_latency_;
};

}  // namespace bswp::runtime
