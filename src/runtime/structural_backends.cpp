// Structural (non-arithmetic) backends: input quantization, flatten, relu.
//
// All three write straight into their arena output view; none needs scratch.
#include <algorithm>
#include <cmath>

#include "quant/quantize.h"
#include "runtime/kernel_backend.h"

namespace bswp::runtime {
namespace {

/// Quantizes the raw float image into the input plan's int8 domain. Rejects
/// anything that is not a single image of exactly the compiled CHW shape —
/// a mismatched image would otherwise be read out of range by the first conv.
class InputBackend : public KernelBackend {
 public:
  const char* name() const override { return "structural/input"; }
  void execute(const ExecContext& ctx) const override {
    check(ctx.image != nullptr, "engine: input plan executed without an image");
    const Tensor& img = *ctx.image;
    int c = 0, h = 0, w = 0;
    if (img.rank() == 3) {
      c = img.dim(0);
      h = img.dim(1);
      w = img.dim(2);
    } else {
      check(img.rank() == 4 && img.dim(0) == 1, "engine: input must be a single CHW image");
      c = img.dim(1);
      h = img.dim(2);
      w = img.dim(3);
    }
    const std::vector<int>& want = ctx.plan.out_chw;
    if (want.size() == 3 && (c != want[0] || h != want[1] || w != want[2])) {
      throw std::invalid_argument(
          "engine: input image shape " + std::to_string(c) + "x" + std::to_string(h) + "x" +
          std::to_string(w) + " does not match the network input " + std::to_string(want[0]) +
          "x" + std::to_string(want[1]) + "x" + std::to_string(want[2]));
    }
    kernels::QView& out = *ctx.out;
    out.set_shape({1, c, h, w});
    out.bits = 8;
    out.is_signed = true;
    out.scale = ctx.plan.out.scale;
    out.zero_point = 0;
    for (std::size_t i = 0; i < img.size(); ++i) {
      out.data[i] = static_cast<int16_t>(
          quant::clamp_q(static_cast<int32_t>(std::lround(img[i] / out.scale)), -128, 127));
    }
  }
};

class FlattenBackend : public KernelBackend {
 public:
  const char* name() const override { return "structural/flatten"; }
  void execute(const ExecContext& ctx) const override {
    const kernels::QView& in = ctx.input(0);
    kernels::QView& out = *ctx.out;
    out.set_shape({1, static_cast<int>(in.size())});
    out.set_meta(in);
    std::copy(in.data, in.data + in.size(), out.data);
  }
};

class ReluBackend : public KernelBackend {
 public:
  const char* name() const override { return "structural/relu"; }
  void execute(const ExecContext& ctx) const override {
    const kernels::QView& in = ctx.input(0);
    kernels::QView& out = *ctx.out;
    out.rank = in.rank;
    for (int i = 0; i < in.rank; ++i) out.shape[i] = in.shape[i];
    out.len = in.len;
    out.set_meta(in);
    const auto zp = static_cast<int16_t>(in.zero_point);
    for (std::size_t i = 0; i < in.size(); ++i) out.data[i] = std::max(in.data[i], zp);
    if (ctx.counter != nullptr) {
      ctx.counter->add(sim::Event::kSramRead, in.size());
      ctx.counter->add(sim::Event::kAlu, in.size());
      ctx.counter->add(sim::Event::kSramWrite, in.size());
    }
  }
};

}  // namespace

namespace detail {

void register_structural_backends(KernelRegistry& r) {
  r.add(PlanKind::kInput, kAnyVariant, std::make_unique<InputBackend>());
  r.add(PlanKind::kFlatten, kAnyVariant, std::make_unique<FlattenBackend>());
  r.add(PlanKind::kRelu, kAnyVariant, std::make_unique<ReluBackend>());
}

}  // namespace detail
}  // namespace bswp::runtime
