// Structural (non-arithmetic) backends: input quantization, flatten, relu.
#include <algorithm>
#include <cmath>

#include "quant/quantize.h"
#include "runtime/kernel_backend.h"

namespace bswp::runtime {
namespace {

/// Quantizes the raw float image into the input plan's int8 domain. Rejects
/// anything that is not a single image of exactly the compiled CHW shape —
/// a mismatched image would otherwise be read out of range by the first conv.
class InputBackend : public KernelBackend {
 public:
  const char* name() const override { return "structural/input"; }
  QTensor execute(const ExecContext& ctx) const override {
    check(ctx.image != nullptr, "engine: input plan executed without an image");
    Tensor img = *ctx.image;
    if (img.rank() == 3) {
      img.reshape({1, img.dim(0), img.dim(1), img.dim(2)});
    }
    check(img.rank() == 4 && img.dim(0) == 1, "engine: input must be a single CHW image");
    const std::vector<int>& want = ctx.plan.out_chw;
    if (want.size() == 3 &&
        (img.dim(1) != want[0] || img.dim(2) != want[1] || img.dim(3) != want[2])) {
      throw std::invalid_argument(
          "engine: input image shape " + std::to_string(img.dim(1)) + "x" +
          std::to_string(img.dim(2)) + "x" + std::to_string(img.dim(3)) +
          " does not match the network input " + std::to_string(want[0]) + "x" +
          std::to_string(want[1]) + "x" + std::to_string(want[2]));
    }
    QTensor q({1, img.dim(1), img.dim(2), img.dim(3)}, 8, /*is_signed=*/true);
    q.scale = ctx.plan.out_scale;
    for (std::size_t i = 0; i < img.size(); ++i) {
      q.data[i] = static_cast<int16_t>(
          quant::clamp_q(static_cast<int32_t>(std::lround(img[i] / q.scale)), -128, 127));
    }
    return q;
  }
};

class FlattenBackend : public KernelBackend {
 public:
  const char* name() const override { return "structural/flatten"; }
  QTensor execute(const ExecContext& ctx) const override {
    QTensor q = ctx.input(0);
    int total = 1;
    for (int d : q.shape) total *= d;
    q.shape = {1, total};
    return q;
  }
};

class ReluBackend : public KernelBackend {
 public:
  const char* name() const override { return "structural/relu"; }
  QTensor execute(const ExecContext& ctx) const override {
    QTensor q = ctx.input(0);
    const auto zp = static_cast<int16_t>(q.zero_point);
    for (auto& v : q.data) v = std::max(v, zp);
    if (ctx.counter != nullptr) {
      ctx.counter->add(sim::Event::kSramRead, q.size());
      ctx.counter->add(sim::Event::kAlu, q.size());
      ctx.counter->add(sim::Event::kSramWrite, q.size());
    }
    return q;
  }
};

}  // namespace

namespace detail {

void register_structural_backends(KernelRegistry& r) {
  r.add(PlanKind::kInput, kAnyVariant, std::make_unique<InputBackend>());
  r.add(PlanKind::kFlatten, kAnyVariant, std::make_unique<FlattenBackend>());
  r.add(PlanKind::kRelu, kAnyVariant, std::make_unique<ReluBackend>());
}

}  // namespace detail
}  // namespace bswp::runtime
