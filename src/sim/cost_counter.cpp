#include "sim/cost_counter.h"

#include <sstream>

namespace bswp::sim {

const char* event_name(Event e) {
  switch (e) {
    case Event::kFlashRandomByte: return "flash_random_byte";
    case Event::kFlashSeqByte: return "flash_seq_byte";
    case Event::kFlashSeqWord: return "flash_seq_word";
    case Event::kSramRead: return "sram_read";
    case Event::kSramWrite: return "sram_write";
    case Event::kMac: return "mac";
    case Event::kAlu: return "alu";
    case Event::kBranch: return "branch";
    case Event::kRequant: return "requant";
    case Event::kCount: return "?";
  }
  return "?";
}

std::string CostCounter::summary() const {
  std::ostringstream os;
  for (int i = 0; i < kNumEvents; ++i) {
    const Event e = static_cast<Event>(i);
    if (count(e) > 0) os << event_name(e) << "=" << count(e) << " ";
  }
  return os.str();
}

}  // namespace bswp::sim
