// Event-count instrumentation for microcontroller-style kernels.
//
// Every kernel in bswp::kernels is functionally real integer code that also
// tallies typed memory/compute events as it executes. An McuProfile converts
// the tally into cycles and seconds. Counting is separated from costing so
// tests can assert closed-form event counts independent of any calibration
// constants (DESIGN.md §6).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace bswp::sim {

enum class Event : int {
  kFlashRandomByte = 0,  // isolated byte load from flash (wait-stated)
  kFlashSeqByte,         // sequential byte stream from flash (prefetch helps)
  kFlashSeqWord,         // sequential 32-bit stream from flash (LUT block copy)
  kSramRead,
  kSramWrite,
  kMac,                  // multiply-accumulate
  kAlu,                  // shift / mask / add / address arithmetic
  kBranch,               // loop / branch overhead
  kRequant,              // per-output-element requantization (scale+clamp)
  kCount                 // sentinel
};

constexpr int kNumEvents = static_cast<int>(Event::kCount);

const char* event_name(Event e);

class CostCounter {
 public:
  void add(Event e, uint64_t n = 1) { counts_[static_cast<int>(e)] += n; }
  uint64_t count(Event e) const { return counts_[static_cast<int>(e)]; }
  void reset() { counts_.fill(0); }
  void merge(const CostCounter& other) {
    for (int i = 0; i < kNumEvents; ++i) counts_[static_cast<std::size_t>(i)] += other.counts_[static_cast<std::size_t>(i)];
  }
  uint64_t total_events() const {
    uint64_t t = 0;
    for (auto c : counts_) t += c;
    return t;
  }
  std::string summary() const;

 private:
  std::array<uint64_t, kNumEvents> counts_{};
};

/// Helper: count only if the counter is non-null (kernels take an optional
/// counter so accuracy evaluation pays no instrumentation cost).
inline void tally(CostCounter* c, Event e, uint64_t n = 1) {
  if (c != nullptr) c->add(e, n);
}

}  // namespace bswp::sim
