#include "sim/layer_cost.h"

#include <array>

namespace bswp::sim {

namespace {

using kernels::BitSerialVariant;

bool uses_cache(BitSerialVariant v) {
  return v == BitSerialVariant::kCached || v == BitSerialVariant::kCachedPrecompute ||
         v == BitSerialVariant::kCachedMemoize;
}

/// Events of one unpack_bits(group_size, bits) call.
void add_unpack(CostCounter& c, uint64_t calls, int group_size, int bits) {
  c.add(Event::kSramRead, calls * static_cast<uint64_t>(group_size));
  c.add(Event::kAlu, calls * 2ull * static_cast<uint64_t>(group_size) * bits);
  c.add(Event::kSramWrite, calls * static_cast<uint64_t>(bits));
  c.add(Event::kBranch, calls * static_cast<uint64_t>(group_size));
}

/// Events of one count_cache_fill(bits, lut) call.
void add_cache_fill(CostCounter& c, uint64_t calls, int bits, const pool::DotLut& lut) {
  const uint64_t words_per_block = (lut.block_bytes() + 3) / 4;
  c.add(Event::kFlashSeqWord, calls * static_cast<uint64_t>(bits) * words_per_block);
  c.add(Event::kSramWrite, calls * static_cast<uint64_t>(bits) * words_per_block);
  c.add(Event::kBranch, calls * static_cast<uint64_t>(bits));
}

/// Events of one accumulate_filters call, excluding the memoized variant's
/// per-distinct-index work (which depends on the index slice — added by the
/// callers, weighted per slice).
void add_accumulate(CostCounter& c, uint64_t calls, BitSerialVariant variant, int out_ch, int bits,
                    int pool_size, int group_size) {
  const auto F = static_cast<uint64_t>(out_ch);
  const auto M = static_cast<uint64_t>(bits);
  const Event lut_read = uses_cache(variant) ? Event::kSramRead : Event::kFlashRandomByte;
  switch (variant) {
    case BitSerialVariant::kNaive:
      add_unpack(c, calls * F, group_size, bits);
      c.add(Event::kFlashSeqByte, calls * F);
      c.add(lut_read, calls * F * M);
      c.add(Event::kAlu, calls * 2 * F * M);
      c.add(Event::kSramRead, calls * F);
      c.add(Event::kSramWrite, calls * F);
      c.add(Event::kBranch, calls * F);
      break;
    case BitSerialVariant::kInputReuse:
    case BitSerialVariant::kCached:
      c.add(Event::kFlashSeqByte, calls * F);
      c.add(lut_read, calls * F * M);
      c.add(Event::kAlu, calls * 2 * F * M);
      c.add(Event::kSramRead, calls * F);
      c.add(Event::kSramWrite, calls * F);
      c.add(Event::kBranch, calls * F);
      break;
    case BitSerialVariant::kCachedPrecompute: {
      const auto S = static_cast<uint64_t>(pool_size);
      c.add(Event::kSramRead, calls * S * M);
      c.add(Event::kAlu, calls * 2 * S * M);
      c.add(Event::kSramWrite, calls * S);
      c.add(Event::kBranch, calls * S);
      c.add(Event::kFlashSeqByte, calls * F);
      c.add(Event::kSramRead, calls * 2 * F);
      c.add(Event::kAlu, calls * F);
      c.add(Event::kSramWrite, calls * F);
      c.add(Event::kBranch, calls * F);
      break;
    }
    case BitSerialVariant::kCachedMemoize: {
      const auto S = static_cast<uint64_t>(pool_size);
      c.add(Event::kSramWrite, calls * ((S + 3) / 4));  // memo-valid reset
      c.add(Event::kFlashSeqByte, calls * F);
      c.add(Event::kSramRead, calls * 3 * F);
      c.add(Event::kAlu, calls * F);
      c.add(Event::kSramWrite, calls * F);
      c.add(Event::kBranch, calls * 2 * F);
      break;
    }
  }
}

/// Per-miss memoization work: the bit-serial dot product computed on first
/// use of each distinct pool index in a filter-loop slice.
void add_memo_misses(CostCounter& c, uint64_t misses, int bits) {
  c.add(Event::kSramRead, misses * static_cast<uint64_t>(bits));
  c.add(Event::kAlu, misses * 2ull * static_cast<uint64_t>(bits));
  c.add(Event::kSramWrite, misses * 2);
}

/// Distinct index count among the out_ch entries of one (ky, kx, g) slice.
uint64_t distinct_in_slice(const kernels::PackedIndices& idx, int ky, int kx, int g,
                           int pool_size) {
  std::array<bool, 256> seen{};
  check(pool_size <= 256, "layer_cost: pool size exceeds uint8 index range");
  uint64_t d = 0;
  for (int o = 0; o < idx.out_ch; ++o) {
    const uint8_t s = idx.at(ky, kx, g, o);
    if (!seen[s]) {
      seen[s] = true;
      ++d;
    }
  }
  return d;
}

/// Output positions for which kernel tap (ky, kx) lands in bounds; mirrors
/// the `iy/ix` guards of the kernel loops.
uint64_t valid_positions_1d(int out_dim, int in_dim, int k_off, int stride, int pad) {
  uint64_t n = 0;
  for (int o = 0; o < out_dim; ++o) {
    const int i = o * stride + k_off - pad;
    if (i >= 0 && i < in_dim) ++n;
  }
  return n;
}

}  // namespace

CostCounter bitserial_conv_cost(const nn::ConvSpec& spec, int in_h, int in_w, int act_bits,
                                const pool::DotLut& lut, const kernels::PackedIndices& indices,
                                kernels::BitSerialVariant variant) {
  CostCounter c;
  const int G = lut.group_size;
  const int gcnt = spec.in_ch / G;
  const int oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  const auto P = static_cast<uint64_t>(oh) * static_cast<uint64_t>(ow);
  const auto F = static_cast<uint64_t>(spec.out_ch);

  // Valid (position, tap) pairs, factored per tap so the memoized variant can
  // weight each slice's distinct-index count by how often the slice runs.
  uint64_t contexts = 0;
  for (int ky = 0; ky < spec.kh; ++ky) {
    const uint64_t vy = valid_positions_1d(oh, in_h, ky, spec.stride, spec.pad);
    for (int kx = 0; kx < spec.kw; ++kx) {
      const uint64_t vx = valid_positions_1d(ow, in_w, kx, spec.stride, spec.pad);
      const uint64_t taps = vy * vx;
      contexts += taps * static_cast<uint64_t>(gcnt);
      if (variant == BitSerialVariant::kCachedMemoize && taps > 0) {
        for (int g = 0; g < gcnt; ++g) {
          add_memo_misses(c, taps * distinct_in_slice(indices, ky, kx, g, lut.pool_size),
                          act_bits);
        }
      }
    }
  }

  // Per output position: accumulator init + requantize + store.
  c.add(Event::kSramWrite, 2 * P * F);
  c.add(Event::kSramRead, P * F);
  c.add(Event::kRequant, P * F);

  if (variant != BitSerialVariant::kNaive) add_unpack(c, contexts, G, act_bits);
  if (uses_cache(variant)) add_cache_fill(c, contexts, act_bits, lut);
  add_accumulate(c, contexts, variant, spec.out_ch, act_bits, lut.pool_size, G);
  c.add(Event::kBranch, contexts);  // per-group-context loop tally
  return c;
}

CostCounter bitserial_linear_cost(int in_features, int act_bits, const pool::DotLut& lut,
                                  const kernels::PackedIndices& indices,
                                  kernels::BitSerialVariant variant) {
  CostCounter c;
  const int G = lut.group_size;
  const auto contexts = static_cast<uint64_t>(in_features / G);
  const auto F = static_cast<uint64_t>(indices.out_ch);

  c.add(Event::kSramWrite, 2 * F);  // accumulator init + output store
  c.add(Event::kSramRead, F);
  c.add(Event::kRequant, F);

  if (variant == BitSerialVariant::kCachedMemoize) {
    for (int g = 0; g < in_features / G; ++g) {
      add_memo_misses(c, distinct_in_slice(indices, 0, 0, g, lut.pool_size), act_bits);
    }
  }
  if (variant != BitSerialVariant::kNaive) add_unpack(c, contexts, G, act_bits);
  if (uses_cache(variant)) add_cache_fill(c, contexts, act_bits, lut);
  add_accumulate(c, contexts, variant, indices.out_ch, act_bits, lut.pool_size, G);
  // (bitserial_linear has no per-context branch tally, unlike the conv.)
  return c;
}

CostCounter baseline_conv_cost(const nn::ConvSpec& spec, int in_h, int in_w) {
  CostCounter c;
  const int oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  const auto P = static_cast<uint64_t>(oh) * static_cast<uint64_t>(ow);
  const int cg = spec.in_ch / spec.groups;

  uint64_t valid = 0;  // sum over positions of in-bounds taps
  for (int ky = 0; ky < spec.kh; ++ky) {
    const uint64_t vy = valid_positions_1d(oh, in_h, ky, spec.stride, spec.pad);
    for (int kx = 0; kx < spec.kw; ++kx) {
      valid += vy * valid_positions_1d(ow, in_w, kx, spec.stride, spec.pad);
    }
  }

  const uint64_t patch = valid * static_cast<uint64_t>(spec.in_ch);
  const uint64_t work = valid * static_cast<uint64_t>(cg) * static_cast<uint64_t>(spec.out_ch);
  c.add(Event::kSramRead, patch + work);
  c.add(Event::kSramWrite, patch + P * static_cast<uint64_t>(spec.out_ch));
  c.add(Event::kFlashSeqByte, work);
  c.add(Event::kMac, work);
  c.add(Event::kAlu, 3 * work);
  c.add(Event::kBranch, P * static_cast<uint64_t>(spec.out_ch));
  c.add(Event::kRequant, P * static_cast<uint64_t>(spec.out_ch));
  return c;
}

CostCounter baseline_linear_cost(int in_features, int out_features) {
  CostCounter c;
  const uint64_t taps = static_cast<uint64_t>(in_features) * static_cast<uint64_t>(out_features);
  c.add(Event::kFlashSeqByte, taps);
  c.add(Event::kSramRead, taps);
  c.add(Event::kMac, taps);
  c.add(Event::kAlu, 3 * taps);
  c.add(Event::kRequant, static_cast<uint64_t>(out_features));
  c.add(Event::kSramWrite, static_cast<uint64_t>(out_features));
  return c;
}

namespace {

/// Filter-loop events of the SIMD int8 dot product: per (position, filter)
/// `vec` 16-lane madd steps + `tail` scalar taps (each one kMac + column and
/// weight stream reads), a horizontal reduce, and the requantized store.
void add_simd_dot_filters(CostCounter& c, uint64_t pf, uint64_t vec, uint64_t tail) {
  c.add(Event::kMac, pf * (vec + tail));
  c.add(Event::kSramRead, pf * 2 * (vec + tail));
  c.add(Event::kAlu, pf * 4);  // horizontal reduce + store addressing
  c.add(Event::kBranch, pf);
  c.add(Event::kRequant, pf);
  c.add(Event::kSramWrite, pf);
}

}  // namespace

CostCounter simd_conv_cost(const nn::ConvSpec& spec, int in_h, int in_w) {
  CostCounter c;
  const int oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  const auto P = static_cast<uint64_t>(oh) * static_cast<uint64_t>(ow);
  const int cg = spec.in_ch / spec.groups;
  const uint64_t K = static_cast<uint64_t>(cg) * spec.kh * spec.kw;
  // Column staging: every tap (valid or zero-padded) is written once per
  // (position, group) and read back ~once per 16-lane step stream.
  const uint64_t stage = P * static_cast<uint64_t>(spec.groups) * K;
  c.add(Event::kSramWrite, stage);
  c.add(Event::kSramRead, stage);
  add_simd_dot_filters(c, P * static_cast<uint64_t>(spec.out_ch), K / 16, K % 16);
  return c;
}

CostCounter simd_linear_cost(int in_features, int out_features) {
  CostCounter c;
  const auto fin = static_cast<uint64_t>(in_features);
  // The shifted input row is staged once for the whole filter loop.
  c.add(Event::kSramRead, fin);
  c.add(Event::kSramWrite, fin);
  add_simd_dot_filters(c, static_cast<uint64_t>(out_features), fin / 16, fin % 16);
  return c;
}

namespace {

/// Per-context events of the SIMD bit-serial pipeline: unpack the group
/// vector, precompute all S pool dot products (8 int32 lanes per step on an
/// input-oriented LUT, scalar on a weight-oriented one), then gather-
/// accumulate 8 output channels per step.
void add_simd_bitserial_context(CostCounter& c, uint64_t contexts, int out_ch, int bits,
                                const pool::DotLut& lut) {
  const auto F = static_cast<uint64_t>(out_ch);
  const auto M = static_cast<uint64_t>(bits);
  const auto S = static_cast<uint64_t>(lut.pool_size);
  add_unpack(c, contexts, lut.group_size, bits);
  if (lut.order == pool::LutOrder::kInputOriented) {
    const uint64_t steps = (S + 7) / 8;
    c.add(Event::kSramRead, contexts * M * 2 * steps);
    c.add(Event::kAlu, contexts * M * 2 * steps);
    c.add(Event::kSramWrite, contexts * M * steps);
    c.add(Event::kBranch, contexts * M);
  } else {
    // Strided rows: scalar precompute, same shape as the scalar
    // cached+precompute variant's pool loop.
    c.add(Event::kSramRead, contexts * S * M);
    c.add(Event::kAlu, contexts * 2 * S * M);
    c.add(Event::kSramWrite, contexts * S);
    c.add(Event::kBranch, contexts * S);
  }
  // Gather step: 8 packed indices (one 64-bit load), 8 gathered values + the
  // accumulator vector, add + store.
  const uint64_t gsteps = (F + 7) / 8;
  c.add(Event::kFlashSeqWord, contexts * gsteps);
  c.add(Event::kSramRead, contexts * gsteps * 9);
  c.add(Event::kAlu, contexts * gsteps * 2);
  c.add(Event::kSramWrite, contexts * gsteps);
  c.add(Event::kBranch, contexts * gsteps);
}

}  // namespace

CostCounter simd_bitserial_conv_cost(const nn::ConvSpec& spec, int in_h, int in_w, int act_bits,
                                     const pool::DotLut& lut) {
  CostCounter c;
  const int G = lut.group_size;
  const int gcnt = spec.in_ch / G;
  const int oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  const auto P = static_cast<uint64_t>(oh) * static_cast<uint64_t>(ow);
  const auto F = static_cast<uint64_t>(spec.out_ch);

  uint64_t contexts = 0;
  for (int ky = 0; ky < spec.kh; ++ky) {
    const uint64_t vy = valid_positions_1d(oh, in_h, ky, spec.stride, spec.pad);
    for (int kx = 0; kx < spec.kw; ++kx) {
      contexts += vy * valid_positions_1d(ow, in_w, kx, spec.stride, spec.pad) *
                  static_cast<uint64_t>(gcnt);
    }
  }

  c.add(Event::kSramWrite, 2 * P * F);  // accumulator init + output store
  c.add(Event::kSramRead, P * F);
  c.add(Event::kRequant, P * F);
  add_simd_bitserial_context(c, contexts, spec.out_ch, act_bits, lut);
  c.add(Event::kBranch, contexts);
  return c;
}

CostCounter simd_bitserial_linear_cost(int in_features, int out_features, int act_bits,
                                       const pool::DotLut& lut) {
  CostCounter c;
  const auto contexts = static_cast<uint64_t>(in_features / lut.group_size);
  const auto F = static_cast<uint64_t>(out_features);
  c.add(Event::kSramWrite, 2 * F);
  c.add(Event::kSramRead, F);
  c.add(Event::kRequant, F);
  add_simd_bitserial_context(c, contexts, out_features, act_bits, lut);
  return c;
}

// --- batched closed forms ----------------------------------------------------

namespace {

/// Batch scaling with the stationary operand amortized: every event of the
/// per-image form scales by `batch` except the flash-stream events (weight
/// and index streams, LUT block copies, random LUT byte reads), which the
/// batched cores issue once per batch because the flash-resident operand
/// stays hot while the image loop runs inside the filter/context loop.
CostCounter batch_amortized(const CostCounter& per, int batch) {
  CostCounter c;
  for (int i = 0; i < kNumEvents; ++i) {
    const Event e = static_cast<Event>(i);
    const bool stationary = e == Event::kFlashRandomByte || e == Event::kFlashSeqByte ||
                            e == Event::kFlashSeqWord;
    c.add(e, per.count(e) * (stationary ? 1ull : static_cast<uint64_t>(batch)));
  }
  return c;
}

}  // namespace

CostCounter baseline_conv_cost_batched(const nn::ConvSpec& spec, int in_h, int in_w, int batch) {
  return batch_amortized(baseline_conv_cost(spec, in_h, in_w), batch);
}

CostCounter baseline_linear_cost_batched(int in_features, int out_features, int batch) {
  return batch_amortized(baseline_linear_cost(in_features, out_features), batch);
}

CostCounter bitserial_conv_cost_batched(const nn::ConvSpec& spec, int in_h, int in_w,
                                        int act_bits, const pool::DotLut& lut,
                                        const kernels::PackedIndices& indices,
                                        kernels::BitSerialVariant variant, int batch) {
  return batch_amortized(bitserial_conv_cost(spec, in_h, in_w, act_bits, lut, indices, variant),
                         batch);
}

CostCounter bitserial_linear_cost_batched(int in_features, int act_bits, const pool::DotLut& lut,
                                          const kernels::PackedIndices& indices,
                                          kernels::BitSerialVariant variant, int batch) {
  return batch_amortized(bitserial_linear_cost(in_features, act_bits, lut, indices, variant),
                         batch);
}

CostCounter simd_conv_cost_batched(const nn::ConvSpec& spec, int in_h, int in_w, int batch) {
  // The SIMD lane keeps weights in SRAM, so the amortized term is the weight
  // half of the dot-product stream (one of the two kSramReads per step): the
  // 4-wide filter tile loads each weight row once per batch and sweeps it
  // across all staged columns. Everything else scales with the batch.
  CostCounter c;
  const auto nb = static_cast<uint64_t>(batch);
  const int oh = spec.out_h(in_h), ow = spec.out_w(in_w);
  const auto P = static_cast<uint64_t>(oh) * static_cast<uint64_t>(ow);
  const int cg = spec.in_ch / spec.groups;
  const uint64_t K = static_cast<uint64_t>(cg) * spec.kh * spec.kw;
  const uint64_t stage = P * static_cast<uint64_t>(spec.groups) * K;
  c.add(Event::kSramWrite, stage * nb);
  c.add(Event::kSramRead, stage * nb);
  const uint64_t pf = P * static_cast<uint64_t>(spec.out_ch);
  const uint64_t steps = K / 16 + K % 16;
  c.add(Event::kMac, pf * steps * nb);
  c.add(Event::kSramRead, pf * steps * nb + pf * steps);  // columns x batch + weights once
  c.add(Event::kAlu, pf * 4 * nb);
  c.add(Event::kBranch, pf * nb);
  c.add(Event::kRequant, pf * nb);
  c.add(Event::kSramWrite, pf * nb);
  return c;
}

CostCounter simd_linear_cost_batched(int in_features, int out_features, int batch) {
  CostCounter c;
  const auto nb = static_cast<uint64_t>(batch);
  const auto fin = static_cast<uint64_t>(in_features);
  c.add(Event::kSramRead, fin * nb);
  c.add(Event::kSramWrite, fin * nb);
  const auto pf = static_cast<uint64_t>(out_features);
  const uint64_t steps = fin / 16 + fin % 16;
  c.add(Event::kMac, pf * steps * nb);
  c.add(Event::kSramRead, pf * steps * nb + pf * steps);  // rows x batch + weights once
  c.add(Event::kAlu, pf * 4 * nb);
  c.add(Event::kBranch, pf * nb);
  c.add(Event::kRequant, pf * nb);
  c.add(Event::kSramWrite, pf * nb);
  return c;
}

CostCounter simd_bitserial_conv_cost_batched(const nn::ConvSpec& spec, int in_h, int in_w,
                                             int act_bits, const pool::DotLut& lut, int batch) {
  return batch_amortized(simd_bitserial_conv_cost(spec, in_h, in_w, act_bits, lut), batch);
}

CostCounter simd_bitserial_linear_cost_batched(int in_features, int out_features, int act_bits,
                                               const pool::DotLut& lut, int batch) {
  return batch_amortized(simd_bitserial_linear_cost(in_features, out_features, act_bits, lut),
                         batch);
}

}  // namespace bswp::sim
