// First-principles per-layer cost model for backend selection.
//
// Every kernel in bswp::kernels tallies typed sim::Event counts as it
// executes, and those counts are exact functions of layer geometry and (for
// the memoized variant) of the packed pool indices — never of activation
// values. This header reproduces the tallies in closed form so the compile
// pipeline's SelectBackends pass can price every candidate backend *without
// running it*: estimate the CostCounter, price it with an McuProfile, pick
// the cheapest. tests/test_layer_cost.cpp asserts these estimates equal the
// counters the real kernels produce, event for event, so the model cannot
// drift from the kernels without a test failure.
#pragma once

#include "kernels/bitserial_conv.h"
#include "pool/lut.h"
#include "sim/cost_counter.h"

namespace bswp::sim {

/// Exact event counts of kernels::bitserial_conv2d for one inference of a
/// pooled conv layer. `in_h`/`in_w` are the input spatial dims, `act_bits`
/// the bitwidth M of the *input* activation (the bit-serial loop depth).
CostCounter bitserial_conv_cost(const nn::ConvSpec& spec, int in_h, int in_w, int act_bits,
                                const pool::DotLut& lut, const kernels::PackedIndices& indices,
                                kernels::BitSerialVariant variant);

/// Exact event counts of kernels::bitserial_linear (`in_features` inputs).
CostCounter bitserial_linear_cost(int in_features, int act_bits, const pool::DotLut& lut,
                                  const kernels::PackedIndices& indices,
                                  kernels::BitSerialVariant variant);

/// Exact event counts of kernels::baseline_conv2d (CMSIS-like int8 conv).
CostCounter baseline_conv_cost(const nn::ConvSpec& spec, int in_h, int in_w);

/// Exact event counts of kernels::baseline_linear.
CostCounter baseline_linear_cost(int in_features, int out_features);

// --- SIMD host lane (kernels under src/kernels/simd/) ------------------------
//
// These model the *vectorized* dataflow, not the MCU reference: one kMac is
// one 16-lane madd step (or a scalar tail multiply), staging/reduce
// overheads appear explicitly, and the bit-serial form charges the
// precompute-then-gather pipeline. They are priced with sim::host_profile()
// against the scalar forms above to choose a HostLane per layer; they are
// deliberately NOT what the SIMD kernels tally at run time (those tally the
// scalar MCU reference so Session::estimate_latency stays an MCU estimate).

/// Modeled event counts of kernels::simd::simd_conv2d.
CostCounter simd_conv_cost(const nn::ConvSpec& spec, int in_h, int in_w);

/// Modeled event counts of kernels::simd::simd_linear.
CostCounter simd_linear_cost(int in_features, int out_features);

/// Modeled event counts of kernels::simd::simd_bitserial_conv2d. A
/// weight-oriented LUT precomputes scalar (strided rows), which the model
/// reflects — the SIMD lane rarely wins there.
CostCounter simd_bitserial_conv_cost(const nn::ConvSpec& spec, int in_h, int in_w, int act_bits,
                                     const pool::DotLut& lut);

/// Modeled event counts of kernels::simd::simd_bitserial_linear.
CostCounter simd_bitserial_linear_cost(int in_features, int out_features, int act_bits,
                                       const pool::DotLut& lut);

// --- batched closed forms ----------------------------------------------------
//
// Price one batched-core call over `batch` images, for SelectBackends to
// weigh per-image vs batched execution at a serving batch hint. The model:
// data-dependent work (activation reads, MACs, requant) scales with the
// batch, while the stationary operand — flash-resident weights, packed
// indices and LUT blocks, which the batched cores keep resident across
// images — is charged once per batch instead of once per image. These are
// host pricing models like the simd_* forms above; the batched kernels
// deliberately still TALLY exactly batch x the per-image counts at run time
// so MCU latency estimates stay batch-invariant.

/// Batched kernels::baseline_conv2d_batch pricing (weights stream once).
CostCounter baseline_conv_cost_batched(const nn::ConvSpec& spec, int in_h, int in_w, int batch);

/// Batched kernels::baseline_linear_batch pricing.
CostCounter baseline_linear_cost_batched(int in_features, int out_features, int batch);

/// Batched kernels::bitserial_conv2d_batch pricing (LUT cache fills and
/// index streams once per batch).
CostCounter bitserial_conv_cost_batched(const nn::ConvSpec& spec, int in_h, int in_w,
                                        int act_bits, const pool::DotLut& lut,
                                        const kernels::PackedIndices& indices,
                                        kernels::BitSerialVariant variant, int batch);

/// Batched kernels::bitserial_linear_batch pricing.
CostCounter bitserial_linear_cost_batched(int in_features, int act_bits, const pool::DotLut& lut,
                                          const kernels::PackedIndices& indices,
                                          kernels::BitSerialVariant variant, int batch);

/// Batched kernels::simd::simd_conv2d_batch pricing (4-wide filter tiles
/// load each weight row once per batch).
CostCounter simd_conv_cost_batched(const nn::ConvSpec& spec, int in_h, int in_w, int batch);

/// Batched kernels::simd::simd_linear_batch pricing.
CostCounter simd_linear_cost_batched(int in_features, int out_features, int batch);

/// Batched kernels::simd::simd_bitserial_conv2d_batch pricing (index gather
/// loads once per batch).
CostCounter simd_bitserial_conv_cost_batched(const nn::ConvSpec& spec, int in_h, int in_w,
                                             int act_bits, const pool::DotLut& lut, int batch);

/// Batched kernels::simd::simd_bitserial_linear_batch pricing.
CostCounter simd_bitserial_linear_cost_batched(int in_features, int out_features, int act_bits,
                                               const pool::DotLut& lut, int batch);

}  // namespace bswp::sim
