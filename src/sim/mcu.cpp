#include "sim/mcu.h"

namespace bswp::sim {

double McuProfile::cycles(const CostCounter& c) const {
  double total = 0.0;
  for (int i = 0; i < kNumEvents; ++i) {
    total += event_cycles[i] * static_cast<double>(c.count(static_cast<Event>(i)));
  }
  return total;
}

double McuProfile::seconds(const CostCounter& c) const {
  return cycles(c) / (freq_mhz * 1e6);
}

namespace {
void set_m3_costs(McuProfile& m, double flash_random, double flash_seq_byte,
                  double flash_seq_word) {
  m.event_cycles[static_cast<int>(Event::kFlashRandomByte)] = flash_random;
  m.event_cycles[static_cast<int>(Event::kFlashSeqByte)] = flash_seq_byte;
  m.event_cycles[static_cast<int>(Event::kFlashSeqWord)] = flash_seq_word;
  m.event_cycles[static_cast<int>(Event::kSramRead)] = 2.0;
  m.event_cycles[static_cast<int>(Event::kSramWrite)] = 2.0;
  m.event_cycles[static_cast<int>(Event::kMac)] = 2.0;
  m.event_cycles[static_cast<int>(Event::kAlu)] = 1.0;
  m.event_cycles[static_cast<int>(Event::kBranch)] = 2.0;
  m.event_cycles[static_cast<int>(Event::kRequant)] = 12.0;
}
}  // namespace

McuProfile mc_large() {
  McuProfile m;
  m.name = "MC-large (STM32F207ZG)";
  m.sram_bytes = 128 * 1024;
  m.flash_bytes = 1024 * 1024;
  m.freq_mhz = 120.0;
  // 120 MHz -> 5 flash wait states without ART hits; prefetch makes
  // sequential streams ~2 cycles/access.
  set_m3_costs(m, /*flash_random=*/5.0, /*flash_seq_byte=*/2.0, /*flash_seq_word=*/2.0);
  return m;
}

McuProfile host_profile() {
  McuProfile m;
  m.name = "host (generic superscalar)";
  // Effectively unbounded: the host lane never fails a footprint check.
  m.sram_bytes = static_cast<std::size_t>(1) << 40;
  m.flash_bytes = static_cast<std::size_t>(1) << 40;
  m.freq_mhz = 3000.0;
  // Out-of-order core with caches: no wait-stated flash, sub-cycle
  // loads/stores, cheap ALU; requantization stays a scalar float chain.
  m.event_cycles[static_cast<int>(Event::kFlashRandomByte)] = 1.0;
  m.event_cycles[static_cast<int>(Event::kFlashSeqByte)] = 0.25;
  m.event_cycles[static_cast<int>(Event::kFlashSeqWord)] = 0.5;
  m.event_cycles[static_cast<int>(Event::kSramRead)] = 0.5;
  m.event_cycles[static_cast<int>(Event::kSramWrite)] = 0.5;
  m.event_cycles[static_cast<int>(Event::kMac)] = 1.0;
  m.event_cycles[static_cast<int>(Event::kAlu)] = 0.25;
  m.event_cycles[static_cast<int>(Event::kBranch)] = 1.0;
  m.event_cycles[static_cast<int>(Event::kRequant)] = 6.0;
  return m;
}

McuProfile mc_small() {
  McuProfile m;
  m.name = "MC-small (STM32F103RB)";
  m.sram_bytes = 20 * 1024;
  m.flash_bytes = 128 * 1024;
  m.freq_mhz = 72.0;
  // 72 MHz -> 2 wait states; smaller random/sequential gap than F2.
  set_m3_costs(m, /*flash_random=*/4.0, /*flash_seq_byte=*/2.0, /*flash_seq_word=*/2.0);
  return m;
}

}  // namespace bswp::sim
