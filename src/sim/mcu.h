// Microcontroller profiles (paper Table 2) and the cycle/latency model.
//
// The paper measures on two STM Nucleo boards with ARM Cortex-M3 cores:
//   MC-large: STM32F207ZG — 128 kB SRAM, 1 MB flash, 120 MHz
//   MC-small: STM32F103RB —  20 kB SRAM, 128 kB flash, 72 MHz
// We replace the boards with a cost model: kernels tally typed events
// (sim::CostCounter) and the profile prices each event in core cycles.
//
// Calibration constants (documented here per DESIGN.md §6): Cortex-M3 loads
// take 2 cycles from SRAM; MUL/MLA are 1-2 cycles (priced 2 as a MAC);
// flash sits behind wait states (3-5 at these clocks) so an isolated byte
// load costs ~flash_random cycles, while sequential streams benefit from the
// prefetch buffer (~2 cycles/access). Requantization (float scale + clamp,
// or fixed-point multiply-shift on hardware) is priced as a small constant
// per output element. Absolute seconds depend on these constants; the
// experiment *shapes* (who wins, how speedups scale) come from the event
// counts, which are exact properties of the kernels' dataflow.
#pragma once

#include <cstdint>
#include <string>

#include "sim/cost_counter.h"

namespace bswp::sim {

struct McuProfile {
  std::string name;
  std::size_t sram_bytes = 0;
  std::size_t flash_bytes = 0;
  double freq_mhz = 0.0;

  /// Cycle price per event type.
  double event_cycles[kNumEvents] = {};

  double cycles(const CostCounter& c) const;
  double seconds(const CostCounter& c) const;
};

/// STM32F207ZG Nucleo ("MC-large" in Table 2).
McuProfile mc_large();
/// STM32F103RB Nucleo ("MC-small" in Table 2).
McuProfile mc_small();

/// Generic superscalar host CPU (serving-path profile, not a paper board).
/// Prices the same event vocabulary for a ~3 GHz out-of-order core with
/// caches: "flash" degenerates to cached memory streams, loads/stores are
/// sub-cycle, and one kMac prices one MAC *step* — scalar in the scalar
/// closed forms, one 16-lane madd in the simd_* closed forms — which is
/// exactly what lets SelectBackends's argmin price HostLane::kScalar against
/// HostLane::kSimd per layer (CompileOptions::host_profile). Memory bounds
/// are effectively unlimited so MemoryFootprint::fits never rejects a host.
McuProfile host_profile();

/// Static memory placement of a deployed network (flash image + peak SRAM).
struct MemoryFootprint {
  std::size_t flash_bytes = 0;  // weights/indices/LUT/bias constants
  std::size_t sram_bytes = 0;   // peak activations + kernel scratch

  bool fits(const McuProfile& m) const {
    return flash_bytes <= m.flash_bytes && sram_bytes <= m.sram_bytes;
  }
};

}  // namespace bswp::sim
