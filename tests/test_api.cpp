// Tests for the unified deployment API (bswp::Deployment / bswp::Session):
// up-front option validation, equivalence with the legacy hand-wired
// pipeline, thread-pooled batched inference, persistence.
#include "api/bswp.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/rng.h"
#include "runtime/serialize.h"

namespace bswp {
namespace {

data::SyntheticCifarOptions data_opts() {
  data::SyntheticCifarOptions o;
  o.train_size = 48;
  o.image_size = 12;
  return o;
}

/// Small conv net with BN stats seeded (no training: these tests exercise
/// the pipeline plumbing, not accuracy).
struct Env {
  nn::Graph graph;
  data::SyntheticCifar data{data_opts(), true};
  Tensor sample{std::vector<int>{1, 3, 12, 12}};

  Env() {
    int x = graph.input(3, 12, 12);
    x = graph.conv2d(x, 16, 3, 1, 1);
    x = graph.batchnorm(x);
    x = graph.relu(x);
    x = graph.maxpool(x, 2, 2);
    x = graph.conv2d(x, 24, 3, 1, 1);
    x = graph.relu(x);
    x = graph.global_avgpool(x);
    graph.linear(x, 4);
    Rng rng(3);
    graph.init_weights(rng);
    data::Batch b = data.batch(0, 16);
    graph.forward(b.images, true);
    data.sample(0, sample.data());
  }

  pool::CodecOptions pool_opts() const {
    pool::CodecOptions co;
    co.pool_size = 16;
    co.kmeans_iters = 5;
    return co;
  }

  quant::CalibrateOptions cal_opts() const {
    quant::CalibrateOptions qo;
    qo.num_samples = 16;
    return qo;
  }
};

Env& env() {
  static Env e;
  return e;
}

// --- validation -------------------------------------------------------------

TEST(Deployment, CompileWithoutCalibrationRejected) {
  Env& e = env();
  Deployment dep = Deployment::from(e.graph);
  EXPECT_THROW(dep.compile(), std::invalid_argument);
}

TEST(Deployment, ForcedVariantWithoutPoolRejected) {
  Env& e = env();
  Deployment dep = Deployment::from(e.graph)
                       .force_variant(kernels::BitSerialVariant::kCachedPrecompute)
                       .calibrate(e.data, e.cal_opts());
  EXPECT_THROW(dep.compile(), std::invalid_argument);
}

TEST(Deployment, LutMayBeWiderThanWeights) {
  // LUT entries store group dot products, so B_l > B_w is the paper's
  // exact-LUT configuration (Table 5's "16" column) — it must compile.
  Env& e = env();
  Session session = Deployment::from(e.graph)
                        .with_pool(env().pool_opts())
                        .weight_bits(8)
                        .lut_bits(16)
                        .calibrate(e.data, e.cal_opts())
                        .compile();
  EXPECT_EQ(session.network().lut.bitwidth, 16);
  EXPECT_NO_THROW(session.run(e.sample));
}

TEST(Deployment, SetterRangesValidatedImmediately) {
  Env& e = env();
  Deployment dep = Deployment::from(e.graph);
  EXPECT_THROW(dep.act_bits(0), std::invalid_argument);
  EXPECT_THROW(dep.act_bits(9), std::invalid_argument);
  EXPECT_THROW(dep.weight_bits(1), std::invalid_argument);
  EXPECT_THROW(dep.lut_bits(17), std::invalid_argument);
  EXPECT_THROW(dep.seed_batchnorm(0), std::invalid_argument);
  pool::CodecOptions bad;
  bad.pool_size = 0;
  EXPECT_THROW(dep.with_pool(bad), std::invalid_argument);
}

TEST(Deployment, FinetuneWithoutPoolRejected) {
  Env& e = env();
  Deployment dep = Deployment::from(e.graph);
  pool::FinetuneOptions fo;
  EXPECT_THROW(dep.finetune(e.data, e.data, fo), std::invalid_argument);
}

// --- pipeline equivalence ---------------------------------------------------

TEST(Deployment, CompileMatchesLegacyPipeline) {
  Env& e = env();
  // Facade build.
  Session session = Deployment::from(e.graph)
                        .with_pool(e.pool_opts())
                        .calibrate(e.data, e.cal_opts())
                        .compile();
  // Hand-wired legacy build (same steps in the same order), adopted through
  // the Session escape hatch.
  nn::Graph copy = e.graph;
  pool::PooledNetwork pooled = pool::build_weight_pool(copy, e.pool_opts());
  pool::reconstruct_weights(copy, pooled);
  quant::CalibrationResult cal = quant::calibrate(copy, e.data, e.cal_opts());
  Session legacy(runtime::compile(copy, &pooled, cal, {}));

  QTensor a = session.run(e.sample);
  QTensor b = legacy.run(e.sample);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(session.footprint().flash_bytes, legacy.footprint().flash_bytes);
}

TEST(Deployment, ActBitsSyncCalibrationAndPlans) {
  Env& e = env();
  Deployment dep =
      Deployment::from(e.graph).with_pool(e.pool_opts()).calibrate(e.data, e.cal_opts());
  Session s4 = dep.act_bits(4).compile();
  EXPECT_EQ(s4.act_bits(), 4);
  for (const runtime::LayerPlan& p : s4.network().plans) {
    if (p.kind == runtime::PlanKind::kConvBitSerial) {
      EXPECT_EQ(p.rq.out.bits, 4);
    }
  }
  // The same builder recompiles at another precision.
  Session s8 = dep.act_bits(8).compile();
  EXPECT_EQ(s8.act_bits(), 8);
}

TEST(Deployment, ProvidedPoolIsUsedAsIs) {
  Env& e = env();
  nn::Graph copy = e.graph;
  pool::PooledNetwork pooled = pool::build_weight_pool(copy, e.pool_opts());
  Session session =
      Deployment::from(e.graph).with_pool(pooled).calibrate(e.data, e.cal_opts()).compile();
  EXPECT_TRUE(session.network().has_lut);
  EXPECT_EQ(session.network().lut.pool_size, 16);
}

// --- session inference ------------------------------------------------------

Session pooled_session() {
  Env& e = env();
  return Deployment::from(e.graph)
      .with_pool(e.pool_opts())
      .calibrate(e.data, e.cal_opts())
      .compile();
}

TEST(Session, RunBatchBitIdenticalToSequential) {
  Env& e = env();
  Session session = pooled_session();
  std::vector<Tensor> images;
  for (int i = 0; i < 9; ++i) {
    Tensor x({1, 3, 12, 12});
    e.data.sample(i % e.data.size(), x.data());
    images.push_back(std::move(x));
  }
  const std::vector<QTensor> batched = session.run_batch(images, /*n_threads=*/4);
  ASSERT_EQ(batched.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    const QTensor seq = session.run(images[i]);
    EXPECT_EQ(batched[i].data, seq.data) << "image " << i;
    EXPECT_EQ(batched[i].scale, seq.scale);
  }
}

TEST(Session, RunBatchThreadCountInvariance) {
  Env& e = env();
  Session session = pooled_session();
  std::vector<Tensor> images(5, e.sample);
  const auto one = session.run_batch(images, 1);
  const auto many = session.run_batch(images, 8);  // more threads than images
  for (std::size_t i = 0; i < images.size(); ++i) EXPECT_EQ(one[i].data, many[i].data);
  EXPECT_TRUE(session.run_batch(std::vector<Tensor>{}, 4).empty());
  EXPECT_THROW(session.run_batch(images, 0), std::invalid_argument);
}

TEST(Session, RejectsMismatchedInputShape) {
  Session session = pooled_session();
  EXPECT_THROW(session.run(Tensor({4, 12, 12}, 0.1f)), std::invalid_argument);   // channels
  EXPECT_THROW(session.run(Tensor({3, 16, 12}, 0.1f)), std::invalid_argument);   // height
  EXPECT_THROW(session.run(Tensor({3, 12, 16}, 0.1f)), std::invalid_argument);   // width
  EXPECT_THROW(session.run(Tensor({2, 3, 12, 12}, 0.1f)), std::invalid_argument);  // batch
  EXPECT_NO_THROW(session.run(Tensor({3, 12, 12}, 0.1f)));
  // A batch with one bad image propagates the error out of the pool.
  std::vector<Tensor> images(3, Tensor({3, 12, 12}, 0.1f));
  images[1] = Tensor({5, 12, 12}, 0.1f);
  EXPECT_THROW(session.run_batch(images, 2), std::invalid_argument);
}

TEST(Session, EvaluateAndLatencyWork) {
  Env& e = env();
  Session session = pooled_session();
  const float acc = session.evaluate(e.data, 16);
  EXPECT_GE(acc, 0.0f);
  EXPECT_LE(acc, 100.0f);
  const runtime::LatencyReport r = session.estimate_latency(sim::mc_large());
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_EQ(session.input_chw(), (std::vector<int>{3, 12, 12}));
}

TEST(Session, SaveLoadAndFirmwareExport) {
  Env& e = env();
  Session session = pooled_session();
  const std::string bin = "/tmp/bswp_api_session.bswp";
  const std::string hdr = "/tmp/bswp_api_session.h";
  session.save(bin);
  Session loaded = Session::load(bin);
  EXPECT_EQ(loaded.run(e.sample).data, session.run(e.sample).data);
  const std::size_t flash = session.export_firmware(hdr, "apinet");
  EXPECT_EQ(flash, session.footprint().flash_bytes);
  std::remove(bin.c_str());
  std::remove(hdr.c_str());
}

}  // namespace
}  // namespace bswp
