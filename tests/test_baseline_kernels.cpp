#include "kernels/baseline_conv.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace bswp::kernels {
namespace {

/// Float reference convolution on dequantized operands, requantized the same
/// way — the int8 kernel must match it except for accumulator rounding.
float ref_conv_real(const QTensor& in, const QTensor& w, const nn::ConvSpec& spec, int o, int oy,
                    int ox) {
  const int h = in.dim(2), ww = in.dim(3);
  const int cg = spec.in_ch / spec.groups;
  const int og = spec.out_ch / spec.groups;
  const int g = o / og;
  double acc = 0.0;
  for (int c = 0; c < cg; ++c) {
    for (int ky = 0; ky < spec.kh; ++ky) {
      const int iy = oy * spec.stride + ky - spec.pad;
      if (iy < 0 || iy >= h) continue;
      for (int kx = 0; kx < spec.kw; ++kx) {
        const int ix = ox * spec.stride + kx - spec.pad;
        if (ix < 0 || ix >= ww) continue;
        const int ic = g * cg + c;
        const double a = in.scale * (in.data[(static_cast<std::size_t>(ic) * h + iy) * ww + ix] -
                                     in.zero_point);
        const double wgt =
            w.scale *
            w.data[((static_cast<std::size_t>(o) * cg + c) * spec.kh + ky) * spec.kw + kx];
        acc += a * wgt;
      }
    }
  }
  return static_cast<float>(acc);
}

QTensor random_input(Rng& rng, int c, int h, int w, int bits, bool is_signed, int zp = 0) {
  QTensor q({1, c, h, w}, bits, is_signed);
  q.scale = 0.05f;
  q.zero_point = zp;
  for (auto& v : q.data) {
    v = static_cast<int16_t>(q.qmin() + static_cast<int>(rng.uniform_int(
                                            static_cast<uint64_t>(q.qmax() - q.qmin() + 1))));
  }
  return q;
}

QTensor random_weights(Rng& rng, const nn::ConvSpec& spec) {
  QTensor w(spec.weight_shape(), 8, true);
  w.scale = 0.02f;
  for (auto& v : w.data) v = static_cast<int16_t>(-127 + static_cast<int>(rng.uniform_int(255)));
  return w;
}

TEST(BaselineConv, MatchesFloatReference) {
  Rng rng(1);
  nn::ConvSpec spec{8, 6, 3, 3, 1, 1, 1};
  QTensor in = random_input(rng, 8, 6, 6, 8, false);
  QTensor w = random_weights(rng, spec);
  Requant rq = Requant::uniform(6, in.scale * w.scale, {}, 0.01f, 8, false, true);
  QTensor out = baseline_conv2d(in, w, spec, rq, nullptr);
  for (int o = 0; o < 6; ++o) {
    for (int oy = 0; oy < 6; ++oy) {
      for (int ox = 0; ox < 6; ++ox) {
        float real = ref_conv_real(in, w, spec, o, oy, ox);
        if (real < 0) real = 0;  // fused relu
        const int expected = std::min(255L, std::lround(real / 0.01f));
        EXPECT_NEAR(out.data[(static_cast<std::size_t>(o) * 6 + oy) * 6 + ox], expected, 1);
      }
    }
  }
}

TEST(BaselineConv, ZeroPointInputHandled) {
  Rng rng(2);
  nn::ConvSpec spec{4, 4, 1, 1, 1, 0, 1};
  QTensor in = random_input(rng, 4, 3, 3, 8, false, /*zp=*/128);
  QTensor w = random_weights(rng, spec);
  Requant rq = Requant::uniform(4, in.scale * w.scale, {}, 0.01f, 8, false, false);
  rq.out.zero_point = 128;
  QTensor out = baseline_conv2d(in, w, spec, rq, nullptr);
  for (int o = 0; o < 4; ++o) {
    const float real = ref_conv_real(in, w, spec, o, 1, 1);
    const int expected = static_cast<int>(std::lround(real / 0.01f)) + 128;
    EXPECT_NEAR(out.data[(static_cast<std::size_t>(o) * 3 + 1) * 3 + 1],
                std::clamp(expected, 0, 255), 1);
  }
}

TEST(BaselineConv, BiasAppliedPerChannel) {
  nn::ConvSpec spec{1, 2, 1, 1, 1, 0, 1};
  QTensor in({1, 1, 2, 2}, 8, false);
  in.scale = 1.0f;
  in.data = {1, 1, 1, 1};
  QTensor w(spec.weight_shape(), 8, true);
  w.scale = 1.0f;
  w.data = {2, 3};
  Requant rq = Requant::uniform(2, 1.0f, {10.0f, -20.0f}, 1.0f, 8, true, false);
  QTensor out = baseline_conv2d(in, w, spec, rq, nullptr);
  EXPECT_EQ(out.data[0], 12);   // 1*2 + 10
  EXPECT_EQ(out.data[4], -17);  // 1*3 - 20
}

TEST(BaselineConv, EventCountsClosedForm) {
  Rng rng(3);
  nn::ConvSpec spec{8, 16, 3, 3, 1, 0, 1};  // no padding -> every tap valid
  QTensor in = random_input(rng, 8, 6, 6, 8, false);
  QTensor w = random_weights(rng, spec);
  Requant rq = Requant::uniform(16, in.scale * w.scale, {}, 0.01f, 8, false, true);
  sim::CostCounter c;
  baseline_conv2d(in, w, spec, rq, &c);
  const uint64_t positions = 4ull * 4;        // out 4x4
  const uint64_t taps = 8ull * 9;             // per filter per position
  EXPECT_EQ(c.count(sim::Event::kMac), positions * taps * 16);
  EXPECT_EQ(c.count(sim::Event::kFlashSeqByte), positions * taps * 16);
  EXPECT_EQ(c.count(sim::Event::kRequant), positions * 16);
}

TEST(BaselineConv, PaddingReducesTapCount) {
  Rng rng(4);
  nn::ConvSpec pad1{8, 8, 3, 3, 1, 1, 1};
  nn::ConvSpec pad0{8, 8, 3, 3, 1, 0, 1};
  QTensor in = random_input(rng, 8, 6, 6, 8, false);
  QTensor w = random_weights(rng, pad1);
  Requant rq = Requant::uniform(8, in.scale * w.scale, {}, 0.01f, 8, false, true);
  sim::CostCounter c1, c0;
  baseline_conv2d(in, w, pad1, rq, &c1);
  baseline_conv2d(in, w, pad0, rq, &c0);
  // Same-size output with padding has more positions but boundary positions
  // have fewer valid taps; MACs per interior position are equal.
  EXPECT_GT(c1.count(sim::Event::kMac), c0.count(sim::Event::kMac));
}

TEST(BaselineLinear, MatchesManualDot) {
  QTensor in({1, 3}, 8, false);
  in.scale = 0.5f;
  in.data = {2, 4, 6};
  QTensor w({2, 3}, 8, true);
  w.scale = 0.5f;
  w.data = {1, 1, 1, -1, 0, 1};
  Requant rq = Requant::uniform(2, 0.25f, {}, 0.25f, 16, true, false);
  QTensor out = baseline_linear(in, w, rq, nullptr);
  EXPECT_EQ(out.data[0], 12);  // (2+4+6) * 0.25 / 0.25
  EXPECT_EQ(out.data[1], 4);   // (-2+0+6)
}

TEST(MaxPoolQ, PreservesScaleAndPicksMax) {
  QTensor in({1, 1, 4, 4}, 8, false);
  in.scale = 0.3f;
  for (int i = 0; i < 16; ++i) in.data[static_cast<std::size_t>(i)] = static_cast<int16_t>(i);
  QTensor out = maxpool_q(in, 2, 2, nullptr);
  EXPECT_EQ(out.scale, 0.3f);
  EXPECT_EQ(out.data[0], 5);
  EXPECT_EQ(out.data[3], 15);
}

TEST(GlobalAvgPoolQ, AveragesAndRequantizes) {
  QTensor in({1, 2, 2, 2}, 8, false);
  in.scale = 1.0f;
  in.data = {0, 2, 4, 6, 10, 10, 10, 10};
  // scale per channel: s_in / HW = 0.25.
  Requant rq = Requant::uniform(2, 0.25f, {}, 1.0f, 8, false, false);
  QTensor out = global_avgpool_q(in, rq, nullptr);
  EXPECT_EQ(out.data[0], 3);   // mean of 0,2,4,6
  EXPECT_EQ(out.data[1], 10);  // mean of 10s
}

TEST(AddQ, CombinesScalesAndZeroPoints) {
  QTensor a({1, 1, 1, 2}, 8, false);
  a.scale = 0.5f;
  a.data = {4, 2};
  QTensor b({1, 1, 1, 2}, 8, false);
  b.scale = 0.25f;
  b.zero_point = 8;
  b.data = {16, 0};  // reals: 2.0, -2.0
  Requant rq = Requant::uniform(1, 1.0f, {}, 0.5f, 8, false, false);
  rq.out.zero_point = 16;
  QTensor out = add_q(a, b, rq, nullptr);
  EXPECT_EQ(out.data[0], 16 + 8);  // (2 + 2) / 0.5 + 16
  EXPECT_EQ(out.data[1], 16 - 2);  // (1 - 2) / 0.5 + 16
}

TEST(AddQ, FusedReluClampsNegatives) {
  QTensor a({1, 1, 1, 1}, 8, false);
  a.scale = 1.0f;
  a.data = {1};
  QTensor b({1, 1, 1, 1}, 8, false);
  b.scale = 1.0f;
  b.zero_point = 10;
  b.data = {0};  // real -10
  Requant rq = Requant::uniform(1, 1.0f, {}, 1.0f, 8, false, true);
  QTensor out = add_q(a, b, rq, nullptr);
  EXPECT_EQ(out.data[0], 0);
}

TEST(ScratchBytes, Im2ColBufferFormula) {
  nn::ConvSpec spec{32, 64, 3, 3, 1, 1, 1};
  EXPECT_EQ(baseline_conv_scratch_bytes(spec), 2u * 2 * 32 * 9 * 2);
}

}  // namespace
}  // namespace bswp::kernels
