// Batched execution tests: batch-N bit-identity against N sequential runs
// across the whole model zoo (act_bits {4, 8}, both host lanes, odd batch
// sizes), CostCounter batch-invariance (a batched run tallies exactly N x
// the per-image counts, so MCU latency estimates never depend on serving
// batch size), the zero-heap-allocation guarantee of the warm batched path,
// the XNOR batched core, and the ServingPool's chunked batched steal loop.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "api/bswp.h"
#include "binary/binary_backend.h"
// Replaces global operator new for this test binary so the batched path's
// steady-state zero-allocation claim is asserted, not assumed.
#include "core/counting_allocator.h"
#include "core/rng.h"
#include "models/zoo.h"
#include "runtime/executor.h"
#include "runtime/serving_pool.h"

namespace bswp::runtime {
namespace {

// --- environment (golden-harness style, mirrors test_simd_kernels) -----------

struct ZooCase {
  nn::Graph graph;
  std::unique_ptr<data::Dataset> cal;
  std::vector<Tensor> images;
};

ZooCase make_case(const models::NamedModel& m, uint64_t seed, int n_images) {
  ZooCase c;
  models::ModelOptions mo;
  mo.image_size = 16;
  mo.width = 0.25f;
  mo.num_classes = 10;
  if (m.on_cifar) {
    data::SyntheticCifarOptions o;
    o.train_size = 48;
    o.image_size = 16;
    c.cal = std::make_unique<data::SyntheticCifar>(o, true);
    mo.in_channels = 3;
  } else {
    data::SyntheticQuickdrawOptions o;
    o.train_size = 48;
    o.image_size = 16;
    o.num_classes = 10;
    c.cal = std::make_unique<data::SyntheticQuickdraw>(o, true);
    mo.in_channels = 1;
  }
  c.graph = m.build(mo);
  Rng rng(seed);
  c.graph.init_weights(rng);
  data::Batch b = c.cal->batch(0, 16);
  c.graph.forward(b.images, true);
  for (int i = 0; i < n_images; ++i) {
    Tensor x({1, mo.in_channels, 16, 16});
    c.cal->sample(i % 48, x.data());
    c.images.push_back(std::move(x));
  }
  return c;
}

bswp::Deployment make_deployment(ZooCase& c) {
  pool::CodecOptions co;
  co.pool_size = 16;
  co.kmeans_iters = 5;
  co.max_cluster_vectors = 3000;
  quant::CalibrateOptions qo;
  qo.num_samples = 24;
  return bswp::Deployment::from(c.graph).with_pool(co).calibrate(*c.cal, qo);
}

// --- batch-N bit-identity across the zoo -------------------------------------

TEST(BatchedExecutor, ZooBatchBitIdenticalToSequentialAcrossLanesAndBits) {
  // For every paper network, both act_bits and both host lanes: one
  // run_batch_view over N images must produce byte-identical logits to N
  // run_view calls on a separate executor, at batch sizes 1 (the delegation
  // path), 3 (odd partial batch) and 8 (the planned max).
  constexpr int kMaxBatch = 8;
  uint64_t seed = 4321;
  for (const models::NamedModel& m : models::paper_models()) {
    ZooCase c = make_case(m, seed++, kMaxBatch);
    bswp::Deployment dep = make_deployment(c);
    for (int bits : {4, 8}) {
      for (HostLaneSelect lanes : {HostLaneSelect::kScalar, HostLaneSelect::kSimd}) {
        bswp::Session s = dep.act_bits(bits).host_lanes(lanes).compile();
        Executor seq(s.network());
        std::vector<QTensor> ref;
        for (const Tensor& x : c.images) ref.push_back(seq.run(x));

        Executor batched(s.network(), kMaxBatch);
        for (int n : {1, 3, kMaxBatch}) {
          batched.run_batch_view(std::span<const Tensor>(c.images.data(),
                                                         static_cast<std::size_t>(n)));
          for (int i = 0; i < n; ++i) {
            const kernels::QView v = batched.logits_view(i);
            const QTensor got = v.to_qtensor();
            EXPECT_EQ(got.data, ref[static_cast<std::size_t>(i)].data)
                << m.name << " bits=" << bits << " lanes=" << static_cast<int>(lanes)
                << " batch=" << n << " image=" << i;
            EXPECT_EQ(got.scale, ref[static_cast<std::size_t>(i)].scale);
          }
        }
      }
    }
  }
}

TEST(BatchedExecutor, CounterTalliesExactlyBatchTimesPerImage) {
  // The batched cores amortize real work but must NOT amortize the modeled
  // MCU tallies: a batch-N run tallies exactly N x the per-image counts for
  // every event, so Session::estimate_latency stays batch-invariant. (Counts
  // are closed-form in geometry and pool indices, never in activation
  // values, so one image's counter is every image's counter.)
  ZooCase c = make_case(models::paper_models()[0], 77, 3);
  bswp::Deployment dep = make_deployment(c);
  for (HostLaneSelect lanes : {HostLaneSelect::kScalar, HostLaneSelect::kSimd}) {
    bswp::Session s = dep.act_bits(4).host_lanes(lanes).compile();
    Executor seq(s.network());
    sim::CostCounter one;
    seq.run_view(c.images[0], &one);

    Executor batched(s.network(), 3);
    sim::CostCounter three;
    batched.run_batch_view(std::span<const Tensor>(c.images.data(), 3), &three);
    for (int e = 0; e < sim::kNumEvents; ++e) {
      const auto ev = static_cast<sim::Event>(e);
      EXPECT_EQ(three.count(ev), 3 * one.count(ev))
          << "lanes=" << static_cast<int>(lanes) << " event " << sim::event_name(ev);
    }
  }
}

TEST(BatchedExecutor, SteadyStateBatchRunIsAllocationFree) {
  ZooCase c = make_case(models::paper_models()[0], 55, 4);
  bswp::Deployment dep = make_deployment(c);
  bswp::Session s = dep.act_bits(8).host_lanes(HostLaneSelect::kCostModel).compile();
  Executor exec(s.network(), 4);
  const std::span<const Tensor> batch(c.images.data(), 4);
  exec.run_batch_view(batch);  // warm-up (construction already allocated everything)
  const std::uint64_t before = bswp::alloc_count();
  for (int i = 0; i < 10; ++i) exec.run_batch_view(batch);
  const std::uint64_t after = bswp::alloc_count();
  EXPECT_EQ(after, before) << "Executor::run_batch_view allocated on the heap in steady state";
}

TEST(BatchedExecutor, RejectsOversizedBatch) {
  ZooCase c = make_case(models::paper_models()[0], 66, 3);
  bswp::Deployment dep = make_deployment(c);
  bswp::Session s = dep.compile();
  Executor exec(s.network(), 2);
  EXPECT_EQ(exec.max_batch(), 2);
  EXPECT_THROW(exec.run_batch_view(std::span<const Tensor>(c.images.data(), 3)),
               std::exception);
}

// --- XNOR batched core -------------------------------------------------------

/// Hand-built two-plan network (quantized input -> binarized conv), the
/// test_registry idiom: the zoo compile path never emits kConvBinary, so the
/// batched XNOR core is exercised directly.
CompiledNetwork binary_net(const Tensor& w, const nn::ConvSpec& spec) {
  CompiledNetwork net;
  LayerPlan input;
  input.kind = PlanKind::kInput;
  input.name = "input";
  input.out_chw = {spec.in_ch, 6, 6};
  input.out.scale = 1.0f / 127.0f;
  input.out.bits = 8;
  input.out.is_signed = true;
  net.plans.push_back(input);

  kernels::Requant rq;
  rq.scale.assign(static_cast<std::size_t>(spec.out_ch), 1.0f);
  rq.bias.assign(static_cast<std::size_t>(spec.out_ch), 0.0f);
  rq.out.scale = 1.0f;
  rq.out.bits = 8;
  rq.out.is_signed = true;
  rq.out.zero_point = 0;
  rq.fuse_relu = false;

  LayerPlan conv = binary::make_binary_conv_plan(w, spec, rq);
  conv.name = "xnor";
  conv.inputs = {0};
  conv.out_chw = {spec.out_ch, 6, 6};
  net.plans.push_back(conv);
  return net;
}

TEST(BatchedExecutor, XnorBatchBitIdenticalAndCounterInvariant) {
  nn::ConvSpec spec;
  spec.in_ch = 4;
  spec.out_ch = 2;
  spec.kh = spec.kw = 3;
  spec.stride = 1;
  spec.pad = 1;
  spec.groups = 1;
  Tensor w({2, 4, 3, 3});
  Rng rng(11);
  rng.fill_normal(w, 1.0f);
  CompiledNetwork net = binary_net(w, spec);

  std::vector<Tensor> images;
  for (int b = 0; b < 3; ++b) {
    Tensor x({1, 4, 6, 6});
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = ((i + static_cast<std::size_t>(b)) % 3 == 0) ? 0.5f : -0.25f;
    }
    images.push_back(std::move(x));
  }

  Executor seq(net);
  sim::CostCounter one;
  std::vector<QTensor> ref;
  for (const Tensor& x : images) ref.push_back(seq.run(x));
  seq.run_view(images[0], &one);

  Executor batched(net, 3);
  sim::CostCounter three;
  batched.run_batch_view(std::span<const Tensor>(images.data(), 3), &three);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(batched.logits_view(i).to_qtensor().data, ref[static_cast<std::size_t>(i)].data)
        << "image " << i;
  }
  for (int e = 0; e < sim::kNumEvents; ++e) {
    const auto ev = static_cast<sim::Event>(e);
    EXPECT_EQ(three.count(ev), 3 * one.count(ev)) << "event " << sim::event_name(ev);
  }
}

// --- ServingPool chunked batched steal loop ----------------------------------

TEST(BatchedServingPool, ChunkedBatchesBitIdenticalToPerImagePool) {
  // exec_batch = 1 reproduces the per-image steal loop; larger widths route
  // each stolen chunk through one run_batch_view. All settings must agree
  // bit-for-bit, including a ragged tail (17 images, chunks of 4).
  ZooCase c = make_case(models::paper_models()[0], 33, 17);
  bswp::Deployment dep = make_deployment(c);
  bswp::Session s = dep.compile();

  ServingPool per_image(s.network(), /*exec_batch=*/1);
  std::vector<QTensor> ref = per_image.run(c.images, 2);
  for (int exec_batch : {3, 4, 8}) {
    ServingPool pool(s.network(), exec_batch);
    for (int workers : {1, 3}) {
      BatchStats st;
      const std::vector<QTensor> got = pool.run(c.images, workers, &st);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(got[i].data, ref[i].data)
            << "exec_batch=" << exec_batch << " workers=" << workers << " image=" << i;
      }
      EXPECT_EQ(st.latency.count, c.images.size());
      EXPECT_GT(st.latency.mean_us, 0.0);
    }
  }
}

TEST(BatchedServingPool, FailedBatchLeavesStatsUntouchedUnderChunking) {
  // PR-4 semantics must survive chunked execution: a failing image aborts
  // the batch early, the first error is rethrown after quiescence, the
  // caller's stats stay untouched, and the pool serves the next batch.
  ZooCase c = make_case(models::paper_models()[0], 44, 9);
  bswp::Deployment dep = make_deployment(c);
  bswp::Session s = dep.compile();

  std::vector<Tensor> images = c.images;
  const Tensor good = images[4];
  images[4] = Tensor({5, 16, 16}, 0.1f);  // wrong channel count

  ServingPool pool(s.network(), /*exec_batch=*/4);
  BatchStats st;
  st.images = 777;
  st.workers = -3;
  st.latency.p99_us = 123.0;
  EXPECT_THROW(pool.run(images, 3, &st), std::invalid_argument);
  EXPECT_EQ(st.images, 777u);
  EXPECT_EQ(st.workers, -3);
  EXPECT_EQ(st.latency.p99_us, 123.0);
  // Single-worker inline path takes the same chunked route.
  EXPECT_THROW(pool.run(images, 1, &st), std::invalid_argument);
  EXPECT_EQ(st.images, 777u);

  images[4] = good;
  const std::vector<QTensor> ok = pool.run(images, 3, &st);
  ASSERT_EQ(ok.size(), images.size());
  EXPECT_EQ(st.images, images.size());
  Executor check_exec(s.network());
  EXPECT_EQ(ok[4].data, check_exec.run(images[4]).data);
}

}  // namespace
}  // namespace bswp::runtime
