#include "binary/binarized.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "models/zoo.h"
#include "nn/trainer.h"

namespace bswp::binary {
namespace {

TEST(BinarizeWeights, ProjectsToSignTimesMeanAbs) {
  nn::Graph g;
  int x = g.input(4, 4, 4);
  g.conv2d(x, 2, 3, 1, 1);  // first conv — skipped by default
  Rng rng(1);
  g.init_weights(rng);
  nn::Graph g2 = g;
  binarize_weights(g2, /*skip_first_conv=*/false, /*skip_classifier=*/true);
  const Tensor& w = g2.node(1).weight;
  // Per filter: exactly two magnitudes (alpha), signs match original.
  for (int o = 0; o < 2; ++o) {
    double mean_abs = 0.0;
    const std::size_t per = w.size() / 2;
    for (std::size_t j = 0; j < per; ++j) mean_abs += std::fabs(g.node(1).weight[o * per + j]);
    const float alpha = static_cast<float>(mean_abs / per);
    for (std::size_t j = 0; j < per; ++j) {
      EXPECT_NEAR(std::fabs(w[o * per + j]), alpha, 1e-5);
      EXPECT_EQ(w[o * per + j] >= 0, g.node(1).weight[o * per + j] >= 0);
    }
  }
}

TEST(BinarizeWeights, SkipFlagsRespected) {
  nn::Graph g;
  int x = g.input(4, 4, 4);
  x = g.conv2d(x, 4, 3, 1, 1);
  x = g.global_avgpool(x);
  g.linear(x, 2);
  Rng rng(2);
  g.init_weights(rng);
  nn::Graph g2 = g;
  binarize_weights(g2, /*skip_first_conv=*/true, /*skip_classifier=*/true);
  for (std::size_t i = 0; i < g.node(1).weight.size(); ++i) {
    EXPECT_EQ(g2.node(1).weight[i], g.node(1).weight[i]);  // first conv untouched
  }
  for (std::size_t i = 0; i < g.node(3).weight.size(); ++i) {
    EXPECT_EQ(g2.node(3).weight[i], g.node(3).weight[i]);  // classifier untouched
  }
}

TEST(XnorConv, MatchesFloatConvOnBinarizedOperands) {
  Rng rng(3);
  nn::ConvSpec spec{32, 6, 3, 3, 1, 1, 1};
  // Random +-1 input and +-alpha weights.
  Tensor x({1, 32, 5, 5});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform() < 0.5 ? -1.0f : 1.0f;
  Tensor w(spec.weight_shape());
  for (int o = 0; o < 6; ++o) {
    const float alpha = 0.1f * static_cast<float>(o + 1);
    for (int j = 0; j < 32 * 9; ++j) {
      w[static_cast<std::size_t>(o) * 32 * 9 + j] = rng.uniform() < 0.5 ? -alpha : alpha;
    }
  }
  PackedBinaryConv packed = pack_binary_conv(w, spec);
  PackedBinaryInput pin = pack_binary_input(x);
  Tensor out = xnor_conv2d(pin, packed, nullptr);

  // Reference float conv with -1 padding (packed zeros decode to -1).
  Tensor ref = [&] {
    Tensor r({1, 6, 5, 5});
    for (int o = 0; o < 6; ++o)
      for (int oy = 0; oy < 5; ++oy)
        for (int ox = 0; ox < 5; ++ox) {
          double acc = 0.0;
          for (int c = 0; c < 32; ++c)
            for (int ky = 0; ky < 3; ++ky)
              for (int kx = 0; kx < 3; ++kx) {
                const int iy = oy + ky - 1, ix = ox + kx - 1;
                const float a =
                    (iy < 0 || iy >= 5 || ix < 0 || ix >= 5) ? -1.0f : x.at(0, c, iy, ix);
                acc += static_cast<double>(a) * w.at(o, c, ky, kx);
              }
          r.at(0, o, oy, ox) = static_cast<float>(acc);
        }
    return r;
  }();
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_NEAR(out[i], ref[i], 1e-3) << i;
}

TEST(XnorConv, TailMaskHandlesNonMultipleOf32Channels) {
  Rng rng(4);
  nn::ConvSpec spec{40, 2, 1, 1, 1, 0, 1};
  Tensor x({1, 40, 2, 2});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform() < 0.5 ? -1.0f : 1.0f;
  Tensor w(spec.weight_shape());
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.uniform() < 0.5 ? -0.2f : 0.2f;
  PackedBinaryConv packed = pack_binary_conv(w, spec);
  PackedBinaryInput pin = pack_binary_input(x);
  Tensor out = xnor_conv2d(pin, packed, nullptr);
  for (int o = 0; o < 2; ++o) {
    double acc = 0.0;
    for (int c = 0; c < 40; ++c) acc += static_cast<double>(x.at(0, c, 1, 1)) * w.at(o, c, 0, 0);
    EXPECT_NEAR(out.at(0, o, 1, 1), acc, 1e-3);
  }
}

TEST(XnorConv, CountsPackedWordTraffic) {
  nn::ConvSpec spec{64, 8, 3, 3, 1, 1, 1};
  Tensor w(spec.weight_shape(), 0.1f);
  Tensor x({1, 64, 4, 4}, 1.0f);
  PackedBinaryConv packed = pack_binary_conv(w, spec);
  PackedBinaryInput pin = pack_binary_input(x);
  sim::CostCounter c;
  xnor_conv2d(pin, packed, &c);
  const uint64_t inner = 4ull * 4 * 8 * 9 * 2;  // positions*filters*taps*words
  EXPECT_EQ(c.count(sim::Event::kFlashSeqWord), inner);
  EXPECT_EQ(c.count(sim::Event::kAlu), 3 * inner);
}

TEST(BinarizedTraining, LearnsAboveChanceButBelowFloat) {
  // §5.5: binarized TinyConv trains but lands well below the weight-pool /
  // float model on the same data.
  data::SyntheticCifarOptions dopt;
  dopt.num_classes = 4;
  dopt.train_size = 256;
  dopt.test_size = 96;
  dopt.image_size = 16;
  dopt.noise_stddev = 0.05f;
  data::SyntheticCifar train(dopt, true), test(dopt, false);

  models::ModelOptions mo;
  mo.image_size = 16;
  mo.num_classes = 4;
  mo.width = 0.5f;
  nn::Graph bin = models::build_binarized_tinyconv(mo);
  Rng rng(5);
  bin.init_weights(rng);

  nn::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.lr = 0.03f;
  nn::Trainer trainer(cfg);
  trainer.set_post_step([](nn::Graph& g) { binarize_weights(g); });
  binarize_weights(bin);
  const nn::TrainStats stats = trainer.fit(bin, train, test);
  EXPECT_GT(stats.final_test_acc, 40.0f);  // well above 25% chance
}

}  // namespace
}  // namespace bswp::binary
