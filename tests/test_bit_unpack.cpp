#include "kernels/bit_unpack.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace bswp::kernels {
namespace {

TEST(BitUnpack, KnownPattern) {
  // Elements: 5 = 0b101, 3 = 0b011 with M = 3 bits, G = 2.
  const int16_t vals[] = {5, 3};
  uint32_t out[3];
  unpack_bits(vals, 2, 3, out, nullptr);
  // Bit plane 0 (LSB): element0 bit0=1, element1 bit0=1 -> 0b11.
  EXPECT_EQ(out[0], 0b11u);
  // Bit plane 1: element0 bit1=0, element1 bit1=1 -> 0b10.
  EXPECT_EQ(out[1], 0b10u);
  // Bit plane 2: element0 bit2=1, element1 bit2=0 -> 0b01.
  EXPECT_EQ(out[2], 0b01u);
}

TEST(BitUnpack, RecomposeRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const int G = 8, M = 8;
    int16_t vals[8];
    for (auto& v : vals) v = static_cast<int16_t>(rng.uniform_int(256));
    uint32_t planes[8];
    unpack_bits(vals, G, M, planes, nullptr);
    for (int i = 0; i < G; ++i) {
      EXPECT_EQ(recompose_element(planes, M, i), vals[i]);
    }
  }
}

TEST(BitUnpack, TruncatedBitwidthKeepsLowBits) {
  // With M < 8 only the M LSBs are represented: recompose == vals mod 2^M.
  const int16_t vals[] = {0xF3, 0x0A, 0x7F, 0x80};
  uint32_t planes[4];
  unpack_bits(vals, 4, 4, planes, nullptr);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(recompose_element(planes, 4, i), vals[i] & 0xF);
  }
}

TEST(BitUnpack, ZeroInputAllPlanesZero) {
  const int16_t vals[8] = {};
  uint32_t planes[8];
  unpack_bits(vals, 8, 8, planes, nullptr);
  for (int j = 0; j < 8; ++j) EXPECT_EQ(planes[j], 0u);
}

TEST(BitUnpack, MaxValuesAllPlanesFull) {
  int16_t vals[8];
  for (auto& v : vals) v = 255;
  uint32_t planes[8];
  unpack_bits(vals, 8, 8, planes, nullptr);
  for (int j = 0; j < 8; ++j) EXPECT_EQ(planes[j], 0xFFu);
}

TEST(BitUnpack, CountsMatchAnalysis) {
  // §4.1: unpacking a G-element M-bit vector is a G*M-iteration loop.
  const int16_t vals[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  uint32_t planes[8];
  sim::CostCounter c;
  unpack_bits(vals, 8, 8, planes, &c);
  EXPECT_EQ(c.count(sim::Event::kSramRead), 8u);            // one load per element
  EXPECT_EQ(c.count(sim::Event::kAlu), 2ull * 8 * 8);       // shift+or per (elem, bit)
  EXPECT_EQ(c.count(sim::Event::kSramWrite), 8u);           // store per bit-vector
}

TEST(BitUnpack, CountsScaleWithBitwidth) {
  const int16_t vals[8] = {};
  uint32_t planes[8];
  sim::CostCounter c8, c4;
  unpack_bits(vals, 8, 8, planes, &c8);
  unpack_bits(vals, 8, 4, planes, &c4);
  EXPECT_EQ(c8.count(sim::Event::kAlu), 2 * c4.count(sim::Event::kAlu));
}

class BitwidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitwidthSweep, RoundTripAtAllBitwidths) {
  const int M = GetParam();
  Rng rng(static_cast<uint64_t>(M));
  int16_t vals[8];
  for (auto& v : vals) v = static_cast<int16_t>(rng.uniform_int(1u << M));
  uint32_t planes[16];
  unpack_bits(vals, 8, M, planes, nullptr);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(recompose_element(planes, M, i), vals[i]);
}

INSTANTIATE_TEST_SUITE_P(OneToEight, BitwidthSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace bswp::kernels
