#include "kernels/bitserial_conv.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "kernels/baseline_conv.h"
#include "pool/grouping.h"

namespace bswp::kernels {
namespace {

using pool::DotLut;
using pool::LutOptions;
using pool::WeightPool;

struct Fixture {
  WeightPool wp;
  pool::PooledLayer layer;
  PackedIndices packed;
  nn::ConvSpec spec;
  QTensor input;
  Tensor dense_weights;  // reconstructed float weights (pool[idx])

  Fixture(int in_ch, int out_ch, int k, int pad, int pool_size, int act_bits, uint64_t seed,
          int h = 6, int w = 6, int stride = 1) {
    Rng rng(seed);
    wp.group_size = 8;
    wp.vectors = Tensor({pool_size, 8});
    rng.fill_normal(wp.vectors, 0.3f);

    spec = nn::ConvSpec{in_ch, out_ch, k, k, stride, pad, 1};
    layer.node = 0;
    layer.out_ch = out_ch;
    layer.channel_groups = in_ch / 8;
    layer.kh = layer.kw = k;
    layer.indices.resize(static_cast<std::size_t>(out_ch) * layer.channel_groups * k * k);
    for (auto& idx : layer.indices)
      idx = static_cast<uint16_t>(rng.uniform_int(static_cast<uint64_t>(pool_size)));
    packed = PackedIndices::pack(layer);

    input = QTensor({1, in_ch, h, w}, act_bits, /*is_signed=*/false);
    input.scale = 0.04f;
    for (auto& v : input.data)
      v = static_cast<int16_t>(rng.uniform_int(1ull << act_bits));

    dense_weights = Tensor(spec.weight_shape());
    Tensor vecs({static_cast<int>(layer.indices.size()), 8});
    for (std::size_t i = 0; i < layer.indices.size(); ++i) {
      for (int j = 0; j < 8; ++j)
        vecs[i * 8 + j] = wp.vectors[static_cast<std::size_t>(layer.indices[i]) * 8 + j];
    }
    pool::scatter_z_vectors(dense_weights, vecs, 8);
  }

  /// Reference: int8 conv over the *quantized pool* weights. With a wide LUT
  /// the bit-serial kernel must match this bit-exactly.
  QTensor reference(const DotLut& lut, const Requant& rq) const {
    QTensor qw(spec.weight_shape(), 8, true);
    qw.scale = lut.pool_scale;
    const QTensor qpool = pool::quantize_pool(wp, 8);
    Tensor vecs({static_cast<int>(layer.indices.size()), 8});
    for (std::size_t i = 0; i < layer.indices.size(); ++i) {
      for (int j = 0; j < 8; ++j) {
        vecs[i * 8 + j] =
            static_cast<float>(qpool.data[static_cast<std::size_t>(layer.indices[i]) * 8 + j]);
      }
    }
    Tensor dense(spec.weight_shape());
    pool::scatter_z_vectors(dense, vecs, 8);
    for (std::size_t i = 0; i < dense.size(); ++i) qw.data[i] = static_cast<int16_t>(dense[i]);
    return baseline_conv2d(input, qw, spec, rq, nullptr);
  }
};

Requant make_rq(const Fixture& f, const DotLut& lut) {
  return Requant::uniform(f.spec.out_ch, f.input.scale * lut.pool_scale * lut.entry_scale, {},
                          0.005f, 8, false, true);
}

TEST(BitSerialConv, ExactlyMatchesInt8ReferenceWithWideLut) {
  Fixture f(16, 12, 3, 1, 32, 8, /*seed=*/1);
  LutOptions lo;
  lo.bitwidth = 16;  // exact entries
  DotLut lut = build_lut(f.wp, lo);
  ASSERT_EQ(lut.entry_scale, 1.0f);
  Requant rq = make_rq(f, lut);
  QTensor ref = f.reference(lut, rq);
  QTensor out = bitserial_conv2d(f.input, f.packed, lut, f.spec, rq,
                                 BitSerialVariant::kCached, nullptr);
  ASSERT_EQ(out.data.size(), ref.data.size());
  for (std::size_t i = 0; i < out.data.size(); ++i) EXPECT_EQ(out.data[i], ref.data[i]) << i;
}

TEST(BitSerialConv, AllVariantsBitIdentical) {
  Fixture f(16, 40, 3, 1, 32, 6, /*seed=*/2);
  DotLut lut = build_lut(f.wp, LutOptions{});
  Requant rq = make_rq(f, lut);
  const QTensor base = bitserial_conv2d(f.input, f.packed, lut, f.spec, rq,
                                        BitSerialVariant::kInputReuse, nullptr);
  for (auto v : {BitSerialVariant::kNaive, BitSerialVariant::kCached,
                 BitSerialVariant::kCachedPrecompute, BitSerialVariant::kCachedMemoize}) {
    QTensor out = bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, v, nullptr);
    for (std::size_t i = 0; i < out.data.size(); ++i) {
      ASSERT_EQ(out.data[i], base.data[i]) << variant_name(v) << " elem " << i;
    }
  }
}

class ActBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(ActBitsSweep, MatchesReferenceAtEveryBitwidth) {
  const int bits = GetParam();
  Fixture f(8, 8, 3, 1, 16, bits, /*seed=*/100 + static_cast<uint64_t>(bits));
  LutOptions lo;
  lo.bitwidth = 16;
  DotLut lut = build_lut(f.wp, lo);
  Requant rq = make_rq(f, lut);
  QTensor ref = f.reference(lut, rq);
  QTensor out = bitserial_conv2d(f.input, f.packed, lut, f.spec, rq,
                                 BitSerialVariant::kCachedPrecompute, nullptr);
  for (std::size_t i = 0; i < out.data.size(); ++i) EXPECT_EQ(out.data[i], ref.data[i]);
}

INSTANTIATE_TEST_SUITE_P(OneToEight, ActBitsSweep, ::testing::Range(1, 9));

TEST(BitSerialConv, StrideTwoAndNoPadding) {
  Fixture f(8, 8, 3, 0, 16, 8, /*seed=*/3, 7, 7, /*stride=*/2);
  LutOptions lo;
  lo.bitwidth = 16;
  DotLut lut = build_lut(f.wp, lo);
  Requant rq = make_rq(f, lut);
  QTensor ref = f.reference(lut, rq);
  QTensor out =
      bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, BitSerialVariant::kCached, nullptr);
  ASSERT_EQ(out.shape, ref.shape);
  for (std::size_t i = 0; i < out.data.size(); ++i) EXPECT_EQ(out.data[i], ref.data[i]);
}

TEST(BitSerialConv, NarrowLutQuantizationStaysClose) {
  Fixture f(16, 8, 3, 1, 64, 8, /*seed=*/4);
  LutOptions wide, narrow;
  wide.bitwidth = 16;
  narrow.bitwidth = 8;
  DotLut lut_w = build_lut(f.wp, wide);
  DotLut lut_n = build_lut(f.wp, narrow);
  Requant rq_w = make_rq(f, lut_w);
  Requant rq_n = make_rq(f, lut_n);
  QTensor out_w =
      bitserial_conv2d(f.input, f.packed, lut_w, f.spec, rq_w, BitSerialVariant::kCached, nullptr);
  QTensor out_n =
      bitserial_conv2d(f.input, f.packed, lut_n, f.spec, rq_n, BitSerialVariant::kCached, nullptr);
  double err = 0.0;
  for (std::size_t i = 0; i < out_w.data.size(); ++i) {
    err += std::abs(out_w.data[i] - out_n.data[i]);
  }
  // 8-bit LUT introduces only small per-partial-sum rounding (Table 5).
  EXPECT_LT(err / static_cast<double>(out_w.data.size()), 3.0);
}

TEST(BitSerialConv, LookupCountScalesLinearlyWithActBits) {
  // Runtime ∝ activation bitwidth (§3.3 / Fig. 8): result lookups = F*M per
  // (position, tap, group).
  for (int bits : {2, 4, 8}) {
    Fixture f(8, 8, 3, 0, 16, bits, /*seed=*/5);
    DotLut lut = build_lut(f.wp, LutOptions{});
    Requant rq = make_rq(f, lut);
    sim::CostCounter c;
    bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, BitSerialVariant::kInputReuse, &c);
    const uint64_t positions = 4ull * 4, taps = 9, groups = 1, F = 8;
    EXPECT_EQ(c.count(sim::Event::kFlashRandomByte),
              positions * taps * groups * F * static_cast<uint64_t>(bits));
  }
}

TEST(BitSerialConv, CachedVariantMovesLookupsToSram) {
  Fixture f(8, 16, 3, 1, 16, 8, /*seed=*/6);
  DotLut lut = build_lut(f.wp, LutOptions{});
  Requant rq = make_rq(f, lut);
  sim::CostCounter reuse, cached;
  bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, BitSerialVariant::kInputReuse, &reuse);
  bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, BitSerialVariant::kCached, &cached);
  EXPECT_GT(reuse.count(sim::Event::kFlashRandomByte), 0u);
  EXPECT_EQ(cached.count(sim::Event::kFlashRandomByte), 0u);
  EXPECT_GT(cached.count(sim::Event::kFlashSeqWord), 0u);  // cache fills
}

TEST(BitSerialConv, PrecomputeSharesWorkAcrossManyFilters) {
  // With F >> S the precompute variant does far fewer ALU ops.
  Fixture f(8, 128, 3, 1, 16, 8, /*seed=*/7);
  DotLut lut = build_lut(f.wp, LutOptions{});
  Requant rq = make_rq(f, lut);
  sim::CostCounter cached, pre;
  bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, BitSerialVariant::kCached, &cached);
  bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, BitSerialVariant::kCachedPrecompute, &pre);
  EXPECT_LT(pre.count(sim::Event::kAlu), cached.count(sim::Event::kAlu));
  EXPECT_LT(pre.count(sim::Event::kSramRead), cached.count(sim::Event::kSramRead));
}

TEST(BitSerialConv, NaivePaysUnpackingPerFilter) {
  // §4.1: without input reuse, bit unpacking runs once per filter.
  Fixture f(8, 32, 3, 0, 16, 8, /*seed=*/8);
  DotLut lut = build_lut(f.wp, LutOptions{});
  Requant rq = make_rq(f, lut);
  sim::CostCounter naive, reuse;
  bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, BitSerialVariant::kNaive, &naive);
  bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, BitSerialVariant::kInputReuse, &reuse);
  // Per decomposition the reuse variant unpacks once (2*G*M ALU) while naive
  // unpacks per filter; with F=32 the total ALU gap is ~(F*(unpack+serial)) /
  // (unpack + F*serial) ≈ 7x here.
  EXPECT_GT(naive.count(sim::Event::kAlu), 5 * reuse.count(sim::Event::kAlu));
  EXPECT_GT(naive.count(sim::Event::kSramRead), 5 * reuse.count(sim::Event::kSramRead));
}

TEST(BitSerialConv, MemoizeCostBetweenCachedAndPrecompute) {
  Fixture f(8, 128, 3, 1, 16, 8, /*seed=*/9);
  DotLut lut = build_lut(f.wp, LutOptions{});
  Requant rq = make_rq(f, lut);
  sim::CostCounter cached, memo, pre;
  bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, BitSerialVariant::kCached, &cached);
  bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, BitSerialVariant::kCachedMemoize, &memo);
  bitserial_conv2d(f.input, f.packed, lut, f.spec, rq, BitSerialVariant::kCachedPrecompute, &pre);
  EXPECT_LT(memo.count(sim::Event::kAlu), cached.count(sim::Event::kAlu));
  EXPECT_GE(memo.count(sim::Event::kSramRead), pre.count(sim::Event::kSramRead));
}

TEST(BitSerialConv, RejectsSignedInput) {
  Fixture f(8, 8, 3, 1, 16, 8, /*seed=*/10);
  DotLut lut = build_lut(f.wp, LutOptions{});
  Requant rq = make_rq(f, lut);
  QTensor bad = f.input;
  bad.is_signed = true;
  EXPECT_THROW(
      bitserial_conv2d(bad, f.packed, lut, f.spec, rq, BitSerialVariant::kCached, nullptr),
      std::invalid_argument);
}

TEST(BitSerialConv, RejectsMismatchedIndexMap) {
  Fixture f(8, 8, 3, 1, 16, 8, /*seed=*/11);
  DotLut lut = build_lut(f.wp, LutOptions{});
  Requant rq = make_rq(f, lut);
  nn::ConvSpec wrong = f.spec;
  wrong.out_ch = 9;
  EXPECT_THROW(
      bitserial_conv2d(f.input, f.packed, lut, wrong, rq, BitSerialVariant::kCached, nullptr),
      std::invalid_argument);
}

TEST(BitSerialLinear, MatchesBaselineLinear) {
  Rng rng(12);
  WeightPool wp;
  wp.group_size = 8;
  wp.vectors = Tensor({16, 8});
  rng.fill_normal(wp.vectors, 0.3f);
  LutOptions lo;
  lo.bitwidth = 16;
  DotLut lut = build_lut(wp, lo);
  const QTensor qpool = pool::quantize_pool(wp, 8);

  pool::PooledLayer layer;
  layer.is_linear = true;
  layer.out_ch = 5;
  layer.channel_groups = 3;  // 24 inputs
  layer.kh = layer.kw = 1;
  layer.indices.resize(15);
  for (auto& idx : layer.indices) idx = static_cast<uint16_t>(rng.uniform_int(16));
  PackedIndices packed = PackedIndices::pack(layer);

  QTensor in({1, 24}, 8, false);
  in.scale = 0.1f;
  for (auto& v : in.data) v = static_cast<int16_t>(rng.uniform_int(256));

  QTensor qw({5, 24}, 8, true);
  qw.scale = lut.pool_scale;
  for (int o = 0; o < 5; ++o) {
    for (int g = 0; g < 3; ++g) {
      for (int j = 0; j < 8; ++j) {
        qw.data[static_cast<std::size_t>(o) * 24 + g * 8 + j] =
            qpool.data[static_cast<std::size_t>(layer.index(o, g, 0, 0)) * 8 + j];
      }
    }
  }
  Requant rq = Requant::uniform(5, in.scale * lut.pool_scale, {}, 0.01f, 16, true, false);
  QTensor ref = baseline_linear(in, qw, rq, nullptr);
  QTensor out = bitserial_linear(in, packed, lut, rq, BitSerialVariant::kCached, nullptr);
  for (std::size_t i = 0; i < ref.data.size(); ++i) EXPECT_EQ(out.data[i], ref.data[i]);
}

TEST(ScratchBytes, GrowsWithVariantComplexity) {
  nn::ConvSpec spec{64, 64, 3, 3, 1, 1, 1};
  WeightPool wp;
  wp.group_size = 8;
  wp.vectors = Tensor({64, 8}, 0.1f);
  DotLut lut = build_lut(wp, LutOptions{});
  const auto reuse = bitserial_scratch_bytes(spec, lut, BitSerialVariant::kInputReuse, 8);
  const auto cached = bitserial_scratch_bytes(spec, lut, BitSerialVariant::kCached, 8);
  const auto pre = bitserial_scratch_bytes(spec, lut, BitSerialVariant::kCachedPrecompute, 8);
  EXPECT_LT(reuse, cached);
  EXPECT_LT(cached, pre);
  // The §4.2 example: 8 blocks x 64 entries x 1 byte = 512 B of cache.
  EXPECT_EQ(cached - reuse, 512u);
}

}  // namespace
}  // namespace bswp::kernels
