#include "pool/codec.h"

#include <gtest/gtest.h>

#include <set>

#include "core/rng.h"
#include "pool/grouping.h"

namespace bswp::pool {
namespace {

nn::Graph poolable_net(int classes = 4) {
  nn::Graph g;
  int x = g.input(3, 8, 8);           // first conv: 3 channels -> uncompressed
  x = g.conv2d(x, 16, 3, 1, 1);       // conv1 (not poolable, in_ch=3)
  x = g.relu(x);
  x = g.conv2d(x, 32, 3, 1, 1);       // poolable
  x = g.relu(x);
  x = g.conv2d(x, 32, 1, 1, 0);       // poolable 1x1
  x = g.relu(x);
  x = g.global_avgpool(x);
  g.linear(x, classes);
  return g;
}

CodecOptions small_opts(int pool_size = 16) {
  CodecOptions o;
  o.pool_size = pool_size;
  o.group_size = 8;
  o.kmeans_iters = 15;
  return o;
}

TEST(Codec, SelectsOnlyPoolableLayers) {
  nn::Graph g = poolable_net();
  Rng rng(1);
  g.init_weights(rng);
  PooledNetwork net = build_weight_pool(g, small_opts());
  EXPECT_EQ(net.layers.size(), 2u);  // conv2 and conv3
  // conv1 (node 1) and the classifier are uncompressed.
  EXPECT_EQ(net.uncompressed_nodes.size(), 2u);
  EXPECT_EQ(net.pool.size(), 16);
  EXPECT_EQ(net.pool.group_size, 8);
}

TEST(Codec, IndicesWithinPoolAndCorrectCount) {
  nn::Graph g = poolable_net();
  Rng rng(2);
  g.init_weights(rng);
  PooledNetwork net = build_weight_pool(g, small_opts());
  for (const PooledLayer& l : net.layers) {
    const nn::Node& n = g.node(l.node);
    const std::size_t expected = static_cast<std::size_t>(n.conv.out_ch) *
                                 (n.conv.in_ch / 8) * n.conv.kh * n.conv.kw;
    EXPECT_EQ(l.indices.size(), expected);
    for (uint16_t idx : l.indices) EXPECT_LT(idx, 16);
  }
}

TEST(Codec, ReconstructionWritesPoolVectors) {
  nn::Graph g = poolable_net();
  Rng rng(3);
  g.init_weights(rng);
  PooledNetwork net = build_weight_pool(g, small_opts());
  reconstruct_weights(g, net);
  // Every weight vector of pooled layers must now be exactly a pool vector.
  for (const PooledLayer& l : net.layers) {
    Tensor vecs = extract_z_vectors(g.node(l.node).weight, 8);
    for (int v = 0; v < vecs.dim(0); ++v) {
      const uint16_t idx = l.indices[static_cast<std::size_t>(v)];
      for (int j = 0; j < 8; ++j) {
        EXPECT_EQ(vecs[static_cast<std::size_t>(v) * 8 + j],
                  net.pool.vectors[static_cast<std::size_t>(idx) * 8 + j]);
      }
    }
  }
}

TEST(Codec, ReconstructionReducesToNearestAssignment) {
  // After reconstruction, re-assigning indices must be a fixed point.
  nn::Graph g = poolable_net();
  Rng rng(4);
  g.init_weights(rng);
  PooledNetwork net = build_weight_pool(g, small_opts());
  reconstruct_weights(g, net);
  PooledNetwork net2 = net;
  reassign_indices(g, net2);
  for (std::size_t l = 0; l < net.layers.size(); ++l) {
    EXPECT_EQ(net.layers[l].indices, net2.layers[l].indices);
  }
}

TEST(Codec, ReconstructionErrorShrinksWithPoolSize) {
  nn::Graph g = poolable_net();
  Rng rng(5);
  g.init_weights(rng);
  double prev_err = 1e300;
  for (int pool_size : {4, 16, 64}) {
    nn::Graph gc = g;  // fresh copy of original weights
    PooledNetwork net = build_weight_pool(gc, small_opts(pool_size));
    // Measure reconstruction error on conv2.
    const Tensor orig = gc.node(3).weight;
    reconstruct_weights(gc, net);
    double err = 0.0;
    for (std::size_t i = 0; i < orig.size(); ++i) {
      const double d = orig[i] - gc.node(3).weight[i];
      err += d * d;
    }
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
}

TEST(Codec, PoolFcOptionCompressesClassifier) {
  nn::Graph g = poolable_net();
  Rng rng(6);
  g.init_weights(rng);
  CodecOptions opt = small_opts();
  opt.pool_fc = true;
  PooledNetwork net = build_weight_pool(g, opt);
  bool has_linear = false;
  for (const PooledLayer& l : net.layers) has_linear |= l.is_linear;
  EXPECT_TRUE(has_linear);
}

TEST(Codec, PooledFractionIsMajority) {
  nn::Graph g = poolable_net();
  Rng rng(7);
  g.init_weights(rng);
  PooledNetwork net = build_weight_pool(g, small_opts());
  const double frac = pooled_weight_fraction(g, net);
  EXPECT_GT(frac, 0.8);  // conv2+conv3 dominate parameters
  EXPECT_LE(frac, 1.0);
}

TEST(Codec, IndexAccessorLayout) {
  PooledLayer l;
  l.out_ch = 2;
  l.channel_groups = 3;
  l.kh = l.kw = 2;
  l.indices.resize(2 * 3 * 2 * 2);
  for (std::size_t i = 0; i < l.indices.size(); ++i) l.indices[i] = static_cast<uint16_t>(i);
  EXPECT_EQ(l.index(0, 0, 0, 0), 0);
  EXPECT_EQ(l.index(0, 0, 0, 1), 1);
  EXPECT_EQ(l.index(0, 1, 0, 0), 4);
  EXPECT_EQ(l.index(1, 0, 0, 0), 12);
}

TEST(XyCodec, CoefficientsReduceReconstructionError) {
  nn::Graph g = poolable_net();
  Rng rng(8);
  g.init_weights(rng);

  auto recon_err = [&](bool coeff) {
    nn::Graph gc = g;
    XyPoolOptions opt;
    opt.pool_size = 16;
    opt.use_coefficients = coeff;
    XyPooledNetwork net = build_xy_pool(gc, opt);
    double err = 0.0;
    std::vector<Tensor> originals;
    for (const auto& layer : net.layers) originals.push_back(gc.node(layer.node).weight);
    reconstruct_xy_weights(gc, net);
    for (std::size_t li = 0; li < net.layers.size(); ++li) {
      const Tensor& now = gc.node(net.layers[li].node).weight;
      for (std::size_t i = 0; i < now.size(); ++i) {
        const double d = originals[li][i] - now[i];
        err += d * d;
      }
    }
    return err;
  };
  EXPECT_LT(recon_err(true), recon_err(false));
}

TEST(XyCodec, SkipsOneByOneKernels) {
  nn::Graph g = poolable_net();
  Rng rng(9);
  g.init_weights(rng);
  XyPoolOptions opt;
  opt.pool_size = 8;
  XyPooledNetwork net = build_xy_pool(g, opt);
  for (const auto& layer : net.layers) {
    EXPECT_NE(g.node(layer.node).conv.kh * g.node(layer.node).conv.kw, 1);
  }
}

}  // namespace
}  // namespace bswp::pool
