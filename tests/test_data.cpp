#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <set>

namespace bswp::data {
namespace {

SyntheticCifarOptions small_cifar() {
  SyntheticCifarOptions o;
  o.train_size = 64;
  o.test_size = 32;
  o.image_size = 16;
  return o;
}

TEST(SyntheticCifar, ShapesAndSizes) {
  SyntheticCifar train(small_cifar(), true);
  SyntheticCifar test(small_cifar(), false);
  EXPECT_EQ(train.size(), 64);
  EXPECT_EQ(test.size(), 32);
  EXPECT_EQ(train.channels(), 3);
  EXPECT_EQ(train.height(), 16);
  EXPECT_EQ(train.num_classes(), 10);
}

TEST(SyntheticCifar, DeterministicSamples) {
  SyntheticCifar a(small_cifar(), true), b(small_cifar(), true);
  std::vector<float> va(3 * 16 * 16), vb(3 * 16 * 16);
  for (int i = 0; i < 8; ++i) {
    const int la = a.sample(i, va.data());
    const int lb = b.sample(i, vb.data());
    EXPECT_EQ(la, lb);
    EXPECT_EQ(va, vb);
  }
}

TEST(SyntheticCifar, LabelsInRangeAndAllClassesAppear) {
  SyntheticCifarOptions o = small_cifar();
  o.train_size = 500;
  SyntheticCifar ds(o, true);
  std::vector<float> buf(3 * 16 * 16);
  std::set<int> labels;
  for (int i = 0; i < ds.size(); ++i) {
    const int l = ds.sample(i, buf.data());
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 10);
    labels.insert(l);
  }
  EXPECT_EQ(labels.size(), 10u);
}

TEST(SyntheticCifar, PixelsBoundedAndNonConstant) {
  SyntheticCifar ds(small_cifar(), true);
  std::vector<float> buf(3 * 16 * 16);
  ds.sample(0, buf.data());
  float mn = 1e9f, mx = -1e9f;
  for (float v : buf) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GE(mn, 0.0f);
  EXPECT_LE(mx, 1.5f);
  EXPECT_GT(mx - mn, 0.05f);
}

TEST(SyntheticCifar, TrainAndTestDiffer) {
  SyntheticCifar train(small_cifar(), true), test(small_cifar(), false);
  std::vector<float> a(3 * 16 * 16), b(3 * 16 * 16);
  train.sample(0, a.data());
  test.sample(0, b.data());
  EXPECT_NE(a, b);
}

TEST(SyntheticCifar, BatchGathersImagesAndLabels) {
  SyntheticCifar ds(small_cifar(), true);
  Batch b = ds.batch(4, 8);
  EXPECT_EQ(b.images.shape(), (std::vector<int>{8, 3, 16, 16}));
  EXPECT_EQ(b.labels.size(), 8u);
  std::vector<float> ref(3 * 16 * 16);
  const int l = ds.sample(4, ref.data());
  EXPECT_EQ(b.labels[0], l);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(b.images[i], ref[i]);
}

TEST(SyntheticQuickdraw, ShapesAndDeterminism) {
  SyntheticQuickdrawOptions o;
  o.num_classes = 20;
  o.train_size = 64;
  o.test_size = 16;
  o.image_size = 20;
  SyntheticQuickdraw a(o, true), b(o, true);
  EXPECT_EQ(a.channels(), 1);
  EXPECT_EQ(a.num_classes(), 20);
  std::vector<float> va(20 * 20), vb(20 * 20);
  EXPECT_EQ(a.sample(3, va.data()), b.sample(3, vb.data()));
  EXPECT_EQ(va, vb);
}

TEST(SyntheticQuickdraw, PixelsInUnitRangeWithInk) {
  SyntheticQuickdrawOptions o;
  o.num_classes = 10;
  o.train_size = 16;
  SyntheticQuickdraw ds(o, true);
  std::vector<float> buf(28 * 28);
  for (int i = 0; i < 8; ++i) {
    ds.sample(i, buf.data());
    float mx = 0.0f;
    double total = 0.0;
    for (float v : buf) {
      ASSERT_GE(v, 0.0f);
      ASSERT_LE(v, 1.0f);
      mx = std::max(mx, v);
      total += v;
    }
    EXPECT_GT(mx, 0.5f);                       // strokes present
    EXPECT_LT(total, 0.5 * buf.size());        // mostly background
  }
}

TEST(SyntheticQuickdraw, ManyClassesAppear) {
  SyntheticQuickdrawOptions o;
  o.num_classes = 100;
  o.train_size = 2000;
  SyntheticQuickdraw ds(o, true);
  std::vector<float> buf(28 * 28);
  std::set<int> labels;
  for (int i = 0; i < 600; ++i) labels.insert(ds.sample(i, buf.data()));
  EXPECT_GT(labels.size(), 80u);
}

TEST(Dataset, GatherArbitraryIndices) {
  SyntheticCifar ds(small_cifar(), true);
  Batch b = ds.gather({5, 1, 3});
  EXPECT_EQ(b.images.dim(0), 3);
  std::vector<float> ref(3 * 16 * 16);
  const int l = ds.sample(1, ref.data());
  EXPECT_EQ(b.labels[1], l);
}

}  // namespace
}  // namespace bswp::data
