// End-to-end engine tests, driven through the bswp::Deployment /
// bswp::Session facade (the arena Executor stays covered via the facade's
// implementation; executor-specific behavior is in test_executor.cpp).
#include <gtest/gtest.h>

#include <cmath>

#include "api/bswp.h"
#include "core/rng.h"
#include "models/zoo.h"
#include "nn/trainer.h"

namespace bswp::runtime {
namespace {

data::SyntheticCifarOptions data_opts() {
  data::SyntheticCifarOptions o;
  o.num_classes = 4;
  o.train_size = 384;
  o.test_size = 96;
  o.image_size = 16;
  o.noise_stddev = 0.05f;
  return o;
}

struct Trained {
  nn::Graph graph;
  data::SyntheticCifar train{data_opts(), true};
  data::SyntheticCifar test{data_opts(), false};
  float float_acc = 0.0f;

  Trained() {
    models::ModelOptions mo;
    mo.image_size = 16;
    mo.num_classes = 4;
    mo.width = 0.25f;
    graph = models::build_resnet_s(mo);
    Rng rng(42);
    graph.init_weights(rng);
    nn::TrainConfig cfg;
    cfg.epochs = 5;
    cfg.batch_size = 32;
    cfg.lr = 0.08f;
    nn::Trainer trainer(cfg);
    float_acc = trainer.fit(graph, train, test).final_test_acc;
  }
};

Trained& trained() {
  static Trained t;  // train once, reuse across tests
  return t;
}

Session compile_plain(Trained& t, const CompileOptions& opt = CompileOptions{}) {
  quant::CalibrateOptions qo;
  qo.num_samples = 64;
  return Deployment::from(t.graph).with_options(opt).calibrate(t.train, qo).compile();
}

Session compile_pooled(Trained& t, int pool_size, const CompileOptions& opt) {
  // Full Figure 2 pipeline: cluster -> fine-tune with the pool fixed ->
  // calibrate -> compile. Skipping the fine-tune step collapses accuracy
  // (reconstruction alone is ~60% relative weight error).
  pool::CodecOptions co;
  co.pool_size = pool_size;
  co.kmeans_iters = 10;
  co.max_cluster_vectors = 6000;
  pool::FinetuneOptions fo;
  fo.train.epochs = 3;
  fo.train.batch_size = 32;
  fo.train.lr = 0.02f;
  quant::CalibrateOptions qo;
  qo.num_samples = 64;
  return Deployment::from(t.graph)
      .with_pool(co)
      .finetune(t.train, t.test, fo)
      .with_options(opt)
      .calibrate(t.train, qo)
      .compile();
}

TEST(Engine, Int8BaselineTracksFloatAccuracy) {
  Trained& t = trained();
  ASSERT_GT(t.float_acc, 55.0f);  // the float model actually learned
  Session net = compile_plain(t);
  const float acc = net.evaluate(t.test);
  EXPECT_GT(acc, t.float_acc - 8.0f);
}

TEST(Engine, PooledBitSerialCloseToBaseline) {
  Trained& t = trained();
  Session base = compile_plain(t);
  Session pooled = compile_pooled(t, 64, CompileOptions{});
  const float base_acc = base.evaluate(t.test);
  const float pooled_acc = pooled.evaluate(t.test);
  // Pooling costs some accuracy but must stay in the same league (Table 4).
  EXPECT_GT(pooled_acc, base_acc - 15.0f);
}

TEST(Engine, LogitsApproximateFloatLogits) {
  Trained& t = trained();
  Session net = compile_plain(t);
  data::Batch b = t.test.batch(0, 1);
  const Tensor& flogits = t.graph.forward(b.images, false);
  Tensor x({1, 3, 16, 16});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = b.images[i];
  Tensor qlogits = net.run_logits(x);
  ASSERT_EQ(qlogits.size(), flogits.size());
  // Same argmax most of the time; check relative ordering of top class.
  int fbest = 0, qbest = 0;
  for (int j = 1; j < 4; ++j) {
    if (flogits[static_cast<std::size_t>(j)] > flogits[static_cast<std::size_t>(fbest)]) fbest = j;
    if (qlogits[static_cast<std::size_t>(j)] > qlogits[static_cast<std::size_t>(qbest)]) qbest = j;
  }
  EXPECT_EQ(fbest, qbest);
}

TEST(Engine, VariantChoiceDoesNotChangeOutputs) {
  Trained& t = trained();
  CompileOptions a, b;
  a.force_variant = true;
  a.forced_variant = kernels::BitSerialVariant::kInputReuse;
  b.force_variant = true;
  b.forced_variant = kernels::BitSerialVariant::kCachedPrecompute;
  Session na = compile_pooled(t, 32, a);
  Session nb = compile_pooled(t, 32, b);
  Tensor x({1, 3, 16, 16}, 0.3f);
  QTensor la = na.run(x);
  QTensor lb = nb.run(x);
  for (std::size_t i = 0; i < la.data.size(); ++i) EXPECT_EQ(la.data[i], lb.data[i]);
}

TEST(Engine, LowerActBitsDegradeGracefully) {
  Trained& t = trained();
  CompileOptions o8, o4, o2;
  o8.act_bits = 8;
  o4.act_bits = 4;
  o2.act_bits = 2;
  const float a8 = compile_pooled(t, 64, o8).evaluate(t.test);
  const float a4 = compile_pooled(t, 64, o4).evaluate(t.test);
  const float a2 = compile_pooled(t, 64, o2).evaluate(t.test);
  EXPECT_GE(a8 + 1.0f, a4 - 10.0f);  // sanity: not wildly inverted
  EXPECT_GT(a8, a2 - 5.0f);          // 2-bit should not beat 8-bit by much
}

TEST(Engine, CostScalesDownWithActBits) {
  Trained& t = trained();
  CompileOptions o8, o3;
  o8.act_bits = 8;
  o3.act_bits = 3;
  Session n8 = compile_pooled(t, 64, o8);
  Session n3 = compile_pooled(t, 64, o3);
  Tensor x({1, 3, 16, 16}, 0.3f);
  sim::CostCounter c8, c3;
  n8.run(x, &c8);
  n3.run(x, &c3);
  const sim::McuProfile mcu = sim::mc_large();
  EXPECT_LT(mcu.cycles(c3), mcu.cycles(c8));
}

TEST(Engine, FootprintShrinksWithPooling) {
  // A small pool keeps the LUT overhead below the index savings even on this
  // tiny width-0.25 model (a 64-vector LUT alone is 16 kB — more than the
  // whole model; that is the Table 3 "LUT overhead" effect).
  Trained& t = trained();
  Session base = compile_plain(t);
  Session pooled = compile_pooled(t, 16, CompileOptions{});
  const sim::MemoryFootprint fb = base.footprint();
  const sim::MemoryFootprint fp = pooled.footprint();
  EXPECT_LT(fp.flash_bytes, fb.flash_bytes);
  EXPECT_GT(fp.flash_bytes, 1024u);
}

TEST(Engine, LatencyReportConsistent) {
  Trained& t = trained();
  Session net = compile_pooled(t, 64, CompileOptions{});
  Tensor x({1, 3, 16, 16}, 0.3f);
  const LatencyReport r = net.estimate_latency(sim::mc_large(), x);
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_NEAR(r.seconds, r.cycles / 120e6, 1e-12);
  EXPECT_TRUE(r.fits);
}

TEST(Engine, DeterministicAcrossRuns) {
  Trained& t = trained();
  Session net = compile_pooled(t, 32, CompileOptions{});
  Tensor x({1, 3, 16, 16}, 0.7f);
  QTensor a = net.run(x);
  QTensor b = net.run(x);
  EXPECT_EQ(a.data, b.data);
}

TEST(Engine, AcceptsChwInput) {
  Trained& t = trained();
  Session net = compile_plain(t);
  Tensor chw({3, 16, 16}, 0.2f);
  EXPECT_NO_THROW(net.run(chw));
  Tensor batch2({2, 3, 16, 16});
  EXPECT_THROW(net.run(batch2), std::invalid_argument);
  // Satellite bugfix: CHW shape mismatches are rejected up front instead of
  // reading out of range.
  Tensor wrong({3, 8, 8}, 0.2f);
  EXPECT_THROW(net.run(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace bswp::runtime
